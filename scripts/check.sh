#!/usr/bin/env bash
# Tier-1 gate: configure + build (warnings-as-errors on the
# instrumented targets) + ctest, then an end-to-end smoke test of the
# observability sinks (LVF2_TRACE / LVF2_METRICS / LVF2_LOG) against
# a real pipeline run, then the QoR regression gate: a fixed-seed
# manifest run diffed arc-by-arc against scripts/golden/
# qor_manifest.json with lvf2_report.
#
# Tier-1.5 (--sanitize): the same gate rebuilt under ASan + UBSan in
# its own build directory, plus an everything-armed fault-injection
# pass (LVF2_FAULTS) — the acceptance run for the robustness layer.
#
# Tier-1.5 (--tsan): the concurrency gate — the tree rebuilt under
# ThreadSanitizer in its own build directory, then the exec pool /
# parallel hot-loop / concurrent-observability test subset run with
# LVF2_THREADS=4 so every lock and atomic in the fork-join path is
# exercised under TSan. Subset, not full ctest: TSan's 5-15x
# slowdown makes the single-threaded statistical suites pure cost.
#
# Tier-1.5 (--cache): the incremental-characterization gate — a cold
# and a warm LVF2_CACHE run of examples/characterize_library must
# produce byte-identical manifests (rtol 0 / atol 0), the warm run
# must be all hits and at least 10x faster in characterize.entry wall
# time, and lvf2_cache verify must reproduce sampled cached entries
# bit-for-bit.
#
# Tier-1.5 (--perf): the performance-observability gate — a profiled
# (LVF2_PROFILE), telemetry-armed (LVF2_EXEC_TELEMETRY,
# LVF2_ALLOC_STATS) bench_table1_scenarios run must emit a folded
# profile whose hot stacks name the pipeline stages, bench_perf must
# hold the disabled-hook budget and write BENCH_perf_micro.json, and
# `lvf2_report perf` must pass vs scripts/golden/perf_manifest.json
# (budget LVF2_PERF_BUDGET percent, default 300) while still failing
# on a synthetically inflated manifest (gate self-test).
#
# Tier-1.5 (--serve): the fault-tolerant serving gate — lvf2d is
# warmed (no faults, rw cache, deadline-free soak), then restarted
# with the I/O + EM faults armed on a readonly warm cache and soaked
# with N mixed multi-client queries; both runs must drain cleanly on
# SIGTERM with a manifest whose serve section shows
# accepted == responded, and the soak client must see zero invariant
# violations (valid status codes / degradation tags on every answer,
# deadline-tagged requests within deadline + slack). The faulted soak
# also exercises the serving-telemetry surface: the `metrics` op is
# scraped mid-soak both inline (lvf2d_soak --scrape-every) and over a
# live lvf2_top --prometheus scrape that must be well-formed and
# reconcile with the drain manifest's serve_telemetry section, whose
# deadline-population p99 queue+exec must fit the 250 ms budget; the
# JSONL access log (LVF2_ACCESS_LOG) must parse line-for-line and
# summarize cleanly under `lvf2_report serve`.
#
# Tier-1.5 (--yield): the high-sigma yield accuracy gate — a
# scalar-tier bench_yield_sigma sigma sweep (3.0-4.5 sigma on the
# "2 Peaks" scenario) whose manifest yield_hs section must reproduce
# scripts/golden/yield_manifest.json at zero tolerance, plus accuracy
# asserts from BENCH_yield_sigma.json: the IS estimate at 3.0/3.5
# sigma must agree with the same-run brute-force estimate within 3
# combined standard errors, every level must converge with sane
# ESS/weight diagnostics, and at >= 4 sigma the brute-force-equivalent
# sample count must be >= 50x the IS sample count.
#
# Usage: scripts/check.sh [--sanitize|--tsan|--cache|--perf|--serve|
#        --yield] [--update-golden] [--update-perf-golden]
#        [--update-yield-golden] [build-dir]
#        (default build-dir: build, build-asan with --sanitize,
#        build-tsan with --tsan)
#        --update-golden: re-record scripts/golden/qor_manifest.json
#        from the current build instead of diffing against it.
#        --update-perf-golden: re-record scripts/golden/
#        perf_manifest.json from the current --perf run.
#        --update-yield-golden: re-record scripts/golden/
#        yield_manifest.json from the current --yield run.

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
TSAN=0
CACHE=0
PERF=0
SERVE=0
YIELD=0
UPDATE_GOLDEN=0
UPDATE_PERF_GOLDEN=0
UPDATE_YIELD_GOLDEN=0
while [ $# -gt 0 ]; do
  case "$1" in
    --sanitize) SANITIZE=1; shift ;;
    --tsan) TSAN=1; shift ;;
    --cache) CACHE=1; shift ;;
    --perf) PERF=1; shift ;;
    --serve) SERVE=1; shift ;;
    --yield) YIELD=1; shift ;;
    --update-golden) UPDATE_GOLDEN=1; shift ;;
    --update-perf-golden) UPDATE_PERF_GOLDEN=1; shift ;;
    --update-yield-golden) UPDATE_YIELD_GOLDEN=1; shift ;;
    *) break ;;
  esac
done
if [ "$SANITIZE" = 1 ]; then
  BUILD_DIR="${1:-build-asan}"
elif [ "$TSAN" = 1 ]; then
  BUILD_DIR="${1:-build-tsan}"
else
  BUILD_DIR="${1:-build}"
fi
JOBS="$(nproc 2>/dev/null || echo 4)"

CMAKE_FLAGS=(-DLVF2_WERROR=ON)
if [ "$SANITIZE" = 1 ]; then
  CMAKE_FLAGS+=(-DLVF2_SANITIZE=ON)
elif [ "$TSAN" = 1 ]; then
  CMAKE_FLAGS+=(-DLVF2_SANITIZE=thread)
fi
if command -v ccache >/dev/null; then
  CMAKE_FLAGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

if [ "$TSAN" = 1 ]; then
  echo "== ThreadSanitizer concurrency gate =="
  cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
  cmake --build "$BUILD_DIR" -j"$JOBS" --target lvf2_tests
  LVF2_THREADS=4 "$BUILD_DIR/tests/lvf2_tests" --gtest_filter=\
'ParseThreadCount.*:ThreadCount.*:ParallelFor.*:ParallelMap.*:Pool.*'\
':PoolTelemetry.*:ExecDeterminism.*:ExecStress.*:Manifest.*'\
':MetricsRegistry.*:EvaluateModels.*:CacheStore.*'\
':CacheCharacterize.Concurrent*:Serve*:Yield.*'
  echo "check.sh: TSan gate green"
  exit 0
fi

if [ "$CACHE" = 1 ]; then
  echo "== result-cache incremental-characterization gate =="
  cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
  cmake --build "$BUILD_DIR" -j"$JOBS" \
    --target characterize_library lvf2_report lvf2_cache_cli
  # LVF2_CACHE_GATE_DIR keeps the run's manifests + cache around
  # (CI uploads them as artifacts); default is a cleaned-up temp dir.
  if [ -n "${LVF2_CACHE_GATE_DIR:-}" ]; then
    CACHE_DIR="$LVF2_CACHE_GATE_DIR"
    mkdir -p "$CACHE_DIR"
  else
    CACHE_DIR="$(mktemp -d)"
    trap 'rm -rf "$CACHE_DIR"' EXIT
  fi
  REPORT="$BUILD_DIR/tools/lvf2_report"
  CACHE_CLI="$BUILD_DIR/tools/lvf2_cache"

  echo "-- cold run (populates $CACHE_DIR/cache)"
  LVF2_CACHE="$CACHE_DIR/cache" LVF2_MANIFEST="$CACHE_DIR/cold.json" \
    "$BUILD_DIR/examples/characterize_library" "$CACHE_DIR" 2000 4 >/dev/null
  echo "-- warm run (must be all hits)"
  LVF2_CACHE="$CACHE_DIR/cache" LVF2_MANIFEST="$CACHE_DIR/warm.json" \
    "$BUILD_DIR/examples/characterize_library" "$CACHE_DIR" 2000 4 >/dev/null

  # A warm run must change nothing: zero-tolerance QoR diff and
  # byte-identical canonical manifests.
  "$REPORT" diff "$CACHE_DIR/cold.json" "$CACHE_DIR/warm.json" \
      --rtol 0 --atol 0 \
    || { echo "FAIL: warm cached run changed QoR numbers"; exit 1; }
  "$REPORT" canon "$CACHE_DIR/cold.json" > "$CACHE_DIR/cold.canon"
  "$REPORT" canon "$CACHE_DIR/warm.json" > "$CACHE_DIR/warm.canon"
  cmp -s "$CACHE_DIR/cold.canon" "$CACHE_DIR/warm.canon" \
    || { echo "FAIL: cold and warm canonical manifests differ"; exit 1; }

  if command -v python3 >/dev/null; then
  python3 - "$CACHE_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
cold = json.load(open(os.path.join(d, "cold.json")))
warm = json.load(open(os.path.join(d, "warm.json")))
entries = len(cold["arcs"])
assert entries > 0, "cold run characterized nothing"
assert cold["cache"]["hit"] == 0, cold["cache"]
assert cold["cache"]["store"] == entries, cold["cache"]
assert warm["cache"]["hit"] == entries, warm["cache"]
assert warm["cache"]["miss"] == 0, warm["cache"]
cold_ms = cold["stages"]["characterize.entry"]["wall_ms"]
warm_ms = warm["stages"]["characterize.entry"]["wall_ms"]
ratio = cold_ms / max(warm_ms, 1e-9)
assert ratio >= 10.0, f"warm run only {ratio:.1f}x faster ({cold_ms:.1f}ms -> {warm_ms:.1f}ms)"
print(f"ok: {entries} entries, warm all-hit, characterize.entry "
      f"{cold_ms:.1f}ms -> {warm_ms:.1f}ms ({ratio:.0f}x)")
EOF
  else
    echo "python3 unavailable; skipped hit-count / speedup assertions"
  fi

  "$CACHE_CLI" stats "$CACHE_DIR/cache"
  "$CACHE_CLI" verify "$CACHE_DIR/cache" --sample 4 \
    || { echo "FAIL: cached entries no longer reproduce"; exit 1; }
  echo "check.sh: cache gate green"
  exit 0
fi

if [ "$PERF" = 1 ]; then
  echo "== performance-observability gate =="
  cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
  cmake --build "$BUILD_DIR" -j"$JOBS" \
    --target bench_table1_scenarios bench_perf lvf2_report
  # LVF2_PERF_GATE_DIR keeps the run's profile + manifests around
  # (CI uploads them as artifacts); default is a cleaned-up temp dir.
  if [ -n "${LVF2_PERF_GATE_DIR:-}" ]; then
    PERF_DIR="$LVF2_PERF_GATE_DIR"
    mkdir -p "$PERF_DIR"
  else
    PERF_DIR="$(mktemp -d)"
    trap 'rm -rf "$PERF_DIR"' EXIT
  fi
  REPORT="$BUILD_DIR/tools/lvf2_report"

  echo "-- profiled pipeline run (profiler + exec telemetry + alloc stats)"
  LVF2_PROFILE="$PERF_DIR/profile.folded,hz=300" \
  LVF2_EXEC_TELEMETRY=1 \
  LVF2_ALLOC_STATS=1 \
  LVF2_MANIFEST="$PERF_DIR/perf_manifest.json" \
    "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 --seed 2024 \
    >/dev/null
  [ -s "$PERF_DIR/profile.folded" ] \
    || { echo "FAIL: profiler wrote no folded stacks"; exit 1; }
  [ -s "$PERF_DIR/perf_manifest.json" ] \
    || { echo "FAIL: perf manifest was not written"; exit 1; }

  "$REPORT" flame "$PERF_DIR/profile.folded" --top 15 \
    | tee "$PERF_DIR/flame.txt"
  # The hot stacks must attribute samples to real pipeline stages, not
  # only "(untagged)" — the whole point of stage tagging.
  grep -qE 'characterize|em\.|spice\.mc|ssta\.' "$PERF_DIR/flame.txt" \
    || { echo "FAIL: no pipeline stage named in the hot stacks"; exit 1; }

  # The manifest must carry the telemetry sections the profiled run
  # armed, and they must not leak into the determinism gates' view.
  grep -q '"exec":{' "$PERF_DIR/perf_manifest.json" \
    || { echo "FAIL: manifest has no exec section"; exit 1; }
  grep -q '"resource":{' "$PERF_DIR/perf_manifest.json" \
    || { echo "FAIL: manifest has no resource section"; exit 1; }
  grep -q '"profile":{' "$PERF_DIR/perf_manifest.json" \
    || { echo "FAIL: manifest has no profile section"; exit 1; }
  "$REPORT" canon "$PERF_DIR/perf_manifest.json" \
    | grep -qE '"exec"|"resource"|"profile"' \
    && { echo "FAIL: telemetry sections leaked into the canonical form"; \
         exit 1; }

  echo "-- disabled-hook budget + kernel throughput (bench_perf)"
  # One run records the disabled-path overhead gauges, the per-tier
  # BM_*Kernel throughput rows, and the scalar-vs-vector cold-entry
  # pair into BENCH_perf_micro.json (env -u LVF2_CACHE: any cache
  # setting, even =off, voids the cold-entry bench).
  env -u LVF2_CACHE LVF2_BENCH_JSON="$(pwd)" "$BUILD_DIR/bench/bench_perf" \
    --benchmark_filter='BM_Disabled.*|BM_PoolTelemetryOverhead|BM_.*Kernel/.*|BM_CharacterizeEntryCold/.*' \
    --benchmark_min_time=0.2 >"$PERF_DIR/bench_perf.txt" 2>&1 \
    || { cat "$PERF_DIR/bench_perf.txt"; exit 1; }
  [ -s BENCH_perf_micro.json ] \
    || { echo "FAIL: BENCH_perf_micro.json was not written"; exit 1; }
  if command -v python3 >/dev/null; then
  python3 - BENCH_perf_micro.json <<'EOF'
import json, os, sys
bench = json.load(open(sys.argv[1]))
reg = bench["metrics"]
# Per-call ns budget of a disabled hook: one relaxed atomic load. The
# contract is < 5 ns on an idle machine; the gate allows headroom for
# shared-runner noise (override with LVF2_PERF_NS_BUDGET).
budget = float(os.environ.get("LVF2_PERF_NS_BUDGET", "15"))
checked = 0
for key, value in reg.items():
    if key.startswith("BM_Disabled") or key.startswith("BM_PoolTelemetry"):
        assert value < budget, f"{key} = {value:.2f} ns > {budget} ns budget"
        checked += 1
assert checked >= 2, f"only {checked} disabled-path benches recorded"
print(f"ok: {checked} disabled-path hooks within {budget} ns")
# The perf trajectory must carry real kernel data, not only the
# disabled-path gauges: per-tier BM_*Kernel rows (suffix _0 scalar /
# _1 sse2 / _2 avx2) and the cold-entry pair with its frozen pre-SIMD
# scalar reference.
kernel_rows = [k for k in reg if "Kernel_" in k]
assert len(kernel_rows) >= 6, f"only {len(kernel_rows)} BM_*Kernel rows"
cold = [k for k in reg if k.startswith("BM_CharacterizeEntryCold_")]
assert "BM_CharacterizeEntryCold_0" in cold, "no scalar cold-entry row"
assert "BM_CharacterizeEntryCold_pre_simd_scalar_baseline_ms" in cold, \
    "no frozen pre-SIMD cold-entry baseline"
vec = [k for k in ("BM_CharacterizeEntryCold_1", "BM_CharacterizeEntryCold_2")
       if k in reg]
assert vec, "no vector-tier cold-entry row (SSE2/AVX2 both unavailable?)"
base = reg["BM_CharacterizeEntryCold_pre_simd_scalar_baseline_ms"]
best = min(reg[k] for k in vec)
print(f"ok: {len(kernel_rows)} kernel rows; cold entry best vector tier "
      f"{best:.0f} ms vs pre-SIMD scalar {base:.0f} ms "
      f"({base / best:.1f}x)")
EOF
  else
    echo "python3 unavailable; skipped disabled-hook ns assertions"
  fi

  echo "-- perf budget vs committed baseline"
  PERF_GOLDEN=scripts/golden/perf_manifest.json
  if [ "$UPDATE_PERF_GOLDEN" = 1 ]; then
    mkdir -p scripts/golden
    cp "$PERF_DIR/perf_manifest.json" "$PERF_GOLDEN"
    echo "re-recorded $PERF_GOLDEN from this run"
  elif [ -f "$PERF_GOLDEN" ]; then
    # Wall/CPU/RSS vary machine to machine; the generous default
    # budget (LVF2_PERF_BUDGET percent + absolute slack) only fires on
    # order-of-magnitude blowups, which is exactly what an accidental
    # O(n^2) or a leak looks like.
    "$REPORT" perf "$PERF_GOLDEN" "$PERF_DIR/perf_manifest.json" \
        --budget-pct "${LVF2_PERF_BUDGET:-300}" --abs-ms 500 --abs-kb 262144 \
      || { echo "FAIL: perf regressed vs $PERF_GOLDEN (rerun with" \
                "--update-perf-golden if the change is intentional)"; \
           exit 1; }
  else
    echo "WARN: $PERF_GOLDEN missing; run scripts/check.sh --perf" \
         "--update-perf-golden"
  fi

  # Gate self-test: an inflated stage wall time must trip the budget.
  if command -v python3 >/dev/null; then
    python3 - "$PERF_DIR" <<'EOF'
import json, os, sys
d = sys.argv[1]
manifest = json.load(open(os.path.join(d, "perf_manifest.json")))
assert manifest["stages"], "perf manifest has no stage rollups"
stage = next(iter(manifest["stages"]))
manifest["stages"][stage]["wall_ms"] = \
    manifest["stages"][stage]["wall_ms"] * 100 + 1e6
json.dump(manifest, open(os.path.join(d, "inflated_manifest.json"), "w"))
print(f"inflated stage {stage} for the self-test")
EOF
    if "$REPORT" perf "$PERF_DIR/perf_manifest.json" \
        "$PERF_DIR/inflated_manifest.json" \
        --budget-pct "${LVF2_PERF_BUDGET:-300}" --abs-ms 500 >/dev/null; then
      echo "FAIL: lvf2_report perf accepted a 100x inflated stage"
      exit 1
    fi
    echo "ok: inflated stage wall time trips the perf gate"
  fi
  echo "check.sh: perf gate green"
  exit 0
fi

if [ "$SERVE" = 1 ]; then
  echo "== lvf2d fault-tolerant serving gate =="
  cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
  cmake --build "$BUILD_DIR" -j"$JOBS" \
    --target lvf2d lvf2d_soak lvf2_top lvf2_report
  # LVF2_SERVE_GATE_DIR keeps the daemon logs + manifest around (CI
  # uploads them as artifacts); default is a cleaned-up temp dir.
  if [ -n "${LVF2_SERVE_GATE_DIR:-}" ]; then
    SOAK_DIR="$LVF2_SERVE_GATE_DIR"
    mkdir -p "$SOAK_DIR"
  else
    SOAK_DIR="$(mktemp -d)"
    trap 'rm -rf "$SOAK_DIR"' EXIT
  fi
  SOCK="$SOAK_DIR/lvf2d.sock"
  N="${LVF2_SOAK_N:-200}"
  DAEMON_PID=""

  start_daemon() {  # start_daemon <log-file> [ENV=VAL ...]
    local log="$1"
    shift
    rm -f "$SOCK"
    env "$@" LVF2_SERVE="unix:$SOCK" LVF2_SERVE_SAMPLES=300 \
      LVF2_CACHE="$SOAK_DIR/cache" \
      "$BUILD_DIR/tools/lvf2d" >"$log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
      [ -S "$SOCK" ] && return 0
      kill -0 "$DAEMON_PID" 2>/dev/null \
        || { echo "FAIL: lvf2d died at startup"; cat "$log"; return 1; }
      sleep 0.1
    done
    echo "FAIL: lvf2d never bound $SOCK"
    cat "$log"
    return 1
  }

  stop_daemon() {  # SIGTERM, bounded drain wait, exit code must be 0
    kill -TERM "$DAEMON_PID"
    for _ in $(seq 1 300); do
      kill -0 "$DAEMON_PID" 2>/dev/null || break
      sleep 0.1
    done
    if kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "FAIL: lvf2d did not drain within 30s of SIGTERM"
      kill -9 "$DAEMON_PID"
      return 1
    fi
    local rc=0
    wait "$DAEMON_PID" || rc=$?
    if [ "$rc" != 0 ]; then
      echo "FAIL: lvf2d exited with status $rc"
      return 1
    fi
  }

  # Phase 1: a fault-free, deadline-free soak with the same seed and
  # mix as phase 2 populates the result cache, so the faulted replica
  # below serves warm entries. Same LVF2_SERVE_SAMPLES both phases —
  # the cache key covers the Monte-Carlo config.
  echo "-- warm phase: fault-free daemon populates the cache"
  start_daemon "$SOAK_DIR/warm_daemon.log" || exit 1
  timeout 900 "$BUILD_DIR/tools/lvf2d_soak" --connect "unix:$SOCK" \
      --n "$N" --clients 4 --deadline-ms 0 \
    || { echo "FAIL: warm soak failed"; cat "$SOAK_DIR/warm_daemon.log"; \
         exit 1; }
  stop_daemon || exit 1
  [ -n "$(ls "$SOAK_DIR/cache" 2>/dev/null)" ] \
    || { echo "FAIL: warm run left no cache shards"; exit 1; }

  # Phase 2: the survival run. Socket + cache-shard I/O faults and EM
  # collapse armed at 10% each, readonly warm cache, per-request
  # deadlines — every response must carry a valid status code or
  # degradation tag, and SIGTERM must drain to a complete manifest.
  echo "-- soak phase: faults armed, readonly warm cache, deadlines on"
  start_daemon "$SOAK_DIR/soak_daemon.log" \
    LVF2_CACHE_MODE=readonly \
    LVF2_DEADLINE_MS=250 \
    LVF2_FAULTS="socket.read:0.1,socket.write:0.1,cache.read_io:0.1,em.collapse:0.1;seed=2024" \
    LVF2_MANIFEST="$SOAK_DIR/serve_manifest.json" \
    LVF2_METRICS="$SOAK_DIR/serve_metrics.json" \
    LVF2_ACCESS_LOG="$SOAK_DIR/access.log" || exit 1
  # The soak runs in the background so lvf2_top can scrape the live
  # daemon mid-soak; the soak itself also hits the metrics op inline
  # every 25 requests (--scrape-every).
  timeout 600 "$BUILD_DIR/tools/lvf2d_soak" --connect "unix:$SOCK" \
      --n "$N" --clients 4 --scrape-every 25 &
  SOAK_PID=$!
  sleep 0.5
  SCRAPED=0
  for _ in $(seq 1 100); do
    if "$BUILD_DIR/tools/lvf2_top" --connect "unix:$SOCK" --once \
        --prometheus >"$SOAK_DIR/metrics.prom" 2>/dev/null \
        && grep -q '^lvf2_serve_op_' "$SOAK_DIR/metrics.prom" \
        && grep -q '^lvf2_serve_accepted_total' "$SOAK_DIR/metrics.prom"; then
      SCRAPED=1
      break
    fi
    kill -0 "$SOAK_PID" 2>/dev/null || break
    sleep 0.2
  done
  wait "$SOAK_PID" \
    || { echo "FAIL: faulted soak failed"; cat "$SOAK_DIR/soak_daemon.log"; \
         exit 1; }
  [ "$SCRAPED" = 1 ] \
    || { echo "FAIL: mid-soak Prometheus scrape never saw per-op samples"; \
         exit 1; }
  stop_daemon || exit 1

  [ -s "$SOAK_DIR/serve_manifest.json" ] \
    || { echo "FAIL: drained daemon wrote no manifest"; exit 1; }
  [ -s "$SOAK_DIR/access.log" ] \
    || { echo "FAIL: soak left no access log"; exit 1; }
  if command -v python3 >/dev/null; then
    python3 - "$SOAK_DIR/serve_manifest.json" <<'EOF'
import json, sys
manifest = json.load(open(sys.argv[1]))
serve = manifest.get("serve")
assert serve, "manifest has no serve section"
assert serve["drained"] == 1, serve
assert serve["accepted"] > 0, serve
assert serve["accepted"] == serve["responded"], \
    f"accepted {serve['accepted']} != responded {serve['responded']}"
answered = (serve["completed_full"] + serve["completed_degraded"]
            + serve["failed"])
assert answered == serve["responded"], serve
assert serve["io_retry"] + serve["io_injected_hard"] > 0, \
    "socket faults never fired"
print(f"ok: accepted={serve['accepted']} responded={serve['responded']} "
      f"full={serve['completed_full']} "
      f"degraded={serve['completed_degraded']} failed={serve['failed']} "
      f"io_retry={serve['io_retry']} hard={serve['io_injected_hard']} "
      f"drained={serve['drained']}")
EOF
  else
    grep -q '"serve":' "$SOAK_DIR/serve_manifest.json" \
      || { echo "FAIL: manifest has no serve section"; exit 1; }
    echo "python3 unavailable; skipped serve-section count assertions"
  fi

  echo "-- serving telemetry: scrape well-formedness + manifest SLOs"
  if command -v python3 >/dev/null; then
    python3 - "$SOAK_DIR" <<'EOF'
import json, re, sys, os
d = sys.argv[1]
manifest = json.load(open(os.path.join(d, "serve_manifest.json")))
serve = manifest["serve"]
tel = manifest.get("serve_telemetry")
assert tel, "manifest has no serve_telemetry section"

# Per-op telemetry must reconcile with the server's own drain counts:
# every answered request is attributed to exactly one op row.
ops = tel["ops"]
responded = sum(int(row["responded"]) for row in ops.values())
assert responded == serve["responded"], \
    f"op rows sum to {responded}, serve.responded is {serve['responded']}"

# Deadline SLO: the soak runs every timed request under the daemon's
# 250 ms budget, and degradation (not lateness) is the escape hatch —
# so the deadline population's p99 timeline must fit the budget.
budget = tel["deadline_budget_ms"]
assert budget == 250.0, tel
dl = tel["deadline"]
assert dl["total"] > 0, "no deadline-bounded requests recorded"
assert 0.0 <= dl["compliance"] <= 1.0, dl
p99 = dl["queue_p99_ms"] + dl["exec_p99_ms"]
assert p99 <= budget, \
    f"deadline p99 queue+exec {p99:.1f} ms exceeds the {budget:.0f} ms budget"

# The mid-soak Prometheus scrape: every sample's family is declared
# with # TYPE before use, values parse, and the cumulative per-op
# counts can only have grown by drain time.
declared = set()
samples = {}
for line in open(os.path.join(d, "metrics.prom")):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        declared.add(line.split()[2])
        continue
    if line.startswith("#"):
        continue
    m = re.fullmatch(r'([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)', line)
    assert m, f"unparseable sample line: {line!r}"
    name, labels, value = m.group(1), m.group(2) or "", m.group(3)
    float(value)  # must parse
    family = re.sub(r'_(sum|count|bucket)$', '', name)
    assert name in declared or family in declared, \
        f"sample {name} has no # TYPE declaration"
    samples[name + labels] = float(value)
acc = samples["lvf2_serve_accepted_total"]
resp = samples["lvf2_serve_responded_total"]
assert 0 <= acc - resp <= 1024, f"accepted {acc} vs responded {resp}"
scraped_ops = 0
for key, value in samples.items():
    m = re.fullmatch(r'lvf2_serve_op_requests_total\{op="([^"]+)"\}', key)
    if not m:
        continue
    scraped_ops += 1
    final = ops.get(m.group(1))
    assert final is not None, f"scraped op {m.group(1)} missing at drain"
    assert value <= final["requests"], \
        f"{key}: scraped {value} > final {final['requests']}"
assert scraped_ops > 0, "scrape carried no per-op request counters"

# The access log: every line is one parseable JSON record.
records = 0
for line in open(os.path.join(d, "access.log")):
    if not line.strip():
        continue
    rec = json.loads(line)
    assert rec["rid"] > 0 and rec["op"], rec
    records += 1
assert records > 0, "access log is empty"
print(f"ok: telemetry reconciles ({responded} responses over "
      f"{len(ops)} ops), deadline p99 {p99:.1f} ms <= {budget:.0f} ms "
      f"(compliance {dl['compliance']:.3f}), scrape well-formed "
      f"({len(samples)} samples, {scraped_ops} ops), "
      f"{records} access-log records")
EOF
  else
    echo "python3 unavailable; skipped telemetry assertions"
  fi
  "$BUILD_DIR/tools/lvf2_report" serve "$SOAK_DIR/access.log" \
    || { echo "FAIL: lvf2_report serve rejected the access log"; exit 1; }
  echo "check.sh: serve gate green"
  exit 0
fi

if [ "$YIELD" = 1 ]; then
  echo "== high-sigma yield accuracy gate =="
  cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
  cmake --build "$BUILD_DIR" -j"$JOBS" \
    --target bench_yield_sigma lvf2_report
  # LVF2_YIELD_GATE_DIR keeps the run's manifest + bench JSON around
  # (CI uploads them as artifacts); default is a cleaned-up temp dir.
  if [ -n "${LVF2_YIELD_GATE_DIR:-}" ]; then
    YIELD_DIR="$LVF2_YIELD_GATE_DIR"
    mkdir -p "$YIELD_DIR"
  else
    YIELD_DIR="$(mktemp -d)"
    trap 'rm -rf "$YIELD_DIR"' EXIT
  fi
  REPORT="$BUILD_DIR/tools/lvf2_report"

  # Scalar tier: the bitwise reference path the golden is recorded
  # from (same rationale as the QoR gate — vector kernels are a few
  # ULP off per call, which the IS accept/reject amplifies).
  echo "-- scalar-tier sigma sweep (IS vs brute force)"
  LVF2_SIMD=scalar \
  LVF2_MANIFEST="$YIELD_DIR/yield_manifest.json" \
  LVF2_BENCH_JSON="$YIELD_DIR" \
    "$BUILD_DIR/bench/bench_yield_sigma" --full \
    | tee "$YIELD_DIR/yield_sweep.txt"
  [ -s "$YIELD_DIR/yield_manifest.json" ] \
    || { echo "FAIL: sweep wrote no manifest"; exit 1; }
  [ -s "$YIELD_DIR/BENCH_yield_sigma.json" ] \
    || { echo "FAIL: BENCH_yield_sigma.json was not written"; exit 1; }

  YIELD_GOLDEN=scripts/golden/yield_manifest.json
  if [ "$UPDATE_YIELD_GOLDEN" = 1 ]; then
    mkdir -p scripts/golden
    "$REPORT" canon "$YIELD_DIR/yield_manifest.json" > "$YIELD_GOLDEN"
    echo "re-recorded $YIELD_GOLDEN from the scalar-tier sweep"
  elif [ -f "$YIELD_GOLDEN" ]; then
    "$REPORT" diff "$YIELD_GOLDEN" "$YIELD_DIR/yield_manifest.json" \
        --sections yield_hs --rtol 0 --atol 0 \
      || { echo "FAIL: the scalar tier no longer reproduces" \
                "$YIELD_GOLDEN bitwise (rerun with" \
                "--update-yield-golden only if the IS numerics changed" \
                "intentionally)"; exit 1; }
  else
    echo "WARN: $YIELD_GOLDEN missing; run scripts/check.sh --yield" \
         "--update-yield-golden"
  fi

  if command -v python3 >/dev/null; then
  python3 - "$YIELD_DIR/BENCH_yield_sigma.json" <<'EOF'
import json, math, sys
reg = json.load(open(sys.argv[1]))["metrics"]
levels = ["s30", "s35", "s40", "s45"]
# Every level must converge to the 10% relative-error target with
# healthy self-normalized-weight diagnostics: ESS in (0, n] (and
# above the defensive-mixture floor alpha*n = n/2 would be ideal, but
# the gate only asserts the hard bound), max weight a vanishing
# fraction of the total.
for key in levels:
    assert reg[f"converged_is_{key}"] == 1.0, \
        f"{key}: IS did not converge (rel_err {reg[f'rel_err_is_{key}']:.3f})"
    n = reg[f"samples_is_{key}"]
    ess = reg[f"ess_{key}"]
    assert 0.0 < ess <= n, f"{key}: ESS {ess} outside (0, {n}]"
    wmax = reg[f"max_weight_fraction_{key}"]
    assert 0.0 < wmax <= 0.05, f"{key}: max weight fraction {wmax}"
# Accuracy anchor: at 3.0/3.5 sigma the IS estimate must agree with
# the same-run brute-force estimate within 3 combined standard errors.
for key in ("s30", "s35"):
    p_is, se_is = reg[f"p_is_{key}"], reg[f"se_is_{key}"]
    p_bf, se_bf = reg[f"p_bf_{key}"], reg[f"se_bf_{key}"]
    se = math.hypot(se_is, se_bf)
    pull = abs(p_is - p_bf) / se
    assert pull <= 3.0, \
        f"{key}: IS {p_is:.4g} vs brute force {p_bf:.4g} is {pull:.1f} SE apart"
    print(f"ok: {key} IS agrees with brute force ({pull:.2f} SE)")
# Efficiency: at >= 4 sigma the brute-force-equivalent sample count
# (plain MC at the relative error IS achieved) must be >= 50x the
# samples IS actually spent.
for key in ("s40", "s45"):
    ratio = reg[f"bf_equiv_ratio_{key}"]
    assert ratio >= 50.0, f"{key}: IS only {ratio:.1f}x cheaper than MC"
    print(f"ok: {key} IS {ratio:.0f}x cheaper than equal-error brute force")
EOF
  else
    echo "python3 unavailable; cannot run the yield accuracy asserts"
    exit 1
  fi
  echo "check.sh: yield gate green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

if [ "$SANITIZE" = 1 ]; then
  echo "== fault-injection smoke test (all faults armed, ASan+UBSan) =="
  LVF2_FAULTS="all;seed=3" \
    "$BUILD_DIR/tests/lvf2_tests" \
    --gtest_filter='FaultMatrixTest.AllFaultsAtOnceStillSurvive' >/dev/null
  echo "ok: armed pipeline survived under sanitizers"
fi

echo "== observability smoke test =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

LVF2_TRACE="$SMOKE_DIR/trace.json" \
LVF2_METRICS="$SMOKE_DIR/metrics.json" \
LVF2_METRICS_SUMMARY=1 \
LVF2_LOG=info \
LVF2_BENCH_JSON="$SMOKE_DIR" \
LVF2_MANIFEST="$SMOKE_DIR/manifest.json" \
  "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 --seed 2024 \
  >/dev/null

for f in trace.json metrics.json BENCH_table1_scenarios.json manifest.json; do
  [ -s "$SMOKE_DIR/$f" ] || { echo "FAIL: $f was not written"; exit 1; }
done

if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
metrics = json.load(open(os.path.join(d, "metrics.json")))
for key in ("mc.samples", "em.iterations", "em.nonconverged"):
    assert key in metrics["counters"], f"metrics missing {key}"
assert metrics["counters"]["mc.samples"] > 0
bench = json.load(open(os.path.join(d, "BENCH_table1_scenarios.json")))
assert bench["wall_s"] > 0 and "registry" in bench
manifest = json.load(open(os.path.join(d, "manifest.json")))
assert manifest["schema_version"] == 1 and len(manifest["arcs"]) == 5, \
    "manifest missing arc rows"
assert manifest["stages"], "manifest has no stage rollups"
print(f"ok: {len(trace['traceEvents'])} trace events, "
      f"mc.samples={metrics['counters']['mc.samples']}, "
      f"{len(manifest['arcs'])} manifest arcs, "
      f"bench wall={bench['wall_s']:.2f}s")
EOF
else
  echo "python3 unavailable; skipped JSON validation (files exist and are non-empty)"
fi

echo "== QoR regression gate =="
GOLDEN=scripts/golden/qor_manifest.json
REPORT="$BUILD_DIR/tools/lvf2_report"
# The golden manifest is recorded from — and reproduced by — the
# scalar dispatch tier at ZERO tolerance: LVF2_SIMD=scalar loops the
# per-sample stats:: functions and is the bitwise reference path. The
# ambient-tier smoke manifest above (avx2/sse2 where available) is
# held to the toleranced diff instead: the vector kernels are a few
# ULP off per call, which EM iteration counts amplify into small QoR
# shifts that rtol absorbs and a genuine accuracy bug does not.
LVF2_SIMD=scalar LVF2_MANIFEST="$SMOKE_DIR/manifest_scalar.json" \
  "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 --seed 2024 \
  >/dev/null
if [ "$UPDATE_GOLDEN" = 1 ]; then
  mkdir -p scripts/golden
  "$REPORT" canon "$SMOKE_DIR/manifest_scalar.json" > "$GOLDEN"
  echo "re-recorded $GOLDEN from the scalar-tier run"
elif [ -f "$GOLDEN" ]; then
  "$REPORT" diff "$GOLDEN" "$SMOKE_DIR/manifest_scalar.json" \
      --rtol 0 --atol 0 \
    || { echo "FAIL: the scalar tier no longer reproduces $GOLDEN" \
              "bitwise (rerun with --update-golden only if the scalar" \
              "numerics changed intentionally)"; exit 1; }
  "$REPORT" diff "$GOLDEN" "$SMOKE_DIR/manifest.json" \
      --rtol 0.35 --atol 1e-6 \
    || { echo "FAIL: vector-tier QoR drifted vs $GOLDEN beyond the" \
              "SIMD tolerance (accuracy regression in the batch" \
              "kernels)"; exit 1; }
else
  echo "WARN: $GOLDEN missing; run scripts/check.sh --update-golden"
fi

echo "== thread-count determinism gate =="
# The same fixed-seed pipeline at 1 thread and at 4 threads must
# produce identical manifests (zero tolerance): parallelism must
# never change a number, only the wall clock. Per-task RNG seed
# derivation plus key-sorted manifest serialization is what makes
# this hold — see DESIGN.md decision 16.
LVF2_THREADS=1 LVF2_MANIFEST="$SMOKE_DIR/manifest_t1.json" \
  "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 --seed 2024 \
  >/dev/null
LVF2_THREADS=4 LVF2_MANIFEST="$SMOKE_DIR/manifest_t4.json" \
  "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 --seed 2024 \
  >/dev/null
"$REPORT" diff "$SMOKE_DIR/manifest_t1.json" "$SMOKE_DIR/manifest_t4.json" \
    --rtol 0 --atol 0 \
  || { echo "FAIL: 1-thread and 4-thread runs diverged (parallelism" \
            "changed a result; see DESIGN.md decision 16)"; exit 1; }
echo "ok: 1-thread and 4-thread manifests are identical"

echo "check.sh: all green"
