#!/usr/bin/env bash
# Tier-1 gate: configure + build (warnings-as-errors on the
# instrumented targets) + ctest, then an end-to-end smoke test of the
# observability sinks (LVF2_TRACE / LVF2_METRICS / LVF2_LOG) against
# a real pipeline run, then the QoR regression gate: a fixed-seed
# manifest run diffed arc-by-arc against scripts/golden/
# qor_manifest.json with lvf2_report.
#
# Tier-1.5 (--sanitize): the same gate rebuilt under ASan + UBSan in
# its own build directory, plus an everything-armed fault-injection
# pass (LVF2_FAULTS) — the acceptance run for the robustness layer.
#
# Usage: scripts/check.sh [--sanitize] [--update-golden] [build-dir]
#        (default build-dir: build, or build-asan with --sanitize)
#        --update-golden: re-record scripts/golden/qor_manifest.json
#        from the current build instead of diffing against it.

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
UPDATE_GOLDEN=0
while [ $# -gt 0 ]; do
  case "$1" in
    --sanitize) SANITIZE=1; shift ;;
    --update-golden) UPDATE_GOLDEN=1; shift ;;
    *) break ;;
  esac
done
if [ "$SANITIZE" = 1 ]; then
  BUILD_DIR="${1:-build-asan}"
else
  BUILD_DIR="${1:-build}"
fi
JOBS="$(nproc 2>/dev/null || echo 4)"

CMAKE_FLAGS=(-DLVF2_WERROR=ON)
if [ "$SANITIZE" = 1 ]; then
  CMAKE_FLAGS+=(-DLVF2_SANITIZE=ON)
fi
if command -v ccache >/dev/null; then
  CMAKE_FLAGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

if [ "$SANITIZE" = 1 ]; then
  echo "== fault-injection smoke test (all faults armed, ASan+UBSan) =="
  LVF2_FAULTS="all;seed=3" \
    "$BUILD_DIR/tests/lvf2_tests" \
    --gtest_filter='FaultMatrixTest.AllFaultsAtOnceStillSurvive' >/dev/null
  echo "ok: armed pipeline survived under sanitizers"
fi

echo "== observability smoke test =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

LVF2_TRACE="$SMOKE_DIR/trace.json" \
LVF2_METRICS="$SMOKE_DIR/metrics.json" \
LVF2_METRICS_SUMMARY=1 \
LVF2_LOG=info \
LVF2_BENCH_JSON="$SMOKE_DIR" \
LVF2_MANIFEST="$SMOKE_DIR/manifest.json" \
  "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 --seed 2024 \
  >/dev/null

for f in trace.json metrics.json BENCH_table1_scenarios.json manifest.json; do
  [ -s "$SMOKE_DIR/$f" ] || { echo "FAIL: $f was not written"; exit 1; }
done

if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
metrics = json.load(open(os.path.join(d, "metrics.json")))
for key in ("mc.samples", "em.iterations", "em.nonconverged"):
    assert key in metrics["counters"], f"metrics missing {key}"
assert metrics["counters"]["mc.samples"] > 0
bench = json.load(open(os.path.join(d, "BENCH_table1_scenarios.json")))
assert bench["wall_s"] > 0 and "registry" in bench
manifest = json.load(open(os.path.join(d, "manifest.json")))
assert manifest["schema_version"] == 1 and len(manifest["arcs"]) == 5, \
    "manifest missing arc rows"
assert manifest["stages"], "manifest has no stage rollups"
print(f"ok: {len(trace['traceEvents'])} trace events, "
      f"mc.samples={metrics['counters']['mc.samples']}, "
      f"{len(manifest['arcs'])} manifest arcs, "
      f"bench wall={bench['wall_s']:.2f}s")
EOF
else
  echo "python3 unavailable; skipped JSON validation (files exist and are non-empty)"
fi

echo "== QoR regression gate =="
GOLDEN=scripts/golden/qor_manifest.json
REPORT="$BUILD_DIR/tools/lvf2_report"
if [ "$UPDATE_GOLDEN" = 1 ]; then
  mkdir -p scripts/golden
  "$REPORT" canon "$SMOKE_DIR/manifest.json" > "$GOLDEN"
  echo "re-recorded $GOLDEN from this run"
elif [ -f "$GOLDEN" ]; then
  # The run above is fixed-seed, so model-fit QoR is deterministic up
  # to libm/platform noise; the tolerances absorb that, and anything
  # beyond them is a genuine accuracy regression.
  "$REPORT" diff "$GOLDEN" "$SMOKE_DIR/manifest.json" \
      --rtol 0.35 --atol 1e-6 \
    || { echo "FAIL: QoR drifted vs $GOLDEN (rerun with --update-golden" \
              "if the change is intentional)"; exit 1; }
else
  echo "WARN: $GOLDEN missing; run scripts/check.sh --update-golden"
fi

echo "check.sh: all green"
