#!/usr/bin/env bash
# Tier-1 gate: configure + build (warnings-as-errors on the
# instrumented targets) + ctest, then an end-to-end smoke test of the
# observability sinks (LVF2_TRACE / LVF2_METRICS / LVF2_LOG) against
# a real pipeline run.
#
# Tier-1.5 (--sanitize): the same gate rebuilt under ASan + UBSan in
# its own build directory, plus an everything-armed fault-injection
# pass (LVF2_FAULTS) — the acceptance run for the robustness layer.
#
# Usage: scripts/check.sh [--sanitize] [build-dir]
#        (default build-dir: build, or build-asan with --sanitize)

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
if [ "${1:-}" = "--sanitize" ]; then
  SANITIZE=1
  shift
fi
if [ "$SANITIZE" = 1 ]; then
  BUILD_DIR="${1:-build-asan}"
else
  BUILD_DIR="${1:-build}"
fi
JOBS="$(nproc 2>/dev/null || echo 4)"

CMAKE_FLAGS=(-DLVF2_WERROR=ON)
if [ "$SANITIZE" = 1 ]; then
  CMAKE_FLAGS+=(-DLVF2_SANITIZE=ON)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

if [ "$SANITIZE" = 1 ]; then
  echo "== fault-injection smoke test (all faults armed, ASan+UBSan) =="
  LVF2_FAULTS="all;seed=3" \
    "$BUILD_DIR/tests/lvf2_tests" \
    --gtest_filter='FaultMatrixTest.AllFaultsAtOnceStillSurvive' >/dev/null
  echo "ok: armed pipeline survived under sanitizers"
fi

echo "== observability smoke test =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

LVF2_TRACE="$SMOKE_DIR/trace.json" \
LVF2_METRICS="$SMOKE_DIR/metrics.json" \
LVF2_METRICS_SUMMARY=1 \
LVF2_LOG=info \
LVF2_BENCH_JSON="$SMOKE_DIR" \
  "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 >/dev/null

for f in trace.json metrics.json BENCH_table1_scenarios.json; do
  [ -s "$SMOKE_DIR/$f" ] || { echo "FAIL: $f was not written"; exit 1; }
done

if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
metrics = json.load(open(os.path.join(d, "metrics.json")))
for key in ("mc.samples", "em.iterations", "em.nonconverged"):
    assert key in metrics["counters"], f"metrics missing {key}"
assert metrics["counters"]["mc.samples"] > 0
bench = json.load(open(os.path.join(d, "BENCH_table1_scenarios.json")))
assert bench["wall_s"] > 0 and "registry" in bench
print(f"ok: {len(trace['traceEvents'])} trace events, "
      f"mc.samples={metrics['counters']['mc.samples']}, "
      f"bench wall={bench['wall_s']:.2f}s")
EOF
else
  echo "python3 unavailable; skipped JSON validation (files exist and are non-empty)"
fi

echo "check.sh: all green"
