#!/usr/bin/env bash
# Tier-1 gate: configure + build (warnings-as-errors on the
# instrumented targets) + ctest, then an end-to-end smoke test of the
# observability sinks (LVF2_TRACE / LVF2_METRICS / LVF2_LOG) against
# a real pipeline run.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DLVF2_WERROR=ON
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo "== observability smoke test =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

LVF2_TRACE="$SMOKE_DIR/trace.json" \
LVF2_METRICS="$SMOKE_DIR/metrics.json" \
LVF2_METRICS_SUMMARY=1 \
LVF2_LOG=info \
LVF2_BENCH_JSON="$SMOKE_DIR" \
  "$BUILD_DIR/bench/bench_table1_scenarios" --samples 4000 >/dev/null

for f in trace.json metrics.json BENCH_table1_scenarios.json; do
  [ -s "$SMOKE_DIR/$f" ] || { echo "FAIL: $f was not written"; exit 1; }
done

if command -v python3 >/dev/null; then
  python3 - "$SMOKE_DIR" <<'EOF'
import json, sys, os
d = sys.argv[1]
trace = json.load(open(os.path.join(d, "trace.json")))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "trace has no events"
metrics = json.load(open(os.path.join(d, "metrics.json")))
for key in ("mc.samples", "em.iterations", "em.nonconverged"):
    assert key in metrics["counters"], f"metrics missing {key}"
assert metrics["counters"]["mc.samples"] > 0
bench = json.load(open(os.path.join(d, "BENCH_table1_scenarios.json")))
assert bench["wall_s"] > 0 and "registry" in bench
print(f"ok: {len(trace['traceEvents'])} trace events, "
      f"mc.samples={metrics['counters']['mc.samples']}, "
      f"bench wall={bench['wall_s']:.2f}s")
EOF
else
  echo "python3 unavailable; skipped JSON validation (files exist and are non-empty)"
fi

echo "check.sh: all green"
