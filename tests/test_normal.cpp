// Tests of the location-scale Normal distribution wrapper.

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/normal.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

TEST(Normal, DefaultIsStandard) {
  const Normal n;
  EXPECT_DOUBLE_EQ(n.mu(), 0.0);
  EXPECT_DOUBLE_EQ(n.sigma(), 1.0);
  EXPECT_NEAR(n.cdf(0.0), 0.5, 1e-15);
}

TEST(Normal, RejectsBadSigma) {
  EXPECT_THROW(Normal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Normal(0.0, -1.0), std::invalid_argument);
}

TEST(Normal, PdfLocationScale) {
  const Normal n(2.0, 3.0);
  EXPECT_NEAR(n.pdf(2.0), 0.3989422804014327 / 3.0, 1e-15);
  EXPECT_NEAR(n.pdf(5.0), n.pdf(-1.0), 1e-16);  // symmetric about mu
}

TEST(Normal, LogPdfConsistent) {
  const Normal n(-1.0, 0.5);
  for (double x : {-3.0, -1.0, 0.0, 2.0}) {
    EXPECT_NEAR(n.log_pdf(x), std::log(n.pdf(x)), 1e-12) << x;
  }
}

TEST(Normal, CdfQuantileRoundTrip) {
  const Normal n(10.0, 2.0);
  for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    EXPECT_NEAR(n.cdf(n.quantile(p)), p, 1e-12) << p;
  }
  EXPECT_NEAR(n.quantile(0.5), 10.0, 1e-12);
}

TEST(Normal, SamplingMatchesMoments) {
  const Normal n(4.0, 1.5);
  Rng rng(test::test_seed(1));
  std::vector<double> xs(100000);
  for (auto& x : xs) x = n.sample(rng);
  const Moments m = compute_moments(xs);
  EXPECT_NEAR(m.mean, 4.0, 0.02);
  EXPECT_NEAR(m.stddev, 1.5, 0.02);
}

TEST(Normal, MomentAccessors) {
  const Normal n(7.0, 3.0);
  EXPECT_DOUBLE_EQ(n.mean(), 7.0);
  EXPECT_DOUBLE_EQ(n.stddev(), 3.0);
  EXPECT_DOUBLE_EQ(n.variance(), 9.0);
}

}  // namespace
}  // namespace lvf2::stats
