// Tests of the four timing models behind the common TimingModel
// interface: construction, fitting, distribution-function sanity,
// LVF^2 EM recovery and backward compatibility (paper Eq. 10).

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/lesn_model.h"
#include "core/lvf2_model.h"
#include "core/lvf_model.h"
#include "core/model_factory.h"
#include "core/norm2_model.h"
#include "stats/descriptive.h"

#include "test_util.h"

namespace lvf2::core {
namespace {

std::vector<double> sn_mixture_samples(double lambda,
                                       const stats::SkewNormal& c1,
                                       const stats::SkewNormal& c2,
                                       std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = (rng.uniform() < lambda) ? c2.sample(rng) : c1.sample(rng);
  }
  return xs;
}

TEST(ModelKind, NamesAndOrder) {
  EXPECT_EQ(to_string(ModelKind::kLvf), "LVF");
  EXPECT_EQ(to_string(ModelKind::kLvf2), "LVF2");
  EXPECT_EQ(to_string(ModelKind::kNorm2), "Norm2");
  EXPECT_EQ(to_string(ModelKind::kLesn), "LESN");
  const auto kinds = all_model_kinds();
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds.front(), ModelKind::kLvf2);
  EXPECT_EQ(kinds.back(), ModelKind::kLvf);
}

TEST(LvfModel, FitMatchesSampleMoments) {
  stats::Rng rng(test::test_seed(1));
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(0.1, 0.01);
  const auto m = LvfModel::fit(xs);
  ASSERT_TRUE(m.has_value());
  const stats::Moments sm = stats::compute_moments(xs);
  EXPECT_NEAR(m->mean(), sm.mean, 1e-10);
  EXPECT_NEAR(m->stddev(), sm.stddev, 1e-10);
  EXPECT_EQ(m->kind(), ModelKind::kLvf);
}

TEST(LvfModel, FromMomentsRoundTrip) {
  const LvfModel m = LvfModel::from_moments({0.5, 0.05, 0.3});
  const stats::SnMoments back = m.moments();
  EXPECT_NEAR(back.mean, 0.5, 1e-10);
  EXPECT_NEAR(back.stddev, 0.05, 1e-10);
  EXPECT_NEAR(back.skewness, 0.3, 1e-7);
}

TEST(Norm2Model, RecoversTwoGaussians) {
  stats::Rng rng(test::test_seed(2));
  std::vector<double> xs;
  for (int i = 0; i < 14000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 6000; ++i) xs.push_back(rng.normal(6.0, 0.5));
  EmReport report;
  const auto m = Norm2Model::fit(xs, {}, &report);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->lambda(), 0.3, 0.02);
  EXPECT_NEAR(m->component1().mean(), 0.0, 0.1);
  EXPECT_NEAR(m->component2().mean(), 6.0, 0.1);
  EXPECT_NEAR(m->component1().stddev(), 1.0, 0.05);
  EXPECT_NEAR(m->component2().stddev(), 0.5, 0.05);
  EXPECT_FALSE(report.collapsed);
  EXPECT_GT(report.iterations, 0u);
}

TEST(Norm2Model, ComponentsCanonicallyOrdered) {
  stats::Rng rng(test::test_seed(3));
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(10.0, 0.3));
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(-10.0, 0.3));
  const auto m = Norm2Model::fit(xs);
  ASSERT_TRUE(m.has_value());
  EXPECT_LT(m->component1().mean(), m->component2().mean());
}

TEST(Norm2Model, MixtureMomentFormulas) {
  const Norm2Model m(0.25, stats::Normal(0.0, 1.0),
                     stats::Normal(4.0, 2.0));
  EXPECT_DOUBLE_EQ(m.mean(), 1.0);
  // var = E[var] + var[means] = (0.75*1 + 0.25*4) + (0.75*1 + 0.25*9).
  EXPECT_NEAR(m.stddev() * m.stddev(), 1.75 + 3.0, 1e-12);
}

TEST(Norm2Model, CdfQuantileRoundTrip) {
  const Norm2Model m(0.4, stats::Normal(0.0, 1.0),
                     stats::Normal(5.0, 0.5));
  for (double p : {0.01, 0.3, 0.5, 0.7, 0.99}) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-9) << p;
  }
}

TEST(Norm2Model, UnimodalDataFallsBackGracefully) {
  stats::Rng rng(test::test_seed(4));
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(1.0, 0.1);
  const auto m = Norm2Model::fit(xs);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->mean(), 1.0, 0.01);
  EXPECT_NEAR(m->stddev(), 0.1, 0.01);
}

TEST(Norm2Model, RejectsInvalidLambda) {
  EXPECT_THROW(Norm2Model(-0.1, stats::Normal(), stats::Normal()),
               std::invalid_argument);
  EXPECT_THROW(Norm2Model(1.1, stats::Normal(), stats::Normal()),
               std::invalid_argument);
}

TEST(LesnModel, FitsPositiveSkewedData) {
  stats::Rng rng(test::test_seed(5));
  std::vector<double> xs(30000);
  for (auto& x : xs) x = 0.05 + 0.02 * std::exp(0.5 * rng.normal());
  const auto m = LesnModel::fit(xs);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind(), ModelKind::kLesn);
  const stats::Moments sm = stats::compute_moments(xs);
  EXPECT_NEAR(m->mean(), sm.mean, 0.02 * sm.mean);
  EXPECT_NEAR(m->stddev(), sm.stddev, 0.1 * sm.stddev);
}

TEST(LesnModel, FallsBackOnDataWithNegativeValues) {
  stats::Rng rng(test::test_seed(6));
  std::vector<double> xs(10000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);  // spans negatives
  const auto m = LesnModel::fit(xs);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->is_lesn());
  EXPECT_EQ(m->lesn(), nullptr);
  EXPECT_NEAR(m->mean(), 0.0, 0.05);
}

TEST(Lvf2Model, BackwardCompatibilityEquation10) {
  // An LVF^2 with lambda = 0 is exactly the LVF skew-normal.
  const stats::SkewNormal lvf = stats::SkewNormal::from_moments(0.1, 0.01, 0.4);
  const Lvf2Model m = Lvf2Model::from_lvf(lvf);
  EXPECT_TRUE(m.is_pure_lvf());
  for (double x : {0.07, 0.09, 0.1, 0.11, 0.13}) {
    EXPECT_DOUBLE_EQ(m.pdf(x), lvf.pdf(x)) << x;
    EXPECT_DOUBLE_EQ(m.cdf(x), lvf.cdf(x)) << x;
  }
  EXPECT_DOUBLE_EQ(m.mean(), lvf.mean());
  EXPECT_DOUBLE_EQ(m.stddev(), lvf.stddev());
}

TEST(Lvf2Model, ParametersRoundTrip) {
  Lvf2Parameters p;
  p.lambda = 0.35;
  p.theta1 = {0.10, 0.010, 0.2};
  p.theta2 = {0.14, 0.015, -0.3};
  const Lvf2Model m = Lvf2Model::from_parameters(p);
  const Lvf2Parameters back = m.parameters();
  EXPECT_NEAR(back.lambda, 0.35, 1e-12);
  EXPECT_NEAR(back.theta1.mean, 0.10, 1e-10);
  EXPECT_NEAR(back.theta2.stddev, 0.015, 1e-10);
  EXPECT_NEAR(back.theta2.skewness, -0.3, 1e-6);
}

TEST(Lvf2Model, MixtureMomentsConsistentWithSampling) {
  const Lvf2Model m(0.3, stats::SkewNormal::from_moments(1.0, 0.1, 0.5),
                    stats::SkewNormal::from_moments(1.5, 0.2, -0.5));
  stats::Rng rng(test::test_seed(7));
  std::vector<double> xs(300000);
  for (auto& x : xs) x = m.sample(rng);
  const stats::Moments sm = stats::compute_moments(xs);
  EXPECT_NEAR(sm.mean, m.mean(), 0.005);
  EXPECT_NEAR(sm.stddev, m.stddev(), 0.005);
  EXPECT_NEAR(sm.skewness, m.skewness(), 0.03);
}

TEST(Lvf2Model, EmRecoversBimodalMixture) {
  const auto c1 = stats::SkewNormal::from_moments(1.0, 0.05, 0.3);
  const auto c2 = stats::SkewNormal::from_moments(1.25, 0.06, -0.2);
  const std::vector<double> xs = sn_mixture_samples(0.35, c1, c2, 30000, 8);
  EmReport report;
  const auto m = Lvf2Model::fit(xs, {}, &report);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(report.collapsed);
  EXPECT_NEAR(m->lambda(), 0.35, 0.08);
  EXPECT_NEAR(m->component1().mean(), 1.0, 0.03);
  EXPECT_NEAR(m->component2().mean(), 1.25, 0.03);
  // Distribution-level agreement (parameters may trade off slightly).
  const stats::EmpiricalCdf golden(xs);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = golden.quantile(q);
    EXPECT_NEAR(m->cdf(x), q, 0.02) << q;
  }
}

TEST(Lvf2Model, EmOnUnimodalDataStaysAccurate) {
  const auto truth = stats::SkewNormal::from_moments(2.0, 0.2, 0.5);
  stats::Rng rng(test::test_seed(9));
  std::vector<double> xs(20000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto m = Lvf2Model::fit(xs);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->mean(), 2.0, 0.02);
  EXPECT_NEAR(m->stddev(), 0.2, 0.02);
  const stats::EmpiricalCdf golden(xs);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(m->cdf(golden.quantile(q)), q, 0.02) << q;
  }
}

TEST(Lvf2Model, ComponentsCanonicallyOrderedByMean) {
  const auto c1 = stats::SkewNormal::from_moments(3.0, 0.1, 0.0);
  const auto c2 = stats::SkewNormal::from_moments(1.0, 0.1, 0.0);
  const std::vector<double> xs = sn_mixture_samples(0.7, c1, c2, 20000, 10);
  const auto m = Lvf2Model::fit(xs);
  ASSERT_TRUE(m.has_value());
  EXPECT_LT(m->component1().mean(), m->component2().mean());
}

TEST(Lvf2Model, CdfQuantileRoundTrip) {
  const Lvf2Model m(0.5, stats::SkewNormal::from_moments(0.0, 1.0, 0.8),
                    stats::SkewNormal::from_moments(5.0, 0.5, -0.8));
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-9) << p;
  }
}

TEST(Lvf2Model, LogPdfMatchesPdf) {
  const Lvf2Model m(0.4, stats::SkewNormal::from_moments(0.0, 1.0, 0.3),
                    stats::SkewNormal::from_moments(2.0, 0.7, 0.0));
  for (double x : {-2.0, 0.0, 1.0, 3.0}) {
    EXPECT_NEAR(m.log_pdf(x), std::log(m.pdf(x)), 1e-10) << x;
  }
}

TEST(Lvf2Model, DegenerateDataWalksDegradationChain) {
  // Empty input: nothing fittable, the chain ends at rejection.
  EmReport rep;
  EXPECT_FALSE(Lvf2Model::fit({}, {}, &rep).has_value());
  EXPECT_EQ(rep.degradation, FitDegradation::kRejected);

  // Constant data: last usable rung — a moment-matched point mass.
  const std::vector<double> constant(100, 5.0);
  const auto m = Lvf2Model::fit(constant, {}, &rep);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(rep.degradation, FitDegradation::kMomentNormal);
  EXPECT_NEAR(m->mean(), 5.0, 1e-6);
  EXPECT_LT(m->stddev(), 1e-7);
  EXPECT_NEAR(m->cdf(5.0 + 1e-6), 1.0, 1e-9);

  // A handful of spread-out samples: too few for EM, lambda = 0
  // single skew-normal by method of moments.
  const std::vector<double> few{1.0, 2.0, 3.0, 4.0};
  const auto f = Lvf2Model::fit(few, {}, &rep);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(rep.degradation, FitDegradation::kSingleSn);
  EXPECT_DOUBLE_EQ(f->lambda(), 0.0);
  EXPECT_NEAR(f->mean(), 2.5, 1e-9);
}

TEST(Lvf2Model, FitSanitizesPoisonedSamples) {
  // A clean bimodal set with injected NaN/Inf and one absurd spike
  // must still fit, and the report must account for the repairs.
  const auto c1 = stats::SkewNormal::from_moments(1.0, 0.05, 0.0);
  const auto c2 = stats::SkewNormal::from_moments(1.5, 0.05, 0.0);
  std::vector<double> xs = sn_mixture_samples(0.5, c1, c2, 20000, 21);
  xs[10] = std::numeric_limits<double>::quiet_NaN();
  xs[500] = std::numeric_limits<double>::infinity();
  xs[900] = -std::numeric_limits<double>::infinity();
  xs[1234] = 1e9;  // absurd outlier spike
  EmReport rep;
  const auto m = Lvf2Model::fit(xs, {}, &rep);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(rep.dropped_samples, 3u);
  EXPECT_GE(rep.clipped_samples, 1u);
  EXPECT_TRUE(std::isfinite(m->mean()));
  EXPECT_NEAR(m->mean(), 1.25, 0.1);
  EXPECT_LT(m->stddev(), 1.0);
}

TEST(ModelFactory, FitsAllKinds) {
  stats::Rng rng(test::test_seed(11));
  std::vector<double> xs(20000);
  for (auto& x : xs) x = 0.1 + 0.01 * std::fabs(rng.normal()) +
                         0.005 * rng.normal();
  for (ModelKind kind : all_model_kinds()) {
    const auto m = fit_model(kind, xs);
    ASSERT_NE(m, nullptr) << to_string(kind);
    EXPECT_EQ(m->kind(), kind);
    // Basic distribution-function sanity for every model.
    EXPECT_LE(m->cdf(m->mean() - 10.0 * m->stddev()), 0.01);
    EXPECT_GE(m->cdf(m->mean() + 10.0 * m->stddev()), 0.99);
    EXPECT_GT(m->pdf(m->mean()), 0.0);
  }
  const auto all = fit_all_models(xs);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_NE(all[i], nullptr);
    EXPECT_EQ(all[i]->kind(), all_model_kinds()[i]);
  }
}

TEST(TimingModel, ToGridMatchesAnalyticCdf) {
  const Lvf2Model m(0.3, stats::SkewNormal::from_moments(1.0, 0.1, 0.4),
                    stats::SkewNormal::from_moments(1.4, 0.12, 0.0));
  const stats::GridPdf g = m.to_grid(2048);
  for (double x : {0.8, 1.0, 1.2, 1.4, 1.6}) {
    EXPECT_NEAR(g.cdf(x), m.cdf(x), 2e-3) << x;
  }
  EXPECT_NEAR(g.mean(), m.mean(), 1e-3);
}

}  // namespace
}  // namespace lvf2::core
