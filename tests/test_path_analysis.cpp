// Tests of the Fig. 5 path-assessment engine: FO4 reference, result
// shapes, the LVF unit baseline and the CLT decay property.

#include <cmath>

#include <gtest/gtest.h>

#include "circuits/adder.h"
#include "ssta/path_analysis.h"

namespace lvf2::ssta {
namespace {

TEST(Fo4, PositiveAndStable) {
  const double fo4 = fo4_delay_ns(spice::ProcessCorner{});
  EXPECT_GT(fo4, 0.001);
  EXPECT_LT(fo4, 0.1);
  EXPECT_DOUBLE_EQ(fo4, fo4_delay_ns(spice::ProcessCorner{}));
}

class PathAssessmentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuits::AdderOptions options;
    options.bits = 6;
    const TimingPath path = circuits::build_adder_critical_path(
        options, spice::ProcessCorner{});
    PathAssessmentOptions opts;
    opts.mc.samples = 6000;
    opts.model_grid_points = 1024;
    assessment_ = new PathAssessment(
        assess_path(path, spice::ProcessCorner{}, opts));
    depth_ = path.depth();
  }
  static void TearDownTestSuite() {
    delete assessment_;
    assessment_ = nullptr;
  }
  static const PathAssessment& assessment() { return *assessment_; }
  static std::size_t depth() { return depth_; }

 private:
  static PathAssessment* assessment_;
  static std::size_t depth_;
};

PathAssessment* PathAssessmentTest::assessment_ = nullptr;
std::size_t PathAssessmentTest::depth_ = 0;

TEST_F(PathAssessmentTest, ShapesMatchDepth) {
  const PathAssessment& a = assessment();
  EXPECT_EQ(a.fo4_position.size(), depth());
  EXPECT_EQ(a.binning_reduction.size(), depth());
  EXPECT_EQ(a.cdf_rmse_reduction.size(), depth());
  EXPECT_EQ(a.golden_skewness.size(), depth());
}

TEST_F(PathAssessmentTest, Fo4PositionsIncrease) {
  const PathAssessment& a = assessment();
  for (std::size_t i = 1; i < a.fo4_position.size(); ++i) {
    EXPECT_GT(a.fo4_position[i], a.fo4_position[i - 1]);
  }
  EXPECT_GT(a.fo4_position.back(), 3.0);
}

TEST_F(PathAssessmentTest, LvfBaselineIsUnity) {
  const PathAssessment& a = assessment();
  for (std::size_t i = 0; i < a.binning_reduction.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.binning_reduction[i][3], 1.0) << i;  // LVF last
    EXPECT_DOUBLE_EQ(a.cdf_rmse_reduction[i][3], 1.0) << i;
  }
}

TEST_F(PathAssessmentTest, AllReductionsPositiveFinite) {
  const PathAssessment& a = assessment();
  for (const auto& row : a.binning_reduction) {
    for (double r : row) {
      EXPECT_GT(r, 0.0);
      EXPECT_TRUE(std::isfinite(r));
    }
  }
}

TEST_F(PathAssessmentTest, Lvf2BeatsLvfAtFirstStage) {
  // At stage 0 the propagated model IS the per-stage fit, where the
  // skew-normal mixture must beat the single skew-normal.
  const PathAssessment& a = assessment();
  EXPECT_GE(a.binning_reduction[0][0], 1.0);
}

TEST_F(PathAssessmentTest, GoldenSkewnessNotGrowing) {
  // CLT: the standardized skewness of the cumulative delay decays
  // (up to MC noise) as stages accumulate.
  const PathAssessment& a = assessment();
  const double first = std::fabs(a.golden_skewness.front());
  const double last = std::fabs(a.golden_skewness.back());
  EXPECT_LT(last, first + 0.15);
}

TEST(PathAssessment, EmptyPathYieldsEmptyResult) {
  const TimingPath empty;
  const PathAssessment a =
      assess_path(empty, spice::ProcessCorner{}, {});
  EXPECT_TRUE(a.fo4_position.empty());
  EXPECT_TRUE(a.binning_reduction.empty());
}

}  // namespace
}  // namespace lvf2::ssta
