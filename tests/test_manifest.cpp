// Tests of the QoR run manifest (obs::ManifestRecorder), the shared
// JSON document model, and the lvf2_report reader/differ built on
// top of it. The recorder is a process singleton; each TEST runs as
// its own process (gtest_discover_tests), and every test that arms
// the recorder discards it before returning.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cells/characterize.h"
#include "circuits/adder.h"
#include "obs/obs.h"
#include "report.h"
#include "ssta/path_analysis.h"

namespace lvf2 {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

obs::ArcQor sample_arc(const std::string& cell, double binning) {
  obs::ArcQor arc;
  arc.table = "test";
  arc.cell = cell;
  arc.arc = "A->Y";
  arc.metric = "delay";
  arc.load_idx = 1;
  arc.slew_idx = 2;
  arc.golden_mean = 0.02;
  arc.golden_stddev = 0.003;
  arc.golden_skewness = 0.4;
  arc.em_iterations = 17;
  arc.em_log_likelihood = 123.5;
  arc.em_converged = true;
  obs::ModelQor m;
  m.model = "LVF2";
  m.binning = binning;
  m.yield_3sigma = 1e-4;
  m.cdf_rmse = 2e-3;
  m.x_binning = 10.0;
  m.x_yield_3sigma = 8.0;
  m.x_cdf_rmse = 9.0;
  arc.models.push_back(std::move(m));
  return arc;
}

// Arms the recorder, runs `fill`, writes and reloads the manifest.
obs::JsonValue build_manifest(const char* file,
                              void (*fill)(obs::ManifestRecorder&)) {
  const std::string path = temp_path(file);
  obs::ManifestRecorder& recorder = obs::ManifestRecorder::instance();
  recorder.start(path);
  fill(recorder);
  recorder.stop();
  std::string error;
  auto doc = tools::load_manifest(path, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  std::remove(path.c_str());
  return doc.value_or(obs::JsonValue{});
}

TEST(Manifest, DisabledByDefaultWhenEnvUnset) {
  if (std::getenv("LVF2_MANIFEST") != nullptr) {
    GTEST_SKIP() << "LVF2_MANIFEST is set in this environment";
  }
  EXPECT_FALSE(obs::manifest_enabled());
  // The with_manifest() hook must not invoke its callback.
  bool called = false;
  obs::with_manifest([&](obs::ManifestRecorder&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Manifest, SchemaVersionAndStableKeyOrder) {
  obs::ManifestRecorder& recorder = obs::ManifestRecorder::instance();
  recorder.start(temp_path("lvf2_manifest_order.json"));
  EXPECT_TRUE(obs::manifest_enabled());
  recorder.set_config("b_second", std::uint64_t{2});
  recorder.set_config("a_first", "one");
  recorder.add_arc(sample_arc("CELL", 0.01));
  const std::string json = recorder.to_json();
  recorder.discard();
  EXPECT_FALSE(obs::manifest_enabled());

  std::string error;
  const auto doc = obs::json_parse(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  // Top-level keys in documented order.
  ASSERT_GE(doc->object.size(), 7u);
  EXPECT_EQ(doc->object[0].first, "schema_version");
  EXPECT_EQ(doc->object[1].first, "tool");
  EXPECT_EQ(doc->object[2].first, "config");
  EXPECT_EQ(doc->object[3].first, "stages");
  EXPECT_EQ(doc->object[4].first, "metrics");
  EXPECT_EQ(doc->object[5].first, "arcs");
  EXPECT_EQ(doc->object[6].first, "endpoints");
  EXPECT_EQ(doc->number_or("schema_version", 0.0), obs::kManifestSchemaVersion);
  EXPECT_EQ(doc->string_or("tool", ""), "lvf2");
  // Config preserves insertion order, not alphabetical order.
  const obs::JsonValue* config = doc->find("config");
  ASSERT_NE(config, nullptr);
  ASSERT_EQ(config->object.size(), 2u);
  EXPECT_EQ(config->object[0].first, "b_second");
  EXPECT_EQ(config->object[1].first, "a_first");
  // Arc row keys in documented order (identity first, results last).
  const obs::JsonValue* arcs = doc->find("arcs");
  ASSERT_NE(arcs, nullptr);
  ASSERT_EQ(arcs->array.size(), 1u);
  const obs::JsonValue& arc = arcs->array[0];
  ASSERT_GE(arc.object.size(), 10u);
  EXPECT_EQ(arc.object[0].first, "table");
  EXPECT_EQ(arc.object.back().first, "models");
  EXPECT_EQ(arc.number_or("load_idx", -2.0), 1.0);
  const obs::JsonValue* em = arc.find("em");
  ASSERT_NE(em, nullptr);
  EXPECT_EQ(em->number_or("iterations", 0.0), 17.0);
}

TEST(Manifest, RoundTripsThroughReportParserAndSelfDiffIsClean) {
  const obs::JsonValue doc = build_manifest(
      "lvf2_manifest_roundtrip.json", [](obs::ManifestRecorder& m) {
        m.set_config("samples", std::uint64_t{4000});
        m.add_arc(sample_arc("INV", 0.01));
        m.add_arc(sample_arc("NAND", 0.02));
      });
  ASSERT_TRUE(doc.is_object());
  // Serialize -> parse -> serialize is byte-stable (key order kept).
  const std::string once = obs::json_write(doc);
  const auto reparsed = obs::json_parse(once);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(obs::json_write(*reparsed), once);
  // A manifest never drifts against itself.
  const tools::DiffResult diff = tools::diff_manifests(doc, doc);
  EXPECT_TRUE(diff.ok());
  EXPECT_TRUE(diff.notes.empty());
}

TEST(Manifest, DiffFlagsDriftMissingArcAndStatusFlips) {
  const obs::JsonValue golden = build_manifest(
      "lvf2_manifest_ref.json", [](obs::ManifestRecorder& m) {
        m.add_arc(sample_arc("INV", 0.010));
        m.add_arc(sample_arc("NAND", 0.020));
      });
  const obs::JsonValue current = build_manifest(
      "lvf2_manifest_cur.json", [](obs::ManifestRecorder& m) {
        m.add_arc(sample_arc("INV", 0.013));  // +30% > 10% tolerance
        obs::ArcQor extra = sample_arc("XOR", 0.020);
        m.add_arc(std::move(extra));
      });

  const tools::DiffResult diff = tools::diff_manifests(golden, current);
  EXPECT_FALSE(diff.ok());
  ASSERT_EQ(diff.regressions.size(), 2u) << diff.regressions.size();
  EXPECT_NE(diff.regressions[0].find("binning"), std::string::npos);
  EXPECT_NE(diff.regressions[1].find("missing"), std::string::npos);
  // The extra XOR arc is a note, never a regression.
  ASSERT_EQ(diff.notes.size(), 1u);
  EXPECT_NE(diff.notes[0].find("XOR"), std::string::npos);

  // Within tolerance the same drift passes.
  tools::DiffOptions loose;
  loose.rtol = 0.5;
  const tools::DiffResult ok =
      tools::diff_manifests(golden, current, loose);
  EXPECT_EQ(ok.regressions.size(), 1u);  // only the missing NAND arc
}

TEST(Manifest, DiffFlagsDegradationAndConvergenceFlips) {
  const obs::JsonValue golden = build_manifest(
      "lvf2_manifest_em_ref.json", [](obs::ManifestRecorder& m) {
        m.add_arc(sample_arc("INV", 0.01));
      });
  const obs::JsonValue current = build_manifest(
      "lvf2_manifest_em_cur.json", [](obs::ManifestRecorder& m) {
        obs::ArcQor arc = sample_arc("INV", 0.01);
        arc.em_converged = false;
        arc.em_iterations = 80;
        arc.degradation = "single_sn";
        m.add_arc(std::move(arc));
      });
  const tools::DiffResult diff = tools::diff_manifests(golden, current);
  ASSERT_EQ(diff.regressions.size(), 2u);
  EXPECT_NE(diff.regressions[0].find("degradation"), std::string::npos);
  EXPECT_NE(diff.regressions[1].find("converged"), std::string::npos);
  // Iteration-count drift alone is informational.
  ASSERT_EQ(diff.notes.size(), 1u);
  EXPECT_NE(diff.notes[0].find("iterations"), std::string::npos);
}

TEST(Manifest, DiffYieldHsSectionPresenceAndEmptyRows) {
  const obs::JsonValue golden = *obs::json_parse(
      R"({"arcs":[],"yield_hs":{"rows":[)"
      R"({"label":"2 Peaks","sigma":3,"p_fail":0.00055,"ess":4100}]}})");
  const obs::JsonValue without = *obs::json_parse(R"({"arcs":[]})");
  tools::DiffOptions opts;
  opts.sections.push_back("yield_hs");

  // Losing the whole section is a regression, not a silent skip.
  const tools::DiffResult missing =
      tools::diff_manifests(golden, without, opts);
  EXPECT_FALSE(missing.ok());
  ASSERT_EQ(missing.regressions.size(), 1u);
  EXPECT_NE(missing.regressions[0].find("disappeared"), std::string::npos);

  // Absent from both sides is informational only.
  const tools::DiffResult both_absent =
      tools::diff_manifests(without, without, opts);
  EXPECT_TRUE(both_absent.ok());
  ASSERT_EQ(both_absent.notes.size(), 1u);
  EXPECT_NE(both_absent.notes[0].find("absent"), std::string::npos);

  // An emptied row array diffs as an explicit size change — and an
  // empty `arcs` table on both sides must not trip anything.
  const obs::JsonValue empty_rows =
      *obs::json_parse(R"({"arcs":[],"yield_hs":{"rows":[]}})");
  const tools::DiffResult rows =
      tools::diff_manifests(golden, empty_rows, opts);
  EXPECT_FALSE(rows.ok());
  ASSERT_EQ(rows.regressions.size(), 1u);
  EXPECT_NE(rows.regressions[0].find("array size"), std::string::npos);

  // Identical sections agree even at zero tolerance.
  tools::DiffOptions zero;
  zero.rtol = 0.0;
  zero.atol = 0.0;
  zero.sections.push_back("yield_hs");
  EXPECT_TRUE(tools::diff_manifests(golden, golden, zero).ok());
}

TEST(Manifest, DiffNanFieldsAreExplicitDriftNotSilentlyEqual) {
  // Non-finite values render as JSON null (the precision-17 writer).
  // In an arc row, null vs number must surface as drift — the old
  // behavior read the unset `number` field of both sides and compared
  // 0 == 0 — while null on both sides agrees (NaN == NaN in a golden
  // is reproduced state, the same contract as within()).
  const char* kNullRow =
      R"({"arcs":[{"table":"t1","cell":"INV","arc":"a","metric":"delay",)"
      R"("load_idx":0,"slew_idx":0,"status":"ok",)"
      R"("models":{"lvf2":{"binning":null,"yield_3sigma":0.99}}}]})";
  const char* kNumberRow =
      R"({"arcs":[{"table":"t1","cell":"INV","arc":"a","metric":"delay",)"
      R"("load_idx":0,"slew_idx":0,"status":"ok",)"
      R"("models":{"lvf2":{"binning":0.012,"yield_3sigma":0.99}}}]})";
  const obs::JsonValue with_null = *obs::json_parse(kNullRow);
  const obs::JsonValue with_number = *obs::json_parse(kNumberRow);

  const tools::DiffResult drift =
      tools::diff_manifests(with_null, with_number);
  EXPECT_FALSE(drift.ok());
  ASSERT_EQ(drift.regressions.size(), 1u);
  EXPECT_NE(drift.regressions[0].find("null"), std::string::npos);

  const tools::DiffResult reverse =
      tools::diff_manifests(with_number, with_null);
  EXPECT_FALSE(reverse.ok());
  ASSERT_EQ(reverse.regressions.size(), 1u);
  EXPECT_NE(reverse.regressions[0].find("null"), std::string::npos);

  EXPECT_TRUE(tools::diff_manifests(with_null, with_null).ok());
}

TEST(Manifest, AtomicWriteLeavesNoTmpFile) {
  const std::string path = temp_path("lvf2_manifest_atomic.json");
  ASSERT_TRUE(obs::write_file_atomic(path, "{\"ok\":true}\n"));
  EXPECT_EQ(read_file(path), "{\"ok\":true}\n");
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // Overwrite goes through the same tmp+rename and stays whole.
  ASSERT_TRUE(obs::write_file_atomic(path, "{\"ok\":false}\n"));
  EXPECT_EQ(read_file(path), "{\"ok\":false}\n");
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Manifest, CharacterizeStreamsArcRowsAndStageRollups) {
  const std::string path = temp_path("lvf2_manifest_char.json");
  obs::ManifestRecorder::instance().start(path);

  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::reduced(4);  // 2x2
  options.mc_samples = 1500;
  const cells::Characterizer ch(spice::ProcessCorner{}, options);
  const cells::Cell inv = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  ch.characterize_arc(inv, inv.arcs[0]);

  obs::ManifestRecorder::instance().stop();
  std::string error;
  const auto doc = tools::load_manifest(path, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  std::remove(path.c_str());

  const obs::JsonValue* config = doc->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->number_or("characterize.mc_samples", 0.0), 1500.0);

  const obs::JsonValue* arcs = doc->find("arcs");
  ASSERT_NE(arcs, nullptr);
  ASSERT_EQ(arcs->array.size(), 4u);  // one per grid entry
  for (const obs::JsonValue& arc : arcs->array) {
    EXPECT_EQ(arc.string_or("table", ""), "characterize");
    EXPECT_EQ(arc.string_or("cell", ""), "INV_X1");
    EXPECT_EQ(arc.string_or("status", ""), "ok");
    const obs::JsonValue* models = arc.find("models");
    ASSERT_NE(models, nullptr);
    ASSERT_EQ(models->object.size(), 4u);
    EXPECT_EQ(models->object[0].first, "LVF2");
    EXPECT_EQ(models->object[3].first, "LVF");
    // LVF is its own baseline: reductions pinned at 1.
    const obs::JsonValue& lvf = models->object[3].second;
    EXPECT_DOUBLE_EQ(lvf.number_or("x_binning", 0.0), 1.0);
  }

  // Stage rollups accumulated without LVF2_TRACE being set.
  const obs::JsonValue* stages = doc->find("stages");
  ASSERT_NE(stages, nullptr);
  const obs::JsonValue* entry = stages->find("characterize.entry");
  ASSERT_NE(entry, nullptr) << obs::json_write(*stages);
  EXPECT_EQ(entry->number_or("count", 0.0), 4.0);
  EXPECT_GT(entry->number_or("wall_ms", -1.0), 0.0);
}

TEST(Manifest, AssessPathEmitsEndpointRow) {
  const std::string path = temp_path("lvf2_manifest_endpoint.json");
  obs::ManifestRecorder::instance().start(path);

  circuits::AdderOptions adder;
  adder.bits = 3;
  const ssta::TimingPath timing_path =
      circuits::build_adder_critical_path(adder, spice::ProcessCorner{});
  ssta::PathAssessmentOptions opts;
  opts.mc.samples = 2000;
  opts.model_grid_points = 512;
  ssta::assess_path(timing_path, spice::ProcessCorner{}, opts);

  obs::ManifestRecorder::instance().stop();
  std::string error;
  const auto doc = tools::load_manifest(path, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  std::remove(path.c_str());

  const obs::JsonValue* endpoints = doc->find("endpoints");
  ASSERT_NE(endpoints, nullptr);
  ASSERT_EQ(endpoints->array.size(), 1u);
  const obs::JsonValue& e = endpoints->array[0];
  EXPECT_EQ(e.string_or("path", ""), timing_path.name);
  EXPECT_EQ(e.number_or("depth", 0.0),
            static_cast<double>(timing_path.stages.size()));
  const obs::JsonValue* golden = e.find("golden");
  ASSERT_NE(golden, nullptr);
  EXPECT_GT(golden->number_or("mean", 0.0), 0.0);
  // Empirical golden yield at mu + 3 sigma sits near 1.
  EXPECT_GT(golden->number_or("yield_3sigma", 0.0), 0.9);
  const obs::JsonValue* models = e.find("models");
  ASSERT_NE(models, nullptr);
  EXPECT_EQ(models->object.size(), 4u);
}

TEST(ReportCli, ShowDiffAndExitCodes) {
  const std::string ref = temp_path("lvf2_cli_ref.json");
  const std::string drifted = temp_path("lvf2_cli_drift.json");
  {
    obs::ManifestRecorder& m = obs::ManifestRecorder::instance();
    m.start(ref);
    m.set_config("samples", std::uint64_t{100});
    m.add_arc(sample_arc("INV", 0.010));
    m.stop();
    m.start(drifted);
    m.add_arc(sample_arc("INV", 0.020));  // 2x the reference binning
    m.stop();
  }
  const auto run = [](std::initializer_list<const char*> argv) {
    std::vector<const char*> args(argv);
    return tools::report_main(static_cast<int>(args.size()), args.data());
  };
  EXPECT_EQ(run({"lvf2_report"}), 2);
  EXPECT_EQ(run({"lvf2_report", "bogus", ref.c_str()}), 2);
  EXPECT_EQ(run({"lvf2_report", "show", "/nonexistent.json"}), 2);
  EXPECT_EQ(run({"lvf2_report", "show", ref.c_str()}), 0);
  EXPECT_EQ(run({"lvf2_report", "canon", ref.c_str()}), 0);
  EXPECT_EQ(run({"lvf2_report", "diff", ref.c_str(), ref.c_str()}), 0);
  EXPECT_EQ(run({"lvf2_report", "diff", ref.c_str(), drifted.c_str()}), 1);
  // Generous tolerance turns the same drift into a pass.
  EXPECT_EQ(run({"lvf2_report", "diff", ref.c_str(), drifted.c_str(),
                 "--rtol", "0.9"}),
            0);
  std::remove(ref.c_str());
  std::remove(drifted.c_str());
}

}  // namespace
}  // namespace lvf2
