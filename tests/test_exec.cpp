// Tests of the exec fork-join pool: thread-budget parsing, coverage
// and ordering guarantees, exception propagation, nested-call inline
// fallback, and — the property everything else rides on — bitwise
// reproducibility of the parallelized hot loops at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cells/characterize.h"
#include "circuits/adder.h"
#include "exec/pool.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "spice/montecarlo.h"
#include "ssta/mc_ssta.h"

namespace lvf2::exec {
namespace {

/// Restores the environment-configured thread budget on scope exit so
/// a failing test cannot leak its override into later tests.
struct ScopedThreadCount {
  explicit ScopedThreadCount(std::size_t count) { set_thread_count(count); }
  ~ScopedThreadCount() { set_thread_count(0); }
};

TEST(ParseThreadCount, FallsBackOnMissingOrInvalid) {
  EXPECT_EQ(parse_thread_count(nullptr, 7), 7u);
  EXPECT_EQ(parse_thread_count("", 7), 7u);
  EXPECT_EQ(parse_thread_count("0", 7), 7u);
  EXPECT_EQ(parse_thread_count("garbage", 7), 7u);
  EXPECT_EQ(parse_thread_count("4x", 7), 7u);
  EXPECT_EQ(parse_thread_count("-3", 7), 7u);
  EXPECT_EQ(parse_thread_count("5000", 7), 7u);  // above the sanity cap
}

TEST(ParseThreadCount, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_thread_count("1", 7), 1u);
  EXPECT_EQ(parse_thread_count("2", 7), 2u);
  EXPECT_EQ(parse_thread_count("64", 7), 64u);
  EXPECT_EQ(parse_thread_count("4096", 7), 4096u);
}

TEST(ThreadCount, OverrideWinsAndZeroRestores) {
  {
    ScopedThreadCount guard(3);
    EXPECT_EQ(thread_count(), 3u);
  }
  EXPECT_GE(thread_count(), 1u);  // back to env / hardware default
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  ScopedThreadCount guard(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, 7, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroItemsIsANoOp) {
  ScopedThreadCount guard(4);
  parallel_for(0, 1, [](std::size_t) { FAIL() << "fn called for n == 0"; });
}

TEST(ParallelFor, SingleThreadRunsInlineOnCaller) {
  ScopedThreadCount guard(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  parallel_for(64, 1, [&](std::size_t) {
    // Inline execution: same thread, no parallel-region flag — the
    // pool is not involved at all.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_FALSE(in_parallel_region());
    ++calls;  // safe: single-threaded by construction
  });
  EXPECT_EQ(calls, 64u);
}

TEST(ParallelFor, PropagatesFirstExceptionAndStaysUsable) {
  ScopedThreadCount guard(4);
  EXPECT_THROW(parallel_for(100, 1,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error("boom at 37");
                              }
                            }),
               std::runtime_error);
  // The shared pool must survive a failed job and run the next one.
  std::atomic<std::size_t> ran{0};
  parallel_for(100, 1, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 100u);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ScopedThreadCount guard(4);
  std::atomic<std::size_t> inner_total{0};
  parallel_for(8, 1, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // Re-entering parallel_for from pool work must degrade to a plain
    // loop on this thread instead of waiting on the busy pool.
    parallel_for(8, 1, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64u);
}

TEST(ParallelMap, PreservesResultOrder) {
  ScopedThreadCount guard(4);
  const std::vector<int> out = parallel_map<int>(
      257, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(Pool, ConstructRunTeardownRepeatedly) {
  // Direct pool lifecycle (not the shared instance): constructing,
  // dispatching, and joining must be leak- and deadlock-free.
  for (int round = 0; round < 5; ++round) {
    Pool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<std::size_t> ran{0};
    const std::function<void(std::size_t)> fn = [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    };
    pool.run(500, 9, 4, fn);
    EXPECT_EQ(ran.load(), 500u);
  }
}

TEST(Pool, WorkerLimitCapsParallelism) {
  Pool pool(8);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  const std::function<void(std::size_t)> fn = [&](std::size_t) {
    const int now = active.fetch_add(1, std::memory_order_relaxed) + 1;
    int seen = peak.load(std::memory_order_relaxed);
    while (seen < now &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    active.fetch_sub(1, std::memory_order_relaxed);
  };
  pool.run(64, 1, 2, fn);  // parallelism 2: caller + at most 1 worker
  EXPECT_LE(peak.load(), 2);
}

// --- bitwise reproducibility of the parallelized hot loops ---------

void expect_same_moments(const stats::SnMoments& a, const stats::SnMoments& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.skewness, b.skewness);
}

void expect_same_lvf2(const core::Lvf2Parameters& a,
                      const core::Lvf2Parameters& b) {
  EXPECT_EQ(a.lambda, b.lambda);
  expect_same_moments(a.theta1, b.theta1);
  expect_same_moments(a.theta2, b.theta2);
}

TEST(ExecDeterminism, CharacterizeArcBitwiseEqualAcrossThreadCounts) {
  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::reduced(4);  // 2x2
  options.mc_samples = 1500;
  const cells::Cell inv = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  const cells::Characterizer ch(spice::ProcessCorner{}, options);

  cells::ArcCharacterization serial, threaded;
  {
    ScopedThreadCount guard(1);
    serial = ch.characterize_arc(inv, inv.arcs[0]);
  }
  {
    ScopedThreadCount guard(4);
    threaded = ch.characterize_arc(inv, inv.arcs[0]);
  }

  ASSERT_EQ(serial.entries.size(), threaded.entries.size());
  for (std::size_t i = 0; i < serial.entries.size(); ++i) {
    const auto& s = serial.entries[i];
    const auto& t = threaded.entries[i];
    EXPECT_EQ(s.condition.slew_ns, t.condition.slew_ns);
    EXPECT_EQ(s.condition.load_pf, t.condition.load_pf);
    EXPECT_EQ(s.nominal_delay_ns, t.nominal_delay_ns);
    EXPECT_EQ(s.nominal_transition_ns, t.nominal_transition_ns);
    expect_same_moments(s.lvf_delay, t.lvf_delay);
    expect_same_moments(s.lvf_transition, t.lvf_transition);
    expect_same_lvf2(s.lvf2_delay, t.lvf2_delay);
    expect_same_lvf2(s.lvf2_transition, t.lvf2_transition);
    EXPECT_EQ(s.lvf2_delay_report.iterations, t.lvf2_delay_report.iterations);
    EXPECT_EQ(s.lvf2_delay_report.log_likelihood,
              t.lvf2_delay_report.log_likelihood);
    EXPECT_EQ(s.status.is_ok(), t.status.is_ok());
  }
}

TEST(ExecDeterminism, ShardedMonteCarloStableAcrossThreadCounts) {
  const spice::ProcessCorner corner;
  const spice::StageElectrical stage;
  spice::McConfig cfg;
  cfg.samples = 2000;
  cfg.seed = 77;
  cfg.shards = 4;

  spice::McResult serial, threaded;
  {
    ScopedThreadCount guard(1);
    serial = spice::run_monte_carlo(stage, {0.05, 0.05}, corner, cfg);
  }
  {
    ScopedThreadCount guard(4);
    threaded = spice::run_monte_carlo(stage, {0.05, 0.05}, corner, cfg);
  }
  EXPECT_EQ(serial.delay_ns, threaded.delay_ns);
  EXPECT_EQ(serial.transition_ns, threaded.transition_ns);
}

TEST(ExecDeterminism, SingleShardMatchesHistoricalStream) {
  // shards == 1 (the default) must reproduce the pre-sharding sample
  // stream byte-for-byte even when threads are available; shards > 1
  // is a different (opt-in) stream.
  const spice::ProcessCorner corner;
  const spice::StageElectrical stage;
  spice::McConfig legacy;
  legacy.samples = 800;
  legacy.seed = 42;

  spice::McResult baseline = spice::run_monte_carlo(
      stage, {0.05, 0.05}, corner, legacy);

  ScopedThreadCount guard(4);
  const spice::McResult same =
      spice::run_monte_carlo(stage, {0.05, 0.05}, corner, legacy);
  EXPECT_EQ(baseline.delay_ns, same.delay_ns);

  spice::McConfig sharded = legacy;
  sharded.shards = 4;
  const spice::McResult different =
      spice::run_monte_carlo(stage, {0.05, 0.05}, corner, sharded);
  EXPECT_EQ(different.delay_ns.size(), baseline.delay_ns.size());
  EXPECT_NE(baseline.delay_ns, different.delay_ns);
}

TEST(ExecDeterminism, PathMonteCarloStableAcrossThreadCounts) {
  circuits::AdderOptions options;
  options.bits = 4;
  const ssta::TimingPath path =
      circuits::build_adder_critical_path(options, spice::ProcessCorner{});
  ssta::PathMcConfig cfg;
  cfg.samples = 400;

  ssta::PathMcResult serial, threaded;
  {
    ScopedThreadCount guard(1);
    serial = ssta::run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  }
  {
    ScopedThreadCount guard(4);
    threaded = ssta::run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  }
  EXPECT_EQ(serial.stage_delays, threaded.stage_delays);
  EXPECT_EQ(serial.cumulative, threaded.cumulative);
}

// --- pool telemetry -------------------------------------------------

TEST(PoolTelemetry, DisabledByDefaultAndTogglable) {
  EXPECT_FALSE(telemetry_enabled());  // LVF2_EXEC_TELEMETRY unset
  set_telemetry(true);
  EXPECT_TRUE(telemetry_enabled());
  set_telemetry(false);
  EXPECT_FALSE(telemetry_enabled());
}

TEST(PoolTelemetry, CountsEveryChunkAndIndexUnderStress) {
  ScopedThreadCount guard(8);
  const std::vector<WorkerTelemetry> before = telemetry_snapshot();
  std::uint64_t chunks_before = 0;
  std::uint64_t indices_before = 0;
  for (const WorkerTelemetry& slot : before) {
    chunks_before += slot.chunks;
    indices_before += slot.indices;
  }

  set_telemetry(true);
  constexpr std::size_t kN = 10000;
  constexpr std::size_t kChunk = 3;
  constexpr int kJobs = 5;
  std::atomic<std::size_t> ran{0};
  for (int job = 0; job < kJobs; ++job) {
    parallel_for(kN, kChunk, [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  set_telemetry(false);
  EXPECT_EQ(ran.load(), kN * kJobs);

  const std::vector<WorkerTelemetry> after = telemetry_snapshot();
  ASSERT_FALSE(after.empty());
  std::uint64_t chunks = 0;
  std::uint64_t indices = 0;
  std::size_t active_slots = 0;
  for (const WorkerTelemetry& slot : after) {
    chunks += slot.chunks;
    indices += slot.indices;
    if (slot.indices > 0) ++active_slots;
    EXPECT_GE(slot.busy_us, 0.0);
  }
  // Every index ran exactly once and every chunk claim was counted:
  // ceil(kN / kChunk) chunks per job, kN indices per job.
  EXPECT_EQ(indices - indices_before, kN * kJobs);
  EXPECT_EQ(chunks - chunks_before,
            ((kN + kChunk - 1) / kChunk) * kJobs);
  // With 10000 tiny chunks across 5 jobs, more than one of the 8
  // slots (caller + workers) must have claimed work.
  EXPECT_GT(active_slots, 1u);

  // The registry also feeds the manifest `exec` section.
  obs::ManifestRecorder& recorder = obs::ManifestRecorder::instance();
  const std::string path = testing::TempDir() + "exec_telemetry.json";
  recorder.start(path);
  const std::string json = recorder.to_json();
  recorder.discard();
  EXPECT_NE(json.find("\"exec\":{\"workers\":"), std::string::npos);
  EXPECT_NE(json.find("\"per_worker\":[{\"slot\":\"caller\""),
            std::string::npos);
}

TEST(PoolTelemetry, OffPathRecordsNothingNew) {
  ScopedThreadCount guard(4);
  ASSERT_FALSE(telemetry_enabled());
  const std::vector<WorkerTelemetry> before = telemetry_snapshot();
  parallel_for(1000, 7, [](std::size_t) {});
  const std::vector<WorkerTelemetry> after = telemetry_snapshot();
  std::uint64_t before_indices = 0;
  std::uint64_t after_indices = 0;
  for (const WorkerTelemetry& slot : before) before_indices += slot.indices;
  for (const WorkerTelemetry& slot : after) after_indices += slot.indices;
  EXPECT_EQ(before_indices, after_indices);
}

// --- concurrent observability stress -------------------------------

TEST(ExecStress, ConcurrentObserveKeepsTotalsExact) {
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  obs::Counter& counter = obs::counter("test.exec.stress.count");
  obs::DoubleCounter& dcounter =
      obs::double_counter("test.exec.stress.sum");
  obs::Histogram& histogram = obs::MetricsRegistry::instance().histogram(
      "test.exec.stress.histogram", {0.25, 0.5, 0.75});

  const std::uint64_t count_before = counter.value();
  const double sum_before = dcounter.value();
  const std::uint64_t hist_before = histogram.count();
  const double hist_sum_before = histogram.sum();

  obs::ManifestRecorder& recorder = obs::ManifestRecorder::instance();
  const std::string path = testing::TempDir() + "exec_stress_manifest.json";
  recorder.start(path);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.add(1);
        dcounter.add(0.5);
        histogram.observe(static_cast<double>(i % 4) * 0.25);
        if (i % 100 == 0) {
          obs::ArcQor arc;
          arc.table = "stress";
          arc.cell = "CELL_" + std::to_string(t);
          arc.arc = "A->Y";
          arc.metric = "delay";
          arc.load_idx = i;
          recorder.add_arc(std::move(arc));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // CAS-loop double accumulation must not lose updates: the sums are
  // exact (0.5 and the 0/0.25/0.5/0.75 cycle are binary-exact).
  EXPECT_EQ(counter.value() - count_before,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(dcounter.value() - sum_before, kThreads * kIters * 0.5);
  EXPECT_EQ(histogram.count() - hist_before,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(histogram.sum() - hist_sum_before,
                   kThreads * (kIters / 4) * (0.0 + 0.25 + 0.5 + 0.75));

  const std::string json = recorder.to_json();
  recorder.discard();
  std::remove(path.c_str());
  std::size_t rows = 0;
  for (std::size_t pos = json.find("\"table\":\"stress\"");
       pos != std::string::npos;
       pos = json.find("\"table\":\"stress\"", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, static_cast<std::size_t>(kThreads) * (kIters / 100));
}

}  // namespace
}  // namespace lvf2::exec
