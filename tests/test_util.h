#pragma once
// Shared test seeding. Every ad-hoc rng seed in the suite routes
// through test_seed() so one environment variable re-runs the whole
// suite on a different — still deterministic — stream:
//
//   LVF2_TEST_SEED=7 ctest ...
//
// shakes out tests that only pass by seed lottery without giving up
// reproducibility (the override mixes into each call site's default,
// so two sites never collapse onto the same stream). Unset, each call
// returns its default unchanged and committed expectations hold.

#include <cstdint>
#include <cstdlib>

#include "stats/rng.h"

namespace lvf2::test {

inline std::uint64_t test_seed(std::uint64_t default_seed) {
  if (const char* env = std::getenv("LVF2_TEST_SEED");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      return stats::combine_seed(static_cast<std::uint64_t>(v), default_seed);
    }
  }
  return default_seed;
}

}  // namespace lvf2::test
