// Tests of the weighted-fit / refit layer added for block-based SSTA
// node refits: WeightedData from grids, fit_weighted on the mixture
// models, refit_model for every family, the statistical error floors,
// and the two propagation semantics of the path engine.

#include <cmath>

#include <gtest/gtest.h>

#include "circuits/adder.h"
#include "core/binning.h"
#include "core/lvf2_model.h"
#include "core/model_factory.h"
#include "core/norm2_model.h"
#include "ssta/path_analysis.h"
#include "stats/normal.h"

namespace lvf2::core {
namespace {

stats::GridPdf mixture_grid() {
  const stats::SkewNormal c1 = stats::SkewNormal::from_moments(1.0, 0.05, 0.3);
  const stats::SkewNormal c2 =
      stats::SkewNormal::from_moments(1.25, 0.06, -0.2);
  return stats::GridPdf::from_function(
      [&](double x) { return 0.65 * c1.pdf(x) + 0.35 * c2.pdf(x); }, 0.7,
      1.6, 2048);
}

TEST(WeightedDataFromGrid, PreservesMassAndMoments) {
  const stats::GridPdf g = mixture_grid();
  const WeightedData data = make_weighted_data(g);
  EXPECT_GT(data.size(), 1000u);
  EXPECT_NEAR(data.total_weight, 1.0, 1e-6);
  const stats::Moments m = stats::compute_weighted_moments(data.x, data.w);
  EXPECT_NEAR(m.mean, g.mean(), 1e-3);
  EXPECT_NEAR(m.stddev, g.stddev(), 1e-3);
}

TEST(WeightedDataFromGrid, EmptyGridGivesEmptyData) {
  const stats::GridPdf empty;
  EXPECT_EQ(make_weighted_data(empty).size(), 0u);
}

TEST(FitWeighted, Lvf2RecoversTabulatedMixture) {
  const stats::GridPdf g = mixture_grid();
  const auto m = Lvf2Model::fit_weighted(make_weighted_data(g));
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->lambda(), 0.35, 0.08);
  EXPECT_NEAR(m->component1().mean(), 1.0, 0.03);
  EXPECT_NEAR(m->component2().mean(), 1.25, 0.03);
  for (double x : {0.9, 1.0, 1.1, 1.25, 1.4}) {
    EXPECT_NEAR(m->cdf(x), g.cdf(x), 0.01) << x;
  }
}

TEST(FitWeighted, Norm2RecoversTabulatedMixture) {
  const stats::Normal c1(1.0, 0.05), c2(1.3, 0.04);
  const stats::GridPdf g = stats::GridPdf::from_function(
      [&](double x) { return 0.7 * c1.pdf(x) + 0.3 * c2.pdf(x); }, 0.7,
      1.6, 2048);
  const auto m = Norm2Model::fit_weighted(make_weighted_data(g));
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(m->lambda(), 0.3, 0.05);
  EXPECT_NEAR(m->component1().mean(), 1.0, 0.02);
  EXPECT_NEAR(m->component2().mean(), 1.3, 0.02);
}

class RefitModelAllKinds : public ::testing::TestWithParam<ModelKind> {};

TEST_P(RefitModelAllKinds, ReproducesGridCdf) {
  const stats::GridPdf g = mixture_grid();
  const auto m = refit_model(GetParam(), g);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind(), GetParam());
  // Every family at least matches mean / sigma of the grid. LESN's
  // four-moment match is a bounded-residual optimization, so its
  // sigma can be off by a few percent when the (skew, kurtosis) pair
  // sits at the family boundary.
  EXPECT_NEAR(m->mean(), g.mean(), 2e-3);
  const double sd_tol =
      (GetParam() == ModelKind::kLesn) ? 0.05 * g.stddev() : 2e-3;
  EXPECT_NEAR(m->stddev(), g.stddev(), sd_tol);
  // The mixtures should track the full CDF closely.
  if (GetParam() == ModelKind::kLvf2 || GetParam() == ModelKind::kNorm2 ||
      GetParam() == ModelKind::kLvfK) {
    for (double x : {0.95, 1.1, 1.3}) {
      EXPECT_NEAR(m->cdf(x), g.cdf(x), 0.02) << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, RefitModelAllKinds,
                         ::testing::Values(ModelKind::kLvf,
                                           ModelKind::kNorm2,
                                           ModelKind::kLesn,
                                           ModelKind::kLvf2,
                                           ModelKind::kLvfK));

TEST(RefitModel, EmptyGridReturnsNull) {
  const stats::GridPdf empty;
  EXPECT_EQ(refit_model(ModelKind::kLvf2, empty), nullptr);
}

TEST(ErrorFloors, ScaleWithSampleCount) {
  EXPECT_GT(binning_error_floor(1000), binning_error_floor(100000));
  EXPECT_GT(yield_error_floor(1000), yield_error_floor(100000));
  EXPECT_GT(cdf_rmse_floor(1000), cdf_rmse_floor(100000));
  EXPECT_NEAR(yield_error_floor(10000), 5e-5, 1e-12);
}

TEST(ErrorFloors, ClampBothSidesOfEquation12) {
  // Sub-resolution errors on both sides give a ratio near 1, not inf.
  const double floor = yield_error_floor(10000);
  EXPECT_DOUBLE_EQ(error_reduction(floor / 10, floor / 100, floor), 1.0);
  // A real baseline error against a sub-resolution model error is
  // capped at baseline / floor.
  EXPECT_DOUBLE_EQ(error_reduction(10 * floor, 0.0, floor), 10.0);
}

TEST(PathPropagationModes, BothProduceFiniteDecayingCurves) {
  circuits::AdderOptions adder;
  adder.bits = 4;
  const ssta::TimingPath path =
      circuits::build_adder_critical_path(adder, spice::ProcessCorner{});
  ssta::PathAssessmentOptions options;
  options.mc.samples = 4000;
  options.model_grid_points = 1024;

  options.refit_at_each_stage = true;
  const ssta::PathAssessment refit =
      ssta::assess_path(path, spice::ProcessCorner{}, options);
  options.refit_at_each_stage = false;
  const ssta::PathAssessment numeric =
      ssta::assess_path(path, spice::ProcessCorner{}, options);

  ASSERT_EQ(refit.binning_reduction.size(), path.depth());
  ASSERT_EQ(numeric.binning_reduction.size(), path.depth());
  for (std::size_t i = 0; i < path.depth(); ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_TRUE(std::isfinite(refit.binning_reduction[i][k]));
      EXPECT_TRUE(std::isfinite(numeric.binning_reduction[i][k]));
      EXPECT_GT(refit.binning_reduction[i][k], 0.0);
    }
    // LVF is the unit baseline in both modes.
    EXPECT_DOUBLE_EQ(refit.binning_reduction[i][3], 1.0);
    EXPECT_DOUBLE_EQ(numeric.binning_reduction[i][3], 1.0);
  }
  // Stage 0 is identical in both modes (no propagation yet).
  EXPECT_NEAR(refit.binning_reduction[0][0],
              numeric.binning_reduction[0][0], 1e-9);
}

}  // namespace
}  // namespace lvf2::core
