// Tests of 1-D k-means: recovery of separated clusters, canonical
// ordering, weighted clustering and degenerate inputs.

#include <vector>

#include <gtest/gtest.h>

#include "stats/kmeans.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

std::vector<double> two_blobs(double c1, double c2, std::size_t n1,
                              std::size_t n2, double spread, Rng& rng) {
  std::vector<double> xs;
  xs.reserve(n1 + n2);
  for (std::size_t i = 0; i < n1; ++i) xs.push_back(rng.normal(c1, spread));
  for (std::size_t i = 0; i < n2; ++i) xs.push_back(rng.normal(c2, spread));
  return xs;
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  Rng rng(test::test_seed(1));
  const std::vector<double> xs = two_blobs(0.0, 10.0, 500, 500, 0.5, rng);
  const KMeansResult r = kmeans_1d(xs, 2, rng);
  ASSERT_EQ(r.centers.size(), 2u);
  EXPECT_NEAR(r.centers[0], 0.0, 0.15);
  EXPECT_NEAR(r.centers[1], 10.0, 0.15);
  EXPECT_NEAR(static_cast<double>(r.sizes[0]), 500.0, 10.0);
  EXPECT_TRUE(r.converged);
}

TEST(KMeans, CentersAscendingAndAssignmentsConsistent) {
  Rng rng(test::test_seed(2));
  const std::vector<double> xs = two_blobs(5.0, -3.0, 300, 700, 1.0, rng);
  const KMeansResult r = kmeans_1d(xs, 2, rng);
  ASSERT_EQ(r.centers.size(), 2u);
  EXPECT_LT(r.centers[0], r.centers[1]);
  // Samples assigned to cluster 0 must be nearer to center 0.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d0 = std::abs(xs[i] - r.centers[0]);
    const double d1 = std::abs(xs[i] - r.centers[1]);
    if (r.assignment[i] == 0) {
      EXPECT_LE(d0, d1 + 1e-12);
    } else {
      EXPECT_LE(d1, d0 + 1e-12);
    }
  }
}

TEST(KMeans, WeightsShiftCenters) {
  // Heavily weighting the right-most points pulls its center.
  const std::vector<double> xs = {0.0, 1.0, 10.0, 11.0, 12.0};
  const std::vector<double> ws = {1.0, 1.0, 1.0, 1.0, 10.0};
  Rng rng(test::test_seed(3));
  const KMeansResult r = kmeans_1d(xs, 2, rng, {}, ws);
  ASSERT_EQ(r.centers.size(), 2u);
  EXPECT_NEAR(r.centers[0], 0.5, 1e-9);
  // Weighted mean of {10 (w1), 11 (w1), 12 (w10)} = 141/12.
  EXPECT_NEAR(r.centers[1], 141.0 / 12.0, 1e-9);
}

TEST(KMeans, SingleCluster) {
  Rng rng(test::test_seed(4));
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const KMeansResult r = kmeans_1d(xs, 1, rng);
  ASSERT_EQ(r.centers.size(), 1u);
  EXPECT_NEAR(r.centers[0], 2.0, 1e-12);
  EXPECT_EQ(r.sizes[0], 3u);
}

TEST(KMeans, DegenerateInputsReturnEmpty) {
  Rng rng(test::test_seed(5));
  const std::vector<double> xs = {1.0};
  EXPECT_TRUE(kmeans_1d(xs, 2, rng).centers.empty());
  EXPECT_TRUE(kmeans_1d(xs, 0, rng).centers.empty());
  const std::vector<double> bad_w = {1.0};
  const std::vector<double> xs2 = {1.0, 2.0};
  EXPECT_TRUE(kmeans_1d(xs2, 2, rng, {}, bad_w).centers.empty());
}

TEST(KMeans, IdenticalPointsDoNotCrash) {
  Rng rng(test::test_seed(6));
  const std::vector<double> xs(50, 4.2);
  const KMeansResult r = kmeans_1d(xs, 2, rng);
  ASSERT_EQ(r.centers.size(), 2u);
  EXPECT_DOUBLE_EQ(r.centers[0], 4.2);
  EXPECT_DOUBLE_EQ(r.centers[1], 4.2);
}

TEST(KMeans, InertiaIsSumOfSquaredDistances) {
  Rng rng(test::test_seed(7));
  const std::vector<double> xs = {0.0, 2.0, 10.0, 12.0};
  const KMeansResult r = kmeans_1d(xs, 2, rng);
  // Clusters {0,2} and {10,12}: inertia = 1+1+1+1 = 4.
  EXPECT_NEAR(r.inertia, 4.0, 1e-9);
}

TEST(KMeans, ThreeClusters) {
  Rng rng(test::test_seed(8));
  std::vector<double> xs;
  for (double c : {-10.0, 0.0, 10.0}) {
    for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(c, 0.3));
  }
  const KMeansResult r = kmeans_1d(xs, 3, rng);
  ASSERT_EQ(r.centers.size(), 3u);
  EXPECT_NEAR(r.centers[0], -10.0, 0.2);
  EXPECT_NEAR(r.centers[1], 0.0, 0.2);
  EXPECT_NEAR(r.centers[2], 10.0, 0.2);
}

}  // namespace
}  // namespace lvf2::stats
