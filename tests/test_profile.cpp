// Tests of the performance-observability layer: LVF2_PROFILE spec
// parsing, folded-stack aggregation (FoldedProfile and the
// lvf2_report parser), stage tagging, an end-to-end sampling session,
// the resource accountant, and the perf-budget differ. The signal
// machinery is cooperative and process-global; each TEST runs as its
// own process (gtest_discover_tests), and every test that starts a
// session stops it before returning.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "report.h"

namespace lvf2 {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- LVF2_PROFILE spec parsing -------------------------------------

TEST(ProfileSpec, PathOnlyUsesDefaultRate) {
  const auto options = obs::prof::parse_profile_spec("/tmp/out.folded");
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->path, "/tmp/out.folded");
  EXPECT_EQ(options->hz, 97);
}

TEST(ProfileSpec, ParsesAndClampsRate) {
  auto options = obs::prof::parse_profile_spec("p.folded,hz=250");
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->path, "p.folded");
  EXPECT_EQ(options->hz, 250);

  options = obs::prof::parse_profile_spec("p.folded,hz=99999");
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->hz, 1000);  // clamped to the ceiling
}

TEST(ProfileSpec, RejectsEmptyPathAndGarbageRate) {
  std::string error;
  EXPECT_FALSE(obs::prof::parse_profile_spec(nullptr, &error).has_value());
  EXPECT_FALSE(obs::prof::parse_profile_spec("", &error).has_value());
  EXPECT_FALSE(
      obs::prof::parse_profile_spec(",hz=97", &error).has_value());
  EXPECT_FALSE(
      obs::prof::parse_profile_spec("p,hz=abc", &error).has_value());
  EXPECT_FALSE(error.empty());
  // Only ",hz=" is special; a comma elsewhere is part of the path.
  const auto comma_path = obs::prof::parse_profile_spec("p,bogus=1");
  ASSERT_TRUE(comma_path.has_value());
  EXPECT_EQ(comma_path->path, "p,bogus=1");
}

// --- folded-stack aggregation --------------------------------------

TEST(FoldedProfile, AggregatesIdenticalStacksAndRendersRootFirst) {
  obs::prof::FoldedProfile profile;
  const void* inner = reinterpret_cast<const void*>(0x1001);
  const void* outer = reinterpret_cast<const void*>(0x2002);
  const void* frames[] = {inner, outer};  // innermost first (backtrace order)
  profile.add("em.fit", frames, 2);
  profile.add("em.fit", frames, 2, 4);
  const void* other[] = {outer};
  profile.add("spice.mc", other, 1);
  profile.add("", other, 1);  // untagged

  EXPECT_EQ(profile.total_samples(), 7u);
  EXPECT_EQ(profile.distinct_stacks(), 3u);

  const std::string folded = profile.render([&](const void* addr) {
    return addr == inner ? std::string("inner_fn") : std::string("outer_fn");
  });
  // Root-first: the stage tag leads, then outer, then inner.
  EXPECT_NE(folded.find("em.fit;outer_fn;inner_fn 5\n"), std::string::npos);
  EXPECT_NE(folded.find("spice.mc;outer_fn 1\n"), std::string::npos);
  EXPECT_NE(folded.find("(untagged);outer_fn 1\n"), std::string::npos);
}

TEST(ReportFolded, ParsesAggregatesAndRejectsMalformedLines) {
  const auto stacks = tools::parse_folded(
      "characterize;run_mc 3\r\nem.fit;solve 2\ncharacterize;run_mc 4\n\n");
  ASSERT_TRUE(stacks.has_value());
  ASSERT_EQ(stacks->size(), 2u);
  std::uint64_t characterize = 0;
  for (const tools::FoldedStack& s : *stacks) {
    if (s.stack == "characterize;run_mc") characterize = s.count;
  }
  EXPECT_EQ(characterize, 7u);

  std::string error;
  EXPECT_FALSE(tools::parse_folded("no_trailing_count", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(tools::parse_folded("stack 12x", &error).has_value());
}

TEST(ReportFolded, FlameRollsUpStagesAndRanksStacks) {
  const auto stacks = tools::parse_folded(
      "characterize;a;b 60\ncharacterize;a 30\nem.fit;c 10\n");
  ASSERT_TRUE(stacks.has_value());
  const std::string flame = tools::render_flame(*stacks, 2);
  EXPECT_NE(flame.find("total: 100 samples, 3 distinct stacks"),
            std::string::npos);
  // Stage rollup sums both characterize stacks (90%) above em.fit.
  const std::size_t characterize_pos = flame.find("90.0%) characterize");
  const std::size_t em_pos = flame.find("10.0%) em.fit");
  ASSERT_NE(characterize_pos, std::string::npos);
  ASSERT_NE(em_pos, std::string::npos);
  EXPECT_LT(characterize_pos, em_pos);
  // top 2 keeps the hottest stacks only.
  EXPECT_NE(flame.find("characterize;a;b"), std::string::npos);
  EXPECT_EQ(flame.find("em.fit;c"), std::string::npos);
}

// --- stage tagging --------------------------------------------------

TEST(ProfileStage, PushPopNestsAndTracksInnermost) {
  EXPECT_EQ(obs::prof::current_stage(), "");
  obs::prof::push_stage("characterize");
  EXPECT_EQ(obs::prof::current_stage(), "characterize");
  obs::prof::push_stage("em.fit");
  EXPECT_EQ(obs::prof::current_stage(), "em.fit");
  obs::prof::pop_stage();
  EXPECT_EQ(obs::prof::current_stage(), "characterize");
  obs::prof::pop_stage();
  EXPECT_EQ(obs::prof::current_stage(), "");
  obs::prof::pop_stage();  // underflow is a no-op
  EXPECT_EQ(obs::prof::current_stage(), "");
}

TEST(ProfileStage, DeepNestingKeepsDeepestTaggedStage) {
  for (int i = 0; i < 20; ++i) {
    obs::prof::push_stage("level" + std::to_string(i));
  }
  // Slots beyond the fixed budget are dropped; the deepest tagged
  // stage stays current until its matching pops unwind.
  const std::string deepest = obs::prof::current_stage();
  EXPECT_FALSE(deepest.empty());
  for (int i = 0; i < 20; ++i) obs::prof::pop_stage();
  EXPECT_EQ(obs::prof::current_stage(), "");
}

// --- end-to-end sampling session -----------------------------------

TEST(Profiler, SamplesBusyLoopIntoFoldedFile) {
  obs::prof::Profiler& profiler = obs::prof::Profiler::instance();
  ASSERT_FALSE(profiler.running());
  obs::prof::ProfileOptions options;
  options.path = temp_path("profile_session.folded");
  options.hz = 500;
  if (!profiler.start(options)) {
    GTEST_SKIP() << "platform without profiler support";
  }
  EXPECT_TRUE(profiler.running());
  EXPECT_TRUE(obs::prof::profiler_enabled());
  EXPECT_FALSE(profiler.start(options));  // one session at a time

  volatile double sink = 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  {
    obs::TraceSpan span("profile.test.busy");
    while (std::chrono::steady_clock::now() < deadline) {
      for (int i = 1; i < 2000; ++i) sink = sink + 1.0 / i;
    }
  }
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(obs::prof::profiler_enabled());
  profiler.stop();  // idempotent

  const obs::prof::ProfileStats stats = profiler.stats();
  EXPECT_GT(stats.samples, 0u);
  EXPECT_GE(stats.threads, 1u);

  const std::string folded = read_file(options.path);
  ASSERT_FALSE(folded.empty());
  // Samples taken inside the span carry its stage tag at the root.
  EXPECT_NE(folded.find("profile.test.busy"), std::string::npos);
  // The folded file round-trips through the report parser.
  const auto stacks = tools::parse_folded(folded);
  ASSERT_TRUE(stacks.has_value());
  std::uint64_t total = 0;
  for (const tools::FoldedStack& s : *stacks) total += s.count;
  EXPECT_EQ(total, stats.samples);
  std::remove(options.path.c_str());
}

// --- resource accountant -------------------------------------------

TEST(Resource, UsageReportsPeakRssAndCpu) {
  const obs::ResourceUsage usage = obs::resource_usage();
  EXPECT_GT(usage.peak_rss_kb, 0u);  // the test process is resident
  const std::string json = obs::resource_section_json();
  EXPECT_NE(json.find("\"peak_rss_kb\":"), std::string::npos);
  EXPECT_NE(json.find("\"utime_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"alloc\":{\"enabled\":"), std::string::npos);
}

TEST(Resource, AllocCountersTrackNewWhenEnabled) {
  ASSERT_FALSE(obs::alloc_stats_enabled());  // env-off default
  obs::set_alloc_stats(true);
  const obs::AllocSnapshot process_before = obs::process_alloc_totals();
  const obs::AllocSnapshot thread_before = obs::thread_alloc_totals();
  {
    std::vector<char> block(1 << 16);
    block[0] = 1;
    EXPECT_EQ(block[0], 1);
  }
  const obs::AllocSnapshot process_after = obs::process_alloc_totals();
  const obs::AllocSnapshot thread_after = obs::thread_alloc_totals();
  obs::set_alloc_stats(false);
  EXPECT_GT(process_after.count, process_before.count);
  EXPECT_GE(process_after.bytes - process_before.bytes, std::uint64_t{1}
                                                            << 16);
  EXPECT_GT(thread_after.count, thread_before.count);
}

TEST(Resource, StageRollupAppearsInResourceSection) {
  obs::record_stage_alloc("test.resource.stage", 3, 4096);
  const std::string json = obs::resource_section_json();
  EXPECT_NE(json.find("\"test.resource.stage\":{\"alloc_count\":3,"
                      "\"alloc_bytes\":4096}"),
            std::string::npos);
}

// --- perf-budget differ --------------------------------------------

obs::JsonValue perf_manifest(double characterize_ms, double rss_kb) {
  std::ostringstream doc;
  doc << "{\"schema_version\":1,\"tool\":\"lvf2\","
      << "\"stages\":{\"characterize\":{\"count\":1,\"wall_ms\":"
      << characterize_ms << ",\"cpu_ms\":" << characterize_ms << "},"
      << "\"em.fit\":{\"count\":4,\"wall_ms\":10.0,\"cpu_ms\":9.0}},"
      << "\"resource\":{\"peak_rss_kb\":" << rss_kb
      << ",\"utime_s\":1.0,\"stime_s\":0.25}}";
  auto parsed = obs::json_parse(doc.str());
  EXPECT_TRUE(parsed.has_value());
  return *parsed;
}

TEST(PerfDiff, WithinBudgetPasses) {
  const obs::JsonValue baseline = perf_manifest(100.0, 50000.0);
  const obs::JsonValue current = perf_manifest(130.0, 55000.0);
  tools::PerfBudget budget;
  budget.pct = 50.0;
  budget.abs_ms = 5.0;
  budget.abs_kb = 1024.0;
  const tools::DiffResult result =
      tools::diff_perf(baseline, current, budget);
  EXPECT_TRUE(result.ok()) << (result.regressions.empty()
                                   ? ""
                                   : result.regressions.front());
}

TEST(PerfDiff, FlagsInflatedStageWallTime) {
  const obs::JsonValue baseline = perf_manifest(100.0, 50000.0);
  const obs::JsonValue current = perf_manifest(100.0 * 100, 50000.0);
  tools::PerfBudget budget;
  budget.pct = 300.0;
  budget.abs_ms = 500.0;
  const tools::DiffResult result =
      tools::diff_perf(baseline, current, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.regressions.front().find("characterize"),
            std::string::npos);
}

TEST(PerfDiff, FlagsRssGrowthBeyondBudget) {
  const obs::JsonValue baseline = perf_manifest(100.0, 50000.0);
  const obs::JsonValue current = perf_manifest(100.0, 500000.0);
  tools::PerfBudget budget;
  budget.pct = 50.0;
  budget.abs_kb = 1024.0;
  const tools::DiffResult result =
      tools::diff_perf(baseline, current, budget);
  ASSERT_FALSE(result.ok());
  bool rss_flagged = false;
  for (const std::string& regression : result.regressions) {
    if (regression.find("peak_rss_kb") != std::string::npos) {
      rss_flagged = true;
    }
  }
  EXPECT_TRUE(rss_flagged);
}

TEST(PerfDiff, ImprovementsAndNewStagesAreNotRegressions) {
  const obs::JsonValue baseline = perf_manifest(100.0, 50000.0);
  auto current = obs::json_parse(
      "{\"schema_version\":1,\"tool\":\"lvf2\","
      "\"stages\":{\"characterize\":{\"count\":1,\"wall_ms\":1.0,"
      "\"cpu_ms\":1.0},"
      "\"ssta.propagate\":{\"count\":1,\"wall_ms\":5.0,\"cpu_ms\":5.0}},"
      "\"resource\":{\"peak_rss_kb\":10000,\"utime_s\":0.1,"
      "\"stime_s\":0.01}}");
  ASSERT_TRUE(current.has_value());
  const tools::DiffResult result = tools::diff_perf(baseline, *current, {});
  EXPECT_TRUE(result.ok());
  bool noted_missing = false;
  bool noted_new = false;
  for (const std::string& note : result.notes) {
    if (note.find("em.fit") != std::string::npos) noted_missing = true;
    if (note.find("ssta.propagate") != std::string::npos) noted_new = true;
  }
  EXPECT_TRUE(noted_missing);
  EXPECT_TRUE(noted_new);
}

// --- diff --sections opt-in ----------------------------------------

TEST(SectionDiff, SkippedByDefaultOptedInWithSections) {
  const auto golden = obs::json_parse(
      "{\"schema_version\":1,\"tool\":\"lvf2\",\"arcs\":[],"
      "\"endpoints\":[],\"resource\":{\"peak_rss_kb\":1000}}");
  const auto current = obs::json_parse(
      "{\"schema_version\":1,\"tool\":\"lvf2\",\"arcs\":[],"
      "\"endpoints\":[],\"resource\":{\"peak_rss_kb\":999999}}");
  ASSERT_TRUE(golden.has_value() && current.has_value());

  // Default: the nondeterministic section is invisible to the gate.
  tools::DiffOptions zero;
  zero.rtol = 0.0;
  zero.atol = 0.0;
  EXPECT_TRUE(tools::diff_manifests(*golden, *current, zero).ok());

  // Opted in: the same drift is a regression.
  zero.sections = {"resource"};
  const tools::DiffResult result =
      tools::diff_manifests(*golden, *current, zero);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.regressions.front().find("resource.peak_rss_kb"),
            std::string::npos);
}

}  // namespace
}  // namespace lvf2
