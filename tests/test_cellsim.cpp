// Tests of the analytical stage simulator: monotonicity of nominal
// times, the regime (mechanism) model and its slew/load-dependent
// mixture weight, and physical floors.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spice/cellsim.h"
#include "spice/montecarlo.h"
#include "stats/descriptive.h"

#include "test_util.h"

namespace lvf2::spice {
namespace {

TEST(CellSim, NominalTimesPositive) {
  const ProcessCorner corner;
  const StageElectrical stage;
  for (double slew : {0.002, 0.05, 0.8}) {
    for (double load : {0.0002, 0.05, 0.9}) {
      const StageTimes t =
          nominal_stage_times(stage, {slew, load}, corner);
      EXPECT_GT(t.delay_ns, 0.0) << slew << "," << load;
      EXPECT_GT(t.transition_ns, 0.0) << slew << "," << load;
    }
  }
}

TEST(CellSim, DelayMonotoneInLoad) {
  const ProcessCorner corner;
  const StageElectrical stage;
  double prev = 0.0;
  for (double load : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    const StageTimes t = nominal_stage_times(stage, {0.05, load}, corner);
    EXPECT_GT(t.delay_ns, prev) << load;
    prev = t.delay_ns;
  }
}

TEST(CellSim, TransitionMonotoneInLoad) {
  const ProcessCorner corner;
  const StageElectrical stage;
  double prev = 0.0;
  for (double load : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    const StageTimes t = nominal_stage_times(stage, {0.05, load}, corner);
    EXPECT_GT(t.transition_ns, prev) << load;
    prev = t.transition_ns;
  }
}

TEST(CellSim, StackSlowsStage) {
  const ProcessCorner corner;
  StageElectrical inv, nand4;
  nand4.pull.stack = 4;
  const ArcCondition cond{0.05, 0.05};
  EXPECT_GT(nominal_stage_times(nand4, cond, corner).delay_ns,
            nominal_stage_times(inv, cond, corner).delay_ns);
}

TEST(CellSim, MechanismProbabilityMonotoneInSlew) {
  // Slow inputs push towards the input-coupled mechanism B.
  const ProcessCorner corner;
  const StageElectrical stage;
  double prev = -1.0;
  for (double slew : {0.002, 0.01, 0.05, 0.2, 0.9}) {
    const double lambda =
        mechanism_b_probability(stage, {slew, 0.05}, corner);
    EXPECT_GE(lambda, 0.0);
    EXPECT_LE(lambda, 1.0);
    EXPECT_GT(lambda, prev) << slew;
    prev = lambda;
  }
}

TEST(CellSim, MechanismProbabilityMonotoneDecreasingInLoad) {
  const ProcessCorner corner;
  const StageElectrical stage;
  double prev = 2.0;
  for (double load : {0.001, 0.01, 0.1, 0.5}) {
    const double lambda =
        mechanism_b_probability(stage, {0.05, load}, corner);
    EXPECT_LT(lambda, prev) << load;
    prev = lambda;
  }
}

TEST(CellSim, RealizedRegimeFractionMatchesAnalyticLambda) {
  // The Monte-Carlo fraction of mechanism-B samples must match the
  // analytic Phi(theta) weight.
  const ProcessCorner corner;
  StageElectrical stage;
  stage.mechanism_gain = 3.0;  // widen separation so regimes are clear
  // Pick a condition with mid-range lambda.
  ArcCondition cond{0.05, 0.02};
  const double lambda = mechanism_b_probability(stage, cond, corner);
  ASSERT_GT(lambda, 0.1);
  ASSERT_LT(lambda, 0.9);

  McConfig cfg;
  cfg.samples = 40000;
  cfg.seed = 7;
  const McResult mc = run_monte_carlo(stage, cond, corner, cfg);
  // With a large separation the two regimes split around a midpoint;
  // classify by 2-means and compare the upper-cluster weight.
  stats::Rng rng(test::test_seed(1));
  std::vector<double> xs = mc.delay_ns;
  const stats::Moments m = stats::compute_moments(xs);
  // B adds a positive offset -> B samples are the upper cluster.
  std::size_t upper = 0;
  for (double x : xs) {
    if (x > m.mean) ++upper;
  }
  // Loose agreement: clusters overlap somewhat.
  EXPECT_NEAR(static_cast<double>(upper) / xs.size(), lambda, 0.12);
}

TEST(CellSim, MixtureAppearsAtConfrontationPoint) {
  // At a mid-lambda condition with strong gain the delay kurtosis
  // drops well below 3 (bimodal signature).
  const ProcessCorner corner;
  StageElectrical stage;
  stage.mechanism_gain = 2.5;
  ArcCondition cond{0.05, 0.02};
  McConfig cfg;
  cfg.samples = 20000;
  const McResult mc = run_monte_carlo(stage, cond, corner, cfg);
  EXPECT_LT(stats::compute_moments(mc.delay_ns).kurtosis, 2.6);
}

TEST(CellSim, PureRegimeIsUnimodalSkewed) {
  // Deep in the drive-limited region (tiny slew, big load) the delay
  // distribution is a single right-skewed mode.
  const ProcessCorner corner;
  const StageElectrical stage;
  ArcCondition cond{0.0023, 0.9};
  EXPECT_LT(mechanism_b_probability(stage, cond, corner), 0.01);
  McConfig cfg;
  cfg.samples = 20000;
  const McResult mc = run_monte_carlo(stage, cond, corner, cfg);
  const stats::Moments m = stats::compute_moments(mc.delay_ns);
  EXPECT_GT(m.skewness, 0.1);  // 1/(Vdd-Vth)^alpha right tail
  EXPECT_NEAR(m.kurtosis, 3.3, 0.5);
}

TEST(CellSim, TimesNeverNegative) {
  const ProcessCorner corner;
  const StageElectrical stage;
  VariationSample extreme;
  extreme.dvth_n = -0.2;
  extreme.dmob_n = 0.9;
  const StageTimes t =
      simulate_stage(stage, {0.9, 0.0001}, corner, extreme);
  EXPECT_GT(t.delay_ns, 0.0);
  EXPECT_GT(t.transition_ns, 0.0);
}

TEST(CellSim, NominalDelayBetweenMechanismExtremes) {
  const ProcessCorner corner;
  const StageElectrical stage;
  const ArcCondition cond{0.05, 0.05};
  const VariationSample nominal{};
  const StageTimes blended = nominal_stage_times(stage, cond, corner);
  const StageTimes sampled = simulate_stage(stage, cond, corner, nominal);
  // The blended nominal sits within a mechanism separation of the
  // sampled nominal regime.
  EXPECT_NEAR(blended.delay_ns, sampled.delay_ns,
              0.6 * sampled.delay_ns);
}

}  // namespace
}  // namespace lvf2::spice
