// Tests of the analytic (grid-free) skew-normal mixture operations:
// pairwise convolution exactness through order 3, moment-preserving
// merging, mixture reduction, and agreement of the analytic SSTA sum
// with the grid-convolution reference and with Monte Carlo.

#include <cmath>

#include <gtest/gtest.h>

#include "core/mixture_ops.h"
#include "ssta/block_ssta.h"
#include "stats/descriptive.h"

#include "test_util.h"

namespace lvf2::core {
namespace {

TEST(ConvolveSkewNormals, FirstThreeMomentsExact) {
  const stats::SkewNormal x = stats::SkewNormal::from_moments(1.0, 0.2, 0.5);
  const stats::SkewNormal y =
      stats::SkewNormal::from_moments(2.0, 0.3, -0.4);
  const stats::SkewNormal s = convolve_skew_normals(x, y);
  EXPECT_NEAR(s.mean(), 3.0, 1e-10);
  EXPECT_NEAR(s.variance(), 0.04 + 0.09, 1e-10);
  const double m3_x = 0.5 * 0.2 * 0.2 * 0.2;
  const double m3_y = -0.4 * 0.3 * 0.3 * 0.3;
  const double m3_s = s.skewness() * std::pow(s.variance(), 1.5);
  EXPECT_NEAR(m3_s, m3_x + m3_y, 1e-10);
}

TEST(ConvolveSkewNormals, GaussianPlusGaussianIsGaussian) {
  const stats::SkewNormal x(0.0, 1.0, 0.0);
  const stats::SkewNormal y(5.0, 2.0, 0.0);
  const stats::SkewNormal s = convolve_skew_normals(x, y);
  EXPECT_NEAR(s.skewness(), 0.0, 1e-12);
  EXPECT_NEAR(s.mean(), 5.0, 1e-10);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0), 1e-10);
}

TEST(ConvolveSkewNormals, CdfMatchesGridConvolution) {
  const stats::SkewNormal x = stats::SkewNormal::from_moments(0.1, 0.01, 0.6);
  const stats::SkewNormal y =
      stats::SkewNormal::from_moments(0.2, 0.015, 0.3);
  const stats::SkewNormal analytic = convolve_skew_normals(x, y);
  const auto grid_of = [](const stats::SkewNormal& sn) {
    return stats::GridPdf::from_function(
        [&sn](double v) { return sn.pdf(v); }, sn.mean() - 8 * sn.stddev(),
        sn.mean() + 8 * sn.stddev(), 2048);
  };
  const stats::GridPdf reference =
      stats::GridPdf::convolve(grid_of(x), grid_of(y));
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double v = reference.quantile(q);
    // Moment matching is exact to order 3; residual shape error stays
    // well under a CDF percent.
    EXPECT_NEAR(analytic.cdf(v), q, 0.005) << q;
  }
}

TEST(MergeSkewNormals, PreservesMixtureMoments) {
  const stats::SkewNormal a = stats::SkewNormal::from_moments(1.0, 0.1, 0.4);
  const stats::SkewNormal b =
      stats::SkewNormal::from_moments(1.2, 0.15, -0.3);
  const double w1 = 0.7, w2 = 0.3;
  const stats::SkewNormal merged = merge_skew_normals(w1, a, w2, b);
  // Reference mixture moments.
  const Lvf2Model mix(w2, a, b);
  EXPECT_NEAR(merged.mean(), mix.mean(), 1e-10);
  EXPECT_NEAR(merged.stddev(), mix.stddev(), 1e-10);
  // Skewness may clamp at the SN bound; this pair stays inside it.
  ASSERT_LT(std::fabs(mix.skewness()), 0.99);
  EXPECT_NEAR(merged.skewness(), mix.skewness(), 1e-6);
}

TEST(MergeSkewNormals, InfeasibleSkewnessClampsAtBound) {
  // A far-separated lopsided pair can have mixture skewness beyond
  // the single-SN bound (~0.995); the merge clamps there while still
  // preserving mean and sigma.
  const stats::SkewNormal a = stats::SkewNormal::from_moments(1.0, 0.1, 0.4);
  const stats::SkewNormal b =
      stats::SkewNormal::from_moments(1.5, 0.2, -0.3);
  const stats::SkewNormal merged = merge_skew_normals(0.7, a, 0.3, b);
  const Lvf2Model mix(0.3, a, b);
  ASSERT_GT(mix.skewness(), 0.995);
  EXPECT_NEAR(merged.mean(), mix.mean(), 1e-10);
  EXPECT_NEAR(merged.stddev(), mix.stddev(), 1e-10);
  EXPECT_LT(merged.skewness(), mix.skewness());
  EXPECT_GT(merged.skewness(), 0.9);
}

TEST(ReduceMixture, MergesNearestPairFirst) {
  std::vector<LvfKModel::Component> comps;
  comps.push_back({0.4, stats::SkewNormal::from_moments(1.00, 0.05, 0.0)});
  comps.push_back({0.4, stats::SkewNormal::from_moments(1.02, 0.05, 0.0)});
  comps.push_back({0.2, stats::SkewNormal::from_moments(2.00, 0.05, 0.0)});
  const LvfKModel model(std::move(comps));
  const LvfKModel reduced = reduce_mixture(model, 2);
  ASSERT_EQ(reduced.component_count(), 2u);
  // The two near-identical components merged; the distant one stays.
  EXPECT_NEAR(reduced.components()[0].sn.mean(), 1.01, 0.01);
  EXPECT_NEAR(reduced.components()[0].weight, 0.8, 1e-9);
  EXPECT_NEAR(reduced.components()[1].sn.mean(), 2.0, 1e-9);
  // Global moments preserved.
  EXPECT_NEAR(reduced.mean(), model.mean(), 1e-9);
  EXPECT_NEAR(reduced.stddev(), model.stddev(), 1e-6);
}

TEST(ConvolveMixtures, AgainstMonteCarlo) {
  const Lvf2Model x(0.3, stats::SkewNormal::from_moments(1.0, 0.05, 0.3),
                    stats::SkewNormal::from_moments(1.2, 0.06, 0.0));
  const Lvf2Model y(0.5, stats::SkewNormal::from_moments(0.5, 0.04, -0.2),
                    stats::SkewNormal::from_moments(0.65, 0.05, 0.4));
  const LvfKModel sum = convolve_mixtures(to_lvfk(x), to_lvfk(y), 4);

  stats::Rng rng(test::test_seed(11));
  std::vector<double> mc(200000);
  for (auto& v : mc) v = x.sample(rng) + y.sample(rng);
  const stats::EmpiricalCdf golden(mc);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double v = golden.quantile(q);
    EXPECT_NEAR(sum.cdf(v), q, 0.01) << q;
  }
  const stats::Moments m = stats::compute_moments(mc);
  EXPECT_NEAR(sum.mean(), m.mean, 2e-3);
  EXPECT_NEAR(sum.stddev(), m.stddev, 2e-3);
}

TEST(ConvolveLvf2, StaysInTwoComponentForm) {
  const Lvf2Model x(0.4, stats::SkewNormal::from_moments(1.0, 0.05, 0.2),
                    stats::SkewNormal::from_moments(1.3, 0.05, 0.0));
  const Lvf2Model y(0.2, stats::SkewNormal::from_moments(0.4, 0.03, 0.0),
                    stats::SkewNormal::from_moments(0.5, 0.04, 0.1));
  const Lvf2Model sum = convolve_lvf2(x, y);
  EXPECT_GE(sum.lambda(), 0.0);
  EXPECT_LE(sum.lambda(), 1.0);
  // Exact mixture mean/variance are preserved through reduction.
  const double mean_ref = x.mean() + y.mean();
  const double var_ref = x.stddev() * x.stddev() + y.stddev() * y.stddev();
  EXPECT_NEAR(sum.mean(), mean_ref, 1e-9);
  EXPECT_NEAR(sum.stddev(), std::sqrt(var_ref), 1e-6);
}

TEST(ConvolveLvf2, ChainKeepsCltBehaviour) {
  // Repeated analytic sums of a bimodal stage Gaussianize: skewness
  // decays and the two components coalesce.
  const Lvf2Model stage(0.4,
                        stats::SkewNormal::from_moments(0.01, 0.001, 0.4),
                        stats::SkewNormal::from_moments(0.013, 0.001, 0.0));
  Lvf2Model total = stage;
  for (int i = 1; i < 16; ++i) total = convolve_lvf2(total, stage);
  EXPECT_NEAR(total.mean(), 16.0 * stage.mean(), 1e-9);
  EXPECT_NEAR(total.stddev(), 4.0 * stage.stddev(), 1e-6);
  EXPECT_LT(std::fabs(total.skewness()), 0.15);
}

TEST(ToLvfk, RoundTripOfPureLvf) {
  const Lvf2Model pure = Lvf2Model::from_lvf(
      stats::SkewNormal::from_moments(1.0, 0.1, 0.5));
  const LvfKModel k = to_lvfk(pure);
  EXPECT_EQ(k.component_count(), 1u);
  EXPECT_NEAR(k.mean(), pure.mean(), 1e-12);
}

}  // namespace
}  // namespace lvf2::core
