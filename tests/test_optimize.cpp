// Tests of the derivative-free optimizers: Nelder-Mead on standard
// test functions, Brent minimization and bisection root finding.

#include <cmath>
#include <span>

#include <gtest/gtest.h>

#include "stats/optimize.h"

namespace lvf2::stats {
namespace {

TEST(NelderMead, QuadraticBowl2D) {
  const auto f = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  const double x0[2] = {0.0, 0.0};
  const MinimizeResult r = nelder_mead(f, x0);
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
  EXPECT_NEAR(r.x[1], -1.0, 1e-5);
  EXPECT_LT(r.value, 1e-9);
}

TEST(NelderMead, Rosenbrock2D) {
  const auto f = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  const double x0[2] = {-1.2, 1.0};
  NelderMeadOptions options;
  options.max_evaluations = 5000;
  const MinimizeResult r = nelder_mead(f, x0, options);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 2e-3);
}

TEST(NelderMead, QuarticIn4D) {
  const auto f = [](std::span<const double> x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += d * d * d * d + d * d;
    }
    return s;
  };
  const double x0[4] = {1.0, 1.0, 1.0, 1.0};
  NelderMeadOptions options;
  options.max_evaluations = 4000;
  const MinimizeResult r = nelder_mead(f, x0, options);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r.x[i], static_cast<double>(i), 2e-3) << i;
  }
}

TEST(NelderMead, InfinityActsAsConstraint) {
  // Constrain x > 0 by returning inf; optimum at the boundary-near
  // minimum of (x-2)^2 from a feasible start.
  const auto f = [](std::span<const double> x) {
    if (x[0] <= 0.0) return std::numeric_limits<double>::infinity();
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  const double x0[1] = {0.5};
  const MinimizeResult r = nelder_mead(f, x0);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(NelderMead, NanTreatedAsInfinity) {
  const auto f = [](std::span<const double> x) {
    if (x[0] < -1.0) return std::nan("");
    return x[0] * x[0];
  };
  const double x0[1] = {-0.9};
  const MinimizeResult r = nelder_mead(f, x0);
  EXPECT_NEAR(r.x[0], 0.0, 1e-6);
}

TEST(NelderMead, EmptyInputReturnsDefault) {
  const auto f = [](std::span<const double>) { return 0.0; };
  const MinimizeResult r = nelder_mead(f, {});
  EXPECT_TRUE(r.x.empty());
  EXPECT_FALSE(r.converged);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  const auto f = [](std::span<const double> x) { return x[0] * x[0]; };
  const double x0[1] = {100.0};
  NelderMeadOptions options;
  options.max_evaluations = 25;
  const MinimizeResult r = nelder_mead(f, x0, options);
  EXPECT_LE(r.evaluations, 30u);  // small overshoot from shrink steps
}

TEST(BrentMinimize, SmoothConvex) {
  const auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; };
  const ScalarResult r = brent_minimize(f, -10.0, 10.0);
  EXPECT_NEAR(r.x, 1.7, 1e-7);
  EXPECT_NEAR(r.value, 3.0, 1e-12);
  EXPECT_TRUE(r.converged);
}

TEST(BrentMinimize, NonConvexFindsALocalMinimumInBracket) {
  const auto f = [](double x) { return std::sin(x); };
  const ScalarResult r = brent_minimize(f, 3.0, 7.0);
  EXPECT_NEAR(r.x, 4.71238898, 1e-5);  // 3*pi/2
}

TEST(BrentMinimize, SwappedBoundsHandled) {
  const auto f = [](double x) { return x * x; };
  const ScalarResult r = brent_minimize(f, 5.0, -5.0);
  EXPECT_NEAR(r.x, 0.0, 1e-7);
}

TEST(BisectRoot, SimpleRoot) {
  const auto f = [](double x) { return x * x * x - 8.0; };
  const ScalarResult r = bisect_root(f, 0.0, 10.0);
  EXPECT_NEAR(r.x, 2.0, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(BisectRoot, ExactEndpointRoots) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(bisect_root(f, 1.0, 5.0).x, 1.0);
  EXPECT_DOUBLE_EQ(bisect_root(f, -3.0, 1.0).x, 1.0);
}

TEST(BisectRoot, NoSignChangeReportsNotConverged) {
  const auto f = [](double x) { return x * x + 1.0; };
  const ScalarResult r = bisect_root(f, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(BisectRoot, MonotoneDecreasing) {
  const auto f = [](double x) { return 3.0 - x; };
  EXPECT_NEAR(bisect_root(f, 0.0, 10.0).x, 3.0, 1e-9);
}

}  // namespace
}  // namespace lvf2::stats
