// End-to-end integration tests spanning the full pipeline:
// Monte-Carlo characterization -> model fitting -> Liberty round
// trip -> SSTA, plus the CLT property of Section 3.4 on simulated
// cell data.

#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "cells/characterize.h"
#include "core/binning.h"
#include "core/metrics.h"
#include "liberty/lvf_tables.h"
#include "liberty/parser.h"
#include "liberty/writer.h"
#include "spice/montecarlo.h"
#include "ssta/block_ssta.h"
#include "stats/descriptive.h"

namespace lvf2 {
namespace {

TEST(Integration, CharacterizeWriteReadEvaluate) {
  // Characterize one NAND2 arc on a 2x2 grid, write the library to a
  // file, read it back and verify the LVF^2 model reproduces the
  // golden distribution better than (or as well as) the LVF model.
  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::reduced(4);
  options.mc_samples = 8000;
  const cells::Characterizer ch(spice::ProcessCorner{}, options);
  const cells::Cell nand2 = cells::build_cell(cells::CellFamily::kNand, 2, 1.0);

  cells::LibraryCharacterization characterization;
  characterization.cells.push_back(ch.characterize_cell(nand2));

  const liberty::Group lib = liberty::build_library(characterization);
  const auto path = std::filesystem::temp_directory_path() /
                    "lvf2_integration_test.lib";
  liberty::write_file(lib, path.string());
  const liberty::Group reparsed = liberty::parse_file(path.string());
  std::filesystem::remove(path);

  const liberty::Group* cell = reparsed.find_child("cell", "NAND2_X1");
  ASSERT_NE(cell, nullptr);
  const liberty::Group* pin = cell->find_child("pin", "Y");
  ASSERT_NE(pin, nullptr);
  const liberty::Group* timing = liberty::find_timing(*pin, "A");
  ASSERT_NE(timing, nullptr);
  const auto tables = liberty::extract_tables(*timing, "cell_fall");
  ASSERT_TRUE(tables.has_value());

  // Golden data of the A->Y fall arc at grid entry (1,1).
  const cells::TimingArc* fall_arc = nullptr;
  for (const cells::TimingArc& arc : nand2.arcs) {
    if (arc.input_pin == "A" && !arc.rise_output) fall_arc = &arc;
  }
  ASSERT_NE(fall_arc, nullptr);
  const spice::McResult golden_mc =
      ch.golden_samples(nand2, *fall_arc, 1, 1);
  const stats::EmpiricalCdf golden(golden_mc.delay_ns);

  const core::Lvf2Model lvf2 = tables->model_at(1, 1);
  const core::Lvf2Model lvf =
      core::Lvf2Model::from_lvf(stats::SkewNormal::from_moments(
          tables->lvf_moments_at(1, 1)));

  const double rmse2 = core::cdf_rmse(
      [&lvf2](double x) { return lvf2.cdf(x); }, golden);
  const double rmse1 = core::cdf_rmse(
      [&lvf](double x) { return lvf.cdf(x); }, golden);
  EXPECT_LE(rmse2, rmse1 * 1.05);
  EXPECT_LT(rmse2, 0.05);
}

TEST(Integration, CltDecayOnSimulatedCellData) {
  // Section 3.4: summing n i.i.d. cell delay distributions drives
  // the distribution towards Gaussian at O(1/sqrt(n)); the
  // standardized skewness of the sum decays accordingly.
  spice::StageElectrical stage;
  stage.pull.stack = 2;
  stage.mechanism_gain = 1.5;
  spice::McConfig cfg;
  cfg.samples = 30000;
  // A condition inside the confrontation zone (non-Gaussian data).
  const spice::ArcCondition cond{0.05, 0.02};
  const spice::McResult mc =
      spice::run_monte_carlo(stage, cond, spice::ProcessCorner{}, cfg);
  const double skew1 =
      std::fabs(stats::compute_moments(mc.delay_ns).skewness);

  // Sum 4 and 16 independent copies (fresh seeds per copy).
  const auto sum_of = [&](std::size_t n) {
    std::vector<double> total(cfg.samples, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      spice::McConfig c2 = cfg;
      c2.seed = cfg.seed + 1000 * (k + 1);
      const spice::McResult r =
          spice::run_monte_carlo(stage, cond, spice::ProcessCorner{}, c2);
      for (std::size_t j = 0; j < total.size(); ++j) {
        total[j] += r.delay_ns[j];
      }
    }
    return std::fabs(stats::compute_moments(total).skewness);
  };
  const double skew4 = sum_of(4);
  const double skew16 = sum_of(16);
  // O(1/sqrt(n)) decay with generous MC tolerance.
  EXPECT_LT(skew4, skew1 * 0.75);
  EXPECT_LT(skew16, skew1 * 0.45);
}

TEST(Integration, SsatPropagationOfFittedModelsTracksGoldenSum) {
  // Fit LVF^2 to two different arc conditions, convolve the fitted
  // PDFs and compare to the sample-wise golden sum.
  spice::StageElectrical stage;
  spice::McConfig cfg;
  cfg.samples = 15000;
  const spice::McResult a = spice::run_monte_carlo(
      stage, {0.02, 0.05}, spice::ProcessCorner{}, cfg);
  cfg.seed = 999;
  const spice::McResult b = spice::run_monte_carlo(
      stage, {0.1, 0.2}, spice::ProcessCorner{}, cfg);

  const auto ma = core::Lvf2Model::fit(a.delay_ns);
  const auto mb = core::Lvf2Model::fit(b.delay_ns);
  ASSERT_TRUE(ma && mb);
  const stats::GridPdf sum =
      ssta::ssta_sum(ma->to_grid(2048), mb->to_grid(2048));

  std::vector<double> golden_sum(cfg.samples);
  for (std::size_t j = 0; j < golden_sum.size(); ++j) {
    golden_sum[j] = a.delay_ns[j] + b.delay_ns[j];
  }
  const stats::EmpiricalCdf golden(golden_sum);
  const double rmse =
      core::cdf_rmse([&sum](double x) { return sum.cdf(x); }, golden);
  EXPECT_LT(rmse, 0.02);
}

TEST(Integration, BinProbabilitiesConsistentAcrossAllModels) {
  // Property: for every fitted model the eight Eq. 1 bin
  // probabilities are in [0,1] and sum to 1.
  spice::StageElectrical stage;
  stage.mechanism_gain = 2.0;
  spice::McConfig cfg;
  cfg.samples = 12000;
  const spice::McResult mc = spice::run_monte_carlo(
      stage, {0.05, 0.02}, spice::ProcessCorner{}, cfg);
  const core::ModelEvaluation eval = core::evaluate_models(mc.delay_ns);
  const std::vector<double> boundaries = core::sigma_bin_boundaries(
      eval.golden_moments.mean, eval.golden_moments.stddev);
  for (const auto& model : eval.models) {
    ASSERT_NE(model, nullptr);
    const std::vector<double> bins = core::bin_probabilities(
        [&model](double x) { return model->cdf(x); }, boundaries);
    double sum = 0.0;
    for (double p : bins) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << model->name();
  }
}

}  // namespace
}  // namespace lvf2
