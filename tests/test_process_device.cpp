// Tests of the process-variation model and the alpha-power-law
// device model of the SPICE-substitute engine.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "spice/device.h"
#include "spice/process.h"
#include "stats/descriptive.h"

#include "test_util.h"

namespace lvf2::spice {
namespace {

TEST(ProcessCorner, PaperCornerDefaults) {
  const ProcessCorner c = ProcessCorner::tt_global_local_mc();
  EXPECT_DOUBLE_EQ(c.vdd, 0.8);
  EXPECT_DOUBLE_EQ(c.temp_c, 25.0);
  EXPECT_GT(c.vth_n, 0.0);
  EXPECT_LT(c.vth_n, c.vdd);
  EXPECT_GT(c.sigma_vth_n, 0.0);
}

TEST(VariationSampler, LhsMarginalsMatchSigmas) {
  const ProcessCorner corner;
  const VariationSampler sampler(corner);
  stats::Rng rng(test::test_seed(1));
  const std::vector<VariationSample> draws = sampler.sample_lhs(20000, rng);
  std::vector<double> vth_n(draws.size()), len(draws.size());
  for (std::size_t i = 0; i < draws.size(); ++i) {
    vth_n[i] = draws[i].dvth_n;
    len[i] = draws[i].dlen;
  }
  const stats::Moments mv = stats::compute_moments(vth_n);
  EXPECT_NEAR(mv.mean, 0.0, 1e-3);
  EXPECT_NEAR(mv.stddev, corner.sigma_vth_n, 0.01 * corner.sigma_vth_n);
  const stats::Moments ml = stats::compute_moments(len);
  EXPECT_NEAR(ml.stddev, corner.sigma_len, 0.01 * corner.sigma_len);
}

TEST(VariationSampler, McAndLhsAgreeInDistribution) {
  const ProcessCorner corner;
  const VariationSampler sampler(corner);
  stats::Rng rng1(2), rng2(2);
  const auto lhs = sampler.sample_lhs(30000, rng1);
  const auto mc = sampler.sample_mc(30000, rng2);
  std::vector<double> a(lhs.size()), b(mc.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    a[i] = lhs[i].dvth_p;
    b[i] = mc[i].dvth_p;
  }
  EXPECT_NEAR(stats::compute_moments(a).stddev,
              stats::compute_moments(b).stddev, 0.002);
}

TEST(VariationSampler, DeterministicPerSeed) {
  const VariationSampler sampler((ProcessCorner()));
  stats::Rng a(3), b(3);
  const auto da = sampler.sample_lhs(64, a);
  const auto db = sampler.sample_lhs(64, b);
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_DOUBLE_EQ(da[i].dvth_n, db[i].dvth_n);
    EXPECT_DOUBLE_EQ(da[i].dmob_p, db[i].dmob_p);
  }
}

TEST(Device, HigherVthMeansLessCurrent) {
  const ProcessCorner corner;
  const Mosfet nmos;
  VariationSample low, high;
  low.dvth_n = -0.05;
  high.dvth_n = +0.05;
  EXPECT_GT(on_current_ma(nmos, corner, low),
            on_current_ma(nmos, corner, high));
}

TEST(Device, DriveScalesCurrentLinearly) {
  const ProcessCorner corner;
  const VariationSample nominal{};
  Mosfet x1, x2;
  x2.drive = 2.0;
  EXPECT_NEAR(on_current_ma(x2, corner, nominal),
              2.0 * on_current_ma(x1, corner, nominal), 1e-12);
}

TEST(Device, StackScalesResistance) {
  const ProcessCorner corner;
  const VariationSample nominal{};
  Mosfet single, stacked;
  stacked.stack = 3;
  EXPECT_NEAR(effective_resistance_kohm(stacked, corner, nominal),
              3.0 * effective_resistance_kohm(single, corner, nominal),
              1e-12);
}

TEST(Device, ParallelReducesResistance) {
  const ProcessCorner corner;
  const VariationSample nominal{};
  Mosfet single, parallel2;
  parallel2.parallel = 2;
  EXPECT_NEAR(effective_resistance_kohm(parallel2, corner, nominal),
              0.5 * effective_resistance_kohm(single, corner, nominal),
              1e-12);
}

TEST(Device, StackAveragesMismatch) {
  // The effective Vth shift of a stack is the cell draw scaled by
  // 1/sqrt(stack).
  const ProcessCorner corner;
  VariationSample v;
  v.dvth_n = 0.03;
  Mosfet single, stacked;
  stacked.stack = 4;
  EXPECT_NEAR(effective_vth(single, corner, v) - corner.vth_n, 0.03, 1e-15);
  EXPECT_NEAR(effective_vth(stacked, corner, v) - corner.vth_n, 0.015,
              1e-15);
}

TEST(Device, PmosUsesItsOwnParameters) {
  const ProcessCorner corner;
  VariationSample v;
  v.dvth_n = 0.1;  // must not affect a PMOS
  Mosfet pmos;
  pmos.is_nmos = false;
  EXPECT_NEAR(effective_vth(pmos, corner, v), corner.vth_p, 1e-15);
  // Nominal PMOS is weaker than NMOS (kp < kn).
  const VariationSample nominal{};
  Mosfet nmos;
  EXPECT_LT(on_current_ma(pmos, corner, nominal),
            on_current_ma(nmos, corner, nominal));
}

TEST(Device, CurrentStaysPositiveAtExtremeVariation) {
  const ProcessCorner corner;
  VariationSample v;
  v.dvth_n = 0.5;  // pushes the device past Vdd - Vth = 0
  v.dmob_n = -0.99;
  const Mosfet nmos;
  EXPECT_GT(on_current_ma(nmos, corner, v), 0.0);
  EXPECT_TRUE(std::isfinite(effective_resistance_kohm(nmos, corner, v)));
}

}  // namespace
}  // namespace lvf2::spice
