// Observability subsystem: metrics registry semantics, Chrome-trace
// JSON well-formedness (the emitted file must actually parse), log
// level filtering and structured formatting, and the guarantee that
// every sink is a no-op when its environment variable is unset.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace {

using namespace lvf2;

// --- A minimal strict JSON parser (objects, arrays, strings,
// numbers, true/false/null), enough to prove the emitted files are
// well-formed and to navigate them. ---

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) {
      ADD_FAILURE() << "missing JSON key: " << key;
      static const JsonValue null_value;
      return null_value;
    }
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end");
      return '\0';
    }
    return text_[pos_];
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.type = JsonValue::Type::kObject;
      ++pos_;
      if (consume('}')) return v;
      do {
        skip_ws();
        if (peek() != '"') {
          fail("expected object key");
          return v;
        }
        const std::string key = parse_string();
        if (!consume(':')) {
          fail("expected ':'");
          return v;
        }
        v.object.emplace(key, parse_value());
      } while (consume(','));
      if (!consume('}')) fail("expected '}'");
    } else if (c == '[') {
      v.type = JsonValue::Type::kArray;
      ++pos_;
      if (consume(']')) return v;
      do {
        v.array.push_back(parse_value());
      } while (consume(','));
      if (!consume(']')) fail("expected ']'");
    } else if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
    } else if (c == 't' || c == 'f') {
      v.type = JsonValue::Type::kBool;
      const std::string_view word = (c == 't') ? "true" : "false";
      if (text_.substr(pos_, word.size()) != word) {
        fail("bad literal");
      } else {
        pos_ += word.size();
        v.boolean = (c == 't');
      }
    } else if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        fail("bad literal");
      } else {
        pos_ += 4;
      }
    } else {
      v.type = JsonValue::Type::kNumber;
      v.number = parse_number();
    }
    return v;
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              fail("bad \\u escape");
              return out;
            }
            out += '?';  // enough for well-formedness checking
            pos_ += 4;
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return 0.0;
    }
    return std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// --- Metrics registry ---

TEST(MetricsRegistry, CounterAccumulatesAndIsStable) {
  obs::Counter& c = obs::counter("test.counter.a");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name -> same instrument (stable address).
  EXPECT_EQ(&c, &obs::counter("test.counter.a"));
  EXPECT_NE(&c, &obs::counter("test.counter.b"));
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(MetricsRegistry, HistogramBucketsAndOverflow) {
  obs::Histogram& h = obs::histogram("test.hist", {1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(3.0);   // bucket 2 (<= 4)
  h.observe(100.0); // overflow bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  // Re-lookup keeps the original bounds.
  obs::Histogram& again = obs::histogram("test.hist", {99.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds().size(), 3u);
}

TEST(MetricsRegistry, HistogramEmptyBoundsIsAllOverflow) {
  obs::Histogram& h = obs::histogram("test.hist.empty", {});
  h.observe(-1.0);
  h.observe(0.0);
  h.observe(1e9);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 1u);  // overflow bucket only
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1e9 - 1.0);
}

TEST(MetricsRegistry, HistogramNegativeValuesAndBounds) {
  obs::Histogram& h = obs::histogram("test.hist.neg", {-2.0, 0.0, 2.0});
  h.observe(-3.0);  // bucket 0 (<= -2)
  h.observe(-1.0);  // bucket 1 (<= 0)
  h.observe(-0.0);  // bucket 1 (inclusive upper bound)
  h.observe(1.5);   // bucket 2 (<= 2)
  h.observe(2.5);   // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0 - 1.0 + 1.5 + 2.5);
}

TEST(MetricsRegistry, HistogramConcurrentObserveLosesNothing) {
  obs::Histogram& h = obs::histogram("test.hist.mt", {10.0, 20.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t * 10));  // buckets 0,0,1,2
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u * kPerThread);  // values 0 and 10
  EXPECT_EQ(counts[1], 1u * kPerThread);  // value 20
  EXPECT_EQ(counts[2], 1u * kPerThread);  // value 30 overflows
  EXPECT_DOUBLE_EQ(h.sum(), (0.0 + 10.0 + 20.0 + 30.0) * kPerThread);
}

TEST(MetricsRegistry, JsonDumpParsesAndContainsInstruments) {
  obs::counter("test.json.counter").add(7);
  obs::gauge("test.json.gauge").set(3.5);
  obs::histogram("test.json.hist", {10.0}).observe(5.0);

  const std::string json = obs::MetricsRegistry::instance().to_json();
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error() << "\n" << json;
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_GE(root.at("counters").at("test.json.counter").number, 7.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.json.gauge").number, 3.5);
  const JsonValue& hist = root.at("histograms").at("test.json.hist");
  EXPECT_EQ(hist.at("bounds").array.size(), 1u);
  EXPECT_EQ(hist.at("counts").array.size(), 2u);
  EXPECT_GE(hist.at("count").number, 1.0);
}

TEST(MetricsRegistry, DigestInstrumentSnapshotsAndExports) {
  obs::Digest& d = obs::digest("test.digest.latency");
  for (int i = 1; i <= 200; ++i) d.observe(static_cast<double>(i));
  EXPECT_GE(d.count(), 200.0);
  EXPECT_NEAR(d.quantile(0.5), 100.0, 10.0);

  // JSON dump: digests section carries centroids plus the headline
  // pre-computed quantile block.
  const std::string json = obs::MetricsRegistry::instance().to_json();
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const JsonValue& dig = root.at("digests").at("test.digest.latency");
  EXPECT_GE(dig.at("count").number, 200.0);
  EXPECT_EQ(dig.at("centroids").type, JsonValue::Type::kArray);
  EXPECT_GT(dig.at("centroids").array.size(), 0u);
  const JsonValue& q = dig.at("q");
  EXPECT_NEAR(q.at("p50").number, 100.0, 10.0);
  EXPECT_GE(q.at("p99").number, q.at("p50").number);

  // Prometheus exposition: a summary family with quantile labels and
  // the _sum/_count pair.
  const std::string prom = obs::MetricsRegistry::instance().to_prometheus();
  EXPECT_NE(prom.find("# TYPE lvf2_test_digest_latency summary"),
            std::string::npos);
  EXPECT_NE(prom.find("lvf2_test_digest_latency{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("lvf2_test_digest_latency_count"), std::string::npos);
  EXPECT_NE(prom.find("lvf2_test_digest_latency_sum"), std::string::npos);
}

TEST(MetricsRegistry, WriteJsonRoundTrips) {
  const std::string path = temp_path("lvf2_metrics_test.json");
  obs::counter("test.file.counter").add(1);
  obs::MetricsRegistry::instance().write_json(path);
  JsonParser parser(read_file(path));
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  EXPECT_TRUE(root.at("counters").has("test.file.counter"));
  std::remove(path.c_str());
}

// --- Tracer ---

TEST(Tracer, DisabledByDefaultWhenEnvUnset) {
  if (std::getenv("LVF2_TRACE") != nullptr) {
    GTEST_SKIP() << "LVF2_TRACE is set in this environment";
  }
  EXPECT_FALSE(obs::trace_enabled());
}

TEST(Tracer, EmitsParseableChromeTraceJson) {
  if (obs::trace_enabled()) {
    GTEST_SKIP() << "a trace session is already active";
  }
  const std::string path = temp_path("lvf2_trace_test.json");
  obs::Tracer::instance().start(path);
  ASSERT_TRUE(obs::trace_enabled());
  {
    obs::TraceSpan outer("outer", [] {
      return obs::ArgsBuilder()
          .add("cell", "NAND2 \"X1\"")  // exercises escaping
          .add("samples", 123)
          .add("ratio", 0.5)
          .str();
    });
    obs::TraceSpan inner("inner");
    obs::trace_counter("test.counter", -1.5);
  }
  obs::Tracer::instance().stop();
  EXPECT_FALSE(obs::trace_enabled());

  JsonParser parser(read_file(path));
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error();
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  ASSERT_EQ(events.array.size(), 3u);

  int spans = 0, counters = 0;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    const std::string& ph = e.at("ph").string;
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("dur").number, 0.0);
    } else if (ph == "C") {
      ++counters;
      EXPECT_DOUBLE_EQ(e.at("args").at("value").number, -1.5);
    }
  }
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(counters, 1);

  // The outer span's args survived with escaping intact.
  bool found_outer = false;
  for (const JsonValue& e : events.array) {
    if (e.at("name").string == "outer") {
      found_outer = true;
      EXPECT_EQ(e.at("args").at("cell").string, "NAND2 \"X1\"");
      EXPECT_DOUBLE_EQ(e.at("args").at("samples").number, 123.0);
    }
  }
  EXPECT_TRUE(found_outer);
  std::remove(path.c_str());
}

TEST(Tracer, SpanArgsCallbackNotInvokedWhenDisabled) {
  if (obs::trace_enabled()) {
    GTEST_SKIP() << "a trace session is already active";
  }
  bool invoked = false;
  {
    obs::TraceSpan span("disabled", [&] {
      invoked = true;
      return std::string("{}");
    });
  }
  EXPECT_FALSE(invoked);
}

TEST(Tracer, ArgsBuilderRendersJsonObject) {
  const std::string json =
      obs::ArgsBuilder().add("a", "x").add("b", 2).add("c", 1.5).str();
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << parser.error() << "\n" << json;
  EXPECT_EQ(root.at("a").string, "x");
  EXPECT_DOUBLE_EQ(root.at("b").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("c").number, 1.5);
}

// --- Logger ---

class LogCapture {
 public:
  LogCapture() : path_(temp_path("lvf2_log_test.txt")) {
    stream_ = std::fopen(path_.c_str(), "w+");
    obs::set_log_stream(stream_);
  }
  ~LogCapture() {
    obs::set_log_stream(nullptr);
    std::fclose(stream_);
    std::remove(path_.c_str());
  }
  std::string text() {
    std::fflush(stream_);
    return read_file(path_);
  }

 private:
  std::string path_;
  std::FILE* stream_;
};

TEST(Logger, OffByDefaultWhenEnvUnset) {
  if (std::getenv("LVF2_LOG") != nullptr) {
    GTEST_SKIP() << "LVF2_LOG is set in this environment";
  }
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kError));
}

TEST(Logger, ParseLogLevel) {
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("bogus"), obs::LogLevel::kOff);
}

TEST(Logger, LevelFiltering) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kWarn);
  obs::log_debug("dropped.debug");
  obs::log_info("dropped.info");
  obs::log_warn("kept.warn");
  obs::log_error("kept.error");
  obs::set_log_level(obs::LogLevel::kOff);

  const std::string text = capture.text();
  EXPECT_EQ(text.find("dropped."), std::string::npos);
  EXPECT_NE(text.find("kept.warn"), std::string::npos);
  EXPECT_NE(text.find("kept.error"), std::string::npos);
}

TEST(Logger, StructuredFieldsAndQuoting) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kInfo);
  obs::log_info("em.fit", {{"cell", "NAND2 X1"},
                           {"arc", "A->Y"},
                           {"iterations", std::size_t{17}},
                           {"converged", true},
                           {"ll", -42.5}});
  obs::set_log_level(obs::LogLevel::kOff);

  const std::string text = capture.text();
  EXPECT_NE(text.find("em.fit"), std::string::npos);
  EXPECT_NE(text.find("cell=\"NAND2 X1\""), std::string::npos);  // quoted
  EXPECT_NE(text.find("arc=A->Y"), std::string::npos);  // no quoting needed
  EXPECT_NE(text.find("iterations=17"), std::string::npos);
  EXPECT_NE(text.find("converged=true"), std::string::npos);
  EXPECT_NE(text.find("info] "), std::string::npos) << text;
}

TEST(Logger, DisabledLevelEmitsNothing) {
  LogCapture capture;
  obs::set_log_level(obs::LogLevel::kOff);
  obs::log_error("should.not.appear");
  EXPECT_TRUE(capture.text().empty());
}

}  // namespace
