// Tests of the standard-cell layer: the 25-type benchmark library,
// arc construction, and deterministic per-arc personalities.

#include <set>

#include <gtest/gtest.h>

#include "cells/cell_types.h"
#include "cells/library.h"

namespace lvf2::cells {
namespace {

TEST(CellTypes, FamilyNames) {
  EXPECT_EQ(to_string(CellFamily::kInv), "INV");
  EXPECT_EQ(to_string(CellFamily::kFullAdder), "FA");
  EXPECT_EQ(to_string(CellFamily::kXnor), "XNOR");
}

TEST(BuildCell, InverterStructure) {
  const Cell inv = build_cell(CellFamily::kInv, 1, 1.0);
  EXPECT_EQ(inv.name, "INV_X1");
  EXPECT_EQ(inv.type_name(), "INV");
  ASSERT_EQ(inv.arcs.size(), 2u);  // A->Y rise + fall
  std::set<bool> dirs;
  for (const TimingArc& arc : inv.arcs) {
    EXPECT_EQ(arc.input_pin, "A");
    EXPECT_EQ(arc.output_pin, "Y");
    dirs.insert(arc.rise_output);
    // Rising output pulls through PMOS, falling through NMOS.
    EXPECT_EQ(arc.stage.pull.is_nmos, !arc.rise_output);
  }
  EXPECT_EQ(dirs.size(), 2u);
}

TEST(BuildCell, NandStackDepthMatchesInputs) {
  for (int n : {2, 3, 4}) {
    const Cell nand = build_cell(CellFamily::kNand, n, 1.0);
    EXPECT_EQ(nand.type_name(), "NAND" + std::to_string(n));
    EXPECT_EQ(nand.arcs.size(), static_cast<std::size_t>(2 * n));
    for (const TimingArc& arc : nand.arcs) {
      if (!arc.rise_output) {
        EXPECT_EQ(arc.stage.pull.stack, n) << arc.label();
      } else {
        EXPECT_EQ(arc.stage.pull.stack, 1) << arc.label();
      }
    }
  }
}

TEST(BuildCell, NorIsDualOfNand) {
  const Cell nor3 = build_cell(CellFamily::kNor, 3, 1.0);
  for (const TimingArc& arc : nor3.arcs) {
    if (arc.rise_output) {
      EXPECT_EQ(arc.stage.pull.stack, 3);  // stacked PMOS
      EXPECT_FALSE(arc.stage.pull.is_nmos);
    } else {
      EXPECT_EQ(arc.stage.pull.stack, 1);
    }
  }
}

TEST(BuildCell, FullAdderHasTwoOutputs) {
  const Cell fa = build_cell(CellFamily::kFullAdder, 3, 1.0);
  EXPECT_EQ(fa.type_name(), "FA");
  // 3 inputs x 2 outputs x 2 directions.
  EXPECT_EQ(fa.arcs.size(), 12u);
  std::set<std::string> outputs;
  std::set<std::string> inputs;
  for (const TimingArc& arc : fa.arcs) {
    outputs.insert(arc.output_pin);
    inputs.insert(arc.input_pin);
  }
  EXPECT_EQ(outputs, (std::set<std::string>{"S", "CO"}));
  EXPECT_EQ(inputs, (std::set<std::string>{"A", "B", "CI"}));
}

TEST(BuildCell, MuxHasSelectPins) {
  const Cell mux2 = build_cell(CellFamily::kMux, 2, 1.0);
  std::set<std::string> inputs;
  for (const TimingArc& arc : mux2.arcs) inputs.insert(arc.input_pin);
  EXPECT_TRUE(inputs.count("D0"));
  EXPECT_TRUE(inputs.count("D1"));
  EXPECT_TRUE(inputs.count("S0"));
}

TEST(BuildCell, DriveScalesElectricals) {
  const Cell x1 = build_cell(CellFamily::kInv, 1, 1.0);
  const Cell x4 = build_cell(CellFamily::kInv, 1, 4.0);
  EXPECT_EQ(x4.name, "INV_X4");
  EXPECT_NEAR(x4.arcs[0].stage.pull.drive, 4.0 * x1.arcs[0].stage.pull.drive,
              1e-12);
  EXPECT_GT(x4.arcs[0].stage.input_cap_pf, x1.arcs[0].stage.input_cap_pf);
}

TEST(BuildCell, PersonalitiesDeterministic) {
  const Cell a = build_cell(CellFamily::kXor, 2, 1.0);
  const Cell b = build_cell(CellFamily::kXor, 2, 1.0);
  for (std::size_t i = 0; i < a.arcs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.arcs[i].stage.mechanism_gain,
                     b.arcs[i].stage.mechanism_gain);
    EXPECT_DOUBLE_EQ(a.arcs[i].stage.mechanism_offset,
                     b.arcs[i].stage.mechanism_offset);
  }
}

TEST(BuildCell, PersonalitiesVaryAcrossArcs) {
  const Cell xor3 = build_cell(CellFamily::kXor, 3, 1.0);
  std::set<double> gains;
  for (const TimingArc& arc : xor3.arcs) {
    gains.insert(arc.stage.mechanism_gain);
  }
  EXPECT_GT(gains.size(), xor3.arcs.size() / 2);
}

TEST(BuildCell, RejectsBadInputCount) {
  EXPECT_THROW(build_cell(CellFamily::kNand, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(build_cell(CellFamily::kNand, 5, 1.0), std::invalid_argument);
}

TEST(Library, PaperLibraryHas25Types) {
  const StandardCellLibrary lib = build_paper_library();
  const std::vector<std::string> types = lib.type_names();
  EXPECT_EQ(types.size(), 25u);
  EXPECT_EQ(types.front(), "INV");
  EXPECT_EQ(types.back(), "HA");
  // Two drives per type by default.
  EXPECT_EQ(lib.size(), 50u);
  EXPECT_GT(lib.total_arcs(), 200u);
}

TEST(Library, FindByName) {
  const StandardCellLibrary lib = build_paper_library();
  const Cell* nand2 = lib.find("NAND2_X2");
  ASSERT_NE(nand2, nullptr);
  EXPECT_EQ(nand2->family, CellFamily::kNand);
  EXPECT_EQ(nand2->drive, 2.0);
  EXPECT_EQ(lib.find("NAND9_X9"), nullptr);
}

TEST(Library, CellsOfTypeGroupsDriveVariants) {
  const StandardCellLibrary lib = build_paper_library();
  const auto nands = lib.cells_of_type("NAND2");
  EXPECT_EQ(nands.size(), 2u);
  for (const Cell* c : nands) EXPECT_EQ(c->type_name(), "NAND2");
}

TEST(Library, CustomDriveList) {
  LibraryOptions options;
  options.drives = {1.0};
  const StandardCellLibrary lib = build_paper_library(options);
  EXPECT_EQ(lib.size(), 25u);
}

}  // namespace
}  // namespace lvf2::cells
