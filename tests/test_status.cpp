// Tests of the Status / StatusOr error-propagation vocabulary used by
// the graceful-degradation chain.

#include <gtest/gtest.h>

#include <string>

#include "core/status.h"

namespace lvf2::core {
namespace {

TEST(Status, DefaultAndFactoryOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::degenerate_data("empty sample set");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDegenerateData);
  EXPECT_EQ(s.message(), "empty sample set");
  EXPECT_EQ(s.to_string(), "degenerate_data: empty sample set");

  EXPECT_EQ(Status::invalid_argument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::non_finite("x").code(), StatusCode::kNonFinite);
  EXPECT_EQ(Status::parse_error("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "ok");
  EXPECT_STREQ(to_string(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(StatusCode::kDegenerateData), "degenerate_data");
  EXPECT_STREQ(to_string(StatusCode::kNonFinite), "non_finite");
  EXPECT_STREQ(to_string(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(to_string(StatusCode::kInternal), "internal");
}

TEST(StatusOr, HoldsValue) {
  const StatusOr<double> v(2.5);
  EXPECT_TRUE(v.is_ok());
  EXPECT_TRUE(v.status().is_ok());
  EXPECT_DOUBLE_EQ(v.value(), 2.5);
  EXPECT_DOUBLE_EQ(v.value_or(-1.0), 2.5);
}

TEST(StatusOr, HoldsStatus) {
  const StatusOr<std::string> v(Status::parse_error("bad token"));
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
  EXPECT_EQ(v.value_or("fallback"), "fallback");
}

TEST(StatusOr, MoveExtractsValue) {
  StatusOr<std::string> v(std::string("payload"));
  const std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

}  // namespace
}  // namespace lvf2::core
