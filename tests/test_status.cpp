// Tests of the Status / StatusOr error-propagation vocabulary used by
// the graceful-degradation chain, plus the canonical serving codes
// and the cooperative-deadline machinery (core/cancel.h) that lvf2d
// builds on.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/cancel.h"
#include "core/status.h"

namespace lvf2::core {
namespace {

TEST(Status, DefaultAndFactoryOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::degenerate_data("empty sample set");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDegenerateData);
  EXPECT_EQ(s.message(), "empty sample set");
  EXPECT_EQ(s.to_string(), "degenerate_data: empty sample set");

  EXPECT_EQ(Status::invalid_argument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::non_finite("x").code(), StatusCode::kNonFinite);
  EXPECT_EQ(Status::parse_error("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "ok");
  EXPECT_STREQ(to_string(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(StatusCode::kDegenerateData), "degenerate_data");
  EXPECT_STREQ(to_string(StatusCode::kNonFinite), "non_finite");
  EXPECT_STREQ(to_string(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(to_string(StatusCode::kInternal), "internal");
}

TEST(Status, ServingCodeFactories) {
  EXPECT_EQ(Status::deadline_exceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::resource_exhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::cancelled("x").code(), StatusCode::kCancelled);
}

TEST(Status, CodeNamesRoundTripThroughTheWireForm) {
  // The lvf2d protocol carries codes by name; both directions must be
  // stable for every code.
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kDegenerateData, StatusCode::kNonFinite,
        StatusCode::kParseError, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
        StatusCode::kResourceExhausted, StatusCode::kNotFound,
        StatusCode::kCancelled}) {
    EXPECT_EQ(status_code_from_name(to_string(code)), code);
  }
  EXPECT_EQ(status_code_from_name("no_such_code"), StatusCode::kInternal);
  EXPECT_EQ(status_code_from_name(""), StatusCode::kInternal);
}

TEST(Status, TransientCodesAreExactlyTheRetryableOnes) {
  EXPECT_TRUE(is_transient(StatusCode::kUnavailable));
  EXPECT_TRUE(is_transient(StatusCode::kResourceExhausted));
  EXPECT_TRUE(is_transient(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(is_transient(StatusCode::kOk));
  EXPECT_FALSE(is_transient(StatusCode::kInvalidArgument));
  EXPECT_FALSE(is_transient(StatusCode::kNotFound));
  EXPECT_FALSE(is_transient(StatusCode::kInternal));
  EXPECT_TRUE(Status::unavailable("x").is_transient());
  EXPECT_FALSE(Status::not_found("x").is_transient());
}

TEST(Cancel, NoGuardMeansNoDeadline) {
  EXPECT_FALSE(deadline_armed());
  EXPECT_GT(deadline_remaining_ms(), 1e12);
  EXPECT_TRUE(deadline_status().is_ok());
  EXPECT_NO_THROW(checkpoint());
  EXPECT_NO_THROW(checkpoint_every(0, 256));
}

TEST(Cancel, GuardArmsAndExpiredDeadlineThrows) {
  {
    DeadlineGuard guard(10000.0);
    EXPECT_TRUE(deadline_armed());
    EXPECT_GT(deadline_remaining_ms(), 0.0);
    EXPECT_TRUE(deadline_status().is_ok());
    EXPECT_NO_THROW(checkpoint());
  }
  EXPECT_FALSE(deadline_armed());

  DeadlineGuard expired(0.0);
  EXPECT_LE(deadline_remaining_ms(), 0.0);
  EXPECT_EQ(deadline_status().code(), StatusCode::kDeadlineExceeded);
  try {
    checkpoint();
    FAIL() << "checkpoint() did not throw past the deadline";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(Cancel, NestedGuardOnlyTightens) {
  DeadlineGuard outer(0.0);  // already expired
  {
    // An inner guard with a huge budget must not extend the outer
    // deadline.
    DeadlineGuard inner(1e9);
    EXPECT_LE(deadline_remaining_ms(), 0.0);
    EXPECT_THROW(checkpoint(), CancelledError);
  }
  EXPECT_THROW(checkpoint(), CancelledError);
}

TEST(Cancel, CheckpointEveryHonorsTheStride) {
  DeadlineGuard expired(0.0);
  // Off-stride indices never touch the clock; stride boundaries fire.
  EXPECT_NO_THROW(checkpoint_every(1, 256));
  EXPECT_NO_THROW(checkpoint_every(255, 256));
  EXPECT_THROW(checkpoint_every(0, 256), CancelledError);
  EXPECT_THROW(checkpoint_every(256, 256), CancelledError);
  EXPECT_THROW(checkpoint_every(7, 0), CancelledError);  // stride 0 = always
}

TEST(Cancel, SuspendMasksTheDeadlineForItsScope) {
  DeadlineGuard expired(0.0);
  {
    DeadlineSuspend suspend;
    EXPECT_FALSE(deadline_armed());
    EXPECT_NO_THROW(checkpoint());
  }
  EXPECT_TRUE(deadline_armed());
  EXPECT_THROW(checkpoint(), CancelledError);
}

TEST(Cancel, StatusFromExceptionKeepsTheMostSpecificCode) {
  const CancelledError cancelled(Status::deadline_exceeded("over budget"));
  EXPECT_EQ(status_from_exception(cancelled).code(),
            StatusCode::kDeadlineExceeded);
  const std::runtime_error generic("boom");
  const Status mapped = status_from_exception(generic);
  EXPECT_EQ(mapped.code(), StatusCode::kInternal);
  EXPECT_EQ(mapped.message(), "boom");
}

TEST(StatusOr, HoldsValue) {
  const StatusOr<double> v(2.5);
  EXPECT_TRUE(v.is_ok());
  EXPECT_TRUE(v.status().is_ok());
  EXPECT_DOUBLE_EQ(v.value(), 2.5);
  EXPECT_DOUBLE_EQ(v.value_or(-1.0), 2.5);
}

TEST(StatusOr, HoldsStatus) {
  const StatusOr<std::string> v(Status::parse_error("bad token"));
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
  EXPECT_EQ(v.value_or("fallback"), "fallback");
}

TEST(StatusOr, MoveExtractsValue) {
  StatusOr<std::string> v(std::string("payload"));
  const std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

}  // namespace
}  // namespace lvf2::core
