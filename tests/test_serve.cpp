// Tests of the lvf2d serving layer (src/serve/): wire-protocol
// framing, the hot-entry LRU, admission control, the
// graceful-degradation handler chain, and — the concurrency contract
// — eight client threads hammering the handlers while EM faults are
// injected, where every answer must stay valid and degraded rather
// than crashed or poisoned. The Serve* suites run under the TSan gate
// (scripts/check.sh --tsan).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <netinet/in.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cells/characterize_cache.h"
#include "cells/library.h"
#include "core/cancel.h"
#include "core/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "report.h"
#include "robust/faults.h"
#include "serve/admission.h"
#include "serve/handlers.h"
#include "serve/lru.h"
#include "serve/protocol.h"
#include "serve/reqtrace.h"
#include "serve/server.h"
#include "serve/telemetry.h"

namespace lvf2 {
namespace {

// ---------------------------------------------------------------- protocol

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_writer() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(ServeProtocol, FrameRoundTrip) {
  SocketPair sp;
  const std::string body = R"({"id":7,"op":"ping","params":{}})";
  ASSERT_TRUE(serve::write_frame(sp.fds[0], body).is_ok());
  std::string got;
  ASSERT_TRUE(serve::read_frame(sp.fds[1], got).is_ok());
  EXPECT_EQ(got, body);

  // Several frames back to back stay framed.
  ASSERT_TRUE(serve::write_frame(sp.fds[0], "first").is_ok());
  ASSERT_TRUE(serve::write_frame(sp.fds[0], "second").is_ok());
  ASSERT_TRUE(serve::read_frame(sp.fds[1], got).is_ok());
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(serve::read_frame(sp.fds[1], got).is_ok());
  EXPECT_EQ(got, "second");
}

TEST(ServeProtocol, CleanEofIsCancelled) {
  SocketPair sp;
  sp.close_writer();
  std::string got;
  const core::Status st = serve::read_frame(sp.fds[1], got);
  EXPECT_EQ(st.code(), core::StatusCode::kCancelled);
}

TEST(ServeProtocol, MidFrameEofIsUnavailable) {
  SocketPair sp;
  // Header promising 100 bytes, then only 10 arrive before EOF.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(sp.fds[0], header, 4), 4);
  ASSERT_EQ(::write(sp.fds[0], "0123456789", 10), 10);
  sp.close_writer();
  std::string got;
  const core::Status st = serve::read_frame(sp.fds[1], got);
  EXPECT_EQ(st.code(), core::StatusCode::kUnavailable);
}

TEST(ServeProtocol, OversizedFrameIsResourceExhausted) {
  SocketPair sp;
  const std::uint32_t huge = serve::kMaxFrameBytes + 1;
  const unsigned char header[4] = {
      static_cast<unsigned char>(huge >> 24),
      static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge)};
  ASSERT_EQ(::write(sp.fds[0], header, 4), 4);
  std::string got;
  const core::Status st = serve::read_frame(sp.fds[1], got);
  EXPECT_EQ(st.code(), core::StatusCode::kResourceExhausted);
}

TEST(ServeProtocol, ParseRequestFull) {
  serve::Request request;
  const core::Status st = serve::parse_request(
      R"({"id":42,"op":"arc_dist","deadline_ms":25,)"
      R"("params":{"cell":"INV_X1","load_idx":1}})",
      request);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(request.id, 42u);
  EXPECT_EQ(request.op, "arc_dist");
  EXPECT_DOUBLE_EQ(request.deadline_ms, 25.0);
  EXPECT_EQ(request.params.string_or("cell", ""), "INV_X1");
  EXPECT_DOUBLE_EQ(request.params.number_or("load_idx", -1.0), 1.0);
}

TEST(ServeProtocol, ParseRequestMissingOpKeepsId) {
  serve::Request request;
  const core::Status st = serve::parse_request(R"({"id":9})", request);
  EXPECT_FALSE(st.is_ok());
  // The id survives so the error can be answered on the right request.
  EXPECT_EQ(request.id, 9u);
}

TEST(ServeProtocol, ParseRequestGarbageIsParseError) {
  serve::Request request;
  const core::Status st = serve::parse_request("{nope", request);
  EXPECT_FALSE(st.is_ok());
}

TEST(ServeProtocol, RenderResponseRoundTrips) {
  obs::JsonValue result;
  result.type = obs::JsonValue::Type::kObject;
  obs::JsonValue pong;
  pong.type = obs::JsonValue::Type::kNumber;
  pong.number = 1.0;
  result.object.emplace_back("pong", pong);

  const std::string ok_body = serve::render_response(
      5, core::Status::ok(), "cached", 1.5, &result);
  const std::optional<obs::JsonValue> ok_doc = obs::json_parse(ok_body);
  ASSERT_TRUE(ok_doc.has_value() && ok_doc->is_object()) << ok_body;
  EXPECT_DOUBLE_EQ(ok_doc->number_or("id", -1.0), 5.0);
  EXPECT_EQ(ok_doc->string_or("status", ""), "ok");
  EXPECT_EQ(ok_doc->string_or("degradation", ""), "cached");
  EXPECT_DOUBLE_EQ(ok_doc->number_or("elapsed_ms", -1.0), 1.5);
  EXPECT_EQ(ok_doc->find("retry_after_ms"), nullptr);
  ASSERT_NE(ok_doc->find("result"), nullptr);
  EXPECT_DOUBLE_EQ(ok_doc->find("result")->number_or("pong", 0.0), 1.0);

  const std::string rej_body = serve::render_response(
      6, core::Status::resource_exhausted("queue full"), "none", 0.1,
      nullptr, 75.0);
  const std::optional<obs::JsonValue> rej_doc = obs::json_parse(rej_body);
  ASSERT_TRUE(rej_doc.has_value() && rej_doc->is_object()) << rej_body;
  EXPECT_EQ(rej_doc->string_or("status", ""), "resource_exhausted");
  EXPECT_DOUBLE_EQ(rej_doc->number_or("retry_after_ms", 0.0), 75.0);
  EXPECT_NE(rej_doc->string_or("error", ""), "");
}

// --------------------------------------------------------------------- lru

TEST(ServeLru, HitMissEvict) {
  serve::HotLru lru(2);
  EXPECT_FALSE(lru.get(1).has_value());
  lru.put(1, "one");
  lru.put(2, "two");
  EXPECT_EQ(lru.get(1).value_or(""), "one");
  // 1 is now most-recent, so inserting 3 evicts 2.
  lru.put(3, "three");
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_FALSE(lru.get(2).has_value());
  EXPECT_EQ(lru.get(1).value_or(""), "one");
  EXPECT_EQ(lru.get(3).value_or(""), "three");
  // Refreshing an existing key replaces the value, no growth.
  lru.put(3, "replaced");
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.get(3).value_or(""), "replaced");
}

TEST(ServeLru, SetCapacityEvictsDown) {
  serve::HotLru lru(8);
  for (std::uint64_t k = 0; k < 8; ++k) lru.put(k, "v");
  lru.set_capacity(3);
  EXPECT_EQ(lru.capacity(), 3u);
  EXPECT_LE(lru.size(), 3u);
  // The most recently touched keys survive.
  EXPECT_TRUE(lru.get(7).has_value());
}

TEST(ServeLru, ZeroCapacityDisables) {
  serve::HotLru lru(0);
  lru.put(1, "one");
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_FALSE(lru.get(1).has_value());
}

// --------------------------------------------------------------- admission

struct FakeItem {
  int id = 0;
  bool shed = false;
};

TEST(ServeAdmission, WatermarkMarksShedAndFullRejects) {
  serve::AdmissionQueue<FakeItem> queue(4, 3);
  EXPECT_EQ(queue.try_push({1}), serve::Admit::kAccepted);
  EXPECT_EQ(queue.try_push({2}), serve::Admit::kAccepted);
  EXPECT_EQ(queue.try_push({3}), serve::Admit::kAcceptedShed);
  EXPECT_EQ(queue.try_push({4}), serve::Admit::kAcceptedShed);
  EXPECT_EQ(queue.try_push({5}), serve::Admit::kRejected);
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.high_water(), 4u);

  // The shed verdict is carried on the item itself.
  std::vector<bool> shed;
  while (auto item = queue.try_pop()) shed.push_back(item->shed);
  EXPECT_EQ(shed, (std::vector<bool>{false, false, true, true}));
}

TEST(ServeAdmission, CloseDrainsPendingThenEndsForever) {
  serve::AdmissionQueue<FakeItem> queue(4, 4);
  EXPECT_EQ(queue.try_push({1}), serve::Admit::kAccepted);
  queue.close();
  EXPECT_TRUE(queue.closed());
  // New work is refused, queued work still drains.
  EXPECT_EQ(queue.try_push({2}), serve::Admit::kRejected);
  const auto drained = queue.pop();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->id, 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ServeAdmission, PopBlocksUntilPush) {
  serve::AdmissionQueue<FakeItem> queue(4, 4);
  std::optional<FakeItem> got;
  std::thread popper([&] { got = queue.pop(); });
  EXPECT_EQ(queue.try_push({11}), serve::Admit::kAccepted);
  popper.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, 11);
}

TEST(ServeAdmission, RetryAfterHintIsClamped) {
  EXPECT_DOUBLE_EQ(serve::retry_after_hint_ms(0), 25.0);
  EXPECT_DOUBLE_EQ(serve::retry_after_hint_ms(1), 25.0);
  EXPECT_DOUBLE_EQ(serve::retry_after_hint_ms(20), 100.0);
  EXPECT_DOUBLE_EQ(serve::retry_after_hint_ms(100000), 1000.0);
}

// ---------------------------------------------------------------- handlers

// HandlerContext owns a mutex (the LRU) and is not movable, so tests
// configure a local instance in place.
void configure_context(serve::HandlerContext& ctx) {
  ctx.library = cells::build_paper_library();
  ctx.characterize.grid = cells::SlewLoadGrid::reduced(4);  // 2x2
  ctx.characterize.mc_samples = 200;
  ctx.lru.set_capacity(64);
}

serve::Request make_arc_request(const std::string& op,
                                const std::string& cell,
                                double deadline_ms = 0.0) {
  serve::Request request;
  request.id = 1;
  request.op = op;
  request.deadline_ms = deadline_ms;
  std::string params = "{\"cell\":";
  obs::json_append_string(params, cell);
  params += ",\"load_idx\":0,\"slew_idx\":0}";
  request.params = *obs::json_parse(params);
  return request;
}

double result_number(const serve::HandlerResult& result,
                     const char* outer, const char* inner = nullptr) {
  const obs::JsonValue* v = result.result.find(outer);
  if (v == nullptr) return std::nan("");
  if (inner == nullptr) return v->number;
  return v->number_or(inner, std::nan(""));
}

TEST(ServeHandlers, PingAndUnknownOp) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  serve::Request ping;
  ping.op = "ping";
  const serve::HandlerResult pong =
      serve::handle_request(ctx, ping, serve::ExecMode::kFull);
  EXPECT_TRUE(pong.status.is_ok());
  EXPECT_EQ(pong.degradation, "none");

  serve::Request bogus;
  bogus.op = "frobnicate";
  const serve::HandlerResult err =
      serve::handle_request(ctx, bogus, serve::ExecMode::kFull);
  EXPECT_EQ(err.status.code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeHandlers, UnknownCellIsNotFound) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const serve::HandlerResult result = serve::handle_request(
      ctx, make_arc_request("arc_dist", "NO_SUCH_CELL"),
      serve::ExecMode::kFull);
  EXPECT_EQ(result.status.code(), core::StatusCode::kNotFound);
  EXPECT_EQ(result.degradation, "none");
}

TEST(ServeHandlers, GridIndexOutOfRangeIsInvalid) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  serve::Request request = make_arc_request("arc_dist", "INV_X1");
  request.params = *obs::json_parse(
      R"({"cell":"INV_X1","load_idx":7,"slew_idx":0})");  // grid is 2x2
  const serve::HandlerResult result =
      serve::handle_request(ctx, request, serve::ExecMode::kFull);
  EXPECT_EQ(result.status.code(), core::StatusCode::kInvalidArgument);
}

TEST(ServeHandlers, FloorModeAnswersPointMass) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const serve::HandlerResult result = serve::handle_request(
      ctx, make_arc_request("arc_dist", "INV_X1"),
      serve::ExecMode::kShedFloor);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.degradation, "point_mass");
  const double mean = result_number(result, "delay", "mean");
  EXPECT_TRUE(std::isfinite(mean) && mean > 0.0) << mean;
  EXPECT_DOUBLE_EQ(result_number(result, "delay", "stddev"), 0.0);
}

TEST(ServeHandlers, LightModeAnswersSingleSn) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const serve::HandlerResult result = serve::handle_request(
      ctx, make_arc_request("arc_dist", "INV_X1"),
      serve::ExecMode::kShedLight);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.degradation, "single_sn");
  EXPECT_GT(result_number(result, "delay", "stddev"), 0.0);
  // The honest single-component answer: mixture weight pinned to 0.
  ASSERT_NE(result.result.find("lvf2_delay"), nullptr);
  EXPECT_DOUBLE_EQ(result.result.find("lvf2_delay")->number_or("lambda", -1),
                   0.0);
}

TEST(ServeHandlers, FullComputeSeedsLruForShedRequests) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const serve::Request request = make_arc_request("arc_dist", "INV_X1");
  const serve::HandlerResult full =
      serve::handle_request(ctx, request, serve::ExecMode::kFull);
  ASSERT_TRUE(full.status.is_ok()) << full.status.to_string();
  EXPECT_EQ(full.degradation, "none");
  ASSERT_GT(ctx.lru.size(), 0u);

  // A later shed request for the same entry rides the hot LRU: rung 1
  // of the chain, tagged "cached", numerically identical to the full
  // answer.
  const serve::HandlerResult shed =
      serve::handle_request(ctx, request, serve::ExecMode::kShedLight);
  ASSERT_TRUE(shed.status.is_ok()) << shed.status.to_string();
  EXPECT_EQ(shed.degradation, "cached");
  EXPECT_DOUBLE_EQ(result_number(shed, "delay", "mean"),
                   result_number(full, "delay", "mean"));
}

TEST(ServeHandlers, ExpiredDeadlineShedsToFloorNotError) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const std::uint64_t sheds_before =
      obs::counter("serve.shed.deadline").value();
  core::DeadlineGuard guard(0.0);  // already expired
  const serve::HandlerResult result = serve::handle_request(
      ctx, make_arc_request("arc_dist", "NAND2_X1"),
      serve::ExecMode::kFull);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.degradation, "point_mass");
  EXPECT_GT(obs::counter("serve.shed.deadline").value(), sheds_before);
}

TEST(ServeHandlers, DegradedOpsStayFinite) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const serve::HandlerResult bin = serve::handle_request(
      ctx, make_arc_request("bin", "INV_X1"), serve::ExecMode::kShedFloor);
  ASSERT_TRUE(bin.status.is_ok());
  // The re-inflated point mass still has a (tiny) positive sigma, so
  // the sigma-bin probabilities are the standard-normal band masses;
  // they must be finite, in [0, 1], and sum to ~1.
  const obs::JsonValue* probs = bin.result.find("probabilities");
  ASSERT_NE(probs, nullptr);
  ASSERT_FALSE(probs->array.empty());
  double total = 0.0;
  for (const obs::JsonValue& v : probs->array) {
    ASSERT_TRUE(std::isfinite(v.number));
    EXPECT_GE(v.number, 0.0);
    EXPECT_LE(v.number, 1.0);
    total += v.number;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);

  const serve::HandlerResult yield = serve::handle_request(
      ctx, make_arc_request("yield3", "INV_X1"), serve::ExecMode::kShedFloor);
  ASSERT_TRUE(yield.status.is_ok());
  // The point-mass floor re-inflates stddev-0 moments to a tiny
  // positive scale (robust.stats.point_mass), so the 3-sigma yield is
  // Phi(3), not exactly 1.
  const double y = result_number(yield, "yield");
  EXPECT_TRUE(std::isfinite(y));
  EXPECT_GE(y, 0.99);
  EXPECT_LE(y, 1.0);

  serve::Request path = make_arc_request("path_ssta", "INV_X1");
  path.params.object.emplace_back("depth", [] {
    obs::JsonValue v;
    v.type = obs::JsonValue::Type::kNumber;
    v.number = 6.0;
    return v;
  }());
  const serve::HandlerResult ssta = serve::handle_request(
      ctx, path, serve::ExecMode::kShedLight);
  ASSERT_TRUE(ssta.status.is_ok()) << ssta.status.to_string();
  EXPECT_TRUE(std::isfinite(result_number(ssta, "arrival_mean_ns")));
  EXPECT_TRUE(std::isfinite(result_number(ssta, "yield_3sigma")));
}

TEST(ServeHandlers, YieldHsFullRunsImportanceSampling) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  serve::Request request = make_arc_request("yield_hs", "INV_X1");
  request.params.object.emplace_back("sigma", [] {
    obs::JsonValue v;
    v.type = obs::JsonValue::Type::kNumber;
    v.number = 2.0;
    return v;
  }());
  request.params.object.emplace_back("max_samples", [] {
    obs::JsonValue v;
    v.type = obs::JsonValue::Type::kNumber;
    v.number = 2048.0;
    return v;
  }());
  const serve::HandlerResult result =
      serve::handle_request(ctx, request, serve::ExecMode::kFull);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.degradation, "none");
  const obs::JsonValue* method = result.result.find("method");
  ASSERT_NE(method, nullptr);
  EXPECT_EQ(method->string, "importance");
  const double p = result_number(result, "p_fail");
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  const double ess = result_number(result, "ess");
  const double samples = result_number(result, "samples");
  EXPECT_GT(ess, 0.0);
  EXPECT_LE(ess, samples);
  EXPECT_LE(samples, 2048.0);
  EXPECT_TRUE(std::isfinite(result_number(result, "threshold_ns")));

  // Determinism: the op derives its seed from the arc identity, so the
  // same request answers with the same bits.
  const serve::HandlerResult again =
      serve::handle_request(ctx, request, serve::ExecMode::kFull);
  ASSERT_TRUE(again.status.is_ok());
  EXPECT_EQ(result_number(again, "p_fail"), p);
}

TEST(ServeHandlers, YieldHsShedAnswersFromModelTail) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const serve::HandlerResult floor = serve::handle_request(
      ctx, make_arc_request("yield_hs", "INV_X1"), serve::ExecMode::kShedFloor);
  ASSERT_TRUE(floor.status.is_ok()) << floor.status.to_string();
  EXPECT_EQ(floor.degradation, "point_mass");
  const obs::JsonValue* method = floor.result.find("method");
  ASSERT_NE(method, nullptr);
  EXPECT_EQ(method->string, "model_tail");
  const double p = floor.result.find("p_fail")->number;
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);

  // An expired deadline degrades mid-compute to the floor answer
  // instead of erroring — the IS loops are checkpointed.
  core::DeadlineGuard guard(0.0);
  const serve::HandlerResult shed = serve::handle_request(
      ctx, make_arc_request("yield_hs", "NAND2_X1"), serve::ExecMode::kFull);
  ASSERT_TRUE(shed.status.is_ok()) << shed.status.to_string();
  EXPECT_EQ(shed.degradation, "point_mass");
}

TEST(ServeHandlers, MetricsOpExposesSnapshotAndPrometheus) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  // Seed the telemetry so the snapshot has at least one op row.
  serve::ServeTelemetry& telemetry = serve::ServeTelemetry::instance();
  telemetry.record_request("ping");
  telemetry.record_response("ping", /*is_ok=*/true, "none",
                            /*queue_ms=*/0.25, /*exec_ms=*/1.5,
                            /*budget_ms=*/250.0);

  serve::Request request;
  request.op = "metrics";
  request.params = *obs::json_parse("{}");
  const serve::HandlerResult json_result =
      serve::handle_request(ctx, request, serve::ExecMode::kFull);
  ASSERT_TRUE(json_result.status.is_ok()) << json_result.status.to_string();
  const obs::JsonValue* ops = json_result.result.find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_TRUE(ops->is_object());
  const obs::JsonValue* ping_row = ops->find("ping");
  ASSERT_NE(ping_row, nullptr);
  EXPECT_GE(ping_row->number_or("requests", 0.0), 1.0);
  EXPECT_GE(ping_row->number_or("responded", 0.0), 1.0);
  ASSERT_NE(ping_row->find("deadline"), nullptr);
  EXPECT_GE(ping_row->find("deadline")->number_or("total", 0.0), 1.0);
  ASSERT_NE(ping_row->find("queue_ms"), nullptr);
  EXPECT_NE(json_result.result.find("registry"), nullptr);
  EXPECT_GE(json_result.result.number_or("uptime_s", -1.0), 0.0);

  request.params = *obs::json_parse(R"({"format":"prometheus"})");
  const serve::HandlerResult prom_result =
      serve::handle_request(ctx, request, serve::ExecMode::kFull);
  ASSERT_TRUE(prom_result.status.is_ok()) << prom_result.status.to_string();
  const std::string text = prom_result.result.string_or("text", "");
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("lvf2_serve_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("lvf2_serve_op_requests_total{op=\"ping\"}"),
            std::string::npos);

  request.params = *obs::json_parse(R"({"format":"xml"})");
  const serve::HandlerResult bad =
      serve::handle_request(ctx, request, serve::ExecMode::kFull);
  EXPECT_EQ(bad.status.code(), core::StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- concurrency

class ServeConcurrency : public ::testing::Test {
 protected:
  void TearDown() override { robust::FaultInjector::instance().clear(); }
};

// The satellite contract: eight threads issuing requests while EM
// faults are injected must each get a valid, possibly-degraded answer
// — never a crash, never a poisoned (non-finite) number, never a
// cross-request mixup. gtest assertions are not thread-safe, so the
// workers only collect and the main thread judges.
TEST_F(ServeConcurrency, EightThreadsStayValidUnderEmFaults) {
  robust::FaultInjector& injector = robust::FaultInjector::instance();
  ASSERT_TRUE(injector.configure("em.collapse;seed=29").is_ok());
  const std::uint64_t degraded_before =
      obs::counter("robust.downgrade.single_sn").value();

  serve::HandlerContext ctx;
  configure_context(ctx);
  ctx.characterize.mc_samples = 160;
  const char* kCells[8] = {"INV_X1",   "BUFF_X1", "NAND2_X1", "NOR2_X1",
                           "AND2_X1",  "OR2_X1",  "XOR2_X1",  "MUX2_X1"};

  struct Outcome {
    std::string cell;
    serve::HandlerResult result;
  };
  std::mutex outcomes_mutex;
  std::vector<Outcome> outcomes;

  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      // Mix of modes: full computes hit the faulted EM fits, shed
      // requests exercise the LRU and analytic fallbacks concurrently.
      const serve::ExecMode modes[3] = {serve::ExecMode::kFull,
                                        serve::ExecMode::kShedLight,
                                        serve::ExecMode::kShedFloor};
      for (int k = 0; k < 3; ++k) {
        const serve::Request request =
            make_arc_request("arc_dist", kCells[t]);
        serve::HandlerResult result =
            serve::handle_request(ctx, request, modes[k]);
        std::lock_guard<std::mutex> lock(outcomes_mutex);
        outcomes.push_back({kCells[t], std::move(result)});
      }
    });
  }
  for (std::thread& w : workers) w.join();

  ASSERT_EQ(outcomes.size(), 24u);
  for (const Outcome& o : outcomes) {
    SCOPED_TRACE(o.cell);
    ASSERT_TRUE(o.result.status.is_ok()) << o.result.status.to_string();
    const std::string& tag = o.result.degradation;
    EXPECT_TRUE(tag == "none" || tag == "cached" || tag == "single_sn" ||
                tag == "point_mass")
        << tag;
    // No cross-request mixup and no poisoned numbers.
    EXPECT_EQ(o.result.result.string_or("cell", ""), o.cell);
    const double mean = result_number(o.result, "delay", "mean");
    EXPECT_TRUE(std::isfinite(mean) && mean > 0.0) << mean;
  }
  // The injected EM faults must have actually engaged the degradation
  // chain inside the full fits.
  EXPECT_GT(injector.injected_count(robust::Fault::kEmCollapse), 0u);
  EXPECT_GT(obs::counter("robust.downgrade.single_sn").value(),
            degraded_before);
}

TEST_F(ServeConcurrency, LruSurvivesThrash) {
  serve::HotLru lru(16);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 400; ++i) {
        const std::uint64_t key = (i + static_cast<std::uint64_t>(t)) % 32;
        if (i % 3 == 0) {
          lru.put(key, std::string(8, 'x'));
        } else {
          (void)lru.get(key);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(lru.size(), 16u);
}

TEST_F(ServeConcurrency, AdmissionQueueSurvivesThrash) {
  serve::AdmissionQueue<FakeItem> queue(8, 6);
  std::atomic<int> popped{0};
  std::atomic<int> pushed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (queue.try_push({i}) != serve::Admit::kRejected) {
          pushed.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (queue.pop().has_value()) popped.fetch_add(1);
    });
  }
  // Give producers time to finish, then close; poppers drain and exit.
  for (int t = 0; t < 4; ++t) workers[static_cast<std::size_t>(t)].join();
  queue.close();
  for (std::size_t t = 4; t < workers.size(); ++t) workers[t].join();
  EXPECT_EQ(popped.load(), pushed.load());
}

// Deterministic single-flight check: the test poses as the leader by
// planting the entry's key in inflight_keys, so the real request must
// take the follower path (bumping serve.coalesced before it waits).
// Releasing the key wakes it; the cache is still cold, so it retries
// and becomes the leader itself.
TEST_F(ServeConcurrency, CoalescedFollowerWaitsThenRetries) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  const cells::Cell* cell = ctx.library.find("INV_X1");
  ASSERT_NE(cell, nullptr);
  ASSERT_FALSE(cell->arcs.empty());
  const cells::TimingArc& arc = cell->arcs.front();
  const std::uint64_t key =
      cells::entry_cache_key(ctx.corner, ctx.characterize, *cell, arc,
                             arc.label(), 0, 0);
  obs::Counter& coalesced = obs::counter("serve.coalesced");
  const std::uint64_t before = coalesced.value();
  {
    std::lock_guard<std::mutex> lock(ctx.flight_mutex);
    ASSERT_TRUE(ctx.inflight_keys.insert(key).second);
  }
  serve::HandlerResult result;
  std::thread follower([&] {
    result = serve::handle_request(
        ctx, make_arc_request("arc_dist", "INV_X1"), serve::ExecMode::kFull);
  });
  for (int i = 0; i < 1000 && coalesced.value() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(coalesced.value(), before);
  {
    std::lock_guard<std::mutex> lock(ctx.flight_mutex);
    ctx.inflight_keys.erase(key);
  }
  ctx.flight_cv.notify_all();
  follower.join();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.degradation, "none");
  const double mean = result_number(result, "delay", "mean");
  EXPECT_TRUE(std::isfinite(mean) && mean > 0.0) << mean;
  EXPECT_GT(ctx.lru.size(), 0u);
}

// Eight racing full computes of the same entry: whether a thread ends
// up leader, coalesced follower, or late cache hit, everyone gets the
// same full-quality bytes (the compute is seeded, so equality is
// exact) and nobody is told it was degraded.
TEST_F(ServeConcurrency, ConcurrentIdenticalFullComputesAgree) {
  serve::HandlerContext ctx;
  configure_context(ctx);
  ctx.characterize.mc_samples = 400;  // slow enough that threads overlap

  std::mutex results_mutex;
  std::vector<serve::HandlerResult> results;
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      serve::HandlerResult r = serve::handle_request(
          ctx, make_arc_request("arc_dist", "NAND2_X1"),
          serve::ExecMode::kFull);
      std::lock_guard<std::mutex> lock(results_mutex);
      results.push_back(std::move(r));
    });
  }
  for (std::thread& w : workers) w.join();

  ASSERT_EQ(results.size(), 8u);
  const double mean0 = result_number(results.front(), "delay", "mean");
  ASSERT_TRUE(std::isfinite(mean0) && mean0 > 0.0) << mean0;
  for (const serve::HandlerResult& r : results) {
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    EXPECT_EQ(r.degradation, "none");
    EXPECT_DOUBLE_EQ(result_number(r, "delay", "mean"), mean0);
  }
}

// ----------------------------------------------------- request tracing

TEST(ServeReqTrace, RingIsFifoAndBounded) {
  serve::TraceRing ring;
  serve::RequestTrace t;
  for (std::size_t i = 0; i < serve::TraceRing::kCapacity; ++i) {
    t.rid = i + 1;
    ASSERT_TRUE(ring.try_push(t));
  }
  t.rid = 999999;
  EXPECT_FALSE(ring.try_push(t));  // full: drop, never overwrite
  serve::RequestTrace out;
  for (std::size_t i = 0; i < serve::TraceRing::kCapacity; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out.rid, i + 1);
  }
  EXPECT_FALSE(ring.try_pop(out));
  // FIFO holds across the wrap-around boundary.
  for (std::uint64_t i = 0; i < 3 * serve::TraceRing::kCapacity; ++i) {
    t.rid = i;
    ASSERT_TRUE(ring.try_push(t));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out.rid, i);
  }
}

TEST(ServeReqTrace, ConcurrentRecordingIsAccountedAndParseable) {
  if (serve::reqtrace_enabled()) {
    GTEST_SKIP() << "an access-log session is already active";
  }
  serve::RequestTraceLog& log = serve::RequestTraceLog::instance();
  const std::string path = testing::TempDir() + "lvf2_access_test.jsonl";
  ASSERT_TRUE(log.configure(path, /*max_kb=*/16384));
  const std::uint64_t written_before = log.written();
  const std::uint64_t dropped_before = log.dropped();
  log.start();
  ASSERT_TRUE(serve::reqtrace_enabled());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        serve::RequestTrace trace;
        trace.rid = static_cast<std::uint64_t>(t) * kPerThread +
                    static_cast<std::uint64_t>(i) + 1;
        trace.conn = static_cast<std::uint64_t>(t) + 1;
        trace.queue_ms = 0.25;
        trace.exec_ms = 1.5;
        trace.bytes_in = 64;
        trace.bytes_out = 256;
        serve::RequestTrace::set_field(trace.op, "arc_dist");
        serve::RequestTrace::set_field(trace.status, "ok");
        serve::RequestTrace::set_field(trace.degradation, "none");
        serve::RequestTrace::set_field(trace.mode, "ok");
        log.record(trace);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  log.stop();
  EXPECT_FALSE(serve::reqtrace_enabled());

  // Every record is accounted for: written to the log or counted as a
  // ring-overflow drop. Nothing vanishes, nothing is double-counted.
  const std::uint64_t written = log.written() - written_before;
  const std::uint64_t dropped = log.dropped() - dropped_before;
  EXPECT_EQ(written + dropped,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(written, 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::optional<obs::JsonValue> doc = obs::json_parse(line);
    ASSERT_TRUE(doc.has_value() && doc->is_object()) << line;
    EXPECT_GT(doc->number_or("rid", 0.0), 0.0);
    EXPECT_EQ(doc->string_or("op", ""), "arc_dist");
    EXPECT_EQ(doc->string_or("mode", ""), "ok");
    EXPECT_DOUBLE_EQ(doc->number_or("exec_ms", 0.0), 1.5);
    EXPECT_DOUBLE_EQ(doc->number_or("bytes_out", 0.0), 256.0);
  }
  EXPECT_EQ(lines, written);
  std::remove(path.c_str());
}

TEST(ServeReqTrace, RotationCapsTheLogFile) {
  if (serve::reqtrace_enabled()) {
    GTEST_SKIP() << "an access-log session is already active";
  }
  serve::RequestTraceLog& log = serve::RequestTraceLog::instance();
  const std::string path = testing::TempDir() + "lvf2_access_rotate.jsonl";
  const std::string rotated = path + ".1";
  std::remove(rotated.c_str());
  ASSERT_TRUE(log.configure(path, /*max_kb=*/1));
  log.start();

  const auto burst = [&log](std::uint64_t base) {
    for (std::uint64_t i = 0; i < 30; ++i) {  // ~4 KB per burst
      serve::RequestTrace trace;
      trace.rid = base + i;
      serve::RequestTrace::set_field(trace.op, "ping");
      serve::RequestTrace::set_field(trace.status, "ok");
      serve::RequestTrace::set_field(trace.degradation, "none");
      serve::RequestTrace::set_field(trace.mode, "ok");
      log.record(trace);
    }
  };
  burst(1);
  // Let the writer flush the first burst so the second append finds a
  // non-empty over-cap file and rotates it to <path>.1.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  burst(1000);
  log.stop();

  std::ifstream live(path);
  EXPECT_TRUE(live.is_open());
  std::ifstream old(rotated);
  EXPECT_TRUE(old.is_open());
  for (std::ifstream* f : {&live, &old}) {
    std::string line;
    while (std::getline(*f, line)) {
      if (line.empty()) continue;
      const std::optional<obs::JsonValue> doc = obs::json_parse(line);
      ASSERT_TRUE(doc.has_value() && doc->is_object()) << line;
      EXPECT_EQ(doc->string_or("op", ""), "ping");
    }
  }
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

// ------------------------------------------------------- report: serve

TEST(ServeReport, AccessLogSummaryRollsUpOps) {
  const std::string text =
      R"({"rid":1,"conn":1,"op":"arc_dist","status":"ok","degradation":"none","mode":"ok","queue_ms":0.2,"exec_ms":4.0,"bytes_in":60,"bytes_out":300})"
      "\n"
      R"({"rid":2,"conn":1,"op":"arc_dist","status":"ok","degradation":"cached","mode":"ok","queue_ms":0.1,"exec_ms":0.5,"bytes_in":60,"bytes_out":300})"
      "\n"
      R"({"rid":3,"conn":2,"op":"arc_dist","status":"not_found","degradation":"none","mode":"ok","queue_ms":0.1,"exec_ms":0.2,"bytes_in":55,"bytes_out":90})"
      "\n"
      R"({"rid":4,"conn":3,"op":"ping","status":"unavailable","degradation":"none","mode":"refused","queue_ms":0,"exec_ms":0,"bytes_in":20,"bytes_out":80})"
      "\n"
      "this line is not json\n";
  std::string error;
  const std::optional<std::string> summary =
      tools::render_access_log(text, &error);
  ASSERT_TRUE(summary.has_value()) << error;
  EXPECT_NE(summary->find("4 record(s), 1 malformed line(s)"),
            std::string::npos)
      << *summary;
  EXPECT_NE(summary->find("arc_dist"), std::string::npos);
  EXPECT_NE(summary->find("cached=1"), std::string::npos) << *summary;

  // All-garbage input is an error, not an empty report.
  EXPECT_FALSE(tools::render_access_log("nope\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------ end to end

int connect_tcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServeServer, EndToEndQueryShedAndDrain) {
  serve::ServerOptions options;
  options.listen = "tcp:0";
  options.queue_capacity = 16;
  options.characterize.grid = cells::SlewLoadGrid::reduced(4);
  options.characterize.mc_samples = 160;
  serve::Server server(std::move(options));
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_GT(server.tcp_port(), 0);

  const int fd = connect_tcp(server.tcp_port());
  ASSERT_GE(fd, 0);

  // Plain ping round trip.
  ASSERT_TRUE(
      serve::write_frame(fd, R"({"id":1,"op":"ping","params":{}})").is_ok());
  std::string reply;
  ASSERT_TRUE(serve::read_frame(fd, reply).is_ok());
  std::optional<obs::JsonValue> doc = obs::json_parse(reply);
  ASSERT_TRUE(doc.has_value()) << reply;
  EXPECT_DOUBLE_EQ(doc->number_or("id", 0.0), 1.0);
  EXPECT_EQ(doc->string_or("status", ""), "ok");

  // A microscopically budgeted query must come back ok + degraded,
  // not as an error (DESIGN.md decision 19).
  ASSERT_TRUE(serve::write_frame(
                  fd,
                  R"({"id":2,"op":"arc_dist","deadline_ms":0.001,)"
                  R"("params":{"cell":"INV_X1"}})")
                  .is_ok());
  ASSERT_TRUE(serve::read_frame(fd, reply).is_ok());
  doc = obs::json_parse(reply);
  ASSERT_TRUE(doc.has_value()) << reply;
  EXPECT_DOUBLE_EQ(doc->number_or("id", 0.0), 2.0);
  EXPECT_EQ(doc->string_or("status", ""), "ok");
  EXPECT_NE(doc->string_or("degradation", ""), "none");

  // An unknown cell is a per-request error, never a dropped
  // connection.
  ASSERT_TRUE(serve::write_frame(
                  fd,
                  R"({"id":3,"op":"yield3","params":{"cell":"NOPE"}})")
                  .is_ok());
  ASSERT_TRUE(serve::read_frame(fd, reply).is_ok());
  doc = obs::json_parse(reply);
  ASSERT_TRUE(doc.has_value()) << reply;
  EXPECT_EQ(doc->string_or("status", ""), "not_found");

  server.request_stop();
  server.wait();
  ::close(fd);
  EXPECT_DOUBLE_EQ(obs::gauge("serve.drained").value(), 1.0);
}

// Refusals answered during the drain race window must carry the
// server-minted request id so clients (and the soak harness) can
// correlate them with their own logs. The window is inherently racy —
// frames already in flight when request_stop() lands may be admitted,
// refused, or cut off by the read shutdown — so this asserts the
// id-bearing format on whatever refusals actually surface, never a
// minimum count (lvf2d_soak owns the statistical version).
TEST(ServeServer, DrainRefusalsCarryTheRequestId) {
  serve::ServerOptions options;
  options.listen = "tcp:0";
  options.queue_capacity = 16;
  options.characterize.grid = cells::SlewLoadGrid::reduced(4);
  serve::Server server(std::move(options));
  ASSERT_TRUE(server.start().is_ok());
  const int fd = connect_tcp(server.tcp_port());
  ASSERT_GE(fd, 0);

  for (int i = 0; i < 32; ++i) {
    const std::string body =
        "{\"id\":" + std::to_string(i + 1) + ",\"op\":\"ping\"}";
    if (!serve::write_frame(fd, body).is_ok()) break;
  }
  server.request_stop();
  // wait() is what finally closes the drained connections, so it must
  // run concurrently with the read loop or EOF never arrives.
  std::thread waiter([&server] { server.wait(); });

  int replies = 0;
  std::string reply;
  std::vector<std::string> bodies;
  while (serve::read_frame(fd, reply).is_ok()) {
    ++replies;
    bodies.push_back(reply);
  }
  waiter.join();
  ::close(fd);

  EXPECT_LE(replies, 32);
  for (const std::string& body : bodies) {
    const std::optional<obs::JsonValue> doc = obs::json_parse(body);
    ASSERT_TRUE(doc.has_value() && doc->is_object()) << body;
    if (doc->string_or("status", "") == "ok") continue;
    const std::string error = doc->string_or("error", "");
    EXPECT_NE(error.find("request "), std::string::npos) << body;
    EXPECT_NE(error.find("not admitted"), std::string::npos) << body;
  }
}

TEST(ServeServer, OversizedFrameIsAnsweredAndConnectionClosed) {
  serve::ServerOptions options;
  options.listen = "tcp:0";
  options.characterize.grid = cells::SlewLoadGrid::reduced(4);
  serve::Server server(std::move(options));
  ASSERT_TRUE(server.start().is_ok());
  const int fd = connect_tcp(server.tcp_port());
  ASSERT_GE(fd, 0);

  const std::uint32_t huge = serve::kMaxFrameBytes + 1;
  const unsigned char header[4] = {
      static_cast<unsigned char>(huge >> 24),
      static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge)};
  ASSERT_EQ(::write(fd, header, 4), 4);
  std::string reply;
  ASSERT_TRUE(serve::read_frame(fd, reply).is_ok());
  const std::optional<obs::JsonValue> doc = obs::json_parse(reply);
  ASSERT_TRUE(doc.has_value()) << reply;
  EXPECT_EQ(doc->string_or("status", ""), "resource_exhausted");
  // The server then closes the connection — the stream is unframed.
  const core::Status eof = serve::read_frame(fd, reply);
  EXPECT_FALSE(eof.is_ok());
  ::close(fd);

  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace lvf2
