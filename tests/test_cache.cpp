// Tests of the content-addressed result cache: the generic sharded
// store (cache::ResultCache), the characterization glue (key
// sensitivity, cold/warm byte-identical manifests, corruption
// degradation, cache modes), the concurrent-populate path, and the
// lvf2_cache CLI. Tests that arm the process singleton disarm it
// before returning; counters are asserted as deltas because the
// metrics registry is process-wide.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "cache_tool.h"
#include "cells/characterize.h"
#include "cells/characterize_cache.h"
#include "exec/pool.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "report.h"

namespace lvf2 {
namespace {

// A fresh cache directory under the gtest temp dir: removes any shard
// and lock files a previous run of the same test left behind.
std::string fresh_cache_dir(const char* name) {
  const std::string dir = testing::TempDir() + name;
  for (std::size_t s = 0; s < cache::ResultCache::kShardCount; ++s) {
    const std::string path =
        dir + "/" + cache::ResultCache::shard_file_name(s);
    std::remove(path.c_str());
    std::remove((path + ".lock").c_str());
  }
  return dir;
}

obs::JsonValue small_doc(double x) {
  obs::JsonValue doc;
  doc.type = obs::JsonValue::Type::kObject;
  obs::JsonValue num;
  num.type = obs::JsonValue::Type::kNumber;
  num.number = x;
  doc.object.emplace_back("x", num);
  return doc;
}

// 2x2-grid, small-sample characterization setup shared by the
// characterize-level cache tests.
struct SmallSetup {
  cells::CharacterizeOptions options;
  spice::ProcessCorner corner = spice::ProcessCorner::tt_global_local_mc();
  cells::Cell cell = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);

  SmallSetup() {
    options.grid = cells::SlewLoadGrid::reduced(4);
    options.mc_samples = 600;
  }

  cells::Characterizer characterizer() const {
    return cells::Characterizer(corner, options);
  }
  const cells::TimingArc& arc() const { return cell.arcs[0]; }
  std::string label() const { return cell.arcs[0].label(); }
  std::uint64_t key(std::size_t load_idx, std::size_t slew_idx) const {
    return cells::entry_cache_key(corner, options, cell, cell.arcs[0],
                                  label(), load_idx, slew_idx);
  }
};

// Arms the singleton on a fresh dir (disarming whatever the
// environment may have armed first) and disarms on scope exit.
class ScopedSingletonCache {
 public:
  ScopedSingletonCache(const std::string& dir, cache::Mode mode) {
    cache::ResultCache::instance().disarm();
    cache::ResultCache::instance().arm(dir, mode);
  }
  ~ScopedSingletonCache() { cache::ResultCache::instance().disarm(); }
};

TEST(CacheStore, DisabledByDefaultWhenEnvUnset) {
  if (std::getenv("LVF2_CACHE") != nullptr) {
    GTEST_SKIP() << "LVF2_CACHE is set in this environment";
  }
  EXPECT_FALSE(cache::enabled());
  EXPECT_FALSE(cache::ResultCache::instance().armed());
}

TEST(CacheStore, KeyHasherSeparatesAdjacentFields) {
  // Length-prefixed strings: ("ab","c") must not alias ("a","bc").
  cache::KeyHasher h1;
  h1.feed(std::string_view("ab"));
  h1.feed(std::string_view("c"));
  cache::KeyHasher h2;
  h2.feed(std::string_view("a"));
  h2.feed(std::string_view("bc"));
  EXPECT_NE(h1.digest(), h2.digest());

  // Identical feeds digest identically.
  cache::KeyHasher h3;
  h3.feed(std::string_view("ab"));
  h3.feed(std::string_view("c"));
  EXPECT_EQ(h1.digest(), h3.digest());

  // false encodes as 2, so a cleared flag never aliases a zero count.
  cache::KeyHasher hb;
  hb.feed(false);
  cache::KeyHasher hu;
  hu.feed(std::uint64_t{0});
  EXPECT_NE(hb.digest(), hu.digest());
  cache::KeyHasher ht;
  ht.feed(true);
  EXPECT_NE(ht.digest(), hb.digest());

  // -0.0 and +0.0 have different bit patterns, hence different keys.
  cache::KeyHasher hz1;
  hz1.feed(0.0);
  cache::KeyHasher hz2;
  hz2.feed(-0.0);
  EXPECT_NE(hz1.digest(), hz2.digest());
}

TEST(CacheStore, ModeParsing) {
  EXPECT_EQ(cache::parse_mode(nullptr), cache::Mode::kReadWrite);
  EXPECT_EQ(cache::parse_mode(""), cache::Mode::kReadWrite);
  EXPECT_EQ(cache::parse_mode("rw"), cache::Mode::kReadWrite);
  EXPECT_EQ(cache::parse_mode("readonly"), cache::Mode::kReadOnly);
  EXPECT_EQ(cache::parse_mode("ro"), cache::Mode::kReadOnly);
  EXPECT_EQ(cache::parse_mode("refresh"), cache::Mode::kRefresh);
  EXPECT_EQ(cache::parse_mode("bogus"), cache::Mode::kReadWrite);
  EXPECT_STREQ(cache::to_string(cache::Mode::kRefresh), "refresh");
}

TEST(CacheStore, KeyFormatRoundTrip) {
  for (const std::uint64_t key :
       {std::uint64_t{0}, std::uint64_t{0xdeadbeefcafef00d},
        std::uint64_t{0xffffffffffffffff}}) {
    const std::string hex = cache::ResultCache::format_key(key);
    EXPECT_EQ(hex.size(), 16u);
    const auto back = cache::ResultCache::parse_key(hex);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, key);
  }
  EXPECT_FALSE(cache::ResultCache::parse_key("123").has_value());
  EXPECT_FALSE(
      cache::ResultCache::parse_key("zzzzzzzzzzzzzzzz").has_value());
}

TEST(CacheStore, PersistsAcrossInstancesInShardedFiles) {
  const std::string dir = fresh_cache_dir("lvf2_cache_persist");
  // Keys with different top nibbles land in different shards.
  const std::uint64_t key_a = 0x0123456789abcdefull;
  const std::uint64_t key_b = 0xf123456789abcdefull;
  EXPECT_NE(cache::ResultCache::shard_of(key_a),
            cache::ResultCache::shard_of(key_b));
  {
    cache::ResultCache store;
    store.arm(dir, cache::Mode::kReadWrite);
    store.store(key_a, small_doc(1.5));
    store.store(key_b, small_doc(0.1 + 0.2));  // not exactly 0.3
    store.flush();
    EXPECT_EQ(store.size(), 2u);
  }
  cache::ResultCache reloaded;
  reloaded.arm(dir, cache::Mode::kReadOnly);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.loaded_entries(), 2u);
  const auto a = reloaded.lookup(key_a);
  const auto b = reloaded.lookup(key_b);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->number_or("x", 0.0), 1.5);
  // Full-precision round trip: bitwise, not approximately.
  EXPECT_EQ(b->number_or("x", 0.0), 0.1 + 0.2);
  EXPECT_FALSE(reloaded.lookup(0x7777777777777777ull).has_value());
  reloaded.disarm();
}

TEST(CacheStore, CorruptShardFileDegradesToEmptyShard) {
  const std::string dir = fresh_cache_dir("lvf2_cache_corrupt_shard");
  {
    cache::ResultCache store;
    store.arm(dir, cache::Mode::kReadWrite);
    store.store(0x0000000000000001ull, small_doc(1.0));
    store.flush();
  }
  // Truncate shard 0 mid-document.
  {
    std::ofstream out(dir + "/" + cache::ResultCache::shard_file_name(0),
                      std::ios::trunc);
    out << "{\"schema_version\":1,\"entries\":{\"00000000000";
  }
  const std::uint64_t corrupt_before =
      obs::counter("robust.downgrade.cache_corrupt").value();
  cache::ResultCache store;
  store.arm(dir, cache::Mode::kReadWrite);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.load_failures(), 1u);
  EXPECT_GE(obs::counter("robust.downgrade.cache_corrupt").value(),
            corrupt_before + 1);
  // The store still works; a flush heals the shard file.
  store.store(0x0000000000000002ull, small_doc(2.0));
  store.flush();
  cache::ResultCache healed;
  healed.arm(dir, cache::Mode::kReadOnly);
  EXPECT_EQ(healed.size(), 1u);
  EXPECT_EQ(healed.load_failures(), 0u);
  healed.disarm();
  store.disarm();
}

TEST(CacheStore, ConcurrentStoreAndLookupFromFourThreads) {
  const std::string dir = fresh_cache_dir("lvf2_cache_threads");
  cache::ResultCache store;
  store.arm(dir, cache::Mode::kReadWrite);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 64;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Spread keys over every shard (top nibble varies with i).
        const std::uint64_t key = (static_cast<std::uint64_t>(i) << 60) |
                                  (t * kPerThread + i);
        store.store(key, small_doc(static_cast<double>(i)));
        const auto back = store.lookup(key);
        EXPECT_TRUE(back.has_value());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.size(), kThreads * kPerThread);
  store.flush();
  cache::ResultCache reloaded;
  reloaded.arm(dir, cache::Mode::kReadOnly);
  EXPECT_EQ(reloaded.size(), kThreads * kPerThread);
  reloaded.disarm();
  store.disarm();
}

TEST(CacheCharacterize, KeyChangesWhenAnySingleInputChanges) {
  const SmallSetup base;
  std::set<std::uint64_t> keys;
  keys.insert(base.key(0, 0));
  // Grid position.
  keys.insert(base.key(1, 0));
  keys.insert(base.key(0, 1));
  // Every single scalar knob must flip the key.
  {
    SmallSetup s;
    s.options.mc_samples += 1;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.use_lhs = !s.options.use_lhs;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.seed_base += 1;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.fit.seed += 1;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.fit.likelihood_bins += 1;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.fit.em_max_iterations += 1;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.fit.em_tolerance *= 2.0;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.fit.mstep_evaluations += 1;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.grid.slews_ns[0] *= 1.01;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.options.grid.loads_pf[0] *= 1.01;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.corner.vdd += 0.01;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.corner.sigma_vth_n *= 1.1;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.corner.temp_c += 10.0;
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.cell = cells::build_cell(cells::CellFamily::kInv, 1, 2.0);
    keys.insert(s.key(0, 0));
  }
  {
    SmallSetup s;
    s.cell = cells::build_cell(cells::CellFamily::kNand, 2, 1.0);
    keys.insert(s.key(0, 0));
  }
  // 17 variants + baseline: every one distinct.
  EXPECT_EQ(keys.size(), 18u);
}

TEST(CacheCharacterize, ColdWarmManifestsAreByteIdentical) {
  const std::string dir = fresh_cache_dir("lvf2_cache_coldwarm");
  const std::string cold_path = testing::TempDir() + "lvf2_cold.json";
  const std::string warm_path = testing::TempDir() + "lvf2_warm.json";
  ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);

  const SmallSetup setup;
  const cells::Characterizer ch = setup.characterizer();

  obs::ManifestRecorder::instance().start(cold_path);
  ch.characterize_arc(setup.cell, setup.arc());
  obs::ManifestRecorder::instance().stop();

  const std::uint64_t hits_before = obs::counter("cache.hit").value();
  const std::uint64_t misses_before = obs::counter("cache.miss").value();

  obs::ManifestRecorder::instance().start(warm_path);
  ch.characterize_arc(setup.cell, setup.arc());
  obs::ManifestRecorder::instance().stop();

  // Every one of the 2x2 entries hit; nothing recomputed.
  EXPECT_EQ(obs::counter("cache.hit").value(), hits_before + 4);
  EXPECT_EQ(obs::counter("cache.miss").value(), misses_before);

  std::string error;
  const auto cold = tools::load_manifest(cold_path, &error);
  ASSERT_TRUE(cold.has_value()) << error;
  const auto warm = tools::load_manifest(warm_path, &error);
  ASSERT_TRUE(warm.has_value()) << error;
  std::remove(cold_path.c_str());
  std::remove(warm_path.c_str());

  // The replayed QoR rows render byte-identical to the cold run's.
  EXPECT_EQ(obs::json_write(tools::canonicalize(*cold)),
            obs::json_write(tools::canonicalize(*warm)));
  const tools::DiffResult diff = tools::diff_manifests(
      *cold, *warm, tools::DiffOptions{0.0, 0.0, {}});
  EXPECT_TRUE(diff.ok()) << diff.regressions.front();

  // Both manifests carry the cache section (appended after the fixed
  // schema keys, so the documented key order is unchanged).
  const obs::JsonValue* section = warm->find("cache");
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->string_or("mode", ""), "rw");
  EXPECT_EQ(section->number_or("entries", 0.0), 4.0);
}

TEST(CacheCharacterize, CorruptedEntryDegradesToRecompute) {
  const std::string dir = fresh_cache_dir("lvf2_cache_corrupt_entry");
  ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);
  const SmallSetup setup;
  const std::uint64_t key = setup.key(0, 0);

  // Valid JSON, not a valid entry: decodes to nullopt, must degrade.
  cache::ResultCache::instance().store(key, small_doc(42.0));

  const std::uint64_t decode_before =
      obs::counter("robust.downgrade.cache_decode").value();
  const std::uint64_t misses_before = obs::counter("cache.miss").value();
  const cells::ConditionCharacterization cc =
      setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                               setup.label(), 0, 0);
  EXPECT_TRUE(cc.status.is_ok());
  EXPECT_GT(cc.lvf_delay.stddev, 0.0);
  EXPECT_EQ(obs::counter("robust.downgrade.cache_decode").value(),
            decode_before + 1);
  EXPECT_EQ(obs::counter("cache.miss").value(), misses_before + 1);

  // The bogus entry was replaced by the recomputed one.
  const auto healed = cache::ResultCache::instance().lookup(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_TRUE(cells::decode_cached_entry(*healed).has_value());
}

TEST(CacheCharacterize, ReadonlyModeServesHitsButNeverWrites) {
  const std::string dir = fresh_cache_dir("lvf2_cache_readonly");
  const SmallSetup setup;
  {
    ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);
    setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                             setup.label(), 0, 0);
    EXPECT_EQ(cache::ResultCache::instance().size(), 1u);
  }
  ScopedSingletonCache armed(dir, cache::Mode::kReadOnly);
  const std::uint64_t hits_before = obs::counter("cache.hit").value();
  const std::uint64_t stores_before = obs::counter("cache.store").value();
  // The populated entry hits...
  setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                           setup.label(), 0, 0);
  EXPECT_EQ(obs::counter("cache.hit").value(), hits_before + 1);
  // ...a fresh entry misses and is NOT written back.
  setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                           setup.label(), 1, 1);
  EXPECT_EQ(obs::counter("cache.store").value(), stores_before);
  EXPECT_EQ(cache::ResultCache::instance().size(), 1u);
}

TEST(CacheCharacterize, RefreshModeRecomputesAndOverwrites) {
  const std::string dir = fresh_cache_dir("lvf2_cache_refresh");
  const SmallSetup setup;
  {
    ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);
    setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                             setup.label(), 0, 0);
  }
  ScopedSingletonCache armed(dir, cache::Mode::kRefresh);
  const std::uint64_t hits_before = obs::counter("cache.hit").value();
  const std::uint64_t misses_before = obs::counter("cache.miss").value();
  const std::uint64_t stores_before = obs::counter("cache.store").value();
  setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                           setup.label(), 0, 0);
  EXPECT_EQ(obs::counter("cache.hit").value(), hits_before);
  EXPECT_EQ(obs::counter("cache.miss").value(), misses_before + 1);
  EXPECT_EQ(obs::counter("cache.store").value(), stores_before + 1);
}

TEST(CacheCharacterize, ConcurrentPopulateUnderPoolThenFullHit) {
  const std::string dir = fresh_cache_dir("lvf2_cache_pool");
  ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);
  const SmallSetup setup;
  const cells::Characterizer ch = setup.characterizer();

  exec::set_thread_count(4);
  const cells::ArcCharacterization cold =
      ch.characterize_arc(setup.cell, setup.arc());
  EXPECT_EQ(cache::ResultCache::instance().size(), 4u);

  const std::uint64_t hits_before = obs::counter("cache.hit").value();
  const cells::ArcCharacterization warm =
      ch.characterize_arc(setup.cell, setup.arc());
  exec::set_thread_count(0);
  EXPECT_EQ(obs::counter("cache.hit").value(), hits_before + 4);

  // A cached run is byte-identical to the computing run.
  ASSERT_EQ(cold.entries.size(), warm.entries.size());
  for (std::size_t i = 0; i < cold.entries.size(); ++i) {
    EXPECT_EQ(cold.entries[i].nominal_delay_ns,
              warm.entries[i].nominal_delay_ns);
    EXPECT_EQ(cold.entries[i].lvf_delay.mean, warm.entries[i].lvf_delay.mean);
    EXPECT_EQ(cold.entries[i].lvf2_delay.lambda,
              warm.entries[i].lvf2_delay.lambda);
    EXPECT_EQ(cold.entries[i].lvf2_delay.theta1.stddev,
              warm.entries[i].lvf2_delay.theta1.stddev);
  }
}

TEST(CacheCharacterize, HitWithoutStoredQorDegradesUnderManifest) {
  const std::string dir = fresh_cache_dir("lvf2_cache_noqor");
  ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);
  const SmallSetup setup;
  // Populate with no manifest armed: the entry carries no QoR row.
  setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                           setup.label(), 0, 0);

  const std::string path = testing::TempDir() + "lvf2_cache_noqor.json";
  const std::uint64_t misses_before = obs::counter("cache.miss").value();
  obs::ManifestRecorder::instance().start(path);
  setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                           setup.label(), 0, 0);
  obs::ManifestRecorder::instance().stop();
  std::remove(path.c_str());
  // The hit was unusable (manifest armed, no stored row): recomputed
  // and re-stored with the row attached.
  EXPECT_EQ(obs::counter("cache.miss").value(), misses_before + 1);

  const std::uint64_t hits_before = obs::counter("cache.hit").value();
  setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                           setup.label(), 0, 0);
  EXPECT_EQ(obs::counter("cache.hit").value(), hits_before + 1);
}

TEST(CacheCli, StatsGcVerifyAndPurge) {
  const std::string dir = fresh_cache_dir("lvf2_cache_cli");
  const SmallSetup setup;
  {
    ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);
    setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                             setup.label(), 0, 0);
  }
  // An undecodable entry for gc to collect.
  {
    cache::ResultCache store;
    store.arm(dir, cache::Mode::kReadWrite);
    store.store(0x0000000000000042ull, small_doc(1.0));
    store.flush();
  }
  const auto run = [](std::initializer_list<const char*> argv) {
    std::vector<const char*> args(argv);
    return tools::cache_tool_main(static_cast<int>(args.size()),
                                  args.data());
  };
  EXPECT_EQ(run({"lvf2_cache"}), 2);
  EXPECT_EQ(run({"lvf2_cache", "bogus", dir.c_str()}), 2);
  EXPECT_EQ(run({"lvf2_cache", "stats", dir.c_str()}), 0);
  // Verify re-runs the sampled entry and matches the stored result.
  EXPECT_EQ(run({"lvf2_cache", "verify", dir.c_str(), "--sample", "8"}), 0);
  EXPECT_EQ(run({"lvf2_cache", "gc", dir.c_str()}), 0);
  {
    cache::ResultCache store;
    store.arm(dir, cache::Mode::kReadOnly);
    EXPECT_EQ(store.size(), 1u);  // the bogus entry was collected
    store.disarm();
  }
  EXPECT_EQ(run({"lvf2_cache", "purge", dir.c_str()}), 0);
  cache::ResultCache store;
  store.arm(dir, cache::Mode::kReadOnly);
  EXPECT_EQ(store.size(), 0u);
  store.disarm();
}

TEST(CacheCli, VerifyFlagsTamperedEntry) {
  const std::string dir = fresh_cache_dir("lvf2_cache_tamper");
  const SmallSetup setup;
  const std::uint64_t key = setup.key(0, 0);
  {
    ScopedSingletonCache armed(dir, cache::Mode::kReadWrite);
    setup.characterizer().characterize_entry(setup.cell, setup.arc(),
                                             setup.label(), 0, 0);
  }
  // Tamper with the stored result: nudge one number.
  {
    cache::ResultCache store;
    store.arm(dir, cache::Mode::kReadWrite);
    auto doc = store.lookup(key);
    ASSERT_TRUE(doc.has_value());
    for (auto& [k, v] : doc->object) {
      if (k == "result") {
        for (auto& [rk, rv] : v.object) {
          if (rk == "nominal_delay_ns") rv.number *= 1.5;
        }
      }
    }
    store.store(key, *doc);
    store.flush();
  }
  const char* argv[] = {"lvf2_cache", "verify", dir.c_str(),
                        "--sample", "8"};
  EXPECT_EQ(tools::cache_tool_main(5, argv), 1);
}

}  // namespace
}  // namespace lvf2
