// Fault-matrix stress test of the deterministic fault-injection
// harness (src/robust/): every fault mode is armed in turn and driven
// through all five pipeline stages — EM fitting, characterization,
// Liberty parsing, block-based SSTA, and the serving/cache I/O
// layer (frame round trips + shard reloads). Under every fault the
// pipeline must (a) never crash, (b) never leak a non-finite value
// into a surviving result, and (c) leave a nonzero robust.* survival
// counter behind, proving the degradation chain actually engaged.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cells/characterize.h"
#include "core/lvf2_model.h"
#include "liberty/lvf_tables.h"
#include "liberty/parser.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "robust/faults.h"
#include "serve/protocol.h"
#include "ssta/block_ssta.h"
#include "ssta/timing_graph.h"
#include "stats/grid_pdf.h"
#include "stats/rng.h"

#include "test_util.h"

namespace lvf2 {
namespace {

void expect_finite(double v, const char* what) {
  EXPECT_TRUE(std::isfinite(v)) << what << " = " << v;
}

// A surviving model must answer every statistical query finitely.
void expect_model_sane(const core::Lvf2Model& model) {
  expect_finite(model.mean(), "model mean");
  expect_finite(model.stddev(), "model stddev");
  EXPECT_GE(model.stddev(), 0.0);
  expect_finite(model.pdf(model.mean()), "pdf(mean)");
  const double c = model.cdf(model.mean());
  EXPECT_TRUE(std::isfinite(c) && c >= 0.0 && c <= 1.0) << "cdf = " << c;
  for (const double p : {0.0013, 0.5, 0.9987}) {
    expect_finite(model.quantile(p), "model quantile");
  }
}

// A propagated PDF is either empty (a contained, counted degradation)
// or fully finite: support, density values, moments, and quantiles.
void expect_pdf_sane(const stats::GridPdf& pdf) {
  if (pdf.empty()) return;
  expect_finite(pdf.lo(), "pdf lo");
  expect_finite(pdf.hi(), "pdf hi");
  bool density_finite = true;
  for (const double d : pdf.density()) density_finite &= std::isfinite(d);
  EXPECT_TRUE(density_finite);
  expect_finite(pdf.mean(), "pdf mean");
  expect_finite(pdf.stddev(), "pdf stddev");
  expect_finite(pdf.quantile(0.9987), "pdf quantile");
  const double c = pdf.cdf(pdf.mean());
  EXPECT_TRUE(std::isfinite(c) && c >= 0.0 && c <= 1.0) << "pdf cdf = " << c;
}

// Stage 1: sample corruption + the Lvf2Model::fit degradation chain.
void run_em_stage() {
  stats::Rng rng(test::test_seed(0x5eed));
  std::vector<double> xs;
  xs.reserve(900);
  for (int i = 0; i < 600; ++i) xs.push_back(rng.normal(1.0, 0.05));
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(1.6, 0.08));
  robust::corrupt_samples(xs);

  core::FitOptions options;
  options.seed = 42;
  core::EmReport report;
  const auto model = core::Lvf2Model::fit(xs, options, &report);
  if (xs.empty()) {
    // Only a fully emptied sample set may reject the fit.
    EXPECT_FALSE(model.has_value());
    EXPECT_EQ(report.degradation, core::FitDegradation::kRejected);
    return;
  }
  ASSERT_TRUE(model.has_value());
  expect_model_sane(*model);
  expect_finite(model->parameters().theta1.mean, "theta1 mean");
  expect_finite(model->parameters().theta2.stddev, "theta2 stddev");
}

// Stage 2: the characterization loop (per-entry degradation, sample
// corruption of the Monte-Carlo data, EM faults inside the fits).
void run_characterize_stage() {
  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::reduced(4);  // 2x2
  options.mc_samples = 300;
  const cells::Cell inv = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  const cells::Characterizer ch(spice::ProcessCorner{}, options);
  const cells::ArcCharacterization arc = ch.characterize_arc(inv, inv.arcs[0]);
  ASSERT_EQ(arc.entries.size(), arc.grid.rows() * arc.grid.cols());
  for (const cells::ConditionCharacterization& e : arc.entries) {
    expect_finite(e.nominal_delay_ns, "nominal delay");
    expect_finite(e.nominal_transition_ns, "nominal transition");
    expect_finite(e.lvf_delay.mean, "lvf mean");
    expect_finite(e.lvf_delay.stddev, "lvf stddev");
    expect_finite(e.lvf_delay.skewness, "lvf skewness");
    expect_finite(e.lvf2_delay.lambda, "lvf2 lambda");
    expect_finite(e.lvf2_delay.theta1.mean, "lvf2 theta1 mean");
    expect_finite(e.lvf2_delay.theta2.mean, "lvf2 theta2 mean");
    EXPECT_GE(e.lvf2_delay.lambda, 0.0);
    EXPECT_LE(e.lvf2_delay.lambda, 1.0);
  }
}

// A small but complete LVF^2 library: the liberty.* faults corrupt
// this text inside parse_lenient, and the table readers must still
// produce finite models from whatever survives.
constexpr const char kGoldenLib[] = R"(
library (fault_matrix) {
  delay_model : table_lookup;
  lu_table_template (lvf2_lut_8x8) {
    variable_1 : input_net_transition;
    variable_2 : total_output_net_capacitance;
    index_1 ("0.01, 0.05");
    index_2 ("0.001, 0.02");
  }
  cell (INVA) {
    pin (Y) {
      direction : output;
      timing () {
        related_pin : A;
        cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.11, 0.21", "0.14, 0.26");
        }
        ocv_mean_shift_cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.002, 0.004", "0.003, 0.005");
        }
        ocv_std_dev_cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.01, 0.02", "0.015, 0.025");
        }
        ocv_skewness_cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.2, 0.3", "0.25, 0.35");
        }
        ocv_weight2_cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.3, 0.3", "0.3, 0.3");
        }
        ocv_mean_shift2_cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.05, 0.06", "0.055, 0.065");
        }
        ocv_std_dev2_cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.02, 0.03", "0.025, 0.035");
        }
        ocv_skewness2_cell_rise (lvf2_lut_8x8) {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.02");
          values ("0.1, 0.1", "0.1, 0.1");
        }
      }
    }
  }
}
)";

// Stage 3: lenient Liberty parsing + statistical table extraction.
// Several rounds walk the deterministic corruption sequence across
// different bytes of the source.
void run_liberty_stage() {
  for (int round = 0; round < 6; ++round) {
    const liberty::ParseResult result = liberty::parse_lenient(kGoldenLib);
    const liberty::Group* cell = result.root.find_child("cell");
    if (cell == nullptr) continue;
    const liberty::Group* pin = cell->find_child("pin");
    if (pin == nullptr) continue;
    const liberty::Group* timing = liberty::find_timing(*pin, "A");
    if (timing == nullptr) timing = pin->find_child("timing");
    if (timing == nullptr) continue;
    const auto tables = liberty::extract_tables(*timing, "cell_rise");
    if (!tables.has_value() || tables->nominal.values.empty() ||
        tables->nominal.values.front().empty()) {
      continue;
    }
    expect_model_sane(tables->model_at(0, 0));
    if (!tables->nominal.index_1.empty() &&
        !tables->nominal.index_2.empty()) {
      expect_finite(tables->nominal.lookup(0.02, 0.01), "table lookup");
    }
  }
}

// Stage 4: block-based SSTA operators, chain propagation, and the
// timing-graph arrival analysis.
void run_ssta_stage() {
  stats::Rng rng(test::test_seed(0x55aa));
  std::vector<double> a(400), b(400);
  for (double& v : a) v = rng.normal(1.0, 0.05);
  for (double& v : b) v = rng.normal(1.3, 0.08);
  const stats::GridPdf pa = stats::GridPdf::from_samples(a, 128);
  const stats::GridPdf pb = stats::GridPdf::from_samples(b, 128);
  ssta::SstaOptions options;
  options.grid_points = 128;
  options.max_conv_points = 256;

  expect_pdf_sane(ssta::ssta_sum(pa, pb, options));
  expect_pdf_sane(ssta::ssta_max(pa, pb, options));

  const std::vector<stats::GridPdf> stages = {pa, pb, pa, pb};
  const std::vector<double> wires = {0.01, 0.02, 0.03, 0.04};
  const auto cumulative = ssta::propagate_chain(stages, wires, options);
  ASSERT_EQ(cumulative.size(), stages.size());
  for (const stats::GridPdf& pdf : cumulative) expect_pdf_sane(pdf);

  ssta::TimingGraph graph;
  const auto n0 = graph.add_node("in");
  const auto n1 = graph.add_node("mid");
  const auto n2 = graph.add_node("out");
  graph.add_edge(n0, n1, ssta::EdgeDelay{pa, 0.02});
  graph.add_edge(n0, n2, ssta::EdgeDelay{pb, 0.05});
  graph.add_edge(n1, n2, ssta::EdgeDelay{pb, 0.01});
  const auto arrivals = graph.compute_arrivals(options);
  ASSERT_EQ(arrivals.size(), graph.node_count());
  for (const ssta::EdgeDelay& arrival : arrivals) {
    expect_finite(arrival.constant_ns, "arrival constant");
    if (arrival.distribution.has_value()) {
      expect_pdf_sane(*arrival.distribution);
    }
  }
}

// Stage 5: serving-layer I/O. Frame round trips over a socketpair
// exercise the socket.read / socket.write retry loops (transient
// EINTRs and short transfers are absorbed; hard failures surface as a
// clean kUnavailable, never a crash), and a store -> flush -> reload
// cycle through a local ResultCache exercises the cache.read_io
// retry + backoff path (a persistently unreadable shard degrades to
// an absent one with a robust.downgrade.cache_io count).
void run_io_stage() {
  for (int round = 0; round < 24; ++round) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const std::string body =
        "{\"id\":" + std::to_string(round) + ",\"op\":\"ping\"}";
    const core::Status wrote = serve::write_frame(sv[0], body);
    if (wrote.is_ok()) {
      std::string got;
      const core::Status read = serve::read_frame(sv[1], got);
      if (read.is_ok()) {
        EXPECT_EQ(got, body);
      } else {
        // A hard injected fault ends the connection; acceptable, and
        // always with the canonical transient code.
        EXPECT_EQ(read.code(), core::StatusCode::kUnavailable);
      }
    } else {
      EXPECT_EQ(wrote.code(), core::StatusCode::kUnavailable);
    }
    ::close(sv[0]);
    ::close(sv[1]);
  }

  static int dir_counter = 0;
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("lvf2_io_stage_" + std::to_string(dir_counter++));
  std::filesystem::create_directories(dir);
  {
    cache::ResultCache producer;
    producer.arm(dir.string(), cache::Mode::kReadWrite);
    obs::JsonValue doc;
    doc.type = obs::JsonValue::Type::kObject;
    obs::JsonValue num;
    num.type = obs::JsonValue::Type::kNumber;
    num.number = 42.0;
    doc.object.emplace_back("x", num);
    // Keys spread over several shards (shard = top 4 key bits).
    for (std::uint64_t shard = 0; shard < 4; ++shard) {
      producer.store((shard << 60) | 0x1234u, doc);
    }
    producer.flush();

    cache::ResultCache consumer;
    consumer.arm(dir.string(), cache::Mode::kReadOnly);
    std::size_t present = 0;
    for (std::uint64_t shard = 0; shard < 4; ++shard) {
      if (const auto hit = consumer.lookup((shard << 60) | 0x1234u)) {
        // A shard that survived the injected I/O must reproduce its
        // bytes exactly.
        EXPECT_DOUBLE_EQ(hit->number_or("x", 0.0), 42.0);
        ++present;
      }
    }
    // Without cache.read_io armed every shard must load; with it
    // armed a shard may legitimately degrade to absent (counted by
    // robust.downgrade.cache_io), but absence is the worst allowed
    // outcome.
    if (!robust::FaultInjector::instance().armed(
            robust::Fault::kCacheReadIo)) {
      EXPECT_EQ(present, 4u);
    }
    consumer.disarm();
    producer.disarm();
  }
  std::filesystem::remove_all(dir);
}

struct FaultCase {
  const char* name;
  // Counters of which at least one must increase while the fault is
  // armed — the proof that the matching survival path engaged.
  std::vector<const char*> survival_counters;
};

const std::vector<FaultCase>& fault_matrix() {
  static const std::vector<FaultCase> kMatrix = {
      {"samples.nan", {"robust.samples.nonfinite_dropped"}},
      {"samples.inf", {"robust.samples.nonfinite_dropped"}},
      {"samples.constant",
       {"robust.downgrade.moment_normal", "robust.stats.point_mass"}},
      {"samples.outlier", {"robust.samples.outlier_clipped"}},
      {"samples.truncate", {"robust.downgrade.single_sn"}},
      {"samples.empty", {"robust.downgrade.rejected"}},
      {"em.collapse", {"robust.downgrade.single_sn"}},
      {"em.exhaust", {"robust.downgrade.em_nonconverged"}},
      {"em.oscillate",
       {"robust.em.oscillation_detected", "robust.downgrade.single_sn"}},
      {"liberty.token",
       {"robust.liberty.recovered", "robust.liberty.bad_number",
        "robust.liberty.malformed_table"}},
      {"liberty.truncate",
       {"robust.liberty.recovered", "robust.liberty.malformed_table"}},
      {"liberty.badnum",
       {"robust.liberty.recovered", "robust.liberty.bad_number",
        "robust.liberty.malformed_table"}},
      {"ssta.nonfinite", {"robust.ssta.nonfinite_delay"}},
      {"ssta.empty_pdf",
       {"robust.ssta.poisoned_stage", "robust.ssta.poisoned_arrival",
        "robust.ssta.poisoned_operand"}},
      {"socket.read", {"serve.io.retry", "serve.io.injected_hard"}},
      {"socket.write", {"serve.io.retry", "serve.io.injected_hard"}},
      {"cache.read_io", {"cache.io_retry", "robust.downgrade.cache_io"}},
  };
  return kMatrix;
}

std::uint64_t counters_total(const std::vector<const char*>& names) {
  std::uint64_t total = 0;
  for (const char* name : names) total += obs::counter(name).value();
  return total;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void TearDown() override { robust::FaultInjector::instance().clear(); }
};

TEST_F(FaultMatrixTest, EveryModeSurvivesEveryStage) {
  robust::FaultInjector& injector = robust::FaultInjector::instance();
  for (const FaultCase& fc : fault_matrix()) {
    SCOPED_TRACE(fc.name);
    const auto fault = robust::fault_from_name(fc.name);
    ASSERT_TRUE(fault.has_value());
    const std::uint64_t before = counters_total(fc.survival_counters);
    ASSERT_TRUE(
        injector.configure(std::string(fc.name) + ";seed=17").is_ok());

    run_em_stage();
    run_characterize_stage();
    run_liberty_stage();
    run_ssta_stage();
    run_io_stage();

    EXPECT_GT(injector.injected_count(*fault), 0u)
        << "fault never fired: " << fc.name;
    EXPECT_GT(counters_total(fc.survival_counters), before)
        << "no survival counter moved for " << fc.name;
    injector.clear();
  }
}

TEST_F(FaultMatrixTest, AllFaultsAtOnceStillSurvive) {
  robust::FaultInjector& injector = robust::FaultInjector::instance();
  ASSERT_TRUE(injector.configure("all;seed=11").is_ok());
  run_em_stage();
  run_characterize_stage();
  run_liberty_stage();
  run_ssta_stage();
  run_io_stage();
}

TEST_F(FaultMatrixTest, SpecParsing) {
  robust::FaultInjector& injector = robust::FaultInjector::instance();

  ASSERT_TRUE(injector.configure("samples.nan,em.collapse:0.5;seed=7").is_ok());
  EXPECT_TRUE(robust::faults_enabled());
  EXPECT_TRUE(injector.armed(robust::Fault::kSamplesNan));
  EXPECT_TRUE(injector.armed(robust::Fault::kEmCollapse));
  EXPECT_FALSE(injector.armed(robust::Fault::kSamplesInf));
  EXPECT_EQ(injector.seed(), 7u);

  ASSERT_TRUE(injector.configure("samples.*").is_ok());
  EXPECT_TRUE(injector.armed(robust::Fault::kSamplesEmpty));
  EXPECT_TRUE(injector.armed(robust::Fault::kSamplesTruncate));
  EXPECT_FALSE(injector.armed(robust::Fault::kEmCollapse));

  ASSERT_TRUE(injector.configure("all").is_ok());
  for (int i = 0; i < robust::kFaultCount; ++i) {
    EXPECT_TRUE(injector.armed(static_cast<robust::Fault>(i)));
  }

  EXPECT_FALSE(injector.configure("bogus.fault").is_ok());
  EXPECT_FALSE(robust::faults_enabled());
  EXPECT_FALSE(injector.configure("samples.nan:1.5").is_ok());
  EXPECT_FALSE(injector.configure("seed=abc").is_ok());

  ASSERT_TRUE(injector.configure("").is_ok());
  EXPECT_FALSE(robust::faults_enabled());
}

TEST_F(FaultMatrixTest, InjectionIsDeterministic) {
  robust::FaultInjector& injector = robust::FaultInjector::instance();
  const auto record = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.should_fire(robust::Fault::kSamplesNan));
    }
    return fired;
  };
  ASSERT_TRUE(injector.configure("samples.nan:0.5;seed=123").is_ok());
  const std::vector<bool> first = record();
  ASSERT_TRUE(injector.configure("samples.nan:0.5;seed=123").is_ok());
  const std::vector<bool> second = record();
  EXPECT_EQ(first, second);

  // The probability gate must actually thin the sequence.
  std::size_t count = 0;
  for (const bool b : first) count += b ? 1 : 0;
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, first.size());

  // A different seed decorrelates the decisions.
  ASSERT_TRUE(injector.configure("samples.nan:0.5;seed=124").is_ok());
  EXPECT_NE(record(), first);
}

TEST_F(FaultMatrixTest, DisabledHarnessIsInert) {
  robust::FaultInjector::instance().clear();
  EXPECT_FALSE(robust::faults_enabled());
  EXPECT_FALSE(robust::fire(robust::Fault::kSamplesNan));

  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_FALSE(robust::corrupt_samples(xs));
  EXPECT_EQ(xs, (std::vector<double>{1.0, 2.0, 3.0}));

  std::string text = "library (l) { }";
  EXPECT_FALSE(robust::corrupt_liberty_text(text));
  EXPECT_EQ(text, "library (l) { }");
}

TEST_F(FaultMatrixTest, FaultNamesRoundTrip) {
  for (int i = 0; i < robust::kFaultCount; ++i) {
    const auto fault = static_cast<robust::Fault>(i);
    const auto parsed = robust::fault_from_name(robust::to_string(fault));
    ASSERT_TRUE(parsed.has_value()) << robust::to_string(fault);
    EXPECT_EQ(*parsed, fault);
  }
  EXPECT_FALSE(robust::fault_from_name("nope").has_value());
}

}  // namespace
}  // namespace lvf2
