// Tests of the high-sigma importance-sampling engine (src/yield/):
// the plain-MC degeneration, weight diagnostics, determinism, and the
// statistical agreement/variance-reduction guarantees the yield gate
// relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "spice/montecarlo.h"
#include "stats/descriptive.h"
#include "stats/rng.h"
#include "test_util.h"
#include "yield/importance.h"

namespace lvf2::yield {
namespace {

// The "2 Peaks" shape from the paper scenarios: the strongest
// mechanism separation, where the failure region is bimodal and a
// proposal chosen from local-gradient information alone goes wrong.
spice::StageElectrical two_peaks_stage() {
  spice::StageElectrical stage;
  stage.mechanism_gain = 3.2;
  stage.mechanism_offset = -0.7;
  return stage;
}

constexpr spice::ArcCondition kCondition{0.05, 0.02};

ImportanceSampler make_sampler(const IsConfig& config) {
  return ImportanceSampler(two_peaks_stage(), kCondition,
                           spice::ProcessCorner::tt_global_local_mc(), config);
}

// Delay mean/stddev of the scenario from one plain-MC pilot, shared
// by the threshold-placement of every statistical test below.
stats::Moments pilot_moments(std::size_t samples, std::uint64_t seed) {
  spice::McConfig mc;
  mc.samples = samples;
  mc.seed = seed;
  const spice::McResult r = spice::run_monte_carlo(
      two_peaks_stage(), kCondition,
      spice::ProcessCorner::tt_global_local_mc(), mc);
  return stats::compute_moments(r.delay_ns);
}

TEST(Yield, ZeroShiftDegeneratesToPlainMcBitwise) {
  const std::uint64_t seed = test::test_seed(777);
  IsConfig cfg;
  cfg.batch_samples = cfg.max_samples = 4096;
  cfg.seed = seed;
  cfg.shards = 1;
  const ImportanceSampler sampler = make_sampler(cfg);

  // A low threshold keeps failures plentiful so the comparison has
  // bite on both sides of the boundary.
  const stats::Moments m = pilot_moments(4096, seed);
  const double threshold = m.mean + 1.5 * m.stddev;

  spice::McConfig mc;
  mc.samples = 4096;
  mc.seed = seed;
  mc.shards = 1;
  const spice::McResult r = spice::run_monte_carlo(
      two_peaks_stage(), kCondition,
      spice::ProcessCorner::tt_global_local_mc(), mc);
  std::size_t mc_failures = 0;
  for (const double d : r.delay_ns) {
    if (d > threshold) ++mc_failures;
  }

  const IsEstimate est = sampler.estimate_with_shift(threshold, ShiftVector{});
  EXPECT_EQ(est.samples, 4096u);
  EXPECT_EQ(est.failures, mc_failures);
  // All weights are exactly 1: the estimate is the plain MC ratio and
  // the diagnostics collapse to their degenerate values bitwise.
  EXPECT_DOUBLE_EQ(est.p_fail,
                   static_cast<double>(mc_failures) / 4096.0);
  EXPECT_DOUBLE_EQ(est.ess, 4096.0);
  EXPECT_DOUBLE_EQ(est.max_weight_fraction, 1.0 / 4096.0);
}

TEST(Yield, ZeroShiftShardedMatchesShardedMc) {
  const std::uint64_t seed = test::test_seed(0x5EED);
  IsConfig cfg;
  cfg.batch_samples = cfg.max_samples = 4096;
  cfg.seed = seed;
  cfg.shards = 4;
  const ImportanceSampler sampler = make_sampler(cfg);
  const stats::Moments m = pilot_moments(4096, seed);
  const double threshold = m.mean + 1.5 * m.stddev;

  spice::McConfig mc;
  mc.samples = 4096;
  mc.seed = seed;
  mc.shards = 4;
  const spice::McResult r = spice::run_monte_carlo(
      two_peaks_stage(), kCondition,
      spice::ProcessCorner::tt_global_local_mc(), mc);
  std::size_t mc_failures = 0;
  for (const double d : r.delay_ns) {
    if (d > threshold) ++mc_failures;
  }

  const IsEstimate est = sampler.estimate_with_shift(threshold, ShiftVector{});
  EXPECT_EQ(est.failures, mc_failures);
  EXPECT_DOUBLE_EQ(est.p_fail,
                   static_cast<double>(mc_failures) / 4096.0);
}

TEST(Yield, EstimateIsDeterministicPerConfig) {
  IsConfig cfg;
  cfg.batch_samples = cfg.max_samples = 8192;
  cfg.seed = test::test_seed(42);
  cfg.shards = 8;
  const ImportanceSampler sampler = make_sampler(cfg);
  const stats::Moments m = pilot_moments(8192, cfg.seed);
  const double threshold = m.mean + 3.0 * m.stddev;
  const IsEstimate a = sampler.estimate(threshold);
  const IsEstimate b = sampler.estimate(threshold);
  EXPECT_EQ(a.p_fail, b.p_fail);
  EXPECT_EQ(a.std_err, b.std_err);
  EXPECT_EQ(a.ess, b.ess);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.shift, b.shift);
  // The shift is frozen before estimation: re-running the estimation
  // under the published shift reproduces the estimate bitwise.
  const IsEstimate c = sampler.estimate_with_shift(threshold, a.shift);
  EXPECT_EQ(a.p_fail, c.p_fail);
  EXPECT_EQ(a.ess, c.ess);
}

TEST(Yield, DiagnosticsStayInRange) {
  IsConfig cfg;
  cfg.batch_samples = cfg.max_samples = 8192;
  cfg.seed = test::test_seed(0xD1A6);
  cfg.shards = 8;
  const ImportanceSampler sampler = make_sampler(cfg);
  const stats::Moments m = pilot_moments(8192, cfg.seed);
  const IsEstimate est = sampler.estimate(m.mean + 3.0 * m.stddev);
  EXPECT_GT(est.ess, 0.0);
  EXPECT_LE(est.ess, static_cast<double>(est.samples));
  EXPECT_GT(est.max_weight_fraction, 0.0);
  EXPECT_LE(est.max_weight_fraction, 1.0);
  EXPECT_GT(est.p_fail, 0.0);
  EXPECT_LT(est.p_fail, 1.0);
  // Defensive mixture: alpha = 0.5 keeps the ESS near or above
  // alpha * n even under an aggressive shift.
  EXPECT_GT(est.ess, 0.25 * static_cast<double>(est.samples));
}

TEST(Yield, ThreeSigmaAgreesWithBruteForceAcrossSeeds) {
  const std::uint64_t base = test::test_seed(0xA11CE);
  const stats::Moments m = pilot_moments(20000, base);
  const double threshold = m.mean + 3.0 * m.stddev;

  IsConfig bf_cfg;
  bf_cfg.seed = stats::combine_seed(base, 0xBF);
  bf_cfg.shards = 8;
  const BruteForceEstimate bf = make_sampler(bf_cfg).brute_force(
      threshold, 200000, /*target_rel_err=*/0.0);
  ASSERT_GT(bf.failures, 0u);

  // 16 independent IS runs against one 200k-draw brute-force anchor:
  // each must land within 3 combined standard errors. At 3 SE a
  // correct estimator still strays once in ~300 runs, so allow one
  // stray in 16 instead of encoding a seed lottery.
  int outside = 0;
  for (std::uint64_t k = 0; k < 16; ++k) {
    IsConfig cfg;
    cfg.batch_samples = 8192;
    cfg.max_samples = 32768;
    cfg.seed = stats::combine_seed(base, k + 1);
    cfg.shards = 8;
    const IsEstimate est = make_sampler(cfg).estimate(threshold);
    EXPECT_GT(est.p_fail, 0.0);
    const double tol =
        3.0 * std::sqrt(est.std_err * est.std_err + bf.std_err * bf.std_err);
    if (std::abs(est.p_fail - bf.p_fail) > tol) ++outside;
  }
  EXPECT_LE(outside, 1);
}

TEST(Yield, FourSigmaVarianceBeatsBruteForce) {
  const std::uint64_t seed = test::test_seed(0x45166);
  const stats::Moments m = pilot_moments(20000, seed);
  const double threshold = m.mean + 4.0 * m.stddev;
  IsConfig cfg;
  cfg.batch_samples = 8192;
  cfg.max_samples = 65536;
  cfg.seed = seed;
  cfg.shards = 8;
  const IsEstimate est = make_sampler(cfg).estimate(threshold);
  ASSERT_GT(est.p_fail, 0.0);
  ASSERT_TRUE(est.converged);
  // A binomial estimator at the same sample count has
  // SE = sqrt(p(1-p)/n); the IS run must sit well below it (the bench
  // measures the full >= 50x equivalent-sample gap, the unit test
  // just pins the direction with margin).
  const double binomial_se = std::sqrt(
      est.p_fail * (1.0 - est.p_fail) / static_cast<double>(est.samples));
  EXPECT_LT(est.std_err, 0.5 * binomial_se);
}

TEST(Yield, BruteForceEquivalentSamplesClosedForm) {
  EXPECT_DOUBLE_EQ(brute_force_equivalent_samples(0.5, 1.0), 1.0);
  // p = 1e-4 at re = 0.1: (1 - 1e-4) / (1e-4 * 0.01) ~= 1e6.
  EXPECT_NEAR(brute_force_equivalent_samples(1e-4, 0.1), 9.999e5, 1e2);
  // Degenerate inputs are infinite, not NaN or negative.
  EXPECT_TRUE(std::isinf(brute_force_equivalent_samples(0.0, 0.1)));
  EXPECT_TRUE(std::isinf(brute_force_equivalent_samples(1e-4, 0.0)));
}

TEST(Yield, ManifestSectionRoundTrips) {
  clear_yield_hs();
  IsEstimate est;
  est.threshold_ns = 0.04;
  est.sigma_level = 3.0;
  est.p_fail = 5.5e-4;
  est.std_err = 5e-5;
  est.rel_err = 5e-5 / 5.5e-4;
  est.samples = 8192;
  est.failures = 1234;
  est.ess = 4100.0;
  est.max_weight_fraction = 2.5e-4;
  est.shift[0] = 3.0;
  est.converged = true;
  record_yield_hs("unit", est);
  const std::string doc = yield_hs_section_json();
  EXPECT_NE(doc.find("\"label\":\"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"sigma\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"samples\":8192"), std::string::npos);
  EXPECT_NE(doc.find("\"converged\":true"), std::string::npos);
  clear_yield_hs();
  EXPECT_EQ(yield_hs_section_json().find("\"label\""), std::string::npos);
}

}  // namespace
}  // namespace lvf2::yield
