// Tests of the generic SSTA timing graph: topology, cycle detection
// and distribution-valued arrival propagation.

#include <cmath>

#include <gtest/gtest.h>

#include "ssta/timing_graph.h"
#include "stats/normal.h"
#include "stats/special_functions.h"

namespace lvf2::ssta {
namespace {

stats::GridPdf normal_grid(double mu, double sigma) {
  const stats::Normal n(mu, sigma);
  return stats::GridPdf::from_function([n](double x) { return n.pdf(x); },
                                       mu - 9.0 * sigma, mu + 9.0 * sigma,
                                       1024);
}

EdgeDelay dist_edge(double mu, double sigma) {
  EdgeDelay d;
  d.distribution = normal_grid(mu, sigma);
  return d;
}

EdgeDelay const_edge(double c) {
  EdgeDelay d;
  d.constant_ns = c;
  return d;
}

TEST(TimingGraph, TopologicalOrderRespectsEdges) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  g.add_edge(a, b, const_edge(1.0));
  g.add_edge(b, c, const_edge(1.0));
  g.add_edge(a, c, const_edge(1.0));
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[2], c);
}

TEST(TimingGraph, CycleDetected) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, const_edge(1.0));
  g.add_edge(b, a, const_edge(1.0));
  EXPECT_THROW(g.topological_order(), std::runtime_error);
  EXPECT_THROW(g.compute_arrivals(), std::runtime_error);
}

TEST(TimingGraph, BadNodeIdThrows) {
  TimingGraph g;
  const auto a = g.add_node("a");
  EXPECT_THROW(g.add_edge(a, 99, const_edge(1.0)), std::out_of_range);
}

TEST(TimingGraph, ChainArrivalIsConvolution) {
  TimingGraph g;
  const auto in = g.add_node("in");
  const auto mid = g.add_node("mid");
  const auto out = g.add_node("out");
  g.add_edge(in, mid, dist_edge(0.1, 0.01));
  g.add_edge(mid, out, dist_edge(0.2, 0.02));
  const auto arrivals = g.compute_arrivals();
  ASSERT_TRUE(arrivals[out].distribution.has_value());
  EXPECT_NEAR(arrivals[out].distribution->mean(), 0.3, 1e-4);
  EXPECT_NEAR(arrivals[out].distribution->stddev(),
              std::sqrt(0.01 * 0.01 + 0.02 * 0.02), 1e-4);
  // Source arrival is zero.
  EXPECT_FALSE(arrivals[in].distribution.has_value());
  EXPECT_DOUBLE_EQ(arrivals[in].constant_ns, 0.0);
}

TEST(TimingGraph, MergeTakesStatisticalMax) {
  TimingGraph g;
  const auto s1 = g.add_node("s1");
  const auto s2 = g.add_node("s2");
  const auto join = g.add_node("join");
  g.add_edge(s1, join, dist_edge(0.1, 0.01));
  g.add_edge(s2, join, dist_edge(0.1, 0.01));
  const auto arrivals = g.compute_arrivals();
  ASSERT_TRUE(arrivals[join].distribution.has_value());
  // max of two iid normals: mean mu + sigma/sqrt(pi).
  EXPECT_NEAR(arrivals[join].distribution->mean(),
              0.1 + 0.01 / std::sqrt(stats::kPi), 5e-4);
}

TEST(TimingGraph, ConstantEdgesAccumulate) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  g.add_edge(a, b, const_edge(0.5));
  g.add_edge(b, c, const_edge(0.25));
  const auto arrivals = g.compute_arrivals();
  EXPECT_FALSE(arrivals[c].distribution.has_value());
  EXPECT_DOUBLE_EQ(arrivals[c].constant_ns, 0.75);
}

TEST(TimingGraph, MixedConstantAndDistribution) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  g.add_edge(a, b, dist_edge(0.2, 0.01));
  // A second pure-constant path that always loses the max.
  const auto c = g.add_node("c");
  g.add_edge(c, b, const_edge(0.05));
  const auto arrivals = g.compute_arrivals();
  ASSERT_TRUE(arrivals[b].distribution.has_value());
  EXPECT_NEAR(arrivals[b].distribution->mean(), 0.2, 2e-3);
}

TEST(TimingGraph, ConstantDominatesLowDistribution) {
  TimingGraph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto j = g.add_node("j");
  g.add_edge(a, j, dist_edge(0.1, 0.005));
  g.add_edge(b, j, const_edge(0.5));
  const auto arrivals = g.compute_arrivals();
  ASSERT_TRUE(arrivals[j].distribution.has_value());
  // The constant 0.5 truncates everything: arrival is ~0.5.
  EXPECT_NEAR(arrivals[j].distribution->quantile(0.5), 0.5, 5e-3);
}

TEST(TimingGraph, DiamondReconvergence) {
  TimingGraph g;
  const auto in = g.add_node("in");
  const auto u = g.add_node("u");
  const auto v = g.add_node("v");
  const auto out = g.add_node("out");
  g.add_edge(in, u, dist_edge(0.1, 0.01));
  g.add_edge(in, v, dist_edge(0.12, 0.01));
  g.add_edge(u, out, dist_edge(0.1, 0.01));
  g.add_edge(v, out, dist_edge(0.08, 0.01));
  const auto arrivals = g.compute_arrivals();
  ASSERT_TRUE(arrivals[out].distribution.has_value());
  const double mean = arrivals[out].distribution->mean();
  // Both paths sum to ~0.20; the max of two ~N(0.2, 0.014) is a bit
  // above 0.20.
  EXPECT_GT(mean, 0.20);
  EXPECT_LT(mean, 0.22);
}

}  // namespace
}  // namespace lvf2::ssta
