// Tests of the skew-normal distribution — the statistical core of
// LVF: density normalization, CDF via Owen's T, the moment bijection
// g (paper Eq. 2), sampling, and the weighted MLE used by the LVF^2
// M-step.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/skew_normal.h"
#include "stats/special_functions.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

double integrate_pdf(const SkewNormal& sn, double lo, double hi, int n) {
  const double step = (hi - lo) / n;
  double sum = 0.5 * (sn.pdf(lo) + sn.pdf(hi));
  for (int i = 1; i < n; ++i) sum += sn.pdf(lo + step * i);
  return sum * step;
}

class SkewNormalAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(SkewNormalAlphaSweep, PdfIntegratesToOne) {
  const SkewNormal sn(0.0, 1.0, GetParam());
  EXPECT_NEAR(integrate_pdf(sn, -12.0, 12.0, 20000), 1.0, 1e-10);
}

TEST_P(SkewNormalAlphaSweep, CdfMatchesNumericIntegral) {
  const SkewNormal sn(0.0, 1.0, GetParam());
  for (double x : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    // Tolerance is set by the trapezoid reference integral, whose
    // error grows with |alpha| (sharper density curvature).
    EXPECT_NEAR(sn.cdf(x), integrate_pdf(sn, -12.0, x, 20000), 5e-7)
        << "alpha=" << GetParam() << " x=" << x;
  }
}

TEST_P(SkewNormalAlphaSweep, AnalyticMomentsMatchQuadrature) {
  const SkewNormal sn(0.3, 1.7, GetParam());
  const int n = 40000;
  const double lo = sn.mean() - 14.0 * sn.omega();
  const double hi = sn.mean() + 14.0 * sn.omega();
  const double step = (hi - lo) / n;
  double m1 = 0.0, m2 = 0.0, m3 = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double x = lo + step * i;
    const double w = (i == 0 || i == n) ? 0.5 : 1.0;
    m1 += w * x * sn.pdf(x);
  }
  m1 *= step;
  for (int i = 0; i <= n; ++i) {
    const double x = lo + step * i;
    const double w = (i == 0 || i == n) ? 0.5 : 1.0;
    const double d = x - m1;
    m2 += w * d * d * sn.pdf(x);
    m3 += w * d * d * d * sn.pdf(x);
  }
  m2 *= step;
  m3 *= step;
  EXPECT_NEAR(sn.mean(), m1, 1e-8);
  EXPECT_NEAR(sn.variance(), m2, 1e-8);
  EXPECT_NEAR(sn.skewness(), m3 / (m2 * std::sqrt(m2)), 1e-6);
}

TEST_P(SkewNormalAlphaSweep, QuantileInvertsCdf) {
  const SkewNormal sn(-1.0, 0.5, GetParam());
  for (double p : {0.001, 0.05, 0.5, 0.95, 0.999}) {
    EXPECT_NEAR(sn.cdf(sn.quantile(p)), p, 1e-9)
        << "alpha=" << GetParam() << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, SkewNormalAlphaSweep,
                         ::testing::Values(-8.0, -3.0, -1.0, -0.2, 0.0, 0.2,
                                           1.0, 3.0, 8.0));

TEST(SkewNormal, AlphaZeroIsNormal) {
  const SkewNormal sn(2.0, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(sn.mean(), 2.0);
  EXPECT_DOUBLE_EQ(sn.stddev(), 3.0);
  EXPECT_DOUBLE_EQ(sn.skewness(), 0.0);
  EXPECT_NEAR(sn.pdf(2.0), normal_pdf(0.0) / 3.0, 1e-15);
  EXPECT_NEAR(sn.cdf(2.0), 0.5, 1e-12);
}

class MomentBijection : public ::testing::TestWithParam<
                            std::tuple<double, double, double>> {};

TEST_P(MomentBijection, RoundTripsThroughDirectParameters) {
  const auto [mean, sd, skew] = GetParam();
  const SkewNormal sn = SkewNormal::from_moments(mean, sd, skew);
  const SnMoments back = sn.to_moments();
  EXPECT_NEAR(back.mean, mean, 1e-9 * std::max(1.0, std::fabs(mean)));
  EXPECT_NEAR(back.stddev, sd, 1e-9 * sd);
  EXPECT_NEAR(back.skewness, skew, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    MomentGrid, MomentBijection,
    ::testing::Combine(::testing::Values(-5.0, 0.0, 0.13, 100.0),
                       ::testing::Values(0.01, 1.0, 12.0),
                       ::testing::Values(-0.9, -0.4, 0.0, 0.4, 0.9)));

TEST(SkewNormal, SkewnessClampedAtFeasibleBound) {
  const double max_skew = skew_normal_max_skewness();
  EXPECT_GT(max_skew, 0.99);
  EXPECT_LT(max_skew, 1.0);
  const SkewNormal sn = SkewNormal::from_moments(0.0, 1.0, 5.0);
  EXPECT_LE(sn.skewness(), max_skew);
  EXPECT_GT(sn.skewness(), 0.9);
  const SkewNormal sn_neg = SkewNormal::from_moments(0.0, 1.0, -5.0);
  EXPECT_LT(sn_neg.skewness(), -0.9);
}

TEST(SkewNormal, RejectsInvalidParameters) {
  EXPECT_THROW(SkewNormal(0.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(SkewNormal(0.0, -2.0, 1.0), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(SkewNormal::from_moments(nan, 1.0, 0.0),
               std::invalid_argument);
}

TEST(SkewNormal, DegenerateSpreadDegradesToPointMass) {
  // stddev <= 0 (a near-constant sample set on the EM fallback path)
  // must not throw: it degrades to a point mass at the mean.
  for (double bad_sd : {0.0, -1.0, std::numeric_limits<double>::quiet_NaN()}) {
    const SkewNormal sn = SkewNormal::from_moments(5.0, bad_sd, 0.3);
    EXPECT_NEAR(sn.mean(), 5.0, 1e-6);
    EXPECT_GT(sn.stddev(), 0.0);
    EXPECT_LT(sn.stddev(), 1e-7);
    EXPECT_NEAR(sn.cdf(5.0 + 1e-6), 1.0, 1e-9);
    EXPECT_NEAR(sn.cdf(5.0 - 1e-6), 0.0, 1e-9);
  }
  // Non-finite skewness reads as symmetric rather than throwing.
  const SkewNormal sn = SkewNormal::from_moments(
      1.0, 0.5, std::numeric_limits<double>::infinity());
  EXPECT_NEAR(sn.stddev(), 0.5, 1e-12);
}

TEST(SkewNormal, SamplingMatchesAnalyticMoments) {
  const SkewNormal sn = SkewNormal::from_moments(3.0, 0.8, 0.6);
  Rng rng(test::test_seed(9));
  std::vector<double> xs(200000);
  for (auto& x : xs) x = sn.sample(rng);
  const Moments m = compute_moments(xs);
  EXPECT_NEAR(m.mean, 3.0, 0.01);
  EXPECT_NEAR(m.stddev, 0.8, 0.01);
  EXPECT_NEAR(m.skewness, 0.6, 0.03);
}

TEST(SkewNormal, KurtosisAboveNormalForSkewed) {
  EXPECT_NEAR(SkewNormal(0.0, 1.0, 0.0).kurtosis(), 3.0, 1e-12);
  EXPECT_GT(SkewNormal(0.0, 1.0, 4.0).kurtosis(), 3.0);
}

TEST(SkewNormal, LogPdfConsistentDeepIntoTail) {
  const SkewNormal sn(0.0, 1.0, 3.0);
  for (double x : {-1.0, 0.0, 2.0}) {
    EXPECT_NEAR(sn.log_pdf(x), std::log(sn.pdf(x)), 1e-10);
  }
  // Left tail of a right-skewed SN underflows pdf; log_pdf must stay
  // finite and decreasing.
  EXPECT_TRUE(std::isfinite(sn.log_pdf(-20.0)));
  EXPECT_LT(sn.log_pdf(-25.0), sn.log_pdf(-20.0));
}

TEST(SkewNormal, FitMomentsRecoversDistribution) {
  const SkewNormal truth = SkewNormal::from_moments(1.0, 0.2, -0.5);
  Rng rng(test::test_seed(11));
  std::vector<double> xs(100000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto fitted = SkewNormal::fit_moments(xs);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_NEAR(fitted->mean(), 1.0, 0.01);
  EXPECT_NEAR(fitted->stddev(), 0.2, 0.005);
  EXPECT_NEAR(fitted->skewness(), -0.5, 0.05);
}

TEST(SkewNormal, FitMomentsDegenerateReturnsNull) {
  EXPECT_FALSE(SkewNormal::fit_moments({}).has_value());
  const std::vector<double> constant(10, 1.0);
  EXPECT_FALSE(SkewNormal::fit_moments(constant).has_value());
}

TEST(SkewNormal, WeightedMleImprovesOnMoments) {
  const SkewNormal truth(0.0, 1.0, 5.0);
  Rng rng(test::test_seed(13));
  std::vector<double> xs(20000), ws(20000, 1.0);
  for (auto& x : xs) x = truth.sample(rng);
  const auto mle = SkewNormal::fit_weighted_mle(xs, ws, nullptr, 2000);
  ASSERT_TRUE(mle.has_value());
  // MLE should land close to the true direct parameters even though
  // the skewness is near the moment-method clamp.
  EXPECT_NEAR(mle->xi(), 0.0, 0.05);
  EXPECT_NEAR(mle->omega(), 1.0, 0.05);
  EXPECT_GT(mle->alpha(), 2.5);
}

TEST(SkewNormal, WeightedMleRespectsWeights) {
  // Zero-weighting the right blob must fit only the left one.
  Rng rng(test::test_seed(17));
  std::vector<double> xs, ws;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.normal(0.0, 1.0));
    ws.push_back(1.0);
  }
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.normal(50.0, 1.0));
    ws.push_back(0.0);
  }
  const auto fit = SkewNormal::fit_weighted_mle(xs, ws, nullptr, 1000);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->mean(), 0.0, 0.1);
  EXPECT_NEAR(fit->stddev(), 1.0, 0.1);
}

TEST(SkewNormal, DeltaBetweenMinusOneAndOne) {
  EXPECT_NEAR(SkewNormal(0.0, 1.0, 1e9).delta(), 1.0, 1e-9);
  EXPECT_NEAR(SkewNormal(0.0, 1.0, -1e9).delta(), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(SkewNormal(0.0, 1.0, 0.0).delta(), 0.0);
}

}  // namespace
}  // namespace lvf2::stats
