// Property-based invariants of the statistical core, complementing
// the example-based tests: distribution-function laws (CDF
// monotonicity, quantile/CDF round trips), the paper's Eq. 10
// backward-compatibility collapse checked bitwise, the moment
// bijection round trip, an EM seed sweep with an allowed-failure
// budget (recorded under qor.em_seed_sweep.* histograms), and a
// fuzz-lite pass over the JSON codec the result cache and manifests
// depend on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/lvf2_model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tdigest.h"
#include "stats/rng.h"
#include "stats/skew_normal.h"
#include "yield/importance.h"

#include "test_util.h"

namespace lvf2 {
namespace {

// A deterministic family of mixtures spanning the parameter space:
// both pure-LVF and strongly bimodal, with skewness of both signs.
core::Lvf2Model seeded_mixture(std::uint64_t seed) {
  stats::Rng rng(seed);
  const double lambda = rng.uniform();
  const stats::SkewNormal first = stats::SkewNormal::from_moments(
      rng.uniform(-2.0, 2.0), rng.uniform(0.2, 2.0), rng.uniform(-0.9, 0.9));
  const stats::SkewNormal second = stats::SkewNormal::from_moments(
      rng.uniform(-2.0, 6.0), rng.uniform(0.2, 2.0), rng.uniform(-0.9, 0.9));
  return core::Lvf2Model(lambda, first, second);
}

TEST(Properties, MixtureCdfIsMonotoneAndBounded) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const core::Lvf2Model model = seeded_mixture(seed);
    const double lo = model.mean() - 8.0 * model.stddev();
    const double hi = model.mean() + 8.0 * model.stddev();
    double prev = -1.0;
    for (int i = 0; i <= 400; ++i) {
      const double x = lo + (hi - lo) * i / 400.0;
      const double c = model.cdf(x);
      EXPECT_GE(c, 0.0) << "seed " << seed << " x " << x;
      EXPECT_LE(c, 1.0) << "seed " << seed << " x " << x;
      EXPECT_GE(c, prev - 1e-12) << "seed " << seed << " x " << x;
      EXPECT_GE(model.pdf(x), 0.0) << "seed " << seed << " x " << x;
      prev = c;
    }
    EXPECT_LT(model.cdf(lo), 1e-6) << "seed " << seed;
    EXPECT_GT(model.cdf(hi), 1.0 - 1e-6) << "seed " << seed;
  }
}

TEST(Properties, QuantileCdfRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const core::Lvf2Model model = seeded_mixture(seed);
    double prev_x = -std::numeric_limits<double>::infinity();
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
      const double x = model.quantile(p);
      EXPECT_TRUE(std::isfinite(x)) << "seed " << seed << " p " << p;
      // quantile is nondecreasing in p...
      EXPECT_GE(x, prev_x) << "seed " << seed << " p " << p;
      prev_x = x;
      // ...and a right inverse of the CDF.
      EXPECT_NEAR(model.cdf(x), p, 1e-9)
          << "seed " << seed << " p " << p;
    }
    EXPECT_EQ(model.quantile(0.0), -std::numeric_limits<double>::infinity());
    EXPECT_EQ(model.quantile(1.0), std::numeric_limits<double>::infinity());
  }
}

// Paper Eq. 10: lambda = 0 collapses LVF^2 to the plain-LVF
// skew-normal — not approximately, bitwise. This is what lets one
// library serve LVF and LVF^2 consumers at once.
TEST(Properties, LambdaZeroCollapsesToLvfBitwise) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    stats::Rng rng(seed * 0x9e37);
    const stats::SkewNormal lvf = stats::SkewNormal::from_moments(
        rng.uniform(0.5, 3.0), rng.uniform(0.05, 0.5),
        rng.uniform(-0.9, 0.9));
    const core::Lvf2Model model = core::Lvf2Model::from_lvf(lvf);
    EXPECT_TRUE(model.is_pure_lvf());
    EXPECT_EQ(model.lambda(), 0.0);
    EXPECT_EQ(model.mean(), lvf.mean());
    EXPECT_EQ(model.stddev(), lvf.stddev());
    const double lo = lvf.mean() - 6.0 * lvf.stddev();
    const double hi = lvf.mean() + 6.0 * lvf.stddev();
    for (int i = 0; i <= 200; ++i) {
      const double x = lo + (hi - lo) * i / 200.0;
      EXPECT_EQ(model.pdf(x), lvf.pdf(x)) << "seed " << seed << " x " << x;
      EXPECT_EQ(model.cdf(x), lvf.cdf(x)) << "seed " << seed << " x " << x;
    }
  }
}

// The moment bijection g (Eq. 2) round-trips: from_moments followed
// by to_moments recovers the requested triple everywhere inside the
// attainable skewness interval.
TEST(Properties, MomentBijectionRoundTrip) {
  for (double mean : {-3.0, 0.0, 0.7, 42.0}) {
    for (double stddev : {0.01, 0.5, 1.0, 10.0}) {
      for (double skewness : {-0.95, -0.5, 0.0, 0.3, 0.95}) {
        const stats::SkewNormal sn =
            stats::SkewNormal::from_moments(mean, stddev, skewness);
        const stats::SnMoments back = sn.to_moments();
        const std::string label =
            "(" + std::to_string(mean) + ", " + std::to_string(stddev) +
            ", " + std::to_string(skewness) + ")";
        EXPECT_NEAR(back.mean, mean, 1e-9 * std::max(1.0, std::abs(mean)))
            << label;
        EXPECT_NEAR(back.stddev, stddev, 1e-9 * stddev) << label;
        EXPECT_NEAR(back.skewness, skewness, 1e-6) << label;
      }
    }
  }
}

// EM seed sweep: the fit must recover a known bimodal mixture from
// finite samples across 32 RNG seeds, with a small allowed-failure
// budget (EM on 4000 samples is not guaranteed to land every time,
// but a wide failure rate is a regression). Error magnitudes land in
// qor.em_seed_sweep.* histograms so a metrics dump shows the spread.
TEST(Properties, EmSeedSweepRecoversMixtureWithinBudget) {
  const core::Lvf2Model truth(
      0.35, stats::SkewNormal::from_moments(10.0, 1.0, 0.3),
      stats::SkewNormal::from_moments(14.0, 1.5, -0.2));
  constexpr std::size_t kSeeds = 32;
  constexpr std::size_t kSamples = 4000;
  constexpr std::size_t kAllowedFailures = 5;

  obs::Histogram& mean_err = obs::histogram(
      "qor.em_seed_sweep.mean_abs_err", {0.01, 0.02, 0.05, 0.1, 0.2, 0.5});
  obs::Histogram& stddev_err = obs::histogram(
      "qor.em_seed_sweep.stddev_abs_err", {0.01, 0.02, 0.05, 0.1, 0.2, 0.5});
  const std::uint64_t observed_before = mean_err.count();

  std::size_t failures = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    stats::Rng rng(seed);
    std::vector<double> samples(kSamples);
    for (double& s : samples) s = truth.sample(rng);

    core::FitOptions options;
    options.seed = seed;
    core::EmReport report;
    const auto fit = core::Lvf2Model::fit(samples, options, &report);
    ASSERT_TRUE(fit.has_value()) << "seed " << seed;

    const double dm = std::abs(fit->mean() - truth.mean());
    const double ds = std::abs(fit->stddev() - truth.stddev());
    mean_err.observe(dm);
    stddev_err.observe(ds);
    // Sample-mean noise at n=4000 is ~0.04; 0.15/0.2 leaves EM room
    // without letting a broken fit pass.
    const bool ok = dm < 0.15 && ds < 0.2 &&
                    std::abs(fit->quantile(0.99) - truth.quantile(0.99)) <
                        0.6;
    if (!ok) ++failures;
  }
  EXPECT_EQ(mean_err.count(), observed_before + kSeeds);
  EXPECT_LE(failures, kAllowedFailures)
      << failures << "/" << kSeeds << " seeds missed the tolerance band";
}

// Bitwise double round trip through the 17-digit writer and strtod —
// the property the result cache's byte-identical replays rest on.
TEST(Properties, JsonPrecision17RoundTripsDoublesBitwise) {
  stats::Rng rng(test::test_seed(0xCAFE17));
  obs::JsonValue doc;
  doc.type = obs::JsonValue::Type::kObject;
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    double v = 0.0;
    switch (i % 4) {
      case 0: v = rng.normal(0.0, 1e-3); break;       // ns-scale values
      case 1: v = rng.normal(0.0, 1.0); break;
      case 2: v = rng.uniform(-1e12, 1e12); break;
      default: v = rng.uniform(0.0, 1.0) * 1e-15; break;  // subunity tails
    }
    values.push_back(v);
    obs::JsonValue num;
    num.type = obs::JsonValue::Type::kNumber;
    num.number = v;
    doc.object.emplace_back("v" + std::to_string(i), num);
  }
  const std::string text = obs::json_write(doc, obs::JsonWriteOptions{17});
  const auto back = obs::json_parse(text);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->object.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(back->object[i].second.number, values[i]) << "index " << i;
  }
  // Idempotence: a second write of the parsed document is identical.
  EXPECT_EQ(obs::json_write(*back, obs::JsonWriteOptions{17}), text);
}

// Fuzz-lite over the JSON codec (mirrors the Liberty lenient-parser
// sweep): 500 seeded byte-level mutations of a manifest-like golden
// document. Every mutant either parses or is rejected with a
// diagnostic — never a crash — and everything that parses
// round-trips idempotently through write/parse/write.
TEST(Properties, JsonFuzzLiteNeverCrashesAndRoundTrips) {
  const std::string golden = R"json({
    "schema_version": 3,
    "tool": {"name": "lvf2", "run_id": "fuzz"},
    "config": {"samples": 8000, "lhs": true, "corner": "tt"},
    "arcs": [
      {"cell": "INV_X1", "arc": "A->Y(fall)", "load_idx": 0,
       "metrics": {"mean": 0.0123456789, "sigma": 1.5e-3, "lambda": 0.35}},
      {"cell": "NAND2_X1", "arc": "B->Y(rise)", "load_idx": 7,
       "metrics": {"mean": -0.5, "sigma": null, "tags": ["a", "b"]}}
    ],
    "notes": "quotes \" and \\ escapes é"
  })json";
  static constexpr char kInserts[] = {'{', '}', '[', ']', '"',
                                      ',', ':', '\\', 'e', '.'};
  stats::Rng rng(test::test_seed(0xF0221));
  int rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string text = golden;
    const std::uint64_t edits = 1 + rng.uniform_index(4);
    for (std::uint64_t e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_index(text.size()));
      switch (rng.uniform_index(3)) {
        case 0:  // overwrite with an arbitrary byte
          text[pos] = static_cast<char>(rng.uniform_index(256));
          break;
        case 1:  // delete a byte
          text.erase(pos, 1);
          break;
        default:  // insert structural punctuation
          text.insert(pos, 1,
                      kInserts[rng.uniform_index(sizeof(kInserts))]);
          break;
      }
    }
    std::string error;
    const auto doc = obs::json_parse(text, &error);  // must not crash
    if (!doc.has_value()) {
      EXPECT_FALSE(error.empty()) << "silent rejection at iteration " << iter;
      ++rejected;
      continue;
    }
    // Parse/serialize is a fixed point after one round.
    const std::string once = obs::json_write(*doc, obs::JsonWriteOptions{17});
    const auto again = obs::json_parse(once);
    ASSERT_TRUE(again.has_value()) << "iteration " << iter;
    EXPECT_EQ(obs::json_write(*again, obs::JsonWriteOptions{17}), once)
        << "iteration " << iter;
  }
  // The mutation schedule must actually exercise the error paths.
  EXPECT_GT(rejected, 100);
}

// --- t-digest (obs/tdigest.h): the serving layer's latency sketch. ---

// A reproducible latency-shaped stream: lognormal-ish body with a
// heavy right tail, the regime the digest exists to summarize.
std::vector<double> latency_stream(std::uint64_t seed, std::size_t n) {
  stats::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = std::exp(rng.uniform(-1.0, 2.5));
    if (rng.uniform() < 0.02) x *= rng.uniform(5.0, 50.0);  // tail spikes
    xs.push_back(x);
  }
  return xs;
}

double sorted_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

TEST(Properties, TDigestDeterministicSerialization) {
  // Same insertion sequence => byte-identical to_json_text(), the
  // contract the manifest golden-file diffs rely on.
  for (std::uint64_t seed : {7u, 21u, 1001u}) {
    const std::vector<double> xs = latency_stream(seed, 4000);
    obs::TDigest a(64.0);
    obs::TDigest b(64.0);
    for (const double x : xs) {
      a.add(x);
      b.add(x);
    }
    EXPECT_EQ(a.to_json_text(), b.to_json_text()) << "seed " << seed;
  }
}

TEST(Properties, TDigestQuantilesTrackSortedReference) {
  const std::vector<double> xs = latency_stream(0xD16E57, 10000);
  obs::TDigest digest(100.0);
  for (const double x : xs) digest.add(x);
  ASSERT_EQ(digest.count(), static_cast<double>(xs.size()));
  // Exact extremes.
  EXPECT_DOUBLE_EQ(digest.quantile(0.0),
                   *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(digest.quantile(1.0),
                   *std::max_element(xs.begin(), xs.end()));
  // Interior quantiles within a small fraction of the value range.
  const double range = digest.max() - digest.min();
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double want = sorted_quantile(xs, q);
    const double got = digest.quantile(q);
    EXPECT_NEAR(got, want, 0.02 * range) << "q=" << q;
  }
  // Quantile function is monotone in q.
  double prev = digest.quantile(0.0);
  for (int i = 1; i <= 100; ++i) {
    const double cur = digest.quantile(i / 100.0);
    EXPECT_GE(cur, prev - 1e-12) << "q=" << i / 100.0;
    prev = cur;
  }
}

TEST(Properties, TDigestMergeMatchesConcatenation) {
  // Merging shards approximates the digest of the concatenated
  // stream: counts/sums exact, quantiles within sketch accuracy —
  // regardless of association order.
  const std::vector<double> a = latency_stream(11, 3000);
  const std::vector<double> b = latency_stream(22, 5000);
  const std::vector<double> c = latency_stream(33, 2000);

  obs::TDigest da(64.0), db(64.0), dc(64.0), whole(64.0);
  std::vector<double> all;
  for (const double x : a) {
    da.add(x);
    all.push_back(x);
  }
  for (const double x : b) {
    db.add(x);
    all.push_back(x);
  }
  for (const double x : c) {
    dc.add(x);
    all.push_back(x);
  }
  for (const double x : all) whole.add(x);

  obs::TDigest left(64.0);  // (a+b)+c
  left.merge(da);
  left.merge(db);
  left.merge(dc);
  obs::TDigest right(64.0);  // a+(b+c)
  obs::TDigest bc(64.0);
  bc.merge(db);
  bc.merge(dc);
  right.merge(da);
  right.merge(bc);

  const double range = whole.max() - whole.min();
  for (obs::TDigest* merged : {&left, &right}) {
    EXPECT_DOUBLE_EQ(merged->count(), static_cast<double>(all.size()));
    EXPECT_NEAR(merged->sum(), whole.sum(), 1e-6 * std::fabs(whole.sum()));
    EXPECT_DOUBLE_EQ(merged->min(), whole.min());
    EXPECT_DOUBLE_EQ(merged->max(), whole.max());
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
      EXPECT_NEAR(merged->quantile(q), whole.quantile(q), 0.03 * range)
          << "q=" << q;
    }
  }
  // And the two association orders agree with each other.
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(left.quantile(q), right.quantile(q), 0.03 * range)
        << "q=" << q;
  }
}

TEST(Properties, TDigestJsonRoundTripIsLossless) {
  const std::vector<double> xs = latency_stream(0xABCDE, 2500);
  obs::TDigest digest(64.0);
  for (const double x : xs) digest.add(x);
  const std::string text = digest.to_json_text();
  const auto doc = obs::json_parse(text);
  ASSERT_TRUE(doc.has_value());
  const std::optional<obs::TDigest> back = obs::TDigest::from_json(*doc);
  ASSERT_TRUE(back.has_value());
  // 17-digit doubles make the round trip bit-exact: re-serializing
  // reproduces the original text, and every quantile agrees.
  EXPECT_EQ(back->to_json_text(), text);
  for (int i = 0; i <= 20; ++i) {
    const double q = i / 20.0;
    EXPECT_DOUBLE_EQ(back->quantile(q), digest.quantile(q)) << "q=" << q;
  }
  // A non-digest document is rejected, not misparsed.
  EXPECT_FALSE(
      obs::TDigest::from_json(*obs::json_parse(R"({"counters":{}})"))
          .has_value());
}


// --- Importance-sampling weight algebra (src/yield/) ---------------

TEST(Properties, AnalyzeWeightsEqualWeightsReduceToBinomial) {
  // All-equal log-weights: the self-normalized estimator must equal
  // the plain ratio and the delta-method SE must equal the binomial
  // sqrt(p(1-p)/n) exactly — the brute-force baseline shares this
  // code path.
  const std::size_t n = 400;
  std::vector<double> lw(n, 1.75);  // any shared constant
  std::vector<unsigned char> fail(n, 0);
  for (std::size_t i = 0; i < 37; ++i) fail[i * 10] = 1;
  const yield::WeightStats s = yield::analyze_weights(lw, fail);
  const double p = 37.0 / 400.0;
  EXPECT_DOUBLE_EQ(s.p_fail, p);
  EXPECT_DOUBLE_EQ(s.ess, 400.0);
  EXPECT_DOUBLE_EQ(s.max_weight_fraction, 1.0 / 400.0);
  EXPECT_NEAR(s.std_err, std::sqrt(p * (1.0 - p) / 400.0), 1e-15);
  EXPECT_NEAR(s.normalized_sum, 1.0, 1e-12);
}

TEST(Properties, AnalyzeWeightsInvariantUnderConstantLogOffset) {
  stats::Rng rng(test::test_seed(3104));
  std::vector<double> lw(256);
  std::vector<unsigned char> fail(256);
  for (std::size_t i = 0; i < lw.size(); ++i) {
    lw[i] = 2.0 * rng.normal();
    fail[i] = rng.uniform() < 0.3 ? 1 : 0;
  }
  const yield::WeightStats base = yield::analyze_weights(lw, fail);
  for (const double offset : {-700.0, -40.0, 3.0, 40.0, 700.0}) {
    std::vector<double> shifted = lw;
    for (double& v : shifted) v += offset;
    const yield::WeightStats s = yield::analyze_weights(shifted, fail);
    // Self-normalization cancels any constant log-weight offset —
    // including ones far past exp()'s overflow range, thanks to the
    // internal max-shift. The cancellation is exact in real
    // arithmetic; in floats (lw + offset) - (max + offset) can differ
    // from lw - max in the last bits, so compare relatively.
    EXPECT_NEAR(s.p_fail, base.p_fail, 1e-9 * std::abs(base.p_fail))
        << "offset=" << offset;
    EXPECT_NEAR(s.ess, base.ess, 1e-9 * base.ess) << "offset=" << offset;
    EXPECT_NEAR(s.std_err, base.std_err, 1e-9 * base.std_err)
        << "offset=" << offset;
  }
}

TEST(Properties, AnalyzeWeightsEssBounds) {
  stats::Rng rng(test::test_seed(88));
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform() * 300);
    std::vector<double> lw(n);
    std::vector<unsigned char> fail(n);
    for (std::size_t i = 0; i < n; ++i) {
      lw[i] = 5.0 * rng.normal();
      fail[i] = rng.uniform() < 0.5 ? 1 : 0;
    }
    const yield::WeightStats s = yield::analyze_weights(lw, fail);
    EXPECT_GT(s.ess, 0.0);
    EXPECT_LE(s.ess, static_cast<double>(n) * (1.0 + 1e-12));
    EXPECT_GT(s.max_weight_fraction, 0.0);
    EXPECT_LE(s.max_weight_fraction, 1.0);
    EXPECT_NEAR(s.normalized_sum, 1.0, 1e-9);
    EXPECT_GE(s.p_fail, 0.0);
    EXPECT_LE(s.p_fail, 1.0);
  }
}

}  // namespace
}  // namespace lvf2
