// Tests of descriptive statistics: moments, weighted moments,
// quantiles, empirical CDF and sample binning.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/rng.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

TEST(Moments, KnownSmallSample) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Moments m = compute_moments(xs);
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_NEAR(m.stddev, std::sqrt(1.25), 1e-15);
  EXPECT_NEAR(m.skewness, 0.0, 1e-12);
}

TEST(Moments, EmptyAndConstant) {
  EXPECT_EQ(compute_moments({}).count, 0u);
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  const Moments m = compute_moments(xs);
  EXPECT_DOUBLE_EQ(m.mean, 3.0);
  EXPECT_DOUBLE_EQ(m.stddev, 0.0);
  EXPECT_DOUBLE_EQ(m.skewness, 0.0);
  EXPECT_DOUBLE_EQ(m.kurtosis, 3.0);
}

TEST(Moments, SkewnessSignConvention) {
  // Right-tailed data has positive skewness.
  std::vector<double> xs;
  Rng rng(test::test_seed(1));
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(std::exp(rng.normal()));
  }
  EXPECT_GT(compute_moments(xs).skewness, 1.0);
}

TEST(WeightedMoments, MatchesReplication) {
  const std::vector<double> xs = {1.0, 5.0, 9.0};
  const std::vector<double> ws = {1.0, 3.0, 2.0};
  std::vector<double> expanded = {1.0, 5.0, 5.0, 5.0, 9.0, 9.0};
  const Moments mw = compute_weighted_moments(xs, ws);
  const Moments me = compute_moments(expanded);
  EXPECT_NEAR(mw.mean, me.mean, 1e-14);
  EXPECT_NEAR(mw.stddev, me.stddev, 1e-14);
  EXPECT_NEAR(mw.skewness, me.skewness, 1e-13);
  EXPECT_NEAR(mw.kurtosis, me.kurtosis, 1e-13);
}

TEST(WeightedMoments, DegenerateInputs) {
  EXPECT_EQ(compute_weighted_moments({}, {}).count, 0u);
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> bad = {1.0};
  EXPECT_EQ(compute_weighted_moments(xs, bad).count, 0u);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_EQ(compute_weighted_moments(xs, zeros).count, 0u);
}

TEST(Quantile, LinearInterpolationType7) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_NEAR(quantile(xs, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(EmpiricalCdf, StepFunctionSemantics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(xs);
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(100.0), 1.0);
  EXPECT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 4.0);
}

TEST(EmpiricalCdf, QuantileInvertsCdf) {
  Rng rng(test::test_seed(2));
  const std::vector<double> xs = rng.normal_vector(20000);
  const EmpiricalCdf cdf(xs);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double x = cdf.quantile(q);
    EXPECT_NEAR(cdf(x), q, 0.001) << q;
  }
}

TEST(BinSamples, CountsPreservedAndCentersAscending) {
  Rng rng(test::test_seed(3));
  const std::vector<double> xs = rng.normal_vector(10000);
  const BinnedSamples bins = bin_samples(xs, 64);
  double total = 0.0;
  for (double c : bins.counts) total += c;
  EXPECT_DOUBLE_EQ(total, 10000.0);
  EXPECT_DOUBLE_EQ(bins.total, 10000.0);
  for (std::size_t i = 1; i < bins.centers.size(); ++i) {
    EXPECT_GT(bins.centers[i], bins.centers[i - 1]);
  }
}

TEST(BinSamples, DensityIntegratesToOne) {
  Rng rng(test::test_seed(4));
  const std::vector<double> xs = rng.normal_vector(50000);
  const BinnedSamples bins = bin_samples(xs, 128);
  double integral = 0.0;
  for (std::size_t i = 0; i < bins.counts.size(); ++i) {
    integral += bins.density(i) * bins.bin_width;
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(BinSamples, ConstantDataSingleOccupiedBin) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const BinnedSamples bins = bin_samples(xs, 16);
  double total = 0.0;
  std::size_t occupied = 0;
  for (double c : bins.counts) {
    total += c;
    if (c > 0) ++occupied;
  }
  EXPECT_DOUBLE_EQ(total, 3.0);
  EXPECT_EQ(occupied, 1u);
}

TEST(BinSamples, PadWidensRange) {
  const std::vector<double> xs = {0.0, 1.0};
  const BinnedSamples padded = bin_samples(xs, 8, 0.25);
  EXPECT_LT(padded.centers.front(), 0.0 + padded.bin_width);
  EXPECT_GT(padded.centers.back(), 1.0 - padded.bin_width);
}

TEST(BinSamples, IgnoresNonFiniteSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs = {nan, 1.0, 2.0, inf, 3.0, -inf};
  const BinnedSamples bins = bin_samples(xs, 8);
  EXPECT_DOUBLE_EQ(bins.total, 3.0);
  // Range is set by the finite samples only.
  EXPECT_GT(bins.centers.front(), 0.5);
  EXPECT_LT(bins.centers.back(), 3.5);
  // All-non-finite input yields an empty (not poisoned) histogram.
  const std::vector<double> poisoned = {nan, inf, -inf};
  EXPECT_TRUE(bin_samples(poisoned, 8).centers.empty());
}

TEST(TryQuantile, StatusOnDegenerateInput) {
  const auto empty = try_quantile({}, 0.5);
  EXPECT_FALSE(empty.is_ok());
  EXPECT_EQ(empty.status().code(), core::StatusCode::kDegenerateData);

  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const auto bad_q =
      try_quantile(xs, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(bad_q.is_ok());
  EXPECT_EQ(bad_q.status().code(), core::StatusCode::kInvalidArgument);

  // A single sample is well-defined: every quantile is that sample.
  const std::vector<double> one = {7.0};
  const auto single = try_quantile(one, 0.99);
  ASSERT_TRUE(single.is_ok());
  EXPECT_DOUBLE_EQ(single.value(), 7.0);

  const auto median = try_quantile(xs, 0.5);
  ASSERT_TRUE(median.is_ok());
  EXPECT_DOUBLE_EQ(median.value(), quantile(xs, 0.5));
}

}  // namespace
}  // namespace lvf2::stats
