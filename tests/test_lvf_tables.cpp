// Tests of the LVF / LVF^2 Liberty table layer: writing a
// characterized library, reading it back, the Section 3.3 defaulting
// rules and end-to-end backward compatibility (Eq. 10).

#include <cmath>

#include <gtest/gtest.h>

#include "cells/characterize.h"
#include "liberty/lvf_tables.h"
#include "liberty/parser.h"
#include "liberty/writer.h"

namespace lvf2::liberty {
namespace {

cells::LibraryCharacterization small_characterization() {
  cells::LibraryOptions lib_options;
  lib_options.drives = {1.0};
  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::reduced(4);  // 2x2
  options.mc_samples = 3000;
  const cells::Characterizer ch(spice::ProcessCorner{}, options);
  const cells::Cell inv = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  cells::LibraryCharacterization out;
  out.cells.push_back(ch.characterize_cell(inv));
  return out;
}

class LvfTablesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    characterization_ =
        new cells::LibraryCharacterization(small_characterization());
  }
  static void TearDownTestSuite() {
    delete characterization_;
    characterization_ = nullptr;
  }
  static const cells::LibraryCharacterization& characterization() {
    return *characterization_;
  }

 private:
  static cells::LibraryCharacterization* characterization_;
};

cells::LibraryCharacterization* LvfTablesTest::characterization_ = nullptr;

TEST_F(LvfTablesTest, BuildLibraryStructure) {
  const Group lib = build_library(characterization());
  EXPECT_EQ(lib.type, "library");
  EXPECT_NE(lib.find_child("lu_table_template"), nullptr);
  const Group* cell = lib.find_child("cell", "INV_X1");
  ASSERT_NE(cell, nullptr);
  const Group* pin = cell->find_child("pin", "Y");
  ASSERT_NE(pin, nullptr);
  const Group* timing = find_timing(*pin, "A");
  ASSERT_NE(timing, nullptr);
  // Both directions share the related-pin timing group.
  EXPECT_NE(timing->find_child("cell_rise"), nullptr);
  EXPECT_NE(timing->find_child("cell_fall"), nullptr);
  EXPECT_NE(timing->find_child("rise_transition"), nullptr);
  EXPECT_NE(timing->find_child("ocv_std_dev_cell_rise"), nullptr);
  EXPECT_NE(timing->find_child("ocv_weight2_cell_rise"), nullptr);
}

TEST_F(LvfTablesTest, RoundTripThroughTextPreservesParameters) {
  const Group lib = build_library(characterization());
  const Group reparsed = parse(write(lib));
  const Group* timing = find_timing(
      *reparsed.find_child("cell", "INV_X1")->find_child("pin", "Y"), "A");
  ASSERT_NE(timing, nullptr);
  const auto tables = extract_tables(*timing, "cell_rise");
  ASSERT_TRUE(tables.has_value());
  EXPECT_TRUE(tables->has_lvf2());

  // Find the characterized rise arc for ground truth.
  const cells::ArcCharacterization* rise_arc = nullptr;
  for (const auto& arc : characterization().cells[0].arcs) {
    if (arc.arc_label.find("(rise)") != std::string::npos) rise_arc = &arc;
  }
  ASSERT_NE(rise_arc, nullptr);
  for (std::size_t si = 0; si < 2; ++si) {
    for (std::size_t li = 0; li < 2; ++li) {
      const auto& truth = rise_arc->at(li, si);
      const core::Lvf2Parameters p = tables->parameters_at(si, li);
      EXPECT_NEAR(p.lambda, truth.lvf2_delay.lambda, 1e-6);
      EXPECT_NEAR(p.theta1.mean, truth.lvf2_delay.theta1.mean,
                  1e-6 * std::fabs(truth.lvf2_delay.theta1.mean) + 1e-9);
      EXPECT_NEAR(p.theta1.stddev, truth.lvf2_delay.theta1.stddev,
                  1e-5 * truth.lvf2_delay.theta1.stddev);
      const stats::SnMoments lvf = tables->lvf_moments_at(si, li);
      EXPECT_NEAR(lvf.mean, truth.lvf_delay.mean,
                  1e-6 * std::fabs(truth.lvf_delay.mean) + 1e-9);
      EXPECT_NEAR(lvf.skewness, truth.lvf_delay.skewness, 1e-4);
    }
  }
}

TEST_F(LvfTablesTest, LvfOnlyLibraryReadsAsLambdaZero) {
  WriteOptions options;
  options.include_lvf2 = false;
  const Group lib = build_library(characterization(), options);
  const Group reparsed = parse(write(lib));
  const Group* timing = find_timing(
      *reparsed.find_child("cell", "INV_X1")->find_child("pin", "Y"), "A");
  const auto tables = extract_tables(*timing, "cell_fall");
  ASSERT_TRUE(tables.has_value());
  EXPECT_FALSE(tables->has_lvf2());
  // Backward compatibility (Eq. 10): the LVF^2 reader sees the LVF
  // skew-normal as component 1 with lambda = 0.
  const core::Lvf2Model model = tables->model_at(1, 1);
  EXPECT_TRUE(model.is_pure_lvf());
  const stats::SnMoments lvf = tables->lvf_moments_at(1, 1);
  EXPECT_NEAR(model.mean(), lvf.mean, 1e-9);
  EXPECT_NEAR(model.stddev(), lvf.stddev, 1e-9);
  const stats::SkewNormal direct = stats::SkewNormal::from_moments(lvf);
  for (double q : {0.1, 0.5, 0.9}) {
    const double x = direct.quantile(q);
    EXPECT_NEAR(model.cdf(x), direct.cdf(x), 1e-12);
  }
}

TEST_F(LvfTablesTest, MixedLibrarySupportsBothSimultaneously) {
  // A library carrying both LVF and LVF^2 attributes serves both
  // consumers without conflict.
  const Group lib = build_library(characterization());
  const Group reparsed = parse(write(lib));
  const Group* timing = find_timing(
      *reparsed.find_child("cell", "INV_X1")->find_child("pin", "Y"), "A");
  const auto tables = extract_tables(*timing, "cell_rise");
  ASSERT_TRUE(tables.has_value());
  // LVF consumer reads the classic triple.
  const stats::SnMoments lvf = tables->lvf_moments_at(0, 0);
  EXPECT_GT(lvf.stddev, 0.0);
  // LVF^2 consumer reads the mixture.
  const core::Lvf2Parameters p = tables->parameters_at(0, 0);
  EXPECT_GE(p.lambda, 0.0);
  EXPECT_LE(p.lambda, 1.0);
}

TEST_F(LvfTablesTest, ExtractMissingBaseReturnsNullopt) {
  const Group lib = build_library(characterization());
  const Group* timing = find_timing(
      *lib.find_child("cell", "INV_X1")->find_child("pin", "Y"), "A");
  EXPECT_FALSE(extract_tables(*timing, "cell_sideways").has_value());
}

TEST(TimingTable, BilinearLookup) {
  TimingTable t;
  t.index_1 = {0.0, 1.0};
  t.index_2 = {0.0, 2.0};
  t.values = {{0.0, 2.0}, {10.0, 12.0}};
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 2.0), 12.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.5, 1.0), 6.0);
  // Clamped outside the grid.
  EXPECT_DOUBLE_EQ(t.lookup(-1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(5.0, 5.0), 12.0);
}

TEST(TimingTable, EmptyLookupIsNan) {
  const TimingTable t;
  EXPECT_TRUE(std::isnan(t.lookup(0.5, 0.5)));
}

}  // namespace
}  // namespace lvf2::liberty
