// Tests of the evaluation metrics: Eq. 1 bin probabilities, binning
// error, 3-sigma yield, CDF RMSE / KS distance and the Eq. 12 error
// reduction, plus the evaluate_models aggregate.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/binning.h"
#include "core/lvf_model.h"
#include "core/metrics.h"
#include "core/yield.h"
#include "stats/normal.h"
#include "stats/rng.h"
#include "stats/special_functions.h"

#include "test_util.h"

namespace lvf2::core {
namespace {

TEST(Binning, SigmaBoundariesAreSevenAscending) {
  const std::vector<double> b = sigma_bin_boundaries(10.0, 2.0);
  ASSERT_EQ(b.size(), 7u);
  EXPECT_DOUBLE_EQ(b.front(), 4.0);
  EXPECT_DOUBLE_EQ(b[3], 10.0);
  EXPECT_DOUBLE_EQ(b.back(), 16.0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
}

TEST(Binning, ProbabilitiesSumToOneForAnyCdf) {
  const stats::Normal n(0.0, 1.0);
  const std::vector<double> boundaries = sigma_bin_boundaries(0.0, 1.0);
  const std::vector<double> bins =
      bin_probabilities([&n](double x) { return n.cdf(x); }, boundaries);
  ASSERT_EQ(bins.size(), 8u);
  double sum = 0.0;
  for (double p : bins) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Binning, Equation1SemanticsExactNormal) {
  // For a standard normal with mu +/- k sigma boundaries the bin
  // probabilities are the classic 68-95-99.7 slices.
  const stats::Normal n(0.0, 1.0);
  const std::vector<double> bins = bin_probabilities(
      [&n](double x) { return n.cdf(x); }, sigma_bin_boundaries(0.0, 1.0));
  EXPECT_NEAR(bins[0], stats::normal_cdf(-3.0), 1e-12);
  EXPECT_NEAR(bins[1], stats::normal_cdf(-2.0) - stats::normal_cdf(-3.0),
              1e-12);
  EXPECT_NEAR(bins[3], 0.5 - stats::normal_cdf(-1.0), 1e-12);
  EXPECT_NEAR(bins[4], bins[3], 1e-12);  // symmetry
  EXPECT_NEAR(bins[7], stats::normal_cdf(-3.0), 1e-12);
}

TEST(Binning, EmpiricalMatchesExactForLargeSamples) {
  stats::Rng rng(test::test_seed(1));
  const std::vector<double> xs = rng.normal_vector(200000);
  const stats::EmpiricalCdf golden(xs);
  const std::vector<double> boundaries = sigma_bin_boundaries(0.0, 1.0);
  const std::vector<double> emp = bin_probabilities(golden, boundaries);
  const stats::Normal n(0.0, 1.0);
  const std::vector<double> exact = bin_probabilities(
      [&n](double x) { return n.cdf(x); }, boundaries);
  for (std::size_t i = 0; i < emp.size(); ++i) {
    EXPECT_NEAR(emp[i], exact[i], 0.005) << i;
  }
}

TEST(Binning, ErrorIsMeanAbsoluteDifference) {
  const std::vector<double> a = {0.1, 0.2, 0.3, 0.4};
  const std::vector<double> b = {0.2, 0.2, 0.2, 0.4};
  EXPECT_NEAR(binning_error(a, b), (0.1 + 0.0 + 0.1 + 0.0) / 4.0, 1e-15);
  EXPECT_DOUBLE_EQ(binning_error(a, a), 0.0);
}

TEST(Binning, ErrorSizeMismatchThrows) {
  const std::vector<double> a = {0.5, 0.5};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(binning_error(a, b), std::invalid_argument);
}

TEST(Binning, PerfectModelHasNearZeroError) {
  stats::Rng rng(test::test_seed(2));
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal(0.1, 0.01);
  const stats::EmpiricalCdf golden(xs);
  const LvfModel model = *LvfModel::fit(xs);
  EXPECT_LT(binning_error(model, golden), 0.004);
}

TEST(ErrorReduction, Equation12) {
  EXPECT_DOUBLE_EQ(error_reduction(0.04, 0.01), 4.0);
  EXPECT_DOUBLE_EQ(error_reduction(0.04, 0.04), 1.0);
  EXPECT_DOUBLE_EQ(error_reduction(0.01, 0.04), 0.25);
  // Vanishing model error stays finite via the floor.
  EXPECT_TRUE(std::isfinite(error_reduction(0.04, 0.0)));
  EXPECT_GT(error_reduction(0.04, 0.0), 1e9);
}

TEST(Yield, ThreeSigmaOfNormalData) {
  stats::Rng rng(test::test_seed(3));
  const std::vector<double> xs = rng.normal_vector(200000);
  const stats::EmpiricalCdf golden(xs);
  EXPECT_NEAR(three_sigma_yield(golden), stats::normal_cdf(3.0), 0.002);
  const LvfModel model = *LvfModel::fit(xs);
  EXPECT_NEAR(three_sigma_yield(model, golden), stats::normal_cdf(3.0),
              0.002);
  EXPECT_LT(three_sigma_yield_error(model, golden), 0.002);
}

TEST(Yield, WindowYield) {
  const stats::Normal n(0.0, 1.0);
  const auto cdf = [&n](double x) { return n.cdf(x); };
  EXPECT_NEAR(window_yield(cdf, -1.0, 1.0), 0.6826894921370859, 1e-12);
  EXPECT_DOUBLE_EQ(window_yield(cdf, 2.0, 1.0), 0.0);  // inverted window
}

TEST(CdfRmse, ZeroForMatchingDistribution) {
  stats::Rng rng(test::test_seed(4));
  const std::vector<double> xs = rng.normal_vector(100000);
  const stats::EmpiricalCdf golden(xs);
  const stats::Normal n(0.0, 1.0);
  EXPECT_LT(cdf_rmse([&n](double x) { return n.cdf(x); }, golden), 0.005);
}

TEST(CdfRmse, LargeForShiftedDistribution) {
  stats::Rng rng(test::test_seed(5));
  const std::vector<double> xs = rng.normal_vector(50000);
  const stats::EmpiricalCdf golden(xs);
  const stats::Normal shifted(2.0, 1.0);
  EXPECT_GT(cdf_rmse([&shifted](double x) { return shifted.cdf(x); },
                     golden),
            0.3);
}

TEST(CdfRmse, ThrowsOnEmptyInput) {
  const stats::EmpiricalCdf empty;
  const auto cdf = [](double) { return 0.5; };
  EXPECT_THROW(cdf_rmse(cdf, empty), std::invalid_argument);
}

TEST(KsDistance, KnownShift) {
  stats::Rng rng(test::test_seed(6));
  const std::vector<double> xs = rng.normal_vector(50000);
  const stats::EmpiricalCdf golden(xs);
  const stats::Normal match(0.0, 1.0);
  const stats::Normal off(0.5, 1.0);
  EXPECT_LT(ks_distance([&match](double x) { return match.cdf(x); }, golden),
            0.01);
  // Exact KS distance between N(0,1) and N(0.5,1) is
  // 2 Phi(0.25) - 1 ~ 0.1974.
  EXPECT_NEAR(ks_distance([&off](double x) { return off.cdf(x); }, golden),
              0.1974, 0.01);
}

TEST(EvaluateModels, LvfBaselineHasUnitReduction) {
  stats::Rng rng(test::test_seed(7));
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    x = (rng.uniform() < 0.3) ? rng.normal(0.12, 0.008)
                              : rng.normal(0.10, 0.006);
  }
  const ModelEvaluation eval = evaluate_models(xs);
  ASSERT_EQ(eval.models.size(), 4u);
  const ModelErrorReduction& lvf = eval.reduction_of(ModelKind::kLvf);
  EXPECT_DOUBLE_EQ(lvf.binning, 1.0);
  EXPECT_DOUBLE_EQ(lvf.yield_3sigma, 1.0);
  EXPECT_DOUBLE_EQ(lvf.cdf_rmse, 1.0);
  EXPECT_NE(eval.model(ModelKind::kLvf2), nullptr);
  EXPECT_EQ(eval.model(ModelKind::kLvf2)->kind(), ModelKind::kLvf2);
}

TEST(EvaluateModels, Lvf2WinsOnBimodalData) {
  stats::Rng rng(test::test_seed(8));
  std::vector<double> xs(30000);
  for (auto& x : xs) {
    x = (rng.uniform() < 0.4) ? rng.normal(0.15, 0.01)
                              : rng.normal(0.10, 0.008);
  }
  const ModelEvaluation eval = evaluate_models(xs);
  const ModelErrorReduction& lvf2 = eval.reduction_of(ModelKind::kLvf2);
  EXPECT_GT(lvf2.binning, 2.0);
  EXPECT_GT(lvf2.cdf_rmse, 2.0);
  // Norm2 should also beat LVF on this purely Gaussian mixture.
  EXPECT_GT(eval.reduction_of(ModelKind::kNorm2).binning, 2.0);
}

}  // namespace
}  // namespace lvf2::core
