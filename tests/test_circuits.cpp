// Tests of the circuit substrates: Pi-model wires, netlist / timing
// graph conversion, the 16-bit carry adder and the H-tree builders.

#include <gtest/gtest.h>

#include "circuits/adder.h"
#include "circuits/htree.h"
#include "circuits/netlist.h"
#include "circuits/wire.h"
#include "ssta/path_analysis.h"

namespace lvf2::circuits {
namespace {

TEST(Wire, PiModelSplitsCapacitance) {
  const PiModel pi = PiModel::from_wire(0.4, 0.1);
  EXPECT_DOUBLE_EQ(pi.resistance_kohm, 0.4);
  EXPECT_DOUBLE_EQ(pi.c_near_pf, 0.05);
  EXPECT_DOUBLE_EQ(pi.c_far_pf, 0.05);
  EXPECT_DOUBLE_EQ(pi.total_cap_pf(), 0.1);
}

TEST(Wire, ElmoreDelay) {
  const PiModel pi = PiModel::from_wire(0.4, 0.1);
  EXPECT_DOUBLE_EQ(pi.elmore_delay_ns(0.02), 0.4 * (0.05 + 0.02));
  EXPECT_DOUBLE_EQ(pi.driver_load_pf(0.02), 0.1 + 0.02);
}

TEST(Adder, CriticalPathStructure) {
  const AdderOptions options;
  const ssta::TimingPath path =
      build_adder_critical_path(options, spice::ProcessCorner{});
  // driver + 16 FA stages (generate, 14 propagates, sum).
  EXPECT_EQ(path.depth(), 17u);
  EXPECT_EQ(path.stages.front().instance_name, "drv");
  EXPECT_EQ(path.stages.back().instance_name, "fa15");
  EXPECT_EQ(path.stages.back().arc().output_pin, "S");
  // Middle stages are carry propagates with alternating direction.
  for (std::size_t i = 2; i + 1 < path.depth(); ++i) {
    EXPECT_EQ(path.stages[i].arc().input_pin, "CI");
    EXPECT_EQ(path.stages[i].arc().output_pin, "CO");
    EXPECT_NE(path.stages[i].arc().rise_output,
              path.stages[i + 1].arc().rise_output);
  }
}

TEST(Adder, SlewsPropagatedToFixedPoint) {
  const ssta::TimingPath path =
      build_adder_critical_path({}, spice::ProcessCorner{});
  for (std::size_t i = 1; i < path.depth(); ++i) {
    const spice::StageTimes prev = spice::nominal_stage_times(
        path.stages[i - 1].arc().stage, path.stages[i - 1].condition,
        spice::ProcessCorner{});
    EXPECT_NEAR(path.stages[i].condition.slew_ns, prev.transition_ns,
                1e-12)
        << i;
  }
}

TEST(Adder, DepthAroundThirtyFo4) {
  const ssta::TimingPath path =
      build_adder_critical_path({}, spice::ProcessCorner{});
  const double fo4 = ssta::fo4_delay_ns(spice::ProcessCorner{});
  ASSERT_GT(fo4, 0.0);
  double total = 0.0;
  for (const ssta::PathStage& s : path.stages) {
    total += spice::nominal_stage_times(s.arc().stage, s.condition,
                                        spice::ProcessCorner{})
                 .delay_ns +
             s.wire_delay_ns;
  }
  const double depth_fo4 = total / fo4;
  // Paper: "critical path delay of 30-FO4".
  EXPECT_GT(depth_fo4, 15.0);
  EXPECT_LT(depth_fo4, 60.0);
}

TEST(Adder, RejectsTooFewBits) {
  AdderOptions options;
  options.bits = 1;
  EXPECT_THROW(build_adder_critical_path(options, spice::ProcessCorner{}),
               std::invalid_argument);
}

TEST(Adder, NetlistStructure) {
  const Netlist netlist = build_adder_netlist({});
  EXPECT_EQ(netlist.instances().size(), 16u);
  // Primary inputs: ci0 + 16 x (a, b).
  EXPECT_EQ(netlist.primary_inputs().size(), 33u);
  // Outputs: 16 sums + final carry.
  EXPECT_EQ(netlist.primary_outputs().size(), 17u);
  // Carry nets chain the FAs.
  const double ci_load = netlist.net_load_pf("ci8");
  EXPECT_GT(ci_load, 0.0);
}

TEST(Adder, NetlistToGraphPropagates) {
  const Netlist netlist = build_adder_netlist({});
  // Annotate every arc with its nominal delay as a constant.
  const auto annotator = [](const Instance& inst,
                            const cells::TimingArc& arc)
      -> std::optional<ssta::EdgeDelay> {
    if (!arc.rise_output) return std::nullopt;  // one direction only
    (void)inst;
    ssta::EdgeDelay d;
    d.constant_ns = spice::nominal_stage_times(
                        arc.stage, {0.05, 0.01}, spice::ProcessCorner{})
                        .delay_ns;
    return d;
  };
  const ssta::TimingGraph graph = netlist.to_timing_graph(annotator);
  EXPECT_GT(graph.edge_count(), 16u);
  const auto arrivals = graph.compute_arrivals();
  // The last carry net must accumulate all 16 FA carry delays.
  double max_const = 0.0;
  for (const auto& a : arrivals) {
    max_const = std::max(max_const, a.constant_ns);
  }
  EXPECT_GT(max_const, 0.05);
}

TEST(Htree, PathStructure) {
  const HtreeOptions options;
  const ssta::TimingPath path =
      build_htree_path(options, spice::ProcessCorner{});
  // 6 levels x 2 buffers.
  EXPECT_EQ(path.depth(), 12u);
  for (const ssta::PathStage& s : path.stages) {
    EXPECT_GT(s.wire_delay_ns, 0.0);
    EXPECT_GT(s.condition.load_pf, 0.0);
  }
  // Wires shrink with depth, so do loads (geometric scaling).
  EXPECT_GT(path.stages[0].wire_delay_ns,
            path.stages[10].wire_delay_ns);
}

TEST(Htree, DeepInFo4Terms) {
  const ssta::TimingPath path =
      build_htree_path({}, spice::ProcessCorner{});
  const double fo4 = ssta::fo4_delay_ns(spice::ProcessCorner{});
  double total = 0.0;
  for (const ssta::PathStage& s : path.stages) {
    total += spice::nominal_stage_times(s.arc().stage, s.condition,
                                        spice::ProcessCorner{})
                 .delay_ns +
             s.wire_delay_ns;
  }
  const double depth_fo4 = total / fo4;
  // Paper: "6-stage H-tree with a delay of 95-FO4".
  EXPECT_GT(depth_fo4, 40.0);
  EXPECT_LT(depth_fo4, 200.0);
}

TEST(Htree, AlternatingBufferDirections) {
  const ssta::TimingPath path =
      build_htree_path({}, spice::ProcessCorner{});
  for (std::size_t i = 1; i < path.depth(); ++i) {
    EXPECT_NE(path.stages[i].arc().rise_output,
              path.stages[i - 1].arc().rise_output);
  }
}

TEST(Netlist, NetEnumerationAndLoads) {
  Netlist netlist;
  netlist.add_primary_input("in");
  Instance inv;
  inv.name = "u1";
  inv.cell = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  inv.input_nets["A"] = "in";
  inv.output_nets["Y"] = "out";
  netlist.add_instance(inv);
  Instance inv2 = inv;
  inv2.name = "u2";
  inv2.input_nets["A"] = "out";
  inv2.output_nets["Y"] = "out2";
  netlist.add_instance(inv2);
  netlist.add_primary_output("out2");

  const auto nets = netlist.nets();
  EXPECT_EQ(nets.size(), 3u);
  EXPECT_NEAR(netlist.net_load_pf("out"),
              inv.cell.arcs[0].stage.input_cap_pf, 1e-12);
  EXPECT_DOUBLE_EQ(netlist.net_load_pf("out2"), 0.0);
}

}  // namespace
}  // namespace lvf2::circuits
