// Tests of the K-component mixture extension (paper Section 3.3):
// construction, degeneration to LVF/LVF^2, EM recovery of
// three-component data, BIC model-order behaviour, and the Liberty
// ocv_*N naming-convention round trip.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/lvf2_model.h"
#include "core/lvfk_model.h"
#include "core/model_factory.h"
#include "liberty/lvf_tables.h"
#include "liberty/parser.h"
#include "liberty/writer.h"
#include "stats/descriptive.h"

#include "test_util.h"

namespace lvf2::core {
namespace {

std::vector<double> three_mode_samples(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    const double u = rng.uniform();
    if (u < 0.5) {
      x = rng.normal(1.0, 0.05);
    } else if (u < 0.8) {
      x = rng.normal(1.3, 0.05);
    } else {
      x = rng.normal(1.6, 0.06);
    }
  }
  return xs;
}

TEST(LvfKModel, ConstructionNormalizesAndSorts) {
  std::vector<LvfKModel::Component> comps;
  comps.push_back({2.0, stats::SkewNormal::from_moments(5.0, 1.0, 0.0)});
  comps.push_back({6.0, stats::SkewNormal::from_moments(1.0, 1.0, 0.0)});
  const LvfKModel m(std::move(comps));
  ASSERT_EQ(m.component_count(), 2u);
  EXPECT_LT(m.components()[0].sn.mean(), m.components()[1].sn.mean());
  EXPECT_NEAR(m.components()[0].weight, 0.75, 1e-12);
  EXPECT_NEAR(m.components()[1].weight, 0.25, 1e-12);
}

TEST(LvfKModel, RejectsInvalidInput) {
  EXPECT_THROW(LvfKModel({}), std::invalid_argument);
  std::vector<LvfKModel::Component> zero;
  zero.push_back({0.0, stats::SkewNormal()});
  EXPECT_THROW(LvfKModel(std::move(zero)), std::invalid_argument);
}

TEST(LvfKModel, KOneIsMomentFitLvf) {
  stats::Rng rng(test::test_seed(1));
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(0.1, 0.01);
  const auto m = LvfKModel::fit(xs, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->component_count(), 1u);
  const stats::Moments sm = stats::compute_moments(xs);
  // Moments match at the binned-likelihood resolution (DESIGN.md 1).
  EXPECT_NEAR(m->mean(), sm.mean, 1e-5 * sm.mean);
  EXPECT_NEAR(m->stddev(), sm.stddev, 1e-3 * sm.stddev);
}

TEST(LvfKModel, KTwoMatchesLvf2Closely) {
  stats::Rng rng(test::test_seed(2));
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    x = (rng.uniform() < 0.35) ? rng.normal(1.3, 0.06)
                               : rng.normal(1.0, 0.05);
  }
  const auto mk = LvfKModel::fit(xs, 2);
  const auto m2 = Lvf2Model::fit(xs);
  ASSERT_TRUE(mk && m2);
  const stats::EmpiricalCdf golden(xs);
  for (double q : {0.1, 0.5, 0.9}) {
    const double x = golden.quantile(q);
    EXPECT_NEAR(mk->cdf(x), m2->cdf(x), 0.02) << q;
  }
}

TEST(LvfKModel, KThreeRecoversThreeModes) {
  const std::vector<double> xs = three_mode_samples(30000, 3);
  EmReport report;
  const auto m = LvfKModel::fit(xs, 3, {}, &report);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->component_count(), 3u);
  EXPECT_NEAR(m->components()[0].sn.mean(), 1.0, 0.05);
  EXPECT_NEAR(m->components()[1].sn.mean(), 1.3, 0.05);
  EXPECT_NEAR(m->components()[2].sn.mean(), 1.6, 0.08);
  EXPECT_NEAR(m->components()[0].weight, 0.5, 0.06);
  // Distribution-level accuracy beats the 2-component fit.
  const stats::EmpiricalCdf golden(xs);
  const auto m2 = Lvf2Model::fit(xs);
  ASSERT_TRUE(m2.has_value());
  double err3 = 0.0, err2 = 0.0;
  for (double q = 0.02; q < 1.0; q += 0.02) {
    const double x = golden.quantile(q);
    err3 += std::fabs(m->cdf(x) - q);
    err2 += std::fabs(m2->cdf(x) - q);
  }
  EXPECT_LT(err3, err2);
}

TEST(LvfKModel, MomentPinning) {
  const std::vector<double> xs = three_mode_samples(20000, 4);
  const stats::Moments sm = stats::compute_moments(xs);
  const auto m = LvfKModel::fit(xs, 3);
  ASSERT_TRUE(m.has_value());
  // Pinning targets the binned moments; compare at that resolution.
  EXPECT_NEAR(m->mean(), sm.mean, 1e-5 * sm.mean);
  EXPECT_NEAR(m->stddev(), sm.stddev, 1e-3 * sm.stddev);
}

TEST(LvfKModel, CdfQuantileRoundTripAndSampling) {
  std::vector<LvfKModel::Component> comps;
  comps.push_back({0.5, stats::SkewNormal::from_moments(1.0, 0.05, 0.3)});
  comps.push_back({0.3, stats::SkewNormal::from_moments(1.3, 0.05, -0.2)});
  comps.push_back({0.2, stats::SkewNormal::from_moments(1.6, 0.06, 0.0)});
  const LvfKModel m(std::move(comps));
  for (double p : {0.01, 0.3, 0.5, 0.7, 0.99}) {
    EXPECT_NEAR(m.cdf(m.quantile(p)), p, 1e-9) << p;
  }
  stats::Rng rng(test::test_seed(5));
  std::vector<double> xs(200000);
  for (auto& x : xs) x = m.sample(rng);
  const stats::Moments sm = stats::compute_moments(xs);
  EXPECT_NEAR(sm.mean, m.mean(), 0.005);
  EXPECT_NEAR(sm.stddev, m.stddev(), 0.005);
  EXPECT_NEAR(sm.skewness, m.skewness(), 0.05);
}

TEST(LvfKModel, BicPrefersTrueOrder) {
  // BIC on 3-mode data should prefer K=3 over K=1; K=4 should not be
  // dramatically better than K=3.
  const std::vector<double> xs = three_mode_samples(30000, 6);
  FitOptions options;
  const WeightedData data = make_weighted_data(xs, options);
  const auto m1 = LvfKModel::fit(xs, 1, options);
  const auto m3 = LvfKModel::fit(xs, 3, options);
  ASSERT_TRUE(m1 && m3);
  EXPECT_LT(m3->bic(data), m1->bic(data));
}

TEST(LvfKModel, FactorySupportsKind) {
  const std::vector<double> xs = three_mode_samples(15000, 7);
  const auto m = fit_model(ModelKind::kLvfK, xs);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind(), ModelKind::kLvfK);
  EXPECT_EQ(m->name(), "LVFk");
}

TEST(LvfKModel, LogPdfMatchesPdf) {
  std::vector<LvfKModel::Component> comps;
  comps.push_back({0.6, stats::SkewNormal::from_moments(0.0, 1.0, 0.5)});
  comps.push_back({0.4, stats::SkewNormal::from_moments(3.0, 0.5, 0.0)});
  const LvfKModel m(std::move(comps));
  for (double x : {-2.0, 0.0, 1.5, 3.0, 5.0}) {
    EXPECT_NEAR(m.log_pdf(x), std::log(m.pdf(x)), 1e-10) << x;
  }
}

TEST(LvfKLiberty, ThreeComponentNamingConventionRoundTrip) {
  // Hand-author a timing group carrying a three-component mixture via
  // the Section 3.3 naming convention and read it back.
  liberty::Group timing;
  timing.type = "timing";
  timing.set_attribute("related_pin", "A");
  const auto add_lut = [&](const std::string& name, double value) {
    liberty::Group& lut = timing.add_child(name, {"t"});
    lut.set_complex_attribute("index_1", {"0.01, 0.02"});
    lut.set_complex_attribute("index_2", {"0.001, 0.002"});
    const std::string v = std::to_string(value);
    lut.set_complex_attribute("values", {v + ", " + v, v + ", " + v});
  };
  add_lut("cell_rise", 0.100);
  add_lut("ocv_mean_shift_cell_rise", 0.002);
  add_lut("ocv_std_dev_cell_rise", 0.010);
  add_lut("ocv_skewness_cell_rise", 0.3);
  add_lut("ocv_mean_shift1_cell_rise", 0.000);
  add_lut("ocv_std_dev1_cell_rise", 0.008);
  add_lut("ocv_skewness1_cell_rise", 0.2);
  add_lut("ocv_weight2_cell_rise", 0.30);
  add_lut("ocv_mean_shift2_cell_rise", 0.020);
  add_lut("ocv_std_dev2_cell_rise", 0.012);
  add_lut("ocv_skewness2_cell_rise", -0.1);
  add_lut("ocv_weight3_cell_rise", 0.10);
  add_lut("ocv_mean_shift3_cell_rise", 0.045);
  add_lut("ocv_std_dev3_cell_rise", 0.015);
  add_lut("ocv_skewness3_cell_rise", 0.0);

  // Round-trip through text.
  liberty::Group wrapper;
  wrapper.type = "library";
  wrapper.args = {"k_test"};
  wrapper.children.push_back(timing);
  const liberty::Group reparsed = liberty::parse(liberty::write(wrapper));
  const liberty::Group* timing2 = reparsed.find_child("timing");
  ASSERT_NE(timing2, nullptr);

  const auto tables = liberty::extract_tables(*timing2, "cell_rise");
  ASSERT_TRUE(tables.has_value());
  EXPECT_EQ(tables->component_count(), 3u);
  ASSERT_EQ(tables->higher_components.size(), 1u);

  const LvfKModel model = tables->model_k_at(0, 0);
  ASSERT_EQ(model.component_count(), 3u);
  // Weights: comp3 carries 0.10; the first two are scaled by 0.9.
  double w3 = 0.0;
  for (const auto& c : model.components()) {
    if (std::fabs(c.sn.mean() - 0.145) < 1e-6) w3 = c.weight;
  }
  EXPECT_NEAR(w3, 0.10, 1e-9);
  // CDF is a proper distribution function.
  EXPECT_NEAR(model.cdf(model.quantile(0.5)), 0.5, 1e-9);
  // The 2-component reader still works on the same tables.
  const Lvf2Model two = tables->model_at(0, 0);
  EXPECT_NEAR(two.lambda(), 0.30, 1e-9);
}

}  // namespace
}  // namespace lvf2::core
