// Tests of the Liberty lexer / parser / writer: token classes,
// comments, strings, error reporting, parse(write(x)) fixpoints, and
// the lenient (never-throw) recovery mode under fuzzed input.

#include <gtest/gtest.h>

#include <string>

#include "liberty/lexer.h"
#include "liberty/parser.h"
#include "liberty/writer.h"
#include "stats/rng.h"

#include "test_util.h"

namespace lvf2::liberty {
namespace {

TEST(Lexer, BasicTokens) {
  const auto tokens = tokenize("library (foo) { a : 1.5; }");
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "library");
  EXPECT_EQ(tokens[1].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[2].text, "foo");
  EXPECT_EQ(tokens[3].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, StringsKeepSpacesAndStripQuotes) {
  const auto tokens = tokenize("values (\"1.0, 2.0\");");
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "1.0, 2.0");
}

TEST(Lexer, CommentsSkipped) {
  const auto tokens = tokenize(
      "/* block\ncomment */ a // line comment\n : 2;");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].kind, TokenKind::kColon);
  EXPECT_EQ(tokens[2].text, "2");
}

TEST(Lexer, TracksLineNumbers) {
  const auto tokens = tokenize("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[2].line, 4u);
}

TEST(Lexer, ErrorsCarryLineNumbers) {
  try {
    tokenize("ok\n\"unterminated");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Lexer, NumbersAndUnitsAreIdentifiers) {
  const auto tokens = tokenize("1.5e-3 0.8V foo_bar");
  EXPECT_EQ(tokens[0].text, "1.5e-3");
  EXPECT_EQ(tokens[1].text, "0.8V");
  EXPECT_EQ(tokens[2].text, "foo_bar");
}

TEST(Parser, SimpleLibrary) {
  const Group g = parse(R"(
    library (test) {
      time_unit : "1ns";
      cell (INV_X1) {
        area : 1.2;
        pin (Y) {
          direction : output;
        }
      }
    }
  )");
  EXPECT_EQ(g.type, "library");
  EXPECT_EQ(g.name(), "test");
  const Attribute* tu = g.find_attribute("time_unit");
  ASSERT_NE(tu, nullptr);
  EXPECT_EQ(tu->single(), "1ns");
  const Group* cell = g.find_child("cell", "INV_X1");
  ASSERT_NE(cell, nullptr);
  const Group* pin = cell->find_child("pin");
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->find_attribute("direction")->single(), "output");
}

TEST(Parser, ComplexAttributes) {
  const Group g = parse(R"(
    library (t) {
      capacitive_load_unit (1, pf);
      lut (tmpl) {
        index_1 ("0.1, 0.2");
        values ("1, 2", "3, 4");
      }
    }
  )");
  const Attribute* clu = g.find_attribute("capacitive_load_unit");
  ASSERT_NE(clu, nullptr);
  EXPECT_TRUE(clu->is_complex);
  ASSERT_EQ(clu->values.size(), 2u);
  EXPECT_EQ(clu->values[0], "1");
  EXPECT_EQ(clu->values[1], "pf");
  const Group* lut = g.find_child("lut");
  ASSERT_NE(lut, nullptr);
  const Attribute* values = lut->find_attribute("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->values.size(), 2u);
  EXPECT_EQ(values->values[1], "3, 4");
}

TEST(Parser, AnonymousGroups) {
  const Group g = parse("library (t) { cell (c) { pin (Y) { timing () { "
                        "related_pin : A; } } } }");
  const Group* timing =
      g.find_child("cell")->find_child("pin")->find_child("timing");
  ASSERT_NE(timing, nullptr);
  EXPECT_TRUE(timing->args.empty());
  EXPECT_EQ(timing->find_attribute("related_pin")->single(), "A");
}

TEST(Parser, SyntaxErrorsReported) {
  EXPECT_THROW(parse("library (t) {"), std::runtime_error);
  EXPECT_THROW(parse("library t { }"), std::runtime_error);
  EXPECT_THROW(parse("library (t) { a b; }"), std::runtime_error);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(parse_file("/nonexistent/path.lib"), std::runtime_error);
}

TEST(Writer, RoundTripPreservesStructure) {
  const Group original = parse(R"(
    library (round_trip) {
      time_unit : "1ns";
      nom_voltage : 0.8;
      capacitive_load_unit (1, pf);
      cell (NAND2_X1) {
        pin (Y) {
          direction : output;
          timing () {
            related_pin : A;
            cell_rise (tmpl) {
              index_1 ("0.1, 0.2");
              index_2 ("0.01, 0.02");
              values ("1, 2", "3, 4");
            }
          }
        }
      }
    }
  )");
  const std::string text = write(original);
  const Group reparsed = parse(text);
  EXPECT_EQ(reparsed.type, original.type);
  EXPECT_EQ(reparsed.args, original.args);
  EXPECT_EQ(reparsed.attributes.size(), original.attributes.size());
  const Group* cell = reparsed.find_child("cell", "NAND2_X1");
  ASSERT_NE(cell, nullptr);
  const Group* lut = cell->find_child("pin")->find_child("timing")
                         ->find_child("cell_rise");
  ASSERT_NE(lut, nullptr);
  EXPECT_EQ(lut->find_attribute("values")->values,
            original.find_child("cell")->find_child("pin")
                ->find_child("timing")->find_child("cell_rise")
                ->find_attribute("values")->values);
}

TEST(Writer, QuotesValuesWithSpecialCharacters) {
  Group g;
  g.type = "library";
  g.args = {"t"};
  g.set_attribute("simple", "plain_value");
  g.set_attribute("spaced", "has spaces");
  const std::string text = write(g);
  EXPECT_NE(text.find("simple : plain_value;"), std::string::npos);
  EXPECT_NE(text.find("spaced : \"has spaces\";"), std::string::npos);
}

TEST(LenientParser, CleanSourceHasNoDiagnostics) {
  const ParseResult result = parse_lenient(
      "library (t) { cell (c) { area : 1.2; } }");
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.root.name(), "t");
  EXPECT_NE(result.root.find_child("cell", "c"), nullptr);
}

TEST(LenientParser, RecoversPastBrokenStatements) {
  // "a b;" is malformed; the surrounding attributes must survive.
  const ParseResult result = parse_lenient(
      "library (t) { good1 : 1; a b; good2 : 2; }");
  EXPECT_FALSE(result.clean());
  EXPECT_NE(result.root.find_attribute("good1"), nullptr);
  EXPECT_NE(result.root.find_attribute("good2"), nullptr);
}

TEST(LenientParser, DiagnosesTruncatedSource) {
  const ParseResult result = parse_lenient("library (t) { cell (c) {");
  EXPECT_FALSE(result.clean());
  EXPECT_EQ(result.root.type, "library");
}

TEST(LenientLexer, RepairsWhatStrictRejects) {
  std::vector<ParseDiagnostic> diagnostics;
  const auto tokens = tokenize_lenient("ok\n\"unterminated", diagnostics);
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_EQ(diagnostics.front().line, 2u);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

// Fuzz-lite: 500 seeded byte-level mutations of a golden library. For
// every mutant that the strict parser rejects, the lenient parser
// must neither crash nor throw, and must report at least one
// diagnostic (a corrupted input never passes silently).
TEST(LenientParser, FuzzLiteNeverCrashesAndAlwaysDiagnoses) {
  const std::string golden = R"(
    library (fuzz_lite) {
      delay_model : table_lookup;
      time_unit : "1ns";
      capacitive_load_unit (1, pf);
      lu_table_template (tmpl) {
        variable_1 : input_net_transition;
        index_1 ("0.1, 0.2, 0.4");
      }
      cell (NAND2_X1) {
        area : 1.2;
        pin (Y) {
          direction : output;
          timing () {
            related_pin : A;
            cell_rise (tmpl) {
              index_1 ("0.1, 0.2");
              index_2 ("0.01, 0.02");
              values ("1.5, 2.5", "3.5, 4.5");
            }
          }
        }
      }
    }
  )";
  static constexpr char kInserts[] = {'{', '}', '(', ')', '"',
                                      ';', ':', '\\', '\n'};
  stats::Rng rng(test::test_seed(0xF0221));
  int corrupted_inputs = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string text = golden;
    const std::uint64_t edits = 1 + rng.uniform_index(4);
    for (std::uint64_t e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_index(text.size()));
      switch (rng.uniform_index(3)) {
        case 0:  // overwrite with an arbitrary byte
          text[pos] = static_cast<char>(rng.uniform_index(256));
          break;
        case 1:  // delete a byte
          text.erase(pos, 1);
          break;
        default:  // insert structural punctuation
          text.insert(pos, 1,
                      kInserts[rng.uniform_index(sizeof(kInserts))]);
          break;
      }
    }
    bool strict_ok = true;
    try {
      parse(text);
    } catch (const std::exception&) {
      strict_ok = false;
    }
    if (strict_ok) continue;  // the mutation happened to stay legal
    ++corrupted_inputs;
    const ParseResult result = parse_lenient(text);  // must not throw
    EXPECT_FALSE(result.diagnostics.empty())
        << "silent recovery at iteration " << iter;
  }
  // The mutation schedule must actually exercise the recovery path.
  EXPECT_GT(corrupted_inputs, 100);
}

TEST(Ast, GroupHelpers) {
  Group g;
  g.type = "library";
  Group& child = g.add_child("cell", {"X"});
  child.set_attribute("area", "2");
  EXPECT_EQ(g.children_of_type("cell").size(), 1u);
  EXPECT_EQ(g.find_child("cell", "X")->find_attribute("area")->single(),
            "2");
  EXPECT_EQ(g.find_child("pin"), nullptr);
  EXPECT_EQ(g.find_child("cell", "Y"), nullptr);
  EXPECT_EQ(g.find_attribute("nope"), nullptr);
}

}  // namespace
}  // namespace lvf2::liberty
