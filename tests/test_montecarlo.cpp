// Tests of the Monte-Carlo driver: determinism, output shape, and
// agreement between LHS and plain MC.

#include <gtest/gtest.h>

#include "spice/montecarlo.h"
#include "stats/descriptive.h"

namespace lvf2::spice {
namespace {

TEST(MonteCarlo, OutputSizesMatchConfig) {
  const ProcessCorner corner;
  const StageElectrical stage;
  McConfig cfg;
  cfg.samples = 1234;
  const McResult r = run_monte_carlo(stage, {0.05, 0.05}, corner, cfg);
  EXPECT_EQ(r.delay_ns.size(), 1234u);
  EXPECT_EQ(r.transition_ns.size(), 1234u);
}

TEST(MonteCarlo, DeterministicPerSeed) {
  const ProcessCorner corner;
  const StageElectrical stage;
  McConfig cfg;
  cfg.samples = 500;
  cfg.seed = 99;
  const McResult a = run_monte_carlo(stage, {0.05, 0.05}, corner, cfg);
  const McResult b = run_monte_carlo(stage, {0.05, 0.05}, corner, cfg);
  EXPECT_EQ(a.delay_ns, b.delay_ns);
  EXPECT_EQ(a.transition_ns, b.transition_ns);
  cfg.seed = 100;
  const McResult c = run_monte_carlo(stage, {0.05, 0.05}, corner, cfg);
  EXPECT_NE(a.delay_ns, c.delay_ns);
}

TEST(MonteCarlo, LhsAndPlainMcAgreeOnMoments) {
  const ProcessCorner corner;
  const StageElectrical stage;
  McConfig lhs_cfg, mc_cfg;
  lhs_cfg.samples = mc_cfg.samples = 20000;
  lhs_cfg.use_lhs = true;
  mc_cfg.use_lhs = false;
  const McResult lhs = run_monte_carlo(stage, {0.05, 0.1}, corner, lhs_cfg);
  const McResult mc = run_monte_carlo(stage, {0.05, 0.1}, corner, mc_cfg);
  const stats::Moments ml = stats::compute_moments(lhs.delay_ns);
  const stats::Moments mm = stats::compute_moments(mc.delay_ns);
  EXPECT_NEAR(ml.mean, mm.mean, 0.02 * mm.mean);
  EXPECT_NEAR(ml.stddev, mm.stddev, 0.05 * mm.stddev);
}

TEST(MonteCarlo, MeanNearNominalBlend) {
  const ProcessCorner corner;
  const StageElectrical stage;
  const ArcCondition cond{0.02, 0.08};
  McConfig cfg;
  cfg.samples = 30000;
  const McResult r = run_monte_carlo(stage, cond, corner, cfg);
  const StageTimes nominal = nominal_stage_times(stage, cond, corner);
  const stats::Moments m = stats::compute_moments(r.delay_ns);
  // Variation is roughly mean-preserving around the nominal blend.
  EXPECT_NEAR(m.mean, nominal.delay_ns, 0.1 * nominal.delay_ns);
}

TEST(MonteCarlo, EvaluateSampleMatchesSimulateStage) {
  const ProcessCorner corner;
  const StageElectrical stage;
  VariationSample v;
  v.dvth_n = 0.01;
  v.dlen = -0.02;
  const StageTimes a = evaluate_sample(stage, {0.05, 0.05}, corner, v);
  const StageTimes b = simulate_stage(stage, {0.05, 0.05}, corner, v);
  EXPECT_DOUBLE_EQ(a.delay_ns, b.delay_ns);
  EXPECT_DOUBLE_EQ(a.transition_ns, b.transition_ns);
}

}  // namespace
}  // namespace lvf2::spice
