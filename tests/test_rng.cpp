// Tests of the deterministic RNG layer: reproducibility, statistical
// sanity of the uniform / normal generators, seed derivation.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/rng.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(test::test_seed(7));
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatchTheory) {
  Rng rng(test::test_seed(11));
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.uniform();
  const Moments m = compute_moments(xs);
  EXPECT_NEAR(m.mean, 0.5, 0.005);
  EXPECT_NEAR(m.stddev, std::sqrt(1.0 / 12.0), 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(test::test_seed(3));
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.0);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(test::test_seed(5));
  std::vector<int> counts(7, 0);
  const int draws = 140000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    ++counts[static_cast<std::size_t>(idx)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
}

TEST(Rng, UniformIndexZeroIsZero) {
  Rng rng(test::test_seed(5));
  EXPECT_EQ(rng.uniform_index(0), 0u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsMatchTheory) {
  Rng rng(test::test_seed(13));
  const std::vector<double> xs = rng.normal_vector(200000);
  const Moments m = compute_moments(xs);
  EXPECT_NEAR(m.mean, 0.0, 0.01);
  EXPECT_NEAR(m.stddev, 1.0, 0.01);
  EXPECT_NEAR(m.skewness, 0.0, 0.03);
  EXPECT_NEAR(m.kurtosis, 3.0, 0.08);
}

TEST(Rng, NormalLocationScale) {
  Rng rng(test::test_seed(17));
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  const Moments m = compute_moments(xs);
  EXPECT_NEAR(m.mean, 5.0, 0.05);
  EXPECT_NEAR(m.stddev, 2.0, 0.03);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(23);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  std::vector<double> a(50000), b(50000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = child1.normal();
    b[i] = child2.normal();
  }
  double corr = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) corr += a[i] * b[i];
  corr /= static_cast<double>(a.size());
  EXPECT_NEAR(corr, 0.0, 0.02);
}

TEST(HashName, StableAndDistinguishing) {
  EXPECT_EQ(hash_name("NAND2_X1"), hash_name("NAND2_X1"));
  EXPECT_NE(hash_name("NAND2_X1"), hash_name("NAND2_X2"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

TEST(CombineSeed, OrderSensitive) {
  EXPECT_NE(combine_seed(combine_seed(1, 2), 3),
            combine_seed(combine_seed(1, 3), 2));
  EXPECT_EQ(combine_seed(99, 7), combine_seed(99, 7));
}

TEST(Rng, StdDistributionCompatible) {
  // Rng satisfies UniformRandomBitGenerator.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  Rng rng(test::test_seed(1));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 64u);  // no short cycles
}

}  // namespace
}  // namespace lvf2::stats
