// Tests of the accuracy-pattern-guided characterization (the paper
// conclusion's proposed speedup): the mixture-strength estimator and
// the screening behaviour across the slew/load table.

#include <gtest/gtest.h>

#include "cells/pattern_guided.h"
#include "stats/rng.h"

#include "test_util.h"

namespace lvf2::cells {
namespace {

TEST(MixtureStrength, NearZeroForUnimodalData) {
  stats::Rng rng(test::test_seed(1));
  std::vector<double> xs(4000);
  for (auto& x : xs) x = rng.normal(0.1, 0.01);
  EXPECT_LT(estimate_mixture_strength(xs), 0.08);
}

TEST(MixtureStrength, LargeForBalancedSeparatedMixture) {
  stats::Rng rng(test::test_seed(2));
  std::vector<double> xs(4000);
  for (auto& x : xs) {
    x = (rng.uniform() < 0.5) ? rng.normal(0.10, 0.005)
                              : rng.normal(0.13, 0.005);
  }
  EXPECT_GT(estimate_mixture_strength(xs), 0.3);
}

TEST(MixtureStrength, SmallForLopsidedMixture) {
  stats::Rng rng(test::test_seed(3));
  std::vector<double> xs(4000);
  for (auto& x : xs) {
    x = (rng.uniform() < 0.02) ? rng.normal(0.13, 0.005)
                               : rng.normal(0.10, 0.005);
  }
  const double lopsided = estimate_mixture_strength(xs);
  std::vector<double> balanced(4000);
  for (auto& x : balanced) {
    x = (rng.uniform() < 0.5) ? rng.normal(0.13, 0.005)
                              : rng.normal(0.10, 0.005);
  }
  EXPECT_LT(lopsided, estimate_mixture_strength(balanced));
}

class PatternGuidedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Cell nand2 = build_cell(CellFamily::kNand, 2, 1.0);
    PatternGuidedOptions options;
    options.grid = SlewLoadGrid::reduced(2);  // 4x4
    options.pilot_samples = 600;
    options.full_samples = 4000;
    result_ = new PatternGuidedResult(pattern_guided_characterize_arc(
        nand2, nand2.arcs.front(), spice::ProcessCorner{}, options));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const PatternGuidedResult& result() { return *result_; }

 private:
  static PatternGuidedResult* result_;
};

PatternGuidedResult* PatternGuidedTest::result_ = nullptr;

TEST_F(PatternGuidedTest, CoversWholeGrid) {
  EXPECT_EQ(result().entries.size(), 16u);
  EXPECT_EQ(result().full_fits + result().screened_out, 16u);
}

TEST_F(PatternGuidedTest, ScreensOutSomeEntriesAndSavesBudget) {
  // The off-diagonal corners of the table are unimodal and must be
  // screened out; the confrontation band must get full fits.
  EXPECT_GT(result().screened_out, 0u);
  EXPECT_GT(result().full_fits, 0u);
  EXPECT_LT(result().budget_fraction(), 1.0);
  EXPECT_GT(result().budget_fraction(), 0.0);
}

TEST_F(PatternGuidedTest, FullFitsCarryMixtures) {
  for (const PatternGuidedEntry& e : result().entries) {
    if (e.full_fit) {
      EXPECT_GT(e.samples_used, 4000u);
    } else {
      // Screened-out entries are plain LVF.
      EXPECT_DOUBLE_EQ(e.delay_params.lambda, 0.0);
      EXPECT_EQ(e.samples_used, 600u);
    }
    EXPECT_GT(e.delay_params.theta1.stddev, 0.0);
  }
}

TEST_F(PatternGuidedTest, PureRegimeCornersMostlyScreenedOut) {
  // Entries where one mechanism fully dominates (analytic weight at 0
  // or 1) are regime-unimodal and should mostly be screened out. A
  // minority can legitimately exceed the threshold: the deep
  // drive-limited corner has a strongly nonlinear (heavy-tailed)
  // distribution that a two-Gaussian fit genuinely improves on.
  const Cell nand2 = build_cell(CellFamily::kNand, 2, 1.0);
  const auto& arc = nand2.arcs.front();
  std::size_t corner_entries = 0;
  std::size_t corner_flagged = 0;
  for (const PatternGuidedEntry& e : result().entries) {
    const double lambda = spice::mechanism_b_probability(
        arc.stage, e.condition, spice::ProcessCorner{});
    if (lambda * (1.0 - lambda) < 0.01) {
      ++corner_entries;
      if (e.full_fit) ++corner_flagged;
    }
  }
  ASSERT_GT(corner_entries, 4u);
  EXPECT_LE(corner_flagged * 2, corner_entries);
}

TEST_F(PatternGuidedTest, FlaggedEntriesAreStrongerThanScreened) {
  double flagged = 0.0, screened = 0.0;
  std::size_t nf = 0, ns = 0;
  for (const PatternGuidedEntry& e : result().entries) {
    if (e.full_fit) {
      flagged += e.pilot_strength;
      ++nf;
    } else {
      screened += e.pilot_strength;
      ++ns;
    }
  }
  ASSERT_GT(nf, 0u);
  ASSERT_GT(ns, 0u);
  EXPECT_GT(flagged / nf, screened / ns);
}

}  // namespace
}  // namespace lvf2::cells
