// Unit and property tests of the special-function layer: normal
// PDF/CDF/quantile, Owen's T, the zeta Mills-ratio derivatives and
// the numeric helpers.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/special_functions.h"

namespace lvf2::stats {
namespace {

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(normal_pdf(-1.0), normal_pdf(1.0), 1e-16);
  EXPECT_NEAR(normal_pdf(5.0), 1.4867195147342979e-06, 1e-18);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-16);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-15);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-15);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-15);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876450376946e-10, 1e-18);
}

TEST(NormalCdf, Symmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 4.4}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-15) << x;
  }
}

TEST(NormalLogCdf, MatchesLogOfCdfInBulk) {
  for (double x = -9.5; x <= 8.0; x += 0.25) {
    EXPECT_NEAR(normal_log_cdf(x), std::log(normal_cdf(x)), 1e-10) << x;
  }
}

TEST(NormalLogCdf, DeepTailFiniteAndMonotone) {
  double prev = normal_log_cdf(-60.0);
  EXPECT_TRUE(std::isfinite(prev));
  for (double x = -55.0; x <= -10.0; x += 5.0) {
    const double v = normal_log_cdf(x);
    EXPECT_TRUE(std::isfinite(v)) << x;
    EXPECT_GT(v, prev) << x;
    prev = v;
  }
}

TEST(NormalLogCdf, TailSeriesMatchesAtSwitchPoint) {
  // Consistency across the x = -10 implementation switch: the jump
  // over a small step must match the analytic slope zeta1 ~ |x|.
  const double step = 0.002;
  const double jump = normal_log_cdf(-9.999) - normal_log_cdf(-10.001);
  EXPECT_NEAR(jump, step * zeta1(-10.0), 1e-6);
  // Direct agreement where erfc is still accurate.
  EXPECT_NEAR(normal_log_cdf(-12.0), std::log(normal_cdf(-12.0)), 1e-6);
  EXPECT_NEAR(normal_log_cdf(-11.0), std::log(normal_cdf(-11.0)), 1e-6);
}

class NormalQuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-13 * std::max(p, 1e-3));
}

INSTANTIATE_TEST_SUITE_P(ProbabilityGrid, NormalQuantileRoundTrip,
                         ::testing::Values(1e-10, 1e-6, 1e-3, 0.01, 0.1,
                                           0.25, 0.5, 0.75, 0.9, 0.99,
                                           0.999, 1.0 - 1e-6, 1.0 - 1e-10));

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-15);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.9986501019683699), 3.0, 1e-11);
}

TEST(NormalQuantile, Boundaries) {
  EXPECT_TRUE(std::isinf(normal_quantile(0.0)));
  EXPECT_LT(normal_quantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(normal_quantile(1.0)));
  EXPECT_GT(normal_quantile(1.0), 0.0);
  EXPECT_TRUE(std::isnan(normal_quantile(std::nan(""))));
}

TEST(OwensT, SpecialCases) {
  EXPECT_DOUBLE_EQ(owens_t(1.3, 0.0), 0.0);
  // T(0, a) = atan(a) / (2 pi).
  EXPECT_NEAR(owens_t(0.0, 1.0), std::atan(1.0) / (2.0 * kPi), 1e-15);
  EXPECT_NEAR(owens_t(0.0, -2.5), -std::atan(2.5) / (2.0 * kPi), 1e-15);
}

TEST(OwensT, Symmetries) {
  for (double h : {0.3, 1.1, 2.7}) {
    for (double a : {0.2, 0.9, 1.8, 5.0}) {
      EXPECT_NEAR(owens_t(h, a), owens_t(-h, a), 1e-15);
      EXPECT_NEAR(owens_t(h, -a), -owens_t(h, a), 1e-15);
    }
  }
}

TEST(OwensT, UnitSlopeIdentity) {
  // T(h, 1) = Phi(h) (1 - Phi(h)) / 2.
  for (double h : {0.0, 0.4, 1.0, 2.2, 3.7}) {
    const double phi = normal_cdf(h);
    EXPECT_NEAR(owens_t(h, 1.0), 0.5 * phi * (1.0 - phi), 1e-13) << h;
  }
}

TEST(OwensT, MatchesBruteForceQuadrature) {
  // Compare against 200k-panel Simpson integration of the defining
  // integral, including the |a| > 1 reduction path.
  const auto brute = [](double h, double a) {
    const int n = 200000;
    const double step = a / n;
    double sum = 0.0;
    for (int i = 0; i <= n; ++i) {
      const double x = step * i;
      const double f = std::exp(-0.5 * h * h * (1 + x * x)) / (1 + x * x);
      const double w = (i == 0 || i == n) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
      sum += w * f;
    }
    return sum * step / 3.0 / (2.0 * kPi);
  };
  for (auto [h, a] : {std::pair{0.5, 0.5}, {1.0, 2.0}, {2.0, 0.3},
                      {0.1, 4.0}, {3.0, 1.5}}) {
    EXPECT_NEAR(owens_t(h, a), brute(h, a), 1e-10) << h << "," << a;
  }
}

TEST(OwensT, LargeAApproachesHalfTail) {
  const double h = 1.7;
  EXPECT_NEAR(owens_t(h, 1e9), 0.5 * normal_cdf(-h), 1e-10);
  EXPECT_NEAR(owens_t(h, std::numeric_limits<double>::infinity()),
              0.5 * normal_cdf(-h), 1e-15);
}

TEST(Zeta, Zeta1MatchesDefinition) {
  for (double x : {-8.0, -3.0, -1.0, 0.0, 1.0, 4.0}) {
    EXPECT_NEAR(zeta1(x), normal_pdf(x) / normal_cdf(x), 1e-12) << x;
  }
}

TEST(Zeta, DeepTailAsymptote) {
  // zeta1(x) ~ -x for x -> -inf.
  EXPECT_NEAR(zeta1(-40.0) / 40.0, 1.0, 1e-3);
  EXPECT_TRUE(std::isfinite(zeta1(-300.0)));
}

class ZetaDerivativeChain : public ::testing::TestWithParam<double> {};

TEST_P(ZetaDerivativeChain, MatchesNumericDifferentiation) {
  const double x = GetParam();
  const double h = 1e-5;
  EXPECT_NEAR(zeta2(x), (zeta1(x + h) - zeta1(x - h)) / (2 * h),
              1e-5 * (1.0 + std::fabs(zeta2(x))));
  EXPECT_NEAR(zeta3(x), (zeta2(x + h) - zeta2(x - h)) / (2 * h),
              1e-5 * (1.0 + std::fabs(zeta3(x))));
  EXPECT_NEAR(zeta4(x), (zeta3(x + h) - zeta3(x - h)) / (2 * h),
              1e-4 * (1.0 + std::fabs(zeta4(x))));
}

INSTANTIATE_TEST_SUITE_P(Points, ZetaDerivativeChain,
                         ::testing::Values(-6.0, -2.5, -1.0, -0.3, 0.0, 0.7,
                                           1.5, 3.0, 6.0));

TEST(LogSumExp, BasicAndExtremes) {
  EXPECT_NEAR(log_sum_exp(0.0, 0.0), std::log(2.0), 1e-15);
  EXPECT_NEAR(log_sum_exp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-12);
  EXPECT_NEAR(log_sum_exp(-1e308, 3.0), 3.0, 1e-12);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_sum_exp(-inf, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(log_sum_exp(5.0, -inf), 5.0);
}

TEST(KahanSum, CompensatesCancellation) {
  std::vector<double> values;
  values.push_back(1.0);
  for (int i = 0; i < 10000; ++i) values.push_back(1e-16);
  const double sum = kahan_sum(values);
  EXPECT_NEAR(sum, 1.0 + 1e-12, 1e-15);
}

TEST(InterpLinear, InterpolatesAndClamps) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 9.0), 40.0);
  EXPECT_TRUE(std::isnan(interp_linear({}, {}, 0.0)));
}

}  // namespace
}  // namespace lvf2::stats
