// Tests of the discretized-PDF engine that powers block-based SSTA:
// construction, CDF/quantile, moments, convolution (sum of
// independent RVs), the statistical max, shifting and resampling.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/grid_pdf.h"
#include "stats/normal.h"
#include "stats/rng.h"
#include "stats/special_functions.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

GridPdf standard_normal_grid(double mu = 0.0, double sigma = 1.0,
                             std::size_t points = 2048) {
  const Normal n(mu, sigma);
  return GridPdf::from_function([n](double x) { return n.pdf(x); },
                                mu - 10.0 * sigma, mu + 10.0 * sigma,
                                points);
}

TEST(GridPdf, FromFunctionNormalizedAndAccurate) {
  const GridPdf g = standard_normal_grid();
  EXPECT_NEAR(g.pdf(0.0), normal_pdf(0.0), 1e-4);
  EXPECT_NEAR(g.cdf(0.0), 0.5, 1e-4);
  EXPECT_NEAR(g.cdf(1.0), normal_cdf(1.0), 1e-4);
  EXPECT_NEAR(g.cdf(-3.0), normal_cdf(-3.0), 1e-4);
  EXPECT_DOUBLE_EQ(g.cdf(g.lo() - 1.0), 0.0);
  EXPECT_DOUBLE_EQ(g.cdf(g.hi() + 1.0), 1.0);
}

TEST(GridPdf, MomentsOfTabulatedNormal) {
  const GridPdf g = standard_normal_grid(5.0, 2.0);
  EXPECT_NEAR(g.mean(), 5.0, 1e-6);
  EXPECT_NEAR(g.stddev(), 2.0, 1e-4);
  EXPECT_NEAR(g.skewness(), 0.0, 1e-6);
  EXPECT_NEAR(g.kurtosis(), 3.0, 1e-3);
}

TEST(GridPdf, FromSamplesMatchesSampleMoments) {
  Rng rng(test::test_seed(1));
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal(2.0, 0.5);
  const GridPdf g = GridPdf::from_samples(xs, 512);
  const Moments m = compute_moments(xs);
  EXPECT_NEAR(g.mean(), m.mean, 0.01);
  EXPECT_NEAR(g.stddev(), m.stddev, 0.01);
}

TEST(GridPdf, QuantileInvertsCdf) {
  const GridPdf g = standard_normal_grid();
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-6) << p;
    EXPECT_NEAR(g.quantile(p), normal_quantile(p), 1e-3) << p;
  }
}

TEST(GridPdf, ConvolveTwoNormalsIsNormal) {
  const GridPdf a = standard_normal_grid(1.0, 0.6);
  const GridPdf b = standard_normal_grid(2.0, 0.8);
  const GridPdf c = GridPdf::convolve(a, b);
  EXPECT_NEAR(c.mean(), 3.0, 1e-4);
  EXPECT_NEAR(c.stddev(), 1.0, 1e-3);
  EXPECT_NEAR(c.skewness(), 0.0, 1e-4);
  // CDF must match the exact normal sum everywhere.
  const Normal exact(3.0, 1.0);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.5}) {
    EXPECT_NEAR(c.cdf(x), exact.cdf(x), 2e-4) << x;
  }
}

TEST(GridPdf, ConvolveRespectsMaxPoints) {
  const GridPdf a = standard_normal_grid(0.0, 1.0, 4096);
  const GridPdf b = standard_normal_grid(0.0, 1.0, 4096);
  const GridPdf c = GridPdf::convolve(a, b, 1024);
  EXPECT_LE(c.size(), 1100u);
  EXPECT_NEAR(c.stddev(), std::sqrt(2.0), 5e-3);
}

TEST(GridPdf, StatisticalMaxMatchesMonteCarlo) {
  const Normal na(0.0, 1.0), nb(0.5, 0.7);
  const GridPdf a = standard_normal_grid(0.0, 1.0);
  const GridPdf b = standard_normal_grid(0.5, 0.7);
  const GridPdf m = GridPdf::statistical_max(a, b);
  Rng rng(test::test_seed(2));
  std::vector<double> xs(300000);
  for (auto& x : xs) x = std::max(na.sample(rng), nb.sample(rng));
  const Moments mc = compute_moments(xs);
  EXPECT_NEAR(m.mean(), mc.mean, 0.01);
  EXPECT_NEAR(m.stddev(), mc.stddev, 0.01);
  // Exact CDF of the max is the product of CDFs.
  for (double x : {-1.0, 0.0, 1.0, 2.0}) {
    EXPECT_NEAR(m.cdf(x), na.cdf(x) * nb.cdf(x), 2e-3) << x;
  }
}

TEST(GridPdf, MaxOfIdenticalSharperAndShifted) {
  const GridPdf a = standard_normal_grid();
  const GridPdf m = GridPdf::statistical_max(a, a);
  EXPECT_NEAR(m.mean(), 1.0 / std::sqrt(kPi), 1e-3);  // E[max(Z1,Z2)]
  EXPECT_LT(m.stddev(), 1.0);
}

TEST(GridPdf, ShiftedMovesSupportExactly) {
  const GridPdf g = standard_normal_grid();
  const GridPdf s = g.shifted(4.0);
  EXPECT_NEAR(s.mean(), g.mean() + 4.0, 1e-9);
  EXPECT_NEAR(s.stddev(), g.stddev(), 1e-12);
  EXPECT_NEAR(s.cdf(4.0), 0.5, 1e-4);
}

TEST(GridPdf, ResampledPreservesShape) {
  const GridPdf g = standard_normal_grid();
  const GridPdf r = g.resampled(-6.0, 6.0, 512);
  EXPECT_NEAR(r.mean(), 0.0, 1e-4);
  EXPECT_NEAR(r.stddev(), 1.0, 2e-3);
}

TEST(GridPdf, PdfZeroOutsideSupport) {
  const GridPdf g = standard_normal_grid();
  EXPECT_DOUBLE_EQ(g.pdf(g.lo() - 5.0), 0.0);
  EXPECT_DOUBLE_EQ(g.pdf(g.hi() + 5.0), 0.0);
}

TEST(GridPdf, NegativeDensityInputClampedToZero) {
  std::vector<double> values = {0.0, -5.0, 1.0, 1.0, 0.0};
  const GridPdf g = GridPdf::from_values(0.0, 4.0, std::move(values));
  EXPECT_GE(g.pdf(1.0), 0.0);
  EXPECT_NEAR(g.cdf(4.0), 1.0, 1e-12);
}

TEST(GridPdf, InvalidConstructionThrows) {
  EXPECT_THROW(GridPdf::from_values(1.0, 0.0, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(GridPdf::from_values(0.0, 1.0, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(GridPdf::from_function([](double) { return 1.0; }, 0.0, 1.0,
                                      2),
               std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(GridPdf::from_samples(empty), std::invalid_argument);
}

TEST(GridPdf, EmptyDefaultState) {
  const GridPdf g;
  EXPECT_TRUE(g.empty());
  EXPECT_DOUBLE_EQ(g.pdf(0.0), 0.0);
  EXPECT_TRUE(std::isnan(g.cdf(0.0)));
}

TEST(GridPdf, ChainOfConvolutionsApproachesGaussianByClT) {
  // Sum of 12 uniform [0,1] variables: mean 6, variance 1, and the
  // CDF is within Berry-Esseen distance of the normal.
  const GridPdf u = GridPdf::from_function(
      [](double x) { return (x >= 0.0 && x <= 1.0) ? 1.0 : 0.0; }, -0.1,
      1.1, 1024);
  GridPdf sum = u;
  for (int i = 1; i < 12; ++i) sum = GridPdf::convolve(sum, u, 4096);
  EXPECT_NEAR(sum.mean(), 6.0, 1e-3);
  EXPECT_NEAR(sum.variance(), 1.0, 5e-3);
  EXPECT_NEAR(sum.skewness(), 0.0, 1e-3);
  for (double z : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    EXPECT_NEAR(sum.cdf(6.0 + z), normal_cdf(z), 5e-3) << z;
  }
}

TEST(GridPdf, TryFactoriesReportDegenerateInput) {
  const double nan = std::numeric_limits<double>::quiet_NaN();

  // No finite sample at all: a Status, not a throw.
  const std::vector<double> poisoned = {nan, nan, nan};
  const auto no_finite = GridPdf::try_from_samples(poisoned);
  EXPECT_FALSE(no_finite.is_ok());
  EXPECT_EQ(no_finite.status().code(), core::StatusCode::kDegenerateData);
  EXPECT_FALSE(GridPdf::try_from_samples({}).is_ok());

  // All-equal samples still produce a usable (near point mass) grid.
  const std::vector<double> constant(64, 3.0);
  const auto point_mass = GridPdf::try_from_samples(constant);
  ASSERT_TRUE(point_mass.is_ok());
  EXPECT_NEAR(point_mass.value().mean(), 3.0, 1e-9);

  // A mixed set ignores the poison and matches the clean histogram.
  std::vector<double> mixed = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const GridPdf clean = GridPdf::from_samples(mixed, 64);
  mixed.push_back(nan);
  const auto repaired = GridPdf::try_from_samples(mixed, 64);
  ASSERT_TRUE(repaired.is_ok());
  EXPECT_DOUBLE_EQ(repaired.value().mean(), clean.mean());

  // from_values guards: bad range, too few points, zero density.
  EXPECT_EQ(GridPdf::try_from_values(1.0, 1.0, {1.0, 1.0}).status().code(),
            core::StatusCode::kInvalidArgument);
  EXPECT_EQ(GridPdf::try_from_values(nan, 1.0, {1.0, 1.0}).status().code(),
            core::StatusCode::kInvalidArgument);
  EXPECT_EQ(GridPdf::try_from_values(0.0, 1.0, {1.0}).status().code(),
            core::StatusCode::kDegenerateData);
  EXPECT_EQ(
      GridPdf::try_from_values(0.0, 1.0, {0.0, 0.0, 0.0}).status().code(),
      core::StatusCode::kDegenerateData);
  const auto ok = GridPdf::try_from_values(0.0, 1.0, {1.0, 1.0, 1.0});
  ASSERT_TRUE(ok.is_ok());
  EXPECT_NEAR(ok.value().cdf(1.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace lvf2::stats
