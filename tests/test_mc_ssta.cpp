// Tests of the golden path Monte-Carlo: shapes, prefix-sum
// semantics, determinism and per-stage independence.

#include <cmath>

#include <gtest/gtest.h>

#include "circuits/adder.h"
#include "ssta/mc_ssta.h"
#include "stats/descriptive.h"

namespace lvf2::ssta {
namespace {

TimingPath small_path() {
  circuits::AdderOptions options;
  options.bits = 4;
  return circuits::build_adder_critical_path(options,
                                             spice::ProcessCorner{});
}

TEST(PathMc, ShapesMatchConfig) {
  const TimingPath path = small_path();
  PathMcConfig cfg;
  cfg.samples = 700;
  const PathMcResult r =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  ASSERT_EQ(r.stage_delays.size(), path.depth());
  ASSERT_EQ(r.cumulative.size(), path.depth());
  for (std::size_t i = 0; i < path.depth(); ++i) {
    EXPECT_EQ(r.stage_delays[i].size(), 700u);
    EXPECT_EQ(r.cumulative[i].size(), 700u);
  }
}

TEST(PathMc, CumulativeIsPrefixSum) {
  const TimingPath path = small_path();
  PathMcConfig cfg;
  cfg.samples = 200;
  const PathMcResult r =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  for (std::size_t j = 0; j < 200; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < path.depth(); ++i) {
      sum += r.stage_delays[i][j];
      EXPECT_NEAR(r.cumulative[i][j], sum, 1e-12);
    }
  }
}

TEST(PathMc, DeterministicPerSeed) {
  const TimingPath path = small_path();
  PathMcConfig cfg;
  cfg.samples = 100;
  cfg.seed = 5;
  const PathMcResult a =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  const PathMcResult b =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  EXPECT_EQ(a.cumulative.back(), b.cumulative.back());
  cfg.seed = 6;
  const PathMcResult c =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  EXPECT_NE(a.cumulative.back(), c.cumulative.back());
}

TEST(PathMc, StagesAreIndependent) {
  // Local mismatch is uncorrelated across instances: per-stage delay
  // vectors must be (nearly) uncorrelated.
  const TimingPath path = small_path();
  PathMcConfig cfg;
  cfg.samples = 20000;
  const PathMcResult r =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  const auto& s0 = r.stage_delays[1];
  const auto& s1 = r.stage_delays[2];
  const stats::Moments m0 = stats::compute_moments(s0);
  const stats::Moments m1 = stats::compute_moments(s1);
  double cov = 0.0;
  for (std::size_t j = 0; j < s0.size(); ++j) {
    cov += (s0[j] - m0.mean) * (s1[j] - m1.mean);
  }
  cov /= static_cast<double>(s0.size());
  EXPECT_NEAR(cov / (m0.stddev * m1.stddev), 0.0, 0.03);
}

TEST(PathMc, WireDelayShiftsStage) {
  TimingPath path = small_path();
  PathMcConfig cfg;
  cfg.samples = 2000;
  const PathMcResult base =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  path.stages[0].wire_delay_ns += 0.5;
  const PathMcResult shifted =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  const double m0 = stats::compute_moments(base.stage_delays[0]).mean;
  const double m1 = stats::compute_moments(shifted.stage_delays[0]).mean;
  EXPECT_NEAR(m1 - m0, 0.5, 1e-9);
}

TEST(PathMc, VarianceGrowsLinearlyAlongPath) {
  const TimingPath path = small_path();
  PathMcConfig cfg;
  cfg.samples = 10000;
  const PathMcResult r =
      run_path_monte_carlo(path, spice::ProcessCorner{}, cfg);
  double prev_var = 0.0;
  for (std::size_t i = 0; i < path.depth(); ++i) {
    const stats::Moments m = stats::compute_moments(r.cumulative[i]);
    const double var = m.stddev * m.stddev;
    EXPECT_GT(var, prev_var) << i;  // independent adds increase variance
    prev_var = var;
  }
}

}  // namespace
}  // namespace lvf2::ssta
