// Tests of the extended skew-normal: normalization, the tau = 0
// skew-normal limit, closed-form cumulants vs sampling, CDF/quantile
// consistency and four-moment fitting.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/extended_skew_normal.h"
#include "stats/skew_normal.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

double integrate_pdf(const ExtendedSkewNormal& d, double lo, double hi,
                     int n) {
  const double step = (hi - lo) / n;
  double sum = 0.5 * (d.pdf(lo) + d.pdf(hi));
  for (int i = 1; i < n; ++i) sum += d.pdf(lo + step * i);
  return sum * step;
}

class EsnShapeSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EsnShapeSweep, PdfIntegratesToOne) {
  const auto [alpha, tau] = GetParam();
  const ExtendedSkewNormal d(0.0, 1.0, alpha, tau);
  const double lo = d.mean() - 14.0 * d.stddev();
  const double hi = d.mean() + 14.0 * d.stddev();
  EXPECT_NEAR(integrate_pdf(d, lo, hi, 40000), 1.0, 1e-8);
}

TEST_P(EsnShapeSweep, AnalyticCumulantsMatchSampling) {
  const auto [alpha, tau] = GetParam();
  const ExtendedSkewNormal d(0.5, 2.0, alpha, tau);
  Rng rng(test::test_seed(3));
  std::vector<double> xs(400000);
  for (auto& x : xs) x = d.sample(rng);
  const Moments m = compute_moments(xs);
  EXPECT_NEAR(m.mean, d.mean(), 0.02);
  EXPECT_NEAR(m.stddev, d.stddev(), 0.02);
  EXPECT_NEAR(m.skewness, d.skewness(), 0.05);
  EXPECT_NEAR(m.kurtosis, d.kurtosis(), 0.2);
}

TEST_P(EsnShapeSweep, CdfQuantileRoundTrip) {
  const auto [alpha, tau] = GetParam();
  const ExtendedSkewNormal d(0.0, 1.0, alpha, tau);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-6) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, EsnShapeSweep,
                         ::testing::Values(std::tuple{0.0, 0.0},
                                           std::tuple{2.0, 0.0},
                                           std::tuple{-3.0, 1.0},
                                           std::tuple{1.5, -1.5},
                                           std::tuple{4.0, 2.0},
                                           std::tuple{-1.0, -2.0}));

TEST(ExtendedSkewNormal, TauZeroMatchesSkewNormal) {
  const ExtendedSkewNormal esn(0.3, 1.2, 2.5, 0.0);
  const SkewNormal sn(0.3, 1.2, 2.5);
  for (double x : {-2.0, -0.5, 0.3, 1.5, 4.0}) {
    EXPECT_NEAR(esn.pdf(x), sn.pdf(x), 1e-12) << x;
    EXPECT_NEAR(esn.cdf(x), sn.cdf(x), 1e-7) << x;
  }
  EXPECT_NEAR(esn.mean(), sn.mean(), 1e-12);
  EXPECT_NEAR(esn.stddev(), sn.stddev(), 1e-12);
  EXPECT_NEAR(esn.skewness(), sn.skewness(), 1e-10);
  EXPECT_NEAR(esn.kurtosis(), sn.kurtosis(), 1e-10);
}

TEST(ExtendedSkewNormal, CdfMonotoneNondecreasing) {
  const ExtendedSkewNormal d(0.0, 1.0, 3.0, -1.0);
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.1) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(ExtendedSkewNormal, RejectsInvalidParameters) {
  EXPECT_THROW(ExtendedSkewNormal(0.0, 0.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ExtendedSkewNormal(0.0, -1.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ExtendedSkewNormal, FitMomentsRecoversShape) {
  const ExtendedSkewNormal truth(1.0, 0.5, 3.0, 1.0);
  Moments target;
  target.count = 1000;
  target.mean = truth.mean();
  target.stddev = truth.stddev();
  target.skewness = truth.skewness();
  target.kurtosis = truth.kurtosis();
  const auto fit = ExtendedSkewNormal::fit_moments(target);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->mean(), target.mean, 1e-6);
  EXPECT_NEAR(fit->stddev(), target.stddev, 1e-6);
  EXPECT_NEAR(fit->skewness(), target.skewness, 0.01);
  EXPECT_NEAR(fit->kurtosis(), target.kurtosis, 0.05);
}

TEST(ExtendedSkewNormal, FitMomentsGaussianTarget) {
  Moments target;
  target.count = 1000;
  target.mean = 5.0;
  target.stddev = 2.0;
  target.skewness = 0.0;
  target.kurtosis = 3.0;
  const auto fit = ExtendedSkewNormal::fit_moments(target);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->mean(), 5.0, 1e-6);
  EXPECT_NEAR(fit->stddev(), 2.0, 1e-6);
  EXPECT_NEAR(fit->skewness(), 0.0, 0.01);
}

TEST(ExtendedSkewNormal, FitMomentsDegenerateReturnsNull) {
  Moments target;  // count == 0
  EXPECT_FALSE(ExtendedSkewNormal::fit_moments(target).has_value());
  target.count = 10;
  target.stddev = 0.0;
  EXPECT_FALSE(ExtendedSkewNormal::fit_moments(target).has_value());
}

TEST(ExtendedSkewNormal, NegativeTauIncreasesSkewRange) {
  // Hidden truncation deep below the mean (tau << 0) approaches a
  // half-normal-like shape whose skewness exceeds the SN bound.
  const ExtendedSkewNormal d(0.0, 1.0, 25.0, -3.0);
  EXPECT_GT(d.skewness(), 0.995);
}

}  // namespace
}  // namespace lvf2::stats
