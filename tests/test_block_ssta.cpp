// Tests of the block-based SSTA operators: sum (convolution), max,
// and chain propagation with deterministic wire delays.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ssta/block_ssta.h"
#include "stats/normal.h"
#include "stats/rng.h"

namespace lvf2::ssta {
namespace {

stats::GridPdf normal_grid(double mu, double sigma) {
  const stats::Normal n(mu, sigma);
  return stats::GridPdf::from_function([n](double x) { return n.pdf(x); },
                                       mu - 9.0 * sigma, mu + 9.0 * sigma,
                                       2048);
}

TEST(SstaSum, MatchesClosedFormNormalSum) {
  const stats::GridPdf c = ssta_sum(normal_grid(0.10, 0.01),
                                    normal_grid(0.20, 0.02));
  EXPECT_NEAR(c.mean(), 0.30, 1e-5);
  EXPECT_NEAR(c.stddev(), std::sqrt(0.01 * 0.01 + 0.02 * 0.02), 1e-5);
}

TEST(SstaMax, MatchesProductOfCdfs) {
  const stats::GridPdf m = ssta_max(normal_grid(0.0, 1.0),
                                    normal_grid(0.3, 0.8));
  const stats::Normal a(0.0, 1.0), b(0.3, 0.8);
  for (double x : {-1.0, 0.0, 0.5, 1.5}) {
    EXPECT_NEAR(m.cdf(x), a.cdf(x) * b.cdf(x), 3e-3) << x;
  }
}

TEST(SstaMax, DominantOperandWins) {
  // max(X, Y) with Y far below X is X.
  const stats::GridPdf m = ssta_max(normal_grid(10.0, 0.5),
                                    normal_grid(0.0, 0.5));
  EXPECT_NEAR(m.mean(), 10.0, 1e-3);
  EXPECT_NEAR(m.stddev(), 0.5, 1e-3);
}

TEST(PropagateChain, CumulativeMeansAdd) {
  std::vector<stats::GridPdf> stages = {normal_grid(0.1, 0.01),
                                        normal_grid(0.2, 0.01),
                                        normal_grid(0.15, 0.02)};
  const std::vector<stats::GridPdf> cum = propagate_chain(stages);
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_NEAR(cum[0].mean(), 0.10, 1e-5);
  EXPECT_NEAR(cum[1].mean(), 0.30, 1e-4);
  EXPECT_NEAR(cum[2].mean(), 0.45, 1e-4);
  EXPECT_NEAR(cum[2].stddev(),
              std::sqrt(0.01 * 0.01 + 0.01 * 0.01 + 0.02 * 0.02), 1e-4);
}

TEST(PropagateChain, WireDelaysShiftMeans) {
  std::vector<stats::GridPdf> stages = {normal_grid(0.1, 0.01),
                                        normal_grid(0.1, 0.01)};
  const std::vector<double> wires = {0.05, 0.02};
  const std::vector<stats::GridPdf> cum = propagate_chain(stages, wires);
  EXPECT_NEAR(cum[0].mean(), 0.15, 1e-5);
  EXPECT_NEAR(cum[1].mean(), 0.27, 1e-4);
  // Wire delay is deterministic: stddev unchanged.
  EXPECT_NEAR(cum[1].stddev(), std::sqrt(2.0) * 0.01, 1e-4);
}

TEST(PropagateChain, SizeMismatchThrows) {
  std::vector<stats::GridPdf> stages = {normal_grid(0.1, 0.01)};
  const std::vector<double> wires = {0.1, 0.2};
  EXPECT_THROW(propagate_chain(stages, wires), std::invalid_argument);
}

TEST(PropagateChain, EmptyChainIsEmpty) {
  EXPECT_TRUE(propagate_chain({}).empty());
}

TEST(PropagateChain, SkewnessDecaysAlongChain) {
  // CLT check (paper Section 3.4): propagating identical skewed
  // stages drives the cumulative skewness down as O(1/sqrt(n)).
  const auto skewed = stats::GridPdf::from_function(
      [](double x) {
        return (x > 0.0) ? std::exp(-x) : 0.0;  // exponential, skew 2
      },
      -0.5, 20.0, 2048);
  std::vector<stats::GridPdf> stages(9, skewed);
  const std::vector<stats::GridPdf> cum = propagate_chain(stages);
  const double s1 = cum[0].skewness();
  const double s4 = cum[3].skewness();
  const double s9 = cum[8].skewness();
  EXPECT_NEAR(s1, 2.0, 0.05);
  EXPECT_NEAR(s4, s1 / 2.0, 0.05);   // n = 4 -> skew / sqrt(4)
  EXPECT_NEAR(s9, s1 / 3.0, 0.05);   // n = 9 -> skew / sqrt(9)
}

}  // namespace
}  // namespace lvf2::ssta
