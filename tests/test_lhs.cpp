// Tests of the Latin Hypercube Sampler: the stratification invariant
// (exactly one point per stratum per dimension), marginal statistics,
// and determinism.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/lhs.h"

#include "test_util.h"

namespace lvf2::stats {
namespace {

TEST(LhsUniform, ShapeAndRange) {
  Rng rng(test::test_seed(1));
  const LhsDesign d = lhs_uniform(100, 3, rng);
  EXPECT_EQ(d.samples, 100u);
  EXPECT_EQ(d.dimensions, 3u);
  EXPECT_EQ(d.values.size(), 300u);
  for (double v : d.values) {
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(LhsUniform, StratificationInvariant) {
  // Every dimension must place exactly one point in each of the n
  // strata [k/n, (k+1)/n).
  Rng rng(test::test_seed(2));
  const std::size_t n = 64;
  const LhsDesign d = lhs_uniform(n, 4, rng);
  for (std::size_t dim = 0; dim < 4; ++dim) {
    std::vector<int> counts(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = d.at(i, dim);
      ++counts[static_cast<std::size_t>(v * n)];
    }
    for (int c : counts) EXPECT_EQ(c, 1) << "dim " << dim;
  }
}

TEST(LhsUniform, VarianceBeatsPlainMonteCarlo) {
  // The stratified mean estimate has (much) lower variance: the mean
  // of each LHS dimension is nearly exactly 1/2.
  Rng rng(test::test_seed(3));
  const std::size_t n = 1000;
  const LhsDesign d = lhs_uniform(n, 1, rng);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += d.at(i, 0);
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, 0.5, 0.001);  // plain MC would need ~0.01 tolerance
}

TEST(LhsNormal, MarginalsAreStandardNormal) {
  Rng rng(test::test_seed(4));
  const LhsDesign d = lhs_normal(20000, 2, rng);
  for (std::size_t dim = 0; dim < 2; ++dim) {
    std::vector<double> xs(d.samples);
    for (std::size_t i = 0; i < d.samples; ++i) xs[i] = d.at(i, dim);
    const Moments m = compute_moments(xs);
    EXPECT_NEAR(m.mean, 0.0, 0.005);
    EXPECT_NEAR(m.stddev, 1.0, 0.01);
    EXPECT_NEAR(m.skewness, 0.0, 0.02);
    EXPECT_NEAR(m.kurtosis, 3.0, 0.1);
  }
}

TEST(LhsNormal, AllValuesFinite) {
  Rng rng(test::test_seed(5));
  const LhsDesign d = lhs_normal(4096, 7, rng);
  for (double v : d.values) ASSERT_TRUE(std::isfinite(v));
}

TEST(Lhs, DeterministicPerSeed) {
  Rng a(77), b(77);
  const LhsDesign da = lhs_normal(128, 3, a);
  const LhsDesign db = lhs_normal(128, 3, b);
  EXPECT_EQ(da.values, db.values);
}

TEST(Lhs, DimensionsIndependentlyPermuted) {
  Rng rng(test::test_seed(6));
  const std::size_t n = 512;
  const LhsDesign d = lhs_uniform(n, 2, rng);
  // Rank correlation between the two dimensions should be near 0.
  double corr = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    corr += (d.at(i, 0) - 0.5) * (d.at(i, 1) - 0.5);
  }
  corr /= static_cast<double>(n) / 12.0;
  EXPECT_NEAR(corr, 0.0, 0.15);
}

TEST(Lhs, EmptyDesigns) {
  Rng rng(test::test_seed(7));
  EXPECT_EQ(lhs_uniform(0, 3, rng).values.size(), 0u);
  EXPECT_EQ(lhs_uniform(3, 0, rng).values.size(), 0u);
}

}  // namespace
}  // namespace lvf2::stats
