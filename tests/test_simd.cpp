// Batch-vs-scalar agreement suite for the dispatch kernels (src/simd).
//
// Contract under test (simd.h, DESIGN.md decision 21):
//  - the scalar tier is BITWISE identical to looping the per-sample
//    stats:: functions in index order — it is the tier the
//    zero-tolerance golden-manifest gate runs under;
//  - the SIMD tiers (SSE2, AVX2+FMA) agree with the scalar tier to a
//    small documented ULP bound per kernel, with an absolute-error
//    escape hatch where the result crosses zero (log Phi at the
//    right tail rounds to -0.0 in one formulation and to -5.7e-17 in
//    another: astronomically many ULP, physically nothing);
//  - edge inputs (signed zero, denormals, infinities, NaN, deep
//    tails) neither trap nor poison neighboring lanes;
//  - every vector width's remainder loop (n % lanes != 0) matches the
//    full-width path.
//
// The bounds asserted here are roughly 2x the worst deviation
// measured on the current kernels (see the table in DESIGN.md), so
// they fail on a real regression, not on compiler jitter.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simd/simd.h"
#include "stats/special_functions.h"

namespace lvf2 {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormal = 5e-324;

// Distance in representable doubles, treating +0/-0 as equal and any
// NaN pair as equal. Infinite results must match exactly.
std::uint64_t ulp_diff(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  if (a == b) return 0;  // also catches +0 vs -0 and equal infinities
  if (std::isinf(a) || std::isinf(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  auto key = [](double v) {
    std::int64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return (bits < 0) ? std::numeric_limits<std::int64_t>::min() - bits
                      : bits;
  };
  const std::int64_t ka = key(a);
  const std::int64_t kb = key(b);
  return (ka > kb) ? static_cast<std::uint64_t>(ka - kb)
                   : static_cast<std::uint64_t>(kb - ka);
}

// Every tier the build machine can actually run.
std::vector<simd::Tier> reachable_tiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    if (simd::tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

class TierGuard {
 public:
  explicit TierGuard(simd::Tier tier)
      : prev_(simd::set_tier_for_testing(tier)) {}
  ~TierGuard() { simd::set_tier_for_testing(prev_); }

 private:
  simd::Tier prev_;
};

// Edge inputs every kernel must survive, followed by a dense sweep
// through all the band seams of the normal primitives (|x| = 3.5 and
// 36.5 for log Phi, the erfc split points, the deep tails).
std::vector<double> edge_and_sweep_inputs() {
  std::vector<double> x = {
      +0.0,       -0.0,        kDenormal,  -kDenormal, 1e-308,
      -1e-308,    kInf,        -kInf,      kNan,       1e300,
      -1e300,     -37.9,       -36.5001,   -36.5,      -36.4999,
      -8.25,      -3.5001,     -3.5,       -3.4999,    3.4999,
      3.5,        3.5001,      8.2944,     37.9,       -745.0,
      745.0,
  };
  for (int i = 0; i <= 4000; ++i) {
    x.push_back(-40.0 + 80.0 * static_cast<double>(i) / 4000.0);
  }
  return x;
}

// Per-kernel deviation bound of the SIMD tiers vs the scalar tier:
// results agree to `ulp` ULP, or to `abs` absolute where the ULP
// measure explodes because the comparison straddles zero.
struct Bound {
  std::uint64_t ulp = 0;
  double abs = 0.0;
};

void expect_close(const std::string& what, simd::Tier tier, double got,
                  double want, const Bound& bound, double input) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got))
        << what << " on " << simd::tier_name(tier) << " at x=" << input
        << ": expected NaN, got " << got;
    return;
  }
  const std::uint64_t u = ulp_diff(got, want);
  if (u <= bound.ulp) return;
  if (std::fabs(got - want) <= bound.abs) return;
  ADD_FAILURE() << what << " on " << simd::tier_name(tier)
                << " at x=" << input << ": got " << got << " want " << want
                << " (" << u << " ULP, bound " << bound.ulp << ")";
}

// ---- scalar tier: bitwise vs the per-sample loop -------------------

template <typename BatchFn, typename ScalarFn>
void check_scalar_bitwise(const std::string& what, BatchFn batch,
                          ScalarFn per_sample) {
  const TierGuard guard(simd::Tier::kScalar);
  const std::vector<double> x = edge_and_sweep_inputs();
  std::vector<double> out(x.size(), 0.125);
  batch(std::span<const double>(x), std::span<double>(out));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double want = per_sample(x[i]);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(out[i])) << what << " at x=" << x[i];
      continue;
    }
    std::uint64_t got_bits, want_bits;
    std::memcpy(&got_bits, &out[i], sizeof(got_bits));
    std::memcpy(&want_bits, &want, sizeof(want_bits));
    EXPECT_EQ(got_bits, want_bits)
        << what << " at x=" << x[i] << ": got " << out[i] << " want "
        << want;
  }
}

TEST(SimdScalarTier, NormalPdfBitwise) {
  check_scalar_bitwise(
      "normal_pdf",
      [](auto x, auto out) { simd::normal_pdf(x, out); },
      [](double v) { return stats::normal_pdf(v); });
}

TEST(SimdScalarTier, NormalCdfBitwise) {
  check_scalar_bitwise(
      "normal_cdf",
      [](auto x, auto out) { simd::normal_cdf(x, out); },
      [](double v) { return stats::normal_cdf(v); });
}

TEST(SimdScalarTier, NormalLogCdfBitwise) {
  check_scalar_bitwise(
      "normal_log_cdf",
      [](auto x, auto out) { simd::normal_log_cdf(x, out); },
      [](double v) { return stats::normal_log_cdf(v); });
}

TEST(SimdScalarTier, ExpBitwise) {
  check_scalar_bitwise(
      "exp", [](auto x, auto out) { simd::exp(x, out); },
      [](double v) { return std::exp(v); });
}

TEST(SimdScalarTier, OwensTBitwise) {
  for (double a : {-3.0, -0.7, 0.0, 0.31, 1.0, 2.3, 40.0}) {
    check_scalar_bitwise(
        "owens_t(a=" + std::to_string(a) + ")",
        [a](auto x, auto out) { simd::owens_t(x, a, out); },
        [a](double v) { return stats::owens_t(v, a); });
  }
}

TEST(SimdScalarTier, SnKernelsBitwise) {
  const double xi = 0.1, omega = 0.02, alpha = 2.5;
  check_scalar_bitwise(
      "sn_log_pdf",
      [&](auto x, auto out) { simd::sn_log_pdf(xi, omega, alpha, x, out); },
      [&](double v) {
        const double z = (v - xi) / omega;
        return std::log(2.0 / omega) - 0.5 * z * z -
               std::log(stats::kSqrt2Pi) + stats::normal_log_cdf(alpha * z);
      });
  check_scalar_bitwise(
      "sn_pdf",
      [&](auto x, auto out) { simd::sn_pdf(xi, omega, alpha, x, out); },
      [&](double v) {
        const double z = (v - xi) / omega;
        return 2.0 / omega * stats::normal_pdf(z) *
               stats::normal_cdf(alpha * z);
      });
  check_scalar_bitwise(
      "sn_cdf",
      [&](auto x, auto out) { simd::sn_cdf(xi, omega, alpha, x, out); },
      [&](double v) {
        const double z = (v - xi) / omega;
        const double value =
            stats::normal_cdf(z) - 2.0 * stats::owens_t(z, alpha);
        const double lo = value < 0.0 ? 0.0 : value;
        return lo > 1.0 ? 1.0 : lo;
      });
}

TEST(SimdScalarTier, EsnAndNormalMuSigmaBitwise) {
  const double xi = -0.3, omega = 1.7, alpha = -1.2, tau = 0.8;
  check_scalar_bitwise(
      "esn_log_pdf",
      [&](auto x, auto out) {
        simd::esn_log_pdf(xi, omega, alpha, tau, x, out);
      },
      [&](double v) {
        const double z = (v - xi) / omega;
        const double arg =
            tau * std::sqrt(1.0 + alpha * alpha) + alpha * z;
        return -0.5 * z * z - std::log(stats::kSqrt2Pi * omega) +
               stats::normal_log_cdf(arg) - stats::normal_log_cdf(tau);
      });
  check_scalar_bitwise(
      "normal_mu_sigma_log_pdf",
      [&](auto x, auto out) {
        simd::normal_mu_sigma_log_pdf(0.25, 1.5, x, out);
      },
      [&](double v) {
        const double z = (v - 0.25) / 1.5;
        return -0.5 * z * z - std::log(1.5 * stats::kSqrt2Pi);
      });
}

TEST(SimdScalarTier, QuantileBitwise) {
  const TierGuard guard(simd::Tier::kScalar);
  std::vector<double> p;
  for (int i = 0; i <= 2000; ++i) {
    p.push_back(static_cast<double>(i) / 2000.0);
  }
  p.insert(p.end(), {1e-300, 1e-15, 0.5, 1.0 - 1e-16, kNan});
  std::vector<double> out(p.size());
  simd::normal_quantile(p, out);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double want = stats::normal_quantile(p[i]);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(out[i])) << "p=" << p[i];
      continue;
    }
    EXPECT_EQ(ulp_diff(out[i], want), 0u) << "p=" << p[i];
  }
}

TEST(SimdScalarTier, EmResponsibilitiesBitwise) {
  const TierGuard guard(simd::Tier::kScalar);
  const std::vector<double> lpa = edge_and_sweep_inputs();
  std::vector<double> lpb(lpa.size());
  for (std::size_t i = 0; i < lpa.size(); ++i) lpb[i] = -0.5 * lpa[i] - 1.0;
  std::vector<double> resp(lpa.size()), lse(lpa.size());
  simd::em_responsibilities(std::log(0.4), std::log(0.6), lpa, lpb, resp,
                            lse);
  for (std::size_t i = 0; i < lpa.size(); ++i) {
    const double a = std::log(0.4) + lpa[i];
    const double b = std::log(0.6) + lpb[i];
    const double l = stats::log_sum_exp(a, b);
    if (std::isnan(l)) {
      EXPECT_TRUE(std::isnan(lse[i]));
      continue;
    }
    EXPECT_EQ(ulp_diff(lse[i], l), 0u) << "lpa=" << lpa[i];
    EXPECT_EQ(ulp_diff(resp[i], std::exp(b - l)), 0u) << "lpa=" << lpa[i];
  }
}

TEST(SimdScalarTier, SnWeightedNllBitwiseVsBufferAndReduce) {
  const TierGuard guard(simd::Tier::kScalar);
  const double xi = 0.05, omega = 0.01, alpha = -1.8;
  std::vector<double> x, w;
  for (int i = 0; i < 1237; ++i) {
    x.push_back(0.05 + 0.01 * std::sin(0.37 * i) * 3.0);
    // Include zero and negative weights: both must be skipped.
    w.push_back((i % 7 == 0) ? 0.0 : ((i % 11 == 0) ? -0.25 : 1e-3 * i));
  }
  // The historical formulation: fill a log-pdf buffer, then reduce.
  std::vector<double> lp(x.size());
  simd::sn_log_pdf(xi, omega, alpha, x, lp);
  double want = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (w[i] > 0.0) want -= w[i] * lp[i];
  }
  const double got = simd::sn_weighted_nll(xi, omega, alpha, x, w);
  EXPECT_EQ(ulp_diff(got, want), 0u) << got << " vs " << want;
}

// ---- SIMD tiers: documented ULP bounds vs the scalar tier ----------

std::vector<simd::Tier> vector_tiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier t : reachable_tiers()) {
    if (t != simd::Tier::kScalar) tiers.push_back(t);
  }
  return tiers;
}

template <typename BatchFn>
void check_simd_close(const std::string& what, BatchFn batch,
                      const Bound& bound) {
  const std::vector<double> x = edge_and_sweep_inputs();
  std::vector<double> want(x.size());
  {
    const TierGuard guard(simd::Tier::kScalar);
    batch(std::span<const double>(x), std::span<double>(want));
  }
  for (simd::Tier tier : vector_tiers()) {
    const TierGuard guard(tier);
    std::vector<double> out(x.size(), 0.125);
    batch(std::span<const double>(x), std::span<double>(out));
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect_close(what, tier, out[i], want[i], bound, x[i]);
    }
  }
}

TEST(SimdVectorTiers, NormalPdfWithinBounds) {
  check_simd_close(
      "normal_pdf", [](auto x, auto out) { simd::normal_pdf(x, out); },
      Bound{4, 0.0});
}

TEST(SimdVectorTiers, NormalCdfWithinBounds) {
  check_simd_close(
      "normal_cdf", [](auto x, auto out) { simd::normal_cdf(x, out); },
      Bound{6, 0.0});
}

TEST(SimdVectorTiers, NormalLogCdfWithinBounds) {
  // The ULP bound holds where |log Phi| is resolvable; at the far
  // right tail the scalar path rounds to -0.0 while the vector path
  // keeps the true O(1e-17) magnitude, so an absolute escape of
  // 1e-12 covers the zero crossing (measured worst: 1.1e-13).
  check_simd_close(
      "normal_log_cdf",
      [](auto x, auto out) { simd::normal_log_cdf(x, out); },
      Bound{24, 1e-12});
}

TEST(SimdVectorTiers, NormalQuantileWithinBounds) {
  std::vector<double> p;
  for (int i = 0; i <= 2000; ++i) {
    p.push_back(static_cast<double>(i) / 2000.0);
  }
  p.insert(p.end(), {1e-300, 1e-15, 1.0 - 1e-16, kNan});
  std::vector<double> want(p.size());
  {
    const TierGuard guard(simd::Tier::kScalar);
    simd::normal_quantile(p, want);
  }
  for (simd::Tier tier : vector_tiers()) {
    const TierGuard guard(tier);
    std::vector<double> out(p.size());
    simd::normal_quantile(p, out);
    for (std::size_t i = 0; i < p.size(); ++i) {
      // Near the median the quantile passes through zero, where ULP
      // distance is meaningless; the absolute bound (measured worst
      // 4.9e-15) is the meaningful criterion across the whole range.
      expect_close("normal_quantile", tier, out[i], want[i],
                   Bound{8, 1e-13}, p[i]);
    }
  }
}

TEST(SimdVectorTiers, ExpWithinBounds) {
  check_simd_close(
      "exp", [](auto x, auto out) { simd::exp(x, out); }, Bound{2, 0.0});
}

TEST(SimdVectorTiers, OwensTWithinBounds) {
  for (double a : {-3.0, -0.7, 0.0, 0.31, 1.0, 2.3, 40.0}) {
    check_simd_close(
        "owens_t(a=" + std::to_string(a) + ")",
        [a](auto x, auto out) { simd::owens_t(x, a, out); },
        Bound{8, 1e-18});
  }
}

TEST(SimdVectorTiers, SkewNormalKernelsWithinBounds) {
  const double xi = 0.1, omega = 0.02, alpha = 2.5;
  check_simd_close(
      "sn_log_pdf",
      [&](auto x, auto out) { simd::sn_log_pdf(xi, omega, alpha, x, out); },
      Bound{12, 1e-11});
  check_simd_close(
      "sn_pdf",
      [&](auto x, auto out) { simd::sn_pdf(xi, omega, alpha, x, out); },
      Bound{8, 0.0});
  check_simd_close(
      "sn_cdf",
      [&](auto x, auto out) { simd::sn_cdf(xi, omega, alpha, x, out); },
      Bound{6, 1e-17});
}

TEST(SimdVectorTiers, EsnAndNormalMuSigmaWithinBounds) {
  const double xi = -0.3, omega = 1.7, alpha = -1.2, tau = 0.8;
  check_simd_close(
      "esn_log_pdf",
      [&](auto x, auto out) {
        simd::esn_log_pdf(xi, omega, alpha, tau, x, out);
      },
      Bound{12, 1e-11});
  // esn_pdf = exp(esn_log_pdf): a k-ULP error in the log-pdf becomes
  // ~k * |log pdf| ULP of relative error in the pdf, and |log pdf|
  // reaches ~550 at the sweep's deep-tail points (pdf ~ 1e-241), so
  // no fixed small ULP bound exists for the composed kernel. Measured
  // worst: 28 ULP in the body (|log pdf| < 50), 1009 ULP at the
  // extreme tail; 2048 fails on a real regression, not on rounding.
  check_simd_close(
      "esn_pdf",
      [&](auto x, auto out) {
        simd::esn_pdf(xi, omega, alpha, tau, x, out);
      },
      Bound{2048, 0.0});
  check_simd_close(
      "normal_mu_sigma_log_pdf",
      [&](auto x, auto out) {
        simd::normal_mu_sigma_log_pdf(0.25, 1.5, x, out);
      },
      Bound{8, 1e-12});
}

TEST(SimdVectorTiers, EmResponsibilitiesWithinBounds) {
  const std::vector<double> lpa = edge_and_sweep_inputs();
  std::vector<double> lpb(lpa.size());
  for (std::size_t i = 0; i < lpa.size(); ++i) lpb[i] = -0.5 * lpa[i] - 1.0;
  std::vector<double> resp_ref(lpa.size()), lse_ref(lpa.size());
  {
    const TierGuard guard(simd::Tier::kScalar);
    simd::em_responsibilities(std::log(0.4), std::log(0.6), lpa, lpb,
                              resp_ref, lse_ref);
  }
  for (simd::Tier tier : vector_tiers()) {
    const TierGuard guard(tier);
    std::vector<double> resp(lpa.size()), lse(lpa.size());
    simd::em_responsibilities(std::log(0.4), std::log(0.6), lpa, lpb, resp,
                              lse);
    for (std::size_t i = 0; i < lpa.size(); ++i) {
      // The E-step combine stacks exp/log1p; responsibilities are
      // probabilities so the documented bound is looser (measured
      // worst 64 ULP at extreme log-density gaps).
      expect_close("em_resp", tier, resp[i], resp_ref[i], Bound{128, 0.0},
                   lpa[i]);
      expect_close("em_lse", tier, lse[i], lse_ref[i], Bound{128, 1e-12},
                   lpa[i]);
    }
  }
}

TEST(SimdVectorTiers, AxpyBitwiseOnEveryTier) {
  // axpy is documented never-fused: bitwise across tiers.
  const std::vector<double> x = edge_and_sweep_inputs();
  std::vector<double> want(x.size(), 0.75);
  {
    const TierGuard guard(simd::Tier::kScalar);
    simd::axpy(1.25, x, want);
  }
  for (simd::Tier tier : vector_tiers()) {
    const TierGuard guard(tier);
    std::vector<double> y(x.size(), 0.75);
    simd::axpy(1.25, x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(ulp_diff(y[i], want[i]), 0u)
          << simd::tier_name(tier) << " at x=" << x[i];
    }
  }
}

TEST(SimdVectorTiers, SnWeightedNllCloseToScalar) {
  const double xi = 0.05, omega = 0.01, alpha = -1.8;
  std::vector<double> x, w;
  for (int i = 0; i < 1237; ++i) {
    x.push_back(0.05 + 0.01 * std::sin(0.37 * i) * 3.0);
    w.push_back((i % 7 == 0) ? 0.0 : 1e-3 * i);
  }
  double want;
  {
    const TierGuard guard(simd::Tier::kScalar);
    want = simd::sn_weighted_nll(xi, omega, alpha, x, w);
  }
  for (simd::Tier tier : vector_tiers()) {
    const TierGuard guard(tier);
    const double got = simd::sn_weighted_nll(xi, omega, alpha, x, w);
    // Different reduction tree (per-lane accumulators), so only a
    // relative bound is meaningful.
    EXPECT_NEAR(got, want, 1e-9 * std::fabs(want))
        << simd::tier_name(tier);
  }
}

// ---- structural properties -----------------------------------------

TEST(SimdStructural, RemainderSizesCoverEveryElement) {
  // n = 0..9 exercises every remainder count of both vector widths.
  // Each element must be written (the 777 sentinel would be ~1e18 ULP
  // off) and agree with the scalar tier within the kernel's bound,
  // whether it went through the vector body or the remainder loop;
  // one-past-the-span must stay untouched.
  for (simd::Tier tier : reachable_tiers()) {
    const TierGuard guard(tier);
    for (std::size_t n = 0; n <= 9; ++n) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = -4.0 + static_cast<double>(i);
      }
      std::vector<double> out(n + 1, 777.0);
      simd::normal_cdf(std::span<const double>(x),
                       std::span<double>(out.data(), n));
      for (std::size_t i = 0; i < n; ++i) {
        expect_close("normal_cdf remainder n=" + std::to_string(n), tier,
                     out[i], stats::normal_cdf(x[i]), Bound{6, 0.0}, x[i]);
      }
      EXPECT_EQ(out[n], 777.0) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdStructural, NanLanesDoNotPoisonNeighbors) {
  for (simd::Tier tier : reachable_tiers()) {
    const TierGuard guard(tier);
    std::vector<double> x = {-1.0, kNan, 1.0, kNan, -37.5, 2.0, kNan, 0.5};
    std::vector<double> clean = {-1.0, -1.0, 1.0, 1.0, -37.5, 2.0, 2.0,
                                 0.5};
    std::vector<double> out(x.size()), ref(x.size());
    simd::normal_log_cdf(x, out);
    simd::normal_log_cdf(clean, ref);
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (std::isnan(x[i])) {
        EXPECT_TRUE(std::isnan(out[i]))
            << simd::tier_name(tier) << " lane " << i;
      } else {
        EXPECT_EQ(ulp_diff(out[i], ref[i]), 0u)
            << simd::tier_name(tier) << " lane " << i;
      }
    }
  }
}

TEST(SimdStructural, InPlaceUnaryKernels) {
  for (simd::Tier tier : reachable_tiers()) {
    const TierGuard guard(tier);
    std::vector<double> x = {-3.0, -0.5, 0.0, 0.5, 3.0, 8.0, -8.0};
    std::vector<double> expected(x.size());
    simd::normal_cdf(x, expected);
    std::vector<double> in_place = x;
    simd::normal_cdf(in_place, in_place);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(ulp_diff(in_place[i], expected[i]), 0u)
          << simd::tier_name(tier) << " i=" << i;
    }
  }
}

TEST(SimdStructural, SetTierForTestingRestores) {
  const simd::Tier ambient = simd::active_tier();
  {
    const TierGuard guard(simd::Tier::kScalar);
    EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  }
  EXPECT_EQ(simd::active_tier(), ambient);
}

}  // namespace
}  // namespace lvf2
