// Tests of the EM support layer: binned-likelihood data compression.

#include <vector>

#include <gtest/gtest.h>

#include "core/em.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

#include "test_util.h"

namespace lvf2::core {
namespace {

TEST(WeightedData, RawModeKeepsAllSamples) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  FitOptions options;
  options.likelihood_bins = 0;
  const WeightedData d = make_weighted_data(xs, options);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d.total_weight, 3.0);
  EXPECT_EQ(d.x, xs);
  for (double w : d.w) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(WeightedData, SmallSamplesStayRawEvenWhenBinningRequested) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  FitOptions options;
  options.likelihood_bins = 512;
  const WeightedData d = make_weighted_data(xs, options);
  EXPECT_EQ(d.size(), 3u);
}

TEST(WeightedData, BinnedModePreservesTotalWeight) {
  stats::Rng rng(test::test_seed(1));
  const std::vector<double> xs = rng.normal_vector(50000);
  FitOptions options;
  options.likelihood_bins = 256;
  const WeightedData d = make_weighted_data(xs, options);
  EXPECT_LE(d.size(), 256u);
  EXPECT_DOUBLE_EQ(d.total_weight, 50000.0);
  double sum = 0.0;
  for (double w : d.w) {
    EXPECT_GT(w, 0.0);  // empty bins dropped
    sum += w;
  }
  EXPECT_DOUBLE_EQ(sum, 50000.0);
}

TEST(WeightedData, BinnedMomentsMatchRawMoments) {
  stats::Rng rng(test::test_seed(2));
  std::vector<double> xs(80000);
  for (auto& x : xs) x = rng.normal(3.0, 0.2);
  FitOptions options;
  options.likelihood_bins = 512;
  const WeightedData d = make_weighted_data(xs, options);
  const stats::Moments raw = stats::compute_moments(xs);
  const stats::Moments binned = stats::compute_weighted_moments(d.x, d.w);
  EXPECT_NEAR(binned.mean, raw.mean, 1e-4);
  EXPECT_NEAR(binned.stddev, raw.stddev, 1e-3);
  EXPECT_NEAR(binned.skewness, raw.skewness, 0.01);
}

}  // namespace
}  // namespace lvf2::core
