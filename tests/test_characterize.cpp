// Tests of the characterization engine: grids, determinism, and the
// fidelity of the stored LVF / LVF^2 parameters against the golden
// Monte-Carlo data.

#include <gtest/gtest.h>

#include <cmath>

#include "cells/characterize.h"
#include "stats/descriptive.h"

namespace lvf2::cells {
namespace {

CharacterizeOptions fast_options() {
  CharacterizeOptions options;
  options.grid = SlewLoadGrid::reduced(4);  // 2x2
  options.mc_samples = 4000;
  return options;
}

TEST(SlewLoadGrid, PaperGridIs8x8Ascending) {
  const SlewLoadGrid g = SlewLoadGrid::paper_grid();
  ASSERT_EQ(g.cols(), 8u);
  ASSERT_EQ(g.rows(), 8u);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_GT(g.slews_ns[i], g.slews_ns[i - 1]);
    EXPECT_GT(g.loads_pf[i], g.loads_pf[i - 1]);
  }
  EXPECT_DOUBLE_EQ(g.slews_ns.front(), 0.0023);
  EXPECT_DOUBLE_EQ(g.loads_pf.back(), 0.89830);
}

TEST(SlewLoadGrid, ReducedSubsamples) {
  const SlewLoadGrid g = SlewLoadGrid::reduced(2);
  EXPECT_EQ(g.cols(), 4u);
  EXPECT_EQ(g.rows(), 4u);
  EXPECT_DOUBLE_EQ(g.slews_ns.front(),
                   SlewLoadGrid::paper_grid().slews_ns.front());
  EXPECT_THROW(SlewLoadGrid::reduced(0), std::invalid_argument);
}

TEST(Characterizer, SeedsAreDistinctAndStable) {
  const Characterizer ch(spice::ProcessCorner{}, fast_options());
  const auto s1 = ch.condition_seed("INV_X1", "A->Y (rise)", 0, 0);
  const auto s2 = ch.condition_seed("INV_X1", "A->Y (rise)", 0, 1);
  const auto s3 = ch.condition_seed("INV_X1", "A->Y (fall)", 0, 0);
  const auto s4 = ch.condition_seed("INV_X2", "A->Y (rise)", 0, 0);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_NE(s1, s4);
  EXPECT_EQ(s1, ch.condition_seed("INV_X1", "A->Y (rise)", 0, 0));
}

TEST(Characterizer, ArcCharacterizationShape) {
  const Cell inv = build_cell(CellFamily::kInv, 1, 1.0);
  const Characterizer ch(spice::ProcessCorner{}, fast_options());
  const ArcCharacterization arc = ch.characterize_arc(inv, inv.arcs[0]);
  EXPECT_EQ(arc.cell_name, "INV_X1");
  EXPECT_EQ(arc.entries.size(), arc.grid.rows() * arc.grid.cols());
  for (const ConditionCharacterization& e : arc.entries) {
    EXPECT_GT(e.nominal_delay_ns, 0.0);
    EXPECT_GT(e.nominal_transition_ns, 0.0);
    EXPECT_GT(e.lvf_delay.stddev, 0.0);
    EXPECT_GE(e.lvf2_delay.lambda, 0.0);
    EXPECT_LE(e.lvf2_delay.lambda, 1.0);
  }
}

TEST(Characterizer, LvfMomentsMatchGoldenSamples) {
  const Cell inv = build_cell(CellFamily::kInv, 1, 1.0);
  const Characterizer ch(spice::ProcessCorner{}, fast_options());
  const ArcCharacterization arc = ch.characterize_arc(inv, inv.arcs[0]);
  const spice::McResult golden = ch.golden_samples(inv, inv.arcs[0], 1, 1);
  const stats::Moments m = stats::compute_moments(golden.delay_ns);
  const ConditionCharacterization& e = arc.at(1, 1);
  EXPECT_NEAR(e.lvf_delay.mean, m.mean, 1e-9);
  EXPECT_NEAR(e.lvf_delay.stddev, m.stddev, 1e-9);
}

TEST(Characterizer, DeterministicAcrossRuns) {
  const Cell nand = build_cell(CellFamily::kNand, 2, 1.0);
  const Characterizer ch(spice::ProcessCorner{}, fast_options());
  const ArcCharacterization a = ch.characterize_arc(nand, nand.arcs[0]);
  const ArcCharacterization b = ch.characterize_arc(nand, nand.arcs[0]);
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.entries[i].lvf_delay.mean,
                     b.entries[i].lvf_delay.mean);
    EXPECT_DOUBLE_EQ(a.entries[i].lvf2_delay.lambda,
                     b.entries[i].lvf2_delay.lambda);
  }
}

TEST(Characterizer, NominalDelayMonotoneInLoad) {
  const Cell inv = build_cell(CellFamily::kInv, 1, 1.0);
  CharacterizeOptions options = fast_options();
  options.grid = SlewLoadGrid::reduced(2);  // 4x4
  const Characterizer ch(spice::ProcessCorner{}, options);
  const ArcCharacterization arc = ch.characterize_arc(inv, inv.arcs[0]);
  for (std::size_t si = 0; si < arc.grid.cols(); ++si) {
    for (std::size_t li = 1; li < arc.grid.rows(); ++li) {
      EXPECT_GT(arc.at(li, si).nominal_delay_ns,
                arc.at(li - 1, si).nominal_delay_ns)
          << "slew " << si << " load " << li;
    }
  }
}

TEST(Characterizer, SurfacesEmReportsPerEntry) {
  const Cell inv = build_cell(CellFamily::kInv, 1, 1.0);
  const Characterizer ch(spice::ProcessCorner{}, fast_options());
  const ArcCharacterization arc = ch.characterize_arc(inv, inv.arcs[0]);
  for (const ConditionCharacterization& e : arc.entries) {
    // Every entry ran EM (or its fallback): the report must carry a
    // real iteration count unless the fit collapsed immediately.
    EXPECT_TRUE(e.lvf2_delay_report.iterations > 0 ||
                e.lvf2_delay_report.collapsed);
    EXPECT_TRUE(e.lvf2_transition_report.iterations > 0 ||
                e.lvf2_transition_report.collapsed);
    if (e.lvf2_delay_report.converged) {
      EXPECT_TRUE(std::isfinite(e.lvf2_delay_report.log_likelihood));
    }
  }
}

TEST(Characterizer, CellCharacterizationCoversAllArcs) {
  const Cell ha = build_cell(CellFamily::kHalfAdder, 2, 1.0);
  const Characterizer ch(spice::ProcessCorner{}, fast_options());
  const CellCharacterization cc = ch.characterize_cell(ha);
  EXPECT_EQ(cc.arcs.size(), ha.arcs.size());
}

}  // namespace
}  // namespace lvf2::cells
