// SSTA example (paper Section 4.4): per-stage comparison of the four
// statistical timing models along the 16-bit carry adder critical
// path, propagated with block-based SSTA against golden path
// Monte-Carlo — a compact version of the Fig. 5 study, plus the
// graph-based SSTA API on the full adder netlist.
//
// Usage: ./build/examples/ssta_path [bits]

#include <cstdio>
#include <cstdlib>

#include "circuits/adder.h"
#include "ssta/path_analysis.h"
#include "ssta/timing_graph.h"

using namespace lvf2;

int main(int argc, char** argv) {
  circuits::AdderOptions adder_options;
  if (argc > 1) adder_options.bits = std::atoi(argv[1]);

  const spice::ProcessCorner corner =
      spice::ProcessCorner::tt_global_local_mc();
  const ssta::TimingPath path =
      circuits::build_adder_critical_path(adder_options, corner);
  std::printf("critical path: %s, %zu stages, FO4 reference %.4f ns\n",
              path.name.c_str(), path.depth(), ssta::fo4_delay_ns(corner));

  ssta::PathAssessmentOptions options;
  options.mc.samples = 8000;
  const ssta::PathAssessment a = ssta::assess_path(path, corner, options);

  std::printf("\n%-5s %8s | %7s %7s %7s %5s\n", "stage", "FO4", "LVF2",
              "Norm2", "LESN", "LVF");
  for (std::size_t i = 0; i < path.depth(); ++i) {
    std::printf("%-5zu %8.1f | %7.2f %7.2f %7.2f %5.0f\n", i,
                a.fo4_position[i], a.binning_reduction[i][0],
                a.binning_reduction[i][1], a.binning_reduction[i][2],
                a.binning_reduction[i][3]);
  }
  std::printf("\nCLT at work (Section 3.4): the model advantage decays "
              "towards 1x as stages\naccumulate; golden skewness went "
              "from %+.3f (stage 1) to %+.3f (stage %zu).\n",
              a.golden_skewness[1], a.golden_skewness.back(), path.depth());

  // Graph-based SSTA on the full adder netlist with nominal-delay
  // annotations: worst arrival at the final carry.
  const circuits::Netlist netlist =
      circuits::build_adder_netlist(adder_options);
  const auto annotator =
      [&corner](const circuits::Instance& inst,
                const cells::TimingArc& arc)
      -> std::optional<ssta::EdgeDelay> {
    (void)inst;
    ssta::EdgeDelay d;
    d.constant_ns =
        spice::nominal_stage_times(arc.stage, {0.05, 0.01}, corner).delay_ns;
    return d;
  };
  const ssta::TimingGraph graph = netlist.to_timing_graph(annotator);
  const auto arrivals = graph.compute_arrivals();
  double worst = 0.0;
  std::string worst_net;
  for (ssta::TimingGraph::NodeId n = 0; n < graph.node_count(); ++n) {
    if (arrivals[n].constant_ns > worst) {
      worst = arrivals[n].constant_ns;
      worst_net = graph.node_name(n);
    }
  }
  std::printf("\ngraph SSTA: %zu nets, %zu timing edges; worst nominal "
              "arrival %.4f ns at net '%s'\n",
              graph.node_count(), graph.edge_count(), worst,
              worst_net.c_str());
  return 0;
}
