// Quickstart: the 60-second tour of the library (paper Fig. 1).
//
// 1. Generate a "golden" timing distribution with the Monte-Carlo
//    engine (the SPICE substitute) for one NAND2 arc condition.
// 2. Fit the industry-standard LVF model and the proposed LVF^2
//    model to it.
// 3. Compare speed-binning probabilities (Eq. 1) and the 3-sigma
//    yield of both models against the golden samples.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cells/cell_types.h"
#include "core/binning.h"
#include "core/lvf2_model.h"
#include "core/lvf_model.h"
#include "core/metrics.h"
#include "core/yield.h"
#include "spice/montecarlo.h"

using namespace lvf2;

int main() {
  // --- 1. Golden data: 20k Latin-Hypercube Monte-Carlo samples of
  // the first NAND2 A->Y arc. ---
  const cells::Cell nand2 =
      cells::build_cell(cells::CellFamily::kNand, 2, 1.0);
  const cells::TimingArc& arc = nand2.arcs.front();
  // A condition on the multi-Gaussian diagonal of the 8x8 table
  // (see bench_fig4_pattern).
  const spice::ArcCondition condition{0.0502, 0.00722};
  spice::McConfig mc_config;
  mc_config.samples = 20000;
  mc_config.seed = 1;
  const spice::McResult mc = spice::run_monte_carlo(
      arc.stage, condition, spice::ProcessCorner::tt_global_local_mc(),
      mc_config);
  std::printf("Golden data: %zu MC samples of %s %s at slew=%.3f ns, "
              "load=%.3f pF\n",
              mc.delay_ns.size(), nand2.name.c_str(), arc.label().c_str(),
              condition.slew_ns, condition.load_pf);

  // --- 2. Fit LVF (single skew-normal) and LVF^2 (skew-normal
  // mixture, EM). ---
  const auto lvf = core::LvfModel::fit(mc.delay_ns);
  const auto lvf2 = core::Lvf2Model::fit(mc.delay_ns);
  if (!lvf || !lvf2) {
    std::printf("fit failed\n");
    return 1;
  }
  const core::Lvf2Parameters p = lvf2->parameters();
  std::printf("\nLVF  : mean=%.5f sigma=%.5f skew=%+.3f\n",
              lvf->mean(), lvf->stddev(), lvf->moments().skewness);
  std::printf("LVF2 : lambda=%.3f\n", p.lambda);
  std::printf("  SN1: mean=%.5f sigma=%.5f skew=%+.3f\n", p.theta1.mean,
              p.theta1.stddev, p.theta1.skewness);
  std::printf("  SN2: mean=%.5f sigma=%.5f skew=%+.3f\n", p.theta2.mean,
              p.theta2.stddev, p.theta2.skewness);

  // --- 3. Binning probabilities and yield. ---
  const stats::EmpiricalCdf golden(mc.delay_ns);
  const stats::Moments gm = stats::compute_moments(mc.delay_ns);
  const std::vector<double> boundaries =
      core::sigma_bin_boundaries(gm.mean, gm.stddev);
  const std::vector<double> golden_bins =
      core::bin_probabilities(golden, boundaries);
  const std::vector<double> lvf_bins = core::bin_probabilities(
      [&](double x) { return lvf->cdf(x); }, boundaries);
  const std::vector<double> lvf2_bins = core::bin_probabilities(
      [&](double x) { return lvf2->cdf(x); }, boundaries);

  std::printf("\n%-8s %9s %9s %9s\n", "Bin", "golden", "LVF", "LVF2");
  static const char* kBinNames[] = {"<-3s", "-3..-2s", "-2..-1s", "-1..0s",
                                    "0..1s",  "1..2s",  "2..3s",  ">3s"};
  for (std::size_t i = 0; i < golden_bins.size(); ++i) {
    std::printf("%-8s %9.4f %9.4f %9.4f\n", kBinNames[i], golden_bins[i],
                lvf_bins[i], lvf2_bins[i]);
  }

  const double err_lvf = core::binning_error(lvf_bins, golden_bins);
  const double err_lvf2 = core::binning_error(lvf2_bins, golden_bins);
  std::printf("\nbinning error: LVF %.5f, LVF2 %.5f -> error reduction %.2fx\n",
              err_lvf, err_lvf2, core::error_reduction(err_lvf, err_lvf2));
  std::printf("3-sigma yield: golden %.5f, LVF %.5f, LVF2 %.5f\n",
              core::three_sigma_yield(golden),
              core::three_sigma_yield(*lvf, golden),
              core::three_sigma_yield(*lvf2, golden));
  return 0;
}
