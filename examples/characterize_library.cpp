// Library characterization example: runs the Monte-Carlo
// characterization of a few standard cells over a slew/load grid,
// writes a Liberty file carrying both the LVF and the LVF^2
// attributes (paper Section 3.3), writes an LVF-only variant, then
// reads both back to demonstrate backward compatibility (Eq. 10):
// an LVF^2-capable reader sees the plain-LVF library as lambda = 0
// mixtures identical to the LVF skew-normals.
//
// Usage: ./build/examples/characterize_library [output_dir [samples [stride]]]
// (samples/stride shrink the run for gates like scripts/check.sh
// --cache, which times a cold vs a warm cached run of this binary)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cells/characterize.h"
#include "liberty/lvf_tables.h"
#include "liberty/parser.h"
#include "liberty/writer.h"

using namespace lvf2;

int main(int argc, char** argv) {
  const std::string out_dir = (argc > 1) ? argv[1] : ".";
  const std::size_t samples =
      (argc > 2) ? std::strtoull(argv[2], nullptr, 10) : 8000;
  const std::size_t stride =
      (argc > 3) ? std::strtoull(argv[3], nullptr, 10) : 2;

  // Characterize INV, NAND2 and XOR2 on a 4x4 sub-grid (use
  // SlewLoadGrid::paper_grid() and 50000 samples for a full run).
  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::reduced(stride);
  options.mc_samples = samples;
  const cells::Characterizer characterizer(
      spice::ProcessCorner::tt_global_local_mc(), options);

  cells::LibraryCharacterization characterization;
  for (auto [family, inputs] :
       {std::pair{cells::CellFamily::kInv, 1},
        std::pair{cells::CellFamily::kNand, 2},
        std::pair{cells::CellFamily::kXor, 2}}) {
    const cells::Cell cell = cells::build_cell(family, inputs, 1.0);
    std::printf("characterizing %-8s (%zu arcs x %zux%zu conditions, "
                "%zu samples each)...\n",
                cell.name.c_str(), cell.arcs.size(), options.grid.cols(),
                options.grid.rows(), options.mc_samples);
    characterization.cells.push_back(characterizer.characterize_cell(cell));
  }

  // Write the LVF^2 library and an LVF-only variant.
  const std::string lvf2_path = out_dir + "/example_lvf2.lib";
  const std::string lvf_path = out_dir + "/example_lvf_only.lib";
  liberty::WriteOptions write_options;
  write_options.library_name = "lvf2_example";
  liberty::write_file(liberty::build_library(characterization, write_options),
                      lvf2_path);
  write_options.include_lvf2 = false;
  write_options.library_name = "lvf_example";
  liberty::write_file(liberty::build_library(characterization, write_options),
                      lvf_path);
  std::printf("\nwrote %s and %s\n", lvf2_path.c_str(), lvf_path.c_str());

  // Read both back through the LVF^2-capable reader.
  for (const std::string& path : {lvf2_path, lvf_path}) {
    const liberty::Group lib = liberty::parse_file(path);
    const liberty::Group* cell = lib.find_child("cell", "NAND2_X1");
    const liberty::Group* pin = cell ? cell->find_child("pin", "Y") : nullptr;
    const liberty::Group* timing =
        pin ? liberty::find_timing(*pin, "A") : nullptr;
    if (timing == nullptr) {
      std::printf("NAND2_X1 A->Y timing not found in %s\n", path.c_str());
      continue;
    }
    const auto tables = liberty::extract_tables(*timing, "cell_fall");
    if (!tables) continue;
    const core::Lvf2Model model = tables->model_at(1, 1);
    std::printf(
        "\n%s:\n  NAND2_X1 A->Y cell_fall @grid(1,1): has_lvf2=%s "
        "lambda=%.3f\n  model mean=%.5f sigma=%.5f (pure LVF: %s)\n",
        path.c_str(), tables->has_lvf2() ? "yes" : "no",
        model.lambda(), model.mean(), model.stddev(),
        model.is_pure_lvf() ? "yes" : "no");
  }
  std::printf(
      "\nBackward compatibility (paper Eq. 10): the LVF-only library reads\n"
      "as lambda = 0 mixtures — LVF^2 tools consume LVF libraries with no\n"
      "extra effort, and one file can serve both standards at once.\n");
  return 0;
}
