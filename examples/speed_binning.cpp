// Speed binning and pricing example (paper Fig. 2 / Section 2.1).
//
// Chips are sorted into bins by maximum operating frequency; faster
// bins sell higher, chips faster than T_min are considered faulty
// (subthreshold leakage) and chips slower than T_max fail the target.
// The example estimates per-bin volumes, usable yield and expected
// revenue per wafer under the golden distribution and each fitted
// model — showing how model error propagates into money.
//
// Usage: ./build/examples/speed_binning

#include <cstdio>
#include <vector>

#include "core/binning.h"
#include "core/metrics.h"
#include "core/yield.h"
#include "spice/montecarlo.h"
#include "stats/descriptive.h"

using namespace lvf2;

int main() {
  // A bimodal critical-path delay distribution (confrontation-zone
  // arc), standing in for the binning-relevant chip Fmax spread.
  spice::StageElectrical stage;
  stage.pull.stack = 2;
  stage.mechanism_gain = 2.2;
  stage.mechanism_offset = -0.6;
  spice::McConfig cfg;
  cfg.samples = 30000;
  cfg.seed = 7;
  const spice::McResult mc = spice::run_monte_carlo(
      stage, {0.05, 0.02}, spice::ProcessCorner::tt_global_local_mc(), cfg);

  const stats::Moments gm = stats::compute_moments(mc.delay_ns);
  const stats::EmpiricalCdf golden(mc.delay_ns);

  // Bin boundaries at mu + {-3..3} sigma (8 bins); chips below
  // T_min = mu - 3s are faulty-fast, above T_max = mu + 3s fail
  // timing. Prices decay with delay (fast bins sell higher).
  const std::vector<double> boundaries =
      core::sigma_bin_boundaries(gm.mean, gm.stddev);
  const double prices[] = {0.0, 250.0, 220.0, 185.0, 150.0, 120.0,
                           95.0, 0.0};  // faulty / fail ends earn nothing
  constexpr double kChipsPerWafer = 500.0;

  const core::ModelEvaluation eval = core::evaluate_models(mc.delay_ns);
  const std::vector<double> golden_bins =
      core::bin_probabilities(golden, boundaries);

  std::printf("Speed binning with boundaries mu+k*sigma, prices per bin "
              "(USD):\n\n%-10s %9s", "source", "yield");
  for (int b = 0; b < 8; ++b) std::printf("   bin%d", b + 1);
  std::printf("  revenue/wafer\n");

  const auto report = [&](const char* name,
                          const std::vector<double>& bins,
                          double usable_yield) {
    double revenue = 0.0;
    for (int b = 0; b < 8; ++b) revenue += bins[b] * prices[b];
    revenue *= kChipsPerWafer;
    std::printf("%-10s %8.4f ", name, usable_yield);
    for (int b = 0; b < 8; ++b) std::printf(" %6.4f", bins[b]);
    std::printf("  $%10.2f\n", revenue);
    return revenue;
  };

  const double golden_yield =
      golden(boundaries.back()) - golden(boundaries.front());
  const double golden_revenue = report("golden", golden_bins, golden_yield);

  for (const auto& model : eval.models) {
    if (!model) continue;
    const auto cdf = [&model](double x) { return model->cdf(x); };
    const std::vector<double> bins =
        core::bin_probabilities(cdf, boundaries);
    const double usable =
        core::window_yield(cdf, boundaries.front(), boundaries.back());
    report(model->name().c_str(), bins, usable);
  }

  std::printf("\nRevenue misprediction per wafer vs golden "
              "($%0.2f):\n", golden_revenue);
  for (const auto& model : eval.models) {
    if (!model) continue;
    const auto cdf = [&model](double x) { return model->cdf(x); };
    const std::vector<double> bins =
        core::bin_probabilities(cdf, boundaries);
    double revenue = 0.0;
    for (int b = 0; b < 8; ++b) revenue += bins[b] * prices[b];
    revenue *= kChipsPerWafer;
    std::printf("  %-6s %+9.2f  (binning error reduction %6.2fx)\n",
                model->name().c_str(), revenue - golden_revenue,
                eval.reduction_of(model->kind()).binning);
  }
  return 0;
}
