#pragma once
// Shared infrastructure of the reproduction benches: the five
// representative non-Gaussian scenarios (paper Fig. 3 / Table 1),
// simple CLI parsing for scale control, and table / ASCII-plot
// printers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "obs/obs.h"
#include "spice/cellsim.h"
#include "stats/descriptive.h"

namespace lvf2::bench {

/// One representative non-Gaussian scenario: an arc configuration
/// and condition selected from the simulated library (paper Section
/// 4.1, Fig. 3(a)-(e)).
struct Scenario {
  const char* name;
  spice::StageElectrical stage;
  spice::ArcCondition condition;
};

/// The five scenarios of Fig. 3 / Table 1. Stage personalities were
/// selected by scanning the simulated library for the archetypal
/// shapes the paper names:
///  - 2 Peaks: strong mechanism separation, mid regime weight;
///  - Multi-Peaks: both regimes heavily populated and skewed;
///  - Saddle: moderate separation, comparable deviations;
///  - Minor Saddle: one regime dominating (lambda ~ 0.13);
///  - Kurtosis: same-center regimes with different spreads.
inline std::vector<Scenario> paper_scenarios() {
  const spice::ArcCondition cond{0.05, 0.02};
  std::vector<Scenario> out;
  {
    spice::StageElectrical s;
    s.mechanism_gain = 3.2;
    s.mechanism_offset = -0.7;
    out.push_back({"2 Peaks", s, cond});
  }
  {
    spice::StageElectrical s;
    s.mechanism_gain = 2.2;
    s.mechanism_offset = -0.45;
    s.mechanism_width = 1.0;
    out.push_back({"Multi-Peaks", s, cond});
  }
  {
    spice::StageElectrical s;
    s.mechanism_gain = 1.4;
    s.mechanism_offset = -0.5;
    out.push_back({"Saddle", s, cond});
  }
  {
    spice::StageElectrical s;
    s.mechanism_gain = 2.0;
    s.mechanism_offset = -1.6;
    out.push_back({"Minor Saddle", s, cond});
  }
  {
    spice::StageElectrical s;
    s.mechanism_gain = 5.0;
    s.mechanism_base_scale = 0.0;
    s.mechanism_offset = -0.5;
    out.push_back({"Kurtosis", s, cond});
  }
  return out;
}

/// Scale of a bench run: `--full` switches every bench to
/// paper-scale sampling (slower); `--samples N` overrides directly.
struct BenchArgs {
  bool full = false;
  std::size_t samples = 0;  ///< 0 = bench default
  std::uint64_t seed = 2024;

  std::size_t pick_samples(std::size_t fast_default,
                           std::size_t full_default) const {
    if (samples != 0) return samples;
    return full ? full_default : fast_default;
  }
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      args.samples = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "options: --full (paper-scale sampling), --samples N, --seed S\n");
      std::exit(0);
    }
  }
  return args;
}

/// Machine-readable perf record of one bench run. When the
/// LVF2_BENCH_JSON environment variable names a directory, the
/// destructor writes `<dir>/BENCH_<name>.json` with the wall time,
/// every metric set through `set()`, and a snapshot of the process
/// metrics registry (mc.samples, em.iterations, ...). With the env
/// var unset this is inert and the bench output stays text-only.
///
///   {"bench":"table1_scenarios","wall_s":1.23,
///    "metrics":{"samples":20000,"worst_ratio":1.7},
///    "registry":{"counters":{...},"gauges":{...},"histograms":{...}}}
class PerfRecord {
 public:
  explicit PerfRecord(std::string name)
      : name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  PerfRecord(const PerfRecord&) = delete;
  PerfRecord& operator=(const PerfRecord&) = delete;

  /// Records one named result value (rates, errors, sample counts...).
  void set(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  ~PerfRecord() {
    const char* dir = std::getenv("LVF2_BENCH_JSON");
    if (dir == nullptr || dir[0] == '\0') return;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const std::string path =
        std::string(dir) + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\":\"%s\",\"wall_s\":%.6f,\"metrics\":{",
                 name_.c_str(), wall_s);
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\"%s\":%.9g", (i > 0) ? "," : "",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    const std::string registry = obs::MetricsRegistry::instance().to_json();
    std::fprintf(f, "},\"registry\":%s}\n", registry.c_str());
    std::fclose(f);
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Streams one bench evaluation row into the run manifest (no-op
/// when LVF2_MANIFEST is unset): `table` names the bench table,
/// `cell` the scenario / row label. EM health fields stay at their
/// defaults — bench rows attribute accuracy, not fit internals.
inline void manifest_evaluation(const std::string& table,
                                const std::string& cell,
                                const core::ModelEvaluation& eval) {
  obs::with_manifest([&](obs::ManifestRecorder& m) {
    obs::ArcQor row = core::to_arc_qor(eval);
    row.table = table;
    row.cell = cell;
    m.add_arc(std::move(row));
  });
}

/// Horizontal rule sized to a table width.
inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Renders a PDF series as a compact ASCII sparkline histogram.
inline std::string ascii_pdf(const std::vector<double>& density,
                             std::size_t width = 64) {
  static const char* kLevels = " .:-=+*#%@";
  double max_d = 0.0;
  for (double d : density) max_d = std::max(max_d, d);
  std::string out;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t j = i * density.size() / width;
    const int level =
        (max_d > 0.0)
            ? static_cast<int>(9.0 * density[j] / max_d + 0.5)
            : 0;
    out.push_back(kLevels[std::clamp(level, 0, 9)]);
  }
  return out;
}

}  // namespace lvf2::bench
