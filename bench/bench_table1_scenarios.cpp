// Reproduces paper Table 1: "Scenarios Assessment among Models" —
// binning error reduction (Eq. 12, vs the LVF baseline) of LVF^2,
// Norm^2 and LESN on the five representative non-Gaussian scenarios.
//
// Expected shape (paper): LVF^2 is the largest in every row
// (12.65 / 29.65 / 9.62 / 16.27 / 8.63 in the paper); Norm^2 is
// strong on Kurtosis; LESN hovers in low single digits. Absolute
// multiples differ because the golden data comes from the synthetic
// process model (see DESIGN.md).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "spice/montecarlo.h"

using namespace lvf2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(20000, 50000);
  bench::PerfRecord perf("table1_scenarios");
  perf.set("samples_per_scenario", static_cast<double>(samples));
  obs::with_manifest([&](obs::ManifestRecorder& m) {
    m.set_config("bench", "table1_scenarios");
    m.set_config("table1.samples", static_cast<std::uint64_t>(samples));
    m.set_config("table1.seed", args.seed);
  });

  std::printf("Table 1. Scenarios Assessment among Models.\n");
  std::printf("(binning error reduction vs LVF, %zu MC samples/scenario)\n\n",
              samples);
  std::printf("%-14s %10s %10s %10s %6s\n", "Scenario", "LVF2", "Norm2",
              "LESN", "LVF");
  bench::print_rule(56);

  double worst_ratio = 1e30;
  for (const bench::Scenario& scenario : bench::paper_scenarios()) {
    spice::McConfig cfg;
    cfg.samples = samples;
    cfg.seed = args.seed;
    const spice::McResult mc = spice::run_monte_carlo(
        scenario.stage, scenario.condition, spice::ProcessCorner{}, cfg);
    const core::ModelEvaluation eval = core::evaluate_models(mc.delay_ns);
    bench::manifest_evaluation("table1", scenario.name, eval);
    const double r2 = eval.reduction_of(core::ModelKind::kLvf2).binning;
    const double rn = eval.reduction_of(core::ModelKind::kNorm2).binning;
    const double rl = eval.reduction_of(core::ModelKind::kLesn).binning;
    std::printf("%-14s %10.2f %10.2f %10.2f %6.0f\n", scenario.name, r2, rn,
                rl, 1.0);
    worst_ratio = std::min(worst_ratio, r2 / std::max({rn, rl, 1.0}));
  }
  bench::print_rule(56);
  std::printf(
      "LVF2 vs best baseline, worst scenario ratio: %.2fx "
      "(paper: LVF2 leads every row)\n",
      worst_ratio);
  perf.set("worst_ratio", worst_ratio);
  return 0;
}
