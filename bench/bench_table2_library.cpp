// Reproduces paper Table 2: "Standard Cell Library Assessment among
// Models" — per cell type, the binning and 3-sigma-yield error
// reductions of LVF^2 / Norm^2 / LESN vs the LVF baseline, for both
// delay and transition distributions, averaged over timing arcs and
// slew/load conditions; plus the library-wide averages (the paper's
// headline numbers: 7.74x / 9.56x binning and 4.79x / 7.18x yield).
//
// Default scope is scaled for wall-clock (1 drive strength, up to 2
// arcs/cell, a 3x3 slew/load sub-grid, 5k samples, capped EM budget); --full runs 2
// drives, 4 arcs, the 8x8 grid and 20k samples.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "cells/characterize.h"
#include "core/metrics.h"

using namespace lvf2;

namespace {

struct TypeAggregate {
  std::size_t arcs = 0;
  std::size_t conditions = 0;
  // Sums of per-condition error reductions, model-major
  // (LVF2, Norm2, LESN): delay binning, transition binning,
  // delay yield, transition yield.
  double delay_bin[3] = {};
  double tran_bin[3] = {};
  double delay_yield[3] = {};
  double tran_yield[3] = {};
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(5000, 20000);
  const std::size_t max_arcs_per_cell = args.full ? 4 : 2;
  bench::PerfRecord perf("table2_library");
  perf.set("samples_per_distribution", static_cast<double>(samples));

  cells::LibraryOptions lib_options;
  lib_options.drives = args.full ? std::vector<double>{1.0, 2.0}
                                 : std::vector<double>{1.0};
  const cells::StandardCellLibrary library =
      cells::build_paper_library(lib_options);

  cells::CharacterizeOptions ch_options;
  ch_options.grid = args.full ? cells::SlewLoadGrid::paper_grid()
                              : cells::SlewLoadGrid::reduced(3);
  ch_options.mc_samples = samples;
  ch_options.seed_base = args.seed;
  const cells::Characterizer characterizer(spice::ProcessCorner{},
                                           ch_options);

  core::FitOptions fit;
  fit.likelihood_bins = 384;
  if (!args.full) {
    fit.em_max_iterations = 40;
    fit.mstep_evaluations = 140;
  }

  std::map<std::string, TypeAggregate> aggregates;
  std::vector<std::string> type_order = library.type_names();

  for (const cells::Cell& cell : library.cells()) {
    TypeAggregate& agg = aggregates[cell.type_name()];
    std::size_t arcs_done = 0;
    for (const cells::TimingArc& arc : cell.arcs) {
      if (arcs_done >= max_arcs_per_cell) break;
      ++arcs_done;
      ++agg.arcs;
      for (std::size_t li = 0; li < ch_options.grid.rows(); ++li) {
        for (std::size_t si = 0; si < ch_options.grid.cols(); ++si) {
          const spice::McResult mc =
              characterizer.golden_samples(cell, arc, li, si);
          const core::ModelEvaluation delay_eval =
              core::evaluate_models(mc.delay_ns, fit);
          const core::ModelEvaluation tran_eval =
              core::evaluate_models(mc.transition_ns, fit);
          for (int k = 0; k < 3; ++k) {
            agg.delay_bin[k] += delay_eval.reductions[k].binning;
            agg.tran_bin[k] += tran_eval.reductions[k].binning;
            agg.delay_yield[k] += delay_eval.reductions[k].yield_3sigma;
            agg.tran_yield[k] += tran_eval.reductions[k].yield_3sigma;
          }
          ++agg.conditions;
        }
      }
    }
  }

  std::printf(
      "Table 2. Standard Cell Library Assessment among Models.\n"
      "(%zu MC samples/distribution, %zux%zu slew/load grid, up to %zu "
      "arcs/cell; error reduction vs LVF, x)\n\n",
      samples, ch_options.grid.cols(), ch_options.grid.rows(),
      max_arcs_per_cell);
  std::printf("%-6s %5s | %-22s | %-22s | %-22s | %-22s\n", "Cell", "Arcs",
              "Delay Binning", "Transition Binning", "Delay 3s-Yield",
              "Transition 3s-Yield");
  std::printf("%-6s %5s | %6s %7s %7s | %6s %7s %7s | %6s %7s %7s | %6s %7s %7s\n",
              "", "", "LVF2", "Norm2", "LESN", "LVF2", "Norm2", "LESN",
              "LVF2", "Norm2", "LESN", "LVF2", "Norm2", "LESN");
  bench::print_rule(118);

  double grand[4][3] = {};
  std::size_t grand_n = 0;
  for (const std::string& type : type_order) {
    const TypeAggregate& agg = aggregates[type];
    if (agg.conditions == 0) continue;
    const double n = static_cast<double>(agg.conditions);
    std::printf("%-6s %5zu |", type.c_str(), agg.conditions);
    for (int k = 0; k < 3; ++k) std::printf(" %6.2f%s", agg.delay_bin[k] / n, k == 2 ? " |" : "");
    for (int k = 0; k < 3; ++k) std::printf(" %6.2f%s", agg.tran_bin[k] / n, k == 2 ? " |" : "");
    for (int k = 0; k < 3; ++k) std::printf(" %6.2f%s", agg.delay_yield[k] / n, k == 2 ? " |" : "");
    for (int k = 0; k < 3; ++k) std::printf(" %6.2f%s", agg.tran_yield[k] / n, k == 2 ? "" : "");
    std::printf("\n");
    for (int k = 0; k < 3; ++k) {
      grand[0][k] += agg.delay_bin[k];
      grand[1][k] += agg.tran_bin[k];
      grand[2][k] += agg.delay_yield[k];
      grand[3][k] += agg.tran_yield[k];
    }
    grand_n += agg.conditions;
  }
  bench::print_rule(118);
  std::printf("%-6s %5zu |", "Avg", grand_n);
  const double gn = static_cast<double>(grand_n);
  for (int m = 0; m < 4; ++m) {
    for (int k = 0; k < 3; ++k) {
      std::printf(" %6.2f%s", grand[m][k] / gn,
                  (k == 2 && m < 3) ? " |" : "");
    }
  }
  std::printf("\n\nPaper averages: delay binning 7.74x (LVF2), transition "
              "binning 9.56x,\ndelay 3s-yield 4.79x, transition 3s-yield "
              "7.18x; LVF2 leads every column.\n");
  perf.set("conditions", gn);
  perf.set("delay_binning_lvf2", grand[0][0] / gn);
  perf.set("tran_binning_lvf2", grand[1][0] / gn);
  perf.set("delay_yield_lvf2", grand[2][0] / gn);
  perf.set("tran_yield_lvf2", grand[3][0] / gn);
  return 0;
}
