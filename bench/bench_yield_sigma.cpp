// bench_yield_sigma: sigma-level vs samples-to-converge for the
// importance-sampling rare-event engine (src/yield/) against the
// brute-force Monte-Carlo baseline.
//
// For one representative mixture scenario ("2 Peaks", the strongest
// mechanism separation — the shape where normal-tail extrapolation is
// most wrong), the bench:
//   1. runs a plain MC pilot to place failure thresholds at
//      mu + sigma * sd for sigma in {3.0, 3.5, 4.0, 4.5};
//   2. estimates P(delay > threshold) per level with the IS engine
//      (pilot shift + cross-entropy refinement, relative-error
//      stopping at 10%);
//   3. at 3.0 / 3.5 sigma — where brute force is still feasible —
//      also measures the brute-force estimate directly; at every
//      level it computes the brute-force-equivalent sample count
//      (1-p)/(p*re^2) at the relative error IS actually achieved.
//
// Every estimate lands in the manifest `yield_hs` section (the
// scripts/check.sh --yield golden diffs it at zero tolerance) and in
// BENCH_yield_sigma.json (p/se for IS and brute force, ESS, samples,
// equivalent-sample ratios — the >= 50x at >= 4 sigma acceptance
// assert reads these).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/obs.h"
#include "spice/montecarlo.h"
#include "stats/descriptive.h"
#include "stats/rng.h"
#include "yield/importance.h"

namespace {

using namespace lvf2;

// Metric key suffix for one sigma level: 3.5 -> "s35".
std::string sigma_key(double sigma) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "s%02d",
                static_cast<int>(sigma * 10.0 + 0.5));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::PerfRecord record("yield_sigma");

  const bench::Scenario scenario = bench::paper_scenarios()[0];  // 2 Peaks
  const spice::ProcessCorner corner = spice::ProcessCorner::tt_global_local_mc();

  // Threshold placement: a plain-MC pilot fixes mu and sd once, so
  // every estimator answers the same question.
  spice::McConfig mc;
  mc.samples = args.pick_samples(20000, 50000);
  mc.seed = args.seed;
  const spice::McResult pilot = spice::run_monte_carlo(
      scenario.stage, scenario.condition, corner, mc);
  const stats::Moments moments = stats::compute_moments(pilot.delay_ns);
  const double mu = moments.mean;
  const double sd = moments.stddev;
  record.set("pilot_samples", static_cast<double>(mc.samples));
  record.set("pilot_mean_ns", mu);
  record.set("pilot_stddev_ns", sd);
  obs::with_manifest([&](obs::ManifestRecorder& m) {
    m.set_config("yield.scenario", scenario.name);
    m.set_config("yield.pilot_samples",
                 static_cast<std::uint64_t>(mc.samples));
    m.set_config("yield.seed", args.seed);
  });

  yield::IsConfig cfg;
  cfg.batch_samples = 8192;
  cfg.max_samples = args.pick_samples(131072, 262144);
  cfg.target_rel_err = 0.10;
  cfg.shards = 16;  // fixed: deterministic at any thread count
  const yield::ImportanceSampler sampler(scenario.stage, scenario.condition,
                                         corner, cfg);

  const std::vector<double> sigma_levels{3.0, 3.5, 4.0, 4.5};
  // Brute force stays feasible through 3.5 sigma; past that only the
  // equivalent-sample yardstick is affordable.
  const double brute_force_max_sigma = 3.5;
  const std::size_t brute_force_samples = args.pick_samples(200000, 400000);

  std::printf("High-sigma yield: importance sampling vs brute force\n");
  std::printf("scenario %s  (mu %.6g ns, sd %.6g ns, %zu-sample pilot)\n\n",
              scenario.name, mu, sd, mc.samples);
  std::printf(
      "%6s %7s %12s %12s %10s %9s %9s | %12s %12s | %12s %9s\n", "sigma",
      "|shift|", "p_is", "se_is", "samples", "ess", "w_max", "p_bf", "se_bf",
      "bf_equiv", "ratio");
  bench::print_rule(132);

  for (std::size_t i = 0; i < sigma_levels.size(); ++i) {
    const double sigma = sigma_levels[i];
    const double threshold = mu + sigma * sd;

    yield::IsConfig level_cfg = cfg;
    level_cfg.seed = stats::combine_seed(args.seed, 100 + i);
    const yield::ImportanceSampler level_sampler(
        scenario.stage, scenario.condition, corner, level_cfg);
    yield::IsEstimate est = level_sampler.estimate(threshold);
    est.sigma_level = sigma;
    yield::record_yield_hs(scenario.name, est);

    double shift_norm = 0.0;
    for (const double s : est.shift) shift_norm += s * s;
    shift_norm = std::sqrt(shift_norm);

    const std::string key = sigma_key(sigma);
    record.set("shift_norm_" + key, shift_norm);
    record.set("p_is_" + key, est.p_fail);
    record.set("se_is_" + key, est.std_err);
    record.set("rel_err_is_" + key, est.rel_err);
    record.set("samples_is_" + key, static_cast<double>(est.samples));
    record.set("ess_" + key, est.ess);
    record.set("max_weight_fraction_" + key, est.max_weight_fraction);
    record.set("converged_is_" + key, est.converged ? 1.0 : 0.0);

    // Brute-force-equivalent sample count at the relative error IS
    // actually achieved — the honest apples-to-apples yardstick.
    const double bf_equiv =
        yield::brute_force_equivalent_samples(est.p_fail, est.rel_err);
    const double ratio =
        est.samples > 0 ? bf_equiv / static_cast<double>(est.samples) : 0.0;
    record.set("bf_equiv_samples_" + key, bf_equiv);
    record.set("bf_equiv_ratio_" + key, ratio);

    double p_bf = 0.0;
    double se_bf = 0.0;
    if (sigma <= brute_force_max_sigma) {
      const yield::BruteForceEstimate bf = level_sampler.brute_force(
          threshold, brute_force_samples, /*target_rel_err=*/0.0);
      p_bf = bf.p_fail;
      se_bf = bf.std_err;
      record.set("p_bf_" + key, bf.p_fail);
      record.set("se_bf_" + key, bf.std_err);
      record.set("samples_bf_" + key, static_cast<double>(bf.samples));
      std::printf(
          "%6.1f %7.2f %12.5g %12.5g %10zu %9.0f %9.2g | %12.5g %12.5g | "
          "%12.5g %9.1fx\n",
          sigma, shift_norm, est.p_fail, est.std_err, est.samples, est.ess,
          est.max_weight_fraction, p_bf, se_bf, bf_equiv, ratio);
    } else {
      std::printf(
          "%6.1f %7.2f %12.5g %12.5g %10zu %9.0f %9.2g | %12s %12s | "
          "%12.5g %9.1fx\n",
          sigma, shift_norm, est.p_fail, est.std_err, est.samples, est.ess,
          est.max_weight_fraction, "-", "-", bf_equiv, ratio);
    }
  }

  std::printf(
      "\nbf_equiv = (1-p)/(p*re^2): plain-MC samples needed at the relative\n"
      "error the IS run achieved; ratio = bf_equiv / IS samples.\n");
  return 0;
}
