// Ablation: supply-voltage scaling. The paper's introduction
// motivates LVF^2 with the non-linear variation effects that appear
// "as the technology node and supply voltage scale down". The
// alpha-power-law device model reproduces this: lowering VDD shrinks
// the overdrive (VDD - Vth), amplifying the delay sensitivity to
// threshold variation and the distribution's skewness/kurtosis. The
// bench sweeps VDD and reports distribution shape and per-model
// binning error reduction at a fixed arc condition.

#include <cstdio>

#include "bench_util.h"
#include "core/metrics.h"
#include "spice/montecarlo.h"
#include "stats/descriptive.h"

using namespace lvf2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(20000, 50000);

  spice::StageElectrical stage;
  stage.pull.stack = 2;
  stage.mechanism_gain = 1.2;
  const spice::ArcCondition cond{0.05, 0.05};

  std::printf(
      "Supply-voltage ablation (NAND2-class arc, %zu samples per point).\n"
      "Lower VDD -> smaller overdrive -> stronger nonlinearity.\n\n",
      samples);
  std::printf("%5s %10s %8s %8s %8s | %8s %8s %8s\n", "VDD", "mean[ns]",
              "cv", "skew", "kurt", "LVF2", "Norm2", "LESN");
  bench::print_rule(78);

  for (double vdd : {1.0, 0.9, 0.8, 0.7, 0.6, 0.55}) {
    spice::ProcessCorner corner;
    corner.vdd = vdd;
    spice::McConfig cfg;
    cfg.samples = samples;
    cfg.seed = args.seed;
    const spice::McResult mc =
        spice::run_monte_carlo(stage, cond, corner, cfg);
    const stats::Moments m = stats::compute_moments(mc.delay_ns);
    const core::ModelEvaluation eval = core::evaluate_models(mc.delay_ns);
    std::printf("%5.2f %10.4f %8.3f %+8.3f %8.2f | %8.2f %8.2f %8.2f\n",
                vdd, m.mean, m.stddev / m.mean, m.skewness, m.kurtosis,
                eval.reduction_of(core::ModelKind::kLvf2).binning,
                eval.reduction_of(core::ModelKind::kNorm2).binning,
                eval.reduction_of(core::ModelKind::kLesn).binning);
  }
  bench::print_rule(78);
  std::printf(
      "Skewness and kurtosis grow as VDD approaches the threshold —\n"
      "exactly the regime where single-skew-normal LVF loses accuracy\n"
      "and mixture / kurtosis-matching models pay off.\n");
  return 0;
}
