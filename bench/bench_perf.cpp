// google-benchmark microbenchmarks: cost of the statistical kernels
// and the fitting pipeline, including the binned-vs-raw likelihood
// ablation called out in DESIGN.md (decision 1).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cache/cache.h"
#include "cells/characterize.h"
#include "core/lvf2_model.h"
#include "exec/pool.h"
#include "core/mixture_ops.h"
#include "core/model_factory.h"
#include "obs/obs.h"
#include "robust/faults.h"
#include "serve/reqtrace.h"
#include "simd/simd.h"
#include "spice/cellsim.h"
#include "spice/montecarlo.h"
#include "stats/grid_pdf.h"
#include "stats/lhs.h"
#include "stats/skew_normal.h"
#include "stats/special_functions.h"

using namespace lvf2;

namespace {

std::vector<double> bimodal_samples(std::size_t n) {
  spice::StageElectrical stage;
  stage.mechanism_gain = 2.0;
  spice::McConfig cfg;
  cfg.samples = n;
  cfg.seed = 42;
  return spice::run_monte_carlo(stage, {0.05, 0.02},
                                spice::ProcessCorner{}, cfg)
      .delay_ns;
}

void BM_NormalCdf(benchmark::State& state) {
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::normal_cdf(x));
    x += 1e-6;
  }
}
BENCHMARK(BM_NormalCdf);

void BM_OwensT(benchmark::State& state) {
  double h = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::owens_t(h, 2.3));
    h += 1e-6;
  }
}
BENCHMARK(BM_OwensT);

void BM_SkewNormalLogPdf(benchmark::State& state) {
  const stats::SkewNormal sn(0.1, 0.01, 2.0);
  double x = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sn.log_pdf(x));
    x += 1e-9;
  }
}
BENCHMARK(BM_SkewNormalLogPdf);

void BM_SkewNormalCdf(benchmark::State& state) {
  const stats::SkewNormal sn(0.1, 0.01, 2.0);
  double x = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sn.cdf(x));
    x += 1e-9;
  }
}
BENCHMARK(BM_SkewNormalCdf);

// ---- Batch kernel throughput (src/simd), per dispatch tier. ----
// The benchmark Arg is the simd::Tier (0 scalar, 1 sse2, 2 avx2);
// tiers the host cannot run are skipped, so one binary covers any
// machine. Per-iteration time divided by kKernelBatch is the cost per
// sample; the recorded JSON keys keep the /tier suffix.

constexpr std::size_t kKernelBatch = 4096;

std::vector<double> kernel_inputs(double lo, double hi) {
  std::vector<double> x(kKernelBatch);
  for (std::size_t i = 0; i < kKernelBatch; ++i) {
    x[i] = lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(kKernelBatch - 1);
  }
  return x;
}

// Selects the benched tier for the duration of one benchmark run and
// restores the dispatched tier afterwards.
class TierGuard {
 public:
  explicit TierGuard(simd::Tier tier)
      : prev_(simd::set_tier_for_testing(tier)) {}
  ~TierGuard() { simd::set_tier_for_testing(prev_); }

 private:
  simd::Tier prev_;
};

bool skip_unavailable(benchmark::State& state, simd::Tier tier) {
  if (simd::tier_available(tier)) return false;
  state.SkipWithError("simd tier unavailable on this host");
  return true;
}

void tally_batch(benchmark::State& state, simd::Tier tier) {
  state.SetLabel(simd::tier_name(tier));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKernelBatch));
}

void BM_NormalCdfKernel(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (skip_unavailable(state, tier)) return;
  const TierGuard guard(tier);
  const std::vector<double> x = kernel_inputs(-8.0, 8.0);
  std::vector<double> out(kKernelBatch);
  for (auto _ : state) {
    simd::normal_cdf(x, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  tally_batch(state, tier);
}
BENCHMARK(BM_NormalCdfKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_OwensTKernel(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (skip_unavailable(state, tier)) return;
  const TierGuard guard(tier);
  const std::vector<double> h = kernel_inputs(-4.0, 4.0);
  std::vector<double> out(kKernelBatch);
  for (auto _ : state) {
    simd::owens_t(h, 2.3, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  tally_batch(state, tier);
}
BENCHMARK(BM_OwensTKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_SkewNormalLogPdfKernel(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (skip_unavailable(state, tier)) return;
  const TierGuard guard(tier);
  const std::vector<double> x = kernel_inputs(0.05, 0.15);
  std::vector<double> out(kKernelBatch);
  for (auto _ : state) {
    simd::sn_log_pdf(0.1, 0.01, 2.0, x, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  tally_batch(state, tier);
}
BENCHMARK(BM_SkewNormalLogPdfKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_SkewNormalCdfKernel(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (skip_unavailable(state, tier)) return;
  const TierGuard guard(tier);
  const std::vector<double> x = kernel_inputs(0.05, 0.15);
  std::vector<double> out(kKernelBatch);
  for (auto _ : state) {
    simd::sn_cdf(0.1, 0.01, 2.0, x, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  tally_batch(state, tier);
}
BENCHMARK(BM_SkewNormalCdfKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_EmResponsibilitiesKernel(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (skip_unavailable(state, tier)) return;
  const TierGuard guard(tier);
  const std::vector<double> x = kernel_inputs(0.05, 0.15);
  std::vector<double> lpa(kKernelBatch), lpb(kKernelBatch);
  simd::sn_log_pdf(0.09, 0.010, 1.5, x, lpa);
  simd::sn_log_pdf(0.12, 0.014, -0.5, x, lpb);
  std::vector<double> resp(kKernelBatch), lse(kKernelBatch);
  for (auto _ : state) {
    simd::em_responsibilities(-0.51, -0.92, lpa, lpb, resp, lse);
    benchmark::DoNotOptimize(resp.data());
    benchmark::ClobberMemory();
  }
  tally_batch(state, tier);
}
BENCHMARK(BM_EmResponsibilitiesKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_NormalQuantileKernel(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (skip_unavailable(state, tier)) return;
  const TierGuard guard(tier);
  const std::vector<double> p = kernel_inputs(1e-6, 1.0 - 1e-6);
  std::vector<double> out(kKernelBatch);
  for (auto _ : state) {
    simd::normal_quantile(p, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  tally_batch(state, tier);
}
BENCHMARK(BM_NormalQuantileKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_McSampleThroughput(benchmark::State& state) {
  const spice::StageElectrical stage;
  const spice::ProcessCorner corner;
  const spice::VariationSampler sampler(corner);
  stats::Rng rng(1);
  const auto draws = sampler.sample_lhs(1024, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::simulate_stage(
        stage, {0.05, 0.05}, corner, draws[i++ & 1023]));
  }
}
BENCHMARK(BM_McSampleThroughput);

void BM_LhsDesign(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::lhs_normal(n, 7, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LhsDesign)->Arg(1024)->Arg(16384);

// SoA batch variant of the sample loop above: per-condition
// invariants hoisted once, outputs written to SoA slices.
void BM_McSampleBatch(benchmark::State& state) {
  const spice::StageElectrical stage;
  const spice::ProcessCorner corner;
  const spice::VariationSampler sampler(corner);
  stats::Rng rng(1);
  const auto draws = sampler.sample_lhs(1024, rng);
  std::vector<double> delay(draws.size()), transition(draws.size());
  for (auto _ : state) {
    spice::simulate_stage_batch(stage, {0.05, 0.05}, corner, draws, delay,
                                transition);
    benchmark::DoNotOptimize(delay.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(draws.size()));
}
BENCHMARK(BM_McSampleBatch);

// Cold cost of one characterization entry: Monte-Carlo + all four
// model fits + metrics, with no result cache involved (LVF2_CACHE
// unset). This is the end-to-end number the batch kernels move. The
// Arg selects the dispatch tier (0 scalar, 1 sse2, 2 avx2) so one
// run records the scalar-vs-vector cold-entry pair side by side.
void BM_CharacterizeEntryCold(benchmark::State& state) {
  if (cache::enabled()) {
    state.SkipWithError("LVF2_CACHE is set; cold-entry bench is void");
    return;
  }
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (skip_unavailable(state, tier)) return;
  const TierGuard guard(tier);
  cells::CharacterizeOptions options;
  options.mc_samples = 2000;
  const cells::Cell inv = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  const cells::Characterizer ch(spice::ProcessCorner{}, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ch.characterize_entry(inv, inv.arcs[0], "bench", 0, 0));
  }
  state.SetLabel(simd::tier_name(tier));
}
BENCHMARK(BM_CharacterizeEntryCold)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Fit-cost ablation: LVF^2 EM with binned likelihood at different
// resolutions vs raw samples (bins = 0). DESIGN.md decision 1.
void BM_Lvf2FitBinned(benchmark::State& state) {
  const auto samples = bimodal_samples(20000);
  core::FitOptions options;
  options.likelihood_bins = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Lvf2Model::fit(samples, options));
  }
}
BENCHMARK(BM_Lvf2FitBinned)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(0)  // raw samples
    ->Unit(benchmark::kMillisecond);

void BM_FitModel(benchmark::State& state) {
  const auto samples = bimodal_samples(20000);
  const auto kind = static_cast<core::ModelKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fit_model(kind, samples));
  }
  state.SetLabel(core::to_string(kind));
}
BENCHMARK(BM_FitModel)
    ->Arg(static_cast<int>(core::ModelKind::kLvf))
    ->Arg(static_cast<int>(core::ModelKind::kNorm2))
    ->Arg(static_cast<int>(core::ModelKind::kLesn))
    ->Arg(static_cast<int>(core::ModelKind::kLvf2))
    ->Unit(benchmark::kMillisecond);

void BM_GridConvolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const stats::SkewNormal sn(0.1, 0.01, 2.0);
  const auto g = stats::GridPdf::from_function(
      [&sn](double x) { return sn.pdf(x); }, 0.0, 0.2, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::GridPdf::convolve(g, g, 4 * n));
  }
}
BENCHMARK(BM_GridConvolve)->Arg(512)->Arg(1024)->Arg(2048)->Unit(
    benchmark::kMillisecond);

// Analytic mixture convolution (grid-free SSTA sum) vs the grid
// convolution above: the moment-space operation is O(K*L) closed
// forms instead of O(n^2) grid work.
void BM_AnalyticMixtureConvolve(benchmark::State& state) {
  const core::Lvf2Model x(
      0.4, stats::SkewNormal::from_moments(0.10, 0.01, 0.4),
      stats::SkewNormal::from_moments(0.13, 0.012, 0.0));
  const core::Lvf2Model y(
      0.2, stats::SkewNormal::from_moments(0.05, 0.006, 0.1),
      stats::SkewNormal::from_moments(0.06, 0.007, 0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::convolve_lvf2(x, y));
  }
}
BENCHMARK(BM_AnalyticMixtureConvolve);

// Disabled-path cost of the observability layer: the README promises
// a disabled span or counter is a single relaxed atomic load
// (< 5 ns/call). Run without LVF2_TRACE to measure the guarantee.
void BM_DisabledSpan(benchmark::State& state) {
  if (obs::trace_enabled()) {
    state.SkipWithError("LVF2_TRACE is set; disabled-path bench is void");
    return;
  }
  for (auto _ : state) {
    obs::TraceSpan span("bench.disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_DisabledSpanWithArgs(benchmark::State& state) {
  if (obs::trace_enabled()) {
    state.SkipWithError("LVF2_TRACE is set; disabled-path bench is void");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    obs::TraceSpan span("bench.disabled", [&] {
      return obs::ArgsBuilder().add("i", i).str();
    });
    benchmark::DoNotOptimize(&span);
    ++i;
  }
}
BENCHMARK(BM_DisabledSpanWithArgs);

void BM_DisabledTraceCounter(benchmark::State& state) {
  if (obs::trace_enabled()) {
    state.SkipWithError("LVF2_TRACE is set; disabled-path bench is void");
    return;
  }
  double v = 0.0;
  for (auto _ : state) {
    obs::trace_counter("bench.disabled", v);
    v += 1.0;
  }
}
BENCHMARK(BM_DisabledTraceCounter);

// Disabled-path cost of a manifest hook: with LVF2_MANIFEST unset,
// with_manifest() is a single relaxed atomic load and the record
// lambda is never invoked — same contract as the disabled span.
void BM_DisabledManifest(benchmark::State& state) {
  if (obs::manifest_enabled()) {
    state.SkipWithError("LVF2_MANIFEST is set; disabled-path bench is void");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    obs::with_manifest([&](obs::ManifestRecorder& m) {
      m.set_config("bench.never", static_cast<std::uint64_t>(i));
    });
    benchmark::DoNotOptimize(i);
    ++i;
  }
}
BENCHMARK(BM_DisabledManifest);

// Disabled-path cost of the fault-injection harness: with LVF2_FAULTS
// unset every robust::fire() hook is a single relaxed atomic load —
// the same contract as the disabled trace span above.
void BM_DisabledFaultHook(benchmark::State& state) {
  if (robust::faults_enabled()) {
    state.SkipWithError("LVF2_FAULTS is set; disabled-path bench is void");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::fire(robust::Fault::kSamplesNan));
  }
}
BENCHMARK(BM_DisabledFaultHook);

// Disabled-path cost of the result cache: with LVF2_CACHE unset,
// cache::enabled() is a single relaxed atomic load and no key is ever
// hashed — the same contract as the disabled trace span above.
void BM_DisabledCacheLookup(benchmark::State& state) {
  if (cache::enabled()) {
    state.SkipWithError("LVF2_CACHE is set; disabled-path bench is void");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::enabled());
  }
}
BENCHMARK(BM_DisabledCacheLookup);

// Disabled-path cost of the sampling profiler: with LVF2_PROFILE
// unset, a hook site (TraceSpan stage tagging) is a single relaxed
// atomic load — the same contract as the disabled trace span above.
void BM_DisabledProfilerSample(benchmark::State& state) {
  if (obs::prof::profiler_enabled()) {
    state.SkipWithError("LVF2_PROFILE is set; disabled-path bench is void");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::prof::profiler_enabled());
  }
}
BENCHMARK(BM_DisabledProfilerSample);

// Disabled-path cost of pool telemetry: with LVF2_EXEC_TELEMETRY
// unset, each fork-join chunk pays one relaxed atomic load before
// running its body.
void BM_PoolTelemetryOverhead(benchmark::State& state) {
  if (exec::telemetry_enabled()) {
    state.SkipWithError(
        "LVF2_EXEC_TELEMETRY is set; disabled-path bench is void");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::telemetry_enabled());
  }
}
BENCHMARK(BM_PoolTelemetryOverhead);

// Disabled-path cost of per-request tracing: with LVF2_ACCESS_LOG
// unset, the request path pays one relaxed atomic load per trace
// point (DESIGN.md decision 20's cost budget) — the same contract as
// the disabled trace span above.
void BM_DisabledRequestTrace(benchmark::State& state) {
  if (serve::reqtrace_enabled()) {
    state.SkipWithError(
        "LVF2_ACCESS_LOG is set; disabled-path bench is void");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::reqtrace_enabled());
  }
}
BENCHMARK(BM_DisabledRequestTrace);

// Always-on cost of a registry counter increment (relaxed fetch_add).
void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::Counter& c = obs::counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
  }
}
BENCHMARK(BM_MetricsCounterAdd);

// Thread-scaling of the characterization hot loop: one full arc
// (reduced 2x2 grid) at 1/2/4/8 threads. Output is byte-identical at
// every argument (per-entry seed derivation); only the wall time
// should move. Expect ~linear scaling up to the physical core count
// and a flat line beyond it.
void BM_CharacterizeArcParallel(benchmark::State& state) {
  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::reduced(4);  // 2x2
  options.mc_samples = 2000;
  const cells::Cell inv = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  const cells::Characterizer ch(spice::ProcessCorner{}, options);
  exec::set_thread_count(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.characterize_arc(inv, inv.arcs[0]));
  }
  exec::set_thread_count(0);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(options.grid.rows() * options.grid.cols()));
}
BENCHMARK(BM_CharacterizeArcParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Fork-join fixed cost: dispatching a near-empty job to the pool.
// This bounds the smallest work item worth parallelizing. Arg(1)
// measures the inline path (no pool involvement) as the baseline.
void BM_PoolDispatchOverhead(benchmark::State& state) {
  exec::set_thread_count(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 64;
  for (auto _ : state) {
    std::size_t sink = 0;
    exec::parallel_for(n, 1, [&](std::size_t i) {
      benchmark::DoNotOptimize(sink += i);
    });
  }
  exec::set_thread_count(0);
}
BENCHMARK(BM_PoolDispatchOverhead)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime();

void BM_StatisticalMax(benchmark::State& state) {
  const stats::SkewNormal sn(0.1, 0.01, 2.0);
  const auto g = stats::GridPdf::from_function(
      [&sn](double x) { return sn.pdf(x); }, 0.0, 0.2, 2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::GridPdf::statistical_max(g, g));
  }
}
BENCHMARK(BM_StatisticalMax)->Unit(benchmark::kMicrosecond);

// Forwards to the console reporter while capturing each run's
// per-iteration real time, so the scaling numbers (most importantly
// BM_CharacterizeArcParallel/{1,2,4,8}) land in BENCH_perf_micro.json
// when LVF2_BENCH_JSON names a directory.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      results.emplace_back(run.benchmark_name(), run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<std::pair<std::string, double>> results;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* dir = std::getenv("LVF2_BENCH_JSON");
  if (dir != nullptr && dir[0] != '\0') {
    // Keys are the benchmark names with JSON-hostile characters
    // flattened; values are per-iteration real times in each bench's
    // own time unit (ns unless the bench sets one).
    bench::PerfRecord record("perf_micro");
    bool cold_entry_recorded = false;
    for (const auto& [name, time] : reporter.results) {
      std::string key = name;
      for (char& c : key) {
        if (c == '/' || c == ':' || c == ' ' || c == '"' || c == '\\') {
          c = '_';
        }
      }
      if (key.rfind("BM_CharacterizeEntryCold", 0) == 0) {
        cold_entry_recorded = true;
      }
      record.set(key, time);
    }
    if (cold_entry_recorded) {
      // Frozen reference for the cold-entry speedup trajectory: ms per
      // characterize_entry of the pre-src/simd tree (scalar-only,
      // same loop and mc_samples as BM_CharacterizeEntryCold),
      // measured on the reference machine when the kernel layer
      // landed. Dividing it by BM_CharacterizeEntryCold_2 (avx2)
      // gives the end-to-end speedup the batch kernels bought.
      record.set("BM_CharacterizeEntryCold_pre_simd_scalar_baseline_ms",
                 726.0);
    }
  }
  benchmark::Shutdown();
  return 0;
}
