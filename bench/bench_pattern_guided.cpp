// Extension bench: accuracy-pattern-guided characterization (the
// speedup anticipated in the paper's conclusion). Characterizes the
// NAND2 delay table two ways — full budget everywhere vs pilot
// screening + full budget on flagged entries — and reports the
// sample-budget saving and the accuracy cost on every entry.

#include <cstdio>

#include "bench_util.h"
#include "cells/pattern_guided.h"
#include "core/metrics.h"

using namespace lvf2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t full_samples = args.pick_samples(8000, 50000);

  const cells::Cell nand2 =
      cells::build_cell(cells::CellFamily::kNand, 2, 1.0);
  const cells::TimingArc* arc = nullptr;
  for (const cells::TimingArc& a : nand2.arcs) {
    if (a.input_pin == "A" && !a.rise_output) arc = &a;
  }
  if (arc == nullptr) return 1;

  cells::PatternGuidedOptions options;
  options.full_samples = full_samples;
  options.seed_base = args.seed;
  const cells::PatternGuidedResult guided =
      cells::pattern_guided_characterize_arc(nand2, *arc,
                                             spice::ProcessCorner{}, options);

  // Reference: the full-budget evaluation per entry.
  cells::CharacterizeOptions full_opts;
  full_opts.mc_samples = full_samples;
  full_opts.seed_base = args.seed + 99;
  const cells::Characterizer characterizer(spice::ProcessCorner{},
                                           full_opts);

  std::printf(
      "Pattern-guided characterization of NAND2 %s delay (8x8 grid).\n"
      "Pilot %zu samples/entry, full budget %zu samples on flagged "
      "entries.\n\n",
      arc->label().c_str(), options.pilot_samples, options.full_samples);

  // Per-entry accuracy: CDF RMSE of the guided model vs fresh golden
  // samples, compared against the always-full LVF^2 fit.
  double guided_rmse_sum = 0.0, full_rmse_sum = 0.0, lvf_rmse_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t li = 0; li < 8; ++li) {
    for (std::size_t si = 0; si < 8; ++si) {
      const spice::McResult golden_mc =
          characterizer.golden_samples(nand2, *arc, li, si);
      const stats::EmpiricalCdf golden(golden_mc.delay_ns);
      const cells::PatternGuidedEntry& entry = guided.at(li, si);
      const core::Lvf2Model guided_model =
          core::Lvf2Model::from_parameters(entry.delay_params);
      const auto full_model = core::Lvf2Model::fit(golden_mc.delay_ns);
      const auto lvf_model = stats::SkewNormal::fit_moments(
          golden_mc.delay_ns);
      if (!full_model || !lvf_model) continue;
      guided_rmse_sum += core::cdf_rmse(
          [&](double x) { return guided_model.cdf(x); }, golden);
      full_rmse_sum += core::cdf_rmse(
          [&](double x) { return full_model->cdf(x); }, golden);
      lvf_rmse_sum += core::cdf_rmse(
          [&](double x) { return lvf_model->cdf(x); }, golden);
      ++n;
    }
  }

  std::printf("entries: %zu full fits, %zu screened out (plain LVF)\n",
              guided.full_fits, guided.screened_out);
  std::printf("sample budget: %zu of %zu (%.0f%% of a full run)\n",
              guided.samples_spent, guided.samples_full_run,
              100.0 * guided.budget_fraction());
  if (n > 0) {
    std::printf(
        "mean CDF RMSE over the table:\n"
        "  always-full LVF2 : %.5f\n"
        "  pattern-guided   : %.5f\n"
        "  always-LVF       : %.5f\n",
        full_rmse_sum / n, guided_rmse_sum / n, lvf_rmse_sum / n);
    std::printf(
        "\nThe guided flow keeps ~LVF2 accuracy at a fraction of the MC\n"
        "budget — the characterization speedup the paper's conclusion\n"
        "anticipates from the accuracy pattern.\n");
  }
  return 0;
}
