// Reproduces paper Fig. 5: "Comparison of Binning Error Reduction
// along Two Circuit Critical Paths" — per-stage binning error
// reduction of LVF^2 / Norm^2 / LESN vs LVF, propagated with
// block-based SSTA along (a) the 16-bit carry adder critical path
// (~30 FO4) and (b) the 6-stage H-tree (~95 FO4, Pi-model wires),
// against golden path Monte-Carlo.
//
// Expected shape (paper): LVF^2 (and Norm^2) lead strongly in the
// first stages and decay towards 1x as the CLT Gaussianizes the
// accumulated delay (Section 3.4); LVF^2 retains ~2x at 8 FO4 on the
// adder; the H-tree converges more slowly.

#include <cstdio>

#include "bench_util.h"
#include "circuits/adder.h"
#include "circuits/htree.h"
#include "ssta/path_analysis.h"

using namespace lvf2;

namespace {

void run_benchmark(const char* title, const ssta::TimingPath& path,
                   std::size_t samples, std::uint64_t seed,
                   bench::PerfRecord& perf, const char* perf_prefix) {
  ssta::PathAssessmentOptions options;
  options.mc.samples = samples;
  options.mc.seed = seed;
  const ssta::PathAssessment a =
      ssta::assess_path(path, spice::ProcessCorner{}, options);

  std::printf("\n%s (%zu stages, %.1f FO4 total, %zu samples/stage)\n",
              title, path.depth(), a.fo4_position.back(), samples);
  std::printf("%-5s %-18s %7s | %7s %7s %7s %5s | %8s\n", "stage", "cell",
              "FO4", "LVF2", "Norm2", "LESN", "LVF", "gold-skew");
  bench::print_rule(82);
  double at_8fo4 = 0.0;
  for (std::size_t i = 0; i < path.depth(); ++i) {
    std::printf("%-5zu %-18s %7.1f | %7.2f %7.2f %7.2f %5.0f | %+8.3f\n",
                i, path.stages[i].instance_name.c_str(), a.fo4_position[i],
                a.binning_reduction[i][0], a.binning_reduction[i][1],
                a.binning_reduction[i][2], a.binning_reduction[i][3],
                a.golden_skewness[i]);
    if (at_8fo4 == 0.0 && a.fo4_position[i] >= 8.0) {
      at_8fo4 = a.binning_reduction[i][0];
    }
  }
  bench::print_rule(82);
  std::printf(
      "LVF2 reduction at ~8 FO4: %.2fx; at path end: %.2fx "
      "(paper adder: 2x at 8 FO4, 1.15x at the end;\n"
      "paper H-tree: 8x at 8 FO4, 2.68x at the end).\n",
      at_8fo4, a.binning_reduction.back()[0]);
  perf.set(std::string(perf_prefix) + ".lvf2_at_8fo4", at_8fo4);
  perf.set(std::string(perf_prefix) + ".lvf2_at_end",
           a.binning_reduction.back()[0]);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(12000, 50000);
  bench::PerfRecord perf("fig5_paths");
  perf.set("samples_per_stage", static_cast<double>(samples));

  std::printf("Figure 5. Binning error reduction along two circuit "
              "critical paths.\n");

  const ssta::TimingPath adder = circuits::build_adder_critical_path(
      {}, spice::ProcessCorner{});
  run_benchmark("(a) 16-bit carry adder critical path", adder, samples,
                args.seed, perf, "adder");

  const ssta::TimingPath htree =
      circuits::build_htree_path({}, spice::ProcessCorner{});
  run_benchmark("(b) 6-stage H-tree (Pi-model wires)", htree, samples,
                args.seed + 1, perf, "htree");
  return 0;
}
