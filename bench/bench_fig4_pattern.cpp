// Reproduces paper Fig. 4: the accuracy pattern of LVF^2 across the
// 8x8 slew/load table of a NAND2 cell — the per-entry CDF RMSE
// reduction of LVF^2 vs LVF for (a) delay and (b) transition. The
// paper observes the multi-Gaussian phenomenon (large reductions)
// clustering along table diagonals; our regime model reproduces the
// same structure (the analytic mixture weight is printed alongside).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "cells/characterize.h"
#include "core/metrics.h"

using namespace lvf2;

namespace {

void print_heatmap(const char* title, const double values[8][8],
                   const cells::SlewLoadGrid& grid) {
  std::printf("\n%s (LVF2 CDF-RMSE reduction, x)\n", title);
  std::printf("%-10s", "load \\ slew");
  for (std::size_t si = 0; si < grid.cols(); ++si) {
    std::printf(" %6.4f", grid.slews_ns[si]);
  }
  std::printf("\n");
  for (std::size_t li = 0; li < grid.rows(); ++li) {
    std::printf("%-10.5f", grid.loads_pf[li]);
    for (std::size_t si = 0; si < grid.cols(); ++si) {
      std::printf(" %6.1f", values[li][si]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(6000, 50000);

  const cells::Cell nand2 =
      cells::build_cell(cells::CellFamily::kNand, 2, 1.0);
  // The A -> Y falling arc (through the NMOS stack), as a typical
  // NAND2 table.
  const cells::TimingArc* arc = nullptr;
  for (const cells::TimingArc& a : nand2.arcs) {
    if (a.input_pin == "A" && !a.rise_output) arc = &a;
  }
  if (arc == nullptr) return 1;

  cells::CharacterizeOptions options;
  options.grid = cells::SlewLoadGrid::paper_grid();
  options.mc_samples = samples;
  options.seed_base = args.seed;
  const cells::Characterizer characterizer(spice::ProcessCorner{}, options);

  std::printf(
      "Figure 4. Accuracy pattern of LVF2 over the NAND2 8x8 slew/load "
      "table\n(%zu MC samples per entry).\n",
      samples);

  double delay_map[8][8];
  double tran_map[8][8];
  double lambda_map[8][8];
  for (std::size_t li = 0; li < 8; ++li) {
    for (std::size_t si = 0; si < 8; ++si) {
      const spice::McResult mc =
          characterizer.golden_samples(nand2, *arc, li, si);
      core::FitOptions fit;
      fit.likelihood_bins = 384;
      const core::ModelEvaluation delay_eval =
          core::evaluate_models(mc.delay_ns, fit);
      const core::ModelEvaluation tran_eval =
          core::evaluate_models(mc.transition_ns, fit);
      delay_map[li][si] =
          delay_eval.reduction_of(core::ModelKind::kLvf2).cdf_rmse;
      tran_map[li][si] =
          tran_eval.reduction_of(core::ModelKind::kLvf2).cdf_rmse;
      lambda_map[li][si] = spice::mechanism_b_probability(
          arc->stage,
          {options.grid.slews_ns[si], options.grid.loads_pf[li]},
          spice::ProcessCorner{});
    }
  }

  print_heatmap("(a) NAND2 Delay Timing", delay_map, options.grid);
  print_heatmap("(b) NAND2 Transition Timing", tran_map, options.grid);

  std::printf("\nUnderlying mechanism mixture weight lambda = P(B):\n");
  for (std::size_t li = 0; li < 8; ++li) {
    std::printf("  ");
    for (std::size_t si = 0; si < 8; ++si) {
      std::printf(" %4.2f", lambda_map[li][si]);
    }
    std::printf("\n");
  }

  // Quantify the diagonal pattern: mixture strength lambda(1-lambda)
  // is maximal along a diagonal band; verify the strongest
  // reductions sit at mid-lambda entries.
  double strong_mid = 0.0, strong_corner = 0.0;
  int n_mid = 0, n_corner = 0;
  for (std::size_t li = 0; li < 8; ++li) {
    for (std::size_t si = 0; si < 8; ++si) {
      const double mix = lambda_map[li][si] * (1.0 - lambda_map[li][si]);
      if (mix > 0.15) {
        strong_mid += delay_map[li][si];
        ++n_mid;
      } else if (mix < 0.02) {
        strong_corner += delay_map[li][si];
        ++n_corner;
      }
    }
  }
  if (n_mid > 0 && n_corner > 0) {
    std::printf(
        "\nDiagonal check: mean delay reduction %.2fx on the "
        "confrontation band (lambda(1-lambda) > 0.15, %d entries)\n"
        "vs %.2fx off the band (%d entries) — the paper's diagonal "
        "multi-Gaussian pattern.\n",
        strong_mid / n_mid, n_mid, strong_corner / n_corner, n_corner);
  }
  return 0;
}
