// Ablation: SSTA propagation semantics. Block-based SSTA maintains
// each model's parametric form at every node (refit after each
// convolution; DESIGN.md decision 9). The alternative — propagating
// exact numeric grids of the per-stage fits — gradually erases the
// representational differences between the families. This bench runs
// the adder critical path both ways and prints the per-stage LVF^2
// binning error reduction side by side.

#include <cstdio>

#include "bench_util.h"
#include "circuits/adder.h"
#include "ssta/path_analysis.h"

using namespace lvf2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(10000, 50000);

  const ssta::TimingPath path = circuits::build_adder_critical_path(
      {}, spice::ProcessCorner{});

  ssta::PathAssessmentOptions refit_options;
  refit_options.mc.samples = samples;
  refit_options.mc.seed = args.seed;
  refit_options.refit_at_each_stage = true;
  const ssta::PathAssessment refit =
      ssta::assess_path(path, spice::ProcessCorner{}, refit_options);

  ssta::PathAssessmentOptions numeric_options = refit_options;
  numeric_options.refit_at_each_stage = false;
  const ssta::PathAssessment numeric =
      ssta::assess_path(path, spice::ProcessCorner{}, numeric_options);

  std::printf(
      "Propagation-semantics ablation on the %zu-stage adder path\n"
      "(%zu samples/stage). LVF2 binning error reduction per stage:\n\n",
      path.depth(), samples);
  std::printf("%-5s %8s | %14s %14s\n", "stage", "FO4", "node-refit",
              "numeric-grid");
  bench::print_rule(48);
  for (std::size_t i = 0; i < path.depth(); ++i) {
    std::printf("%-5zu %8.1f | %14.2f %14.2f\n", i, refit.fo4_position[i],
                refit.binning_reduction[i][0],
                numeric.binning_reduction[i][0]);
  }
  bench::print_rule(48);
  std::printf(
      "Node-refit (the paper's block-based SSTA semantics) preserves the\n"
      "LVF2 advantage along the path; pure numeric propagation converges\n"
      "to the golden convolution for every family and the advantage\n"
      "becomes fit noise.\n");
  return 0;
}
