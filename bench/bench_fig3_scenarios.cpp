// Reproduces paper Fig. 3: fitting results of LVF, LESN, Norm^2 and
// LVF^2 on the five representative scenarios (top row), and the
// decomposition of the LVF^2 mixture into its two weighted
// skew-normal components (bottom row).
//
// Output: per scenario, an ASCII density plot of the golden histogram
// and each model's fitted PDF, the fitted LVF^2 parameters
// (lambda, theta1, theta2), and the CDF RMSE of every model.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/lvf2_model.h"
#include "core/metrics.h"
#include "spice/montecarlo.h"

using namespace lvf2;

namespace {

std::vector<double> sample_pdf(const core::TimingModel& model, double lo,
                               double hi, std::size_t points) {
  std::vector<double> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / (points - 1);
    out[i] = model.pdf(x);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(20000, 50000);

  std::printf("Figure 3. Fitting results of LVF, LESN, Norm2, LVF2 and the\n");
  std::printf("LVF2 decomposition for the five typical scenarios.\n");

  for (const bench::Scenario& scenario : bench::paper_scenarios()) {
    spice::McConfig cfg;
    cfg.samples = samples;
    cfg.seed = args.seed;
    const spice::McResult mc = spice::run_monte_carlo(
        scenario.stage, scenario.condition, spice::ProcessCorner{}, cfg);
    const core::ModelEvaluation eval = core::evaluate_models(mc.delay_ns);
    const stats::EmpiricalCdf golden(mc.delay_ns);
    const double lo = golden.quantile(0.0005);
    const double hi = golden.quantile(0.9995);

    std::printf("\n=== %s ===\n", scenario.name);
    // Golden histogram.
    const stats::BinnedSamples bins = stats::bin_samples(mc.delay_ns, 64);
    std::vector<double> golden_density(bins.centers.size());
    for (std::size_t i = 0; i < bins.centers.size(); ++i) {
      golden_density[i] = bins.density(i);
    }
    std::printf("  %-7s |%s|\n", "golden",
                bench::ascii_pdf(golden_density).c_str());
    for (const auto& model : eval.models) {
      if (!model) continue;
      std::printf("  %-7s |%s|  cdf-rmse %.5f\n", model->name().c_str(),
                  bench::ascii_pdf(sample_pdf(*model, lo, hi, 64)).c_str(),
                  eval.errors_of(model->kind()).cdf_rmse);
    }
    // LVF^2 decomposition (paper Fig. 3 bottom row).
    const auto* lvf2 = dynamic_cast<const core::Lvf2Model*>(
        eval.model(core::ModelKind::kLvf2));
    if (lvf2 != nullptr) {
      const core::Lvf2Parameters p = lvf2->parameters();
      std::printf(
          "  decomposition: lambda=%.3f\n"
          "    (1-l)*SN1: mean=%.5f sigma=%.5f skew=%+.3f\n"
          "       l *SN2: mean=%.5f sigma=%.5f skew=%+.3f\n",
          p.lambda, p.theta1.mean, p.theta1.stddev, p.theta1.skewness,
          p.theta2.mean, p.theta2.stddev, p.theta2.skewness);
      const core::Lvf2Model c1 = core::Lvf2Model::from_lvf(
          lvf2->component1());
      const core::Lvf2Model c2 = core::Lvf2Model::from_lvf(
          lvf2->component2());
      std::printf("  %-7s |%s|\n", "SN1",
                  bench::ascii_pdf(sample_pdf(c1, lo, hi, 64)).c_str());
      std::printf("  %-7s |%s|\n", "SN2",
                  bench::ascii_pdf(sample_pdf(c2, lo, hi, 64)).c_str());
    }
  }
  return 0;
}
