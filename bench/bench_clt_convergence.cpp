// Ablation bench for paper Section 3.4 (Theorem 1 / Corollaries 2-3):
// the Berry-Esseen O(1/sqrt(n)) convergence of accumulated stage
// delays to a Gaussian, and the practical consequence — when the
// LVF^2 -> LVF fallback becomes free.
//
// For a strongly non-Gaussian stage distribution (a confrontation-
// zone arc) the bench reports, as a function of logic depth n:
//   sup |F_n - Phi|        (the Berry-Esseen distance),
//   sqrt(n) * sup|F_n-Phi| (should be ~constant),
//   the binning error of a Gaussian approximation,
//   and the LVF2-vs-LVF binning error reduction of refitted models.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/metrics.h"
#include "spice/montecarlo.h"
#include "stats/descriptive.h"
#include "stats/special_functions.h"

using namespace lvf2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(30000, 100000);

  // A confrontation-zone stage: strongly bimodal delay.
  spice::StageElectrical stage;
  stage.mechanism_gain = 2.5;
  stage.mechanism_offset = -0.6;
  const spice::ArcCondition cond{0.05, 0.02};

  std::printf(
      "Section 3.4 ablation: Berry-Esseen convergence of accumulated "
      "stage delays\n(%zu samples, bimodal stage distribution).\n\n",
      samples);
  std::printf("%5s %12s %16s %14s %10s\n", "n", "sup|Fn-Phi|",
              "sqrt(n)*sup", "|skewness|", "LVF2 red.");
  bench::print_rule(64);

  std::vector<double> total(samples, 0.0);
  const int depths[] = {1, 2, 4, 8, 16, 32};
  int next_depth = 0;
  for (int n = 1; n <= 32; ++n) {
    spice::McConfig cfg;
    cfg.samples = samples;
    cfg.seed = args.seed + static_cast<std::uint64_t>(n) * 7919;
    const spice::McResult mc =
        spice::run_monte_carlo(stage, cond, spice::ProcessCorner{}, cfg);
    for (std::size_t j = 0; j < samples; ++j) total[j] += mc.delay_ns[j];

    if (n != depths[next_depth]) continue;
    ++next_depth;

    const stats::Moments m = stats::compute_moments(total);
    const stats::EmpiricalCdf golden(total);
    // Berry-Esseen distance of the standardized sum to the normal.
    const auto normal_cdf_fit = [&m](double x) {
      return stats::normal_cdf((x - m.mean) / m.stddev);
    };
    const double sup = core::ks_distance(normal_cdf_fit, golden);
    const core::ModelEvaluation eval = core::evaluate_models(total);
    std::printf("%5d %12.5f %16.5f %14.4f %10.2f\n", n, sup,
                std::sqrt(static_cast<double>(n)) * sup,
                std::fabs(m.skewness),
                eval.reduction_of(core::ModelKind::kLvf2).binning);
  }
  bench::print_rule(64);
  std::printf(
      "sqrt(n)*sup should stay roughly constant (Theorem 1: sup <= "
      "C*rho/sqrt(n));\nthe LVF2 advantage decays towards 1x — the "
      "paper's guidance on when to\nswitch back to plain LVF to save "
      "storage and runtime.\n");
  return 0;
}
