// Ablation: number of mixture components (paper Section 3.3 — "one
// can easily extend the library to support more components"). Fits
// LVF^k for K = 1..4 on the five representative scenarios and reports
// binning error reduction, BIC, and fit time — quantifying where the
// paper's K = 2 choice sits on the accuracy/cost curve.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/binning.h"
#include "core/lvfk_model.h"
#include "core/metrics.h"
#include "spice/montecarlo.h"

using namespace lvf2;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::size_t samples = args.pick_samples(20000, 50000);

  std::printf("Component-count ablation (LVF^k, K = 1..4), binning error\n");
  std::printf("reduction vs LVF and BIC per scenario (%zu samples).\n\n",
              samples);
  std::printf("%-14s", "Scenario");
  for (int k = 1; k <= 4; ++k) std::printf("      K=%d", k);
  std::printf("   best-BIC\n");
  bench::print_rule(64);

  for (const bench::Scenario& scenario : bench::paper_scenarios()) {
    spice::McConfig cfg;
    cfg.samples = samples;
    cfg.seed = args.seed;
    const spice::McResult mc = spice::run_monte_carlo(
        scenario.stage, scenario.condition, spice::ProcessCorner{}, cfg);
    const stats::EmpiricalCdf golden(mc.delay_ns);
    const stats::Moments gm = stats::compute_moments(mc.delay_ns);
    const std::vector<double> boundaries =
        core::sigma_bin_boundaries(gm.mean, gm.stddev);
    const std::vector<double> golden_bins =
        core::bin_probabilities(golden, boundaries);

    core::FitOptions fit;
    const core::WeightedData data = core::make_weighted_data(mc.delay_ns, fit);

    double lvf_error = 0.0;
    double reductions[4] = {};
    double bics[4] = {};
    double times_ms[4] = {};
    for (int k = 1; k <= 4; ++k) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto model =
          core::LvfKModel::fit(mc.delay_ns, static_cast<std::size_t>(k), fit);
      const auto t1 = std::chrono::steady_clock::now();
      times_ms[k - 1] =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (!model) continue;
      const std::vector<double> bins = core::bin_probabilities(
          [&model](double x) { return model->cdf(x); }, boundaries);
      const double err = core::binning_error(bins, golden_bins);
      if (k == 1) lvf_error = err;
      reductions[k - 1] = core::error_reduction(
          lvf_error, err, core::binning_error_floor(samples));
      bics[k - 1] = model->bic(data);
    }
    int best_k = 1;
    for (int k = 2; k <= 4; ++k) {
      if (bics[k - 1] < bics[best_k - 1]) best_k = k;
    }
    std::printf("%-14s", scenario.name);
    for (int k = 1; k <= 4; ++k) std::printf(" %8.2f", reductions[k - 1]);
    std::printf("        K=%d\n", best_k);
    std::printf("%-14s", "  fit [ms]");
    for (int k = 1; k <= 4; ++k) std::printf(" %8.1f", times_ms[k - 1]);
    std::printf("\n");
  }
  bench::print_rule(64);
  std::printf(
      "K=2 captures most of the achievable reduction on two-mechanism\n"
      "data at roughly half the K=4 fit cost — the paper's LVF^2 choice.\n");
  return 0;
}
