#pragma once
// lvf2d wire protocol: length-prefixed JSON frames over a stream
// socket. A frame is a 4-byte big-endian payload length followed by
// that many bytes of UTF-8 JSON (the document model is obs::JsonValue
// — the same codec as every other sink in the tree).
//
//   request:  {"id":N,"op":"<name>","deadline_ms":D,"params":{...}}
//   response: {"id":N,"status":"<code>","degradation":"<rung>",
//              "elapsed_ms":E,["retry_after_ms":R,]["error":"...",]
//              "result":{...}}
//
// "status" is a canonical core::StatusCode name ("ok",
// "deadline_exceeded", "resource_exhausted", ...); "degradation" is
// the rung of the shed chain that produced the answer ("none",
// "cached", "single_sn", "point_mass"). A shed answer is ok + a
// non-"none" degradation, never an error — see DESIGN.md decision 19.
//
// The read/write loops absorb real EINTRs and short transfers, and
// the robust harness injects both (socket.read / socket.write) plus
// hard failures, so the retry paths are exercised deterministically
// in the soak. Hard failures surface as kUnavailable and end the
// connection; they never end the process.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/status.h"
#include "obs/json.h"

namespace lvf2::serve {

/// Frames above this size are rejected with kResourceExhausted
/// before any allocation — a malformed or hostile length prefix must
/// not be able to OOM the daemon.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Reads one frame into `body`. Blocking. kCancelled on a clean EOF
/// at a frame boundary (peer closed), kUnavailable on a mid-frame
/// EOF or a hard I/O failure, kResourceExhausted on an oversized
/// length prefix.
core::Status read_frame(int fd, std::string& body);

/// Writes one frame. Blocking; absorbs EINTR and short writes.
core::Status write_frame(int fd, std::string_view body);

/// One parsed request. `deadline_ms` <= 0 means "no explicit
/// deadline" (the server default applies).
struct Request {
  std::uint64_t id = 0;
  std::string op;
  double deadline_ms = 0.0;
  obs::JsonValue params;  ///< object; empty object when absent
};

/// Parses a request body. kParseError / kInvalidArgument on
/// malformed input; the caller still answers the frame (with the
/// error status) when an "id" could be recovered.
core::Status parse_request(const std::string& body, Request& out);

/// Serialized response frame bodies.
std::string render_response(std::uint64_t id, const core::Status& status,
                            std::string_view degradation, double elapsed_ms,
                            const obs::JsonValue* result,
                            double retry_after_ms = 0.0);

}  // namespace lvf2::serve
