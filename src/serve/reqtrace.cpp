#include "serve/reqtrace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"
#include "obs/metrics.h"

namespace lvf2::serve {

namespace detail {
std::atomic<bool> g_reqtrace_enabled{false};
}  // namespace detail

namespace {

void append_record(std::string& out, const RequestTrace& t) {
  out += "{\"rid\":";
  out += std::to_string(t.rid);
  out += ",\"conn\":";
  out += std::to_string(t.conn);
  out += ",\"op\":";
  obs::json_append_string(out, t.op);
  out += ",\"status\":";
  obs::json_append_string(out, t.status);
  out += ",\"degradation\":";
  obs::json_append_string(out, t.degradation);
  out += ",\"mode\":";
  obs::json_append_string(out, t.mode);
  out += ",\"queue_ms\":";
  obs::json_append_number(out, t.queue_ms);
  out += ",\"exec_ms\":";
  obs::json_append_number(out, t.exec_ms);
  out += ",\"bytes_in\":";
  out += std::to_string(t.bytes_in);
  out += ",\"bytes_out\":";
  out += std::to_string(t.bytes_out);
  out += "}\n";
}

}  // namespace

RequestTraceLog& RequestTraceLog::instance() {
  static RequestTraceLog* log = new RequestTraceLog();  // leaked
  return *log;
}

void RequestTraceLog::configure_from_env() {
  const char* path = std::getenv("LVF2_ACCESS_LOG");
  if (path == nullptr || path[0] == '\0') return;
  std::size_t max_kb = 4096;
  if (const char* cap = std::getenv("LVF2_ACCESS_LOG_MAX_KB");
      cap != nullptr && cap[0] != '\0') {
    const long parsed = std::strtol(cap, nullptr, 10);
    if (parsed > 0) max_kb = static_cast<std::size_t>(parsed);
  }
  if (configure(path, max_kb)) start();
}

bool RequestTraceLog::configure(std::string path, std::size_t max_kb) {
  if (running_.load(std::memory_order_relaxed)) return false;
  path_ = std::move(path);
  max_bytes_ = max_kb * 1024;
  return true;
}

void RequestTraceLog::start() {
  if (path_.empty() || running_.exchange(true)) return;
  // Truncate: each daemon run owns its log (rotation keeps history).
  if (std::FILE* f = std::fopen(path_.c_str(), "w")) std::fclose(f);
  file_bytes_ = 0;
  writer_ = std::thread([this] { writer_loop(); });
  detail::g_reqtrace_enabled.store(true, std::memory_order_relaxed);
}

void RequestTraceLog::stop() {
  detail::g_reqtrace_enabled.store(false, std::memory_order_relaxed);
  if (!running_.exchange(false)) return;
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  // Final drain: records pushed between the enabled flip and here.
  std::string buf;
  if (drain_into(buf) > 0) append_to_file(buf);
}

void RequestTraceLog::record(const RequestTrace& t) {
  if (!reqtrace_enabled()) return;
  static thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) ring = ring_for_this_thread();
  if (ring->try_push(t)) return;
  dropped_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& drops = obs::counter("serve.trace.dropped");
  drops.add();
}

TraceRing* RequestTraceLog::ring_for_this_thread() {
  std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.push_back(std::make_unique<TraceRing>());
  return rings_.back().get();
}

void RequestTraceLog::writer_loop() {
  std::string buf;
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(cv_mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
        return !running_.load(std::memory_order_relaxed);
      });
    }
    buf.clear();
    if (drain_into(buf) > 0) append_to_file(buf);
  }
}

std::size_t RequestTraceLog::drain_into(std::string& buf) {
  // Ring pointers are stable (unique_ptr nodes, never erased), so the
  // lock is only held to copy the pointer list, not while draining.
  std::vector<TraceRing*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::size_t drained = 0;
  RequestTrace t;
  for (TraceRing* ring : rings) {
    while (ring->try_pop(t)) {
      append_record(buf, t);
      ++drained;
    }
  }
  written_.fetch_add(drained, std::memory_order_relaxed);
  return drained;
}

void RequestTraceLog::append_to_file(const std::string& buf) {
  if (file_bytes_ + buf.size() > max_bytes_ && file_bytes_ > 0) {
    const std::string rotated = path_ + ".1";
    std::remove(rotated.c_str());
    std::rename(path_.c_str(), rotated.c_str());
    file_bytes_ = 0;
  }
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) return;  // best effort: tracing never fails requests
  std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  file_bytes_ += buf.size();
}

}  // namespace lvf2::serve
