#pragma once
// In-memory hot-entry LRU in front of the result-cache shard files.
// The shard store (cache::ResultCache) keeps every entry as a
// serialized JSON string and re-parses on every lookup; a serving
// replica answering the same handful of hot arcs thousands of times
// should pay that parse once. The LRU memoizes *rendered result
// documents* keyed by the entry's content-addressed hash, so a hot
// hit is a mutex + string copy. Capacity comes from LVF2_SERVE_LRU
// (default 4096 entries); serve.lru.{hit,miss,store,evict} count the
// traffic for the manifest's serve section.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace lvf2::serve {

inline constexpr std::size_t kDefaultLruCapacity = 4096;

/// Thread-safe LRU of serialized JSON values keyed by 64-bit hashes.
class HotLru {
 public:
  explicit HotLru(std::size_t capacity = kDefaultLruCapacity);

  /// The cached value, refreshed to most-recent; counts hit/miss.
  std::optional<std::string> get(std::uint64_t key);

  /// Inserts or refreshes `key`, evicting the least-recent entry when
  /// over capacity. A capacity of 0 disables the LRU (every get
  /// misses).
  void put(std::uint64_t key, std::string value);

  /// Re-sizes in place (the LRU is not movable — it owns a mutex),
  /// evicting down to the new capacity.
  void set_capacity(std::size_t capacity);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::uint64_t, std::string>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> order_;  ///< most-recent first
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace lvf2::serve
