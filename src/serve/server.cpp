#include "serve/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/cancel.h"
#include "exec/pool.h"
#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/reqtrace.h"
#include "serve/telemetry.h"

namespace lvf2::serve {

namespace {

/// Server-minted request ids: unique per process, monotone, never 0.
/// Distinct from the client-chosen Request::id echoed in responses —
/// the rid names the request in traces and refusal payloads even when
/// clients reuse ids across connections.
std::atomic<std::uint64_t> g_next_rid{1};
std::atomic<std::uint64_t> g_next_conn{1};

double env_double(const char* name, double fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || !(v == v)) return fallback;
  return v;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const double v = env_double(name, -1.0);
  if (v < 0.0) return fallback;
  return static_cast<std::size_t>(v);
}

double now_elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// The manifest's "serve" section. Fed exclusively from the global
// metrics registry (no server state), so the provider stays valid at
// atexit time, after the Server object is long gone.
std::string render_serve_section() {
  std::string out = "{";
  bool first = true;
  const auto add = [&](const char* key, double value) {
    if (!first) out += ",";
    first = false;
    obs::json_append_string(out, key);
    out += ":";
    obs::json_append_number(out, value);
  };
  const auto add_counter = [&](const char* key, const char* counter) {
    add(key, static_cast<double>(obs::counter(counter).value()));
  };
  add_counter("accepted", "serve.accepted");
  add_counter("responded", "serve.responded");
  add_counter("completed_full", "serve.completed.full");
  add_counter("completed_degraded", "serve.completed.degraded");
  add_counter("failed", "serve.completed.failed");
  add_counter("rejected", "serve.rejected");
  add_counter("drain_refused", "serve.drain_refused");
  add_counter("shed_overload", "serve.shed.overload");
  add_counter("shed_deadline", "serve.shed.deadline");
  add_counter("shed_drain", "serve.shed.drain");
  add_counter("degraded_cached", "serve.degraded.cached");
  add_counter("degraded_single_sn", "serve.degraded.single_sn");
  add_counter("degraded_point_mass", "serve.degraded.point_mass");
  add_counter("lru_hit", "serve.lru.hit");
  add_counter("lru_miss", "serve.lru.miss");
  add_counter("io_retry", "serve.io.retry");
  add_counter("io_injected_hard", "serve.io.injected_hard");
  add_counter("connections", "serve.connections");
  add("queue_high_water", obs::gauge("serve.queue.high_water").value());
  add("drained", obs::gauge("serve.drained").value());
  out += "}";
  return out;
}

// The manifest's "serve_telemetry" section: per-op totals, rung mix,
// quantiles, and the deadline block check.sh --serve gates on. The
// telemetry singleton is leaked, so this stays valid at atexit.
std::string render_serve_telemetry_section() {
  return ServeTelemetry::instance().manifest_section();
}

// A refused request (drain or admission-full) still leaves a trace
// record so the access log accounts for every parsed frame.
void trace_refusal(std::uint64_t rid, std::uint64_t conn_number,
                   const Request& request, const core::Status& status,
                   std::uint32_t bytes_in, std::size_t bytes_out) {
  if (!reqtrace_enabled()) return;
  RequestTrace t;
  t.rid = rid;
  t.conn = conn_number;
  t.bytes_in = bytes_in;
  t.bytes_out = static_cast<std::uint32_t>(bytes_out);
  RequestTrace::set_field(t.op, request.op);
  RequestTrace::set_field(t.status, core::to_string(status.code()));
  RequestTrace::set_field(t.degradation, "none");
  RequestTrace::set_field(t.mode, "refused");
  RequestTraceLog::instance().record(t);
}

}  // namespace

ServerOptions server_options_from_env() {
  ServerOptions options;
  if (const char* listen = std::getenv("LVF2_SERVE");
      listen != nullptr && *listen != '\0') {
    options.listen = listen;
  }
  options.default_deadline_ms = env_double("LVF2_DEADLINE_MS", 0.0);
  options.max_inflight = env_size("LVF2_MAX_INFLIGHT", 0);
  options.queue_capacity = env_size("LVF2_SERVE_QUEUE", 64);
  options.lru_capacity = env_size("LVF2_SERVE_LRU", kDefaultLruCapacity);
  options.characterize.mc_samples = env_size("LVF2_SERVE_SAMPLES", 2000);
  const std::size_t stride = env_size("LVF2_SERVE_GRID_STRIDE", 1);
  if (stride > 1) {
    options.characterize.grid = cells::SlewLoadGrid::reduced(stride);
  }
  return options;
}

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity,
             static_cast<std::size_t>(
                 static_cast<double>(options_.queue_capacity) *
                 options_.shed_fraction)) {
  context_.library = cells::build_paper_library(options_.library);
  context_.corner = options_.corner;
  context_.characterize = options_.characterize;
  context_.lru.set_capacity(options_.lru_capacity);
}

Server::~Server() {
  request_stop();
  wait();
}

core::Status Server::bind_listener() {
  const std::string& listen = options_.listen;
  if (listen.rfind("unix:", 0) == 0) {
    unix_path_ = listen.substr(5);
    if (unix_path_.empty()) {
      return core::Status::invalid_argument("empty unix socket path");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof(addr.sun_path)) {
      return core::Status::invalid_argument("unix socket path too long");
    }
    std::memcpy(addr.sun_path, unix_path_.c_str(), unix_path_.size() + 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return core::Status::unavailable(std::string("socket(): ") +
                                       std::strerror(errno));
    }
    ::unlink(unix_path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return core::Status::unavailable("bind(" + unix_path_ +
                                       "): " + std::strerror(errno));
    }
  } else if (listen.rfind("tcp:", 0) == 0) {
    char* end = nullptr;
    const long port = std::strtol(listen.c_str() + 4, &end, 10);
    if (end == listen.c_str() + 4 || port < 0 || port > 65535) {
      return core::Status::invalid_argument("bad tcp port in \"" + listen +
                                            "\"");
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return core::Status::unavailable(std::string("socket(): ") +
                                       std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return core::Status::unavailable("bind(" + listen +
                                       "): " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  } else {
    return core::Status::invalid_argument(
        "LVF2_SERVE must be unix:<path> or tcp:<port>, got \"" + listen +
        "\"");
  }
  if (::listen(listen_fd_, 64) != 0) {
    return core::Status::unavailable(std::string("listen(): ") +
                                     std::strerror(errno));
  }
  return core::Status::ok();
}

core::Status Server::start() {
  if (started_) return core::Status::invalid_argument("already started");
  if (::pipe(stop_pipe_) != 0) {
    return core::Status::unavailable(std::string("pipe(): ") +
                                     std::strerror(errno));
  }
  if (core::Status st = bind_listener(); !st.is_ok()) return st;
  obs::ManifestRecorder::instance().set_section_provider(
      "serve", render_serve_section);
  obs::ManifestRecorder::instance().set_section_provider(
      "serve_telemetry", render_serve_telemetry_section);
  {
    ServeTelemetry& telemetry = ServeTelemetry::instance();
    telemetry.set_deadline_budget_ms(options_.default_deadline_ms);
    // Cleared in wait(): the provider captures `this`.
    telemetry.set_queue_depth_provider([this] { return queue_.depth(); });
  }
  RequestTraceLog::instance().configure_from_env();
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
  obs::log_info("serve.started",
                {{"listen", options_.listen},
                 {"tcp_port", tcp_port_},
                 {"deadline_ms", options_.default_deadline_ms},
                 {"queue", options_.queue_capacity}});
  return core::Status::ok();
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    obs::counter("serve.connections").add(1);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->number = g_next_conn.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable { reader_loop(conn); });
  }
}

std::size_t Server::respond(Connection& conn, std::uint64_t id,
                            const core::Status& status,
                            std::string_view degradation, double elapsed_ms,
                            const obs::JsonValue* result,
                            double retry_after_ms) {
  const std::string body = render_response(id, status, degradation,
                                           elapsed_ms, result, retry_after_ms);
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (conn.broken.load(std::memory_order_relaxed)) return 0;
  if (core::Status st = write_frame(conn.fd, body); !st.is_ok()) {
    obs::counter("serve.io.write_failed").add(1);
    obs::log_warn("serve.write_failed", {{"error", st.to_string()}});
    // A failed write can leave the peer mid-frame with no way to
    // re-synchronize; shut the socket down so the peer sees EOF (and
    // reconnects) instead of blocking forever on the half-sent frame,
    // and so our own reader loop tears the connection down.
    conn.broken.store(true, std::memory_order_relaxed);
    ::shutdown(conn.fd, SHUT_RDWR);
    return 0;
  }
  return body.size();
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string body;
  while (true) {
    const core::Status read_status = read_frame(conn->fd, body);
    if (!read_status.is_ok()) {
      if (read_status.code() != core::StatusCode::kCancelled) {
        obs::counter("serve.io.read_failed").add(1);
        // An oversized frame is answerable (the stream is positioned
        // at the next frame boundary only if we drop the connection,
        // so tell the peer why before closing).
        if (read_status.code() == core::StatusCode::kResourceExhausted) {
          respond(*conn, 0, read_status, "none", 0.0, nullptr);
        }
      }
      break;
    }
    const auto arrival = std::chrono::steady_clock::now();
    const std::uint32_t bytes_in = static_cast<std::uint32_t>(body.size());
    Request request;
    if (core::Status st = parse_request(body, request); !st.is_ok()) {
      // Malformed body inside a well-formed frame: the connection
      // survives, the frame gets its error back.
      respond(*conn, request.id, st, "none", 0.0, nullptr);
      continue;
    }
    const std::uint64_t rid =
        g_next_rid.fetch_add(1, std::memory_order_relaxed);
    ServeTelemetry::instance().record_request(request.op);
    if (draining_.load(std::memory_order_relaxed)) {
      obs::counter("serve.drain_refused").add(1);
      // The refusal payload names the server-minted request id so a
      // client (or operator grepping the access log) can correlate
      // which in-flight requests the drain turned away.
      const core::Status refusal = core::Status::unavailable(
          "server draining; request " + std::to_string(rid) +
          " not admitted");
      const std::size_t bytes_out =
          respond(*conn, request.id, refusal, "none", 0.0, nullptr,
                  retry_after_hint_ms(queue_.depth()));
      trace_refusal(rid, conn->number, request, refusal, bytes_in,
                    bytes_out);
      continue;
    }
    PendingRequest item;
    item.conn = conn;
    item.request = std::move(request);
    item.arrival = arrival;
    item.rid = rid;
    item.bytes_in = bytes_in;
    const std::uint64_t id = item.request.id;
    const std::string op = item.request.op;  // survives the push
    // try_push marks item.shed when admission crosses the watermark;
    // the dispatcher reads the verdict off the queued item.
    if (queue_.try_push(std::move(item)) == Admit::kRejected) {
      obs::counter("serve.rejected").add(1);
      const core::Status refusal = core::Status::resource_exhausted(
          "admission queue full; request " + std::to_string(rid) +
          " not admitted");
      const std::size_t bytes_out =
          respond(*conn, id, refusal, "none", 0.0, nullptr,
                  retry_after_hint_ms(queue_.depth()));
      Request refused;
      refused.op = op;
      trace_refusal(rid, conn->number, refused, refusal, bytes_in,
                    bytes_out);
    } else {
      obs::counter("serve.accepted").add(1);
    }
  }
}

void Server::dispatcher_loop() {
  std::size_t max_inflight = options_.max_inflight;
  if (max_inflight == 0) max_inflight = exec::thread_count();
  if (max_inflight == 0) max_inflight = 1;
  std::vector<PendingRequest> batch;
  while (true) {
    std::optional<PendingRequest> first = queue_.pop();
    if (!first.has_value()) break;
    batch.clear();
    batch.push_back(std::move(*first));
    while (batch.size() < max_inflight) {
      std::optional<PendingRequest> more = queue_.try_pop();
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    obs::gauge("serve.batch_size").set(static_cast<double>(batch.size()));
    exec::parallel_for(batch.size(), 1,
                       [&](std::size_t i) { process(batch[i]); });
  }
}

void Server::process(PendingRequest& item) {
  static obs::Histogram& latency = obs::histogram(
      "serve.latency_ms", {1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000});
  // Timeline split: queue_ms covers arrival -> here (admission wait +
  // dispatch), exec_ms covers the handler + response write.
  const auto exec_start = std::chrono::steady_clock::now();
  const double queue_ms = std::chrono::duration<double, std::milli>(
                              exec_start - item.arrival)
                              .count();
  ServeTelemetry& telemetry = ServeTelemetry::instance();
  telemetry.inflight_add(1);
  ExecMode mode = ExecMode::kFull;
  if (draining_.load(std::memory_order_relaxed)) {
    // Drain shed: queued work still gets an answer, from the floor.
    obs::counter("serve.shed.drain").add(1);
    mode = ExecMode::kShedFloor;
  } else if (item.shed) {
    obs::counter("serve.shed.overload").add(1);
    mode = ExecMode::kShedLight;
  }

  double budget_ms = item.request.deadline_ms > 0.0
                         ? item.request.deadline_ms
                         : options_.default_deadline_ms;
  HandlerResult result;
  if (budget_ms > 0.0) {
    // The clock started at arrival: queue wait burns budget too.
    const double remaining = budget_ms - now_elapsed_ms(item.arrival);
    if (remaining <= 0.0) {
      obs::counter("serve.shed.deadline").add(1);
      mode = ExecMode::kShedFloor;
      result = handle_request(context_, item.request, mode);
    } else {
      core::DeadlineGuard guard(remaining);
      result = handle_request(context_, item.request, mode);
    }
  } else {
    result = handle_request(context_, item.request, mode);
  }

  const double elapsed_ms = now_elapsed_ms(item.arrival);
  latency.observe(elapsed_ms);
  if (!result.status.is_ok()) {
    obs::counter("serve.completed.failed").add(1);
  } else if (result.degradation != "none") {
    obs::counter("serve.completed.degraded").add(1);
  } else {
    obs::counter("serve.completed.full").add(1);
  }
  const std::size_t bytes_out =
      respond(*item.conn, item.request.id, result.status, result.degradation,
              elapsed_ms, result.status.is_ok() ? &result.result : nullptr);
  obs::counter("serve.responded").add(1);
  const double exec_ms = now_elapsed_ms(exec_start);
  telemetry.inflight_add(-1);
  telemetry.record_response(item.request.op, result.status.is_ok(),
                            result.degradation, queue_ms, exec_ms,
                            budget_ms);
  if (reqtrace_enabled()) {
    RequestTrace t;
    t.rid = item.rid;
    t.conn = item.conn->number;
    t.queue_ms = queue_ms;
    t.exec_ms = exec_ms;
    t.bytes_in = item.bytes_in;
    t.bytes_out = static_cast<std::uint32_t>(bytes_out);
    RequestTrace::set_field(t.op, item.request.op);
    RequestTrace::set_field(t.status, core::to_string(result.status.code()));
    RequestTrace::set_field(t.degradation, result.degradation);
    RequestTrace::set_field(t.mode, "ok");
    RequestTraceLog::instance().record(t);
  }
}

void Server::request_stop() {
  if (!started_ || stop_requested_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);
  obs::log_info("serve.draining", {{"queued", queue_.depth()}});
  // Wake the accept loop.
  const char byte = 1;
  while (::write(stop_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
  // Close admission: pending items drain (shed to the floor), new
  // frames get "draining".
  queue_.close();
  // Wake readers blocked in read(): shutting the read side delivers
  // EOF without disturbing in-flight response writes.
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (const std::weak_ptr<Connection>& weak : conns_) {
    if (auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RD);
  }
}

void Server::wait() {
  if (!started_ || joined_) return;
  if (!stop_requested_.load()) return;  // still serving
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (std::thread& t : reader_threads_) {
      if (t.joinable()) t.join();
    }
    reader_threads_.clear();
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  obs::gauge("serve.queue.high_water")
      .set(static_cast<double>(queue_.high_water()));
  obs::gauge("serve.drained").set(1.0);
  // The provider captured `this`; the telemetry singleton outlives us.
  ServeTelemetry::instance().set_queue_depth_provider(nullptr);
  RequestTraceLog::instance().stop();
  joined_ = true;
  obs::log_info("serve.drained", {});
}

}  // namespace lvf2::serve
