#pragma once
// lvf2d request handlers: the query ops and the graceful-degradation
// chain behind them. Every op that needs a characterized table entry
// acquires it through a three-tier chain whose depth depends on how
// much compute the server is willing to spend on the request:
//
//   kFull       hot LRU -> result-cache shard -> full MC + EM fit
//   kShedLight  hot LRU -> result-cache shard -> 128-sample analytic
//               moments (single skew-normal, "single_sn")
//   kShedFloor  hot LRU -> result-cache shard -> nominal-only point
//               mass ("point_mass")
//
// kShedLight answers overload sheds (admission watermark crossed:
// some budget left, none to waste); kShedFloor answers deadline
// expiry and drain sheds (no budget at all). A shed answer is status
// ok with a non-"none" degradation tag — the client learns what
// quality it got, and nobody gets an error for being unlucky about
// arrival time (DESIGN.md decision 19).

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

#include "cells/characterize.h"
#include "cells/library.h"
#include "core/status.h"
#include "obs/json.h"
#include "serve/lru.h"
#include "serve/protocol.h"
#include "spice/process.h"

namespace lvf2::serve {

/// How much compute a request is allowed to spend (see above).
enum class ExecMode {
  kFull,
  kShedLight,
  kShedFloor,
};

/// Long-lived handler state: the library being served, the
/// characterization configuration (grid / samples / corner), and the
/// hot-entry LRU. One per server; all methods thread-safe.
struct HandlerContext {
  cells::StandardCellLibrary library;
  spice::ProcessCorner corner = spice::ProcessCorner::tt_global_local_mc();
  cells::CharacterizeOptions characterize;
  HotLru lru;

  /// Single-flight coalescing state for identical-key full
  /// characterizations (acquire_entry): the first request through
  /// becomes the leader and computes; concurrent identical-key
  /// requests wait (counted in serve.coalesced) and re-read the
  /// caches when the leader finishes, instead of burning a pool slot
  /// on the same Monte Carlo.
  std::mutex flight_mutex;
  std::condition_variable flight_cv;
  std::unordered_set<std::uint64_t> inflight_keys;
};

/// Outcome of one handled request.
struct HandlerResult {
  core::Status status;
  std::string degradation = "none";
  obs::JsonValue result;
};

/// Executes one request under `mode`. Never throws: a deadline expiry
/// mid-compute is caught internally and re-answered from the
/// degradation floor; any other failure becomes the result's Status.
/// Ops: ping, stats, metrics, arc_dist, bin, yield3, path_ssta
/// (README "Serving" documents params and results).
HandlerResult handle_request(HandlerContext& ctx, const Request& request,
                             ExecMode mode);

}  // namespace lvf2::serve
