#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "robust/faults.h"

namespace lvf2::serve {

namespace {

// Outcome of one injected socket fault. A fired fault is shaped by a
// deterministic draw: one in four is a hard failure, one in four a
// spurious EINTR, and the rest a short transfer — every branch of the
// retry loops gets exercised under the soak.
enum class InjectedIo { kNone, kEintr, kShort, kHard };

InjectedIo injected_io(robust::Fault fault) {
  if (!robust::fire(fault)) return InjectedIo::kNone;
  switch (robust::FaultInjector::instance().draw(fault) % 4) {
    case 0:
      obs::counter("serve.io.injected_hard").add(1);
      return InjectedIo::kHard;
    case 1:
      obs::counter("serve.io.injected_eintr").add(1);
      return InjectedIo::kEintr;
    default:
      obs::counter("serve.io.injected_short").add(1);
      return InjectedIo::kShort;
  }
}

// Reads exactly `size` bytes, absorbing EINTR and short reads. When
// `clean_eof` is non-null, an EOF before the first byte is a clean
// close (kCancelled) rather than a truncation (kUnavailable).
core::Status read_full(int fd, void* buf, std::size_t size,
                       bool allow_clean_eof) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t done = 0;
  while (done < size) {
    std::size_t want = size - done;
    switch (injected_io(robust::Fault::kSocketRead)) {
      case InjectedIo::kHard:
        return core::Status::unavailable("injected socket read failure");
      case InjectedIo::kEintr:
        obs::counter("serve.io.retry").add(1);
        continue;
      case InjectedIo::kShort:
        want = want > 1 ? want / 2 : want;
        break;
      case InjectedIo::kNone:
        break;
    }
    const ssize_t n = ::read(fd, p + done, want);
    if (n < 0) {
      if (errno == EINTR) {
        obs::counter("serve.io.retry").add(1);
        continue;
      }
      return core::Status::unavailable(std::string("socket read failed: ") +
                                       std::strerror(errno));
    }
    if (n == 0) {
      if (allow_clean_eof && done == 0) {
        return core::Status::cancelled("peer closed connection");
      }
      return core::Status::unavailable("truncated frame");
    }
    done += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

// Writes exactly `size` bytes, absorbing EINTR and short writes.
core::Status write_full(int fd, const void* buf, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t done = 0;
  while (done < size) {
    std::size_t want = size - done;
    switch (injected_io(robust::Fault::kSocketWrite)) {
      case InjectedIo::kHard:
        return core::Status::unavailable("injected socket write failure");
      case InjectedIo::kEintr:
        obs::counter("serve.io.retry").add(1);
        continue;
      case InjectedIo::kShort:
        want = want > 1 ? want / 2 : want;
        break;
      case InjectedIo::kNone:
        break;
    }
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as
    // EPIPE here, not as a process-killing SIGPIPE. Non-socket fds
    // (tests over pipes) fall back to plain write().
    ssize_t n = ::send(fd, p + done, want, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p + done, want);
    if (n < 0) {
      if (errno == EINTR) {
        obs::counter("serve.io.retry").add(1);
        continue;
      }
      return core::Status::unavailable(std::string("socket write failed: ") +
                                       std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return core::Status::ok();
}

}  // namespace

core::Status read_frame(int fd, std::string& body) {
  unsigned char header[4];
  if (core::Status st = read_full(fd, header, sizeof(header), true);
      !st.is_ok()) {
    return st;
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                               (static_cast<std::uint32_t>(header[1]) << 16) |
                               (static_cast<std::uint32_t>(header[2]) << 8) |
                               static_cast<std::uint32_t>(header[3]);
  if (length > kMaxFrameBytes) {
    return core::Status::resource_exhausted("frame of " +
                                            std::to_string(length) +
                                            " bytes exceeds the 1 MiB limit");
  }
  body.resize(length);
  if (length == 0) return core::Status::ok();
  return read_full(fd, body.data(), length, false);
}

core::Status write_frame(int fd, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    return core::Status::resource_exhausted("response exceeds the frame limit");
  }
  const auto length = static_cast<std::uint32_t>(body.size());
  std::string frame;
  frame.reserve(body.size() + 4);
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(body);
  return write_full(fd, frame.data(), frame.size());
}

core::Status parse_request(const std::string& body, Request& out) {
  std::string error;
  std::optional<obs::JsonValue> doc = obs::json_parse(body, &error);
  if (!doc) return core::Status::parse_error("bad request JSON: " + error);
  if (!doc->is_object()) {
    return core::Status::invalid_argument("request must be a JSON object");
  }
  out.id = static_cast<std::uint64_t>(doc->number_or("id", 0.0));
  out.op = doc->string_or("op", "");
  out.deadline_ms = doc->number_or("deadline_ms", 0.0);
  if (const obs::JsonValue* params = doc->find("params");
      params != nullptr && params->is_object()) {
    out.params = *params;
  } else {
    out.params = obs::JsonValue{};
    out.params.type = obs::JsonValue::Type::kObject;
  }
  if (out.op.empty()) {
    return core::Status::invalid_argument("request is missing \"op\"");
  }
  return core::Status::ok();
}

std::string render_response(std::uint64_t id, const core::Status& status,
                            std::string_view degradation, double elapsed_ms,
                            const obs::JsonValue* result,
                            double retry_after_ms) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"status\":";
  obs::json_append_string(out, core::to_string(status.code()));
  out += ",\"degradation\":";
  obs::json_append_string(out, degradation);
  out += ",\"elapsed_ms\":";
  obs::json_append_number(out, elapsed_ms);
  if (retry_after_ms > 0.0) {
    out += ",\"retry_after_ms\":";
    obs::json_append_number(out, retry_after_ms);
  }
  if (!status.is_ok() && !status.message().empty()) {
    out += ",\"error\":";
    obs::json_append_string(out, status.message());
  }
  if (result != nullptr) {
    out += ",\"result\":";
    obs::json_write(*result, out);
  }
  out += "}";
  return out;
}

}  // namespace lvf2::serve
