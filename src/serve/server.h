#pragma once
// lvf2d server core: listener, per-connection readers, and a
// dispatcher that executes admitted requests on the shared exec::Pool.
//
// Lifecycle:
//   Server s(options); s.start();       // bind + listen + threads up
//   ... requests flow ...
//   s.request_stop();                   // begin graceful drain
//   s.wait();                           // everything joined, stats final
//
// Graceful drain (request_stop): stop accepting connections, close
// the admission queue (readers answer new frames with kUnavailable
// "draining"), shed still-queued requests to the degradation floor
// (tagged, never dropped), let in-flight computes finish, shut the
// read side of every connection so blocked readers wake, then join.
// The process's atexit sinks (metrics, manifest) then flush as usual —
// the manifest's "serve" section is fed entirely from global counters
// so it stays valid at exit time.
//
// Threading: one accept thread, one reader thread per connection, one
// dispatcher thread that pops batches of up to max_inflight requests
// and fans them out with exec::parallel_for — the request body runs
// on one pool slot, where its DeadlineGuard arms the thread-local
// deadline for the checkpoint hooks in MC / EM / SSTA loops.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "serve/admission.h"
#include "serve/handlers.h"

namespace lvf2::serve {

struct ServerOptions {
  /// "unix:<path>" or "tcp:<port>" (loopback only; port 0 picks an
  /// ephemeral port, see Server::tcp_port()).
  std::string listen = "unix:/tmp/lvf2d.sock";
  /// Default per-request budget when the request carries none;
  /// <= 0 means no deadline (LVF2_DEADLINE_MS).
  double default_deadline_ms = 0.0;
  /// Requests dispatched concurrently per batch; 0 = the pool's
  /// thread budget (LVF2_MAX_INFLIGHT).
  std::size_t max_inflight = 0;
  /// Admission queue capacity (LVF2_SERVE_QUEUE).
  std::size_t queue_capacity = 64;
  /// Queue fill fraction above which admitted requests are marked for
  /// the shed chain.
  double shed_fraction = 0.75;
  /// Hot-entry LRU capacity (LVF2_SERVE_LRU; 0 disables).
  std::size_t lru_capacity = kDefaultLruCapacity;
  /// What to serve.
  cells::LibraryOptions library;
  cells::CharacterizeOptions characterize;
  spice::ProcessCorner corner = spice::ProcessCorner::tt_global_local_mc();
};

/// Options from the environment: LVF2_SERVE, LVF2_DEADLINE_MS,
/// LVF2_MAX_INFLIGHT, LVF2_SERVE_QUEUE, LVF2_SERVE_LRU,
/// LVF2_SERVE_SAMPLES, LVF2_SERVE_GRID_STRIDE (see README "Serving").
ServerOptions server_options_from_env();

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the accept + dispatcher threads.
  core::Status start();

  /// Begins the graceful drain (idempotent, normal context — signal
  /// handlers should write a self-pipe and let the main thread call
  /// this).
  void request_stop();

  /// Joins every thread; returns once drained. Implies the drain has
  /// been requested.
  void wait();

  /// The bound TCP port (after start(); 0 for unix listeners).
  int tcp_port() const { return tcp_port_; }

  const ServerOptions& options() const { return options_; }
  HandlerContext& context() { return context_; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t number = 0;  ///< accept-order id, for request traces
    std::mutex write_mutex;
    /// Set when a response write failed: the peer is stuck mid-frame,
    /// so the stream can never be re-synchronized and must be torn
    /// down rather than reused.
    std::atomic<bool> broken{false};
    ~Connection();
  };

  struct PendingRequest {
    std::shared_ptr<Connection> conn;
    Request request;
    std::chrono::steady_clock::time_point arrival;
    std::uint64_t rid = 0;        ///< server-minted request id
    std::uint32_t bytes_in = 0;   ///< request frame payload bytes
    bool shed = false;  ///< admitted above the watermark
  };

  core::Status bind_listener();
  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void dispatcher_loop();
  void process(PendingRequest& item);
  /// Returns the response payload bytes written (0 when the write
  /// failed or the connection was already broken) — the request
  /// trace's bytes_out.
  std::size_t respond(Connection& conn, std::uint64_t id,
                      const core::Status& status,
                      std::string_view degradation, double elapsed_ms,
                      const obs::JsonValue* result,
                      double retry_after_ms = 0.0);

  ServerOptions options_;
  HandlerContext context_;
  AdmissionQueue<PendingRequest> queue_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int tcp_port_ = 0;
  std::string unix_path_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};
  bool started_ = false;
  bool joined_ = false;

  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  std::mutex conns_mutex_;
  std::vector<std::thread> reader_threads_;
  std::vector<std::weak_ptr<Connection>> conns_;
};

}  // namespace lvf2::serve
