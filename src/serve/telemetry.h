#pragma once
// Live serving telemetry behind the `metrics` protocol op and the
// manifest's "serve_telemetry" section: per-op request/response
// counts, degradation-rung mix, rolling 1s/10s/60s request rates,
// queue-wait / exec-wall quantile digests, and deadline-compliance
// ratios. One leaked process-wide singleton, same lifetime contract
// as the metrics registry — the manifest section provider reads it at
// atexit, long after the Server object is gone.
//
// Cost model: recording is a handful of relaxed atomic increments
// plus two digest observations (an uncontended mutex each) per
// request — request handling is milliseconds, this is nanoseconds.
// Snapshotting (the `metrics` op) walks everything under the op-map
// mutex; it is read-path-only and never blocks recording for long.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/metrics.h"

namespace lvf2::serve {

/// Rolling per-second event counts over the last 64 seconds, written
/// lock-free. Bucket claiming races can misattribute a handful of
/// events at second boundaries under heavy concurrency — rates are
/// for operators' eyes, the exact totals live in the counters.
class RateWindow {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t now_s, std::uint64_t n = 1) {
    const std::size_t i =
        static_cast<std::size_t>(now_s) & (kBuckets - 1);
    std::int64_t stamp = stamps_[i].load(std::memory_order_relaxed);
    if (stamp != now_s &&
        stamps_[i].compare_exchange_strong(stamp, now_s,
                                           std::memory_order_relaxed)) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    counts_[i].fetch_add(n, std::memory_order_relaxed);
  }

  /// Events in the `span_s` whole seconds ending at (and including)
  /// `now_s`.
  std::uint64_t sum(std::int64_t now_s, int span_s) const {
    std::uint64_t total = 0;
    if (span_s > kBuckets) span_s = kBuckets;
    for (int k = 0; k < span_s; ++k) {
      const std::int64_t s = now_s - k;
      if (s < 0) break;
      const std::size_t i = static_cast<std::size_t>(s) & (kBuckets - 1);
      if (stamps_[i].load(std::memory_order_relaxed) == s) {
        total += counts_[i].load(std::memory_order_relaxed);
      }
    }
    return total;
  }

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> stamps_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

/// Per-op serving statistics. Stable address once created (map node);
/// every field is independently thread-safe.
struct OpStats {
  std::atomic<std::uint64_t> requests{0};   ///< parsed frames (pre-queue)
  std::atomic<std::uint64_t> responded{0};  ///< answered by process()
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  /// Degradation-rung mix of ok answers: none/cached/single_sn/
  /// point_mass.
  std::array<std::atomic<std::uint64_t>, 4> rung{};
  std::atomic<std::uint64_t> deadline_total{0};
  std::atomic<std::uint64_t> deadline_met{0};
  RateWindow rate;
  obs::Digest queue_ms{64.0};
  obs::Digest exec_ms{64.0};
};

/// Index into OpStats::rung for a degradation tag.
std::size_t rung_index(std::string_view degradation);
std::string_view rung_name(std::size_t index);

class ServeTelemetry {
 public:
  static ServeTelemetry& instance();

  /// Seconds since the telemetry singleton was created (~ process
  /// start), as a monotone integer — the RateWindow clock.
  std::int64_t now_s() const;
  double uptime_s() const;

  /// Per-op stats row. Unknown ops fold into "other" so a hostile
  /// client cannot grow the map without bound.
  OpStats& op(std::string_view name);

  /// Records a parsed request (reader side, pre-admission).
  void record_request(std::string_view op);

  /// Records a completed response (dispatcher side). `budget_ms` <= 0
  /// means the request ran without a deadline; `met` is whether the
  /// whole timeline fit the budget.
  void record_response(std::string_view op, bool is_ok,
                       std::string_view degradation, double queue_ms,
                       double exec_ms, double budget_ms);

  /// In-flight request tracking (between dispatch and respond).
  void inflight_add(int delta);
  std::int64_t inflight() const;

  /// The server installs a live queue-depth reader at start() and
  /// clears it in wait(); snapshots report 0 when no server is up.
  void set_queue_depth_provider(std::function<std::size_t()> provider);
  std::size_t queue_depth() const;

  /// Configured default deadline budget (ms; 0 = none), for SLO
  /// reporting. Set by the server at start().
  void set_deadline_budget_ms(double budget);
  double deadline_budget_ms() const;

  /// The `metrics` op JSON payload: uptime, queue/inflight, per-op
  /// rows (counts, rung mix, 1s/10s/60s rates, deadline compliance,
  /// queue/exec quantiles) and the full metrics-registry state.
  obs::JsonValue snapshot_json() const;
  /// Prometheus text exposition: the registry families plus per-op
  /// labeled families (lvf2_serve_op_*) and uptime.
  std::string prometheus() const;
  /// The manifest "serve_telemetry" section (serialized JSON object).
  std::string manifest_section() const;

 private:
  ServeTelemetry();

  std::chrono::steady_clock::time_point start_;
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<double> deadline_budget_ms_{0.0};
  mutable std::mutex ops_mutex_;
  std::map<std::string, OpStats, std::less<>> ops_;
  mutable std::mutex provider_mutex_;
  std::function<std::size_t()> queue_depth_provider_;
};

}  // namespace lvf2::serve
