#pragma once
// Admission control: a bounded MPMC request queue with a shed
// watermark. Connection readers push, the dispatcher pops. Three
// admission outcomes:
//
//   kAccepted      depth below the watermark — full-quality compute
//   kAcceptedShed  watermark <= depth < capacity — the request is
//                  admitted but marked for the degradation chain
//                  (cached row -> analytic moments -> point mass), so
//                  an overloaded replica answers *something* for
//                  everyone instead of timing out for most
//   kRejected      queue full — the caller answers immediately with
//                  kResourceExhausted and a retry_after_ms hint
//
// close() wakes every waiter; pending items keep draining (pop keeps
// returning them) so a SIGTERM drain can finish or shed in-flight
// work before the process exits.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace lvf2::serve {

enum class Admit {
  kAccepted,
  kAcceptedShed,
  kRejected,
};

template <typename T>
class AdmissionQueue {
 public:
  /// `watermark` is clamped into [1, capacity].
  AdmissionQueue(std::size_t capacity, std::size_t watermark)
      : capacity_(capacity == 0 ? 1 : capacity),
        watermark_(watermark == 0 ? 1 : watermark) {
    if (watermark_ > capacity_) watermark_ = capacity_;
  }

  /// Non-blocking push. kRejected when full or (for new work) closed.
  /// When T has a bool `shed` member, a kAcceptedShed admission sets
  /// it before enqueueing, so the consumer sees the verdict on the
  /// item itself.
  Admit try_push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return Admit::kRejected;
    const Admit verdict = items_.size() + 1 >= watermark_
                              ? Admit::kAcceptedShed
                              : Admit::kAccepted;
    if constexpr (requires { item.shed = true; }) {
      if (verdict == Admit::kAcceptedShed) item.shed = true;
    }
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    ready_.notify_one();
    return verdict;
  }

  /// Blocks until an item is available or the queue is closed and
  /// drained; nullopt means "no more work, ever".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop; nullopt when the queue is momentarily empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission and wakes every popper; queued items still drain.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Deepest the queue ever got (backpressure telemetry).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t watermark() const { return watermark_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::size_t capacity_;
  std::size_t watermark_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t high_water_ = 0;
};

/// Backoff hint for a rejected request: proportional to the queue
/// depth (each queued item is roughly one compute slice of latency),
/// clamped to a sane range so clients neither hammer nor stall.
inline double retry_after_hint_ms(std::size_t depth) {
  const double hint = 5.0 * static_cast<double>(depth);
  if (hint < 25.0) return 25.0;
  if (hint > 1000.0) return 1000.0;
  return hint;
}

}  // namespace lvf2::serve
