#include "serve/handlers.h"

#include <chrono>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "cells/characterize_cache.h"
#include "core/binning.h"
#include "core/cancel.h"
#include "core/lvf2_model.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/telemetry.h"
#include "spice/montecarlo.h"
#include "ssta/block_ssta.h"
#include "stats/grid_pdf.h"
#include "stats/rng.h"
#include "stats/skew_normal.h"
#include "yield/importance.h"

namespace lvf2::serve {

namespace {

// A characterized entry plus the degradation rung that produced it.
struct EntryView {
  cells::ConditionCharacterization cc;
  std::string degradation = "none";
};

struct ArcRef {
  const cells::Cell* cell = nullptr;
  const cells::TimingArc* arc = nullptr;
  std::string arc_label;
  std::size_t load_idx = 0;
  std::size_t slew_idx = 0;
};

core::StatusOr<ArcRef> resolve_arc(const HandlerContext& ctx,
                                   const obs::JsonValue& params) {
  ArcRef ref;
  const std::string cell_name = params.string_or("cell", "");
  if (cell_name.empty()) {
    return core::Status::invalid_argument("params.cell is required");
  }
  ref.cell = ctx.library.find(cell_name);
  if (ref.cell == nullptr) {
    return core::Status::not_found("unknown cell \"" + cell_name + "\"");
  }
  if (ref.cell->arcs.empty()) {
    return core::Status::not_found("cell \"" + cell_name + "\" has no arcs");
  }
  // "arc" selects by label string or by numeric index (default 0).
  if (const obs::JsonValue* arc = params.find("arc"); arc != nullptr) {
    if (arc->type == obs::JsonValue::Type::kString) {
      for (const cells::TimingArc& candidate : ref.cell->arcs) {
        if (candidate.label() == arc->string) {
          ref.arc = &candidate;
          break;
        }
      }
      if (ref.arc == nullptr) {
        return core::Status::not_found("unknown arc \"" + arc->string +
                                       "\" of cell \"" + cell_name + "\"");
      }
    } else if (arc->type == obs::JsonValue::Type::kNumber) {
      const double index = arc->number;
      if (index < 0.0 ||
          index >= static_cast<double>(ref.cell->arcs.size())) {
        return core::Status::invalid_argument("arc index out of range");
      }
      ref.arc = &ref.cell->arcs[static_cast<std::size_t>(index)];
    } else {
      return core::Status::invalid_argument(
          "params.arc must be a label or an index");
    }
  } else {
    ref.arc = &ref.cell->arcs.front();
  }
  ref.arc_label = ref.arc->label();

  const cells::SlewLoadGrid& grid = ctx.characterize.grid;
  const double li = params.number_or("load_idx", 0.0);
  const double si = params.number_or("slew_idx", 0.0);
  if (li < 0.0 || li >= static_cast<double>(grid.rows()) ||
      si < 0.0 || si >= static_cast<double>(grid.cols())) {
    return core::Status::invalid_argument(
        "load_idx/slew_idx outside the characterization grid");
  }
  ref.load_idx = static_cast<std::size_t>(li);
  ref.slew_idx = static_cast<std::size_t>(si);
  return ref;
}

// Tier 1+2 of the chain: the hot LRU, then the result-cache shard
// store (promoting a shard hit into the LRU). Returns nullopt on a
// double miss.
std::optional<EntryView> lookup_cached_entry(HandlerContext& ctx,
                                             std::uint64_t key,
                                             const char* tag) {
  if (auto hot = ctx.lru.get(key)) {
    if (auto doc = obs::json_parse(*hot)) {
      if (auto decoded = cells::decode_cached_entry(*doc)) {
        return EntryView{std::move(decoded->entry), tag};
      }
    }
  }
  if (cache::enabled()) {
    if (auto doc = cache::ResultCache::instance().lookup(key)) {
      if (auto decoded = cells::decode_cached_entry(*doc)) {
        ctx.lru.put(key, obs::json_write(*doc, obs::JsonWriteOptions{17}));
        return EntryView{std::move(decoded->entry), tag};
      }
    }
  }
  return std::nullopt;
}

// Tier 3a (kShedLight): 128-sample Monte Carlo + analytic moment fit.
// Bounded cost — roughly 1% of a full entry — and honest about it:
// the result carries only a single skew-normal (lambda = 0), tagged
// "single_sn".
EntryView analytic_entry(const HandlerContext& ctx, const ArcRef& ref) {
  static obs::Counter& degraded = obs::counter("serve.degraded.single_sn");
  degraded.add(1);
  EntryView view;
  view.degradation = "single_sn";
  cells::ConditionCharacterization& cc = view.cc;
  cc.condition =
      spice::ArcCondition{ctx.characterize.grid.slews_ns[ref.slew_idx],
                          ctx.characterize.grid.loads_pf[ref.load_idx]};
  const spice::StageTimes nominal =
      spice::nominal_stage_times(ref.arc->stage, cc.condition, ctx.corner);
  cc.nominal_delay_ns = nominal.delay_ns;
  cc.nominal_transition_ns = nominal.transition_ns;

  const cells::Characterizer characterizer(ctx.corner, ctx.characterize);
  spice::McConfig mc;
  mc.samples = 128;
  mc.use_lhs = ctx.characterize.use_lhs;
  mc.seed = characterizer.condition_seed(ref.cell->name, ref.arc_label,
                                         ref.load_idx, ref.slew_idx);
  const spice::McResult samples =
      spice::run_monte_carlo(ref.arc->stage, cc.condition, ctx.corner, mc);

  const auto fit = [](std::span<const double> xs,
                      double fallback) -> stats::SnMoments {
    if (auto sn = stats::SkewNormal::fit_moments(xs)) return sn->to_moments();
    return stats::SnMoments{fallback, 0.0, 0.0};
  };
  cc.lvf_delay = fit(samples.delay_ns, cc.nominal_delay_ns);
  cc.lvf_transition = fit(samples.transition_ns, cc.nominal_transition_ns);
  cc.lvf2_delay = core::Lvf2Parameters{0.0, cc.lvf_delay, cc.lvf_delay};
  cc.lvf2_transition =
      core::Lvf2Parameters{0.0, cc.lvf_transition, cc.lvf_transition};
  return view;
}

// Tier 3b (kShedFloor): nominal-only point mass. No sampling at all;
// the cheapest answer that is still an answer.
EntryView point_mass_entry(const HandlerContext& ctx, const ArcRef& ref) {
  static obs::Counter& degraded = obs::counter("serve.degraded.point_mass");
  degraded.add(1);
  EntryView view;
  view.degradation = "point_mass";
  cells::ConditionCharacterization& cc = view.cc;
  cc.condition =
      spice::ArcCondition{ctx.characterize.grid.slews_ns[ref.slew_idx],
                          ctx.characterize.grid.loads_pf[ref.load_idx]};
  const spice::StageTimes nominal =
      spice::nominal_stage_times(ref.arc->stage, cc.condition, ctx.corner);
  cc.nominal_delay_ns = nominal.delay_ns;
  cc.nominal_transition_ns = nominal.transition_ns;
  cc.lvf_delay = stats::SnMoments{cc.nominal_delay_ns, 0.0, 0.0};
  cc.lvf_transition = stats::SnMoments{cc.nominal_transition_ns, 0.0, 0.0};
  cc.lvf2_delay = core::Lvf2Parameters{0.0, cc.lvf_delay, cc.lvf_delay};
  cc.lvf2_transition =
      core::Lvf2Parameters{0.0, cc.lvf_transition, cc.lvf_transition};
  return view;
}

// Walks the degradation chain for `mode` (see handlers.h). May throw
// CancelledError out of the full compute; handle_request owns the
// catch and re-enters at the floor.
EntryView acquire_entry(HandlerContext& ctx, const ArcRef& ref,
                        ExecMode mode) {
  const std::uint64_t key =
      cells::entry_cache_key(ctx.corner, ctx.characterize, *ref.cell,
                             *ref.arc, ref.arc_label, ref.load_idx,
                             ref.slew_idx);
  // On the full path a cache hit is simply the fast way to the same
  // bytes ("none"); on a shed path it is rung 1 of the chain and the
  // client is told ("cached").
  const char* hit_tag = mode == ExecMode::kFull ? "none" : "cached";
  if (auto cached = lookup_cached_entry(ctx, key, hit_tag)) {
    if (mode != ExecMode::kFull) {
      obs::counter("serve.degraded.cached").add(1);
    }
    return std::move(*cached);
  }
  switch (mode) {
    case ExecMode::kShedLight:
      return analytic_entry(ctx, ref);
    case ExecMode::kShedFloor:
      return point_mass_entry(ctx, ref);
    case ExecMode::kFull:
      break;
  }
  // Single-flight: concurrent identical-key full computes coalesce
  // behind one leader. Followers wait in bounded slices (so an armed
  // deadline still fires via checkpoint -> CancelledError -> floor),
  // then re-read the caches the leader populated.
  {
    std::unique_lock<std::mutex> lock(ctx.flight_mutex);
    if (!ctx.inflight_keys.insert(key).second) {
      static obs::Counter& coalesced = obs::counter("serve.coalesced");
      coalesced.add(1);
      while (ctx.inflight_keys.count(key) != 0) {
        ctx.flight_cv.wait_for(lock, std::chrono::milliseconds(10));
        lock.unlock();
        core::checkpoint();  // honors this follower's own deadline
        lock.lock();
      }
      lock.unlock();
      if (auto cached = lookup_cached_entry(ctx, key, hit_tag)) {
        return std::move(*cached);
      }
      // The leader failed (entry not cached): retry, likely becoming
      // the new leader. Depth is bounded by the number of concurrent
      // identical-key requests.
      return acquire_entry(ctx, ref, mode);
    }
  }
  // Leader: the erase + notify must run on every exit path, including
  // a CancelledError unwinding out of the Monte Carlo.
  struct FlightGuard {
    HandlerContext& ctx;
    std::uint64_t key;
    ~FlightGuard() {
      {
        std::lock_guard<std::mutex> lock(ctx.flight_mutex);
        ctx.inflight_keys.erase(key);
      }
      ctx.flight_cv.notify_all();
    }
  } flight_guard{ctx, key};
  const cells::Characterizer characterizer(ctx.corner, ctx.characterize);
  EntryView view;
  view.cc = characterizer.characterize_entry(*ref.cell, *ref.arc,
                                             ref.arc_label, ref.load_idx,
                                             ref.slew_idx);
  if (view.cc.status.is_ok()) {
    const obs::JsonValue doc = cells::encode_cached_entry(
        ctx.corner, ctx.characterize, *ref.cell, ref.arc_label, ref.load_idx,
        ref.slew_idx, view.cc, nullptr);
    ctx.lru.put(key, obs::json_write(doc, obs::JsonWriteOptions{17}));
  }
  return view;
}

obs::JsonValue json_object() {
  obs::JsonValue v;
  v.type = obs::JsonValue::Type::kObject;
  return v;
}

obs::JsonValue json_number(double v) {
  obs::JsonValue out;
  out.type = obs::JsonValue::Type::kNumber;
  out.number = v;
  return out;
}

obs::JsonValue json_string(std::string s) {
  obs::JsonValue out;
  out.type = obs::JsonValue::Type::kString;
  out.string = std::move(s);
  return out;
}

obs::JsonValue moments_json(const stats::SnMoments& m) {
  obs::JsonValue out = json_object();
  out.object.emplace_back("mean", json_number(m.mean));
  out.object.emplace_back("stddev", json_number(m.stddev));
  out.object.emplace_back("skewness", json_number(m.skewness));
  return out;
}

obs::JsonValue lvf2_json(const core::Lvf2Parameters& p) {
  obs::JsonValue out = json_object();
  out.object.emplace_back("lambda", json_number(p.lambda));
  out.object.emplace_back("theta1", moments_json(p.theta1));
  out.object.emplace_back("theta2", moments_json(p.theta2));
  return out;
}

obs::JsonValue arc_header_json(const ArcRef& ref, const EntryView& view) {
  obs::JsonValue out = json_object();
  out.object.emplace_back("cell", json_string(ref.cell->name));
  out.object.emplace_back("arc", json_string(ref.arc_label));
  out.object.emplace_back("slew_ns",
                          json_number(view.cc.condition.slew_ns));
  out.object.emplace_back("load_pf",
                          json_number(view.cc.condition.load_pf));
  return out;
}

HandlerResult op_arc_dist(HandlerContext& ctx, const ArcRef& ref,
                          ExecMode mode) {
  const EntryView view = acquire_entry(ctx, ref, mode);
  HandlerResult out;
  out.degradation = view.degradation;
  out.result = arc_header_json(ref, view);
  out.result.object.emplace_back("nominal_delay_ns",
                                 json_number(view.cc.nominal_delay_ns));
  out.result.object.emplace_back(
      "nominal_transition_ns", json_number(view.cc.nominal_transition_ns));
  out.result.object.emplace_back("delay", moments_json(view.cc.lvf_delay));
  out.result.object.emplace_back("transition",
                                 moments_json(view.cc.lvf_transition));
  out.result.object.emplace_back("lvf2_delay", lvf2_json(view.cc.lvf2_delay));
  out.result.object.emplace_back("lvf2_transition",
                                 lvf2_json(view.cc.lvf2_transition));
  out.result.object.emplace_back("entry_status",
                                 json_string(view.cc.status.to_string()));
  return out;
}

HandlerResult op_bin(HandlerContext& ctx, const ArcRef& ref, ExecMode mode) {
  const EntryView view = acquire_entry(ctx, ref, mode);
  const core::Lvf2Model model =
      core::Lvf2Model::from_parameters(view.cc.lvf2_delay);
  const double mu = model.mean();
  const double sigma = model.stddev();
  HandlerResult out;
  out.degradation = view.degradation;
  out.result = arc_header_json(ref, view);
  obs::JsonValue bounds;
  bounds.type = obs::JsonValue::Type::kArray;
  obs::JsonValue probs;
  probs.type = obs::JsonValue::Type::kArray;
  if (sigma > 0.0 && std::isfinite(sigma)) {
    const std::vector<double> boundaries = core::sigma_bin_boundaries(mu, sigma);
    const std::vector<double> p = core::bin_probabilities(
        [&](double x) { return model.cdf(x); }, boundaries);
    for (const double b : boundaries) bounds.array.push_back(json_number(b));
    for (const double v : p) probs.array.push_back(json_number(v));
  } else {
    // Point mass: all probability lands in the bin holding mu. Emit
    // the degenerate boundaries so the client sees why.
    for (int k = -3; k <= 3; ++k) bounds.array.push_back(json_number(mu));
    for (int i = 0; i < 8; ++i) {
      probs.array.push_back(json_number(i == 0 ? 1.0 : 0.0));
    }
  }
  out.result.object.emplace_back("boundaries", std::move(bounds));
  out.result.object.emplace_back("probabilities", std::move(probs));
  out.result.object.emplace_back("model_mean", json_number(mu));
  out.result.object.emplace_back("model_stddev", json_number(sigma));
  return out;
}

HandlerResult op_yield3(HandlerContext& ctx, const ArcRef& ref,
                        ExecMode mode) {
  const EntryView view = acquire_entry(ctx, ref, mode);
  const core::Lvf2Model model =
      core::Lvf2Model::from_parameters(view.cc.lvf2_delay);
  const double mu = model.mean();
  const double sigma = model.stddev();
  const double t_max = mu + 3.0 * sigma;
  const double yield =
      (sigma > 0.0 && std::isfinite(sigma)) ? model.cdf(t_max) : 1.0;
  HandlerResult out;
  out.degradation = view.degradation;
  out.result = arc_header_json(ref, view);
  out.result.object.emplace_back("t_max_ns", json_number(t_max));
  out.result.object.emplace_back("yield", json_number(yield));
  return out;
}

HandlerResult op_path_ssta(HandlerContext& ctx, const ArcRef& ref,
                           ExecMode mode, const obs::JsonValue& params) {
  double depth_raw = params.number_or("depth", 8.0);
  if (depth_raw < 1.0) depth_raw = 1.0;
  if (depth_raw > 64.0) depth_raw = 64.0;
  const std::size_t depth = static_cast<std::size_t>(depth_raw);

  const EntryView view = acquire_entry(ctx, ref, mode);
  const core::Lvf2Model model =
      core::Lvf2Model::from_parameters(view.cc.lvf2_delay);
  const double mu = model.mean();
  const double sigma = model.stddev();

  HandlerResult out;
  out.degradation = view.degradation;
  out.result = arc_header_json(ref, view);
  out.result.object.emplace_back("depth",
                                 json_number(static_cast<double>(depth)));
  const bool analytic = view.degradation == "single_sn" ||
                        view.degradation == "point_mass" || sigma <= 0.0 ||
                        !std::isfinite(sigma);
  if (analytic) {
    // Independent-sum moments (CLT): no grid propagation, bounded
    // cost regardless of depth — the shed-path arithmetic.
    const double n = static_cast<double>(depth);
    const double mean_d = n * mu;
    const double sigma_d = sigma * std::sqrt(n);
    const double skew_d = model.skewness() / std::sqrt(n);
    double yield = 1.0;
    if (sigma_d > 0.0 && std::isfinite(sigma_d)) {
      const stats::SkewNormal endpoint =
          stats::SkewNormal::from_moments(mean_d, sigma_d, skew_d);
      yield = endpoint.cdf(mean_d + 3.0 * sigma_d);
    }
    out.result.object.emplace_back("arrival_mean_ns", json_number(mean_d));
    out.result.object.emplace_back("arrival_stddev_ns", json_number(sigma_d));
    out.result.object.emplace_back("yield_3sigma", json_number(yield));
    return out;
  }

  // Full path: tabulate the arc's mixture PDF and convolve it depth
  // times (identical-stage chain, paper Section 4.4 style). Runs
  // serially on the request's thread so the armed deadline covers the
  // per-stage checkpoints in propagate_chain.
  const stats::GridPdf stage = stats::GridPdf::from_function(
      [&](double x) { return model.pdf(x); }, mu - 8.0 * sigma,
      mu + 8.0 * sigma, 512);
  const std::vector<stats::GridPdf> stages(depth, stage);
  ssta::SstaOptions options;
  options.grid_points = 1024;
  options.max_conv_points = 2048;
  const std::vector<stats::GridPdf> cumulative =
      ssta::propagate_chain(stages, {}, options);
  const stats::GridPdf& endpoint = cumulative.back();
  const double mean_d = endpoint.mean();
  const double sigma_d = endpoint.stddev();
  out.result.object.emplace_back("arrival_mean_ns", json_number(mean_d));
  out.result.object.emplace_back("arrival_stddev_ns", json_number(sigma_d));
  out.result.object.emplace_back("arrival_skewness",
                                 json_number(endpoint.skewness()));
  out.result.object.emplace_back(
      "yield_3sigma", json_number(endpoint.cdf(mean_d + 3.0 * sigma_d)));
  return out;
}

// The `yield_hs` op: high-sigma failure probability of one arc at one
// grid condition, P(delay > mu + sigma*sd) with mu/sd taken from the
// entry's LVF2 delay model. The full path runs the importance-sampling
// engine (src/yield/) on the arc's stage — its sampling loops are
// checkpointed like every other compute here, so an armed deadline
// cancels mid-batch and handle_request re-enters at the floor. Shed
// rungs skip the sampling entirely and answer from the (degraded)
// model tail, honestly tagged via the degradation chain.
HandlerResult op_yield_hs(HandlerContext& ctx, const ArcRef& ref,
                          ExecMode mode, const obs::JsonValue& params) {
  double sigma = params.number_or("sigma", 3.0);
  if (sigma < 1.0) sigma = 1.0;
  if (sigma > 6.0) sigma = 6.0;
  double max_samples_raw = params.number_or("max_samples", 65536.0);
  if (max_samples_raw < 1024.0) max_samples_raw = 1024.0;
  if (max_samples_raw > 262144.0) max_samples_raw = 262144.0;

  const EntryView view = acquire_entry(ctx, ref, mode);
  const core::Lvf2Model model =
      core::Lvf2Model::from_parameters(view.cc.lvf2_delay);
  const double mu = model.mean();
  const double sd = model.stddev();
  const double threshold = mu + sigma * sd;

  HandlerResult out;
  out.degradation = view.degradation;
  out.result = arc_header_json(ref, view);
  out.result.object.emplace_back("sigma", json_number(sigma));
  out.result.object.emplace_back("threshold_ns", json_number(threshold));
  if (mode != ExecMode::kFull || !(sd > 0.0) || !std::isfinite(sd)) {
    const double p =
        (sd > 0.0 && std::isfinite(sd)) ? 1.0 - model.cdf(threshold) : 0.0;
    out.result.object.emplace_back("p_fail", json_number(p));
    out.result.object.emplace_back("method", json_string("model_tail"));
    return out;
  }

  yield::IsConfig cfg;
  cfg.batch_samples = 8192;
  cfg.max_samples = static_cast<std::size_t>(max_samples_raw);
  cfg.target_rel_err = 0.10;
  cfg.shards = 8;  // fixed: deterministic at any thread count
  const cells::Characterizer characterizer(ctx.corner, ctx.characterize);
  cfg.seed = stats::combine_seed(
      characterizer.condition_seed(ref.cell->name, ref.arc_label,
                                   ref.load_idx, ref.slew_idx),
      static_cast<std::uint64_t>(sigma * 100.0 + 0.5));
  const spice::ArcCondition condition{
      ctx.characterize.grid.slews_ns[ref.slew_idx],
      ctx.characterize.grid.loads_pf[ref.load_idx]};
  const yield::ImportanceSampler sampler(ref.arc->stage, condition,
                                         ctx.corner, cfg);
  const yield::IsEstimate est = sampler.estimate(threshold);
  double shift_norm = 0.0;
  for (const double s : est.shift) shift_norm += s * s;
  shift_norm = std::sqrt(shift_norm);
  out.result.object.emplace_back("p_fail", json_number(est.p_fail));
  out.result.object.emplace_back("std_err", json_number(est.std_err));
  out.result.object.emplace_back("rel_err", json_number(est.rel_err));
  out.result.object.emplace_back(
      "samples", json_number(static_cast<double>(est.samples)));
  out.result.object.emplace_back(
      "failures", json_number(static_cast<double>(est.failures)));
  out.result.object.emplace_back("ess", json_number(est.ess));
  out.result.object.emplace_back("max_weight_fraction",
                                 json_number(est.max_weight_fraction));
  out.result.object.emplace_back("shift_norm", json_number(shift_norm));
  obs::JsonValue converged;
  converged.type = obs::JsonValue::Type::kBool;
  converged.boolean = est.converged;
  out.result.object.emplace_back("converged", std::move(converged));
  out.result.object.emplace_back("method", json_string("importance"));
  return out;
}

HandlerResult op_stats(const HandlerContext& ctx) {
  HandlerResult out;
  out.result = json_object();
  const auto add = [&](const char* name, const char* counter) {
    out.result.object.emplace_back(
        name,
        json_number(static_cast<double>(obs::counter(counter).value())));
  };
  add("accepted", "serve.accepted");
  add("completed", "serve.completed");
  add("rejected", "serve.rejected");
  add("shed_overload", "serve.shed.overload");
  add("shed_deadline", "serve.shed.deadline");
  add("shed_drain", "serve.shed.drain");
  add("lru_hit", "serve.lru.hit");
  add("lru_miss", "serve.lru.miss");
  add("cache_hit", "cache.hit");
  add("cache_miss", "cache.miss");
  out.result.object.emplace_back(
      "lru_size", json_number(static_cast<double>(ctx.lru.size())));
  return out;
}

// The `metrics` op: the live telemetry snapshot (per-op counts, rung
// mix, rolling rates, deadline compliance, queue/exec quantiles, the
// whole metrics registry) as JSON, or the Prometheus text exposition
// wrapped in {"format":"prometheus","text":...} when
// params.format == "prometheus".
HandlerResult op_metrics(const obs::JsonValue& params) {
  const std::string format = params.string_or("format", "json");
  HandlerResult out;
  if (format == "prometheus") {
    out.result = json_object();
    out.result.object.emplace_back("format", json_string("prometheus"));
    out.result.object.emplace_back(
        "text", json_string(ServeTelemetry::instance().prometheus()));
    return out;
  }
  if (format != "json") {
    return HandlerResult{
        core::Status::invalid_argument(
            "params.format must be \"json\" or \"prometheus\""),
        "none",
        {}};
  }
  out.result = ServeTelemetry::instance().snapshot_json();
  return out;
}

HandlerResult dispatch(HandlerContext& ctx, const Request& request,
                       ExecMode mode) {
  if (request.op == "ping") {
    HandlerResult out;
    out.result = json_object();
    out.result.object.emplace_back("pong", json_number(1.0));
    return out;
  }
  if (request.op == "stats") return op_stats(ctx);
  if (request.op == "metrics") return op_metrics(request.params);
  const core::StatusOr<ArcRef> ref = resolve_arc(ctx, request.params);
  if (!ref.is_ok()) return HandlerResult{ref.status(), "none", {}};
  if (request.op == "arc_dist") return op_arc_dist(ctx, ref.value(), mode);
  if (request.op == "bin") return op_bin(ctx, ref.value(), mode);
  if (request.op == "yield3") return op_yield3(ctx, ref.value(), mode);
  if (request.op == "yield_hs") {
    return op_yield_hs(ctx, ref.value(), mode, request.params);
  }
  if (request.op == "path_ssta") {
    return op_path_ssta(ctx, ref.value(), mode, request.params);
  }
  return HandlerResult{
      core::Status::invalid_argument("unknown op \"" + request.op + "\""),
      "none",
      {}};
}

}  // namespace

HandlerResult handle_request(HandlerContext& ctx, const Request& request,
                             ExecMode mode) {
  try {
    return dispatch(ctx, request, mode);
  } catch (const core::CancelledError&) {
    // Deadline fired mid-compute: answer from the floor of the chain.
    // The fallback runs with the deadline suspended — it is bounded-
    // cost by construction and must not be cancelled half way into
    // rendering the answer.
    obs::counter("serve.shed.deadline").add(1);
    core::DeadlineSuspend suspend;
    try {
      return dispatch(ctx, request, ExecMode::kShedFloor);
    } catch (const std::exception& e) {
      return HandlerResult{core::status_from_exception(e), "none", {}};
    }
  } catch (const std::exception& e) {
    obs::counter("serve.handler_error").add(1);
    obs::log_warn("serve.handler_failed",
                  {{"op", request.op}, {"error", e.what()}});
    return HandlerResult{core::status_from_exception(e), "none", {}};
  }
}

}  // namespace lvf2::serve
