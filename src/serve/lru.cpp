#include "serve/lru.h"

#include "obs/metrics.h"

namespace lvf2::serve {

HotLru::HotLru(std::size_t capacity) : capacity_(capacity) {}

std::optional<std::string> HotLru::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    obs::counter("serve.lru.miss").add(1);
    return std::nullopt;
  }
  order_.splice(order_.begin(), order_, it->second);
  obs::counter("serve.lru.hit").add(1);
  return it->second->second;
}

void HotLru::put(std::uint64_t key, std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.emplace_front(key, std::move(value));
  index_[key] = order_.begin();
  obs::counter("serve.lru.store").add(1);
  while (order_.size() > capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    obs::counter("serve.lru.evict").add(1);
  }
}

void HotLru::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  while (order_.size() > capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    obs::counter("serve.lru.evict").add(1);
  }
}

std::size_t HotLru::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

}  // namespace lvf2::serve
