#include "serve/telemetry.h"

#include <utility>

namespace lvf2::serve {

namespace {

// Known op surface. Everything else folds into "other" so a hostile
// client spraying random op names cannot grow the stats map.
constexpr std::string_view kKnownOps[] = {
    "ping",   "stats",  "metrics",  "arc_dist",
    "bin",    "yield3", "yield_hs", "path_ssta"};

std::string_view fold_op(std::string_view name) {
  for (const std::string_view known : kKnownOps) {
    if (name == known) return known;
  }
  return "other";
}

obs::JsonValue json_object() {
  obs::JsonValue v;
  v.type = obs::JsonValue::Type::kObject;
  return v;
}

obs::JsonValue json_number(double v) {
  obs::JsonValue out;
  out.type = obs::JsonValue::Type::kNumber;
  out.number = v;
  return out;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 1.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

double quantile_or_zero(const obs::TDigest& d, double q) {
  return d.count() > 0.0 ? d.quantile(q) : 0.0;
}

}  // namespace

std::size_t rung_index(std::string_view degradation) {
  if (degradation == "cached") return 1;
  if (degradation == "single_sn") return 2;
  if (degradation == "point_mass") return 3;
  return 0;  // "none"
}

std::string_view rung_name(std::size_t index) {
  static constexpr std::string_view kNames[] = {"none", "cached",
                                                "single_sn", "point_mass"};
  return kNames[index < 4 ? index : 0];
}

ServeTelemetry::ServeTelemetry()
    : start_(std::chrono::steady_clock::now()) {}

ServeTelemetry& ServeTelemetry::instance() {
  static ServeTelemetry* telemetry = new ServeTelemetry();  // leaked
  return *telemetry;
}

std::int64_t ServeTelemetry::now_s() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double ServeTelemetry::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

OpStats& ServeTelemetry::op(std::string_view name) {
  const std::string_view key = fold_op(name);
  std::lock_guard<std::mutex> lock(ops_mutex_);
  auto it = ops_.find(key);
  if (it == ops_.end()) {
    it = ops_.try_emplace(std::string(key)).first;
  }
  return it->second;
}

void ServeTelemetry::record_request(std::string_view op_name) {
  OpStats& stats = op(op_name);
  stats.requests.fetch_add(1, std::memory_order_relaxed);
  stats.rate.record(now_s());
}

void ServeTelemetry::record_response(std::string_view op_name, bool is_ok,
                                     std::string_view degradation,
                                     double queue_ms, double exec_ms,
                                     double budget_ms) {
  OpStats& stats = op(op_name);
  stats.responded.fetch_add(1, std::memory_order_relaxed);
  if (is_ok) {
    stats.ok.fetch_add(1, std::memory_order_relaxed);
    stats.rung[rung_index(degradation)].fetch_add(1,
                                                  std::memory_order_relaxed);
  } else {
    stats.failed.fetch_add(1, std::memory_order_relaxed);
  }
  stats.queue_ms.observe(queue_ms);
  stats.exec_ms.observe(exec_ms);

  static obs::Digest& global_queue = obs::digest("serve.queue_ms");
  static obs::Digest& global_exec = obs::digest("serve.exec_ms");
  global_queue.observe(queue_ms);
  global_exec.observe(exec_ms);

  if (budget_ms > 0.0) {
    stats.deadline_total.fetch_add(1, std::memory_order_relaxed);
    if (is_ok && queue_ms + exec_ms <= budget_ms) {
      stats.deadline_met.fetch_add(1, std::memory_order_relaxed);
    }
    // Deadline-bounded population only: these are the digests the SLO
    // gate holds against the configured budget.
    static obs::Digest& deadline_queue =
        obs::digest("serve.deadline.queue_ms");
    static obs::Digest& deadline_exec = obs::digest("serve.deadline.exec_ms");
    deadline_queue.observe(queue_ms);
    deadline_exec.observe(exec_ms);
  }
}

void ServeTelemetry::inflight_add(int delta) {
  inflight_.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t ServeTelemetry::inflight() const {
  return inflight_.load(std::memory_order_relaxed);
}

void ServeTelemetry::set_queue_depth_provider(
    std::function<std::size_t()> provider) {
  std::lock_guard<std::mutex> lock(provider_mutex_);
  queue_depth_provider_ = std::move(provider);
}

std::size_t ServeTelemetry::queue_depth() const {
  std::lock_guard<std::mutex> lock(provider_mutex_);
  return queue_depth_provider_ ? queue_depth_provider_() : 0;
}

void ServeTelemetry::set_deadline_budget_ms(double budget) {
  deadline_budget_ms_.store(budget, std::memory_order_relaxed);
}

double ServeTelemetry::deadline_budget_ms() const {
  return deadline_budget_ms_.load(std::memory_order_relaxed);
}

obs::JsonValue ServeTelemetry::snapshot_json() const {
  const std::int64_t now = now_s();
  obs::JsonValue out = json_object();
  out.object.emplace_back("uptime_s", json_number(uptime_s()));
  out.object.emplace_back("queue_depth",
                          json_number(static_cast<double>(queue_depth())));
  out.object.emplace_back("inflight",
                          json_number(static_cast<double>(inflight())));
  out.object.emplace_back("deadline_budget_ms",
                          json_number(deadline_budget_ms()));

  obs::JsonValue ops = json_object();
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    for (const auto& [name, stats] : ops_) {
      obs::JsonValue row = json_object();
      const auto add_count = [&row](const char* key, std::uint64_t v) {
        row.object.emplace_back(key, json_number(static_cast<double>(v)));
      };
      add_count("requests", stats.requests.load(std::memory_order_relaxed));
      add_count("responded", stats.responded.load(std::memory_order_relaxed));
      add_count("ok", stats.ok.load(std::memory_order_relaxed));
      add_count("failed", stats.failed.load(std::memory_order_relaxed));
      obs::JsonValue rung = json_object();
      for (std::size_t i = 0; i < 4; ++i) {
        rung.object.emplace_back(
            std::string(rung_name(i)),
            json_number(static_cast<double>(
                stats.rung[i].load(std::memory_order_relaxed))));
      }
      row.object.emplace_back("degradation", std::move(rung));
      add_count("rate_1s", stats.rate.sum(now, 1));
      add_count("rate_10s", stats.rate.sum(now, 10));
      add_count("rate_60s", stats.rate.sum(now, 60));
      const std::uint64_t dl_total =
          stats.deadline_total.load(std::memory_order_relaxed);
      const std::uint64_t dl_met =
          stats.deadline_met.load(std::memory_order_relaxed);
      obs::JsonValue deadline = json_object();
      deadline.object.emplace_back(
          "total", json_number(static_cast<double>(dl_total)));
      deadline.object.emplace_back("met",
                                   json_number(static_cast<double>(dl_met)));
      deadline.object.emplace_back("compliance",
                                   json_number(ratio(dl_met, dl_total)));
      row.object.emplace_back("deadline", std::move(deadline));
      const auto add_quantiles = [&row](const char* key,
                                        const obs::Digest& digest) {
        const obs::TDigest snap = digest.snapshot();
        obs::JsonValue q = json_object();
        q.object.emplace_back("count", json_number(snap.count()));
        q.object.emplace_back("p50", json_number(quantile_or_zero(snap, 0.5)));
        q.object.emplace_back("p95",
                              json_number(quantile_or_zero(snap, 0.95)));
        q.object.emplace_back("p99",
                              json_number(quantile_or_zero(snap, 0.99)));
        row.object.emplace_back(key, std::move(q));
      };
      add_quantiles("queue_ms", stats.queue_ms);
      add_quantiles("exec_ms", stats.exec_ms);
      ops.object.emplace_back(name, std::move(row));
    }
  }
  out.object.emplace_back("ops", std::move(ops));

  // The whole registry rides along (counters, gauges, histograms,
  // digests), so one op answers everything an operator can ask.
  std::string error;
  if (auto registry = obs::json_parse(
          obs::MetricsRegistry::instance().to_json(), &error)) {
    out.object.emplace_back("registry", std::move(*registry));
  }
  return out;
}

std::string ServeTelemetry::prometheus() const {
  const std::int64_t now = now_s();
  std::string out = obs::MetricsRegistry::instance().to_prometheus();
  const auto sample = [&out](std::string_view family,
                             std::string_view labels, double v) {
    out += family;
    out += labels;
    out += ' ';
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    out += '\n';
  };
  out += "# TYPE lvf2_serve_uptime_seconds gauge\n";
  sample("lvf2_serve_uptime_seconds", "", uptime_s());
  out += "# TYPE lvf2_serve_queue_depth gauge\n";
  sample("lvf2_serve_queue_depth", "",
         static_cast<double>(queue_depth()));
  out += "# TYPE lvf2_serve_inflight gauge\n";
  sample("lvf2_serve_inflight", "", static_cast<double>(inflight()));

  std::lock_guard<std::mutex> lock(ops_mutex_);
  const auto op_label = [](std::string_view op, std::string_view extra = "") {
    std::string l = "{op=\"";
    l += op;
    l += '"';
    l += extra;
    l += '}';
    return l;
  };
  const auto family =
      [&](const char* name, const char* type,
          const std::function<void(std::string_view, const OpStats&)>& emit) {
        out += "# TYPE ";
        out += name;
        out += ' ';
        out += type;
        out += '\n';
        for (const auto& [op, stats] : ops_) emit(op, stats);
      };
  family("lvf2_serve_op_requests_total", "counter",
         [&](std::string_view op, const OpStats& s) {
           sample("lvf2_serve_op_requests_total", op_label(op),
                  static_cast<double>(
                      s.requests.load(std::memory_order_relaxed)));
         });
  family("lvf2_serve_op_responded_total", "counter",
         [&](std::string_view op, const OpStats& s) {
           sample("lvf2_serve_op_responded_total", op_label(op),
                  static_cast<double>(
                      s.responded.load(std::memory_order_relaxed)));
         });
  family("lvf2_serve_op_failed_total", "counter",
         [&](std::string_view op, const OpStats& s) {
           sample("lvf2_serve_op_failed_total", op_label(op),
                  static_cast<double>(
                      s.failed.load(std::memory_order_relaxed)));
         });
  family("lvf2_serve_op_degraded_total", "counter",
         [&](std::string_view op, const OpStats& s) {
           for (std::size_t i = 0; i < 4; ++i) {
             std::string extra = ",rung=\"";
             extra += rung_name(i);
             extra += '"';
             sample("lvf2_serve_op_degraded_total", op_label(op, extra),
                    static_cast<double>(
                        s.rung[i].load(std::memory_order_relaxed)));
           }
         });
  family("lvf2_serve_op_rate", "gauge",
         [&](std::string_view op, const OpStats& s) {
           static constexpr std::pair<const char*, int> kWindows[] = {
               {"1s", 1}, {"10s", 10}, {"60s", 60}};
           for (const auto& [label, span] : kWindows) {
             std::string extra = ",window=\"";
             extra += label;
             extra += '"';
             sample("lvf2_serve_op_rate", op_label(op, extra),
                    static_cast<double>(s.rate.sum(now, span)) /
                        static_cast<double>(span));
           }
         });
  family("lvf2_serve_op_deadline_total", "counter",
         [&](std::string_view op, const OpStats& s) {
           sample("lvf2_serve_op_deadline_total", op_label(op),
                  static_cast<double>(
                      s.deadline_total.load(std::memory_order_relaxed)));
         });
  family("lvf2_serve_op_deadline_met_total", "counter",
         [&](std::string_view op, const OpStats& s) {
           sample("lvf2_serve_op_deadline_met_total", op_label(op),
                  static_cast<double>(
                      s.deadline_met.load(std::memory_order_relaxed)));
         });
  const auto quantile_family = [&](const char* name,
                                   obs::Digest OpStats::*member) {
    out += "# TYPE ";
    out += name;
    out += " summary\n";
    for (const auto& [op, stats] : ops_) {
      const obs::TDigest snap = (stats.*member).snapshot();
      static constexpr std::pair<const char*, double> kQs[] = {
          {"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
      for (const auto& [label, q] : kQs) {
        std::string extra = ",quantile=\"";
        extra += label;
        extra += '"';
        sample(name, op_label(op, extra), snap.quantile(q));
      }
      sample(std::string(name) + "_sum", op_label(op), snap.sum());
      sample(std::string(name) + "_count", op_label(op), snap.count());
    }
  };
  quantile_family("lvf2_serve_op_queue_ms", &OpStats::queue_ms);
  quantile_family("lvf2_serve_op_exec_ms", &OpStats::exec_ms);
  return out;
}

std::string ServeTelemetry::manifest_section() const {
  std::string out = "{";
  const auto add_key = [&out](const char* key) {
    obs::json_append_string(out, key);
    out += ':';
  };
  add_key("uptime_s");
  obs::json_append_number(out, uptime_s());
  out += ',';
  add_key("deadline_budget_ms");
  obs::json_append_number(out, deadline_budget_ms());
  out += ',';

  // Deadline-bounded population quantiles: what the --serve gate
  // holds against the configured budget.
  const obs::TDigest dl_queue =
      obs::digest("serve.deadline.queue_ms").snapshot();
  const obs::TDigest dl_exec =
      obs::digest("serve.deadline.exec_ms").snapshot();
  std::uint64_t dl_total = 0;
  std::uint64_t dl_met = 0;
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    for (const auto& [name, stats] : ops_) {
      dl_total += stats.deadline_total.load(std::memory_order_relaxed);
      dl_met += stats.deadline_met.load(std::memory_order_relaxed);
    }
  }
  add_key("deadline");
  out += "{\"total\":";
  obs::json_append_number(out, static_cast<double>(dl_total));
  out += ",\"met\":";
  obs::json_append_number(out, static_cast<double>(dl_met));
  out += ",\"compliance\":";
  obs::json_append_number(out, ratio(dl_met, dl_total));
  out += ",\"queue_p99_ms\":";
  obs::json_append_number(out, quantile_or_zero(dl_queue, 0.99));
  out += ",\"exec_p99_ms\":";
  obs::json_append_number(out, quantile_or_zero(dl_exec, 0.99));
  out += "},";

  add_key("ops");
  out += '{';
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    bool first = true;
    for (const auto& [name, stats] : ops_) {
      if (!first) out += ',';
      first = false;
      obs::json_append_string(out, name);
      out += ":{";
      const auto add_count = [&out](const char* key, std::uint64_t v,
                                    bool comma = true) {
        obs::json_append_string(out, key);
        out += ':';
        obs::json_append_number(out, static_cast<double>(v));
        if (comma) out += ',';
      };
      add_count("requests", stats.requests.load(std::memory_order_relaxed));
      add_count("responded",
                stats.responded.load(std::memory_order_relaxed));
      add_count("ok", stats.ok.load(std::memory_order_relaxed));
      add_count("failed", stats.failed.load(std::memory_order_relaxed));
      for (std::size_t i = 0; i < 4; ++i) {
        add_count(("rung_" + std::string(rung_name(i))).c_str(),
                  stats.rung[i].load(std::memory_order_relaxed));
      }
      add_count("deadline_total",
                stats.deadline_total.load(std::memory_order_relaxed));
      add_count("deadline_met",
                stats.deadline_met.load(std::memory_order_relaxed));
      const obs::TDigest queue = stats.queue_ms.snapshot();
      const obs::TDigest exec = stats.exec_ms.snapshot();
      out += "\"queue_p50_ms\":";
      obs::json_append_number(out, quantile_or_zero(queue, 0.5));
      out += ",\"queue_p99_ms\":";
      obs::json_append_number(out, quantile_or_zero(queue, 0.99));
      out += ",\"exec_p50_ms\":";
      obs::json_append_number(out, quantile_or_zero(exec, 0.5));
      out += ",\"exec_p99_ms\":";
      obs::json_append_number(out, quantile_or_zero(exec, 0.99));
      out += '}';
    }
  }
  out += "}}";
  return out;
}

}  // namespace lvf2::serve
