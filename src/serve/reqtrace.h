#pragma once
// Per-request tracing for lvf2d: a compact fixed-size record per
// request, pushed into lock-free per-thread SPSC rings and drained by
// a single writer thread into a size-capped JSONL access log.
//
// Enablement is env-gated (LVF2_ACCESS_LOG=<path>); when disabled the
// entire subsystem costs one relaxed atomic load per request at the
// call site — BM_DisabledRequestTrace in bench/bench_perf.cpp holds
// that cost to the LVF2_PERF_NS_BUDGET gate. When enabled, recording
// is a struct copy into a preallocated ring slot: no allocation, no
// lock, no syscall on the request path. A full ring drops the record
// and counts it (`dropped()`); the request itself is never slowed or
// failed by tracing.
//
// Log format: one JSON object per line —
//   {"rid":..,"conn":..,"op":"..","status":"..","degradation":"..",
//    "mode":"ok|refused","queue_ms":..,"exec_ms":..,
//    "bytes_in":..,"bytes_out":..}
// Rotation: when the file would exceed LVF2_ACCESS_LOG_MAX_KB
// (default 4096), it is renamed to <path>.1 (replacing any previous
// .1) and a fresh file is started — bounded disk, ~2x cap worst case.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace lvf2::serve {

/// One request's timeline. Plain data, fixed size, so ring slots are
/// preallocated and recording is a memcpy-equivalent.
struct RequestTrace {
  std::uint64_t rid = 0;       ///< server-minted request id
  std::uint64_t conn = 0;      ///< connection number
  double queue_ms = 0.0;       ///< arrival -> dispatch
  double exec_ms = 0.0;        ///< dispatch -> response written
  std::uint32_t bytes_in = 0;  ///< request frame payload bytes
  std::uint32_t bytes_out = 0; ///< response frame payload bytes
  char op[16] = {};
  char status[20] = {};        ///< core::Status code name
                               ///< (longest: "resource_exhausted", 18)
  char degradation[12] = {};   ///< none/cached/single_sn/point_mass
  char mode[10] = {};          ///< "ok" (processed) | "refused"

  /// Truncating copy into one of the fixed char fields.
  template <std::size_t N>
  static void set_field(char (&dst)[N], std::string_view src) {
    const std::size_t n = src.size() < N - 1 ? src.size() : N - 1;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
  }
};

/// Single-producer/single-consumer ring of trace records. The owning
/// worker thread pushes; only the writer thread pops.
class TraceRing {
 public:
  static constexpr std::size_t kCapacity = 1024;  // power of two
  static_assert((kCapacity & (kCapacity - 1)) == 0);

  bool try_push(const RequestTrace& t) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == kCapacity) {
      return false;  // full; caller counts the drop
    }
    slots_[tail & (kCapacity - 1)] = t;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(RequestTrace& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = slots_[head & (kCapacity - 1)];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::array<RequestTrace, kCapacity> slots_{};
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

namespace detail {
extern std::atomic<bool> g_reqtrace_enabled;
}  // namespace detail

/// The one load on the disabled path. Call sites guard everything
/// else (struct fill, ring push) behind this.
inline bool reqtrace_enabled() {
  return detail::g_reqtrace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide access-log writer (leaked singleton). Threads get a
/// thread-local ring on first record(); rings are owned here and
/// outlive their threads, so late drains are safe.
class RequestTraceLog {
 public:
  static RequestTraceLog& instance();

  /// Reads LVF2_ACCESS_LOG / LVF2_ACCESS_LOG_MAX_KB; starts the
  /// writer when the path is set. Safe to call when already running.
  void configure_from_env();
  /// Programmatic setup (tests). `max_kb` caps the file size before
  /// rotation. Returns false if already running.
  bool configure(std::string path, std::size_t max_kb);
  /// Starts the writer thread and flips reqtrace_enabled() on.
  /// No-op without a configured path or when already running.
  void start();
  /// Flips tracing off, drains every ring, joins the writer.
  void stop();

  /// Records one request. Cheap no-op when tracing is disabled.
  void record(const RequestTrace& t);

  std::uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  RequestTraceLog() = default;

  TraceRing* ring_for_this_thread();
  void writer_loop();
  /// Drains all rings into `buf` as JSONL; returns records drained.
  std::size_t drain_into(std::string& buf);
  void append_to_file(const std::string& buf);

  std::string path_;
  std::size_t max_bytes_ = 4096 * 1024;
  std::size_t file_bytes_ = 0;

  std::mutex rings_mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_;

  std::thread writer_;
  std::atomic<bool> running_{false};
  std::mutex cv_mutex_;
  std::condition_variable cv_;

  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace lvf2::serve
