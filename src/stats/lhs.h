#pragma once
// Latin Hypercube Sampling (LHS). The paper generates its golden data
// with "50k process variation samples ... by Latin Hypercube Sampling
// SPICE Monte Carlo simulation"; this module provides the stratified
// sampler used by our SPICE-substitute Monte-Carlo engine.

#include <cstddef>
#include <vector>

#include "stats/rng.h"

namespace lvf2::stats {

/// One LHS design: `samples x dimensions` values.
/// Row i is the i-th sample point.
struct LhsDesign {
  std::size_t samples = 0;
  std::size_t dimensions = 0;
  std::vector<double> values;  ///< row-major, samples * dimensions

  double at(std::size_t sample, std::size_t dim) const {
    return values[sample * dimensions + dim];
  }
};

/// Uniform LHS on [0,1)^d: each dimension is divided into `samples`
/// equal strata, one point is placed uniformly inside each stratum and
/// the strata are permuted independently per dimension.
LhsDesign lhs_uniform(std::size_t samples, std::size_t dimensions, Rng& rng);

/// Standard-normal LHS: uniform LHS pushed through the normal
/// quantile function, giving stratified N(0,1) marginals.
LhsDesign lhs_normal(std::size_t samples, std::size_t dimensions, Rng& rng);

}  // namespace lvf2::stats
