#pragma once
// One-dimensional k-means clustering (Hartigan-Wong style Lloyd
// iterations). The LVF^2 EM fit uses k = 2 clustering of the observed
// delay samples to initialize the two mixture components (paper
// Section 3.2).

#include <cstddef>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace lvf2::stats {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<double> centers;          ///< cluster centers, ascending
  std::vector<std::size_t> assignment;  ///< per-sample cluster index
  std::vector<std::size_t> sizes;       ///< samples per cluster
  double inertia = 0.0;                 ///< sum of squared distances
  std::size_t iterations = 0;
  bool converged = false;
};

/// Options controlling the Lloyd iterations.
struct KMeansOptions {
  std::size_t max_iterations = 100;
  double tolerance = 1e-10;  ///< relative center movement to stop
  std::size_t restarts = 4;  ///< k-means++ restarts, best inertia wins
};

/// Runs 1-D k-means with k-means++ seeding. Requires k >= 1 and at
/// least k samples; otherwise returns an empty result. Weighted
/// variant: `weights` (if nonempty) must match `samples` in size.
KMeansResult kmeans_1d(std::span<const double> samples, std::size_t k,
                       Rng& rng, const KMeansOptions& options = {},
                       std::span<const double> weights = {});

}  // namespace lvf2::stats
