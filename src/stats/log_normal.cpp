#include "stats/log_normal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/optimize.h"
#include "stats/special_functions.h"

namespace lvf2::stats {

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) {
    throw std::invalid_argument("LogNormal: sigma must be positive");
  }
}

double LogNormal::pdf(double x) const {
  if (!(x > 0.0)) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return normal_pdf(z) / (x * sigma_);
}

double LogNormal::cdf(double x) const {
  if (!(x > 0.0)) return 0.0;
  return normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::stddev() const { return std::sqrt(variance()); }

double LogNormal::skewness() const {
  const double e = std::exp(sigma_ * sigma_);
  return (e + 2.0) * std::sqrt(e - 1.0);
}

std::optional<LogNormal> LogNormal::fit_moments(double mean, double stddev) {
  if (!(mean > 0.0) || !(stddev > 0.0)) return std::nullopt;
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormal(mu, std::sqrt(sigma2));
}

LogExtendedSkewNormal::LogExtendedSkewNormal(
    const ExtendedSkewNormal& log_domain)
    : esn_(log_domain) {}

double LogExtendedSkewNormal::pdf(double x) const {
  if (!(x > 0.0)) return 0.0;
  return esn_.pdf(std::log(x)) / x;
}

double LogExtendedSkewNormal::cdf(double x) const {
  if (!(x > 0.0)) return 0.0;
  return esn_.cdf(std::log(x));
}

double LogExtendedSkewNormal::quantile(double p) const {
  return std::exp(esn_.quantile(p));
}

double LogExtendedSkewNormal::sample(Rng& rng) const {
  return std::exp(esn_.sample(rng));
}

namespace {

// log E[X^k] for X = exp(xi + omega Z_esn(delta, tau)).
double log_raw_moment(double xi, double omega, double delta, double tau,
                      int k) {
  const double t = static_cast<double>(k);
  return t * xi + 0.5 * t * t * omega * omega +
         normal_log_cdf(tau + delta * t * omega) - normal_log_cdf(tau);
}

struct LesnShapeStats {
  double cv;        // stddev / mean
  double skewness;
  double kurtosis;
  bool valid = false;
};

LesnShapeStats shape_stats(double omega, double delta, double tau) {
  LesnShapeStats s;
  // Evaluate with xi = 0; cv/skewness/kurtosis are scale invariant.
  double m[5] = {1.0, 0.0, 0.0, 0.0, 0.0};
  for (int k = 1; k <= 4; ++k) {
    const double lm = log_raw_moment(0.0, omega, delta, tau, k);
    if (!std::isfinite(lm) || lm > 300.0) return s;
    m[k] = std::exp(lm);
  }
  const double var = m[2] - m[1] * m[1];
  if (!(var > 0.0)) return s;
  const double sd = std::sqrt(var);
  const double mu = m[1];
  const double m3 = m[3] - 3.0 * mu * m[2] + 2.0 * mu * mu * mu;
  const double m4 = m[4] - 4.0 * mu * m[3] + 6.0 * mu * mu * m[2] -
                    3.0 * mu * mu * mu * mu;
  s.cv = sd / mu;
  s.skewness = m3 / (var * sd);
  s.kurtosis = m4 / (var * var);
  s.valid = std::isfinite(s.skewness) && std::isfinite(s.kurtosis);
  return s;
}

}  // namespace

double LogExtendedSkewNormal::raw_moment(int k) const {
  return std::exp(log_raw_moment(esn_.xi(), esn_.omega(), esn_.delta(),
                                 esn_.tau(), k));
}

double LogExtendedSkewNormal::mean() const { return raw_moment(1); }

double LogExtendedSkewNormal::variance() const {
  const double m1 = raw_moment(1);
  return raw_moment(2) - m1 * m1;
}

double LogExtendedSkewNormal::stddev() const { return std::sqrt(variance()); }

double LogExtendedSkewNormal::skewness() const {
  const double mu = raw_moment(1);
  const double var = variance();
  const double m3 =
      raw_moment(3) - 3.0 * mu * raw_moment(2) + 2.0 * mu * mu * mu;
  return m3 / (var * std::sqrt(var));
}

double LogExtendedSkewNormal::kurtosis() const {
  const double mu = raw_moment(1);
  const double var = variance();
  const double m4 = raw_moment(4) - 4.0 * mu * raw_moment(3) +
                    6.0 * mu * mu * raw_moment(2) - 3.0 * mu * mu * mu * mu;
  return m4 / (var * var);
}

std::optional<LogExtendedSkewNormal> LogExtendedSkewNormal::fit_moments(
    const Moments& target) {
  if (target.count == 0 || !(target.mean > 0.0) || !(target.stddev > 0.0)) {
    return std::nullopt;
  }
  const double target_cv = target.stddev / target.mean;

  // Shape search over p = (log omega, atanh delta, tau).
  const auto objective = [&](std::span<const double> p) {
    const double omega = std::exp(std::clamp(p[0], -12.0, 1.0));
    const double delta = std::tanh(p[1]);
    const double tau = std::clamp(p[2], -30.0, 30.0);
    const LesnShapeStats s = shape_stats(omega, delta, tau);
    if (!s.valid) return std::numeric_limits<double>::infinity();
    const double ecv = std::log(s.cv / target_cv);
    const double es = s.skewness - target.skewness;
    const double ek = s.kurtosis - target.kurtosis;
    return 4.0 * ecv * ecv + es * es + 0.25 * ek * ek;
  };

  MinimizeResult best;
  best.value = std::numeric_limits<double>::infinity();
  NelderMeadOptions options;
  options.max_evaluations = 800;
  options.initial_step = 0.4;
  const double log_cv = std::log(std::max(target_cv, 1e-8));
  const double seed_deltas[] = {-0.9, 0.0, 0.9};
  const double seed_taus[] = {-3.0, 0.0, 3.0};
  for (double sd : seed_deltas) {
    for (double st : seed_taus) {
      const double x0[3] = {log_cv, std::atanh(sd * 0.999), st};
      MinimizeResult r = nelder_mead(objective, x0, options);
      if (r.value < best.value) best = std::move(r);
    }
  }
  if (best.x.size() != 3 || !std::isfinite(best.value)) return std::nullopt;

  const double omega = std::exp(std::clamp(best.x[0], -12.0, 1.0));
  const double delta = std::tanh(best.x[1]);
  const double tau = std::clamp(best.x[2], -30.0, 30.0);
  const LesnShapeStats s = shape_stats(omega, delta, tau);
  if (!s.valid) return std::nullopt;
  // Scale xi so the mean matches exactly.
  const double mean0 = std::exp(log_raw_moment(0.0, omega, delta, tau, 1));
  const double xi = std::log(target.mean / mean0);
  const double d2 = 1.0 - delta * delta;
  const double alpha =
      (d2 <= 0.0) ? std::copysign(1e8, delta) : delta / std::sqrt(d2);
  return LogExtendedSkewNormal(ExtendedSkewNormal(xi, omega, alpha, tau));
}

}  // namespace lvf2::stats
