#include "stats/lhs.h"

#include <algorithm>
#include <numeric>

#include "simd/simd.h"
#include "stats/special_functions.h"

namespace lvf2::stats {

LhsDesign lhs_uniform(std::size_t samples, std::size_t dimensions, Rng& rng) {
  LhsDesign design;
  design.samples = samples;
  design.dimensions = dimensions;
  design.values.resize(samples * dimensions);
  if (samples == 0 || dimensions == 0) return design;

  std::vector<std::size_t> perm(samples);
  const double inv_n = 1.0 / static_cast<double>(samples);
  for (std::size_t d = 0; d < dimensions; ++d) {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    // Fisher-Yates shuffle of the strata.
    for (std::size_t i = samples - 1; i > 0; --i) {
      const std::size_t j = rng.uniform_index(i + 1);
      std::swap(perm[i], perm[j]);
    }
    for (std::size_t i = 0; i < samples; ++i) {
      const double u = rng.uniform();
      design.values[i * dimensions + d] =
          (static_cast<double>(perm[i]) + u) * inv_n;
    }
  }
  return design;
}

LhsDesign lhs_normal(std::size_t samples, std::size_t dimensions, Rng& rng) {
  LhsDesign design = lhs_uniform(samples, dimensions, rng);
  // Keep probabilities strictly inside (0,1) so the quantile is finite,
  // then map the whole design through the batch quantile kernel.
  constexpr double kEps = 1e-15;
  for (double& v : design.values) v = std::clamp(v, kEps, 1.0 - kEps);
  simd::normal_quantile(design.values, design.values);
  return design;
}

}  // namespace lvf2::stats
