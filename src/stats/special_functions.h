#pragma once
// Special functions used across the statistical timing models:
// standard-normal density / distribution / quantile, Owen's T function
// (needed by the skew-normal CDF), the Mills-ratio family zeta_k
// (needed by extended-skew-normal cumulants), and small numeric helpers.

#include <cstddef>
#include <span>

namespace lvf2::stats {

/// Value of pi with full double precision.
inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// sqrt(2*pi).
inline constexpr double kSqrt2Pi = 2.506628274631000502415765284811045253;

/// sqrt(2/pi); the mean of |Z| for a standard normal Z.
inline constexpr double kSqrt2OverPi = 0.797884560802865355879892119868763737;

/// Standard normal probability density phi(x).
double normal_pdf(double x);

/// Standard normal cumulative distribution Phi(x), accurate in both tails.
double normal_cdf(double x);

/// log(Phi(x)), stable for deeply negative x (switches to an
/// asymptotic expansion of the Mills ratio at x = -36.5, just before
/// erfc goes subnormal, so both branches are full precision at the
/// crossover).
double normal_log_cdf(double x);

/// Inverse of the standard normal CDF. Input must be in (0, 1);
/// values at or outside the boundary return +/-infinity.
/// Acklam's rational approximation refined by one Halley step,
/// giving ~1e-15 relative accuracy.
double normal_quantile(double p);

/// Owen's T function
///   T(h, a) = 1/(2*pi) * Integral_0^a exp(-h^2 (1+x^2)/2) / (1+x^2) dx.
/// Used for the skew-normal CDF: F_SN(z; alpha) = Phi(z) - 2 T(z, alpha).
/// Implemented by 64-point Gauss-Legendre quadrature after reducing
/// |a| <= 1 with the standard reflection identities (the a > 1
/// reduction combines tail masses Phi(-h), Phi(-ah) so it stays
/// cancellation-free for large h); for h >= 8 the quadrature domain
/// is clipped to x <= 10/h where all of the integrand mass lives.
/// Absolute error is below 1e-14; relative error stays small deep
/// into the tails (h ~ 8-30, the high-sigma regime).
double owens_t(double h, double a);

/// Mills-ratio style function zeta1(x) = phi(x) / Phi(x)
/// (the first derivative of log Phi). Stable for very negative x.
double zeta1(double x);

/// zeta2(x) = d/dx zeta1(x) = -zeta1(x) * (x + zeta1(x)).
double zeta2(double x);

/// zeta3(x) = d/dx zeta2(x).
double zeta3(double x);

/// zeta4(x) = d/dx zeta3(x).
double zeta4(double x);

/// log(exp(a) + exp(b)) without overflow.
double log_sum_exp(double a, double b);

/// Numerically stable sum via Kahan compensation.
double kahan_sum(std::span<const double> values);

/// Linear interpolation of y(x) on a sorted grid xs -> ys; clamps
/// outside the grid to the boundary values. Grids must be the same
/// nonzero length.
double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x);

}  // namespace lvf2::stats
