#pragma once
// Discretized probability density on a uniform grid. This is the
// numeric workhorse of the block-based SSTA engine: stage delay PDFs
// are tabulated, summed by convolution, combined by the independent
// statistical-max integral, and queried for CDF / quantiles / moments.

#include <functional>
#include <span>
#include <vector>

#include "core/status.h"

namespace lvf2::stats {

/// Probability density tabulated on a uniform grid [lo, hi] with
/// `size` points. Density values are kept normalized (trapezoid
/// integral == 1) by the factory functions.
class GridPdf {
 public:
  GridPdf() = default;

  /// Tabulates `pdf` on `points` uniform points over [lo, hi] and
  /// normalizes. Requires hi > lo and points >= 8.
  static GridPdf from_function(const std::function<double(double)>& pdf,
                               double lo, double hi, std::size_t points = 1024);

  /// Histogram density of a sample set (equal-width bins, then
  /// normalized). `pad_fraction` widens the covered range.
  static GridPdf from_samples(std::span<const double> samples,
                              std::size_t points = 1024,
                              double pad_fraction = 0.05);

  /// Raw construction from a value array (normalizes internally).
  static GridPdf from_values(double lo, double hi,
                             std::vector<double> density);

  /// Status-reporting variants for callers on the degradation chain:
  /// instead of throwing, degenerate input (no finite samples, a
  /// density that integrates to zero, a collapsed range) comes back
  /// as a kDegenerateData / kInvalidArgument Status. Non-finite
  /// samples and density values are ignored / scrubbed as in the
  /// throwing factories.
  static core::StatusOr<GridPdf> try_from_samples(
      std::span<const double> samples, std::size_t points = 1024,
      double pad_fraction = 0.05);
  static core::StatusOr<GridPdf> try_from_values(double lo, double hi,
                                                 std::vector<double> density);

  bool empty() const { return density_.size() < 2; }
  std::size_t size() const { return density_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double step() const { return step_; }
  double x_at(std::size_t i) const { return lo_ + step_ * static_cast<double>(i); }
  std::span<const double> density() const { return density_; }

  /// Density at x (linear interpolation; 0 outside the grid).
  double pdf(double x) const;

  /// CDF at x (trapezoid cumulative, linear interpolation, clamped
  /// to [0,1]).
  double cdf(double x) const;

  /// Inverse CDF via the cached cumulative table.
  double quantile(double p) const;

  double mean() const;
  double variance() const;
  double stddev() const;
  double skewness() const;
  double kurtosis() const;

  /// Distribution of X + Y for independent X, Y (discrete convolution
  /// after resampling both onto a common step). Result size is capped
  /// at `max_points` by coarsening.
  static GridPdf convolve(const GridPdf& a, const GridPdf& b,
                          std::size_t max_points = 4096);

  /// Distribution of max(X, Y) for independent X, Y:
  ///   f_max(x) = f_X(x) F_Y(x) + f_Y(x) F_X(x).
  static GridPdf statistical_max(const GridPdf& a, const GridPdf& b,
                                 std::size_t points = 2048);

  /// Resamples onto `points` uniform points over [new_lo, new_hi].
  GridPdf resampled(double new_lo, double new_hi, std::size_t points) const;

  /// Distribution of X + c (deterministic shift of the grid).
  GridPdf shifted(double offset) const;

 private:
  void rebuild_cdf();

  double lo_ = 0.0;
  double hi_ = 0.0;
  double step_ = 0.0;
  std::vector<double> density_;
  std::vector<double> cdf_;  ///< cumulative trapezoid, same grid
};

}  // namespace lvf2::stats
