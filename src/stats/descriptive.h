#pragma once
// Descriptive statistics over sample sets: central and standardized
// moments (plain and weighted), quantiles, the empirical CDF, and a
// binned (histogram) representation of a sample set used by the
// binned-likelihood EM fit.

#include <cstddef>
#include <span>
#include <vector>

#include "core/status.h"

namespace lvf2::stats {

/// First four standardized sample moments.
struct Moments {
  double mean = 0.0;
  double stddev = 0.0;      ///< sqrt of the (biased, 1/n) variance
  double skewness = 0.0;    ///< third standardized moment
  double kurtosis = 3.0;    ///< fourth standardized moment (normal == 3)
  std::size_t count = 0;
};

/// Computes mean / stddev / skewness / kurtosis of `samples`.
/// Returns a default-constructed result for empty input; stddev,
/// skewness and kurtosis fall back to 0 / 0 / 3 for degenerate
/// (constant) input.
Moments compute_moments(std::span<const double> samples);

/// Weighted moments: weight w_i attached to sample x_i. Weights must
/// be non-negative; zero total weight yields the degenerate result.
Moments compute_weighted_moments(std::span<const double> samples,
                                 std::span<const double> weights);

/// Linear-interpolation sample quantile (type-7, the numpy default)
/// of *sorted* data. `q` is clamped to [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts and evaluates `quantile_sorted`.
double quantile(std::span<const double> samples, double q);

/// Status-reporting quantile for callers on the degradation chain:
/// empty input is kDegenerateData and a non-finite q is
/// kInvalidArgument instead of a silent NaN. A single sample is
/// well-defined (every quantile is that sample).
core::StatusOr<double> try_quantile(std::span<const double> samples, double q);

/// Empirical CDF of a sample set. Construction sorts a copy of the
/// samples; evaluation is O(log n).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::span<const double> samples);

  /// Fraction of samples <= x.
  double operator()(double x) const;

  /// Inverse: the q-quantile (type-7 interpolation).
  double quantile(double q) const;

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  double min() const;
  double max() const;
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Histogram of a sample set: equal-width bins spanning
/// [min - pad, max + pad]. Used as a compressed representation for
/// likelihood fits (bin centers weighted by counts) and for reporting
/// PDFs. Bins with zero count are kept so the grid stays regular.
struct BinnedSamples {
  std::vector<double> centers;   ///< bin mid-points (ascending)
  std::vector<double> counts;    ///< occupancy per bin
  double bin_width = 0.0;
  double total = 0.0;            ///< sum of counts

  /// Normalized density value of bin i: counts[i] / (total * width).
  double density(std::size_t i) const {
    return (total > 0.0 && bin_width > 0.0)
               ? counts[i] / (total * bin_width)
               : 0.0;
  }
};

/// Bins `samples` into `bin_count` equal-width bins. `pad_fraction`
/// widens the covered range by that fraction of the span on each side
/// (so boundary samples do not sit exactly on the edge). Non-finite
/// samples are ignored (the range and counts cover finite samples
/// only); if no finite sample exists the result is empty. Constant
/// data yields a single occupied bin of nominal width.
BinnedSamples bin_samples(std::span<const double> samples,
                          std::size_t bin_count, double pad_fraction = 0.0);

}  // namespace lvf2::stats
