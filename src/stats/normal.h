#pragma once
// Location-scale normal distribution N(mu, sigma^2).

#include <span>

#include "stats/rng.h"

namespace lvf2::stats {

/// Normal distribution with mean `mu` and standard deviation `sigma`.
class Normal {
 public:
  Normal() = default;
  Normal(double mu, double sigma);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;

  /// Batch overloads through the dispatch-selected kernels (simd.h);
  /// out.size() must be >= x.size(). In-place (out == x) is allowed.
  void pdf(std::span<const double> x, std::span<double> out) const;
  void log_pdf(std::span<const double> x, std::span<double> out) const;
  void cdf(std::span<const double> x, std::span<double> out) const;

  double mean() const { return mu_; }
  double stddev() const { return sigma_; }
  double variance() const { return sigma_ * sigma_; }

 private:
  double mu_ = 0.0;
  double sigma_ = 1.0;
};

}  // namespace lvf2::stats
