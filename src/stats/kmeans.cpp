#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lvf2::stats {

namespace {

struct Run {
  std::vector<double> centers;
  std::vector<std::size_t> assignment;
  double inertia = std::numeric_limits<double>::infinity();
  std::size_t iterations = 0;
  bool converged = false;
};

// k-means++ seeding: first center uniform, later centers proportional
// to squared distance from the nearest chosen center.
std::vector<double> seed_centers(std::span<const double> samples,
                                 std::span<const double> weights,
                                 std::size_t k, Rng& rng) {
  std::vector<double> centers;
  centers.reserve(k);
  centers.push_back(samples[rng.uniform_index(samples.size())]);
  std::vector<double> d2(samples.size());
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (double c : centers) {
        best = std::min(best, (samples[i] - c) * (samples[i] - c));
      }
      const double w = weights.empty() ? 1.0 : weights[i];
      d2[i] = best * w;
      total += d2[i];
    }
    if (total <= 0.0) {
      // All samples coincide with existing centers; jitter-free fill.
      centers.push_back(centers.back());
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t pick = samples.size() - 1;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    centers.push_back(samples[pick]);
  }
  return centers;
}

Run lloyd(std::span<const double> samples, std::span<const double> weights,
          std::size_t k, Rng& rng, const KMeansOptions& options) {
  Run run;
  run.centers = seed_centers(samples, weights, k, rng);
  run.assignment.assign(samples.size(), 0);
  std::vector<double> sums(k);
  std::vector<double> wsum(k);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    run.iterations = iter + 1;
    // Assignment step.
    run.inertia = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t arg = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = samples[i] - run.centers[c];
        const double d2 = d * d;
        if (d2 < best) {
          best = d2;
          arg = c;
        }
      }
      run.assignment[i] = arg;
      run.inertia += best * (weights.empty() ? 1.0 : weights[i]);
    }
    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(wsum.begin(), wsum.end(), 0.0);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double w = weights.empty() ? 1.0 : weights[i];
      sums[run.assignment[i]] += w * samples[i];
      wsum[run.assignment[i]] += w;
    }
    double movement = 0.0;
    double scale = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (wsum[c] <= 0.0) {
        // Empty cluster: reseed at a random sample.
        run.centers[c] = samples[rng.uniform_index(samples.size())];
        movement = std::numeric_limits<double>::infinity();
        continue;
      }
      const double next = sums[c] / wsum[c];
      movement += std::fabs(next - run.centers[c]);
      scale += std::fabs(next);
      run.centers[c] = next;
    }
    if (movement <= options.tolerance * std::max(scale, 1e-300)) {
      run.converged = true;
      break;
    }
  }
  return run;
}

}  // namespace

KMeansResult kmeans_1d(std::span<const double> samples, std::size_t k,
                       Rng& rng, const KMeansOptions& options,
                       std::span<const double> weights) {
  KMeansResult result;
  if (k == 0 || samples.size() < k ||
      (!weights.empty() && weights.size() != samples.size())) {
    return result;
  }

  Run best;
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    Run run = lloyd(samples, weights, k, rng, options);
    if (run.inertia < best.inertia) best = std::move(run);
  }

  // Sort centers ascending and remap assignments so callers can rely
  // on cluster 0 being the left component.
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return best.centers[a] < best.centers[b];
  });
  std::vector<std::size_t> rank(k);
  for (std::size_t i = 0; i < k; ++i) rank[order[i]] = i;

  result.centers.resize(k);
  for (std::size_t i = 0; i < k; ++i) result.centers[i] = best.centers[order[i]];
  result.assignment.resize(samples.size());
  result.sizes.assign(k, 0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    result.assignment[i] = rank[best.assignment[i]];
    ++result.sizes[result.assignment[i]];
  }
  result.inertia = best.inertia;
  result.iterations = best.iterations;
  result.converged = best.converged;
  return result;
}

}  // namespace lvf2::stats
