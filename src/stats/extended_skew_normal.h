#pragma once
// Extended skew-normal (ESN) distribution. Adds a hidden-truncation
// parameter tau to the skew-normal:
//
//   f(z; alpha, tau) = phi(z) * Phi(tau * sqrt(1 + alpha^2) + alpha z)
//                      / Phi(tau)
//
// (standardized form; X = xi + omega Z). Its cumulant generating
// function K(t) = t^2/2 + log Phi(tau + delta t) - log Phi(tau) gives
// closed-form cumulants through the zeta_k Mills-ratio derivatives,
// which is what makes kurtosis matching (the LESN baseline, paper
// ref. [7]) practical.

#include <optional>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace lvf2::stats {

/// Extended skew-normal with location xi, scale omega > 0, shape
/// alpha, and truncation tau (tau = 0 recovers the skew-normal).
class ExtendedSkewNormal {
 public:
  ExtendedSkewNormal() = default;
  ExtendedSkewNormal(double xi, double omega, double alpha, double tau);

  double xi() const { return xi_; }
  double omega() const { return omega_; }
  double alpha() const { return alpha_; }
  double tau() const { return tau_; }
  double delta() const;

  double pdf(double x) const;
  double log_pdf(double x) const;
  /// Batch overloads through the dispatch-selected kernels (simd.h);
  /// out.size() must be >= x.size(). In-place (out == x) is allowed.
  void pdf(std::span<const double> x, std::span<double> out) const;
  void log_pdf(std::span<const double> x, std::span<double> out) const;
  /// CDF by composite Gauss-Legendre integration of the density from
  /// the effective lower tail (node batch through the pdf kernel);
  /// accurate to ~1e-10.
  double cdf(double x) const;
  double quantile(double p) const;
  /// Sampling by hidden truncation: Z = delta T + sqrt(1-delta^2) U
  /// where T ~ N(0,1) truncated to T > -tau.
  double sample(Rng& rng) const;

  /// First four cumulants of the standardized variable Z scaled to X.
  double mean() const;
  double variance() const;
  double stddev() const;
  double skewness() const;
  double kurtosis() const;  ///< fourth standardized moment

  /// Fits (xi, omega, alpha, tau) by matching the first four sample
  /// moments (mean, stddev, skewness, kurtosis) with Nelder-Mead on
  /// the shape pair, solving location/scale in closed form. Returns
  /// nullopt for degenerate input.
  static std::optional<ExtendedSkewNormal> fit_moments(const Moments& target);

 private:
  double xi_ = 0.0;
  double omega_ = 1.0;
  double alpha_ = 0.0;
  double tau_ = 0.0;
};

}  // namespace lvf2::stats
