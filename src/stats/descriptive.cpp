#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lvf2::stats {

Moments compute_moments(std::span<const double> samples) {
  if (samples.empty()) return {};
  Moments m;
  m.count = samples.size();
  const double n = static_cast<double>(samples.size());
  double mean = 0.0;
  for (double x : samples) mean += x;
  mean /= n;
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double x : samples) {
    const double d = x - mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;
  m.mean = mean;
  m.stddev = std::sqrt(m2);
  if (m2 > 0.0) {
    m.skewness = m3 / (m2 * m.stddev);
    m.kurtosis = m4 / (m2 * m2);
  }
  return m;
}

Moments compute_weighted_moments(std::span<const double> samples,
                                 std::span<const double> weights) {
  Moments m;
  if (samples.empty() || samples.size() != weights.size()) return m;
  double w_total = 0.0, mean = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    w_total += weights[i];
    mean += weights[i] * samples[i];
  }
  if (w_total <= 0.0) return m;
  mean /= w_total;
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double d = samples[i] - mean;
    const double d2 = d * d;
    m2 += weights[i] * d2;
    m3 += weights[i] * d2 * d;
    m4 += weights[i] * d2 * d2;
  }
  m2 /= w_total;
  m3 /= w_total;
  m4 /= w_total;
  m.count = samples.size();
  m.mean = mean;
  m.stddev = std::sqrt(m2);
  if (m2 > 0.0) {
    m.skewness = m3 / (m2 * m.stddev);
    m.kurtosis = m4 / (m2 * m2);
  }
  return m;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> samples, double q) {
  std::vector<double> copy(samples.begin(), samples.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

core::StatusOr<double> try_quantile(std::span<const double> samples,
                                    double q) {
  if (!std::isfinite(q)) {
    return core::Status::invalid_argument("try_quantile: non-finite q");
  }
  if (samples.empty()) {
    return core::Status::degenerate_data("try_quantile: empty sample set");
  }
  return quantile(samples, q);
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  if (sorted_.empty()) return std::numeric_limits<double>::quiet_NaN();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  return quantile_sorted(sorted_, q);
}

double EmpiricalCdf::min() const {
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : sorted_.front();
}

double EmpiricalCdf::max() const {
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : sorted_.back();
}

BinnedSamples bin_samples(std::span<const double> samples,
                          std::size_t bin_count, double pad_fraction) {
  BinnedSamples out;
  if (samples.empty() || bin_count == 0) return out;
  // Range over finite samples only: a single NaN would otherwise
  // poison the bin width and turn every index computation undefined.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double x : samples) {
    if (!std::isfinite(x)) continue;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (!(lo <= hi)) return out;  // no finite sample at all
  double span = hi - lo;
  if (span <= 0.0) {
    // Degenerate constant data: one occupied bin of nominal width.
    span = std::max(std::fabs(lo) * 1e-12, 1e-30);
  }
  lo -= pad_fraction * span;
  hi += pad_fraction * span;
  const double width = (hi - lo) / static_cast<double>(bin_count);
  out.bin_width = width;
  out.centers.resize(bin_count);
  out.counts.assign(bin_count, 0.0);
  for (std::size_t i = 0; i < bin_count; ++i) {
    out.centers[i] = lo + (static_cast<double>(i) + 0.5) * width;
  }
  for (double x : samples) {
    if (!std::isfinite(x)) continue;
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bin_count) - 1);
    out.counts[static_cast<std::size_t>(idx)] += 1.0;
    out.total += 1.0;
  }
  return out;
}

}  // namespace lvf2::stats
