#pragma once
// Log-domain distributions: the plain log-normal (paper ref. [5]) and
// the log-extended-skew-normal (LESN, paper ref. [7]) — X = exp(Y)
// with Y extended-skew-normal. LESN matches the first four moments
// ("matching kurtosis") and is the strongest published moments-based
// baseline compared against LVF^2.

#include <optional>

#include "stats/descriptive.h"
#include "stats/extended_skew_normal.h"
#include "stats/rng.h"

namespace lvf2::stats {

/// Log-normal: X = exp(mu + sigma Z), Z ~ N(0,1).
class LogNormal {
 public:
  LogNormal() = default;
  LogNormal(double mu, double sigma);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  double pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;
  double mean() const;
  double variance() const;
  double stddev() const;
  double skewness() const;

  /// Moment fit from target mean / stddev (requires mean > 0).
  static std::optional<LogNormal> fit_moments(double mean, double stddev);

 private:
  double mu_ = 0.0;
  double sigma_ = 1.0;
};

/// Log-extended-skew-normal: X = exp(Y), Y ~ ESN(xi, omega, alpha, tau).
/// Raw moments are closed-form through the ESN moment generating
/// function E[e^{tY}] = e^{t xi + t^2 omega^2 / 2}
///                      * Phi(tau + delta t omega) / Phi(tau),
/// which makes four-moment matching practical.
class LogExtendedSkewNormal {
 public:
  LogExtendedSkewNormal() = default;
  explicit LogExtendedSkewNormal(const ExtendedSkewNormal& log_domain);

  const ExtendedSkewNormal& log_domain() const { return esn_; }

  double pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;
  double sample(Rng& rng) const;

  /// k-th raw moment E[X^k] (closed form).
  double raw_moment(int k) const;
  double mean() const;
  double variance() const;
  double stddev() const;
  double skewness() const;
  double kurtosis() const;

  /// Fits by matching (mean, stddev, skewness, kurtosis). The target
  /// mean must be positive (delays / transition times are). Returns
  /// nullopt when the shape search fails to produce finite moments.
  static std::optional<LogExtendedSkewNormal> fit_moments(
      const Moments& target);

 private:
  ExtendedSkewNormal esn_{0.0, 1.0, 0.0, 0.0};
};

}  // namespace lvf2::stats
