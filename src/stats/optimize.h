#pragma once
// Derivative-free optimizers used by the model fits:
//  - Nelder-Mead simplex (multi-dimensional) for the LVF^2 M-step and
//    for LESN moment matching,
//  - Brent minimization and bisection root finding (1-D) for quantile
//    inversion and scalar calibration problems.

#include <functional>
#include <span>
#include <vector>

namespace lvf2::stats {

/// Result of a multi-dimensional minimization.
struct MinimizeResult {
  std::vector<double> x;       ///< best point found
  double value = 0.0;          ///< objective at `x`
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Nelder-Mead options. Defaults tuned for 3-4 parameter likelihood
/// maximizations where the objective costs O(bins) per evaluation.
struct NelderMeadOptions {
  std::size_t max_evaluations = 2000;
  double x_tolerance = 1e-9;     ///< simplex size stop criterion
  double f_tolerance = 1e-12;    ///< spread of objective values
  double initial_step = 0.1;     ///< per-coordinate simplex extent
};

/// Minimizes `f` starting from `x0` with the Nelder-Mead simplex
/// method (adaptive coefficients per Gao & Han 2012 for dim > 2).
/// Non-finite objective values are treated as +infinity, which lets
/// callers express hard constraints by returning NaN/inf.
MinimizeResult nelder_mead(const std::function<double(std::span<const double>)>& f,
                           std::span<const double> x0,
                           const NelderMeadOptions& options = {});

/// Result of a 1-D minimization / root find.
struct ScalarResult {
  double x = 0.0;
  double value = 0.0;
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Brent's method: minimizes f over [lo, hi].
ScalarResult brent_minimize(const std::function<double(double)>& f, double lo,
                            double hi, double tolerance = 1e-10,
                            std::size_t max_iterations = 200);

/// Bisection root find on [lo, hi]. Requires a sign change; returns
/// converged = false (and the midpoint) otherwise.
ScalarResult bisect_root(const std::function<double(double)>& f, double lo,
                         double hi, double tolerance = 1e-12,
                         std::size_t max_iterations = 200);

}  // namespace lvf2::stats
