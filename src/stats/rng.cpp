#include "stats/rng.h"

#include <cmath>

namespace lvf2::stats {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (~0ull - n + 1) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::vector<double> Rng::normal_vector(std::size_t count) {
  std::vector<double> out(count);
  for (auto& x : out) x = normal();
  return out;
}

Rng Rng::split(std::uint64_t salt) {
  const std::uint64_t child_seed =
      combine_seed(next_u64(), salt ^ 0xa0761d6478bd642full);
  return Rng(child_seed);
}

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t combine_seed(std::uint64_t seed, std::uint64_t value) {
  std::uint64_t x = seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                            (seed >> 2));
  // Extra SplitMix64 finalization for avalanche.
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace lvf2::stats
