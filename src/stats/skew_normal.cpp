#include "stats/skew_normal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "simd/simd.h"
#include "stats/optimize.h"
#include "stats/special_functions.h"

namespace lvf2::stats {

namespace {

constexpr double kSkewClamp = 0.995;  // slightly inside the SN bound

// b = sqrt(2/pi); E|Z| for standard normal.
constexpr double kB = 0.797884560802865355879892119868763737;

// Skewness of a standard SN with the given delta.
double skewness_of_delta(double delta) {
  const double bd = kB * delta;
  const double var = 1.0 - bd * bd;
  return 0.5 * (4.0 - kPi) * bd * bd * bd / (var * std::sqrt(var));
}

// Inverts skewness -> delta (closed form from the moment equations).
double delta_of_skewness(double gamma) {
  const double sign = (gamma < 0.0) ? -1.0 : 1.0;
  const double g = std::fabs(gamma);
  const double g23 = std::pow(g, 2.0 / 3.0);
  const double c23 = std::pow(0.5 * (4.0 - kPi), 2.0 / 3.0);
  const double b2 = kB * kB;  // 2/pi
  const double delta2 = g23 / (b2 * (g23 + c23));
  return sign * std::sqrt(std::min(delta2, 1.0 - 1e-12));
}

}  // namespace

double skew_normal_max_skewness() { return skewness_of_delta(1.0 - 1e-12); }

SkewNormal::SkewNormal(double xi, double omega, double alpha)
    : xi_(xi), omega_(omega), alpha_(alpha) {
  if (!(omega > 0.0) || !std::isfinite(xi) || !std::isfinite(alpha)) {
    throw std::invalid_argument("SkewNormal: invalid parameters");
  }
}

SkewNormal SkewNormal::from_moments(const SnMoments& m) {
  return from_moments(m.mean, m.stddev, m.skewness);
}

SkewNormal SkewNormal::from_moments(double mean, double stddev,
                                    double skewness) {
  if (!std::isfinite(mean)) {
    throw std::invalid_argument("SkewNormal::from_moments: non-finite mean");
  }
  if (!(stddev > 0.0) || !std::isfinite(stddev)) {
    // Degenerate (near-constant) data, e.g. fed by the EM fallback
    // chain: degrade to a point mass at `mean` — a symmetric SN whose
    // scale is far below any resolvable timing quantity — instead of
    // throwing out of a deep characterization loop.
    static obs::Counter& point_masses =
        obs::counter("robust.stats.point_mass");
    point_masses.add(1);
    return SkewNormal(mean, std::max(std::fabs(mean) * 1e-9, 1e-12), 0.0);
  }
  const double max_skew = skewness_of_delta(kSkewClamp);
  const double gamma = std::clamp(std::isfinite(skewness) ? skewness : 0.0,
                                  -max_skew, max_skew);
  const double delta = delta_of_skewness(gamma);
  const double bd = kB * delta;
  const double omega = stddev / std::sqrt(1.0 - bd * bd);
  const double xi = mean - omega * bd;
  const double denom2 = 1.0 - delta * delta;
  const double alpha =
      (denom2 <= 0.0) ? std::copysign(1e8, delta) : delta / std::sqrt(denom2);
  return SkewNormal(xi, omega, alpha);
}

SnMoments SkewNormal::to_moments() const {
  return SnMoments{mean(), stddev(), skewness()};
}

double SkewNormal::delta() const {
  return alpha_ / std::sqrt(1.0 + alpha_ * alpha_);
}

double SkewNormal::pdf(double x) const {
  const double z = (x - xi_) / omega_;
  return 2.0 / omega_ * normal_pdf(z) * normal_cdf(alpha_ * z);
}

double SkewNormal::log_pdf(double x) const {
  const double z = (x - xi_) / omega_;
  return std::log(2.0 / omega_) - 0.5 * z * z - std::log(kSqrt2Pi) +
         normal_log_cdf(alpha_ * z);
}

double SkewNormal::cdf(double x) const {
  const double z = (x - xi_) / omega_;
  const double value = normal_cdf(z) - 2.0 * owens_t(z, alpha_);
  return std::clamp(value, 0.0, 1.0);
}

void SkewNormal::pdf(std::span<const double> x, std::span<double> out) const {
  simd::sn_pdf(xi_, omega_, alpha_, x, out);
}

void SkewNormal::log_pdf(std::span<const double> x,
                         std::span<double> out) const {
  simd::sn_log_pdf(xi_, omega_, alpha_, x, out);
}

void SkewNormal::cdf(std::span<const double> x, std::span<double> out) const {
  simd::sn_cdf(xi_, omega_, alpha_, x, out);
}

double SkewNormal::quantile(double p) const {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Bracket in standardized units, then bisect + Newton polish.
  double lo = -10.0, hi = 10.0;
  while (cdf(xi_ + omega_ * lo) > p && lo > -60.0) lo *= 1.5;
  while (cdf(xi_ + omega_ * hi) < p && hi < 60.0) hi *= 1.5;
  double a = xi_ + omega_ * lo;
  double b = xi_ + omega_ * hi;
  double x = 0.5 * (a + b);
  for (int iter = 0; iter < 200; ++iter) {
    const double c = cdf(x);
    if (c > p) b = x; else a = x;
    const double dens = pdf(x);
    double next = (dens > 1e-300) ? x - (c - p) / dens : 0.5 * (a + b);
    if (!(next > a && next < b)) next = 0.5 * (a + b);
    if (std::fabs(next - x) < 1e-14 * omega_) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double SkewNormal::sample(Rng& rng) const {
  const double d = delta();
  const double u0 = rng.normal();
  const double u1 = rng.normal();
  const double z = d * std::fabs(u0) + std::sqrt(1.0 - d * d) * u1;
  return xi_ + omega_ * z;
}

double SkewNormal::mean() const { return xi_ + omega_ * kB * delta(); }

double SkewNormal::variance() const {
  const double bd = kB * delta();
  return omega_ * omega_ * (1.0 - bd * bd);
}

double SkewNormal::stddev() const { return std::sqrt(variance()); }

double SkewNormal::skewness() const { return skewness_of_delta(delta()); }

double SkewNormal::kurtosis() const {
  const double bd = kB * delta();
  const double var = 1.0 - bd * bd;
  const double excess =
      2.0 * (kPi - 3.0) * bd * bd * bd * bd / (var * var);
  return 3.0 + excess;
}

std::optional<SkewNormal> SkewNormal::fit_moments(
    std::span<const double> samples, std::span<const double> weights) {
  const Moments m = weights.empty()
                        ? compute_moments(samples)
                        : compute_weighted_moments(samples, weights);
  if (m.count == 0 || !(m.stddev > 0.0)) return std::nullopt;
  return from_moments(m.mean, m.stddev, m.skewness);
}

std::optional<SkewNormal> SkewNormal::fit_weighted_mle(
    std::span<const double> samples, std::span<const double> weights,
    const SkewNormal* initial, std::size_t max_evaluations) {
  NelderMeadOptions options;
  options.max_evaluations = max_evaluations;
  options.initial_step = 0.25;
  return fit_weighted_mle(samples, weights, initial, options);
}

std::optional<SkewNormal> SkewNormal::fit_weighted_mle(
    std::span<const double> samples, std::span<const double> weights,
    const SkewNormal* initial, const NelderMeadOptions& options) {
  if (samples.empty() || samples.size() != weights.size()) return std::nullopt;
  std::optional<SkewNormal> start;
  if (initial != nullptr) {
    start = *initial;
  } else {
    start = fit_moments(samples, weights);
  }
  if (!start) return std::nullopt;

  // The optimizer calls this objective tens of thousands of times per
  // LVF^2 fit; it runs entirely inside the fused batch kernel
  // (simd.h), whose scalar tier matches the historical
  // buffer-then-reduce formulation bitwise.
  const auto objective = [&](std::span<const double> p) {
    const double xi = p[0];
    const double omega = std::exp(p[1]);
    const double alpha = p[2];
    if (!std::isfinite(omega) || omega <= 0.0 || std::fabs(alpha) > 1e6) {
      return std::numeric_limits<double>::infinity();
    }
    return simd::sn_weighted_nll(xi, omega, alpha, samples, weights);
  };

  const double x0[3] = {start->xi(), std::log(start->omega()), start->alpha()};
  const MinimizeResult r = nelder_mead(objective, x0, options);
  if (r.x.size() != 3 || !std::isfinite(r.value)) return start;
  const double omega = std::exp(r.x[1]);
  if (!(omega > 0.0) || !std::isfinite(omega)) return start;
  return SkewNormal(r.x[0], omega, r.x[2]);
}

}  // namespace lvf2::stats
