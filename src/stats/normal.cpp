#include "stats/normal.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "simd/simd.h"
#include "stats/special_functions.h"

namespace lvf2::stats {

Normal::Normal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) {
    throw std::invalid_argument("Normal: sigma must be positive");
  }
}

double Normal::pdf(double x) const {
  return normal_pdf((x - mu_) / sigma_) / sigma_;
}

double Normal::log_pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return -0.5 * z * z - std::log(sigma_ * kSqrt2Pi);
}

double Normal::cdf(double x) const { return normal_cdf((x - mu_) / sigma_); }

double Normal::quantile(double p) const {
  return mu_ + sigma_ * normal_quantile(p);
}

double Normal::sample(Rng& rng) const { return rng.normal(mu_, sigma_); }

void Normal::pdf(std::span<const double> x, std::span<double> out) const {
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - mu_) / sigma_;
  simd::normal_pdf(out.first(x.size()), out);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] /= sigma_;
}

void Normal::log_pdf(std::span<const double> x, std::span<double> out) const {
  simd::normal_mu_sigma_log_pdf(mu_, sigma_, x, out);
}

void Normal::cdf(std::span<const double> x, std::span<double> out) const {
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - mu_) / sigma_;
  simd::normal_cdf(out.first(x.size()), out);
}

}  // namespace lvf2::stats
