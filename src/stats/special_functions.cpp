#include "stats/special_functions.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace lvf2::stats {

double normal_pdf(double x) { return std::exp(-0.5 * x * x) / kSqrt2Pi; }

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_log_cdf(double x) {
  // The erfc path is accurate until erfc(-x/sqrt 2) goes subnormal at
  // x ~ -37.5; the Mills series truncation error (945/x^10) reaches
  // ~2e-13 absolute (3e-16 relative to the result) at x = -36.5, so
  // crossing over there keeps both sides at full precision. The old
  // -10 crossover paid ~1e-7 series truncation across [-36.5, -10].
  if (x > -36.5) {
    return std::log(normal_cdf(x));
  }
  // Asymptotic expansion of the Mills ratio for the deep lower tail:
  //   Phi(x) ~ phi(x)/|x| * (1 - 1/x^2 + 3/x^4 - 15/x^6 + 105/x^8).
  const double x2 = x * x;
  const double series =
      1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2) +
      105.0 / (x2 * x2 * x2 * x2);
  return -0.5 * x2 - std::log(-x * kSqrt2Pi) + std::log(series);
}

namespace {

// Coefficients of Acklam's inverse-normal rational approximation.
constexpr std::array<double, 6> kA = {
    -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
    1.383577518672690e+02,  -3.066479806614716e+01, 2.506628277459239e+00};
constexpr std::array<double, 5> kB = {
    -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
    6.680131188771972e+01,  -1.328068155288572e+01};
constexpr std::array<double, 6> kC = {
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
    -2.549732539343734e+00, 4.374664141464968e+00,  2.938163982698783e+00};
constexpr std::array<double, 4> kD = {
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
    3.754408661907416e+00};

double acklam(double p) {
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
            kC[5]) /
           ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q +
             kC[5]) /
           ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r +
          kA[5]) *
         q /
         (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r +
          1.0);
}

}  // namespace

double normal_quantile(double p) {
  if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  double x = acklam(p);
  // One Halley refinement step against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

namespace {

// 64-point Gauss-Legendre nodes/weights on [-1, 1] (symmetric half).
constexpr std::array<double, 32> kGlNodes = {
    0.0243502926634244, 0.0729931217877990, 0.1214628192961206,
    0.1696444204239928, 0.2174236437400071, 0.2646871622087674,
    0.3113228719902110, 0.3572201583376681, 0.4022701579639916,
    0.4463660172534641, 0.4894031457070530, 0.5312794640198946,
    0.5718956462026340, 0.6111553551723933, 0.6489654712546573,
    0.6852363130542333, 0.7198818501716109, 0.7528199072605319,
    0.7839723589433414, 0.8132653151227975, 0.8406292962525803,
    0.8659993981540928, 0.8893154459951141, 0.9105221370785028,
    0.9295691721319396, 0.9464113748584028, 0.9610087996520538,
    0.9733268277899110, 0.9833362538846260, 0.9910133714767443,
    0.9963401167719553, 0.9993050417357722};
constexpr std::array<double, 32> kGlWeights = {
    0.0486909570091397, 0.0485754674415034, 0.0483447622348030,
    0.0479993885964583, 0.0475401657148303, 0.0469681828162100,
    0.0462847965813144, 0.0454916279274181, 0.0445905581637566,
    0.0435837245293235, 0.0424735151236536, 0.0412625632426235,
    0.0399537411327203, 0.0385501531786156, 0.0370551285402400,
    0.0354722132568824, 0.0338051618371416, 0.0320579283548516,
    0.0302346570724025, 0.0283396726142595, 0.0263774697150547,
    0.0243527025687109, 0.0222701738083833, 0.0201348231535302,
    0.0179517157756973, 0.0157260304760247, 0.0134630478967186,
    0.0111681394601311, 0.0088467598263639, 0.0065044579689784,
    0.0041470332605625, 0.0017832807216964};

// Owen's T for |a| <= 1 by Gauss-Legendre quadrature on [0, a].
double owens_t_quad(double h, double a) {
  // Deep-tail domain clip: for h >= 8 the integrand
  // exp(-h^2(1+x^2)/2)/(1+x^2) is concentrated in x = O(1/h); nodes
  // beyond x = 10/h see values below e^-50 of the peak, so clipping
  // the upper limit there keeps all 64 nodes inside the mass (the
  // truncated tail is ~e^-50 relative). Without the clip, large h
  // leaves only a couple of nodes on the peak and the quadrature
  // loses most of its digits exactly where O2's high-sigma
  // importance sampling needs them.
  if (h >= 8.0) a = std::min(a, 10.0 / h);
  const double half = 0.5 * a;
  const double h2 = -0.5 * h * h;
  double sum = 0.0;
  for (std::size_t i = 0; i < kGlNodes.size(); ++i) {
    const double xp = half * (1.0 + kGlNodes[i]);
    const double xm = half * (1.0 - kGlNodes[i]);
    const double fp = std::exp(h2 * (1.0 + xp * xp)) / (1.0 + xp * xp);
    const double fm = std::exp(h2 * (1.0 + xm * xm)) / (1.0 + xm * xm);
    sum += kGlWeights[i] * (fp + fm);
  }
  return sum * half / (2.0 * kPi);
}

}  // namespace

double owens_t(double h, double a) {
  if (std::isnan(h) || std::isnan(a)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Symmetries: T(h,a) is even in h and odd in a.
  h = std::fabs(h);
  const double sign = (a < 0.0) ? -1.0 : 1.0;
  a = std::fabs(a);
  if (a == 0.0) return 0.0;
  if (h == 0.0) return sign * std::atan(a) / (2.0 * kPi);
  if (std::isinf(a)) {
    return sign * 0.5 * normal_cdf(-h);
  }
  double t = 0.0;
  if (a <= 1.0) {
    t = owens_t_quad(h, a);
  } else {
    // T(h,a) = 1/2 [Phi(h) + Phi(ah)] - Phi(h) Phi(ah) - T(ah, 1/a),
    // rewritten in the complementary form
    //   T(h,a) = 1/2 (u + v) - u v - T(ah, 1/a),
    // with u = Phi(-h), v = Phi(-ah). The textbook form subtracts
    // Phi(h) Phi(ah) from 1/2 [Phi(h) + Phi(ah)]; for h in [6, 8]
    // both operands approach the same value near 1/2 + tiny and the
    // difference loses ~u digits to cancellation. The complementary
    // form keeps every term proportional to the small tail masses.
    const double u = normal_cdf(-h);
    const double v = normal_cdf(-a * h);
    t = 0.5 * (u + v) - u * v - owens_t_quad(a * h, 1.0 / a);
  }
  return sign * t;
}

double zeta1(double x) {
  // Crossover matched to normal_log_cdf: the pdf/cdf ratio is exact
  // while both factors are normal-range (|x| < ~37.5); the series
  // truncation only drops below double precision past -36.5.
  if (x > -36.5) {
    return normal_pdf(x) / normal_cdf(x);
  }
  // phi / Phi = |x| / mills-series for the deep lower tail.
  const double x2 = x * x;
  const double series =
      1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2) +
      105.0 / (x2 * x2 * x2 * x2);
  return -x / series;
}

double zeta2(double x) {
  const double z1 = zeta1(x);
  return -z1 * (x + z1);
}

double zeta3(double x) {
  const double z1 = zeta1(x);
  const double z2 = zeta2(x);
  // zeta3 = -zeta2 (x + z1) - z1 (1 + z2).
  return -z2 * (x + z1) - z1 * (1.0 + z2);
}

double zeta4(double x) {
  const double z1 = zeta1(x);
  const double z2 = zeta2(x);
  const double z3 = zeta3(x);
  // Derivative of zeta3 expression above.
  return -z3 * (x + z1) - z2 * (1.0 + z2) - z2 * (1.0 + z2) - z1 * z3;
}

double log_sum_exp(double a, double b) {
  if (std::isinf(a) && a < 0.0) return b;
  if (std::isinf(b) && b < 0.0) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double kahan_sum(std::span<const double> values) {
  double sum = 0.0;
  double c = 0.0;
  for (double v : values) {
    const double y = v - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x) {
  const std::size_t n = xs.size();
  if (n == 0 || ys.size() != n) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (n == 1 || x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

}  // namespace lvf2::stats
