#include "stats/extended_skew_normal.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

#include "simd/simd.h"
#include "stats/optimize.h"
#include "stats/special_functions.h"

namespace lvf2::stats {

namespace {

// Standardized cumulants of ESN(alpha, tau), from
// K(t) = t^2/2 + log Phi(tau + delta t) - log Phi(tau).
struct EsnCumulants {
  double k1, k2, k3, k4;
};

EsnCumulants cumulants(double delta, double tau) {
  const double d2 = delta * delta;
  return EsnCumulants{
      delta * zeta1(tau),
      1.0 + d2 * zeta2(tau),
      d2 * delta * zeta3(tau),
      d2 * d2 * zeta4(tau),
  };
}

}  // namespace

ExtendedSkewNormal::ExtendedSkewNormal(double xi, double omega, double alpha,
                                       double tau)
    : xi_(xi), omega_(omega), alpha_(alpha), tau_(tau) {
  if (!(omega > 0.0) || !std::isfinite(xi) || !std::isfinite(alpha) ||
      !std::isfinite(tau)) {
    throw std::invalid_argument("ExtendedSkewNormal: invalid parameters");
  }
  const double k2 = cumulants(delta(), tau).k2;
  if (!(k2 > 0.0)) {
    throw std::invalid_argument(
        "ExtendedSkewNormal: parameters give non-positive variance");
  }
}

double ExtendedSkewNormal::delta() const {
  return alpha_ / std::sqrt(1.0 + alpha_ * alpha_);
}

double ExtendedSkewNormal::pdf(double x) const {
  return std::exp(log_pdf(x));
}

double ExtendedSkewNormal::log_pdf(double x) const {
  const double z = (x - xi_) / omega_;
  const double arg = tau_ * std::sqrt(1.0 + alpha_ * alpha_) + alpha_ * z;
  return -0.5 * z * z - std::log(kSqrt2Pi * omega_) + normal_log_cdf(arg) -
         normal_log_cdf(tau_);
}

double ExtendedSkewNormal::cdf(double x) const {
  // Composite 16-point Gauss-Legendre over panels from the effective
  // lower tail (mean - 12 sd) to x.
  const double lo = mean() - 12.0 * stddev();
  if (x <= lo) return 0.0;
  static constexpr double kNodes[8] = {
      0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
      0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
      0.9445750230732326, 0.9894009349916499};
  static constexpr double kWeights[8] = {
      0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
      0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
      0.0622535239386479, 0.0271524594117541};
  const int panels =
      std::clamp(static_cast<int>((x - lo) / stddev() * 4.0) + 1, 4, 256);
  const double h = (x - lo) / panels;
  // All panel nodes are laid out once and evaluated through the batch
  // pdf kernel; the quadrature sum then runs in the same panel/node
  // order as the original per-point loop.
  std::vector<double> pts(static_cast<std::size_t>(panels) * 16);
  std::size_t k = 0;
  const double half = 0.5 * h;
  for (int p = 0; p < panels; ++p) {
    const double c = lo + (p + 0.5) * h;
    for (int i = 0; i < 8; ++i) {
      pts[k++] = c + half * kNodes[i];
      pts[k++] = c - half * kNodes[i];
    }
  }
  std::vector<double> f(pts.size());
  simd::esn_pdf(xi_, omega_, alpha_, tau_, pts, f);
  double sum = 0.0;
  k = 0;
  for (int p = 0; p < panels; ++p) {
    for (int i = 0; i < 8; ++i) {
      const double fp = f[k++];
      const double fm = f[k++];
      sum += kWeights[i] * (fp + fm) * half;
    }
  }
  return std::clamp(sum, 0.0, 1.0);
}

void ExtendedSkewNormal::pdf(std::span<const double> x,
                             std::span<double> out) const {
  simd::esn_pdf(xi_, omega_, alpha_, tau_, x, out);
}

void ExtendedSkewNormal::log_pdf(std::span<const double> x,
                                 std::span<double> out) const {
  simd::esn_log_pdf(xi_, omega_, alpha_, tau_, x, out);
}

double ExtendedSkewNormal::quantile(double p) const {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  double a = mean() - 12.0 * stddev();
  double b = mean() + 12.0 * stddev();
  const auto f = [&](double x) { return cdf(x) - p; };
  return bisect_root(f, a, b, 1e-12 * stddev()).x;
}

double ExtendedSkewNormal::sample(Rng& rng) const {
  // Hidden truncation: T ~ N(0,1) conditioned on T > -tau.
  const double p_lo = normal_cdf(-tau_);
  const double u = p_lo + (1.0 - p_lo) * rng.uniform();
  const double t =
      normal_quantile(std::clamp(u, 1e-16, 1.0 - 1e-16));
  const double d = delta();
  const double z = d * t + std::sqrt(1.0 - d * d) * rng.normal();
  return xi_ + omega_ * z;
}

double ExtendedSkewNormal::mean() const {
  return xi_ + omega_ * cumulants(delta(), tau_).k1;
}

double ExtendedSkewNormal::variance() const {
  return omega_ * omega_ * cumulants(delta(), tau_).k2;
}

double ExtendedSkewNormal::stddev() const { return std::sqrt(variance()); }

double ExtendedSkewNormal::skewness() const {
  const EsnCumulants k = cumulants(delta(), tau_);
  return k.k3 / std::pow(k.k2, 1.5);
}

double ExtendedSkewNormal::kurtosis() const {
  const EsnCumulants k = cumulants(delta(), tau_);
  return 3.0 + k.k4 / (k.k2 * k.k2);
}

std::optional<ExtendedSkewNormal> ExtendedSkewNormal::fit_moments(
    const Moments& target) {
  if (target.count == 0 || !(target.stddev > 0.0)) return std::nullopt;

  // Match (skewness, kurtosis) over the shape pair; parameterize
  // delta = tanh(u) to stay in (-1, 1).
  const auto shape_objective = [&](std::span<const double> p) {
    const double delta = std::tanh(p[0]);
    const double tau = std::clamp(p[1], -30.0, 30.0);
    const EsnCumulants k = cumulants(delta, tau);
    if (!(k.k2 > 1e-10)) return std::numeric_limits<double>::infinity();
    const double skew = k.k3 / std::pow(k.k2, 1.5);
    const double kurt = 3.0 + k.k4 / (k.k2 * k.k2);
    const double es = skew - target.skewness;
    const double ek = kurt - target.kurtosis;
    return es * es + 0.25 * ek * ek;
  };

  // Multi-start over a small grid of (delta, tau) seeds.
  MinimizeResult best;
  best.value = std::numeric_limits<double>::infinity();
  const double seed_deltas[] = {-0.9, -0.5, 0.0, 0.5, 0.9};
  const double seed_taus[] = {-4.0, -1.0, 0.0, 1.0, 4.0};
  NelderMeadOptions options;
  options.max_evaluations = 600;
  options.initial_step = 0.5;
  for (double sd : seed_deltas) {
    for (double st : seed_taus) {
      const double x0[2] = {std::atanh(sd * 0.999), st};
      MinimizeResult r = nelder_mead(shape_objective, x0, options);
      if (r.value < best.value) best = std::move(r);
    }
  }
  if (best.x.size() != 2) return std::nullopt;

  const double delta = std::tanh(best.x[0]);
  const double tau = std::clamp(best.x[1], -30.0, 30.0);
  const EsnCumulants k = cumulants(delta, tau);
  if (!(k.k2 > 1e-10)) return std::nullopt;
  const double omega = target.stddev / std::sqrt(k.k2);
  const double xi = target.mean - omega * k.k1;
  const double d2 = 1.0 - delta * delta;
  const double alpha =
      (d2 <= 0.0) ? std::copysign(1e8, delta) : delta / std::sqrt(d2);
  return ExtendedSkewNormal(xi, omega, alpha, tau);
}

}  // namespace lvf2::stats
