#include "stats/grid_pdf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "simd/simd.h"
#include "stats/descriptive.h"
#include "stats/special_functions.h"

namespace lvf2::stats {

namespace {

// Trapezoid integral of uniformly spaced values.
double trapezoid(std::span<const double> y, double step) {
  if (y.size() < 2) return 0.0;
  double sum = 0.5 * (y.front() + y.back());
  for (std::size_t i = 1; i + 1 < y.size(); ++i) sum += y[i];
  return sum * step;
}

}  // namespace

GridPdf GridPdf::from_function(const std::function<double(double)>& pdf,
                               double lo, double hi, std::size_t points) {
  if (!(hi > lo) || points < 8) {
    throw std::invalid_argument("GridPdf::from_function: bad grid");
  }
  std::vector<double> values(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double v = pdf(lo + step * static_cast<double>(i));
    values[i] = (std::isfinite(v) && v > 0.0) ? v : 0.0;
  }
  return from_values(lo, hi, std::move(values));
}

GridPdf GridPdf::from_samples(std::span<const double> samples,
                              std::size_t points, double pad_fraction) {
  if (samples.empty() || points < 8) {
    throw std::invalid_argument("GridPdf::from_samples: bad input");
  }
  const BinnedSamples bins = bin_samples(samples, points, pad_fraction);
  if (bins.centers.empty()) {
    throw std::invalid_argument("GridPdf::from_samples: no finite samples");
  }
  std::vector<double> values(points);
  for (std::size_t i = 0; i < points; ++i) values[i] = bins.density(i);
  const double lo = bins.centers.front();
  const double hi = bins.centers.back();
  return from_values(lo, hi, std::move(values));
}

core::StatusOr<GridPdf> GridPdf::try_from_samples(
    std::span<const double> samples, std::size_t points,
    double pad_fraction) {
  if (points < 8) {
    return core::Status::invalid_argument(
        "GridPdf::try_from_samples: fewer than 8 grid points");
  }
  bool any_finite = false;
  for (double x : samples) {
    if (std::isfinite(x)) {
      any_finite = true;
      break;
    }
  }
  if (!any_finite) {
    return core::Status::degenerate_data(
        "GridPdf::try_from_samples: no finite samples");
  }
  return from_samples(samples, points, pad_fraction);
}

core::StatusOr<GridPdf> GridPdf::try_from_values(double lo, double hi,
                                                 std::vector<double> density) {
  if (!std::isfinite(lo) || !std::isfinite(hi) || !(hi > lo)) {
    return core::Status::invalid_argument(
        "GridPdf::try_from_values: bad range");
  }
  if (density.size() < 2) {
    return core::Status::degenerate_data(
        "GridPdf::try_from_values: fewer than 2 grid points");
  }
  GridPdf out = from_values(lo, hi, std::move(density));
  if (!(out.cdf_.back() > 0.0)) {
    return core::Status::degenerate_data(
        "GridPdf::try_from_values: density integrates to zero");
  }
  return out;
}

GridPdf GridPdf::from_values(double lo, double hi,
                             std::vector<double> density) {
  if (!(hi > lo) || density.size() < 2) {
    throw std::invalid_argument("GridPdf::from_values: bad grid");
  }
  GridPdf out;
  out.lo_ = lo;
  out.hi_ = hi;
  out.density_ = std::move(density);
  out.step_ = (hi - lo) / static_cast<double>(out.density_.size() - 1);
  for (double& v : out.density_) {
    if (!std::isfinite(v) || v < 0.0) v = 0.0;
  }
  const double integral = trapezoid(out.density_, out.step_);
  if (integral > 0.0) {
    for (double& v : out.density_) v /= integral;
  }
  out.rebuild_cdf();
  return out;
}

void GridPdf::rebuild_cdf() {
  cdf_.assign(density_.size(), 0.0);
  for (std::size_t i = 1; i < density_.size(); ++i) {
    cdf_[i] = cdf_[i - 1] + 0.5 * (density_[i - 1] + density_[i]) * step_;
  }
  // Normalize the cumulative so the last entry is exactly 1.
  const double total = cdf_.back();
  if (total > 0.0) {
    for (double& c : cdf_) c /= total;
  }
}

double GridPdf::pdf(double x) const {
  if (empty() || x < lo_ || x > hi_) return 0.0;
  const double pos = (x - lo_) / step_;
  const std::size_t i = std::min(static_cast<std::size_t>(pos),
                                 density_.size() - 2);
  const double t = pos - static_cast<double>(i);
  return density_[i] + t * (density_[i + 1] - density_[i]);
}

double GridPdf::cdf(double x) const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double pos = (x - lo_) / step_;
  const std::size_t i = std::min(static_cast<std::size_t>(pos),
                                 cdf_.size() - 2);
  const double t = pos - static_cast<double>(i);
  return std::clamp(cdf_[i] + t * (cdf_[i + 1] - cdf_[i]), 0.0, 1.0);
}

double GridPdf::quantile(double p) const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  if (it == cdf_.begin()) return lo_;
  if (it == cdf_.end()) return hi_;
  const std::size_t hi_idx = static_cast<std::size_t>(it - cdf_.begin());
  const std::size_t lo_idx = hi_idx - 1;
  const double c0 = cdf_[lo_idx];
  const double c1 = cdf_[hi_idx];
  const double t = (c1 > c0) ? (p - c0) / (c1 - c0) : 0.0;
  return x_at(lo_idx) + t * step_;
}

double GridPdf::mean() const {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double w = (i == 0 || i + 1 == density_.size()) ? 0.5 : 1.0;
    sum += w * x_at(i) * density_[i];
  }
  return sum * step_;
}

double GridPdf::variance() const {
  const double mu = mean();
  double sum = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double w = (i == 0 || i + 1 == density_.size()) ? 0.5 : 1.0;
    const double d = x_at(i) - mu;
    sum += w * d * d * density_[i];
  }
  return sum * step_;
}

double GridPdf::stddev() const { return std::sqrt(variance()); }

double GridPdf::skewness() const {
  const double mu = mean();
  double m2 = 0.0, m3 = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double w = (i == 0 || i + 1 == density_.size()) ? 0.5 : 1.0;
    const double d = x_at(i) - mu;
    m2 += w * d * d * density_[i];
    m3 += w * d * d * d * density_[i];
  }
  m2 *= step_;
  m3 *= step_;
  return (m2 > 0.0) ? m3 / (m2 * std::sqrt(m2)) : 0.0;
}

double GridPdf::kurtosis() const {
  const double mu = mean();
  double m2 = 0.0, m4 = 0.0;
  for (std::size_t i = 0; i < density_.size(); ++i) {
    const double w = (i == 0 || i + 1 == density_.size()) ? 0.5 : 1.0;
    const double d = x_at(i) - mu;
    m2 += w * d * d * density_[i];
    m4 += w * d * d * d * d * density_[i];
  }
  m2 *= step_;
  m4 *= step_;
  return (m2 > 0.0) ? m4 / (m2 * m2) : 3.0;
}

GridPdf GridPdf::resampled(double new_lo, double new_hi,
                           std::size_t points) const {
  std::vector<double> values(points);
  const double step = (new_hi - new_lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    values[i] = pdf(new_lo + step * static_cast<double>(i));
  }
  return from_values(new_lo, new_hi, std::move(values));
}

GridPdf GridPdf::shifted(double offset) const {
  GridPdf out = *this;
  out.lo_ += offset;
  out.hi_ += offset;
  return out;
}

GridPdf GridPdf::convolve(const GridPdf& a, const GridPdf& b,
                          std::size_t max_points) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("GridPdf::convolve: empty operand");
  }
  // Common step: the finer of the two, coarsened if the result grid
  // would exceed max_points.
  const double span = (a.hi_ - a.lo_) + (b.hi_ - b.lo_);
  double step = std::min(a.step_, b.step_);
  if (span / step + 1.0 > static_cast<double>(max_points)) {
    step = span / static_cast<double>(max_points - 1);
  }
  const auto resample_to_step = [step](const GridPdf& g) {
    const std::size_t n = static_cast<std::size_t>(
                              std::ceil((g.hi_ - g.lo_) / step)) + 1;
    return g.resampled(g.lo_, g.lo_ + step * static_cast<double>(n - 1),
                       std::max<std::size_t>(n, 2));
  };
  const GridPdf ra = resample_to_step(a);
  const GridPdf rb = resample_to_step(b);
  const std::size_t n = ra.size() + rb.size() - 1;
  std::vector<double> values(n, 0.0);
  // Direct discrete convolution (densities; scale by step once). The
  // inner accumulation is the batch axpy kernel, which keeps an
  // unfused multiply+add on every tier so the result is bitwise
  // identical to the plain loop.
  const std::span<const double> rbd(rb.density_);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double da = ra.density_[i];
    if (da == 0.0) continue;
    simd::axpy(da, rbd, std::span<double>(values).subspan(i, rb.size()));
  }
  for (double& v : values) v *= step;
  const double lo = ra.lo_ + rb.lo_;
  const double hi = lo + step * static_cast<double>(n - 1);
  return from_values(lo, hi, std::move(values));
}

GridPdf GridPdf::statistical_max(const GridPdf& a, const GridPdf& b,
                                 std::size_t points) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("GridPdf::statistical_max: empty operand");
  }
  const double lo = std::min(a.lo_, b.lo_);
  const double hi = std::max(a.hi_, b.hi_);
  std::vector<double> values(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    values[i] = a.pdf(x) * b.cdf(x) + b.pdf(x) * a.cdf(x);
  }
  return from_values(lo, hi, std::move(values));
}

}  // namespace lvf2::stats
