#pragma once
// Deterministic pseudo-random number generation for the whole project.
//
// Every Monte-Carlo run in this repository takes an explicit 64-bit
// seed so that characterization tables, tests and benches are
// reproducible bit-for-bit. The generator is xoshiro256++ (public
// domain, Blackman & Vigna), seeded through SplitMix64.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lvf2::stats {

/// xoshiro256++ pseudo-random generator with normal / uniform helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Raw 64-bit output.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (polar Marsaglia method with caching).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// `count` i.i.d. standard normal variates.
  std::vector<double> normal_vector(std::size_t count);

  /// Derives an independent child generator; `salt` decorrelates
  /// children spawned from the same parent state.
  Rng split(std::uint64_t salt);

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stable 64-bit FNV-1a hash of a string; used to derive
/// per-cell / per-arc / per-condition seeds from names.
std::uint64_t hash_name(std::string_view name);

/// Combines a seed with additional integer components (boost-style
/// hash_combine over SplitMix64 mixing).
std::uint64_t combine_seed(std::uint64_t seed, std::uint64_t value);

}  // namespace lvf2::stats
