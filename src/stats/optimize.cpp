#include "stats/optimize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace lvf2::stats {

namespace {

double guarded(const std::function<double(std::span<const double>)>& f,
               std::span<const double> x, std::size_t& evals) {
  ++evals;
  const double v = f(x);
  return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
}

}  // namespace

MinimizeResult nelder_mead(
    const std::function<double(std::span<const double>)>& f,
    std::span<const double> x0, const NelderMeadOptions& options) {
  MinimizeResult result;
  const std::size_t n = x0.size();
  if (n == 0) return result;

  // Adaptive coefficients (Gao & Han) help for n > 2.
  const double dim = static_cast<double>(n);
  const double alpha = 1.0;
  const double beta = 1.0 + 2.0 / dim;
  const double gamma = 0.75 - 0.5 / dim;
  const double delta = 1.0 - 1.0 / dim;

  std::vector<std::vector<double>> pts(n + 1,
                                       std::vector<double>(x0.begin(), x0.end()));
  std::vector<double> vals(n + 1);
  std::size_t evals = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double base = pts[i + 1][i];
    pts[i + 1][i] =
        base + (base != 0.0 ? options.initial_step * std::fabs(base)
                            : options.initial_step);
  }
  for (std::size_t i = 0; i <= n; ++i) vals[i] = guarded(f, pts[i], evals);

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n), trial(n), trial2(n);

  while (evals < options.max_evaluations) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    // Convergence checks: simplex extent and value spread.
    double extent = 0.0;
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::size_t d = 0; d < n; ++d) {
        extent = std::max(extent, std::fabs(pts[i][d] - pts[best][d]));
      }
    }
    const double spread = vals[worst] - vals[best];
    if (extent < options.x_tolerance ||
        (std::isfinite(spread) && spread < options.f_tolerance)) {
      result.converged = true;
      break;
    }

    // Centroid of all points but the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += pts[i][d];
    }
    for (double& c : centroid) c /= dim;

    // Reflection.
    for (std::size_t d = 0; d < n; ++d) {
      trial[d] = centroid[d] + alpha * (centroid[d] - pts[worst][d]);
    }
    const double fr = guarded(f, trial, evals);

    if (fr < vals[best]) {
      // Expansion.
      for (std::size_t d = 0; d < n; ++d) {
        trial2[d] = centroid[d] + beta * (trial[d] - centroid[d]);
      }
      const double fe = guarded(f, trial2, evals);
      if (fe < fr) {
        pts[worst] = trial2;
        vals[worst] = fe;
      } else {
        pts[worst] = trial;
        vals[worst] = fr;
      }
    } else if (fr < vals[second_worst]) {
      pts[worst] = trial;
      vals[worst] = fr;
    } else {
      // Contraction (outside if reflected point improved on worst).
      const bool outside = fr < vals[worst];
      const auto& toward = outside ? trial : pts[worst];
      for (std::size_t d = 0; d < n; ++d) {
        trial2[d] = centroid[d] + gamma * (toward[d] - centroid[d]);
      }
      const double fc = guarded(f, trial2, evals);
      if (fc < std::min(fr, vals[worst])) {
        pts[worst] = trial2;
        vals[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d) {
            pts[i][d] = pts[best][d] + delta * (pts[i][d] - pts[best][d]);
          }
          vals[i] = guarded(f, pts[i], evals);
        }
      }
    }
  }

  const auto best_it = std::min_element(vals.begin(), vals.end());
  result.x = pts[static_cast<std::size_t>(best_it - vals.begin())];
  result.value = *best_it;
  result.evaluations = evals;
  return result;
}

ScalarResult brent_minimize(const std::function<double(double)>& f, double lo,
                            double hi, double tolerance,
                            std::size_t max_iterations) {
  ScalarResult result;
  if (lo > hi) std::swap(lo, hi);
  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2
  double a = lo, b = hi;
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  std::size_t evals = 0;
  auto eval = [&](double t) {
    ++evals;
    const double y = f(t);
    return std::isfinite(y) ? y : std::numeric_limits<double>::infinity();
  };
  double fx = eval(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol = tolerance * std::fabs(x) + 1e-15;
    if (std::fabs(x - m) <= 2.0 * tol - 0.5 * (b - a)) {
      result.converged = true;
      break;
    }
    double p = 0.0, q = 0.0, r = 0.0;
    bool parabolic = false;
    if (std::fabs(e) > tol) {
      // Fit a parabola through (v,fv), (w,fw), (x,fx).
      r = (x - w) * (fx - fv);
      q = (x - v) * (fx - fw);
      p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      parabolic = std::fabs(p) < std::fabs(0.5 * q * e_old) &&
                  p > q * (a - x) && p < q * (b - x);
      if (parabolic) {
        d = p / q;
        const double u = x + d;
        if (u - a < 2.0 * tol || b - u < 2.0 * tol) {
          d = (x < m) ? tol : -tol;
        }
      }
    }
    if (!parabolic) {
      e = (x < m) ? b - x : a - x;
      d = kGolden * e;
    }
    const double u =
        (std::fabs(d) >= tol) ? x + d : x + ((d > 0.0) ? tol : -tol);
    const double fu = eval(u);
    if (fu <= fx) {
      if (u < x) b = x; else a = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  result.x = x;
  result.value = fx;
  result.evaluations = evals;
  return result;
}

ScalarResult bisect_root(const std::function<double(double)>& f, double lo,
                         double hi, double tolerance,
                         std::size_t max_iterations) {
  ScalarResult result;
  double flo = f(lo);
  double fhi = f(hi);
  result.evaluations = 2;
  if (flo == 0.0) {
    result.x = lo;
    result.converged = true;
    return result;
  }
  if (fhi == 0.0) {
    result.x = hi;
    result.converged = true;
    return result;
  }
  if (!(flo * fhi < 0.0)) {
    result.x = 0.5 * (lo + hi);
    return result;
  }
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    ++result.evaluations;
    if (fm == 0.0 || 0.5 * (hi - lo) < tolerance) {
      result.x = mid;
      result.value = fm;
      result.converged = true;
      return result;
    }
    if (flo * fm < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.converged = true;
  return result;
}

}  // namespace lvf2::stats
