#pragma once
// Azzalini skew-normal (SN) distribution — the statistical core of the
// Liberty Variation Format (LVF). LVF stores the moment vector
// theta = (mu, sigma, gamma); a bijection g maps it to the direct SN
// parameters Theta = (xi, omega, alpha) (paper Eq. 2), and the density
// is
//   f_SN(x | Theta) = 2/omega * phi((x-xi)/omega) * Phi(alpha (x-xi)/omega)
// (paper Eq. 3). The CDF uses Owen's T:
//   F_SN(z) = Phi(z) - 2 T(z, alpha).

#include <optional>

#include "stats/descriptive.h"
#include "stats/optimize.h"
#include "stats/rng.h"

namespace lvf2::stats {

/// Maximum attainable |skewness| of a skew-normal (delta -> 1 limit),
/// approximately 0.99527. The moment bijection clamps requested
/// skewness slightly inside this bound.
double skew_normal_max_skewness();

/// Moment triple used by LVF look-up tables.
struct SnMoments {
  double mean = 0.0;
  double stddev = 1.0;
  double skewness = 0.0;
};

/// Direct-parameter skew-normal distribution.
class SkewNormal {
 public:
  /// Standard normal by default (alpha = 0).
  SkewNormal() = default;

  /// Direct parameters: location `xi`, scale `omega` > 0, shape `alpha`.
  SkewNormal(double xi, double omega, double alpha);

  /// The bijection g: theta -> Theta (paper Eq. 2). Skewness is
  /// clamped into the attainable open interval (non-finite skewness
  /// reads as 0). A degenerate spread (stddev <= 0 or non-finite)
  /// degrades to a point mass at `mean` — counted under
  /// robust.stats.point_mass — so the EM degradation chain can keep
  /// going on near-constant sample sets. A non-finite mean still
  /// throws: that is a caller bug, not recoverable data.
  static SkewNormal from_moments(const SnMoments& m);
  static SkewNormal from_moments(double mean, double stddev, double skewness);

  /// Inverse bijection g^-1: Theta -> theta.
  SnMoments to_moments() const;

  double xi() const { return xi_; }
  double omega() const { return omega_; }
  double alpha() const { return alpha_; }
  /// delta = alpha / sqrt(1 + alpha^2).
  double delta() const;

  double pdf(double x) const;
  double log_pdf(double x) const;
  double cdf(double x) const;
  /// Batch overloads through the dispatch-selected kernels (simd.h);
  /// out.size() must be >= x.size(). In-place (out == x) is allowed.
  void pdf(std::span<const double> x, std::span<double> out) const;
  void log_pdf(std::span<const double> x, std::span<double> out) const;
  void cdf(std::span<const double> x, std::span<double> out) const;
  /// Inverse CDF by bracketed bisection + Newton polish.
  double quantile(double p) const;
  /// Sampling via the convolution representation
  /// Z = delta |U0| + sqrt(1-delta^2) U1 with U0, U1 iid N(0,1).
  double sample(Rng& rng) const;

  double mean() const;
  double stddev() const;
  double variance() const;
  double skewness() const;
  /// Fourth standardized moment (normal == 3).
  double kurtosis() const;

  /// Weighted maximum-likelihood fit (used by the LVF^2 M-step):
  /// maximizes sum_i w_i log f(x_i) over (xi, log omega, alpha) with
  /// Nelder-Mead, warm-started from `initial` when provided, else from
  /// the weighted method of moments. Returns nullopt when the data or
  /// weights are degenerate.
  static std::optional<SkewNormal> fit_weighted_mle(
      std::span<const double> samples, std::span<const double> weights,
      const SkewNormal* initial = nullptr, std::size_t max_evaluations = 400);

  /// Same fit with full control of the Nelder-Mead schedule. EM-style
  /// callers pass a shrinking `initial_step` as successive M-steps
  /// move less, so a warm-started refinement converges in a fraction
  /// of the cold-start budget. The returned fit is never worse (in
  /// weighted NLL) than `initial`: the start point is a simplex
  /// vertex.
  static std::optional<SkewNormal> fit_weighted_mle(
      std::span<const double> samples, std::span<const double> weights,
      const SkewNormal* initial, const NelderMeadOptions& options);

  /// Method-of-moments fit from (possibly weighted) samples.
  static std::optional<SkewNormal> fit_moments(
      std::span<const double> samples, std::span<const double> weights = {});

 private:
  double xi_ = 0.0;
  double omega_ = 1.0;
  double alpha_ = 0.0;
};

}  // namespace lvf2::stats
