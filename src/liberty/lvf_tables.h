#pragma once
// Statistical timing tables in Liberty: writing a characterized
// library out with both LVF and LVF^2 attributes, and reading either
// kind back into LVF^2 models.
//
// LVF (paper Section 2.2) stores per arc, per table:
//   cell_rise                      nominal LUT
//   ocv_mean_shift_cell_rise       mean - nominal
//   ocv_std_dev_cell_rise          sigma
//   ocv_skewness_cell_rise         skewness
//
// LVF^2 (paper Section 3.3) adds seven attributes with defaulting
// rules that guarantee backward compatibility (Eq. 10):
//   ocv_mean_shift1_*  (default: inherits ocv_mean_shift_*)
//   ocv_std_dev1_*     (default: inherits ocv_std_dev_*)
//   ocv_skewness1_*    (default: inherits ocv_skewness_*)
//   ocv_weight2_*      (default: all zeros)
//   ocv_mean_shift2_*, ocv_std_dev2_*, ocv_skewness2_*
//
// An LVF^2-capable reader applied to a plain LVF library therefore
// yields lambda = 0 mixtures that are exactly the LVF skew-normals.

#include <optional>
#include <string>
#include <vector>

#include "cells/characterize.h"
#include "core/lvf2_model.h"
#include "core/lvfk_model.h"
#include "liberty/ast.h"

namespace lvf2::liberty {

/// A 2-D look-up table: index_1 = input slew [ns], index_2 = output
/// load [pF], values[i][j] at (index_1[i], index_2[j]).
struct TimingTable {
  std::vector<double> index_1;
  std::vector<double> index_2;
  std::vector<std::vector<double>> values;

  bool empty() const { return values.empty(); }
  double at(std::size_t i, std::size_t j) const { return values[i][j]; }

  /// Bilinear interpolation (clamped at the grid boundary).
  double lookup(double slew_ns, double load_pf) const;
};

/// The full statistical table set of one arc quantity (delay or
/// transition, one direction).
struct StatisticalTables {
  TimingTable nominal;
  // LVF.
  TimingTable mean_shift;
  TimingTable std_dev;
  TimingTable skewness;
  // LVF^2 (empty tables mean "absent in the library" -> defaults).
  TimingTable mean_shift1;
  TimingTable std_dev1;
  TimingTable skewness1;
  TimingTable weight2;
  TimingTable mean_shift2;
  TimingTable std_dev2;
  TimingTable skewness2;

  /// Components beyond the second (the Section 3.3 "more components"
  /// extension: ocv_mean_shift3_*, ocv_weight3_*, ...). Entry 0 is
  /// component 3.
  struct ComponentTables {
    TimingTable mean_shift;
    TimingTable std_dev;
    TimingTable skewness;
    TimingTable weight;
  };
  std::vector<ComponentTables> higher_components;

  /// True when any second-component attribute is present.
  bool has_lvf2() const { return !weight2.empty(); }

  /// Total number of mixture components encoded (1 for plain LVF).
  std::size_t component_count() const {
    return has_lvf2() ? 2 + higher_components.size() : 1;
  }

  /// Resolves the LVF^2 parameters at grid point (i, j), applying the
  /// Section 3.3 defaulting rules.
  core::Lvf2Parameters parameters_at(std::size_t i, std::size_t j) const;

  /// Resolved two-component mixture model at a grid point (higher
  /// components, if any, are folded proportionally into component 2's
  /// weight by `model_at`; use `model_k_at` for the exact K-mixture).
  core::Lvf2Model model_at(std::size_t i, std::size_t j) const;

  /// Resolved K-component mixture at a grid point, honoring every
  /// encoded component (Section 3.3 extension).
  core::LvfKModel model_k_at(std::size_t i, std::size_t j) const;

  /// Plain LVF moments at a grid point (first component of Eq. 10).
  stats::SnMoments lvf_moments_at(std::size_t i, std::size_t j) const;
};

/// Library serialization options.
struct WriteOptions {
  std::string library_name = "lvf2_bench_lib";
  bool include_lvf2 = true;  ///< false writes a plain LVF library
};

/// Builds the Liberty AST of a characterized library.
Group build_library(const cells::LibraryCharacterization& characterization,
                    const WriteOptions& options = {});

/// Extracts the statistical tables of one timing group. `base` is
/// the LUT base name: "cell_rise", "cell_fall", "rise_transition" or
/// "fall_transition". Returns nullopt when the base LUT is missing.
std::optional<StatisticalTables> extract_tables(const Group& timing_group,
                                                const std::string& base);

/// Finds the timing group of `related_pin` under `pin_group`
/// (nullptr when absent).
const Group* find_timing(const Group& pin_group,
                         const std::string& related_pin);

}  // namespace lvf2::liberty
