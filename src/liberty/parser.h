#pragma once
// Recursive-descent Liberty parser producing the Group AST.
//
// Grammar subset:
//   group     := IDENT '(' arg-list? ')' '{' statement* '}'
//   statement := group
//              | IDENT ':' value ';'            (simple attribute)
//              | IDENT '(' value-list? ')' ';'  (complex attribute)
//   value     := IDENT | STRING

#include <string_view>

#include "liberty/ast.h"
#include "liberty/diagnostics.h"

namespace lvf2::liberty {

/// Parses a Liberty source into its root group (usually
/// `library(...) { ... }`). Throws std::runtime_error with a line
/// number on syntax errors.
Group parse(std::string_view source);

/// Reads and parses a .lib file from disk.
Group parse_file(const std::string& path);

/// Result of a lenient parse: whatever AST could be salvaged plus one
/// diagnostic per defect that was recovered from.
struct ParseResult {
  Group root;
  std::vector<ParseDiagnostic> diagnostics;

  /// True when the source parsed without a single repair.
  bool clean() const { return diagnostics.empty(); }
};

/// Lenient parse: never throws on malformed source. Defective
/// statements are skipped and parsing resynchronizes at the next
/// `;` or group boundary; every repair is recorded in
/// `diagnostics` and counted under robust.liberty.recovered.
ParseResult parse_lenient(std::string_view source);

/// Reads and leniently parses a .lib file from disk. Still throws
/// std::runtime_error when the file cannot be opened (there is
/// nothing to salvage).
ParseResult parse_file_lenient(const std::string& path);

}  // namespace lvf2::liberty
