#pragma once
// Recursive-descent Liberty parser producing the Group AST.
//
// Grammar subset:
//   group     := IDENT '(' arg-list? ')' '{' statement* '}'
//   statement := group
//              | IDENT ':' value ';'            (simple attribute)
//              | IDENT '(' value-list? ')' ';'  (complex attribute)
//   value     := IDENT | STRING

#include <string_view>

#include "liberty/ast.h"

namespace lvf2::liberty {

/// Parses a Liberty source into its root group (usually
/// `library(...) { ... }`). Throws std::runtime_error with a line
/// number on syntax errors.
Group parse(std::string_view source);

/// Reads and parses a .lib file from disk.
Group parse_file(const std::string& path);

}  // namespace lvf2::liberty
