#include "liberty/ast.h"

namespace lvf2::liberty {

namespace {
const std::string kEmpty;
}

const std::string& Attribute::single() const {
  return values.empty() ? kEmpty : values.front();
}

const Attribute* Group::find_attribute(const std::string& attr_name) const {
  for (const Attribute& a : attributes) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

const Group* Group::find_child(const std::string& child_type) const {
  for (const Group& g : children) {
    if (g.type == child_type) return &g;
  }
  return nullptr;
}

const Group* Group::find_child(const std::string& child_type,
                               const std::string& first_arg) const {
  for (const Group& g : children) {
    if (g.type == child_type && g.name() == first_arg) return &g;
  }
  return nullptr;
}

std::vector<const Group*> Group::children_of_type(
    const std::string& child_type) const {
  std::vector<const Group*> out;
  for (const Group& g : children) {
    if (g.type == child_type) out.push_back(&g);
  }
  return out;
}

Group& Group::add_child(std::string child_type,
                        std::vector<std::string> args) {
  Group g;
  g.type = std::move(child_type);
  g.args = std::move(args);
  children.push_back(std::move(g));
  return children.back();
}

void Group::set_attribute(std::string attr_name, std::string value) {
  Attribute a;
  a.name = std::move(attr_name);
  a.values.push_back(std::move(value));
  a.is_complex = false;
  attributes.push_back(std::move(a));
}

void Group::set_complex_attribute(std::string attr_name,
                                  std::vector<std::string> values) {
  Attribute a;
  a.name = std::move(attr_name);
  a.values = std::move(values);
  a.is_complex = true;
  attributes.push_back(std::move(a));
}

}  // namespace lvf2::liberty
