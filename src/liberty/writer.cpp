#include "liberty/writer.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lvf2::liberty {

namespace {

bool needs_quotes(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '.' || c == '-' || c == '+') {
      continue;
    }
    return true;
  }
  return false;
}

std::string quoted(const std::string& value) {
  return needs_quotes(value) ? "\"" + value + "\"" : value;
}

void write_group(std::ostringstream& out, const Group& group, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  out << pad << group.type << " (";
  for (std::size_t i = 0; i < group.args.size(); ++i) {
    if (i > 0) out << ", ";
    out << quoted(group.args[i]);
  }
  out << ") {\n";
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  for (const Attribute& attr : group.attributes) {
    if (attr.is_complex) {
      out << inner << attr.name << " (";
      for (std::size_t i = 0; i < attr.values.size(); ++i) {
        if (i > 0) out << ", \\\n" << inner << "  ";
        out << quoted(attr.values[i]);
      }
      out << ");\n";
    } else {
      out << inner << attr.name << " : " << quoted(attr.single()) << ";\n";
    }
  }
  for (const Group& child : group.children) {
    write_group(out, child, depth + 1);
  }
  out << pad << "}\n";
}

}  // namespace

std::string write(const Group& group) {
  std::ostringstream out;
  write_group(out, group, 0);
  return out.str();
}

void write_file(const Group& group, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("liberty: cannot write file: " + path);
  }
  out << write(group);
  if (!out) {
    throw std::runtime_error("liberty: write failed: " + path);
  }
}

}  // namespace lvf2::liberty
