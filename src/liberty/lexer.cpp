#include "liberty/lexer.h"

#include <cctype>
#include <stdexcept>

namespace lvf2::liberty {

namespace {

bool is_identifier_char(char c) {
  // Liberty identifiers include numbers, units, dots, signs inside
  // scientific notation, and path-ish characters.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-' || c == '+' || c == '*' || c == '/' ||
         c == '[' || c == ']' || c == '!' || c == '=' || c == '<' ||
         c == '>';
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("liberty lexer (line " + std::to_string(line) +
                           "): " + message);
}

// Shared scanner. In strict mode (`diagnostics == nullptr`) malformed
// input throws; in lenient mode it is repaired and recorded.
std::vector<Token> tokenize_impl(std::string_view source,
                                 std::vector<ParseDiagnostic>* diagnostics) {
  const auto report = [&](std::size_t line, std::string message) {
    if (diagnostics == nullptr) fail(line, message);
    diagnostics->push_back(ParseDiagnostic{line, std::move(message)});
  };
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line continuation.
    if (c == '\\' && i + 1 < n &&
        (source[i + 1] == '\n' ||
         (source[i + 1] == '\r' && i + 2 < n && source[i + 2] == '\n'))) {
      i += (source[i + 1] == '\n') ? 2 : 3;
      ++line;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const std::size_t start_line = line;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        report(start_line, "unterminated block comment");
        i = n;  // lenient: the comment swallows the rest of the input
        continue;
      }
      i += 2;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    // Strings.
    if (c == '"') {
      const std::size_t start_line = line;
      std::string text;
      ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\n') ++line;
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          // Continued string: skip the escape and newline.
          i += 2;
          ++line;
          continue;
        }
        text.push_back(source[i]);
        ++i;
      }
      if (i >= n) {
        report(start_line, "unterminated string");
        // lenient: close the string at end of input and keep it.
      } else {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kString, std::move(text), start_line});
      continue;
    }
    // Punctuation.
    const auto push = [&](TokenKind kind) {
      tokens.push_back(Token{kind, std::string(1, c), line});
      ++i;
    };
    switch (c) {
      case '{': push(TokenKind::kLBrace); continue;
      case '}': push(TokenKind::kRBrace); continue;
      case '(': push(TokenKind::kLParen); continue;
      case ')': push(TokenKind::kRParen); continue;
      case ':': push(TokenKind::kColon); continue;
      case ';': push(TokenKind::kSemicolon); continue;
      case ',': push(TokenKind::kComma); continue;
      default: break;
    }
    // Identifiers / numbers.
    if (is_identifier_char(c)) {
      std::size_t j = i;
      while (j < n && is_identifier_char(source[j])) ++j;
      tokens.push_back(Token{TokenKind::kIdentifier,
                             std::string(source.substr(i, j - i)), line});
      i = j;
      continue;
    }
    report(line, std::string("unexpected character '") + c + "'");
    ++i;  // lenient: skip the stray byte
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line});
  return tokens;
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return tokenize_impl(source, nullptr);
}

std::vector<Token> tokenize_lenient(
    std::string_view source, std::vector<ParseDiagnostic>& diagnostics) {
  return tokenize_impl(source, &diagnostics);
}

}  // namespace lvf2::liberty
