#pragma once
// Liberty serializer: renders a Group AST back to .lib text with
// standard two-space indentation. Values that are not plain Liberty
// identifiers are quoted automatically, so parse(write(g)) == g.

#include <string>

#include "liberty/ast.h"

namespace lvf2::liberty {

/// Serializes a group (and its subtree) to Liberty text.
std::string write(const Group& group);

/// Writes a group tree to a .lib file; throws on I/O failure.
void write_file(const Group& group, const std::string& path);

}  // namespace lvf2::liberty
