#pragma once
// Parse diagnostics for the lenient Liberty reading mode: instead of
// aborting on the first malformed construct, the lenient lexer and
// parser record what was wrong (with the 1-based source line) and
// resynchronize at the next statement or group boundary.

#include <cstddef>
#include <string>
#include <vector>

namespace lvf2::liberty {

/// One recovered-from defect in a Liberty source.
struct ParseDiagnostic {
  std::size_t line = 0;  ///< 1-based source line of the defect
  std::string message;
};

/// "line N: message" — for logs and test failure output.
inline std::string to_string(const ParseDiagnostic& diag) {
  return "line " + std::to_string(diag.line) + ": " + diag.message;
}

}  // namespace lvf2::liberty
