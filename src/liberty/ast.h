#pragma once
// Liberty-format abstract syntax tree: nested groups with simple
// (`name : value;`) and complex (`name(v1, v2, ...);`) attributes —
// the subset needed for statistical timing libraries (LVF and LVF^2
// look-up tables).

#include <optional>
#include <string>
#include <vector>

namespace lvf2::liberty {

/// A simple or complex Liberty attribute.
struct Attribute {
  std::string name;
  std::vector<std::string> values;  ///< one entry for simple attributes
  bool is_complex = false;          ///< `name(...)` vs `name : v`

  /// The single value of a simple attribute ("" when empty).
  const std::string& single() const;
};

/// A Liberty group: `type(arg, ...) { attributes... children... }`.
struct Group {
  std::string type;
  std::vector<std::string> args;
  std::vector<Attribute> attributes;
  std::vector<Group> children;

  /// First argument or "" (most groups have one name argument).
  std::string name() const { return args.empty() ? "" : args.front(); }

  /// First attribute with the given name, or nullptr.
  const Attribute* find_attribute(const std::string& attr_name) const;

  /// First child group of the given type (optionally with the given
  /// first argument), or nullptr.
  const Group* find_child(const std::string& child_type) const;
  const Group* find_child(const std::string& child_type,
                          const std::string& first_arg) const;

  /// All child groups of the given type.
  std::vector<const Group*> children_of_type(
      const std::string& child_type) const;

  /// Adds and returns a new child group.
  Group& add_child(std::string child_type, std::vector<std::string> args = {});

  /// Adds a simple attribute.
  void set_attribute(std::string attr_name, std::string value);

  /// Adds a complex attribute.
  void set_complex_attribute(std::string attr_name,
                             std::vector<std::string> values);
};

}  // namespace lvf2::liberty
