#include "liberty/lvf_tables.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/log.h"
#include "obs/metrics.h"

namespace lvf2::liberty {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.7g", v);
  return buf;
}

std::string join_csv(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += format_double(values[i]);
  }
  return out;
}

// Parses a comma-separated number list. Unparsable or non-finite
// entries are skipped (counted under robust.liberty.bad_number and
// logged) instead of aborting the whole table read: the caller's
// rectangularity check then decides whether the table is still
// usable.
std::vector<double> parse_csv(const std::string& text) {
  std::vector<double> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    bool ok = false;
    double value = 0.0;
    try {
      std::size_t consumed = 0;
      value = std::stod(item, &consumed);
      // Reject trailing junk after the number ("1.2x3"); units and
      // whitespace are not stored in these tables.
      while (consumed < item.size() &&
             std::isspace(static_cast<unsigned char>(item[consumed]))) {
        ++consumed;
      }
      ok = consumed == item.size() && std::isfinite(value);
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      out.push_back(value);
    } else {
      obs::counter("robust.liberty.bad_number").add(1);
      obs::log_warn("liberty.bad_number", {{"entry", item}});
    }
  }
  return out;
}

constexpr const char* kTemplateName = "lvf2_lut_8x8";

// Writes one LUT group (e.g. cell_rise / ocv_std_dev_cell_rise).
void write_table(Group& timing, const std::string& name,
                 const std::vector<double>& slews,
                 const std::vector<double>& loads,
                 const std::vector<std::vector<double>>& values) {
  Group& lut = timing.add_child(name, {kTemplateName});
  lut.set_complex_attribute("index_1", {join_csv(slews)});
  lut.set_complex_attribute("index_2", {join_csv(loads)});
  std::vector<std::string> rows;
  rows.reserve(values.size());
  for (const std::vector<double>& row : values) {
    rows.push_back(join_csv(row));
  }
  lut.set_complex_attribute("values", std::move(rows));
}

// Extracts one LUT group into a TimingTable; empty result if absent.
// A structurally broken table (ragged rows, row/index size mismatch —
// e.g. after bad numbers were dropped) degrades to the empty table,
// which downstream consumers treat as "attribute absent" and cover
// with the Section 3.3 defaulting rules.
TimingTable read_table(const Group& timing, const std::string& name) {
  TimingTable table;
  const Group* lut = timing.find_child(name);
  if (lut == nullptr) return table;
  if (const Attribute* a = lut->find_attribute("index_1")) {
    table.index_1 = parse_csv(a->single());
  }
  if (const Attribute* a = lut->find_attribute("index_2")) {
    table.index_2 = parse_csv(a->single());
  }
  if (const Attribute* a = lut->find_attribute("values")) {
    for (const std::string& row : a->values) {
      table.values.push_back(parse_csv(row));
    }
  }
  bool rectangular = !table.values.empty();
  for (const std::vector<double>& row : table.values) {
    if (row.size() != table.values.front().size() || row.empty()) {
      rectangular = false;
      break;
    }
  }
  if (rectangular && !table.index_1.empty() &&
      (table.values.size() != table.index_1.size() ||
       (!table.index_2.empty() &&
        table.values.front().size() != table.index_2.size()))) {
    rectangular = false;
  }
  if (!rectangular && !table.values.empty()) {
    obs::counter("robust.liberty.malformed_table").add(1);
    obs::log_warn("liberty.malformed_table", {{"table", name}});
    table = TimingTable{};
  }
  return table;
}

// Accessor helpers for a per-quantity characterized value.
struct QuantityAccess {
  double (*nominal)(const cells::ConditionCharacterization&);
  stats::SnMoments (*lvf)(const cells::ConditionCharacterization&);
  core::Lvf2Parameters (*lvf2)(const cells::ConditionCharacterization&);
};

void write_quantity(Group& timing, const std::string& base,
                    const cells::ArcCharacterization& arc,
                    const QuantityAccess& access, bool include_lvf2) {
  const std::size_t rows = arc.grid.cols();  // index_1 = slew
  const std::size_t cols = arc.grid.rows();  // index_2 = load
  const auto make = [&](auto&& per_entry) {
    std::vector<std::vector<double>> values(rows,
                                            std::vector<double>(cols));
    for (std::size_t si = 0; si < rows; ++si) {
      for (std::size_t li = 0; li < cols; ++li) {
        values[si][li] = per_entry(arc.at(li, si));
      }
    }
    return values;
  };
  const auto& slews = arc.grid.slews_ns;
  const auto& loads = arc.grid.loads_pf;

  write_table(timing, base, slews, loads,
              make([&](const auto& e) { return access.nominal(e); }));
  // LVF attributes.
  write_table(timing, "ocv_mean_shift_" + base, slews, loads,
              make([&](const auto& e) {
                return access.lvf(e).mean - access.nominal(e);
              }));
  write_table(timing, "ocv_std_dev_" + base, slews, loads,
              make([&](const auto& e) { return access.lvf(e).stddev; }));
  write_table(timing, "ocv_skewness_" + base, slews, loads,
              make([&](const auto& e) { return access.lvf(e).skewness; }));
  if (!include_lvf2) return;
  // LVF^2 attributes (paper Section 3.3).
  write_table(timing, "ocv_mean_shift1_" + base, slews, loads,
              make([&](const auto& e) {
                return access.lvf2(e).theta1.mean - access.nominal(e);
              }));
  write_table(timing, "ocv_std_dev1_" + base, slews, loads,
              make([&](const auto& e) { return access.lvf2(e).theta1.stddev; }));
  write_table(timing, "ocv_skewness1_" + base, slews, loads,
              make([&](const auto& e) {
                return access.lvf2(e).theta1.skewness;
              }));
  write_table(timing, "ocv_weight2_" + base, slews, loads,
              make([&](const auto& e) { return access.lvf2(e).lambda; }));
  write_table(timing, "ocv_mean_shift2_" + base, slews, loads,
              make([&](const auto& e) {
                return access.lvf2(e).theta2.mean - access.nominal(e);
              }));
  write_table(timing, "ocv_std_dev2_" + base, slews, loads,
              make([&](const auto& e) { return access.lvf2(e).theta2.stddev; }));
  write_table(timing, "ocv_skewness2_" + base, slews, loads,
              make([&](const auto& e) {
                return access.lvf2(e).theta2.skewness;
              }));
}

}  // namespace

double TimingTable::lookup(double slew_ns, double load_pf) const {
  if (empty() || index_1.empty() || index_2.empty()) {
    return std::nan("");
  }
  const auto bracket = [](const std::vector<double>& idx, double x,
                          std::size_t& lo, double& t) {
    if (idx.size() == 1 || x <= idx.front()) {
      lo = 0;
      t = 0.0;
      return;
    }
    if (x >= idx.back()) {
      lo = idx.size() - 2;
      t = 1.0;
      return;
    }
    const auto it = std::upper_bound(idx.begin(), idx.end(), x);
    lo = static_cast<std::size_t>(it - idx.begin()) - 1;
    t = (x - idx[lo]) / (idx[lo + 1] - idx[lo]);
  };
  std::size_t i = 0, j = 0;
  double ti = 0.0, tj = 0.0;
  bracket(index_1, slew_ns, i, ti);
  bracket(index_2, load_pf, j, tj);
  const std::size_t i1 = std::min(i + 1, index_1.size() - 1);
  const std::size_t j1 = std::min(j + 1, index_2.size() - 1);
  const double v00 = values[i][j], v01 = values[i][j1];
  const double v10 = values[i1][j], v11 = values[i1][j1];
  return (1 - ti) * ((1 - tj) * v00 + tj * v01) +
         ti * ((1 - tj) * v10 + tj * v11);
}

core::Lvf2Parameters StatisticalTables::parameters_at(std::size_t i,
                                                      std::size_t j) const {
  const double nom = nominal.at(i, j);
  core::Lvf2Parameters p;
  // First component: component-1 tables when present, else the LVF
  // tables (the Section 3.3 inheritance defaults).
  const TimingTable& ms1 = mean_shift1.empty() ? mean_shift : mean_shift1;
  const TimingTable& sd1 = std_dev1.empty() ? std_dev : std_dev1;
  const TimingTable& sk1 = skewness1.empty() ? skewness : skewness1;
  p.theta1.mean = nom + (ms1.empty() ? 0.0 : ms1.at(i, j));
  p.theta1.stddev = sd1.empty() ? 1e-12 : std::max(sd1.at(i, j), 1e-12);
  p.theta1.skewness = sk1.empty() ? 0.0 : sk1.at(i, j);
  // Weight of the second component defaults to zero (pure LVF).
  p.lambda = weight2.empty() ? 0.0 : std::clamp(weight2.at(i, j), 0.0, 1.0);
  if (p.lambda > 0.0 && !mean_shift2.empty() && !std_dev2.empty()) {
    p.theta2.mean = nom + mean_shift2.at(i, j);
    p.theta2.stddev = std::max(std_dev2.at(i, j), 1e-12);
    p.theta2.skewness = skewness2.empty() ? 0.0 : skewness2.at(i, j);
  } else {
    p.lambda = 0.0;
    p.theta2 = p.theta1;
  }
  return p;
}

core::Lvf2Model StatisticalTables::model_at(std::size_t i,
                                            std::size_t j) const {
  return core::Lvf2Model::from_parameters(parameters_at(i, j));
}

core::LvfKModel StatisticalTables::model_k_at(std::size_t i,
                                              std::size_t j) const {
  const core::Lvf2Parameters base = parameters_at(i, j);
  std::vector<core::LvfKModel::Component> components;
  components.push_back(
      {1.0 - base.lambda, stats::SkewNormal::from_moments(base.theta1)});
  if (base.lambda > 0.0) {
    components.push_back(
        {base.lambda, stats::SkewNormal::from_moments(base.theta2)});
  }
  const double nom = nominal.at(i, j);
  for (const ComponentTables& extra : higher_components) {
    if (extra.weight.empty() || extra.mean_shift.empty() ||
        extra.std_dev.empty()) {
      continue;
    }
    const double w = std::clamp(extra.weight.at(i, j), 0.0, 1.0);
    if (w <= 0.0) continue;
    // Scale the existing components down so the total stays 1.
    for (auto& c : components) c.weight *= (1.0 - w);
    components.push_back(
        {w, stats::SkewNormal::from_moments(
                nom + extra.mean_shift.at(i, j),
                std::max(extra.std_dev.at(i, j), 1e-12),
                extra.skewness.empty() ? 0.0 : extra.skewness.at(i, j))});
  }
  return core::LvfKModel(std::move(components));
}

stats::SnMoments StatisticalTables::lvf_moments_at(std::size_t i,
                                                   std::size_t j) const {
  const double nom = nominal.at(i, j);
  stats::SnMoments m;
  m.mean = nom + (mean_shift.empty() ? 0.0 : mean_shift.at(i, j));
  m.stddev = std_dev.empty() ? 1e-12 : std::max(std_dev.at(i, j), 1e-12);
  m.skewness = skewness.empty() ? 0.0 : skewness.at(i, j);
  return m;
}

Group build_library(const cells::LibraryCharacterization& characterization,
                    const WriteOptions& options) {
  Group library;
  library.type = "library";
  library.args = {options.library_name};
  library.set_attribute("delay_model", "table_lookup");
  library.set_attribute("time_unit", "1ns");
  library.set_attribute("voltage_unit", "1V");
  library.set_complex_attribute("capacitive_load_unit", {"1", "pf"});
  library.set_attribute("nom_voltage", "0.8");
  library.set_attribute("nom_temperature", "25");

  if (!characterization.cells.empty() &&
      !characterization.cells.front().arcs.empty()) {
    const auto& grid = characterization.cells.front().arcs.front().grid;
    Group& tmpl = library.add_child("lu_table_template", {kTemplateName});
    tmpl.set_attribute("variable_1", "input_net_transition");
    tmpl.set_attribute("variable_2", "total_output_net_capacitance");
    tmpl.set_complex_attribute("index_1", {join_csv(grid.slews_ns)});
    tmpl.set_complex_attribute("index_2", {join_csv(grid.loads_pf)});
  }

  for (const cells::CellCharacterization& cell : characterization.cells) {
    Group& cell_group = library.add_child("cell", {cell.cell_name});
    // Group arcs by output pin.
    std::vector<std::string> output_pins;
    for (const cells::ArcCharacterization& arc : cell.arcs) {
      // arc_label format: "IN->OUT (rise|fall)".
      const std::size_t arrow = arc.arc_label.find("->");
      const std::size_t space = arc.arc_label.find(' ');
      const std::string out_pin =
          arc.arc_label.substr(arrow + 2, space - arrow - 2);
      if (std::find(output_pins.begin(), output_pins.end(), out_pin) ==
          output_pins.end()) {
        output_pins.push_back(out_pin);
      }
    }
    for (const std::string& out_pin : output_pins) {
      Group& pin_group = cell_group.add_child("pin", {out_pin});
      pin_group.set_attribute("direction", "output");
      // One timing group per (input pin); rise and fall arcs of the
      // same related pin share the group, as in real libraries.
      std::vector<std::string> related_done;
      for (const cells::ArcCharacterization& arc : cell.arcs) {
        const std::size_t arrow = arc.arc_label.find("->");
        const std::size_t space = arc.arc_label.find(' ');
        const std::string in_pin = arc.arc_label.substr(0, arrow);
        const std::string this_out =
            arc.arc_label.substr(arrow + 2, space - arrow - 2);
        if (this_out != out_pin) continue;
        Group* timing = nullptr;
        if (std::find(related_done.begin(), related_done.end(), in_pin) ==
            related_done.end()) {
          timing = &pin_group.add_child("timing");
          timing->set_attribute("related_pin", in_pin);
          related_done.push_back(in_pin);
        } else {
          // Find the existing timing group for this related pin.
          for (Group& g : pin_group.children) {
            const Attribute* rp = g.find_attribute("related_pin");
            if (g.type == "timing" && rp != nullptr &&
                rp->single() == in_pin) {
              timing = &g;
              break;
            }
          }
        }
        if (timing == nullptr) continue;
        const bool rise = arc.arc_label.find("(rise)") != std::string::npos;
        const std::string delay_base = rise ? "cell_rise" : "cell_fall";
        const std::string tran_base =
            rise ? "rise_transition" : "fall_transition";
        const QuantityAccess delay_access{
            [](const cells::ConditionCharacterization& e) {
              return e.nominal_delay_ns;
            },
            [](const cells::ConditionCharacterization& e) {
              return e.lvf_delay;
            },
            [](const cells::ConditionCharacterization& e) {
              return e.lvf2_delay;
            }};
        const QuantityAccess tran_access{
            [](const cells::ConditionCharacterization& e) {
              return e.nominal_transition_ns;
            },
            [](const cells::ConditionCharacterization& e) {
              return e.lvf_transition;
            },
            [](const cells::ConditionCharacterization& e) {
              return e.lvf2_transition;
            }};
        write_quantity(*timing, delay_base, arc, delay_access,
                       options.include_lvf2);
        write_quantity(*timing, tran_base, arc, tran_access,
                       options.include_lvf2);
      }
    }
  }
  return library;
}

std::optional<StatisticalTables> extract_tables(const Group& timing_group,
                                                const std::string& base) {
  StatisticalTables tables;
  tables.nominal = read_table(timing_group, base);
  if (tables.nominal.empty()) return std::nullopt;
  tables.mean_shift = read_table(timing_group, "ocv_mean_shift_" + base);
  tables.std_dev = read_table(timing_group, "ocv_std_dev_" + base);
  tables.skewness = read_table(timing_group, "ocv_skewness_" + base);
  tables.mean_shift1 = read_table(timing_group, "ocv_mean_shift1_" + base);
  tables.std_dev1 = read_table(timing_group, "ocv_std_dev1_" + base);
  tables.skewness1 = read_table(timing_group, "ocv_skewness1_" + base);
  tables.weight2 = read_table(timing_group, "ocv_weight2_" + base);
  tables.mean_shift2 = read_table(timing_group, "ocv_mean_shift2_" + base);
  tables.std_dev2 = read_table(timing_group, "ocv_std_dev2_" + base);
  tables.skewness2 = read_table(timing_group, "ocv_skewness2_" + base);
  // The Section 3.3 extension: scan components 3, 4, ... while their
  // weight table is present.
  for (int n = 3;; ++n) {
    const std::string suffix = std::to_string(n) + "_" + base;
    StatisticalTables::ComponentTables extra;
    extra.weight = read_table(timing_group, "ocv_weight" + suffix);
    if (extra.weight.empty()) break;
    extra.mean_shift = read_table(timing_group, "ocv_mean_shift" + suffix);
    extra.std_dev = read_table(timing_group, "ocv_std_dev" + suffix);
    extra.skewness = read_table(timing_group, "ocv_skewness" + suffix);
    tables.higher_components.push_back(std::move(extra));
  }
  return tables;
}

const Group* find_timing(const Group& pin_group,
                         const std::string& related_pin) {
  for (const Group& g : pin_group.children) {
    if (g.type != "timing") continue;
    const Attribute* rp = g.find_attribute("related_pin");
    if (rp != nullptr && rp->single() == related_pin) return &g;
  }
  return nullptr;
}

}  // namespace lvf2::liberty
