#pragma once
// Liberty tokenizer. Handles identifiers/numbers, quoted strings,
// punctuation, line continuations (backslash-newline) and both
// comment styles.

#include <string>
#include <string_view>
#include <vector>

#include "liberty/diagnostics.h"

namespace lvf2::liberty {

enum class TokenKind {
  kIdentifier,  ///< bare words, numbers, units (1.2e-3, 0.5ns)
  kString,      ///< "quoted" (quotes stripped)
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kColon,
  kSemicolon,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t line = 0;  ///< 1-based source line (diagnostics)
};

/// Tokenizes Liberty source. Throws std::runtime_error with a line
/// number on malformed input (unterminated string / comment, stray
/// characters).
std::vector<Token> tokenize(std::string_view source);

/// Lenient tokenizer: never throws. Malformed constructs are repaired
/// (unterminated strings and comments close at end of input, stray
/// characters are skipped) and each repair is recorded in
/// `diagnostics`.
std::vector<Token> tokenize_lenient(std::string_view source,
                                    std::vector<ParseDiagnostic>& diagnostics);

}  // namespace lvf2::liberty
