#include "liberty/parser.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "liberty/lexer.h"
#include "obs/metrics.h"
#include "robust/faults.h"

namespace lvf2::liberty {

namespace {

class Parser {
 public:
  /// Strict mode: any syntax error throws std::runtime_error.
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Lenient mode: syntax errors are recorded in `diagnostics` and
  /// parsing resynchronizes at the next statement / group boundary.
  Parser(std::vector<Token> tokens, std::vector<ParseDiagnostic>* diagnostics)
      : tokens_(std::move(tokens)), diagnostics_(diagnostics) {}

  Group parse_root() {
    if (diagnostics_ == nullptr) {
      Group root = parse_group();
      expect(TokenKind::kEnd, "end of input");
      return root;
    }
    // Lenient: salvage a root group, then fold any trailing content
    // back into it (a stray '}' mid-file would otherwise discard the
    // rest of the library).
    Group root;
    bool have_root = false;
    bool trailing_diagnosed = false;
    while (peek().kind != TokenKind::kEnd) {
      try {
        if (!have_root) {
          root = parse_group();
          have_root = true;
          continue;
        }
        if (!trailing_diagnosed) {
          diagnose("content after the root group; folding into it");
          trailing_diagnosed = true;
        }
        if (peek().kind == TokenKind::kRBrace) {
          advance();  // stray closer with no open group
          continue;
        }
        parse_statement(root);
      } catch (const Recovery&) {
        synchronize();
        // synchronize stops *before* a '}' (the enclosing group's
        // recovery point); at the top level there is no enclosing
        // group, so consume it to guarantee progress.
        if (peek().kind == TokenKind::kRBrace) advance();
      }
    }
    if (!have_root) diagnose("no parsable root group");
    return root;
  }

 private:
  // Thrown in lenient mode to unwind to the nearest recovery point;
  // never escapes parse_root.
  struct Recovery {};

  const Token& peek() const { return tokens_[pos_]; }

  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (t.kind != TokenKind::kEnd) ++pos_;  // never step past the end
    return t;
  }

  void diagnose(std::string message) const {
    diagnostics_->push_back(ParseDiagnostic{peek().line, std::move(message)});
  }

  [[noreturn]] void fail(const std::string& message) const {
    if (diagnostics_ != nullptr) {
      diagnose(message);
      throw Recovery{};
    }
    throw std::runtime_error("liberty parser (line " +
                             std::to_string(peek().line) + "): " + message);
  }

  const Token& expect(TokenKind kind, const std::string& what) {
    if (peek().kind != kind) fail("expected " + what);
    return advance();
  }

  // Lenient recovery: skip ahead until a statement boundary — just
  // past a ';', or in front of a '}' / end of input. A '{' opens a
  // block whose whole balanced body is skipped, so one bad group
  // header drops exactly that group.
  void synchronize() {
    while (true) {
      switch (peek().kind) {
        case TokenKind::kEnd:
        case TokenKind::kRBrace:
          return;
        case TokenKind::kSemicolon:
          advance();
          return;
        case TokenKind::kLBrace: {
          std::size_t depth = 0;
          do {
            const TokenKind kind = peek().kind;
            if (kind == TokenKind::kEnd) return;
            if (kind == TokenKind::kLBrace) ++depth;
            if (kind == TokenKind::kRBrace) --depth;
            advance();
          } while (depth > 0);
          return;
        }
        default:
          advance();
          break;
      }
    }
  }

  // value := IDENT | STRING
  std::string parse_value() {
    if (peek().kind != TokenKind::kIdentifier &&
        peek().kind != TokenKind::kString) {
      fail("expected a value");
    }
    return advance().text;
  }

  Group parse_group() {
    Group group;
    group.type = expect(TokenKind::kIdentifier, "group type").text;
    expect(TokenKind::kLParen, "'('");
    while (peek().kind != TokenKind::kRParen) {
      group.args.push_back(parse_value());
      if (peek().kind == TokenKind::kComma) advance();
    }
    advance();  // ')'
    expect(TokenKind::kLBrace, "'{'");
    parse_group_body(group);
    return group;
  }

  // statement* up to the matching '}' (which is consumed). In lenient
  // mode each statement is its own recovery scope, and a missing '}'
  // at end of input is diagnosed instead of looping or throwing.
  void parse_group_body(Group& group) {
    while (peek().kind != TokenKind::kRBrace) {
      if (peek().kind == TokenKind::kEnd) {
        if (diagnostics_ == nullptr) {
          fail("unexpected end of input inside group '" + group.type + "'");
        }
        diagnose("unterminated group '" + group.type + "'");
        return;
      }
      if (diagnostics_ == nullptr) {
        parse_statement(group);
        continue;
      }
      try {
        parse_statement(group);
      } catch (const Recovery&) {
        synchronize();
      }
    }
    advance();  // '}'
  }

  void parse_statement(Group& parent) {
    const Token& name = expect(TokenKind::kIdentifier, "statement name");
    if (peek().kind == TokenKind::kColon) {
      advance();
      Attribute attr;
      attr.name = name.text;
      attr.values.push_back(parse_value());
      attr.is_complex = false;
      expect(TokenKind::kSemicolon, "';'");
      parent.attributes.push_back(std::move(attr));
      return;
    }
    if (peek().kind != TokenKind::kLParen) {
      fail("expected ':' or '(' after '" + name.text + "'");
    }
    advance();  // '('
    std::vector<std::string> values;
    while (peek().kind != TokenKind::kRParen) {
      values.push_back(parse_value());
      if (peek().kind == TokenKind::kComma) advance();
    }
    advance();  // ')'
    if (peek().kind == TokenKind::kLBrace) {
      // It is a nested group.
      Group child;
      child.type = name.text;
      child.args = std::move(values);
      advance();  // '{'
      parse_group_body(child);
      parent.children.push_back(std::move(child));
      return;
    }
    // Complex attribute.
    Attribute attr;
    attr.name = name.text;
    attr.values = std::move(values);
    attr.is_complex = true;
    if (peek().kind == TokenKind::kSemicolon) advance();
    parent.attributes.push_back(std::move(attr));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<ParseDiagnostic>* diagnostics_ = nullptr;
};

// Fault hook: returns the (possibly corrupted) source to parse. Only
// copies the input when fault injection is enabled.
std::string maybe_corrupt(std::string_view source) {
  std::string mutated(source);
  robust::corrupt_liberty_text(mutated);
  return mutated;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("liberty: cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Group parse(std::string_view source) {
  if (robust::faults_enabled()) {
    return Parser(tokenize(maybe_corrupt(source))).parse_root();
  }
  return Parser(tokenize(source)).parse_root();
}

Group parse_file(const std::string& path) {
  return parse(read_file(path));
}

ParseResult parse_lenient(std::string_view source) {
  ParseResult result;
  std::vector<Token> tokens;
  if (robust::faults_enabled()) {
    tokens = tokenize_lenient(maybe_corrupt(source), result.diagnostics);
  } else {
    tokens = tokenize_lenient(source, result.diagnostics);
  }
  result.root =
      Parser(std::move(tokens), &result.diagnostics).parse_root();
  if (!result.diagnostics.empty()) {
    obs::counter("robust.liberty.recovered").add(result.diagnostics.size());
  }
  return result;
}

ParseResult parse_file_lenient(const std::string& path) {
  return parse_lenient(read_file(path));
}

}  // namespace lvf2::liberty
