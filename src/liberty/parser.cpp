#include "liberty/parser.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "liberty/lexer.h"

namespace lvf2::liberty {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Group parse_root() {
    Group root = parse_group();
    expect(TokenKind::kEnd, "end of input");
    return root;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("liberty parser (line " +
                             std::to_string(peek().line) + "): " + message);
  }

  const Token& expect(TokenKind kind, const std::string& what) {
    if (peek().kind != kind) fail("expected " + what);
    return advance();
  }

  // value := IDENT | STRING
  std::string parse_value() {
    if (peek().kind != TokenKind::kIdentifier &&
        peek().kind != TokenKind::kString) {
      fail("expected a value");
    }
    return advance().text;
  }

  Group parse_group() {
    Group group;
    group.type = expect(TokenKind::kIdentifier, "group type").text;
    expect(TokenKind::kLParen, "'('");
    while (peek().kind != TokenKind::kRParen) {
      group.args.push_back(parse_value());
      if (peek().kind == TokenKind::kComma) advance();
    }
    advance();  // ')'
    expect(TokenKind::kLBrace, "'{'");
    while (peek().kind != TokenKind::kRBrace) {
      parse_statement(group);
    }
    advance();  // '}'
    return group;
  }

  void parse_statement(Group& parent) {
    const Token& name = expect(TokenKind::kIdentifier, "statement name");
    if (peek().kind == TokenKind::kColon) {
      advance();
      Attribute attr;
      attr.name = name.text;
      attr.values.push_back(parse_value());
      attr.is_complex = false;
      expect(TokenKind::kSemicolon, "';'");
      parent.attributes.push_back(std::move(attr));
      return;
    }
    if (peek().kind != TokenKind::kLParen) {
      fail("expected ':' or '(' after '" + name.text + "'");
    }
    advance();  // '('
    std::vector<std::string> values;
    while (peek().kind != TokenKind::kRParen) {
      values.push_back(parse_value());
      if (peek().kind == TokenKind::kComma) advance();
    }
    advance();  // ')'
    if (peek().kind == TokenKind::kLBrace) {
      // It is a nested group.
      Group child;
      child.type = name.text;
      child.args = std::move(values);
      advance();  // '{'
      while (peek().kind != TokenKind::kRBrace) {
        parse_statement(child);
      }
      advance();  // '}'
      parent.children.push_back(std::move(child));
      return;
    }
    // Complex attribute.
    Attribute attr;
    attr.name = name.text;
    attr.values = std::move(values);
    attr.is_complex = true;
    if (peek().kind == TokenKind::kSemicolon) advance();
    parent.attributes.push_back(std::move(attr));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Group parse(std::string_view source) {
  return Parser(tokenize(source)).parse_root();
}

Group parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("liberty: cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace lvf2::liberty
