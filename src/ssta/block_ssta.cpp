#include "ssta/block_ssta.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lvf2::ssta {

stats::GridPdf ssta_sum(const stats::GridPdf& x, const stats::GridPdf& y,
                        const SstaOptions& options) {
  obs::TraceSpan span("ssta.sum", [&] {
    return obs::ArgsBuilder()
        .add("x_points", x.size())
        .add("y_points", y.size())
        .str();
  });
  static obs::Counter& sums = obs::counter("ssta.sum.count");
  sums.add(1);
  return stats::GridPdf::convolve(x, y, options.max_conv_points);
}

stats::GridPdf ssta_max(const stats::GridPdf& x, const stats::GridPdf& y,
                        const SstaOptions& options) {
  obs::TraceSpan span("ssta.max", [&] {
    return obs::ArgsBuilder()
        .add("x_points", x.size())
        .add("y_points", y.size())
        .str();
  });
  static obs::Counter& maxes = obs::counter("ssta.max.count");
  maxes.add(1);
  return stats::GridPdf::statistical_max(x, y, options.grid_points);
}

std::vector<stats::GridPdf> propagate_chain(
    std::span<const stats::GridPdf> stage_pdfs,
    std::span<const double> wire_delays, const SstaOptions& options) {
  if (!wire_delays.empty() && wire_delays.size() != stage_pdfs.size()) {
    throw std::invalid_argument("propagate_chain: wire delay size mismatch");
  }
  obs::TraceSpan span("ssta.propagate_chain", [&] {
    return obs::ArgsBuilder().add("stages", stage_pdfs.size()).str();
  });
  std::vector<stats::GridPdf> cumulative;
  cumulative.reserve(stage_pdfs.size());
  for (std::size_t i = 0; i < stage_pdfs.size(); ++i) {
    stats::GridPdf stage = stage_pdfs[i];
    if (!wire_delays.empty() && wire_delays[i] != 0.0) {
      stage = stage.shifted(wire_delays[i]);
    }
    if (cumulative.empty()) {
      cumulative.push_back(std::move(stage));
    } else {
      cumulative.push_back(ssta_sum(cumulative.back(), stage, options));
    }
  }
  return cumulative;
}

}  // namespace lvf2::ssta
