#include "ssta/block_ssta.h"

#include <limits>
#include <stdexcept>

#include "core/cancel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/faults.h"

namespace lvf2::ssta {

namespace {

// Containment for a poisoned operand of a binary SSTA operator: the
// result is the other operand (identity element semantics), so one
// bad arc degrades one path instead of sinking the whole analysis.
bool contain_poisoned(const stats::GridPdf& x, const stats::GridPdf& y) {
  if (!pdf_poisoned(x) && !pdf_poisoned(y)) return false;
  obs::counter("robust.ssta.poisoned_operand").add(1);
  return true;
}

}  // namespace

stats::GridPdf ssta_sum(const stats::GridPdf& x, const stats::GridPdf& y,
                        const SstaOptions& options) {
  obs::TraceSpan span("ssta.sum", [&] {
    return obs::ArgsBuilder()
        .add("x_points", x.size())
        .add("y_points", y.size())
        .str();
  });
  static obs::Counter& sums = obs::counter("ssta.sum.count");
  sums.add(1);
  if (contain_poisoned(x, y)) return pdf_poisoned(x) ? y : x;
  return stats::GridPdf::convolve(x, y, options.max_conv_points);
}

stats::GridPdf ssta_max(const stats::GridPdf& x, const stats::GridPdf& y,
                        const SstaOptions& options) {
  obs::TraceSpan span("ssta.max", [&] {
    return obs::ArgsBuilder()
        .add("x_points", x.size())
        .add("y_points", y.size())
        .str();
  });
  static obs::Counter& maxes = obs::counter("ssta.max.count");
  maxes.add(1);
  if (contain_poisoned(x, y)) return pdf_poisoned(x) ? y : x;
  return stats::GridPdf::statistical_max(x, y, options.grid_points);
}

std::vector<stats::GridPdf> propagate_chain(
    std::span<const stats::GridPdf> stage_pdfs,
    std::span<const double> wire_delays, const SstaOptions& options) {
  if (!wire_delays.empty() && wire_delays.size() != stage_pdfs.size()) {
    throw std::invalid_argument("propagate_chain: wire delay size mismatch");
  }
  obs::TraceSpan span("ssta.propagate_chain", [&] {
    return obs::ArgsBuilder().add("stages", stage_pdfs.size()).str();
  });
  std::vector<stats::GridPdf> cumulative;
  cumulative.reserve(stage_pdfs.size());
  for (std::size_t i = 0; i < stage_pdfs.size(); ++i) {
    // Deadline checkpoint (lvf2d): at most one more stage convolution
    // runs after a request's budget expires.
    core::checkpoint();
    stats::GridPdf stage = stage_pdfs[i];
    if (robust::fire(robust::Fault::kSstaEmptyPdf)) {
      stage = stats::GridPdf();
    }
    if (pdf_poisoned(stage)) {
      // Containment: a dead stage contributes zero delay — carry the
      // previous cumulative forward instead of poisoning the rest of
      // the chain.
      obs::counter("robust.ssta.poisoned_stage").add(1);
      cumulative.push_back(cumulative.empty() ? stats::GridPdf()
                                              : cumulative.back());
      continue;
    }
    if (!wire_delays.empty()) {
      double wire = wire_delays[i];
      if (robust::fire(robust::Fault::kSstaNonfinite)) {
        wire = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(wire)) {
        obs::counter("robust.ssta.nonfinite_delay").add(1);
        wire = 0.0;
      }
      if (wire != 0.0) stage = stage.shifted(wire);
    }
    if (cumulative.empty() || pdf_poisoned(cumulative.back())) {
      cumulative.push_back(std::move(stage));
    } else {
      cumulative.push_back(ssta_sum(cumulative.back(), stage, options));
    }
  }
  return cumulative;
}

}  // namespace lvf2::ssta
