#pragma once
// Block-based SSTA operators (paper ref. [20], Devgan & Kashyap):
// arrival-time distributions are carried as discretized PDFs; edges
// add (convolution) and merge points take the statistical max of
// independent arrivals. Used both for generic timing graphs and for
// the per-stage critical-path propagation of paper Section 4.4.

#include <cmath>
#include <span>
#include <vector>

#include "stats/grid_pdf.h"

namespace lvf2::ssta {

/// Numeric resolution of the propagation.
struct SstaOptions {
  std::size_t grid_points = 2048;    ///< per-operand resample resolution
  std::size_t max_conv_points = 4096;  ///< result cap for convolutions
};

/// True when a PDF cannot participate in SUM/MAX: empty or with a
/// non-finite support. The SSTA operators contain such operands
/// (returning the other one) instead of propagating the poison.
inline bool pdf_poisoned(const stats::GridPdf& pdf) {
  return pdf.empty() || !std::isfinite(pdf.lo()) || !std::isfinite(pdf.hi());
}

/// SUM operator: distribution of X + Y for independent X, Y.
stats::GridPdf ssta_sum(const stats::GridPdf& x, const stats::GridPdf& y,
                        const SstaOptions& options = {});

/// MAX operator: distribution of max(X, Y) for independent X, Y.
stats::GridPdf ssta_max(const stats::GridPdf& x, const stats::GridPdf& y,
                        const SstaOptions& options = {});

/// Propagates a chain: returns the cumulative arrival distribution
/// after each stage. `stage_pdfs[i]` is stage i's delay distribution
/// and `wire_delays[i]` (same length, or empty) a deterministic add.
std::vector<stats::GridPdf> propagate_chain(
    std::span<const stats::GridPdf> stage_pdfs,
    std::span<const double> wire_delays = {},
    const SstaOptions& options = {});

}  // namespace lvf2::ssta
