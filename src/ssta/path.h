#pragma once
// Timing path representation consumed by both the block-based SSTA
// propagation and the golden path Monte-Carlo.

#include <string>
#include <vector>

#include "cells/cell_types.h"
#include "spice/cellsim.h"

namespace lvf2::ssta {

/// One stage of a critical path: a cell arc at a resolved condition,
/// plus the deterministic wire (Elmore) delay that follows it.
struct PathStage {
  std::string instance_name;
  cells::Cell cell;      ///< owned copy; paths outlive builders
  std::size_t arc_index = 0;
  spice::ArcCondition condition;
  double wire_delay_ns = 0.0;

  const cells::TimingArc& arc() const { return cell.arcs.at(arc_index); }
};

/// An ordered chain of stages (a circuit critical path).
struct TimingPath {
  std::string name;
  std::vector<PathStage> stages;

  std::size_t depth() const { return stages.size(); }
};

}  // namespace lvf2::ssta
