#pragma once
// Golden path-level Monte Carlo: each die draws independent local
// variations per stage instance (local mismatch is uncorrelated
// between cell instances), the path delay is the sample-wise sum.
// Also exposes the per-stage golden sample matrix so each model can
// be fitted stage-by-stage and compared after every stage (paper
// Fig. 5).

#include <cstdint>
#include <vector>

#include "spice/process.h"
#include "ssta/path.h"

namespace lvf2::ssta {

/// Configuration of a golden path run.
struct PathMcConfig {
  std::size_t samples = 10000;
  std::uint64_t seed = 0xBEEF;
  bool use_lhs = true;
};

/// Result: stage delay samples and cumulative (path prefix) samples.
struct PathMcResult {
  /// stage_delays[i][j]: delay of stage i for die j (wire delay
  /// included).
  std::vector<std::vector<double>> stage_delays;
  /// cumulative[i][j]: sum of stages 0..i for die j.
  std::vector<std::vector<double>> cumulative;
};

/// Runs the golden Monte Carlo of a path against a corner.
PathMcResult run_path_monte_carlo(const TimingPath& path,
                                  const spice::ProcessCorner& corner,
                                  const PathMcConfig& config);

}  // namespace lvf2::ssta
