#pragma once
// Paper Section 4.4 / Fig. 5 engine: per-stage comparison of the four
// timing models along a circuit critical path.
//
// For every stage, each model is fitted to that stage's golden delay
// samples; the fitted stage distributions are then propagated with
// block-based SSTA (grid convolution). After each stage the
// propagated distribution is compared against the golden cumulative
// Monte-Carlo samples with the binning-error-reduction metric
// (Eq. 12). The CLT (Section 3.4) predicts all reductions decay
// towards 1 as stages accumulate.

#include <array>
#include <vector>

#include "core/timing_model.h"
#include "ssta/block_ssta.h"
#include "ssta/mc_ssta.h"
#include "ssta/path.h"

namespace lvf2::ssta {

/// Per-stage, per-model assessment of one path.
struct PathAssessment {
  /// Cumulative nominal delay after each stage, in FO4 units.
  std::vector<double> fo4_position;
  /// Cumulative nominal delay after each stage [ns].
  std::vector<double> nominal_cumulative_ns;
  /// Binning error reduction per stage, per model
  /// (all_model_kinds() order: LVF2, Norm2, LESN, LVF).
  std::vector<std::array<double, 4>> binning_reduction;
  /// CDF RMSE reduction per stage, per model.
  std::vector<std::array<double, 4>> cdf_rmse_reduction;
  /// Golden standardized skewness of the cumulative distribution per
  /// stage (shows the CLT-driven decay to 0).
  std::vector<double> golden_skewness;
};

/// Options of a path assessment run.
struct PathAssessmentOptions {
  PathMcConfig mc;
  core::FitOptions fit;
  SstaOptions ssta;
  std::size_t model_grid_points = 2048;
  /// Block-based SSTA maintains each model's parametric form at every
  /// node: after each convolution the family is refitted to the
  /// propagated distribution (paper ref. [20] semantics). false
  /// propagates the exact numeric grids instead (an ablation — it
  /// erases the representational differences between families along
  /// the path).
  bool refit_at_each_stage = true;
};

/// The reference FO4 delay of the corner: delay of a unit inverter
/// driving four copies of itself, with the input slew iterated to the
/// self-consistent fixed point.
double fo4_delay_ns(const spice::ProcessCorner& corner);

/// Runs the full per-stage assessment of a path.
PathAssessment assess_path(const TimingPath& path,
                           const spice::ProcessCorner& corner,
                           const PathAssessmentOptions& options = {});

}  // namespace lvf2::ssta
