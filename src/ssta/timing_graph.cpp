#include "ssta/timing_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "robust/faults.h"

namespace lvf2::ssta {

TimingGraph::NodeId TimingGraph::add_node(std::string name) {
  names_.push_back(std::move(name));
  fanin_.emplace_back();
  return static_cast<NodeId>(names_.size() - 1);
}

void TimingGraph::add_edge(NodeId from, NodeId to, EdgeDelay delay) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::out_of_range("TimingGraph::add_edge: bad node id");
  }
  edges_.push_back(Edge{from, to, std::move(delay)});
  fanin_[to].push_back(edges_.size() - 1);
}

std::vector<TimingGraph::NodeId> TimingGraph::topological_order() const {
  std::vector<std::size_t> indegree(names_.size(), 0);
  for (const Edge& e : edges_) ++indegree[e.to];
  std::vector<NodeId> queue;
  for (NodeId n = 0; n < names_.size(); ++n) {
    if (indegree[n] == 0) queue.push_back(n);
  }
  std::vector<NodeId> order;
  order.reserve(names_.size());
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId n = queue[head];
    order.push_back(n);
    for (const Edge& e : edges_) {
      if (e.from == n && --indegree[e.to] == 0) queue.push_back(e.to);
    }
  }
  if (order.size() != names_.size()) {
    throw std::runtime_error("TimingGraph: cycle detected");
  }
  return order;
}

namespace {

// Repairs a non-finite deterministic delay to zero (counted): one bad
// wire annotation must not turn every downstream arrival into NaN.
double sanitize_constant(double c) {
  if (std::isfinite(c)) return c;
  obs::counter("robust.ssta.nonfinite_delay").add(1);
  return 0.0;
}

// A distribution that cannot participate in SUM/MAX is dropped
// (counted) and the arrival falls back to its constant part.
bool drop_poisoned(const std::optional<stats::GridPdf>& d) {
  if (!d.has_value() || !pdf_poisoned(*d)) return false;
  obs::counter("robust.ssta.poisoned_arrival").add(1);
  return true;
}

// max(X, c) for a distribution X and a constant c: the density is
// truncated below c and the probability mass F(c) collapses onto the
// grid bin at c (narrow-triangle approximation of the point mass).
stats::GridPdf max_with_constant(const stats::GridPdf& x, double c,
                                 const SstaOptions& options) {
  if (c <= x.lo()) return x;
  const double hi = std::max(x.hi(), c + 4.0 * x.step());
  const std::size_t points = options.grid_points;
  const double step = (hi - c) / static_cast<double>(points - 1);
  std::vector<double> values(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = c + step * static_cast<double>(i);
    values[i] = x.pdf(t);
  }
  // Point mass F(c) at the left edge, spread over one bin.
  values[0] += x.cdf(c) / step;
  return stats::GridPdf::from_values(c, hi, std::move(values));
}

EdgeDelay sum_arrival(const EdgeDelay& arrival, const EdgeDelay& edge,
                      const SstaOptions& options) {
  double edge_constant = edge.constant_ns;
  if (robust::fire(robust::Fault::kSstaNonfinite)) {
    edge_constant = std::numeric_limits<double>::quiet_NaN();
  }
  const bool arrival_dead = drop_poisoned(arrival.distribution);
  bool edge_dead = drop_poisoned(edge.distribution);
  if (robust::fire(robust::Fault::kSstaEmptyPdf) && edge.distribution) {
    obs::counter("robust.ssta.poisoned_arrival").add(1);
    edge_dead = true;
  }
  EdgeDelay out;
  out.constant_ns =
      sanitize_constant(arrival.constant_ns) + sanitize_constant(edge_constant);
  const bool have_arrival = arrival.distribution && !arrival_dead;
  const bool have_edge = edge.distribution && !edge_dead;
  if (have_arrival && have_edge) {
    out.distribution =
        ssta_sum(*arrival.distribution, *edge.distribution, options);
  } else if (have_arrival) {
    out.distribution = arrival.distribution;
  } else if (have_edge) {
    out.distribution = edge.distribution;
  }
  return out;
}

EdgeDelay max_arrival(const EdgeDelay& a, const EdgeDelay& b,
                      const SstaOptions& options) {
  // Fold constants into the distributions, then take the max. A
  // poisoned distribution degrades to its constant part.
  const auto materialize = [](const EdgeDelay& d)
      -> std::optional<stats::GridPdf> {
    if (!d.distribution || drop_poisoned(d.distribution)) {
      return std::nullopt;
    }
    const double c = sanitize_constant(d.constant_ns);
    return (c != 0.0) ? d.distribution->shifted(c) : *d.distribution;
  };
  const std::optional<stats::GridPdf> da = materialize(a);
  const std::optional<stats::GridPdf> db = materialize(b);
  EdgeDelay out;
  if (da && db) {
    out.distribution = ssta_max(*da, *db, options);
  } else if (da) {
    out.distribution =
        max_with_constant(*da, sanitize_constant(b.constant_ns), options);
  } else if (db) {
    out.distribution =
        max_with_constant(*db, sanitize_constant(a.constant_ns), options);
  } else {
    out.constant_ns = std::max(sanitize_constant(a.constant_ns),
                               sanitize_constant(b.constant_ns));
  }
  return out;
}

}  // namespace

std::vector<EdgeDelay> TimingGraph::compute_arrivals(
    const SstaOptions& options) const {
  std::vector<EdgeDelay> arrivals(names_.size());
  for (NodeId n : topological_order()) {
    bool first = true;
    EdgeDelay best;
    for (std::size_t ei : fanin_[n]) {
      const Edge& e = edges_[ei];
      const EdgeDelay candidate =
          sum_arrival(arrivals[e.from], e.delay, options);
      best = first ? candidate : max_arrival(best, candidate, options);
      first = false;
    }
    if (!first) arrivals[n] = std::move(best);
  }
  return arrivals;
}

}  // namespace lvf2::ssta
