#include "ssta/path_analysis.h"

#include <cmath>
#include <memory>

#include "cells/cell_types.h"
#include "core/binning.h"
#include "core/metrics.h"
#include "core/model_factory.h"
#include "core/yield.h"
#include "obs/obs.h"
#include "stats/descriptive.h"

namespace lvf2::ssta {

double fo4_delay_ns(const spice::ProcessCorner& corner) {
  const cells::Cell inv = cells::build_cell(cells::CellFamily::kInv, 1, 1.0);
  // Use the falling arc of input A.
  const cells::TimingArc* arc = nullptr;
  for (const cells::TimingArc& a : inv.arcs) {
    if (!a.rise_output) {
      arc = &a;
      break;
    }
  }
  if (arc == nullptr) return 0.0;
  spice::ArcCondition cond;
  cond.load_pf = 4.0 * arc->stage.input_cap_pf;
  cond.slew_ns = 0.02;
  // Iterate input slew to the self-consistent FO4 transition.
  for (int iter = 0; iter < 6; ++iter) {
    const spice::StageTimes t =
        spice::nominal_stage_times(arc->stage, cond, corner);
    cond.slew_ns = t.transition_ns;
  }
  return spice::nominal_stage_times(arc->stage, cond, corner).delay_ns;
}

PathAssessment assess_path(const TimingPath& path,
                           const spice::ProcessCorner& corner,
                           const PathAssessmentOptions& options) {
  obs::TraceSpan span("ssta.assess_path", [&] {
    return obs::ArgsBuilder()
        .add("path", path.name)
        .add("depth", path.stages.size())
        .str();
  });
  static obs::Counter& calls = obs::counter("ssta.assess_path.calls");
  calls.add(1);

  PathAssessment out;
  const std::size_t depth = path.stages.size();
  if (depth == 0) return out;

  const PathMcResult golden =
      run_path_monte_carlo(path, corner, options.mc);

  // Nominal cumulative positions in FO4 units.
  const double fo4 = fo4_delay_ns(corner);
  double nominal_sum = 0.0;
  for (const PathStage& stage : path.stages) {
    const spice::StageTimes t = spice::nominal_stage_times(
        stage.arc().stage, stage.condition, corner);
    nominal_sum += t.delay_ns + stage.wire_delay_ns;
    out.nominal_cumulative_ns.push_back(nominal_sum);
    out.fo4_position.push_back(fo4 > 0.0 ? nominal_sum / fo4 : 0.0);
  }

  // Fit the four models per stage and tabulate their PDFs.
  const auto kinds = core::all_model_kinds();
  std::array<std::vector<stats::GridPdf>, 4> stage_pdfs;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    stage_pdfs[k].reserve(depth);
  }
  for (std::size_t i = 0; i < depth; ++i) {
    core::FitOptions fit = options.fit;
    fit.seed = stats::combine_seed(fit.seed, i + 1);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const std::unique_ptr<core::TimingModel> model =
          core::fit_model(kinds[k], golden.stage_delays[i], fit);
      if (!model) {
        // Degenerate stage: carry a narrow spike at the sample mean.
        const stats::Moments m =
            stats::compute_moments(golden.stage_delays[i]);
        stage_pdfs[k].push_back(stats::GridPdf::from_function(
            [&](double) { return 1.0; }, m.mean - 1e-6, m.mean + 1e-6,
            options.model_grid_points));
        continue;
      }
      stage_pdfs[k].push_back(
          model->to_grid(options.model_grid_points, 8.0));
    }
  }

  // Propagate each model and record the cumulative arrival
  // distribution after each stage. With refit_at_each_stage, the
  // family is refitted to every convolution result (block-based SSTA
  // keeps the parametric form at each node); the recorded grid is the
  // refitted model's own PDF, so the family's representational limits
  // show along the whole path.
  std::array<std::vector<stats::GridPdf>, 4> cumulative;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    if (!options.refit_at_each_stage) {
      cumulative[k] = propagate_chain(stage_pdfs[k], {}, options.ssta);
      continue;
    }
    cumulative[k].reserve(depth);
    stats::GridPdf carried = stage_pdfs[k].front();
    cumulative[k].push_back(carried);
    for (std::size_t i = 1; i < depth; ++i) {
      const stats::GridPdf conv =
          ssta_sum(carried, stage_pdfs[k][i], options.ssta);
      core::FitOptions fit = options.fit;
      fit.seed = stats::combine_seed(fit.seed, 1000 + i);
      const std::unique_ptr<core::TimingModel> refit =
          core::refit_model(kinds[k], conv, fit);
      carried = refit ? refit->to_grid(options.model_grid_points, 8.0)
                      : conv;
      cumulative[k].push_back(carried);
    }
  }

  out.binning_reduction.resize(depth);
  out.cdf_rmse_reduction.resize(depth);
  out.golden_skewness.resize(depth);
  const std::size_t lvf_index = kinds.size() - 1;  // paper order ends at LVF
  for (std::size_t i = 0; i < depth; ++i) {
    const stats::EmpiricalCdf golden_cdf(golden.cumulative[i]);
    const stats::Moments gm =
        stats::compute_moments(golden.cumulative[i]);
    out.golden_skewness[i] = gm.skewness;
    const std::vector<double> boundaries =
        core::sigma_bin_boundaries(gm.mean, gm.stddev);
    const std::vector<double> golden_bins =
        core::bin_probabilities(golden_cdf, boundaries);

    std::array<double, 4> bin_err{};
    std::array<double, 4> rmse_err{};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const stats::GridPdf& dist = cumulative[k][i];
      const auto cdf = [&dist](double x) { return dist.cdf(x); };
      const std::vector<double> model_bins =
          core::bin_probabilities(cdf, boundaries);
      bin_err[k] = core::binning_error(model_bins, golden_bins);
      rmse_err[k] = core::cdf_rmse(cdf, golden_cdf);
    }
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      out.binning_reduction[i][k] = core::error_reduction(
          bin_err[lvf_index], bin_err[k],
          core::binning_error_floor(options.mc.samples));
      out.cdf_rmse_reduction[i][k] = core::error_reduction(
          rmse_err[lvf_index], rmse_err[k],
          core::cdf_rmse_floor(options.mc.samples));
    }

    // Endpoint QoR row for the run manifest: the propagated arrival
    // distribution at the last stage, per model, vs the MC-SSTA
    // golden — mirror of the per-arc table for path endpoints.
    if (i + 1 == depth && obs::manifest_enabled()) {
      const double t3 = gm.mean + 3.0 * gm.stddev;
      obs::EndpointQor row;
      row.path = path.name;
      row.depth = depth;
      row.golden_mean = gm.mean;
      row.golden_stddev = gm.stddev;
      row.golden_skewness = gm.skewness;
      row.golden_yield_3sigma = golden_cdf(t3);
      std::array<double, 4> yield_err{};
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        yield_err[k] =
            std::fabs(cumulative[k][i].cdf(t3) - row.golden_yield_3sigma);
      }
      row.models.reserve(kinds.size());
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        obs::ModelQor m;
        m.model = core::to_string(kinds[k]);
        m.binning = bin_err[k];
        m.yield_3sigma = yield_err[k];
        m.cdf_rmse = rmse_err[k];
        m.x_binning = out.binning_reduction[i][k];
        m.x_yield_3sigma = core::error_reduction(
            yield_err[lvf_index], yield_err[k],
            core::yield_error_floor(options.mc.samples));
        m.x_cdf_rmse = out.cdf_rmse_reduction[i][k];
        row.models.push_back(std::move(m));
      }
      obs::ManifestRecorder::instance().add_endpoint(std::move(row));
    }
  }
  return out;
}

}  // namespace lvf2::ssta
