#pragma once
// Generic block-based SSTA on a timing DAG. Nodes are circuit pins /
// nets; edges carry either a delay distribution (a cell arc) or a
// deterministic delay (a wire). Arrival times propagate in
// topological order: SUM along edges, statistical MAX at merge
// points — the classic block-based SSTA of paper ref. [20].

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ssta/block_ssta.h"
#include "stats/grid_pdf.h"

namespace lvf2::ssta {

/// Edge annotation: distributional and/or constant delay.
struct EdgeDelay {
  std::optional<stats::GridPdf> distribution;
  double constant_ns = 0.0;
};

/// A timing DAG with distribution-valued arrival-time analysis.
class TimingGraph {
 public:
  using NodeId = std::uint32_t;

  /// Adds a node; names are for reporting and need not be unique.
  NodeId add_node(std::string name);

  /// Adds a directed edge `from -> to` with the given delay.
  void add_edge(NodeId from, NodeId to, EdgeDelay delay);

  std::size_t node_count() const { return names_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const std::string& node_name(NodeId id) const { return names_.at(id); }

  /// Computes the arrival-time distribution of every node. Sources
  /// (no fan-in) have arrival 0 (no distribution). Returns one entry
  /// per node; sources and nodes reached only through constant edges
  /// may have `distribution == nullopt` with the arrival carried in
  /// `constant_ns`. Throws if the graph has a cycle.
  std::vector<EdgeDelay> compute_arrivals(
      const SstaOptions& options = {}) const;

  /// Topological order of all nodes; throws on cycles.
  std::vector<NodeId> topological_order() const;

 private:
  struct Edge {
    NodeId from;
    NodeId to;
    EdgeDelay delay;
  };

  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> fanin_;  ///< edge indices per node
};

}  // namespace lvf2::ssta
