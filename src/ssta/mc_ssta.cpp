#include "ssta/mc_ssta.h"

#include "exec/pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/montecarlo.h"
#include "stats/rng.h"

namespace lvf2::ssta {

PathMcResult run_path_monte_carlo(const TimingPath& path,
                                  const spice::ProcessCorner& corner,
                                  const PathMcConfig& config) {
  obs::TraceSpan span("ssta.mc.path", [&] {
    return obs::ArgsBuilder()
        .add("path", path.name)
        .add("depth", path.stages.size())
        .add("samples", config.samples)
        .str();
  });
  static obs::Counter& mc_samples = obs::counter("ssta.mc.samples");
  mc_samples.add(path.stages.size() * config.samples);
  static obs::Counter& mc_paths = obs::counter("ssta.mc.paths");
  mc_paths.add(1);

  PathMcResult result;
  const std::size_t depth = path.stages.size();
  result.stage_delays.resize(depth);
  result.cumulative.resize(depth);

  const spice::VariationSampler sampler(corner);
  // Stage sample batches are independent (each stage has its own
  // derived seed), so they fan out across the pool; results land in
  // per-stage slots and are byte-identical to a serial run.
  exec::parallel_for(depth, 1, [&](std::size_t i) {
    const PathStage& stage = path.stages[i];
    obs::TraceSpan stage_span("ssta.mc.stage", [&] {
      return obs::ArgsBuilder()
          .add("instance", stage.instance_name)
          .add("index", i)
          .str();
    });
    // Independent per-instance seed: local mismatch is uncorrelated
    // across instances.
    stats::Rng rng(stats::combine_seed(
        config.seed, stats::hash_name(path.name + "/" +
                                      stage.instance_name) + i));
    const std::vector<spice::VariationSample> draws =
        config.use_lhs ? sampler.sample_lhs(config.samples, rng)
                       : sampler.sample_mc(config.samples, rng);
    auto& delays = result.stage_delays[i];
    delays.reserve(config.samples);
    for (const spice::VariationSample& v : draws) {
      const spice::StageTimes t = spice::simulate_stage(
          stage.arc().stage, stage.condition, corner, v);
      delays.push_back(t.delay_ns + stage.wire_delay_ns);
    }
  });
  // The running sum chains across stages, so it stays a (cheap)
  // serial pass over the finished per-stage delays.
  for (std::size_t i = 0; i < depth; ++i) {
    auto& cum = result.cumulative[i];
    cum.resize(config.samples);
    for (std::size_t j = 0; j < config.samples; ++j) {
      cum[j] = result.stage_delays[i][j] +
               (i > 0 ? result.cumulative[i - 1][j] : 0.0);
    }
  }
  return result;
}

}  // namespace lvf2::ssta
