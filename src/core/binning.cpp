#include "core/binning.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lvf2::core {

std::vector<double> sigma_bin_boundaries(double mu, double sigma) {
  std::vector<double> b;
  b.reserve(7);
  for (int k = -3; k <= 3; ++k) {
    b.push_back(mu + static_cast<double>(k) * sigma);
  }
  return b;
}

namespace {

std::vector<double> bins_from_cdf_values(std::span<const double> cdf_values) {
  std::vector<double> bins;
  bins.reserve(cdf_values.size() + 1);
  double prev = 0.0;
  for (double c : cdf_values) {
    const double clamped = std::clamp(c, prev, 1.0);
    bins.push_back(clamped - prev);
    prev = clamped;
  }
  bins.push_back(1.0 - prev);
  return bins;
}

}  // namespace

std::vector<double> bin_probabilities(const CdfFn& cdf,
                                      std::span<const double> boundaries) {
  std::vector<double> cdf_values;
  cdf_values.reserve(boundaries.size());
  for (double t : boundaries) cdf_values.push_back(cdf(t));
  return bins_from_cdf_values(cdf_values);
}

std::vector<double> bin_probabilities(const TimingModel& model,
                                      std::span<const double> boundaries) {
  std::vector<double> cdf_values(boundaries.size());
  model.cdf_batch(boundaries, cdf_values);
  return bins_from_cdf_values(cdf_values);
}

std::vector<double> bin_probabilities(const stats::EmpiricalCdf& golden,
                                      std::span<const double> boundaries) {
  std::vector<double> cdf_values;
  cdf_values.reserve(boundaries.size());
  for (double t : boundaries) cdf_values.push_back(golden(t));
  return bins_from_cdf_values(cdf_values);
}

double binning_error(std::span<const double> model_bins,
                     std::span<const double> golden_bins) {
  if (model_bins.size() != golden_bins.size() || model_bins.empty()) {
    throw std::invalid_argument("binning_error: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < model_bins.size(); ++i) {
    sum += std::fabs(model_bins[i] - golden_bins[i]);
  }
  return sum / static_cast<double>(model_bins.size());
}

double binning_error(const TimingModel& model,
                     const stats::EmpiricalCdf& golden) {
  const stats::Moments m = stats::compute_moments(golden.sorted_samples());
  const std::vector<double> boundaries =
      sigma_bin_boundaries(m.mean, m.stddev);
  const std::vector<double> model_bins =
      bin_probabilities(model, boundaries);
  const std::vector<double> golden_bins =
      bin_probabilities(golden, boundaries);
  return binning_error(model_bins, golden_bins);
}

double error_reduction(double baseline_error, double model_error,
                       double floor) {
  floor = std::max(floor, 1e-300);
  return std::max(std::fabs(baseline_error), floor) /
         std::max(std::fabs(model_error), floor);
}

double binning_error_floor(std::size_t count) {
  // Each bin probability resolves to ~1/count; the metric averages
  // |delta P| over 8 bins.
  return (count > 0) ? 0.125 / static_cast<double>(count) : 1e-12;
}

double yield_error_floor(std::size_t count) {
  // A single CDF point resolves to about half a sample.
  return (count > 0) ? 0.5 / static_cast<double>(count) : 1e-12;
}

double cdf_rmse_floor(std::size_t count) {
  // Pointwise empirical-CDF noise is ~0.5/sqrt(count) at the center;
  // averaging over the evaluation grid reduces it by roughly half.
  return (count > 0) ? 0.2 / std::sqrt(static_cast<double>(count)) : 1e-12;
}

}  // namespace lvf2::core
