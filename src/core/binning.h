#pragma once
// Speed binning (paper Section 2.1). Chips are sorted into bins by
// their maximum operating frequency; with boundaries T_1 < ... < T_n
// the probability of landing in bin i is Eq. 1:
//
//   P(Bin_i) = P(t < T_1)                      i = 1
//            = P(t < T_i) - P(t <= T_{i-1})    2 <= i <= n
//            = 1 - P(t <= T_n)                 i = n + 1
//
// The paper's evaluation uses boundaries mu +/- {3,2,1,0} sigma of the
// golden distribution, i.e. 7 boundaries -> 8 bins.

#include <functional>
#include <span>
#include <vector>

#include "core/timing_model.h"
#include "stats/descriptive.h"

namespace lvf2::core {

/// Any CDF-like callable P(t <= x).
using CdfFn = std::function<double(double)>;

/// The paper's binning boundaries: mu + k sigma for
/// k in {-3,-2,-1,0,1,2,3} (7 boundaries, 8 bins).
std::vector<double> sigma_bin_boundaries(double mu, double sigma);

/// Bin probabilities per Eq. 1 for arbitrary boundaries (must be
/// sorted ascending). Returns boundaries.size() + 1 probabilities
/// summing to 1 for any proper CDF.
std::vector<double> bin_probabilities(const CdfFn& cdf,
                                      std::span<const double> boundaries);

/// Batch variant: evaluates the model CDF at all boundaries in one
/// cdf_batch pass.
std::vector<double> bin_probabilities(const TimingModel& model,
                                      std::span<const double> boundaries);

/// Empirical bin probabilities of a golden sample set.
std::vector<double> bin_probabilities(const stats::EmpiricalCdf& golden,
                                      std::span<const double> boundaries);

/// Binning error of a model against golden: the mean absolute
/// difference of bin probabilities over all bins.
double binning_error(std::span<const double> model_bins,
                     std::span<const double> golden_bins);

/// Convenience: golden-moment boundaries, both bin vectors, error.
double binning_error(const TimingModel& model,
                     const stats::EmpiricalCdf& golden);

/// Error reduction (paper Eq. 12):
///   |baseline - golden| / |result - golden|,
/// expressed on already-computed error magnitudes. Both numerator
/// and denominator are clamped below at `floor` — errors smaller than
/// the golden data's Monte-Carlo resolution are indistinguishable
/// from zero, and clamping both sides keeps sub-resolution matches at
/// a ratio of ~1 instead of exploding.
double error_reduction(double baseline_error, double model_error,
                       double floor = 1e-12);

/// Statistical resolution floors of the three metrics for a golden
/// sample set of size `count`.
double binning_error_floor(std::size_t count);
double yield_error_floor(std::size_t count);
double cdf_rmse_floor(std::size_t count);

}  // namespace lvf2::core
