#pragma once
// Analytic (grid-free) operations on skew-normal mixtures — a
// "formularized" non-Gaussian SSTA path in the spirit of the paper's
// refs [18, 19], built on two facts:
//
//  1. Cumulants are additive under independent sums, and the first
//     three moments determine a skew-normal: the convolution of two
//     skew-normals is approximated by the moment-matched skew-normal
//     with mu = mu1 + mu2, sigma^2 = sigma1^2 + sigma2^2, and third
//     central moment m3 = m3_1 + m3_2 (exact through order 3).
//  2. The convolution of two mixtures is the mixture of pairwise
//     convolutions; the K*L result is reduced back to a target order
//     by greedily merging the most similar component pair with the
//     moment-preserving mixture-merge.
//
// This gives O(K*L) SSTA sum operations with no discretization at
// all — the trade-off against grid convolution is benchmarked in
// bench_perf and unit-tested against the grid reference.

#include "core/lvf2_model.h"
#include "core/lvfk_model.h"

namespace lvf2::core {

/// Moment-matched skew-normal approximation of X + Y for independent
/// skew-normals (exact mean/variance/third-central-moment).
stats::SkewNormal convolve_skew_normals(const stats::SkewNormal& x,
                                        const stats::SkewNormal& y);

/// Merges two weighted skew-normals into one that preserves the pair's
/// mixture mean, variance and third central moment.
stats::SkewNormal merge_skew_normals(double w1, const stats::SkewNormal& a,
                                     double w2, const stats::SkewNormal& b);

/// Reduces a mixture to at most `max_components` by greedily merging
/// the pair with the smallest moment-space distance.
LvfKModel reduce_mixture(const LvfKModel& model, std::size_t max_components);

/// Analytic distribution of X + Y for independent mixtures: pairwise
/// component convolution followed by reduction to `max_components`.
LvfKModel convolve_mixtures(const LvfKModel& x, const LvfKModel& y,
                            std::size_t max_components = 4);

/// Convenience overload on the paper's two-component models; the
/// result is reduced back to two components, staying in LVF^2 form
/// (what an LVF^2-native SSTA engine would carry per node).
Lvf2Model convolve_lvf2(const Lvf2Model& x, const Lvf2Model& y);

/// Lifts an Lvf2Model into the K-component representation.
LvfKModel to_lvfk(const Lvf2Model& model);

}  // namespace lvf2::core
