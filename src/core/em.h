#pragma once
// Shared infrastructure for the EM-based mixture fits (Norm^2 and
// LVF^2): the binned-likelihood data compression and the EM iteration
// report.

#include <cstddef>
#include <span>
#include <vector>

#include "core/timing_model.h"

namespace lvf2::core {

/// Weighted observation set. For raw fits, weights are all 1; for
/// binned-likelihood fits, x are bin centers and w are occupancies.
/// Binning is an O(n) compression that leaves the likelihood surface
/// unchanged at the bin resolution — see DESIGN.md decision 1.
struct WeightedData {
  std::vector<double> x;
  std::vector<double> w;
  double total_weight = 0.0;

  std::size_t size() const { return x.size(); }
};

/// Compresses `samples` per `options.likelihood_bins` (0 keeps raw
/// samples with unit weights). Bins with zero occupancy are dropped.
WeightedData make_weighted_data(std::span<const double> samples,
                                const FitOptions& options);

/// Weighted data from a tabulated density: grid points weighted by
/// density * step. Used to refit a model family to a propagated
/// (convolved) distribution in block-based SSTA.
WeightedData make_weighted_data(const stats::GridPdf& pdf);

/// How far down the graceful-degradation chain a fit had to walk:
///   validated samples -> mixture EM -> lambda = 0 single SN ->
///   moment-matched normal / point mass.
/// Every downgrade is also counted under a robust.downgrade.* metric.
enum class FitDegradation : int {
  kNone = 0,       ///< full two-component mixture fit
  kSingleSn,       ///< fell back to the lambda = 0 single skew-normal
                   ///< (paper Eq. 10 backward-compatibility target)
  kMomentNormal,   ///< moment-matched normal / point mass (last rung)
  kRejected,       ///< nothing fittable at all (fit returned nullopt)
};

/// Stable short name ("none", "single_sn", "moment_normal",
/// "rejected") — used for counter names and logs.
const char* to_string(FitDegradation degradation);

/// Convergence report of an EM run.
struct EmReport {
  std::size_t iterations = 0;
  double log_likelihood = 0.0;
  bool converged = false;
  bool collapsed = false;   ///< a component degenerated; fit fell back
  bool oscillated = false;  ///< log-likelihood decreased repeatedly
                            ///< (numerical pathology; treated as collapse)
  std::size_t dropped_samples = 0;  ///< non-finite samples removed
  std::size_t clipped_samples = 0;  ///< outlier samples winsorized
  FitDegradation degradation = FitDegradation::kNone;
};

}  // namespace lvf2::core
