#pragma once
// LESN baseline (paper ref. [7], Jin et al. TCAS-II'22): the
// log-extended-skew-normal model fitted by matching the first four
// moments (mean, sigma, skewness, kurtosis — "matching kurtosis").
// The strongest published moments-based single-component model; it
// excels at tail (3-sigma) estimation but cannot express multiple
// Gaussian components.

#include <optional>
#include <variant>

#include "core/timing_model.h"
#include "stats/log_normal.h"
#include "stats/skew_normal.h"

namespace lvf2::core {

/// Log-extended-skew-normal timing model.
class LesnModel final : public TimingModel {
 public:
  explicit LesnModel(const stats::LogExtendedSkewNormal& lesn);
  /// Fallback representation used when the four-moment match is
  /// infeasible (e.g. non-positive support): a moment-fit skew-normal.
  explicit LesnModel(const stats::SkewNormal& fallback);

  /// Fits by four-moment matching; falls back to a skew-normal when
  /// the data is non-positive or the shape search fails. Returns
  /// nullopt for degenerate data.
  static std::optional<LesnModel> fit(std::span<const double> samples);

  /// Fits from a moment summary alone (the model is moments-based, so
  /// no samples are needed). `positive_support` reports whether the
  /// underlying data is strictly positive; a log-domain fit is only
  /// attempted when it is.
  static std::optional<LesnModel> fit_moments(const stats::Moments& moments,
                                              bool positive_support = true);

  /// True when the four-moment LESN match succeeded (no fallback).
  bool is_lesn() const;
  const stats::LogExtendedSkewNormal* lesn() const;

  ModelKind kind() const override { return ModelKind::kLesn; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  void pdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  void cdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  double quantile(double p) const override;
  double mean() const override;
  double stddev() const override;
  double sample(stats::Rng& rng) const override;

 private:
  std::variant<stats::LogExtendedSkewNormal, stats::SkewNormal> dist_;
};

}  // namespace lvf2::core
