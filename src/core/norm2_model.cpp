#include "core/norm2_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "simd/simd.h"
#include "stats/descriptive.h"
#include "stats/kmeans.h"
#include "stats/optimize.h"
#include "stats/special_functions.h"

namespace lvf2::core {

Norm2Model::Norm2Model(double lambda, const stats::Normal& first,
                       const stats::Normal& second)
    : lambda_(lambda), first_(first), second_(second) {
  if (!(lambda >= 0.0 && lambda <= 1.0)) {
    throw std::invalid_argument("Norm2Model: lambda must be in [0,1]");
  }
}

double Norm2Model::pdf(double x) const {
  return (1.0 - lambda_) * first_.pdf(x) + lambda_ * second_.pdf(x);
}

double Norm2Model::cdf(double x) const {
  return (1.0 - lambda_) * first_.cdf(x) + lambda_ * second_.cdf(x);
}

void Norm2Model::pdf_batch(std::span<const double> x,
                           std::span<double> out) const {
  std::vector<double> buf(x.size());
  first_.pdf(x, out);
  second_.pdf(x, buf);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (1.0 - lambda_) * out[i] + lambda_ * buf[i];
  }
}

void Norm2Model::cdf_batch(std::span<const double> x,
                           std::span<double> out) const {
  std::vector<double> buf(x.size());
  first_.cdf(x, out);
  second_.cdf(x, buf);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (1.0 - lambda_) * out[i] + lambda_ * buf[i];
  }
}

double Norm2Model::quantile(double p) const {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  const double lo = std::min(first_.quantile(1e-12), second_.quantile(1e-12));
  const double hi = std::max(first_.quantile(1.0 - 1e-12),
                             second_.quantile(1.0 - 1e-12));
  const auto f = [&](double x) { return cdf(x) - p; };
  return stats::bisect_root(f, lo, hi, 1e-13 * std::max(stddev(), 1e-30)).x;
}

double Norm2Model::mean() const {
  return (1.0 - lambda_) * first_.mean() + lambda_ * second_.mean();
}

double Norm2Model::stddev() const {
  const double mu = mean();
  const double d1 = first_.mean() - mu;
  const double d2 = second_.mean() - mu;
  const double var = (1.0 - lambda_) * (first_.variance() + d1 * d1) +
                     lambda_ * (second_.variance() + d2 * d2);
  return std::sqrt(var);
}

double Norm2Model::sample(stats::Rng& rng) const {
  return (rng.uniform() < lambda_) ? second_.sample(rng) : first_.sample(rng);
}

std::optional<Norm2Model> Norm2Model::fit(std::span<const double> samples,
                                          const FitOptions& options,
                                          EmReport* report) {
  const stats::Moments global = stats::compute_moments(samples);
  if (global.count < 4 || !(global.stddev > 0.0)) return std::nullopt;
  return fit_weighted(make_weighted_data(samples, options), options, report);
}

std::optional<Norm2Model> Norm2Model::fit_weighted(const WeightedData& data,
                                                   const FitOptions& options,
                                                   EmReport* report) {
  const stats::Moments global =
      stats::compute_weighted_moments(data.x, data.w);
  const std::size_t n = data.size();
  if (n < 4 || !(global.stddev > 0.0)) return std::nullopt;

  // --- Initialization: k-means (k = 2) + per-cluster moments. ---
  stats::Rng rng(options.seed);
  const stats::KMeansResult km =
      stats::kmeans_1d(data.x, 2, rng, {}, data.w);
  double mu[2] = {global.mean - 0.5 * global.stddev,
                  global.mean + 0.5 * global.stddev};
  double sigma[2] = {global.stddev, global.stddev};
  double lambda = 0.5;
  if (km.centers.size() == 2) {
    double wsum[2] = {0.0, 0.0};
    double xsum[2] = {0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = km.assignment[i];
      wsum[c] += data.w[i];
      xsum[c] += data.w[i] * data.x[i];
    }
    if (wsum[0] > 0.0 && wsum[1] > 0.0) {
      double ssum[2] = {0.0, 0.0};
      mu[0] = xsum[0] / wsum[0];
      mu[1] = xsum[1] / wsum[1];
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = km.assignment[i];
        const double d = data.x[i] - mu[c];
        ssum[c] += data.w[i] * d * d;
      }
      const double sigma_floor = 1e-4 * global.stddev;
      sigma[0] = std::max(std::sqrt(ssum[0] / wsum[0]), sigma_floor);
      sigma[1] = std::max(std::sqrt(ssum[1] / wsum[1]), sigma_floor);
      lambda = wsum[1] / (wsum[0] + wsum[1]);
    }
  }

  // --- EM iterations (closed-form M-step). ---
  const double sigma_floor = 1e-5 * global.stddev;
  std::vector<double> resp(n);  // responsibility of component 2
  std::vector<double> lp1(n), lp2(n), lse(n);  // E-step batch buffers
  double prev_ll = -std::numeric_limits<double>::infinity();
  EmReport rep;
  for (std::size_t iter = 0; iter < options.em_max_iterations; ++iter) {
    rep.iterations = iter + 1;
    // E-step (paper Eq. 6, adapted to Gaussian components), through
    // the batch kernels; the weighted reduction stays sequential.
    const double l1 = std::log(std::max(1.0 - lambda, 1e-300));
    const double l2 = std::log(std::max(lambda, 1e-300));
    simd::normal_mu_sigma_log_pdf(mu[0], sigma[0], data.x, lp1);
    simd::normal_mu_sigma_log_pdf(mu[1], sigma[1], data.x, lp2);
    simd::em_responsibilities(l1, l2, lp1, lp2, resp, lse);
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) ll += data.w[i] * lse[i];
    rep.log_likelihood = ll;
    // M-step: weighted means / variances.
    double w2 = 0.0, m1 = 0.0, m2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double wr = data.w[i] * resp[i];
      w2 += wr;
      m2 += wr * data.x[i];
      m1 += (data.w[i] - wr) * data.x[i];
    }
    const double w1 = data.total_weight - w2;
    if (w1 <= 1e-9 * data.total_weight || w2 <= 1e-9 * data.total_weight) {
      rep.collapsed = true;
      break;
    }
    mu[0] = m1 / w1;
    mu[1] = m2 / w2;
    double s1 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double wr = data.w[i] * resp[i];
      const double d1 = data.x[i] - mu[0];
      const double d2 = data.x[i] - mu[1];
      s1 += (data.w[i] - wr) * d1 * d1;
      s2 += wr * d2 * d2;
    }
    sigma[0] = std::max(std::sqrt(s1 / w1), sigma_floor);
    sigma[1] = std::max(std::sqrt(s2 / w2), sigma_floor);
    lambda = w2 / data.total_weight;

    if (std::isfinite(prev_ll) &&
        std::fabs(ll - prev_ll) <=
            options.em_tolerance * (std::fabs(prev_ll) + 1.0)) {
      rep.converged = true;
      break;
    }
    prev_ll = ll;
  }

  // Canonical order: component 1 has the smaller mean.
  if (mu[0] > mu[1]) {
    std::swap(mu[0], mu[1]);
    std::swap(sigma[0], sigma[1]);
    lambda = 1.0 - lambda;
  }
  if (report != nullptr) *report = rep;
  if (rep.collapsed) {
    // Fall back to a single Gaussian (lambda = 0).
    return Norm2Model(0.0, stats::Normal(global.mean, global.stddev),
                      stats::Normal(global.mean, global.stddev));
  }
  Norm2Model model(lambda, stats::Normal(mu[0], sigma[0]),
                   stats::Normal(mu[1], sigma[1]));
  // Affine moment correction: pin the mixture mean / sigma to the
  // raw sample moments (the binned-likelihood fit matches the binned
  // moments; SSTA convolution accumulates any residual bias).
  const double s_fit = model.stddev();
  if (s_fit > 0.0) {
    const double b = global.stddev / s_fit;
    const double a = global.mean - b * model.mean();
    model = Norm2Model(
        model.lambda(),
        stats::Normal(a + b * mu[0], b * sigma[0]),
        stats::Normal(a + b * mu[1], b * sigma[1]));
  }
  return model;
}

}  // namespace lvf2::core
