#pragma once
// LVF baseline: a single skew-normal defined by the three LVF moments
// (mean shift, std-dev, skewness) — paper Section 2.2. Fitting is the
// method of moments, exactly what LVF characterization stores in its
// look-up tables.

#include <optional>

#include "core/timing_model.h"
#include "stats/skew_normal.h"

namespace lvf2::core {

/// Industry-standard LVF model: one moment-matched skew-normal.
class LvfModel final : public TimingModel {
 public:
  explicit LvfModel(const stats::SkewNormal& sn) : sn_(sn) {}

  /// Construct from the LVF moment triple (the bijection g of Eq. 2).
  static LvfModel from_moments(const stats::SnMoments& m);

  /// Method-of-moments fit from samples. Returns nullopt for
  /// degenerate (empty/constant) data.
  static std::optional<LvfModel> fit(std::span<const double> samples);

  const stats::SkewNormal& distribution() const { return sn_; }
  stats::SnMoments moments() const { return sn_.to_moments(); }

  ModelKind kind() const override { return ModelKind::kLvf; }
  double pdf(double x) const override { return sn_.pdf(x); }
  double cdf(double x) const override { return sn_.cdf(x); }
  void pdf_batch(std::span<const double> x,
                 std::span<double> out) const override {
    sn_.pdf(x, out);
  }
  void cdf_batch(std::span<const double> x,
                 std::span<double> out) const override {
    sn_.cdf(x, out);
  }
  double quantile(double p) const override { return sn_.quantile(p); }
  double mean() const override { return sn_.mean(); }
  double stddev() const override { return sn_.stddev(); }
  double sample(stats::Rng& rng) const override { return sn_.sample(rng); }

 private:
  stats::SkewNormal sn_;
};

}  // namespace lvf2::core
