#include "core/em.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "stats/grid_pdf.h"

namespace lvf2::core {

namespace {

// Compression telemetry: raw observations in, weighted points out.
void record_compression(std::size_t samples_in, std::size_t points_out) {
  static obs::Counter& in = obs::counter("em.binning.samples_in");
  static obs::Counter& out = obs::counter("em.binning.points_out");
  in.add(samples_in);
  out.add(points_out);
}

}  // namespace

const char* to_string(FitDegradation degradation) {
  switch (degradation) {
    case FitDegradation::kNone: return "none";
    case FitDegradation::kSingleSn: return "single_sn";
    case FitDegradation::kMomentNormal: return "moment_normal";
    case FitDegradation::kRejected: return "rejected";
  }
  return "unknown";
}

WeightedData make_weighted_data(std::span<const double> samples,
                                const FitOptions& options) {
  obs::TraceSpan span("em.bin");
  WeightedData data;
  if (options.likelihood_bins == 0 ||
      samples.size() <= options.likelihood_bins) {
    data.x.assign(samples.begin(), samples.end());
    data.w.assign(samples.size(), 1.0);
    data.total_weight = static_cast<double>(samples.size());
    record_compression(samples.size(), data.size());
    return data;
  }
  const stats::BinnedSamples bins =
      stats::bin_samples(samples, options.likelihood_bins);
  data.x.reserve(bins.centers.size());
  data.w.reserve(bins.centers.size());
  for (std::size_t i = 0; i < bins.centers.size(); ++i) {
    if (bins.counts[i] > 0.0) {
      data.x.push_back(bins.centers[i]);
      data.w.push_back(bins.counts[i]);
      data.total_weight += bins.counts[i];
    }
  }
  record_compression(samples.size(), data.size());
  return data;
}

WeightedData make_weighted_data(const stats::GridPdf& pdf) {
  WeightedData data;
  if (pdf.empty()) return data;
  data.x.reserve(pdf.size());
  data.w.reserve(pdf.size());
  for (std::size_t i = 0; i < pdf.size(); ++i) {
    const double w = pdf.density()[i] * pdf.step();
    if (w <= 0.0) continue;
    data.x.push_back(pdf.x_at(i));
    data.w.push_back(w);
    data.total_weight += w;
  }
  return data;
}

}  // namespace lvf2::core
