#pragma once
// Norm^2 baseline (paper ref. [10], Takahashi et al. DAC'09): a
// two-component Gaussian mixture
//   f(x) = (1 - lambda) N(x | mu1, sigma1) + lambda N(x | mu2, sigma2)
// fitted with classic closed-form EM. Unlike LVF^2 it ignores the
// skewness of the components.

#include <optional>

#include "core/em.h"
#include "core/timing_model.h"
#include "stats/normal.h"

namespace lvf2::core {

/// Two-component Gaussian mixture model.
class Norm2Model final : public TimingModel {
 public:
  /// Direct construction; `lambda` in [0,1] weights `second`.
  Norm2Model(double lambda, const stats::Normal& first,
             const stats::Normal& second);

  /// EM fit (k-means init, closed-form M-step). Returns nullopt for
  /// degenerate data. `report`, when non-null, receives diagnostics.
  static std::optional<Norm2Model> fit(std::span<const double> samples,
                                       const FitOptions& options = {},
                                       EmReport* report = nullptr);

  /// EM fit directly on weighted observations (e.g. a tabulated
  /// density from block-based SSTA propagation).
  static std::optional<Norm2Model> fit_weighted(const WeightedData& data,
                                                const FitOptions& options = {},
                                                EmReport* report = nullptr);

  double lambda() const { return lambda_; }
  const stats::Normal& component1() const { return first_; }
  const stats::Normal& component2() const { return second_; }

  ModelKind kind() const override { return ModelKind::kNorm2; }
  double pdf(double x) const override;
  double cdf(double x) const override;
  void pdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  void cdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  double quantile(double p) const override;
  double mean() const override;
  double stddev() const override;
  double sample(stats::Rng& rng) const override;

 private:
  double lambda_ = 0.0;
  stats::Normal first_;
  stats::Normal second_;
};

}  // namespace lvf2::core
