#pragma once
// LVF^k — the K-component generalization of LVF^2. Paper Section 3.3:
// "Although LVF^2 assumes only two Gaussian components, one can
// easily extend the library to support more components by following
// similar attribute naming conventions." This model implements that
// extension: a K-component skew-normal mixture
//
//   f(x) = sum_k w_k f_SN(x | theta_k),   sum_k w_k = 1,
//
// fitted by the same EM machinery (K-means initialization, weighted
// skew-normal MLE M-step, staged multi-start, moment pinning).
// K = 1 degenerates to LVF and K = 2 to LVF^2.

#include <optional>
#include <vector>

#include "core/em.h"
#include "core/timing_model.h"
#include "stats/skew_normal.h"

namespace lvf2::core {

/// K-component skew-normal mixture.
class LvfKModel final : public TimingModel {
 public:
  /// One weighted component.
  struct Component {
    double weight = 1.0;
    stats::SkewNormal sn;
  };

  /// Direct construction; weights are normalized to sum to 1 and
  /// components are sorted by ascending mean. Requires >= 1 component
  /// and positive total weight.
  explicit LvfKModel(std::vector<Component> components);

  /// EM fit with `k` components. Returns nullopt for degenerate
  /// data. Components whose weight collapses during EM are dropped
  /// (the effective K of the result can be smaller than requested).
  static std::optional<LvfKModel> fit(std::span<const double> samples,
                                      std::size_t k,
                                      const FitOptions& options = {},
                                      EmReport* report = nullptr);

  /// EM fit on weighted observations (tabulated densities).
  static std::optional<LvfKModel> fit_weighted(const WeightedData& data,
                                               std::size_t k,
                                               const FitOptions& options = {},
                                               EmReport* report = nullptr);

  const std::vector<Component>& components() const { return components_; }
  std::size_t component_count() const { return components_.size(); }

  /// Weighted log-likelihood of a data set under this model.
  double log_likelihood(const WeightedData& data) const;

  /// Bayesian information criterion for model-order selection:
  /// -2 logL + p ln(n) with p = 4K - 1 free parameters.
  double bic(const WeightedData& data) const;

  ModelKind kind() const override { return ModelKind::kLvfK; }
  double pdf(double x) const override;
  double log_pdf(double x) const;
  double cdf(double x) const override;
  void pdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  void cdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  double quantile(double p) const override;
  double mean() const override;
  double stddev() const override;
  double skewness() const;
  double sample(stats::Rng& rng) const override;

 private:
  std::vector<Component> components_;
};

}  // namespace lvf2::core
