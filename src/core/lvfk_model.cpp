#include "core/lvfk_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/kmeans.h"
#include "stats/optimize.h"
#include "stats/special_functions.h"

namespace lvf2::core {

LvfKModel::LvfKModel(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("LvfKModel: need at least one component");
  }
  double total = 0.0;
  for (const Component& c : components_) {
    if (!(c.weight >= 0.0)) {
      throw std::invalid_argument("LvfKModel: negative component weight");
    }
    total += c.weight;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("LvfKModel: zero total weight");
  }
  for (Component& c : components_) c.weight /= total;
  std::sort(components_.begin(), components_.end(),
            [](const Component& a, const Component& b) {
              return a.sn.mean() < b.sn.mean();
            });
}

double LvfKModel::pdf(double x) const {
  double sum = 0.0;
  for (const Component& c : components_) sum += c.weight * c.sn.pdf(x);
  return sum;
}

double LvfKModel::log_pdf(double x) const {
  double lse = -std::numeric_limits<double>::infinity();
  for (const Component& c : components_) {
    if (c.weight <= 0.0) continue;
    lse = stats::log_sum_exp(lse, std::log(c.weight) + c.sn.log_pdf(x));
  }
  return lse;
}

double LvfKModel::cdf(double x) const {
  double sum = 0.0;
  for (const Component& c : components_) sum += c.weight * c.sn.cdf(x);
  return sum;
}

void LvfKModel::pdf_batch(std::span<const double> x,
                          std::span<double> out) const {
  const std::size_t n = x.size();
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n), 0.0);
  std::vector<double> buf(n);
  // Accumulate in component order so the sums match pdf() bitwise on
  // the scalar tier.
  for (const Component& c : components_) {
    c.sn.pdf(x, buf);
    for (std::size_t i = 0; i < n; ++i) out[i] += c.weight * buf[i];
  }
}

void LvfKModel::cdf_batch(std::span<const double> x,
                          std::span<double> out) const {
  const std::size_t n = x.size();
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n), 0.0);
  std::vector<double> buf(n);
  for (const Component& c : components_) {
    c.sn.cdf(x, buf);
    for (std::size_t i = 0; i < n; ++i) out[i] += c.weight * buf[i];
  }
}

double LvfKModel::quantile(double p) const {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Component& c : components_) {
    lo = std::min(lo, c.sn.quantile(1e-12));
    hi = std::max(hi, c.sn.quantile(1.0 - 1e-12));
  }
  const auto f = [&](double x) { return cdf(x) - p; };
  return stats::bisect_root(f, lo, hi, 1e-13 * std::max(stddev(), 1e-30)).x;
}

double LvfKModel::mean() const {
  double m = 0.0;
  for (const Component& c : components_) m += c.weight * c.sn.mean();
  return m;
}

double LvfKModel::stddev() const {
  const double mu = mean();
  double var = 0.0;
  for (const Component& c : components_) {
    const double d = c.sn.mean() - mu;
    var += c.weight * (c.sn.variance() + d * d);
  }
  return std::sqrt(var);
}

double LvfKModel::skewness() const {
  const double mu = mean();
  double m2 = 0.0, m3 = 0.0;
  for (const Component& c : components_) {
    const double d = c.sn.mean() - mu;
    const double var = c.sn.variance();
    const double sk3 = c.sn.skewness() * var * c.sn.stddev();
    m2 += c.weight * (var + d * d);
    m3 += c.weight * (sk3 + 3.0 * d * var + d * d * d);
  }
  return (m2 > 0.0) ? m3 / (m2 * std::sqrt(m2)) : 0.0;
}

double LvfKModel::sample(stats::Rng& rng) const {
  double u = rng.uniform();
  for (const Component& c : components_) {
    if (u < c.weight) return c.sn.sample(rng);
    u -= c.weight;
  }
  return components_.back().sn.sample(rng);
}

double LvfKModel::log_likelihood(const WeightedData& data) const {
  // Batch each positive-weight component's log-pdf once, then combine
  // per sample in the same component order as log_pdf().
  const std::size_t n = data.size();
  std::vector<std::vector<double>> lp;
  std::vector<double> lw;
  for (const Component& c : components_) {
    if (c.weight <= 0.0) continue;
    lp.emplace_back(n);
    c.sn.log_pdf(data.x, lp.back());
    lw.push_back(std::log(c.weight));
  }
  double ll = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double lse = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < lp.size(); ++j) {
      lse = stats::log_sum_exp(lse, lw[j] + lp[j][i]);
    }
    ll += data.w[i] * lse;
  }
  return ll;
}

double LvfKModel::bic(const WeightedData& data) const {
  const double p =
      4.0 * static_cast<double>(components_.size()) - 1.0;
  return -2.0 * log_likelihood(data) +
         p * std::log(std::max(data.total_weight, 1.0));
}

namespace {

struct KEmState {
  std::vector<double> weights;
  std::vector<stats::SkewNormal> comps;
  EmReport report;
  bool valid = false;
};

// K-means + per-cluster method of moments initialization.
std::optional<KEmState> kmeans_init_k(const WeightedData& data,
                                      const stats::Moments& global,
                                      std::size_t k, std::uint64_t seed) {
  stats::Rng rng(seed);
  const stats::KMeansResult km = stats::kmeans_1d(data.x, k, rng, {}, data.w);
  if (km.centers.size() != k) return std::nullopt;
  KEmState state;
  state.weights.resize(k);
  std::vector<std::vector<double>> cluster_w(k,
                                             std::vector<double>(data.size()));
  std::vector<double> wsum(k, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    cluster_w[km.assignment[i]][i] = data.w[i];
    wsum[km.assignment[i]] += data.w[i];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (wsum[c] <= 0.0) return std::nullopt;
    const auto mom = stats::compute_weighted_moments(data.x, cluster_w[c]);
    const double sd = (mom.stddev > 1e-6 * global.stddev)
                          ? mom.stddev
                          : 0.05 * global.stddev;
    state.comps.push_back(
        stats::SkewNormal::from_moments(mom.mean, sd, mom.skewness));
    state.weights[c] = wsum[c] / data.total_weight;
  }
  return state;
}

// Generalized EM loop over K components.
KEmState run_em_k(const WeightedData& data, KEmState state,
                  const FitOptions& options) {
  const std::size_t n = data.size();
  const std::size_t k = state.comps.size();
  std::vector<std::vector<double>> resp(k, std::vector<double>(n));
  std::vector<double> comp_w(n);
  double prev_ll = -std::numeric_limits<double>::infinity();
  constexpr double kWeightFloor = 1e-6;

  for (std::size_t iter = 0; iter < options.em_max_iterations; ++iter) {
    state.report.iterations = iter + 1;

    // E-step: component log-densities in K batch passes, then the
    // K-way log-sum-exp combine kept scalar-sequential per sample (the
    // reduction order is part of the numeric contract).
    double ll = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      state.comps[c].log_pdf(data.x, resp[c]);
    }
    std::vector<double> lw(k);
    for (std::size_t c = 0; c < k; ++c) {
      lw[c] = std::log(std::max(state.weights[c], 1e-300));
    }
    for (std::size_t i = 0; i < n; ++i) {
      double lse = -std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double term = lw[c] + resp[c][i];
        resp[c][i] = term;
        lse = stats::log_sum_exp(lse, term);
      }
      for (std::size_t c = 0; c < k; ++c) {
        resp[c][i] = std::exp(resp[c][i] - lse);
      }
      ll += data.w[i] * lse;
    }
    state.report.log_likelihood = ll;

    // M-step: weights closed-form, components by weighted MLE.
    bool collapsed = false;
    for (std::size_t c = 0; c < k; ++c) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        comp_w[i] = data.w[i] * resp[c][i];
        sum += comp_w[i];
      }
      state.weights[c] = sum / data.total_weight;
      if (state.weights[c] < kWeightFloor) {
        collapsed = true;
        continue;
      }
      const auto next = stats::SkewNormal::fit_weighted_mle(
          data.x, comp_w, &state.comps[c], options.mstep_evaluations);
      if (next) state.comps[c] = *next;
    }
    if (collapsed) {
      state.report.collapsed = true;
      break;
    }
    if (std::isfinite(prev_ll) &&
        std::fabs(ll - prev_ll) <=
            options.em_tolerance * (std::fabs(prev_ll) + 1.0)) {
      state.report.converged = true;
      break;
    }
    prev_ll = ll;
  }
  state.valid = true;
  return state;
}

}  // namespace

std::optional<LvfKModel> LvfKModel::fit(std::span<const double> samples,
                                        std::size_t k,
                                        const FitOptions& options,
                                        EmReport* report) {
  const stats::Moments global = stats::compute_moments(samples);
  if (global.count < 4 * k || !(global.stddev > 0.0)) return std::nullopt;
  return fit_weighted(make_weighted_data(samples, options), k, options,
                      report);
}

std::optional<LvfKModel> LvfKModel::fit_weighted(const WeightedData& data,
                                                 std::size_t k,
                                                 const FitOptions& options,
                                                 EmReport* report) {
  const stats::Moments global =
      stats::compute_weighted_moments(data.x, data.w);
  if (k == 0 || data.size() < 4 * k || !(global.stddev > 0.0)) {
    return std::nullopt;
  }

  if (k == 1) {
    // Degenerate case: the plain LVF moment fit.
    std::vector<Component> single;
    single.push_back({1.0, stats::SkewNormal::from_moments(
                               global.mean, global.stddev,
                               global.skewness)});
    if (report != nullptr) {
      *report = EmReport{1, 0.0, true, false};
    }
    return LvfKModel(std::move(single));
  }

  // Multi-start: k-means location split always; for K = 2 also the
  // same-center width split (scale mixtures defeat location-based
  // k-means — see Lvf2Model). Short bursts, best likelihood continues.
  std::vector<KEmState> starts;
  if (auto init = kmeans_init_k(data, global, k, options.seed)) {
    starts.push_back(std::move(*init));
  }
  if (k == 2) {
    KEmState width;
    width.weights = {0.5, 0.5};
    width.comps.push_back(stats::SkewNormal::from_moments(
        global.mean, 0.55 * global.stddev, 0.0));
    width.comps.push_back(stats::SkewNormal::from_moments(
        global.mean, 1.45 * global.stddev, global.skewness));
    starts.push_back(std::move(width));
  }
  if (starts.empty()) return std::nullopt;

  FitOptions burst_options = options;
  burst_options.em_max_iterations =
      std::min<std::size_t>(8, options.em_max_iterations);
  std::optional<KEmState> best;
  for (KEmState& start : starts) {
    KEmState run = run_em_k(data, std::move(start), burst_options);
    if (!run.valid) continue;
    if (!best || run.report.log_likelihood > best->report.log_likelihood) {
      best = std::move(run);
    }
  }
  if (!best) return std::nullopt;
  KEmState state = std::move(*best);
  if (!state.report.converged && !state.report.collapsed &&
      options.em_max_iterations > burst_options.em_max_iterations) {
    FitOptions rest = options;
    rest.em_max_iterations =
        options.em_max_iterations - burst_options.em_max_iterations;
    const std::size_t burst_iters = state.report.iterations;
    state = run_em_k(data, std::move(state), rest);
    state.report.iterations += burst_iters;
  }
  if (report != nullptr) *report = state.report;
  if (!state.valid) return std::nullopt;

  // Drop collapsed components (effective K may shrink).
  std::vector<Component> components;
  for (std::size_t c = 0; c < state.comps.size(); ++c) {
    if (state.weights[c] >= 1e-6) {
      components.push_back({state.weights[c], state.comps[c]});
    }
  }
  if (components.empty()) return std::nullopt;
  LvfKModel model(std::move(components));

  // Affine moment pinning, as in Lvf2Model::fit (DESIGN.md, 8).
  const double s_fit = model.stddev();
  if (s_fit > 0.0) {
    const double b = global.stddev / s_fit;
    const double a = global.mean - b * model.mean();
    std::vector<Component> rescaled;
    rescaled.reserve(model.components().size());
    for (const Component& c : model.components()) {
      rescaled.push_back(
          {c.weight, stats::SkewNormal(a + b * c.sn.xi(), b * c.sn.omega(),
                                       c.sn.alpha())});
    }
    model = LvfKModel(std::move(rescaled));
  }
  return model;
}

}  // namespace lvf2::core
