#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/binning.h"
#include "core/model_factory.h"
#include "core/yield.h"
#include "obs/metrics.h"

namespace lvf2::core {

double cdf_rmse(const std::function<double(double)>& model_cdf,
                const stats::EmpiricalCdf& golden, std::size_t points,
                double eps) {
  if (golden.empty() || points == 0) {
    throw std::invalid_argument("cdf_rmse: empty input");
  }
  const double lo = golden.quantile(eps);
  const double hi = golden.quantile(1.0 - eps);
  const double step =
      (points > 1) ? (hi - lo) / static_cast<double>(points - 1) : 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    const double d = model_cdf(x) - golden(x);
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(points));
}

double cdf_rmse(const TimingModel& model, const stats::EmpiricalCdf& golden,
                std::size_t points, double eps) {
  if (golden.empty() || points == 0) {
    throw std::invalid_argument("cdf_rmse: empty input");
  }
  const double lo = golden.quantile(eps);
  const double hi = golden.quantile(1.0 - eps);
  const double step =
      (points > 1) ? (hi - lo) / static_cast<double>(points - 1) : 0.0;
  std::vector<double> xs(points);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + step * static_cast<double>(i);
  }
  std::vector<double> model_cdf(points);
  model.cdf_batch(xs, model_cdf);
  double sum = 0.0;
  for (std::size_t i = 0; i < points; ++i) {
    const double d = model_cdf[i] - golden(xs[i]);
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(points));
}

double ks_distance(const std::function<double(double)>& model_cdf,
                   const stats::EmpiricalCdf& golden) {
  const auto& xs = golden.sorted_samples();
  const double n = static_cast<double>(xs.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double m = model_cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    sup = std::max({sup, std::fabs(m - lo), std::fabs(m - hi)});
  }
  return sup;
}

const TimingModel* ModelEvaluation::model(ModelKind kind) const {
  for (const auto& m : models) {
    if (m && m->kind() == kind) return m.get();
  }
  return nullptr;
}

namespace {

std::size_t index_of(ModelKind kind) {
  const auto kinds = all_model_kinds();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (kinds[i] == kind) return i;
  }
  throw std::logic_error("unknown ModelKind");
}

}  // namespace

const ModelErrors& ModelEvaluation::errors_of(ModelKind kind) const {
  return errors[index_of(kind)];
}

const ModelErrorReduction& ModelEvaluation::reduction_of(
    ModelKind kind) const {
  return reductions[index_of(kind)];
}

ModelEvaluation evaluate_models(std::span<const double> samples,
                                const FitOptions& options) {
  ModelEvaluation eval;
  eval.golden_moments = stats::compute_moments(samples);
  eval.models = fit_all_models(samples, options);

  const stats::EmpiricalCdf golden(samples);
  const std::vector<double> boundaries = sigma_bin_boundaries(
      eval.golden_moments.mean, eval.golden_moments.stddev);
  const std::vector<double> golden_bins =
      bin_probabilities(golden, boundaries);

  const auto kinds = all_model_kinds();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const TimingModel* m = eval.models[i].get();
    if (m == nullptr) continue;
    const std::vector<double> model_bins =
        bin_probabilities(*m, boundaries);
    eval.errors[i].binning = binning_error(model_bins, golden_bins);
    eval.errors[i].yield_3sigma = three_sigma_yield_error(*m, golden);
    eval.errors[i].cdf_rmse = cdf_rmse(*m, golden);
  }

  const ModelErrors& base = eval.errors_of(ModelKind::kLvf);
  const std::size_t count = eval.golden_moments.count;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    eval.reductions[i].binning = error_reduction(
        base.binning, eval.errors[i].binning, binning_error_floor(count));
    eval.reductions[i].yield_3sigma =
        error_reduction(base.yield_3sigma, eval.errors[i].yield_3sigma,
                        yield_error_floor(count));
    eval.reductions[i].cdf_rmse = error_reduction(
        base.cdf_rmse, eval.errors[i].cdf_rmse, cdf_rmse_floor(count));
  }

  // QoR attribution: the paper's headline metrics (for the LVF2
  // model) always land in the registry histograms, so any run of
  // evaluations yields an accuracy distribution next to the em.*
  // fit-health instruments. Same always-on policy as the counters.
  static obs::Histogram& h_rmse = obs::histogram(
      "qor.cdf_rmse", {1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1});
  static obs::Histogram& h_binning = obs::histogram(
      "qor.binning_err", {1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1});
  static obs::Histogram& h_yield = obs::histogram(
      "qor.yield_err", {1e-5, 1e-4, 1e-3, 0.01, 0.1});
  const ModelErrors& lvf2 = eval.errors_of(ModelKind::kLvf2);
  h_rmse.observe(lvf2.cdf_rmse);
  h_binning.observe(lvf2.binning);
  h_yield.observe(lvf2.yield_3sigma);
  return eval;
}

obs::ArcQor to_arc_qor(const ModelEvaluation& eval) {
  obs::ArcQor row;
  row.golden_mean = eval.golden_moments.mean;
  row.golden_stddev = eval.golden_moments.stddev;
  row.golden_skewness = eval.golden_moments.skewness;
  const auto kinds = all_model_kinds();
  row.models.reserve(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    obs::ModelQor m;
    m.model = to_string(kinds[i]);
    m.binning = eval.errors[i].binning;
    m.yield_3sigma = eval.errors[i].yield_3sigma;
    m.cdf_rmse = eval.errors[i].cdf_rmse;
    m.x_binning = eval.reductions[i].binning;
    m.x_yield_3sigma = eval.reductions[i].yield_3sigma;
    m.x_cdf_rmse = eval.reductions[i].cdf_rmse;
    row.models.push_back(std::move(m));
  }
  return row;
}

}  // namespace lvf2::core
