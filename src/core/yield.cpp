#include "core/yield.h"

#include <algorithm>
#include <cmath>

namespace lvf2::core {

namespace {

double three_sigma_point(const stats::EmpiricalCdf& golden) {
  const stats::Moments m = stats::compute_moments(golden.sorted_samples());
  return m.mean + 3.0 * m.stddev;
}

}  // namespace

double three_sigma_yield(const TimingModel& model,
                         const stats::EmpiricalCdf& golden) {
  return model.cdf(three_sigma_point(golden));
}

double three_sigma_yield(const stats::EmpiricalCdf& golden) {
  return golden(three_sigma_point(golden));
}

double three_sigma_yield_error(const TimingModel& model,
                               const stats::EmpiricalCdf& golden) {
  return std::fabs(three_sigma_yield(model, golden) -
                   three_sigma_yield(golden));
}

double window_yield(const std::function<double(double)>& cdf, double t_min,
                    double t_max) {
  if (!(t_max > t_min)) return 0.0;
  return std::clamp(cdf(t_max) - cdf(t_min), 0.0, 1.0);
}

}  // namespace lvf2::core
