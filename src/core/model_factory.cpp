#include "core/model_factory.h"

#include "exec/pool.h"

#include "core/lesn_model.h"
#include "core/lvf2_model.h"
#include "core/lvf_model.h"
#include "core/lvfk_model.h"
#include "core/norm2_model.h"

namespace lvf2::core {

namespace {

template <typename Model>
std::unique_ptr<TimingModel> wrap(std::optional<Model> fitted) {
  if (!fitted) return nullptr;
  return std::make_unique<Model>(std::move(*fitted));
}

}  // namespace

std::unique_ptr<TimingModel> fit_model(ModelKind kind,
                                       std::span<const double> samples,
                                       const FitOptions& options) {
  switch (kind) {
    case ModelKind::kLvf:
      return wrap(LvfModel::fit(samples));
    case ModelKind::kNorm2:
      return wrap(Norm2Model::fit(samples, options));
    case ModelKind::kLesn:
      return wrap(LesnModel::fit(samples));
    case ModelKind::kLvf2:
      return wrap(Lvf2Model::fit(samples, options));
    case ModelKind::kLvfK:
      // Default extension order for the factory path; use
      // LvfKModel::fit directly to choose K.
      return wrap(LvfKModel::fit(samples, 3, options));
  }
  return nullptr;
}

std::unique_ptr<TimingModel> refit_model(ModelKind kind,
                                         const stats::GridPdf& pdf,
                                         const FitOptions& options) {
  if (pdf.empty()) return nullptr;
  stats::Moments moments;
  moments.count = pdf.size();
  moments.mean = pdf.mean();
  moments.stddev = pdf.stddev();
  moments.skewness = pdf.skewness();
  moments.kurtosis = pdf.kurtosis();
  if (!(moments.stddev > 0.0)) return nullptr;
  switch (kind) {
    case ModelKind::kLvf:
      return std::make_unique<LvfModel>(LvfModel::from_moments(
          {moments.mean, moments.stddev, moments.skewness}));
    case ModelKind::kLesn:
      return wrap(LesnModel::fit_moments(moments, pdf.lo() > 0.0));
    case ModelKind::kNorm2:
      return wrap(Norm2Model::fit_weighted(make_weighted_data(pdf), options));
    case ModelKind::kLvf2:
      return wrap(Lvf2Model::fit_weighted(make_weighted_data(pdf), options));
    case ModelKind::kLvfK:
      return wrap(
          LvfKModel::fit_weighted(make_weighted_data(pdf), 3, options));
  }
  return nullptr;
}

std::vector<std::unique_ptr<TimingModel>> fit_all_models(
    std::span<const double> samples, const FitOptions& options) {
  // The four fits are independent (each is a pure function of the
  // samples and options), so they fan out across the pool; slot
  // writes keep the kind ordering, making the result identical to a
  // serial run. Cuts the per-entry QoR attribution price ~4x.
  const auto kinds = all_model_kinds();
  return exec::parallel_map<std::unique_ptr<TimingModel>>(
      kinds.size(),
      [&](std::size_t i) { return fit_model(kinds[i], samples, options); });
}

}  // namespace lvf2::core
