#include "core/lvf2_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/cancel.h"
#include "obs/obs.h"
#include "robust/faults.h"
#include "simd/simd.h"
#include "stats/descriptive.h"
#include "stats/kmeans.h"
#include "stats/optimize.h"
#include "stats/special_functions.h"

namespace lvf2::core {

Lvf2Model::Lvf2Model(double lambda, const stats::SkewNormal& first,
                     const stats::SkewNormal& second)
    : lambda_(lambda), first_(first), second_(second) {
  if (!(lambda >= 0.0 && lambda <= 1.0)) {
    throw std::invalid_argument("Lvf2Model: lambda must be in [0,1]");
  }
}

Lvf2Model Lvf2Model::from_lvf(const stats::SkewNormal& lvf) {
  return Lvf2Model(0.0, lvf, lvf);
}

Lvf2Model Lvf2Model::from_parameters(const Lvf2Parameters& p) {
  return Lvf2Model(p.lambda, stats::SkewNormal::from_moments(p.theta1),
                   stats::SkewNormal::from_moments(p.theta2));
}

Lvf2Parameters Lvf2Model::parameters() const {
  return Lvf2Parameters{lambda_, first_.to_moments(), second_.to_moments()};
}

double Lvf2Model::pdf(double x) const {
  return (1.0 - lambda_) * first_.pdf(x) + lambda_ * second_.pdf(x);
}

double Lvf2Model::log_pdf(double x) const {
  if (lambda_ <= 0.0) return first_.log_pdf(x);
  if (lambda_ >= 1.0) return second_.log_pdf(x);
  return stats::log_sum_exp(std::log(1.0 - lambda_) + first_.log_pdf(x),
                            std::log(lambda_) + second_.log_pdf(x));
}

double Lvf2Model::cdf(double x) const {
  return (1.0 - lambda_) * first_.cdf(x) + lambda_ * second_.cdf(x);
}

void Lvf2Model::pdf_batch(std::span<const double> x,
                          std::span<double> out) const {
  std::vector<double> buf(x.size());
  first_.pdf(x, out);
  second_.pdf(x, buf);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (1.0 - lambda_) * out[i] + lambda_ * buf[i];
  }
}

void Lvf2Model::cdf_batch(std::span<const double> x,
                          std::span<double> out) const {
  std::vector<double> buf(x.size());
  first_.cdf(x, out);
  second_.cdf(x, buf);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (1.0 - lambda_) * out[i] + lambda_ * buf[i];
  }
}

double Lvf2Model::quantile(double p) const {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  const double lo = std::min(first_.quantile(1e-12), second_.quantile(1e-12));
  const double hi = std::max(first_.quantile(1.0 - 1e-12),
                             second_.quantile(1.0 - 1e-12));
  const auto f = [&](double x) { return cdf(x) - p; };
  return stats::bisect_root(f, lo, hi, 1e-13 * std::max(stddev(), 1e-30)).x;
}

double Lvf2Model::mean() const {
  return (1.0 - lambda_) * first_.mean() + lambda_ * second_.mean();
}

double Lvf2Model::stddev() const {
  const double mu = mean();
  const double d1 = first_.mean() - mu;
  const double d2 = second_.mean() - mu;
  const double var = (1.0 - lambda_) * (first_.variance() + d1 * d1) +
                     lambda_ * (second_.variance() + d2 * d2);
  return std::sqrt(var);
}

double Lvf2Model::skewness() const {
  // Third central moment of a mixture from component central moments:
  //   m3 = sum_k w_k (m3_k + 3 d_k var_k + d_k^3),  d_k = mu_k - mu.
  const double mu = mean();
  const double w[2] = {1.0 - lambda_, lambda_};
  const stats::SkewNormal* comp[2] = {&first_, &second_};
  double m2 = 0.0, m3 = 0.0;
  for (int k = 0; k < 2; ++k) {
    const double d = comp[k]->mean() - mu;
    const double var = comp[k]->variance();
    const double sk3 = comp[k]->skewness() * var * comp[k]->stddev();
    m2 += w[k] * (var + d * d);
    m3 += w[k] * (sk3 + 3.0 * d * var + d * d * d);
  }
  return (m2 > 0.0) ? m3 / (m2 * std::sqrt(m2)) : 0.0;
}

double Lvf2Model::sample(stats::Rng& rng) const {
  return (rng.uniform() < lambda_) ? second_.sample(rng) : first_.sample(rng);
}

double Lvf2Model::log_likelihood(const WeightedData& data) const {
  const std::size_t n = data.size();
  std::vector<double> lp1(n);
  if (lambda_ <= 0.0 || lambda_ >= 1.0) {
    // Single active component: one batch log-pdf pass.
    const stats::SkewNormal& active = (lambda_ >= 1.0) ? second_ : first_;
    active.log_pdf(data.x, lp1);
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) ll += data.w[i] * lp1[i];
    return ll;
  }
  std::vector<double> lp2(n), resp(n), lse(n);
  first_.log_pdf(data.x, lp1);
  second_.log_pdf(data.x, lp2);
  simd::em_responsibilities(std::log(1.0 - lambda_), std::log(lambda_), lp1,
                            lp2, resp, lse);
  double ll = 0.0;
  for (std::size_t i = 0; i < n; ++i) ll += data.w[i] * lse[i];
  return ll;
}

namespace {

// One EM initialization: a weight plus two starting components.
struct EmInit {
  double lambda = 0.5;
  stats::SkewNormal comp[2];
};

// K-means partition + method of moments per group (paper Section
// 3.2) — the location-split initialization.
std::optional<EmInit> kmeans_init(const WeightedData& data,
                                  const stats::Moments& global,
                                  std::uint64_t seed) {
  stats::Rng rng(seed);
  const stats::KMeansResult km =
      stats::kmeans_1d(data.x, 2, rng, {}, data.w);
  if (km.centers.size() != 2) return std::nullopt;
  const std::size_t n = data.size();
  std::vector<double> cluster_w[2];
  for (int c = 0; c < 2; ++c) cluster_w[c].assign(n, 0.0);
  double wsum[2] = {0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = km.assignment[i];
    cluster_w[c][i] = data.w[i];
    wsum[c] += data.w[i];
  }
  if (wsum[0] <= 0.0 || wsum[1] <= 0.0) return std::nullopt;
  EmInit init;
  for (int c = 0; c < 2; ++c) {
    const auto mom = stats::compute_weighted_moments(data.x, cluster_w[c]);
    if (mom.stddev > 1e-6 * global.stddev) {
      init.comp[c] = stats::SkewNormal::from_moments(mom.mean, mom.stddev,
                                                     mom.skewness);
    } else {
      init.comp[c] = stats::SkewNormal::from_moments(
          mom.mean, 0.05 * global.stddev, 0.0);
    }
  }
  init.lambda = wsum[1] / (wsum[0] + wsum[1]);
  return init;
}

// Same-center width-split initialization: both components at the
// global mean with different spreads. Location-based k-means cannot
// separate scale mixtures (the paper's "Kurtosis" scenario, Fig.
// 3(e)); this start lets EM find them.
EmInit width_split_init(const stats::Moments& global) {
  EmInit init;
  init.lambda = 0.5;
  init.comp[0] = stats::SkewNormal::from_moments(
      global.mean, 0.55 * global.stddev, 0.0);
  init.comp[1] = stats::SkewNormal::from_moments(
      global.mean, 1.45 * global.stddev, global.skewness);
  return init;
}

// Tail-split initialization: bulk vs upper tail. Helps low-weight
// minority modes riding on a dominant component (the paper's "Minor
// Saddle" scenario, Fig. 3(d)) where k-means balances cluster sizes
// too aggressively.
std::optional<EmInit> tail_split_init(const WeightedData& data,
                                      const stats::Moments& global,
                                      double tail_fraction) {
  // Weighted quantile of the binned data.
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return data.x[a] < data.x[b];
  });
  const double cut_weight = (1.0 - tail_fraction) * data.total_weight;
  std::vector<double> bulk_w(data.size(), 0.0), tail_w(data.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i : order) {
    if (acc < cut_weight) {
      bulk_w[i] = data.w[i];
    } else {
      tail_w[i] = data.w[i];
    }
    acc += data.w[i];
  }
  const auto bulk = stats::compute_weighted_moments(data.x, bulk_w);
  const auto tail = stats::compute_weighted_moments(data.x, tail_w);
  if (!(bulk.stddev > 1e-9 * global.stddev) ||
      !(tail.stddev > 1e-9 * global.stddev)) {
    return std::nullopt;
  }
  EmInit init;
  init.lambda = tail_fraction;
  init.comp[0] =
      stats::SkewNormal::from_moments(bulk.mean, bulk.stddev, bulk.skewness);
  init.comp[1] =
      stats::SkewNormal::from_moments(tail.mean, tail.stddev, tail.skewness);
  return init;
}

struct EmRun {
  double lambda = 0.0;
  stats::SkewNormal comp[2];
  EmReport report;
  bool valid = false;
};

// The EM iteration loop (paper Eq. 6-9) from a given initialization.
EmRun run_em(const WeightedData& data, const EmInit& init,
             const FitOptions& options) {
  const std::size_t n = data.size();
  EmRun run;
  run.lambda = init.lambda;
  run.comp[0] = init.comp[0];
  run.comp[1] = init.comp[1];

  std::vector<double> resp(n);       // responsibility of component 2
  std::vector<double> lp1(n), lp2(n), lse(n);  // E-step batch buffers
  std::vector<double> w1(n), w2(n);  // per-component weights
  double prev_ll = -std::numeric_limits<double>::infinity();
  std::size_t ll_decreases = 0;
  constexpr double kWeightFloor = 1e-6;

  // M-step Nelder-Mead schedule. As EM converges the M-step optimum
  // barely moves between iterations, so each component's simplex
  // starts at a step proportional to how far its previous M-step
  // actually travelled (in the optimizer's (xi, log omega, alpha)
  // coordinates) instead of the 0.25 cold-start extent. Combined with
  // the loosened stopping tolerances — the outer EM tolerance is 1e-8
  // relative, so refining each inner step to 1e-9 absolute is wasted
  // work — a warm-started refinement converges in a fraction of the
  // evaluation budget. EM monotonicity is preserved regardless of the
  // schedule: the start point is a simplex vertex, so the M-step
  // result is never worse than the previous parameters.
  stats::NelderMeadOptions mstep;
  mstep.max_evaluations = options.mstep_evaluations;
  mstep.x_tolerance = 1e-7;
  mstep.f_tolerance = 1e-9;
  double step[2] = {0.25, 0.25};
  const auto nm_coords = [](const stats::SkewNormal& c) {
    return std::array<double, 3>{c.xi(), std::log(c.omega()), c.alpha()};
  };
  const auto rel_move = [](const std::array<double, 3>& a,
                           const std::array<double, 3>& b) {
    double m = 0.0;
    for (int d = 0; d < 3; ++d) {
      m = std::max(m, std::fabs(a[d] - b[d]) /
                          std::max(std::fabs(b[d]), 1e-3));
    }
    return m;
  };
  for (std::size_t iter = 0; iter < options.em_max_iterations; ++iter) {
    // Deadline checkpoint (lvf2d): at most one more EM iteration runs
    // after a request's budget expires.
    core::checkpoint();
    run.report.iterations = iter + 1;

    if (robust::fire(robust::Fault::kEmCollapse)) {
      run.report.collapsed = true;
      return run;
    }

    // E-step (Eq. 6): posterior responsibility of each component.
    // Both component log-densities and the posterior combine run
    // through the batch kernels; the weighted log-likelihood reduction
    // stays scalar-sequential so it sums the same terms in the same
    // order as a per-sample loop.
    const double l1 = std::log(std::max(1.0 - run.lambda, 1e-300));
    const double l2 = std::log(std::max(run.lambda, 1e-300));
    run.comp[0].log_pdf(data.x, lp1);
    run.comp[1].log_pdf(data.x, lp2);
    simd::em_responsibilities(l1, l2, lp1, lp2, resp, lse);
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) ll += data.w[i] * lse[i];
    if (robust::fire(robust::Fault::kEmOscillate)) {
      ll += ((iter % 2 == 0) ? -0.5 : 0.5) * (std::fabs(ll) + 1.0);
    }
    run.report.log_likelihood = ll;
    obs::trace_counter("em.loglik", ll);

    // EM raises the binned likelihood monotonically up to M-step
    // optimizer noise; a *large* repeated decrease means the surface
    // has gone numerically pathological (unbounded-likelihood spikes,
    // oscillation). Bail to the fallback chain instead of looping.
    if (std::isfinite(prev_ll) &&
        ll < prev_ll - 0.01 * (std::fabs(prev_ll) + 1.0)) {
      if (++ll_decreases >= 3) {
        static obs::Counter& oscillations =
            obs::counter("robust.em.oscillation_detected");
        oscillations.add(1);
        run.report.oscillated = true;
        run.report.collapsed = true;
        return run;
      }
    }
    if (!std::isfinite(ll)) {
      run.report.collapsed = true;
      return run;
    }

    // M-step (Eq. 9): lambda closed-form, components by weighted MLE.
    double sum2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w2[i] = data.w[i] * resp[i];
      w1[i] = data.w[i] - w2[i];
      sum2 += w2[i];
    }
    run.lambda = sum2 / data.total_weight;
    if (run.lambda < kWeightFloor || run.lambda > 1.0 - kWeightFloor) {
      run.report.collapsed = true;
      return run;
    }
    mstep.initial_step = step[0];
    const auto next1 =
        stats::SkewNormal::fit_weighted_mle(data.x, w1, &run.comp[0], mstep);
    mstep.initial_step = step[1];
    const auto next2 =
        stats::SkewNormal::fit_weighted_mle(data.x, w2, &run.comp[1], mstep);
    if (!next1 || !next2) {
      run.report.collapsed = true;
      return run;
    }
    step[0] = std::clamp(
        8.0 * rel_move(nm_coords(*next1), nm_coords(run.comp[0])), 0.002,
        0.25);
    step[1] = std::clamp(
        8.0 * rel_move(nm_coords(*next2), nm_coords(run.comp[1])), 0.002,
        0.25);
    run.comp[0] = *next1;
    run.comp[1] = *next2;

    if (std::isfinite(prev_ll) &&
        std::fabs(ll - prev_ll) <=
            options.em_tolerance * (std::fabs(prev_ll) + 1.0) &&
        !robust::fire(robust::Fault::kEmExhaust)) {
      run.report.converged = true;
      break;
    }
    prev_ll = ll;
  }
  run.valid = true;
  return run;
}

// Folds one finished fit into the process metrics registry. All
// instruments are created on the first fit so a metrics dump always
// carries the full em.* set, zeros included.
void record_em_metrics(const EmReport& report) {
  static obs::Counter& fits = obs::counter("em.fits");
  static obs::Counter& iterations = obs::counter("em.iterations");
  static obs::Counter& nonconverged = obs::counter("em.nonconverged");
  static obs::Counter& collapsed = obs::counter("em.collapsed");
  static obs::Histogram& iter_hist = obs::histogram(
      "em.iterations.per_fit", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  fits.add(1);
  iterations.add(report.iterations);
  if (!report.converged) {
    nonconverged.add(1);
    // Accepting a non-converged fit is itself a (mild) downgrade; the
    // counter is created lazily so clean traces stay unchanged.
    obs::counter("robust.downgrade.em_nonconverged").add(1);
  }
  if (report.collapsed) collapsed.add(1);
  iter_hist.observe(static_cast<double>(report.iterations));
}

// Tags a report with the rung of the degradation chain it landed on
// and counts it. Counters are created lazily: a run that never
// degrades registers no robust.downgrade.* instruments.
void record_downgrade(EmReport& rep, FitDegradation degradation) {
  rep.degradation = degradation;
  obs::counter(std::string("robust.downgrade.") + to_string(degradation))
      .add(1);
}

}  // namespace

std::optional<Lvf2Model> Lvf2Model::fit(std::span<const double> samples,
                                        const FitOptions& options,
                                        EmReport* report) {
  EmReport scratch;
  EmReport& rep = (report != nullptr) ? *report : scratch;
  rep = EmReport{};

  // Rung 0 of the degradation chain: validate the sample set. Clean
  // data — the overwhelmingly common case — passes through without a
  // copy, so the fit is bit-identical to an unguarded one.
  std::size_t nonfinite = 0;
  for (double x : samples) {
    if (!std::isfinite(x)) ++nonfinite;
  }
  std::vector<double> cleaned;
  std::span<const double> use = samples;
  if (nonfinite > 0) {
    cleaned.reserve(samples.size() - nonfinite);
    for (double x : samples) {
      if (std::isfinite(x)) cleaned.push_back(x);
    }
    obs::counter("robust.samples.nonfinite_dropped").add(nonfinite);
    use = cleaned;
  }

  // Winsorize absurd outliers at quantile fences 50 IQRs out: clean
  // Monte-Carlo data never reaches them (~67 sigma for a normal), a
  // poisoned spike always does. An unbounded spike would otherwise
  // wreck the binned-likelihood grid for every honest sample.
  std::size_t clipped = 0;
  if (use.size() >= 8) {
    std::vector<double> sorted(use.begin(), use.end());
    const std::size_t q1i = sorted.size() / 4;
    const std::size_t q3i = (3 * sorted.size()) / 4;
    std::nth_element(sorted.begin(), sorted.begin() + q1i, sorted.end());
    const double q1 = sorted[q1i];
    std::nth_element(sorted.begin(), sorted.begin() + q3i, sorted.end());
    const double q3 = sorted[q3i];
    const double iqr = q3 - q1;
    if (iqr > 0.0) {
      const double fence_lo = q1 - 50.0 * iqr;
      const double fence_hi = q3 + 50.0 * iqr;
      bool any_outlier = false;
      for (double x : use) {
        if (x < fence_lo || x > fence_hi) {
          any_outlier = true;
          break;
        }
      }
      if (any_outlier) {
        if (cleaned.empty()) cleaned.assign(use.begin(), use.end());
        for (double& x : cleaned) {
          if (x < fence_lo) {
            x = fence_lo;
            ++clipped;
          } else if (x > fence_hi) {
            x = fence_hi;
            ++clipped;
          }
        }
        obs::counter("robust.samples.outlier_clipped").add(clipped);
        use = cleaned;
      }
    }
  }

  const stats::Moments global = stats::compute_moments(use);
  if (global.count >= 8 && global.stddev > 0.0) {
    auto result = fit_weighted(make_weighted_data(use, options), options,
                               report);
    // fit_weighted reset the report; restore sanitization accounting.
    rep.dropped_samples = nonfinite;
    rep.clipped_samples = clipped;
    return result;
  }

  // Degenerate data: walk the rest of the chain instead of failing.
  rep.dropped_samples = nonfinite;
  rep.clipped_samples = clipped;
  if (global.count == 0) {
    record_downgrade(rep, FitDegradation::kRejected);
    return std::nullopt;
  }
  if (global.stddev > 0.0) {
    // Too few samples for EM but a real spread: lambda = 0 single
    // skew-normal by method of moments (paper Eq. 10 target).
    record_downgrade(rep, FitDegradation::kSingleSn);
    return from_lvf(stats::SkewNormal::from_moments(
        global.mean, global.stddev, global.skewness));
  }
  // Constant / near-constant data: moment-matched point mass.
  record_downgrade(rep, FitDegradation::kMomentNormal);
  return from_lvf(stats::SkewNormal::from_moments(global.mean, 0.0, 0.0));
}

std::optional<Lvf2Model> Lvf2Model::fit_weighted(const WeightedData& data,
                                                 const FitOptions& options,
                                                 EmReport* report) {
  obs::TraceSpan span("em.fit", [&] {
    return obs::ArgsBuilder().add("points", data.size()).str();
  });
  EmReport scratch;
  EmReport& rep = (report != nullptr) ? *report : scratch;
  rep = EmReport{};

  const stats::Moments global =
      stats::compute_weighted_moments(data.x, data.w);
  if (data.size() < 8 || !(global.stddev > 0.0)) {
    // Degenerate weighted data (e.g. a refit of a collapsed propagated
    // PDF): walk the degradation chain instead of failing outright.
    if (data.size() == 0 || !std::isfinite(global.mean)) {
      record_downgrade(rep, FitDegradation::kRejected);
      return std::nullopt;
    }
    if (global.stddev > 0.0 && std::isfinite(global.stddev)) {
      record_downgrade(rep, FitDegradation::kSingleSn);
      return from_lvf(stats::SkewNormal::from_moments(
          global.mean, global.stddev, global.skewness));
    }
    record_downgrade(rep, FitDegradation::kMomentNormal);
    return from_lvf(stats::SkewNormal::from_moments(global.mean, 0.0, 0.0));
  }

  const auto fallback_sn = stats::SkewNormal::from_moments(
      global.mean, global.stddev, global.skewness);

  // Multi-start EM: the k-means location split plus the same-center
  // width split; the best final likelihood wins.
  std::vector<EmInit> inits;
  if (auto km = kmeans_init(data, global, options.seed)) {
    inits.push_back(*km);
  }
  inits.push_back(width_split_init(global));
  if (auto tail = tail_split_init(data, global, 0.15)) {
    inits.push_back(*tail);
  }
  static obs::Counter& em_restarts = obs::counter("em.restarts");
  em_restarts.add(inits.size());

  // Staged multi-start: a short EM burst per initialization, then the
  // remaining iteration budget on the best burst only. EM raises the
  // likelihood monotonically, so the post-burst ranking is a sound
  // pruning heuristic at ~1/3 the cost of full multi-start.
  const std::size_t burst_iters =
      std::min<std::size_t>(8, options.em_max_iterations);
  FitOptions burst_options = options;
  burst_options.em_max_iterations = burst_iters;
  std::optional<EmRun> best;
  for (const EmInit& init : inits) {
    EmRun run = run_em(data, init, burst_options);
    if (!run.valid) continue;
    if (!best || run.report.log_likelihood > best->report.log_likelihood) {
      best = std::move(run);
    }
  }
  if (best && !best->report.converged &&
      options.em_max_iterations > burst_iters) {
    EmInit continuation;
    continuation.lambda = best->lambda;
    continuation.comp[0] = best->comp[0];
    continuation.comp[1] = best->comp[1];
    FitOptions rest_options = options;
    rest_options.em_max_iterations = options.em_max_iterations - burst_iters;
    EmRun final_run = run_em(data, continuation, rest_options);
    if (final_run.valid) {
      final_run.report.iterations += burst_iters;
      best = std::move(final_run);
    }
  }

  if (!best) {
    rep.collapsed = true;
    record_downgrade(rep, FitDegradation::kSingleSn);
    record_em_metrics(rep);
    return from_lvf(fallback_sn);
  }
  rep = best->report;

  // Canonical order: component 1 has the smaller mean, so LVF-style
  // consumers that read only component 1 see the dominant early mode.
  if (best->comp[0].mean() > best->comp[1].mean()) {
    std::swap(best->comp[0], best->comp[1]);
    best->lambda = 1.0 - best->lambda;
  }
  Lvf2Model model(std::clamp(best->lambda, 0.0, 1.0), best->comp[0],
                  best->comp[1]);

  // Affine moment correction: pin the mixture mean / sigma to the
  // sample moments. MLE leaves O(eps) first-moment mismatches that
  // accumulate coherently under SSTA convolution (they would
  // eventually dominate the CLT-washed shape advantage); moment
  // pinning is also what production characterization flows do.
  {
    const double m_fit = model.mean();
    const double s_fit = model.stddev();
    if (s_fit > 0.0 && std::isfinite(m_fit)) {
      const double b = global.stddev / s_fit;
      const double a = global.mean - b * m_fit;
      const auto rescale = [&](const stats::SkewNormal& sn) {
        return stats::SkewNormal(a + b * sn.xi(), b * sn.omega(),
                                 sn.alpha());
      };
      model = Lvf2Model(model.lambda(), rescale(model.component1()),
                        rescale(model.component2()));
    }
  }

  // Guard against EM landing below the single-SN likelihood (rare,
  // e.g. truly unimodal Gaussian-like data): keep the better of the
  // mixture and the plain LVF fit.
  const Lvf2Model single = from_lvf(fallback_sn);
  if (single.log_likelihood(data) > model.log_likelihood(data)) {
    rep.collapsed = true;
    record_downgrade(rep, FitDegradation::kSingleSn);
    record_em_metrics(rep);
    return single;
  }
  record_em_metrics(rep);
  return model;
}

}  // namespace lvf2::core
