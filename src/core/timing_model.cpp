#include "core/timing_model.h"

#include <array>
#include <cmath>
#include <vector>

namespace lvf2::core {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLvf:
      return "LVF";
    case ModelKind::kNorm2:
      return "Norm2";
    case ModelKind::kLesn:
      return "LESN";
    case ModelKind::kLvf2:
      return "LVF2";
    case ModelKind::kLvfK:
      return "LVFk";
  }
  return "?";
}

std::span<const ModelKind> all_model_kinds() {
  static constexpr std::array<ModelKind, 4> kAll = {
      ModelKind::kLvf2, ModelKind::kNorm2, ModelKind::kLesn, ModelKind::kLvf};
  return kAll;
}

void TimingModel::pdf_batch(std::span<const double> x,
                            std::span<double> out) const {
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = pdf(x[i]);
}

void TimingModel::cdf_batch(std::span<const double> x,
                            std::span<double> out) const {
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = cdf(x[i]);
}

stats::GridPdf TimingModel::to_grid(std::size_t points,
                                    double span_sigmas) const {
  const double mu = mean();
  const double sd = stddev();
  const double lo = mu - span_sigmas * sd;
  const double hi = mu + span_sigmas * sd;
  if (!(hi > lo) || points < 8) {
    // Degenerate span: keep from_function's validation/throw behavior.
    return stats::GridPdf::from_function([this](double x) { return pdf(x); },
                                         lo, hi, points);
  }
  // Same grid and sanitization as GridPdf::from_function, with the
  // density filled by one batch pass.
  std::vector<double> xs(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + step * static_cast<double>(i);
  }
  std::vector<double> values(points);
  pdf_batch(xs, values);
  for (double& v : values) {
    if (!(std::isfinite(v) && v > 0.0)) v = 0.0;
  }
  return stats::GridPdf::from_values(lo, hi, std::move(values));
}

}  // namespace lvf2::core
