#include "core/timing_model.h"

#include <array>

namespace lvf2::core {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLvf:
      return "LVF";
    case ModelKind::kNorm2:
      return "Norm2";
    case ModelKind::kLesn:
      return "LESN";
    case ModelKind::kLvf2:
      return "LVF2";
    case ModelKind::kLvfK:
      return "LVFk";
  }
  return "?";
}

std::span<const ModelKind> all_model_kinds() {
  static constexpr std::array<ModelKind, 4> kAll = {
      ModelKind::kLvf2, ModelKind::kNorm2, ModelKind::kLesn, ModelKind::kLvf};
  return kAll;
}

stats::GridPdf TimingModel::to_grid(std::size_t points,
                                    double span_sigmas) const {
  const double mu = mean();
  const double sd = stddev();
  const double lo = mu - span_sigmas * sd;
  const double hi = mu + span_sigmas * sd;
  return stats::GridPdf::from_function([this](double x) { return pdf(x); },
                                       lo, hi, points);
}

}  // namespace lvf2::core
