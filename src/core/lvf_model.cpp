#include "core/lvf_model.h"

namespace lvf2::core {

LvfModel LvfModel::from_moments(const stats::SnMoments& m) {
  return LvfModel(stats::SkewNormal::from_moments(m));
}

std::optional<LvfModel> LvfModel::fit(std::span<const double> samples) {
  const auto sn = stats::SkewNormal::fit_moments(samples);
  if (!sn) return std::nullopt;
  return LvfModel(*sn);
}

}  // namespace lvf2::core
