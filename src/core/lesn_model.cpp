#include "core/lesn_model.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace lvf2::core {

LesnModel::LesnModel(const stats::LogExtendedSkewNormal& lesn)
    : dist_(lesn) {}

LesnModel::LesnModel(const stats::SkewNormal& fallback) : dist_(fallback) {}

bool LesnModel::is_lesn() const {
  return std::holds_alternative<stats::LogExtendedSkewNormal>(dist_);
}

const stats::LogExtendedSkewNormal* LesnModel::lesn() const {
  return std::get_if<stats::LogExtendedSkewNormal>(&dist_);
}

std::optional<LesnModel> LesnModel::fit(std::span<const double> samples) {
  const stats::Moments m = stats::compute_moments(samples);
  if (m.count < 4 || !(m.stddev > 0.0)) return std::nullopt;
  const double min_x = *std::min_element(samples.begin(), samples.end());
  return fit_moments(m, min_x > 0.0);
}

std::optional<LesnModel> LesnModel::fit_moments(const stats::Moments& m,
                                                bool positive_support) {
  if (m.count < 4 || !(m.stddev > 0.0)) return std::nullopt;
  if (positive_support && m.mean > 0.0) {
    if (auto lesn = stats::LogExtendedSkewNormal::fit_moments(m)) {
      // Accept only if the matched moments are sane.
      const double fit_mean = lesn->mean();
      const double fit_sd = lesn->stddev();
      if (std::isfinite(fit_mean) && std::isfinite(fit_sd) &&
          std::fabs(fit_mean - m.mean) < 0.05 * m.mean &&
          fit_sd > 0.25 * m.stddev && fit_sd < 4.0 * m.stddev) {
        return LesnModel(*lesn);
      }
    }
  }
  return LesnModel(
      stats::SkewNormal::from_moments(m.mean, m.stddev, m.skewness));
}

double LesnModel::pdf(double x) const {
  return std::visit([x](const auto& d) { return d.pdf(x); }, dist_);
}

double LesnModel::cdf(double x) const {
  return std::visit([x](const auto& d) { return d.cdf(x); }, dist_);
}

void LesnModel::pdf_batch(std::span<const double> x,
                          std::span<double> out) const {
  // Only the skew-normal fallback has a batch kernel; the log-domain
  // LESN evaluates per sample (change of variables is data-dependent).
  if (const auto* sn = std::get_if<stats::SkewNormal>(&dist_)) {
    sn->pdf(x, out);
    return;
  }
  TimingModel::pdf_batch(x, out);
}

void LesnModel::cdf_batch(std::span<const double> x,
                          std::span<double> out) const {
  if (const auto* sn = std::get_if<stats::SkewNormal>(&dist_)) {
    sn->cdf(x, out);
    return;
  }
  TimingModel::cdf_batch(x, out);
}

double LesnModel::quantile(double p) const {
  return std::visit([p](const auto& d) { return d.quantile(p); }, dist_);
}

double LesnModel::mean() const {
  return std::visit([](const auto& d) { return d.mean(); }, dist_);
}

double LesnModel::stddev() const {
  return std::visit([](const auto& d) { return d.stddev(); }, dist_);
}

double LesnModel::sample(stats::Rng& rng) const {
  return std::visit([&rng](const auto& d) { return d.sample(rng); }, dist_);
}

}  // namespace lvf2::core
