#pragma once
// Unified entry point: fit any of the four compared models to a
// sample set and get it back behind the TimingModel interface.

#include <memory>
#include <span>
#include <vector>

#include "core/timing_model.h"

namespace lvf2::core {

/// Fits the model of the requested kind. Returns nullptr for
/// degenerate data (empty / constant sample sets).
std::unique_ptr<TimingModel> fit_model(ModelKind kind,
                                       std::span<const double> samples,
                                       const FitOptions& options = {});

/// Fits all four models (paper order: LVF2, Norm2, LESN, LVF).
/// Entries for models that failed to fit are nullptr.
std::vector<std::unique_ptr<TimingModel>> fit_all_models(
    std::span<const double> samples, const FitOptions& options = {});

/// Refits a model family to a tabulated distribution — the node
/// refit of block-based SSTA, which maintains each model's
/// parametric form along propagation. Moments-based families (LVF,
/// LESN) match the grid moments; the mixtures run weighted EM over
/// the grid.
std::unique_ptr<TimingModel> refit_model(ModelKind kind,
                                         const stats::GridPdf& pdf,
                                         const FitOptions& options = {});

}  // namespace lvf2::core
