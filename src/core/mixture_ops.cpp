#include "core/mixture_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lvf2::core {

namespace {

// (mean, variance, third central moment) of a skew-normal.
struct M3 {
  double mean;
  double var;
  double m3;
};

M3 moments_of(const stats::SkewNormal& sn) {
  const double var = sn.variance();
  return M3{sn.mean(), var, sn.skewness() * var * std::sqrt(var)};
}

stats::SkewNormal from_m3(const M3& m) {
  const double sd = std::sqrt(std::max(m.var, 1e-300));
  const double skew = m.m3 / (m.var * sd);
  return stats::SkewNormal::from_moments(m.mean, sd, skew);
}

}  // namespace

stats::SkewNormal convolve_skew_normals(const stats::SkewNormal& x,
                                        const stats::SkewNormal& y) {
  const M3 a = moments_of(x);
  const M3 b = moments_of(y);
  // Cumulants (= central moments through order 3) are additive for
  // independent sums.
  return from_m3(M3{a.mean + b.mean, a.var + b.var, a.m3 + b.m3});
}

stats::SkewNormal merge_skew_normals(double w1, const stats::SkewNormal& a,
                                     double w2, const stats::SkewNormal& b) {
  const double total = w1 + w2;
  const double p = (total > 0.0) ? w1 / total : 0.5;
  const double q = 1.0 - p;
  const M3 ma = moments_of(a);
  const M3 mb = moments_of(b);
  const double mean = p * ma.mean + q * mb.mean;
  const double da = ma.mean - mean;
  const double db = mb.mean - mean;
  const double var = p * (ma.var + da * da) + q * (mb.var + db * db);
  const double m3 = p * (ma.m3 + 3.0 * da * ma.var + da * da * da) +
                    q * (mb.m3 + 3.0 * db * mb.var + db * db * db);
  return from_m3(M3{mean, var, m3});
}

LvfKModel reduce_mixture(const LvfKModel& model,
                         std::size_t max_components) {
  std::vector<LvfKModel::Component> comps = model.components();
  if (max_components == 0) max_components = 1;
  while (comps.size() > max_components) {
    // Find the pair with the smallest moment-space distance,
    // weighted so that merging light components is preferred.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 1;
    const double scale = std::max(model.stddev(), 1e-300);
    for (std::size_t i = 0; i < comps.size(); ++i) {
      for (std::size_t j = i + 1; j < comps.size(); ++j) {
        const double dmu =
            (comps[i].sn.mean() - comps[j].sn.mean()) / scale;
        const double dsd =
            (comps[i].sn.stddev() - comps[j].sn.stddev()) / scale;
        const double w = comps[i].weight * comps[j].weight /
                         (comps[i].weight + comps[j].weight);
        const double cost = w * (dmu * dmu + dsd * dsd);
        if (cost < best) {
          best = cost;
          bi = i;
          bj = j;
        }
      }
    }
    LvfKModel::Component merged;
    merged.weight = comps[bi].weight + comps[bj].weight;
    merged.sn = merge_skew_normals(comps[bi].weight, comps[bi].sn,
                                   comps[bj].weight, comps[bj].sn);
    comps.erase(comps.begin() + static_cast<std::ptrdiff_t>(bj));
    comps[bi] = merged;
  }
  return LvfKModel(std::move(comps));
}

LvfKModel convolve_mixtures(const LvfKModel& x, const LvfKModel& y,
                            std::size_t max_components) {
  std::vector<LvfKModel::Component> comps;
  comps.reserve(x.components().size() * y.components().size());
  for (const auto& a : x.components()) {
    for (const auto& b : y.components()) {
      comps.push_back(
          {a.weight * b.weight, convolve_skew_normals(a.sn, b.sn)});
    }
  }
  return reduce_mixture(LvfKModel(std::move(comps)), max_components);
}

LvfKModel to_lvfk(const Lvf2Model& model) {
  std::vector<LvfKModel::Component> comps;
  if (model.lambda() < 1.0) {
    comps.push_back({1.0 - model.lambda(), model.component1()});
  }
  if (model.lambda() > 0.0) {
    comps.push_back({model.lambda(), model.component2()});
  }
  return LvfKModel(std::move(comps));
}

Lvf2Model convolve_lvf2(const Lvf2Model& x, const Lvf2Model& y) {
  const LvfKModel reduced = convolve_mixtures(to_lvfk(x), to_lvfk(y), 2);
  const auto& comps = reduced.components();
  if (comps.size() == 1) {
    return Lvf2Model::from_lvf(comps[0].sn);
  }
  return Lvf2Model(comps[1].weight, comps[0].sn, comps[1].sn);
}

}  // namespace lvf2::core
