#pragma once
// Lightweight error propagation for the recoverable paths of the
// pipeline (per-entry characterization, EM fits, Liberty number
// parsing, degenerate statistics). Unlike exceptions, a Status makes
// the failure part of the data flow: callers must decide whether to
// degrade, skip, or abort — which is what the graceful-degradation
// chain needs. Header-only and dependency-free so every layer
// (including lvf2_stats, which sits below lvf2_core in the link
// graph) can use it.

#include <string>
#include <string_view>
#include <utility>

namespace lvf2::core {

/// Coarse failure classes; the message carries the specifics. The
/// second block are the canonical serving codes (gRPC-style names):
/// a long-running daemon needs to distinguish "try again later"
/// (transient) from "this request is wrong" (permanent), so the code
/// — not the message — is the contract clients dispatch on.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,  ///< caller error (bad option, size mismatch)
  kDegenerateData,   ///< empty / constant / too-small sample set
  kNonFinite,        ///< NaN or Inf where a finite value is required
  kParseError,       ///< malformed input text
  kInternal,         ///< contained failure of a lower layer
  // Canonical serving codes (lvf2d and the cache I/O retry layer).
  kDeadlineExceeded,   ///< the request's deadline passed mid-compute
  kUnavailable,        ///< transient I/O / connection failure; retry
  kResourceExhausted,  ///< admission queue full / frame too large
  kNotFound,           ///< named cell / arc / entry does not exist
  kCancelled,          ///< caller abandoned the request (drain/shed)
};

/// Short stable name of a code ("ok", "invalid_argument", ...).
inline const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kDegenerateData: return "degenerate_data";
    case StatusCode::kNonFinite: return "non_finite";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Inverse of to_string; StatusCode::kInternal for unknown names.
/// The wire protocol carries codes by name, so both directions must
/// be stable.
inline StatusCode status_code_from_name(std::string_view name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kDegenerateData, StatusCode::kNonFinite,
        StatusCode::kParseError, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
        StatusCode::kResourceExhausted, StatusCode::kNotFound,
        StatusCode::kCancelled}) {
    if (name == to_string(code)) return code;
  }
  return StatusCode::kInternal;
}

/// True for codes a client may retry verbatim after a backoff: the
/// failure was about the server's state, not about the request.
inline bool is_transient(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

/// Success-or-error value; cheap to copy on the success path (no
/// message allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status degenerate_data(std::string message) {
    return Status(StatusCode::kDegenerateData, std::move(message));
  }
  static Status non_finite(std::string message) {
    return Status(StatusCode::kNonFinite, std::move(message));
  }
  static Status parse_error(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status deadline_exceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status resource_exhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status not_found(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  /// See is_transient(StatusCode): retryable-after-backoff failures.
  bool is_transient() const { return core::is_transient(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const {
    if (is_ok()) return "ok";
    std::string out = core::to_string(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence. Minimal by design:
/// exactly the surface the degradation chain needs, not a general
/// expected<> replacement.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)), has_value_(true) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool is_ok() const { return has_value_; }
  const Status& status() const { return status_; }

  /// Valid only when is_ok().
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& { return has_value_ ? value_ : fallback; }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace lvf2::core
