#pragma once
// Common interface of the statistical timing models compared in the
// paper: LVF (single skew-normal, the industry baseline), Norm^2
// (two-component Gaussian mixture, ref. [10]), LESN (log-extended-
// skew-normal, ref. [7]) and LVF^2 (two-component skew-normal
// mixture, the paper's contribution).

#include <memory>
#include <span>
#include <string>

#include "stats/grid_pdf.h"
#include "stats/rng.h"

namespace lvf2::core {

/// Identifies a timing model family. The first four are the paper's
/// compared models; kLvfK is the K-component extension of Section 3.3.
enum class ModelKind {
  kLvf,    ///< single skew-normal (industry baseline)
  kNorm2,  ///< two-component Gaussian mixture
  kLesn,   ///< log-extended-skew-normal (kurtosis matching)
  kLvf2,   ///< two-component skew-normal mixture (this paper)
  kLvfK,   ///< K-component skew-normal mixture (Section 3.3 extension)
};

/// Short display name ("LVF", "Norm2", "LESN", "LVF2", "LVFk").
std::string to_string(ModelKind kind);

/// The paper's four compared kinds in table order
/// (LVF2, Norm2, LESN, LVF).
std::span<const ModelKind> all_model_kinds();

/// Options shared by the model fitting routines.
struct FitOptions {
  /// Samples are compressed into this many equal-width bins before
  /// likelihood fitting (binned-likelihood EM). 0 fits raw samples.
  std::size_t likelihood_bins = 512;
  /// EM iteration cap (mixture models).
  std::size_t em_max_iterations = 80;
  /// Relative log-likelihood improvement below which EM stops. On the
  /// binned likelihood EM converges geometrically (rate ~0.95 on
  /// overlapping mixtures), so tightening this buys ll precision far
  /// below both the binning error and the Monte-Carlo sampling noise
  /// of every downstream QoR metric while costing dozens of
  /// iterations: 1e-6 relative stops within ~0.1% quantile drift of
  /// the 1e-8 fixed point at roughly half the iterations.
  double em_tolerance = 1e-6;
  /// Nelder-Mead evaluation budget per component per M-step.
  std::size_t mstep_evaluations = 220;
  /// Seed for k-means initialization (deterministic fits).
  std::uint64_t seed = 0x5eed;
};

/// A fitted univariate timing distribution model.
class TimingModel {
 public:
  virtual ~TimingModel() = default;

  virtual ModelKind kind() const = 0;
  std::string name() const { return to_string(kind()); }

  virtual double pdf(double x) const = 0;
  virtual double cdf(double x) const = 0;
  virtual double quantile(double p) const = 0;
  virtual double mean() const = 0;
  virtual double stddev() const = 0;
  virtual double sample(stats::Rng& rng) const = 0;

  /// Batch evaluation: out[i] = pdf(x[i]) / cdf(x[i]) for i <
  /// x.size() (out.size() must be >= x.size()). The base
  /// implementations loop per sample; concrete models override them
  /// with the dispatch-selected batch kernels (simd.h), which on the
  /// scalar tier reproduce the per-sample results bitwise.
  virtual void pdf_batch(std::span<const double> x,
                         std::span<double> out) const;
  virtual void cdf_batch(std::span<const double> x,
                         std::span<double> out) const;

  /// Tabulates the model on a uniform grid covering
  /// mean +/- span_sigmas * stddev, for SSTA propagation. The grid is
  /// filled with one pdf_batch pass.
  stats::GridPdf to_grid(std::size_t points = 1024,
                         double span_sigmas = 8.0) const;
};

}  // namespace lvf2::core
