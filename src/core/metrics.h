#pragma once
// Evaluation metrics (paper Section 4): binning error, 3-sigma yield
// error and CDF RMSE, each normalized as error reduction against the
// LVF baseline (Eq. 12). `ModelEvaluation` bundles a full assessment
// of the four models against one golden sample set — every table and
// figure bench in bench/ is built on it.

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/timing_model.h"
#include "obs/manifest.h"
#include "stats/descriptive.h"

namespace lvf2::core {

/// Root-mean-square error between a model CDF and the golden
/// empirical CDF, evaluated on `points` uniformly spaced points over
/// the central golden range [q(eps), q(1-eps)].
double cdf_rmse(const std::function<double(double)>& model_cdf,
                const stats::EmpiricalCdf& golden, std::size_t points = 256,
                double eps = 1e-4);

/// Batch variant: evaluates the model CDF over the whole grid with
/// one cdf_batch pass; the sum of squares stays sequential, so the
/// result matches the functional overload bitwise on the scalar
/// kernel tier.
double cdf_rmse(const TimingModel& model, const stats::EmpiricalCdf& golden,
                std::size_t points = 256, double eps = 1e-4);

/// Kolmogorov-Smirnov distance between a model CDF and the golden
/// empirical CDF (sup over golden sample points).
double ks_distance(const std::function<double(double)>& model_cdf,
                   const stats::EmpiricalCdf& golden);

/// Raw error metrics of one model against one golden sample set.
struct ModelErrors {
  double binning = 0.0;
  double yield_3sigma = 0.0;
  double cdf_rmse = 0.0;
};

/// Error-reduction multiples of one model (vs the LVF baseline).
struct ModelErrorReduction {
  double binning = 1.0;
  double yield_3sigma = 1.0;
  double cdf_rmse = 1.0;
};

/// Full four-model assessment of one golden distribution.
struct ModelEvaluation {
  /// Models in `all_model_kinds()` order (LVF2, Norm2, LESN, LVF).
  std::vector<std::unique_ptr<TimingModel>> models;
  std::array<ModelErrors, 4> errors{};
  std::array<ModelErrorReduction, 4> reductions{};
  stats::Moments golden_moments;

  const TimingModel* model(ModelKind kind) const;
  const ModelErrors& errors_of(ModelKind kind) const;
  const ModelErrorReduction& reduction_of(ModelKind kind) const;
};

/// Fits all four models to `samples` and computes every metric and
/// its error reduction vs LVF. Every evaluation also streams the
/// LVF2 raw errors into the qor.cdf_rmse / qor.binning_err /
/// qor.yield_err histograms of the process metrics registry.
ModelEvaluation evaluate_models(std::span<const double> samples,
                                const FitOptions& options = {});

/// Converts an evaluation into a run-manifest QoR row: golden
/// moments plus the four models' raw errors and error-reduction
/// multiples. Identity fields (table / cell / arc / grid indices)
/// and the EM report are the caller's to fill — they carry the
/// attribution context this layer does not have.
obs::ArcQor to_arc_qor(const ModelEvaluation& eval);

}  // namespace lvf2::core
