#pragma once
// LVF^2 — the paper's contribution (Section 3): a two-component
// weighted skew-normal mixture
//
//   f_LVF2(x | lambda, theta1, theta2) =
//       (1 - lambda) f_LVF(x | theta1) + lambda f_LVF(x | theta2)
//
// (paper Eq. 4), fitted by EM (Section 3.2): K-means + method of
// moments initialization, E-step responsibilities (Eq. 6), and an
// M-step that maximizes the expected complete-data log-likelihood
// (Eq. 7-9) by weighted skew-normal MLE per component.
//
// Backward compatibility (Section 3.3 / Eq. 10): lambda == 0 makes
// LVF^2 collapse to the plain LVF skew-normal, and `from_lvf`
// constructs exactly that.

#include <optional>

#include "core/em.h"
#include "core/timing_model.h"
#include "stats/skew_normal.h"

namespace lvf2::core {

/// Full LVF^2 parameter set in moment space, as stored in a Liberty
/// library: theta_i = (mean, stddev, skewness), plus the weight.
struct Lvf2Parameters {
  double lambda = 0.0;           ///< weight of the second component
  stats::SnMoments theta1;       ///< first skew-normal (LVF-compatible)
  stats::SnMoments theta2;       ///< second skew-normal
};

/// Two-component skew-normal mixture model.
class Lvf2Model final : public TimingModel {
 public:
  /// Direct construction; `lambda` in [0,1] weights `second`.
  Lvf2Model(double lambda, const stats::SkewNormal& first,
            const stats::SkewNormal& second);

  /// Backward compatibility (Eq. 10): an LVF^2 with lambda = 0 whose
  /// first component is the given LVF skew-normal.
  static Lvf2Model from_lvf(const stats::SkewNormal& lvf);

  /// Construction from Liberty moment-space parameters.
  static Lvf2Model from_parameters(const Lvf2Parameters& p);

  /// EM fit per paper Section 3.2, hardened by a graceful-degradation
  /// chain: non-finite samples are dropped and absurd outliers
  /// winsorized first; if EM cannot hold a mixture the fit falls back
  /// to a lambda = 0 single skew-normal (Eq. 10), then to a
  /// moment-matched point mass for constant data. Only an empty
  /// sample set returns nullopt. `report->degradation` (and the
  /// robust.downgrade.* counters) record which rung was used.
  static std::optional<Lvf2Model> fit(std::span<const double> samples,
                                      const FitOptions& options = {},
                                      EmReport* report = nullptr);

  /// EM fit directly on weighted observations (e.g. a tabulated
  /// density from block-based SSTA propagation — the family refit at
  /// each timing-graph node).
  static std::optional<Lvf2Model> fit_weighted(const WeightedData& data,
                                               const FitOptions& options = {},
                                               EmReport* report = nullptr);

  double lambda() const { return lambda_; }
  const stats::SkewNormal& component1() const { return first_; }
  const stats::SkewNormal& component2() const { return second_; }

  /// Moment-space parameters for Liberty export.
  Lvf2Parameters parameters() const;

  /// True when the model is an LVF-compatible single skew-normal.
  bool is_pure_lvf() const { return lambda_ == 0.0; }

  ModelKind kind() const override { return ModelKind::kLvf2; }
  double pdf(double x) const override;
  double log_pdf(double x) const;
  double cdf(double x) const override;
  void pdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  void cdf_batch(std::span<const double> x,
                 std::span<double> out) const override;
  double quantile(double p) const override;
  double mean() const override;
  double stddev() const override;
  double skewness() const;
  double sample(stats::Rng& rng) const override;

  /// Weighted log-likelihood of a data set under this model
  /// (paper Eq. 5 with weights).
  double log_likelihood(const WeightedData& data) const;

 private:
  double lambda_ = 0.0;
  stats::SkewNormal first_;
  stats::SkewNormal second_;
};

}  // namespace lvf2::core
