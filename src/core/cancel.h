#pragma once
// Cooperative per-request deadlines. A serving process cannot afford
// a query that silently runs for seconds past its budget, so the
// expensive inner loops (Monte-Carlo evaluation, EM iterations, SSTA
// stage propagation) call checkpoint() periodically; when the
// current thread has an armed deadline that has passed, checkpoint()
// throws CancelledError and the caller sheds to a degraded answer.
//
// Scope and cost:
//  - A deadline is thread-local, armed by a DeadlineGuard on the
//    thread that executes the request (lvf2d runs each request body
//    on one exec::Pool slot; nested parallel_for calls run inline on
//    that thread, so the guard covers the whole compute).
//  - With no guard armed, checkpoint() is a thread-local pointer
//    load and a branch — batch runs never pay for serving machinery.
//  - The guarantee is "deadline + one checkpoint interval": the
//    hooks sit so that at most one EM iteration, one 256-sample MC
//    slice, or one SSTA stage runs after the deadline passes.
//
// Header-only (like core/status.h) so the layers below lvf2_core —
// lvf2_stats, lvf2_spice — can hook their loops without a new link
// dependency.

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/status.h"

namespace lvf2::core {

/// Thrown by checkpoint() when the armed deadline has passed. Carries
/// a full Status (kDeadlineExceeded) so catch sites can forward the
/// code without re-deriving it. Derives from std::runtime_error: a
/// legacy catch (std::exception&) still contains it, but sites that
/// must shed rather than degrade catch this type first.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

namespace detail {

/// The armed deadline of the current thread; nullptr when none.
struct DeadlineState {
  std::chrono::steady_clock::time_point deadline;
  DeadlineState* previous = nullptr;  ///< nesting: inner-most wins
};

inline thread_local DeadlineState* tl_deadline = nullptr;

}  // namespace detail

/// True while the calling thread has an armed deadline.
inline bool deadline_armed() { return detail::tl_deadline != nullptr; }

/// Milliseconds left on the armed deadline; a large positive value
/// when none is armed, negative once expired.
inline double deadline_remaining_ms() {
  if (detail::tl_deadline == nullptr) return 1e18;
  return std::chrono::duration<double, std::milli>(
             detail::tl_deadline->deadline -
             std::chrono::steady_clock::now())
      .count();
}

/// Non-throwing probe: kOk, or kDeadlineExceeded once expired.
inline Status deadline_status() {
  if (detail::tl_deadline == nullptr) return Status::ok();
  if (std::chrono::steady_clock::now() < detail::tl_deadline->deadline) {
    return Status::ok();
  }
  return Status::deadline_exceeded("request deadline passed");
}

/// Cooperative cancellation point: throws CancelledError when the
/// calling thread's deadline has passed; no-op (one thread-local
/// load) otherwise.
inline void checkpoint() {
  if (detail::tl_deadline == nullptr) return;
  if (std::chrono::steady_clock::now() < detail::tl_deadline->deadline) {
    return;
  }
  throw CancelledError(Status::deadline_exceeded("request deadline passed"));
}

/// Strided checkpoint for tight loops: fires on every `stride`-th
/// index (and index 0), keeping the clock read off the per-sample
/// path.
inline void checkpoint_every(std::size_t index, std::size_t stride) {
  if (detail::tl_deadline == nullptr) return;
  if (stride == 0 || index % stride == 0) checkpoint();
}

/// RAII deadline: arms `budget_ms` from now on the current thread;
/// restores the previous deadline (nesting: the inner guard may only
/// tighten, never extend, the effective deadline) on destruction.
class DeadlineGuard {
 public:
  explicit DeadlineGuard(double budget_ms) {
    state_.deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              budget_ms < 0.0 ? 0.0 : budget_ms));
    state_.previous = detail::tl_deadline;
    if (state_.previous != nullptr &&
        state_.previous->deadline < state_.deadline) {
      state_.deadline = state_.previous->deadline;
    }
    detail::tl_deadline = &state_;
  }
  ~DeadlineGuard() { detail::tl_deadline = state_.previous; }
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;

 private:
  detail::DeadlineState state_;
};

/// Suspends the armed deadline for the guard's lifetime. The shed
/// fallbacks (cached row, analytic moments, point mass) run *after*
/// the deadline fired; they are bounded-cost by construction and
/// must not themselves be cancelled half way into rendering an
/// answer.
class DeadlineSuspend {
 public:
  DeadlineSuspend() : saved_(detail::tl_deadline) {
    detail::tl_deadline = nullptr;
  }
  ~DeadlineSuspend() { detail::tl_deadline = saved_; }
  DeadlineSuspend(const DeadlineSuspend&) = delete;
  DeadlineSuspend& operator=(const DeadlineSuspend&) = delete;

 private:
  detail::DeadlineState* saved_;
};

/// Maps a caught exception to a Status with the most specific code:
/// CancelledError keeps its own code, anything else is kInternal.
/// The single place that turns the exception world back into the
/// Status world (characterize entries, serve handlers).
inline Status status_from_exception(const std::exception& e) {
  if (const auto* cancelled = dynamic_cast<const CancelledError*>(&e)) {
    return cancelled->status();
  }
  return Status::internal(e.what());
}

}  // namespace lvf2::core
