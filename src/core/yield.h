#pragma once
// Yield estimation. The 3-sigma yield is the fraction of chips whose
// delay meets the target T_max = mu + 3 sigma (golden moments); the
// 3-sigma yield *error* of a model is the absolute difference between
// the model's and the golden CDF at that point. A windowed variant
// P(T_min <= t <= T_max) supports the faulty-fast-bin story of
// paper Fig. 2.

#include "core/timing_model.h"
#include "stats/descriptive.h"

namespace lvf2::core {

/// P(t <= mu + 3 sigma) under the model, with (mu, sigma) taken from
/// the golden samples.
double three_sigma_yield(const TimingModel& model,
                         const stats::EmpiricalCdf& golden);

/// Golden (empirical) 3-sigma yield.
double three_sigma_yield(const stats::EmpiricalCdf& golden);

/// |model yield - golden yield| at mu + 3 sigma.
double three_sigma_yield_error(const TimingModel& model,
                               const stats::EmpiricalCdf& golden);

/// Usable-chip yield P(t_min <= t <= t_max) under an arbitrary CDF.
double window_yield(const std::function<double(double)>& cdf, double t_min,
                    double t_max);

}  // namespace lvf2::core
