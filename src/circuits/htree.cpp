#include "circuits/htree.h"

#include <stdexcept>

namespace lvf2::circuits {

ssta::TimingPath build_htree_path(const HtreeOptions& options,
                                  const spice::ProcessCorner& corner) {
  if (options.levels < 1) {
    throw std::invalid_argument("htree: need at least 1 level");
  }
  ssta::TimingPath path;
  path.name = "htree" + std::to_string(options.levels);

  cells::Cell buf =
      cells::build_cell(cells::CellFamily::kBuf, 1, options.buffer_drive);
  for (cells::TimingArc& arc : buf.arcs) {
    arc.stage.mechanism_gain = options.buffer_mechanism_gain;
    arc.stage.mechanism_gain_transition =
        1.3 * options.buffer_mechanism_gain;
    arc.stage.mechanism_offset = options.buffer_mechanism_offset;
  }
  std::size_t rise_arc = buf.arcs.size();
  std::size_t fall_arc = buf.arcs.size();
  for (std::size_t i = 0; i < buf.arcs.size(); ++i) {
    (buf.arcs[i].rise_output ? rise_arc : fall_arc) = i;
  }
  const double buf_cap = buf.arcs.at(rise_arc).stage.input_cap_pf;

  double res = options.wire_res_kohm;
  double cap = options.wire_cap_pf;
  bool rise = true;
  for (int level = 0; level < options.levels; ++level) {
    for (int half = 0; half < 2; ++half) {
      const PiModel wire = PiModel::from_wire(res, cap);
      const bool last =
          (level == options.levels - 1) && (half == 1);
      // Fanout: within a level the second buffer of the pair drives
      // the two children of the H branch.
      const double receivers =
          last ? options.leaf_load_pf
               : (half == 1 ? 2.0 * buf_cap : buf_cap);
      ssta::PathStage stage;
      stage.instance_name =
          "buf_l" + std::to_string(level) + "_" + std::to_string(half);
      stage.cell = buf;
      stage.arc_index = rise ? rise_arc : fall_arc;
      stage.condition.load_pf = wire.driver_load_pf(receivers);
      stage.wire_delay_ns = wire.elmore_delay_ns(receivers);
      path.stages.push_back(std::move(stage));
      rise = !rise;
    }
    res *= options.wire_scale;
    cap *= options.wire_scale;
  }

  // Propagate nominal slews (wire RC degrades the edge; approximate
  // the receiver slew as the driver transition plus 2.2 * wire RC).
  path.stages.front().condition.slew_ns = 0.03;
  for (std::size_t i = 1; i < path.stages.size(); ++i) {
    const ssta::PathStage& prev = path.stages[i - 1];
    const spice::StageTimes t = spice::nominal_stage_times(
        prev.arc().stage, prev.condition, corner);
    path.stages[i].condition.slew_ns =
        t.transition_ns + 2.2 * prev.wire_delay_ns * 0.5;
  }
  return path;
}

}  // namespace lvf2::circuits
