#pragma once
// Interconnect modeling: the Pi-model used by the paper's H-tree
// benchmark ("each stage consists of 2 buffer cells and metal wires
// described with the Pi-model") and the Elmore delay it induces.

namespace lvf2::circuits {

/// Lumped Pi model of a wire segment: series resistance with half the
/// wire capacitance on each end.
struct PiModel {
  double resistance_kohm = 0.0;
  double c_near_pf = 0.0;  ///< capacitance at the driver side
  double c_far_pf = 0.0;   ///< capacitance at the receiver side

  /// Builds the Pi model of a uniform wire: total R and C split with
  /// C/2 on each side.
  static PiModel from_wire(double total_res_kohm, double total_cap_pf);

  /// Total wire capacitance.
  double total_cap_pf() const { return c_near_pf + c_far_pf; }

  /// Elmore delay of the wire driving `load_pf` at the far end [ns]:
  /// R * (C_far + C_load). The near capacitance loads the driver and
  /// is accounted for in the driver's output load instead.
  double elmore_delay_ns(double load_pf) const;

  /// The capacitive load the wire presents to its driver: with the
  /// far end shielded by the wire resistance, drivers effectively see
  /// the near cap plus the (unshielded approximation of the) far cap
  /// and receiver load.
  double driver_load_pf(double receiver_pf) const;
};

}  // namespace lvf2::circuits
