#pragma once
// 6-stage H-tree benchmark (paper Section 4.4): "each stage consists
// of 2 buffer cells and metal wires described with the Pi-model",
// total depth ~95 FO4. The analyzed path is one root-to-leaf branch;
// at every level the driver sees the wire plus two receiving buffers
// (the H-tree fanout).

#include "circuits/wire.h"
#include "spice/process.h"
#include "ssta/path.h"

namespace lvf2::circuits {

/// H-tree construction options.
struct HtreeOptions {
  int levels = 6;
  double buffer_drive = 2.0;
  /// Root-level wire segment; deeper levels scale by `wire_scale`.
  double wire_res_kohm = 0.35;
  double wire_cap_pf = 0.085;
  double wire_scale = 0.72;   ///< per-level geometric shrink
  double leaf_load_pf = 0.006;  ///< clocked sink at the leaf
  /// Clock buffers are sized for edge symmetry (input and output
  /// transitions comparable), which keeps them near the mechanism
  /// confrontation point; these fields pin the buffer arcs'
  /// mechanism personality instead of the hashed library default.
  double buffer_mechanism_gain = 1.8;
  double buffer_mechanism_offset = -0.5;
};

/// Builds the root-to-leaf critical path (2 buffers + 2 wires per
/// level) with nominal slews propagated along it.
ssta::TimingPath build_htree_path(const HtreeOptions& options,
                                  const spice::ProcessCorner& corner);

}  // namespace lvf2::circuits
