#include "circuits/wire.h"

namespace lvf2::circuits {

PiModel PiModel::from_wire(double total_res_kohm, double total_cap_pf) {
  PiModel pi;
  pi.resistance_kohm = total_res_kohm;
  pi.c_near_pf = 0.5 * total_cap_pf;
  pi.c_far_pf = 0.5 * total_cap_pf;
  return pi;
}

double PiModel::elmore_delay_ns(double load_pf) const {
  return resistance_kohm * (c_far_pf + load_pf);
}

double PiModel::driver_load_pf(double receiver_pf) const {
  return c_near_pf + c_far_pf + receiver_pf;
}

}  // namespace lvf2::circuits
