#include "circuits/netlist.h"

#include <algorithm>
#include <map>

namespace lvf2::circuits {

void Netlist::add_primary_input(const std::string& net) {
  inputs_.push_back(net);
}

void Netlist::add_primary_output(const std::string& net) {
  outputs_.push_back(net);
}

void Netlist::add_instance(Instance instance) {
  instances_.push_back(std::move(instance));
}

std::vector<std::string> Netlist::nets() const {
  std::vector<std::string> out;
  const auto push_unique = [&out](const std::string& n) {
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  };
  for (const std::string& n : inputs_) push_unique(n);
  for (const Instance& inst : instances_) {
    for (const auto& [pin, net] : inst.input_nets) push_unique(net);
    for (const auto& [pin, net] : inst.output_nets) push_unique(net);
  }
  for (const std::string& n : outputs_) push_unique(n);
  return out;
}

double Netlist::net_load_pf(const std::string& net) const {
  double load = 0.0;
  for (const Instance& inst : instances_) {
    for (const auto& [pin, pin_net] : inst.input_nets) {
      if (pin_net != net) continue;
      for (const cells::TimingArc& arc : inst.cell.arcs) {
        if (arc.input_pin == pin) {
          load += arc.stage.input_cap_pf;
          break;
        }
      }
    }
  }
  return load;
}

ssta::TimingGraph Netlist::to_timing_graph(
    const DelayAnnotator& annotator) const {
  ssta::TimingGraph graph;
  std::map<std::string, ssta::TimingGraph::NodeId> node_of;
  for (const std::string& net : nets()) {
    node_of[net] = graph.add_node(net);
  }
  for (const Instance& inst : instances_) {
    for (const cells::TimingArc& arc : inst.cell.arcs) {
      const auto in_it = inst.input_nets.find(arc.input_pin);
      const auto out_it = inst.output_nets.find(arc.output_pin);
      if (in_it == inst.input_nets.end() ||
          out_it == inst.output_nets.end()) {
        continue;
      }
      std::optional<ssta::EdgeDelay> delay = annotator(inst, arc);
      if (!delay) continue;
      graph.add_edge(node_of.at(in_it->second), node_of.at(out_it->second),
                     std::move(*delay));
    }
  }
  return graph;
}

}  // namespace lvf2::circuits
