#pragma once
// 16-bit ripple-carry adder benchmark (paper Section 4.4): "a typical
// structure with a critical path delay of 30-FO4". The critical path
// is the carry chain: an input driver, the generate stage of bit 0,
// the carry-propagate arcs of the middle bits, and the sum (XOR)
// stage of the last bit.

#include "circuits/netlist.h"
#include "spice/process.h"
#include "ssta/path.h"

namespace lvf2::circuits {

/// Adder construction options.
struct AdderOptions {
  int bits = 16;
  double drive = 1.0;          ///< FA drive strength
  double wire_cap_pf = 0.0006;  ///< stray wire cap per carry net
  double final_load_pf = 0.004; ///< capture-flop load on the sum output
};

/// Builds the carry-chain critical path with slews propagated to
/// their nominal fixed point.
ssta::TimingPath build_adder_critical_path(const AdderOptions& options,
                                           const spice::ProcessCorner& corner);

/// Builds the full ripple-carry adder netlist (FA per bit, shared
/// carry nets) for graph-based SSTA.
Netlist build_adder_netlist(const AdderOptions& options);

}  // namespace lvf2::circuits
