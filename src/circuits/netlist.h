#pragma once
// Gate-level netlist: cell instances connected by named nets, with a
// conversion to a block-based SSTA timing graph. Used by the adder
// benchmark and available as a general substrate for building other
// test circuits.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cells/cell_types.h"
#include "ssta/timing_graph.h"

namespace lvf2::circuits {

/// One placed cell with its pin-to-net connections.
struct Instance {
  std::string name;
  cells::Cell cell;
  /// input pin name -> net name
  std::map<std::string, std::string> input_nets;
  /// output pin name -> net name
  std::map<std::string, std::string> output_nets;
};

/// Delay annotation callback: given an instance and one of its arcs,
/// return the edge delay (distribution and/or constant) for the
/// timing graph. Returning nullopt skips the arc.
using DelayAnnotator = std::function<std::optional<ssta::EdgeDelay>(
    const Instance&, const cells::TimingArc&)>;

/// A flat gate-level netlist.
class Netlist {
 public:
  /// Declares a primary input net.
  void add_primary_input(const std::string& net);
  /// Declares a primary output net.
  void add_primary_output(const std::string& net);
  /// Adds an instance (nets are created on first use).
  void add_instance(Instance instance);

  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<std::string>& primary_inputs() const { return inputs_; }
  const std::vector<std::string>& primary_outputs() const { return outputs_; }

  /// Nets in creation order.
  std::vector<std::string> nets() const;

  /// Total capacitive load on a net: the sum of the input caps of all
  /// instance pins connected to it (taking each cell's first arc from
  /// that pin as the electrical reference).
  double net_load_pf(const std::string& net) const;

  /// Builds the SSTA timing graph: one node per net, one edge per
  /// timing arc (as annotated).
  ssta::TimingGraph to_timing_graph(const DelayAnnotator& annotator) const;

 private:
  std::vector<Instance> instances_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
};

}  // namespace lvf2::circuits
