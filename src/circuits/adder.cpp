#include "circuits/adder.h"

#include <stdexcept>

namespace lvf2::circuits {

namespace {

// Finds the arc index for input pin -> output pin with the given
// output direction.
std::size_t find_arc(const cells::Cell& cell, const std::string& in,
                     const std::string& out, bool rise) {
  for (std::size_t i = 0; i < cell.arcs.size(); ++i) {
    const cells::TimingArc& arc = cell.arcs[i];
    if (arc.input_pin == in && arc.output_pin == out &&
        arc.rise_output == rise) {
      return i;
    }
  }
  throw std::runtime_error("adder: arc not found: " + in + "->" + out);
}

double input_cap(const cells::Cell& cell, const std::string& pin) {
  for (const cells::TimingArc& arc : cell.arcs) {
    if (arc.input_pin == pin) return arc.stage.input_cap_pf;
  }
  return 0.0;
}

}  // namespace

ssta::TimingPath build_adder_critical_path(
    const AdderOptions& options, const spice::ProcessCorner& corner) {
  if (options.bits < 2) {
    throw std::invalid_argument("adder: need at least 2 bits");
  }
  ssta::TimingPath path;
  path.name = "rca" + std::to_string(options.bits) + "_carry_chain";

  const cells::Cell buf =
      cells::build_cell(cells::CellFamily::kBuf, 1, options.drive);
  const cells::Cell fa =
      cells::build_cell(cells::CellFamily::kFullAdder, 3, options.drive);

  const double ci_cap = input_cap(fa, "CI");

  // Stage 0: input driver feeding A of bit 0.
  {
    ssta::PathStage stage;
    stage.instance_name = "drv";
    stage.cell = buf;
    stage.arc_index = find_arc(buf, "A", "Y", true);
    stage.condition.slew_ns = 0.02;
    stage.condition.load_pf = input_cap(fa, "A") + options.wire_cap_pf;
    path.stages.push_back(std::move(stage));
  }
  // Stage 1: generate — A of bit 0 to CO (carry out alternates
  // direction bit to bit as the carry ripples).
  {
    ssta::PathStage stage;
    stage.instance_name = "fa0";
    stage.cell = fa;
    stage.arc_index = find_arc(fa, "A", "CO", false);
    stage.condition.load_pf = ci_cap + options.wire_cap_pf;
    path.stages.push_back(std::move(stage));
  }
  // Middle bits: CI -> CO propagate arcs.
  for (int bit = 1; bit + 1 < options.bits; ++bit) {
    ssta::PathStage stage;
    stage.instance_name = "fa" + std::to_string(bit);
    stage.cell = fa;
    // fa0 produces a falling carry; the ripple alternates from there.
    const bool rise = (bit % 2) == 1;
    stage.arc_index = find_arc(fa, "CI", "CO", rise);
    stage.condition.load_pf = ci_cap + options.wire_cap_pf;
    path.stages.push_back(std::move(stage));
  }
  // Last bit: CI -> S (the sum XOR stage) into the capture load.
  {
    ssta::PathStage stage;
    stage.instance_name = "fa" + std::to_string(options.bits - 1);
    stage.cell = fa;
    const bool rise = ((options.bits - 1) % 2) == 1;
    stage.arc_index = find_arc(fa, "CI", "S", rise);
    stage.condition.load_pf = options.final_load_pf;
    path.stages.push_back(std::move(stage));
  }

  // Propagate nominal slews along the chain.
  for (std::size_t i = 1; i < path.stages.size(); ++i) {
    const ssta::PathStage& prev = path.stages[i - 1];
    const spice::StageTimes t = spice::nominal_stage_times(
        prev.arc().stage, prev.condition, corner);
    path.stages[i].condition.slew_ns = t.transition_ns;
  }
  return path;
}

Netlist build_adder_netlist(const AdderOptions& options) {
  Netlist netlist;
  const cells::Cell fa =
      cells::build_cell(cells::CellFamily::kFullAdder, 3, options.drive);

  netlist.add_primary_input("ci0");
  for (int bit = 0; bit < options.bits; ++bit) {
    const std::string b = std::to_string(bit);
    netlist.add_primary_input("a" + b);
    netlist.add_primary_input("b" + b);

    Instance inst;
    inst.name = "fa" + b;
    inst.cell = fa;
    inst.input_nets["A"] = "a" + b;
    inst.input_nets["B"] = "b" + b;
    inst.input_nets["CI"] = "ci" + b;
    inst.output_nets["S"] = "s" + b;
    inst.output_nets["CO"] = "ci" + std::to_string(bit + 1);
    netlist.add_instance(std::move(inst));

    netlist.add_primary_output("s" + b);
  }
  netlist.add_primary_output("ci" + std::to_string(options.bits));
  return netlist;
}

}  // namespace lvf2::circuits
