#pragma once
// Deterministic fork-join execution: a small cache-friendly thread
// pool behind `parallel_for` / `parallel_map`. Determinism is not the
// pool's job — callers derive one RNG seed per index (see
// Characterizer::condition_seed) so results are a pure function of
// the index, and `parallel_map` writes each result into its own slot.
// The pool only promises that every index runs exactly once and that
// the first exception reaches the caller.
//
// Sizing: LVF2_THREADS=<n> fixes the worker budget (0, unset or
// garbage -> hardware_concurrency; 1 -> every parallel_for runs
// inline on the caller with zero thread overhead — the pool is never
// even constructed). set_thread_count() overrides at runtime for
// tests and benches.
//
// Nesting: a parallel_for issued from inside a parallel region (a
// pool worker or the participating caller) runs inline — no pool
// re-entry, no deadlock, and inner loops inherit the outer loop's
// thread. One fork-join job runs at a time; concurrent top-level
// callers serialize on the job mutex.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lvf2::exec {

/// Parses an LVF2_THREADS-style value: decimal thread count, with 0,
/// empty, out-of-range or non-numeric input falling back to
/// `fallback`. Exposed for tests.
std::size_t parse_thread_count(const char* text, std::size_t fallback);

/// The effective thread budget: set_thread_count() override if any,
/// else LVF2_THREADS, else hardware_concurrency (min 1). Cached after
/// the first environment read.
std::size_t thread_count();

/// Overrides thread_count() at runtime (tests / scaling benches);
/// 0 restores the environment-configured value. The shared pool grows
/// on demand but never shrinks: raising the count mid-process is
/// cheap, and a lower count simply caps how many workers join a job.
void set_thread_count(std::size_t count);

/// True while the calling thread executes inside a parallel region;
/// parallel_for calls made here run inline.
bool in_parallel_region();

namespace detail {
extern std::atomic<bool> g_telemetry_enabled;
}  // namespace detail

/// True when pool telemetry (per-chunk latency histograms, per-worker
/// utilization, chunk-claim counters) is recording — enabled by
/// LVF2_EXEC_TELEMETRY=1 at startup or set_telemetry(). Relaxed load:
/// the only cost paid per chunk when telemetry is off
/// (BM_PoolTelemetryOverhead in bench_perf, same < 5 ns budget as a
/// disabled span).
inline bool telemetry_enabled() {
  return detail::g_telemetry_enabled.load(std::memory_order_relaxed);
}

/// Runtime override (tests / benches). Counters keep their totals
/// across off/on transitions.
void set_telemetry(bool enabled);

/// Snapshot of one execution slot's lifetime telemetry. Slot 0 is the
/// calling thread of each fork-join job (callers serialize, so one
/// slot suffices); slots 1..N are pool workers in creation order.
struct WorkerTelemetry {
  std::uint64_t chunks = 0;   ///< chunk claims that ran work
  std::uint64_t indices = 0;  ///< loop indices executed
  double busy_us = 0.0;       ///< wall time inside chunk bodies
};

/// Snapshot of every slot that ever recorded work (empty when
/// telemetry never ran). Thread-safe; readable at any time, including
/// from the manifest `exec` section provider at process exit (the
/// storage is leaked, deliberately outliving the pool singleton).
std::vector<WorkerTelemetry> telemetry_snapshot();

/// Fixed-size fork-join worker pool. One job at a time; workers claim
/// index chunks from a shared atomic cursor (dynamic scheduling — no
/// per-task allocation, no work stealing). Construct directly for an
/// isolated pool (tests) or use Pool::instance() + parallel_for.
class Pool {
 public:
  explicit Pool(std::size_t workers);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// The lazily-constructed shared pool, first sized by
  /// thread_count() and grown on demand.
  static Pool& instance();

  std::size_t workers() const { return threads_.size(); }

  /// Runs fn(i) for every i in [0, n), in chunks of `chunk` indices,
  /// on up to `parallelism` threads (capped workers + the calling
  /// thread, which participates). Blocks until every index ran;
  /// rethrows the first exception thrown by `fn` (remaining chunks
  /// are skipped once a failure is recorded, but in-flight ones
  /// complete). Thread-safe; concurrent calls serialize.
  void run(std::size_t n, std::size_t chunk, std::size_t parallelism,
           const std::function<void(std::size_t)>& fn);

 private:
  /// Grows the worker set to at least `workers` threads (never
  /// shrinks). run() calls it between jobs; it must not race a job in
  /// flight (the posted-worker count must stay exact).
  void ensure_workers(std::size_t workers);

  struct Job {
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t worker_limit = 0;  ///< workers allowed to join
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};     ///< chunk cursor
    std::atomic<std::size_t> entered{0};  ///< workers that tried to join
    std::atomic<bool> failed{false};
    std::exception_ptr error;     ///< guarded by error_mutex
    std::mutex error_mutex;
    std::size_t done = 0;  ///< workers finished with the job (mutex_)
  };

  /// `telemetry_slot` indexes the leaked per-slot stats registry:
  /// 0 = fork-join caller, 1..N = workers in creation order.
  void worker_loop(std::size_t telemetry_slot);
  static void work_on(Job& job, std::size_t telemetry_slot);

  std::mutex run_mutex_;  ///< serializes top-level run() calls

  std::mutex mutex_;  ///< guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across the shared pool in chunks of
/// `chunk` indices. Inline (plain loop, zero overhead) when the
/// thread budget is 1, when n fits a single chunk, or when already
/// inside a parallel region. Propagates the first exception.
void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn);

/// Maps [0, n) through `fn` into an order-preserving vector: out[i]
/// is always fn(i)'s result regardless of execution order, so a
/// deterministic fn gives byte-identical output at any thread count.
/// T must be default-constructible and move-assignable.
template <typename T, typename F>
std::vector<T> parallel_map(std::size_t n, F&& fn) {
  std::vector<T> out(n);
  const auto& f = fn;
  parallel_for(n, 1, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

}  // namespace lvf2::exec
