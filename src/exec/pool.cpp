#include "exec/pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"

namespace lvf2::exec {

namespace {

thread_local bool t_in_parallel_region = false;

/// Marks the current thread as executing pool work for its lifetime.
struct RegionGuard {
  RegionGuard() : was(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = was; }
  bool was;
};

std::atomic<std::size_t> g_thread_override{0};

std::size_t default_thread_count() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return hw;
}

}  // namespace

std::size_t parse_thread_count(const char* text, std::size_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value == 0 || value > 4096) {
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

std::size_t thread_count() {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  static const std::size_t configured = parse_thread_count(
      std::getenv("LVF2_THREADS"), default_thread_count());
  return configured;
}

void set_thread_count(std::size_t count) {
  g_thread_override.store(count, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

Pool::Pool(std::size_t workers) { ensure_workers(workers); }

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

Pool& Pool::instance() {
  // Function-local static (not leaked): workers are joined at static
  // destruction, before the exit-time observability sinks it never
  // touches, so sanitizers see a clean shutdown.
  static Pool pool(thread_count() > 1 ? thread_count() - 1 : 1);
  return pool;
}

void Pool::ensure_workers(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (threads_.size() < workers) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void Pool::work_on(Job& job) {
  RegionGuard region;
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    if (job.failed.load(std::memory_order_relaxed)) continue;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.failed.exchange(true, std::memory_order_relaxed)) {
        job.error = std::current_exception();
      }
    }
  }
}

void Pool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    if (job == nullptr) continue;
    // Joining is capped per job so scaling benches measure the
    // requested parallelism even when the pool holds more workers.
    if (job->entered.fetch_add(1, std::memory_order_relaxed) <
        job->worker_limit) {
      work_on(*job);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++job->done;
    }
    done_cv_.notify_all();
  }
}

void Pool::run(std::size_t n, std::size_t chunk, std::size_t parallelism,
               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t helpers = parallelism > 0 ? parallelism - 1 : 0;
  static obs::Counter& jobs = obs::counter("exec.pool.jobs");
  static obs::Counter& indices = obs::counter("exec.pool.indices");
  static obs::DoubleCounter& job_wall =
      obs::double_counter("exec.pool.job_wall_s");
  jobs.add(1);
  indices.add(n);
  const auto job_start = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  // Grow only between jobs (we hold run_mutex_, so no job is in
  // flight): posted_to below must stay exact while the Job lives.
  ensure_workers(helpers);
  Job job;
  job.n = n;
  job.chunk = chunk;
  job.worker_limit = helpers;
  job.fn = &fn;
  std::size_t posted_to = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
    posted_to = threads_.size();
  }
  work_cv_.notify_all();
  work_on(job);  // the caller is one of the `parallelism` threads
  {
    // Every posted worker must check the job out (even if only to
    // decline it) before the stack-allocated Job can die.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.done == posted_to; });
    job_ = nullptr;
  }
  job_wall.add(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - job_start)
                   .count());
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t threads = thread_count();
  if (threads <= 1 || n <= chunk || in_parallel_region()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Pool::instance().run(n, chunk, threads, fn);
}

}  // namespace lvf2::exec
