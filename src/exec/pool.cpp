#include "exec/pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace lvf2::exec {

namespace detail {
std::atomic<bool> g_telemetry_enabled{false};
}  // namespace detail

namespace {

thread_local bool t_in_parallel_region = false;

/// Marks the current thread as executing pool work for its lifetime.
struct RegionGuard {
  RegionGuard() : was(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = was; }
  bool was;
};

std::atomic<std::size_t> g_thread_override{0};

std::size_t default_thread_count() {
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return hw;
}

/// Per-slot telemetry accumulators. Written by the owning thread only
/// (relaxed stores suffice; readers snapshot). Lives in a leaked
/// registry so the manifest `exec` section can read it at process
/// exit, after the pool singleton (a function-local static) has
/// already joined its workers and died.
struct WorkerStatsSlot {
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> indices{0};
  std::atomic<double> busy_us{0.0};
};

struct ExecStatsRegistry {
  std::mutex mutex;
  // deque: grows without relocating (slots hold atomics and are
  // written concurrently with growth for other slots).
  std::deque<WorkerStatsSlot> slots;

  static ExecStatsRegistry& instance() {
    static auto* registry = new ExecStatsRegistry();  // leaked
    return *registry;
  }

  WorkerStatsSlot& slot(std::size_t index) {
    std::lock_guard<std::mutex> lock(mutex);
    while (slots.size() <= index) slots.emplace_back();
    return slots[index];
  }
};

/// Rendered `exec` manifest section: process-lifetime job counters
/// plus the per-slot utilization table when telemetry recorded work.
std::string exec_section_json() {
  std::string out = "{\"workers\":";
  out += std::to_string(thread_count());
  out += ",\"jobs\":";
  out += std::to_string(obs::counter("exec.pool.jobs").value());
  out += ",\"indices\":";
  out += std::to_string(obs::counter("exec.pool.indices").value());
  out += ",\"chunks\":";
  out += std::to_string(obs::counter("exec.pool.chunks").value());
  out += ",\"job_wall_s\":";
  obs::json_append_number(
      out, obs::double_counter("exec.pool.job_wall_s").value());
  out += ",\"telemetry\":";
  out += telemetry_enabled() ? "true" : "false";
  out += ",\"per_worker\":[";
  const std::vector<WorkerTelemetry> slots = telemetry_snapshot();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"slot\":";
    out += (i == 0) ? std::string("\"caller\"") : std::to_string(i);
    out += ",\"chunks\":" + std::to_string(slots[i].chunks);
    out += ",\"indices\":" + std::to_string(slots[i].indices);
    out += ",\"busy_ms\":";
    obs::json_append_number(out, slots[i].busy_us * 1e-3);
    out += '}';
  }
  out += "]}";
  return out;
}

// Reads LVF2_EXEC_TELEMETRY and registers the manifest `exec` section
// at static-initialization time, mirroring the other obs env gates.
struct ExecTelemetryEnvInit {
  ExecTelemetryEnvInit() {
    if (const char* v = std::getenv("LVF2_EXEC_TELEMETRY")) {
      if (v[0] != '\0' && v[0] != '0') set_telemetry(true);
    }
    obs::ManifestRecorder::instance().set_section_provider(
        "exec", [] { return exec_section_json(); });
  }
} g_exec_telemetry_env_init;

obs::Histogram& chunk_latency_histogram() {
  static obs::Histogram& h = obs::histogram(
      "exec.pool.chunk_us", {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6});
  return h;
}

obs::Histogram& job_wall_histogram() {
  static obs::Histogram& h = obs::histogram(
      "exec.pool.job_wall_ms", {0.1, 1.0, 10.0, 100.0, 1e3, 1e4});
  return h;
}

}  // namespace

void set_telemetry(bool enabled) {
  detail::g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<WorkerTelemetry> telemetry_snapshot() {
  ExecStatsRegistry& registry = ExecStatsRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<WorkerTelemetry> out;
  out.reserve(registry.slots.size());
  for (const WorkerStatsSlot& slot : registry.slots) {
    WorkerTelemetry t;
    t.chunks = slot.chunks.load(std::memory_order_relaxed);
    t.indices = slot.indices.load(std::memory_order_relaxed);
    t.busy_us = slot.busy_us.load(std::memory_order_relaxed);
    out.push_back(t);
  }
  return out;
}

std::size_t parse_thread_count(const char* text, std::size_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value == 0 || value > 4096) {
    return fallback;
  }
  return static_cast<std::size_t>(value);
}

std::size_t thread_count() {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  static const std::size_t configured = parse_thread_count(
      std::getenv("LVF2_THREADS"), default_thread_count());
  return configured;
}

void set_thread_count(std::size_t count) {
  g_thread_override.store(count, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

Pool::Pool(std::size_t workers) { ensure_workers(workers); }

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

Pool& Pool::instance() {
  // Function-local static (not leaked): workers are joined at static
  // destruction, before the exit-time observability sinks it never
  // touches, so sanitizers see a clean shutdown.
  static Pool pool(thread_count() > 1 ? thread_count() - 1 : 1);
  return pool;
}

void Pool::ensure_workers(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (threads_.size() < workers) {
    // Slot 0 is the fork-join caller; workers start at 1.
    const std::size_t slot_index = threads_.size() + 1;
    threads_.emplace_back([this, slot_index] { worker_loop(slot_index); });
  }
}

void Pool::work_on(Job& job, std::size_t telemetry_slot) {
  RegionGuard region;
  // One relaxed load per job, not per chunk: a mid-job toggle is a
  // test scenario, not one worth a hot-loop branch miss.
  const bool telemetry = telemetry_enabled();
  WorkerStatsSlot* stats =
      telemetry ? &ExecStatsRegistry::instance().slot(telemetry_slot)
                : nullptr;
  static obs::Counter& chunk_counter = obs::counter("exec.pool.chunks");
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) return;
    if (job.failed.load(std::memory_order_relaxed)) continue;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    const auto chunk_start = telemetry
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.failed.exchange(true, std::memory_order_relaxed)) {
        job.error = std::current_exception();
      }
    }
    if (telemetry) {
      const double chunk_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - chunk_start)
              .count();
      stats->chunks.fetch_add(1, std::memory_order_relaxed);
      stats->indices.fetch_add(end - begin, std::memory_order_relaxed);
      obs::detail::atomic_add(stats->busy_us, chunk_us);
      chunk_counter.add(1);
      chunk_latency_histogram().observe(chunk_us);
    }
  }
}

void Pool::worker_loop(std::size_t telemetry_slot) {
  // Sampled by the wall-clock profiler for the worker's lifetime
  // (inert while LVF2_PROFILE is off).
  obs::prof::ThreadRegistration profiler_registration;
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    if (job == nullptr) continue;
    // Joining is capped per job so scaling benches measure the
    // requested parallelism even when the pool holds more workers.
    if (job->entered.fetch_add(1, std::memory_order_relaxed) <
        job->worker_limit) {
      work_on(*job, telemetry_slot);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++job->done;
    }
    done_cv_.notify_all();
  }
}

void Pool::run(std::size_t n, std::size_t chunk, std::size_t parallelism,
               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t helpers = parallelism > 0 ? parallelism - 1 : 0;
  static obs::Counter& jobs = obs::counter("exec.pool.jobs");
  static obs::Counter& indices = obs::counter("exec.pool.indices");
  static obs::DoubleCounter& job_wall =
      obs::double_counter("exec.pool.job_wall_s");
  jobs.add(1);
  indices.add(n);
  const bool telemetry = telemetry_enabled();
  if (telemetry) {
    // "Queue depth" of a fork-join job: indices posted and not yet
    // claimed, maximal at post time. The gauge tracks the live job;
    // the histogram keeps the distribution across jobs.
    obs::gauge("exec.pool.queue_depth").set(static_cast<double>(n));
  }
  const auto job_start = std::chrono::steady_clock::now();

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  // Grow only between jobs (we hold run_mutex_, so no job is in
  // flight): posted_to below must stay exact while the Job lives.
  ensure_workers(helpers);
  Job job;
  job.n = n;
  job.chunk = chunk;
  job.worker_limit = helpers;
  job.fn = &fn;
  std::size_t posted_to = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
    posted_to = threads_.size();
  }
  work_cv_.notify_all();
  work_on(job, 0);  // the caller is one of the `parallelism` threads
  {
    // Every posted worker must check the job out (even if only to
    // decline it) before the stack-allocated Job can die.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.done == posted_to; });
    job_ = nullptr;
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - job_start)
                            .count();
  job_wall.add(wall_s);
  if (telemetry) {
    job_wall_histogram().observe(wall_s * 1e3);
    obs::gauge("exec.pool.queue_depth").set(0.0);
  }
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t threads = thread_count();
  if (threads <= 1 || n <= chunk || in_parallel_region()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Pool::instance().run(n, chunk, threads, fn);
}

}  // namespace lvf2::exec
