#pragma once
// Analytical stage (cell timing arc) simulator — the compute kernel of
// the SPICE-substitute Monte-Carlo engine.
//
// Each arc is reduced to an equivalent switching network (Mosfet) plus
// capacitances, and its delay / output-transition are evaluated with
// alpha-power-law RC equations. Two competing charge mechanisms are
// modeled, matching the paper's own analysis (Section 4.3) that
// multi-Gaussian behaviour appears when "two variations are evenly
// matched against each other" and that the balance follows the
// slew-load point:
//
//  - Mechanism A (drive-limited): output slewing is limited by the
//    pulling network, delay ~ ln2 * R_eff * C + input-slope term.
//  - Mechanism B (input-coupled): for inputs slow relative to the
//    output swing, the switching point couples to the input ramp
//    through the (varied) threshold voltage, with reduced effective
//    drive (short-circuit current overlap).
//
// Which mechanism wins for a given die is decided by a normalized
// confrontation statistic of the sampled variations crossed with a
// slew/load-dependent threshold; the induced mixture weight traces
// the diagonal accuracy pattern of paper Fig. 4.

#include <span>

#include "spice/device.h"
#include "spice/process.h"

namespace lvf2::spice {

/// Electrical template of one timing arc of a cell.
struct StageElectrical {
  /// Equivalent pulling network for the output transition of the arc.
  Mosfet pull;
  /// Gate capacitance this arc presents to its driver [pF].
  double input_cap_pf = 0.0020;
  /// Output self-loading (diffusion) capacitance [pF].
  double internal_cap_pf = 0.0012;
  /// Shifts the A/B regime threshold (cell/arc personality).
  double mechanism_offset = 0.0;
  /// Scales the *mean* separation of mechanism B relative to A while
  /// leaving its extra spread intact; ~0 gives same-center mixtures
  /// with different widths (the paper's "Kurtosis" scenario).
  double mechanism_base_scale = 1.0;
  /// Scales the mechanism-B separation for delay (0 disables).
  double mechanism_gain = 1.0;
  /// Mechanism-B separation for the output transition; transitions
  /// show stronger multi-Gaussian behaviour than delays (paper 4.2).
  double mechanism_gain_transition = 1.6;
  /// Softness of the regime crossover in ln(slew/swing) units.
  double mechanism_width = 1.4;
};

/// Operating condition of one look-up-table entry.
struct ArcCondition {
  double slew_ns = 0.05;  ///< input transition time [ns]
  double load_pf = 0.05;  ///< output load capacitance [pF]
};

/// Simulated times for one Monte-Carlo sample.
struct StageTimes {
  double delay_ns = 0.0;
  double transition_ns = 0.0;
};

/// Nominal (variation-free) times of an arc at a condition.
StageTimes nominal_stage_times(const StageElectrical& stage,
                               const ArcCondition& condition,
                               const ProcessCorner& corner);

/// Times of one sampled die.
StageTimes simulate_stage(const StageElectrical& stage,
                          const ArcCondition& condition,
                          const ProcessCorner& corner,
                          const VariationSample& variation);

/// Batch variant over a draw block, writing structure-of-arrays
/// outputs (delay_out[j] / transition_out[j] for draw j; both spans
/// must hold >= draws.size() elements). The per-condition invariants
/// (confrontation axis, regime threshold, mechanism-B base shifts)
/// are hoisted out of the sample loop; the per-sample arithmetic is
/// unchanged, so results match simulate_stage bitwise.
void simulate_stage_batch(const StageElectrical& stage,
                          const ArcCondition& condition,
                          const ProcessCorner& corner,
                          std::span<const VariationSample> draws,
                          std::span<double> delay_out,
                          std::span<double> transition_out);

/// The analytic mixture weight lambda = P(mechanism B) at a
/// condition; exposed for tests and the Fig. 4 pattern analysis.
double mechanism_b_probability(const StageElectrical& stage,
                               const ArcCondition& condition,
                               const ProcessCorner& corner);

}  // namespace lvf2::spice
