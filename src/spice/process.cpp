#include "spice/process.h"

#include "stats/lhs.h"

namespace lvf2::spice {

ProcessCorner ProcessCorner::tt_global_local_mc() { return ProcessCorner{}; }

VariationSample VariationSampler::scale(const double* z) const {
  VariationSample s;
  s.dvth_n = corner_.sigma_vth_n * z[0];
  s.dvth_p = corner_.sigma_vth_p * z[1];
  s.dlen = corner_.sigma_len * z[2];
  s.dmob_n = corner_.sigma_mob * z[3];
  s.dmob_p = corner_.sigma_mob * z[4];
  s.dtox = corner_.sigma_tox * z[5];
  s.dwid = corner_.sigma_wid * z[6];
  return s;
}

VariationSample VariationSampler::sample_one(stats::Rng& rng) const {
  double z[VariationSample::kDimensions];
  for (double& v : z) v = rng.normal();
  return scale(z);
}

std::vector<VariationSample> VariationSampler::sample_lhs(
    std::size_t count, stats::Rng& rng) const {
  const stats::LhsDesign design =
      stats::lhs_normal(count, VariationSample::kDimensions, rng);
  std::vector<VariationSample> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(scale(&design.values[i * VariationSample::kDimensions]));
  }
  return out;
}

std::vector<VariationSample> VariationSampler::sample_mc(
    std::size_t count, stats::Rng& rng) const {
  std::vector<VariationSample> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(sample_one(rng));
  return out;
}

}  // namespace lvf2::spice
