#include "spice/device.h"

#include <algorithm>
#include <cmath>

namespace lvf2::spice {

double effective_vth(const Mosfet& device, const ProcessCorner& corner,
                     const VariationSample& variation) {
  // Mismatch of a stack of independent devices averages; the
  // variation sample carries the cell-level draw, scaled here.
  const double stack_factor = 1.0 / std::sqrt(static_cast<double>(
                                  std::max(device.stack, 1)));
  if (device.is_nmos) {
    return corner.vth_n + variation.dvth_n * stack_factor;
  }
  return corner.vth_p + variation.dvth_p * stack_factor;
}

double on_current_ma(const Mosfet& device, const ProcessCorner& corner,
                     const VariationSample& variation) {
  const double vth = effective_vth(device, corner, variation);
  // Overdrive clamp: keep a 30 mV floor so extreme-Vth samples model
  // a near/sub-threshold device instead of producing zero current.
  const double overdrive = std::max(corner.vdd - vth, 0.03);
  const double k = device.is_nmos ? corner.kn : corner.kp;
  const double mob =
      1.0 + (device.is_nmos ? variation.dmob_n : variation.dmob_p);
  // Geometry: W up, L down increases current; tox down increases Cox.
  const double geom = (1.0 + variation.dwid) / (1.0 + variation.dlen) /
                      (1.0 + variation.dtox);
  const double current = k * device.drive * std::max(mob, 0.05) *
                         std::max(geom, 0.05) *
                         std::pow(overdrive, corner.alpha);
  return current;
}

double effective_resistance_kohm(const Mosfet& device,
                                 const ProcessCorner& corner,
                                 const VariationSample& variation) {
  const double i_on = on_current_ma(device, corner, variation);
  const double r_single = corner.vdd / (2.0 * i_on);  // V / mA = kOhm
  return r_single * static_cast<double>(std::max(device.stack, 1)) /
         static_cast<double>(std::max(device.parallel, 1));
}

}  // namespace lvf2::spice
