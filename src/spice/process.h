#pragma once
// Process variation model — the data-gate substitute for the paper's
// TSMC 22nm PDK + HSPICE Monte Carlo (see DESIGN.md, Substitutions).
//
// A ProcessCorner carries the nominal device parameters and the
// local-variation sigmas of the "TTGlobal_LocalMC" style corner used
// by the paper (typical global corner, local mismatch Monte-Carlo,
// 0.8 V, 25 C). A VariationSampler draws per-sample variation
// vectors, by default with Latin Hypercube Sampling exactly as the
// paper's golden data was generated.

#include <cstddef>
#include <vector>

#include "stats/rng.h"

namespace lvf2::spice {

/// One Monte-Carlo draw of the local (mismatch) process variations,
/// in physical units.
struct VariationSample {
  double dvth_n = 0.0;  ///< NMOS threshold shift [V]
  double dvth_p = 0.0;  ///< PMOS threshold shift [V]
  double dlen = 0.0;    ///< relative channel-length variation
  double dmob_n = 0.0;  ///< relative NMOS mobility variation
  double dmob_p = 0.0;  ///< relative PMOS mobility variation
  double dtox = 0.0;    ///< relative oxide-thickness variation
  double dwid = 0.0;    ///< relative width variation

  static constexpr std::size_t kDimensions = 7;
};

/// Nominal process / environment parameters and local sigmas.
struct ProcessCorner {
  // Environment.
  double vdd = 0.8;      ///< supply voltage [V]
  double temp_c = 25.0;  ///< temperature [C]

  // Nominal device parameters (22nm-class planar CMOS).
  double vth_n = 0.32;   ///< NMOS threshold [V]
  double vth_p = 0.34;   ///< PMOS threshold magnitude [V]
  double alpha = 1.3;    ///< alpha-power-law velocity-saturation index
  double kn = 1.9;       ///< NMOS transconductance scale [mA/V^alpha]
  double kp = 1.25;      ///< PMOS transconductance scale [mA/V^alpha]

  // Local (mismatch) one-sigma variations.
  double sigma_vth_n = 0.030;  ///< [V]
  double sigma_vth_p = 0.032;  ///< [V]
  double sigma_len = 0.045;    ///< relative
  double sigma_mob = 0.050;    ///< relative
  double sigma_tox = 0.020;    ///< relative
  double sigma_wid = 0.035;    ///< relative

  /// The corner used throughout the paper's experiments:
  /// typical global, local mismatch MC, 0.8 V, 25 C.
  static ProcessCorner tt_global_local_mc();
};

/// Draws variation vectors for a corner.
class VariationSampler {
 public:
  explicit VariationSampler(const ProcessCorner& corner) : corner_(corner) {}

  /// One plain Monte-Carlo draw.
  VariationSample sample_one(stats::Rng& rng) const;

  /// `count` draws by Latin Hypercube Sampling over the 7 variation
  /// dimensions (stratified standard normals scaled by the sigmas).
  std::vector<VariationSample> sample_lhs(std::size_t count,
                                          stats::Rng& rng) const;

  /// `count` plain Monte-Carlo draws.
  std::vector<VariationSample> sample_mc(std::size_t count,
                                         stats::Rng& rng) const;

  /// Maps one standard-normal point z (kDimensions values) to physical
  /// variation units — the exact scaling applied to every LHS/MC draw.
  /// Exposed so the importance-sampling engine (src/yield/) can shift
  /// proposals in z-space while sharing this one z -> sample path: a
  /// zero shift then reproduces the plain Monte-Carlo draws bitwise.
  VariationSample from_standard_normal(const double* z) const {
    return scale(z);
  }

  const ProcessCorner& corner() const { return corner_; }

 private:
  VariationSample scale(const double* z) const;

  ProcessCorner corner_;
};

}  // namespace lvf2::spice
