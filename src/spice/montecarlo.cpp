#include "spice/montecarlo.h"

#include <algorithm>

#include "core/cancel.h"
#include "exec/pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lvf2::spice {

namespace {

// One shard of a sharded run: draws its own independently-seeded
// variation set and writes results into the [begin, end) slice.
void run_shard(const StageElectrical& stage, const ArcCondition& condition,
               const ProcessCorner& corner, const McConfig& config,
               std::uint64_t shard_seed, std::size_t begin, std::size_t end,
               McResult& result) {
  stats::Rng rng(shard_seed);
  const VariationSampler sampler(corner);
  const std::size_t count = end - begin;
  const std::vector<VariationSample> draws =
      config.use_lhs ? sampler.sample_lhs(count, rng)
                     : sampler.sample_mc(count, rng);
  for (std::size_t j = 0; j < draws.size(); ++j) {
    // Deadline checkpoint (lvf2d): at most 256 more evaluations run
    // after a request's budget expires.
    core::checkpoint_every(j, 256);
    const StageTimes t = simulate_stage(stage, condition, corner, draws[j]);
    result.delay_ns[begin + j] = t.delay_ns;
    result.transition_ns[begin + j] = t.transition_ns;
  }
}

}  // namespace

McResult run_monte_carlo(const StageElectrical& stage,
                         const ArcCondition& condition,
                         const ProcessCorner& corner,
                         const McConfig& config) {
  obs::TraceSpan span("spice.mc", [&] {
    return obs::ArgsBuilder()
        .add("samples", config.samples)
        .add("lhs", config.use_lhs ? 1 : 0)
        .add("shards", config.shards)
        .str();
  });
  static obs::Counter& mc_samples = obs::counter("mc.samples");
  mc_samples.add(config.samples);

  if (config.shards > 1) {
    // Sharded mode: each shard owns a contiguous slice and a seed
    // derived from (seed, shard index), so the result depends only on
    // the config — never on scheduling or thread count.
    const std::size_t shards = std::min(config.shards, config.samples);
    McResult result;
    result.delay_ns.resize(config.samples);
    result.transition_ns.resize(config.samples);
    exec::parallel_for(shards, 1, [&](std::size_t s) {
      const std::size_t begin = config.samples * s / shards;
      const std::size_t end = config.samples * (s + 1) / shards;
      if (begin == end) return;
      run_shard(stage, condition, corner, config,
                stats::combine_seed(config.seed, s + 1), begin, end, result);
    });
    return result;
  }

  stats::Rng rng(config.seed);
  const VariationSampler sampler(corner);
  const std::vector<VariationSample> draws =
      config.use_lhs ? sampler.sample_lhs(config.samples, rng)
                     : sampler.sample_mc(config.samples, rng);
  McResult result;
  result.delay_ns.reserve(draws.size());
  result.transition_ns.reserve(draws.size());
  for (std::size_t j = 0; j < draws.size(); ++j) {
    core::checkpoint_every(j, 256);
    const StageTimes t = simulate_stage(stage, condition, corner, draws[j]);
    result.delay_ns.push_back(t.delay_ns);
    result.transition_ns.push_back(t.transition_ns);
  }
  return result;
}

StageTimes evaluate_sample(const StageElectrical& stage,
                           const ArcCondition& condition,
                           const ProcessCorner& corner,
                           const VariationSample& variation) {
  return simulate_stage(stage, condition, corner, variation);
}

}  // namespace lvf2::spice
