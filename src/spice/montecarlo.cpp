#include "spice/montecarlo.h"

#include <algorithm>
#include <span>

#include "core/cancel.h"
#include "exec/pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lvf2::spice {

namespace {

// Deadline-checkpoint block size (lvf2d): at most this many more
// evaluations run after a request's budget expires.
constexpr std::size_t kCheckpointBlock = 256;

// Evaluates a draw set into SoA output slices, one batch call per
// checkpoint block. Checkpoints fire at the same sample indices as
// the old per-sample loop (j = 0, 256, 512, ...).
void simulate_blocks(const StageElectrical& stage,
                     const ArcCondition& condition,
                     const ProcessCorner& corner,
                     std::span<const VariationSample> draws,
                     std::span<double> delay_out,
                     std::span<double> transition_out) {
  for (std::size_t j = 0; j < draws.size(); j += kCheckpointBlock) {
    core::checkpoint_every(j, kCheckpointBlock);
    const std::size_t n = std::min(kCheckpointBlock, draws.size() - j);
    simulate_stage_batch(stage, condition, corner, draws.subspan(j, n),
                         delay_out.subspan(j, n),
                         transition_out.subspan(j, n));
  }
}

// One shard of a sharded run: draws its own independently-seeded
// variation set and writes results into the [begin, end) slice.
void run_shard(const StageElectrical& stage, const ArcCondition& condition,
               const ProcessCorner& corner, const McConfig& config,
               std::uint64_t shard_seed, std::size_t begin, std::size_t end,
               McResult& result) {
  stats::Rng rng(shard_seed);
  const VariationSampler sampler(corner);
  const std::size_t count = end - begin;
  const std::vector<VariationSample> draws =
      config.use_lhs ? sampler.sample_lhs(count, rng)
                     : sampler.sample_mc(count, rng);
  simulate_blocks(stage, condition, corner, draws,
                  std::span<double>(result.delay_ns).subspan(begin, count),
                  std::span<double>(result.transition_ns)
                      .subspan(begin, count));
}

}  // namespace

McResult run_monte_carlo(const StageElectrical& stage,
                         const ArcCondition& condition,
                         const ProcessCorner& corner,
                         const McConfig& config) {
  obs::TraceSpan span("spice.mc", [&] {
    return obs::ArgsBuilder()
        .add("samples", config.samples)
        .add("lhs", config.use_lhs ? 1 : 0)
        .add("shards", config.shards)
        .str();
  });
  static obs::Counter& mc_samples = obs::counter("mc.samples");
  mc_samples.add(config.samples);

  if (config.shards > 1) {
    // Sharded mode: each shard owns a contiguous slice and a seed
    // derived from (seed, shard index), so the result depends only on
    // the config — never on scheduling or thread count.
    const std::size_t shards = std::min(config.shards, config.samples);
    McResult result;
    result.delay_ns.resize(config.samples);
    result.transition_ns.resize(config.samples);
    exec::parallel_for(shards, 1, [&](std::size_t s) {
      const std::size_t begin = config.samples * s / shards;
      const std::size_t end = config.samples * (s + 1) / shards;
      if (begin == end) return;
      run_shard(stage, condition, corner, config,
                stats::combine_seed(config.seed, s + 1), begin, end, result);
    });
    return result;
  }

  stats::Rng rng(config.seed);
  const VariationSampler sampler(corner);
  const std::vector<VariationSample> draws =
      config.use_lhs ? sampler.sample_lhs(config.samples, rng)
                     : sampler.sample_mc(config.samples, rng);
  McResult result;
  result.delay_ns.resize(draws.size());
  result.transition_ns.resize(draws.size());
  simulate_blocks(stage, condition, corner, draws, result.delay_ns,
                  result.transition_ns);
  return result;
}

StageTimes evaluate_sample(const StageElectrical& stage,
                           const ArcCondition& condition,
                           const ProcessCorner& corner,
                           const VariationSample& variation) {
  return simulate_stage(stage, condition, corner, variation);
}

}  // namespace lvf2::spice
