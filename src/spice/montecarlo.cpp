#include "spice/montecarlo.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lvf2::spice {

McResult run_monte_carlo(const StageElectrical& stage,
                         const ArcCondition& condition,
                         const ProcessCorner& corner,
                         const McConfig& config) {
  obs::TraceSpan span("spice.mc", [&] {
    return obs::ArgsBuilder()
        .add("samples", config.samples)
        .add("lhs", config.use_lhs ? 1 : 0)
        .str();
  });
  static obs::Counter& mc_samples = obs::counter("mc.samples");
  mc_samples.add(config.samples);

  stats::Rng rng(config.seed);
  const VariationSampler sampler(corner);
  const std::vector<VariationSample> draws =
      config.use_lhs ? sampler.sample_lhs(config.samples, rng)
                     : sampler.sample_mc(config.samples, rng);
  McResult result;
  result.delay_ns.reserve(draws.size());
  result.transition_ns.reserve(draws.size());
  for (const VariationSample& v : draws) {
    const StageTimes t = simulate_stage(stage, condition, corner, v);
    result.delay_ns.push_back(t.delay_ns);
    result.transition_ns.push_back(t.transition_ns);
  }
  return result;
}

StageTimes evaluate_sample(const StageElectrical& stage,
                           const ArcCondition& condition,
                           const ProcessCorner& corner,
                           const VariationSample& variation) {
  return simulate_stage(stage, condition, corner, variation);
}

}  // namespace lvf2::spice
