#pragma once
// Monte-Carlo driver: draws variation samples (LHS by default, as in
// the paper) and evaluates one arc at one slew/load condition into
// delay and transition sample vectors — the "golden" data that every
// model is fitted to and judged against.

#include <cstdint>
#include <vector>

#include "spice/cellsim.h"
#include "spice/process.h"

namespace lvf2::spice {

/// Monte-Carlo run configuration.
struct McConfig {
  std::size_t samples = 10000;
  std::uint64_t seed = 0x1234;
  bool use_lhs = true;  ///< Latin Hypercube (paper) vs plain MC
  /// Number of independent sampling shards. 1 (the default)
  /// reproduces the historical single-stream run byte-for-byte.
  /// Values > 1 derive one seed per shard and generate + simulate the
  /// shards in parallel: deterministic for a fixed shard count at any
  /// thread count, but a different (equally valid) sample set than
  /// shards == 1, so fixed-seed goldens opt in explicitly. LHS
  /// stratification then applies within each shard rather than
  /// globally.
  std::size_t shards = 1;
};

/// Sampled timing distributions of one arc condition.
struct McResult {
  std::vector<double> delay_ns;
  std::vector<double> transition_ns;
};

/// Runs the Monte-Carlo simulation of one arc at one condition.
McResult run_monte_carlo(const StageElectrical& stage,
                         const ArcCondition& condition,
                         const ProcessCorner& corner, const McConfig& config);

/// Evaluates one arc for a *shared* set of variation samples (used by
/// path Monte-Carlo where all stages of a die see correlated but
/// per-stage-independent draws managed by the caller).
StageTimes evaluate_sample(const StageElectrical& stage,
                           const ArcCondition& condition,
                           const ProcessCorner& corner,
                           const VariationSample& variation);

}  // namespace lvf2::spice
