#include "spice/cellsim.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace lvf2::spice {

namespace {

constexpr double kLn2 = 0.6931471805599453;
// 10%-90% output swing factor for an RC transition (ln 9 ~ 2.197).
constexpr double kSwingFactor = 2.197224577336220;
// Nominal threshold fraction around which the B-mechanism coupling is
// linearized.
constexpr double kVtNominal = 0.41;

// Confrontation statistic: a unit-variance statistic dominated by the
// *opposing* (non-pulling) device's mismatch. Physically, whether the
// input-coupled (short-circuit overlap) mechanism wins is governed by
// the strength of the device fighting the transition — which barely
// affects the pull delay itself, so the regime selection is nearly
// independent of the within-regime delay value and genuine mixture
// components appear when the regime threshold sits mid-range.
double confrontation_statistic(const StageElectrical& stage,
                               const ProcessCorner& corner,
                               const VariationSample& v) {
  const bool pull_is_nmos = stage.pull.is_nmos;
  const double z_op_vth = pull_is_nmos ? v.dvth_p / corner.sigma_vth_p
                                       : v.dvth_n / corner.sigma_vth_n;
  const double z_op_mob = (pull_is_nmos ? v.dmob_p : v.dmob_n) /
                          corner.sigma_mob;
  return 0.92 * z_op_vth + 0.39 * z_op_mob;
}

// Threshold fraction of the opposing device — drives the strength of
// the mechanism-B coupling.
double opposing_vt_fraction(const StageElectrical& stage,
                            const ProcessCorner& corner,
                            const VariationSample& v) {
  if (stage.pull.is_nmos) {
    return (corner.vth_p + v.dvth_p) / corner.vdd;
  }
  return (corner.vth_n + v.dvth_n) / corner.vdd;
}

// ln of the slew-to-swing ratio — the confrontation axis. Zero on
// the grid diagonal where input and output transitions are matched.
double log_rho(const StageElectrical& stage, const ArcCondition& condition,
               const ProcessCorner& corner) {
  const VariationSample nominal{};
  const double r_nom = effective_resistance_kohm(stage.pull, corner, nominal);
  const double c_total = condition.load_pf + stage.internal_cap_pf;
  const double swing_nom = kSwingFactor * r_nom * c_total;
  return std::log(condition.slew_ns / std::max(swing_nom, 1e-9));
}

// Regime threshold in confrontation-statistic units.
double regime_threshold(const StageElectrical& stage,
                        const ArcCondition& condition,
                        const ProcessCorner& corner) {
  return log_rho(stage, condition, corner) / stage.mechanism_width +
         stage.mechanism_offset;
}

struct MechanismTimes {
  StageTimes a;
  StageTimes b;
};

MechanismTimes mechanism_times(const StageElectrical& stage,
                               const ArcCondition& condition,
                               const ProcessCorner& corner,
                               const VariationSample& variation) {
  const double r_eff =
      effective_resistance_kohm(stage.pull, corner, variation);
  const double c_total = condition.load_pf + stage.internal_cap_pf;
  const double t_drive = kLn2 * r_eff * c_total;
  const double t_swing = kSwingFactor * r_eff * c_total;
  const double vt =
      effective_vth(stage.pull, corner, variation) / corner.vdd;

  // Sakurai input-slope term: fraction of the input transition spent
  // before the switching device turns on.
  const double slope_term =
      condition.slew_ns * (0.5 - (1.0 - vt) / (1.0 + corner.alpha));

  MechanismTimes t;
  // Mechanism A: drive-limited RC switching.
  t.a.delay_ns = t_drive + slope_term;
  t.a.transition_ns = t_swing + 0.18 * condition.slew_ns;

  // Mechanism B: input-coupled switching. Relative to A, the
  // switching point shifts by a fraction of the local drive time; the
  // shift couples to the *opposing* device threshold (short-circuit
  // overlap), so the B component is wider and skewed along a
  // direction that is independent of the within-A spread. The base
  // fraction drifts mildly along the confrontation axis, diversifying
  // shapes across the grid.
  const double lrho = log_rho(stage, condition, corner);
  const double vt_op = opposing_vt_fraction(stage, corner, variation);
  const double base_d = stage.mechanism_gain * stage.mechanism_base_scale *
                        (0.34 + 0.08 * std::tanh(lrho));
  const double vt_d = stage.mechanism_gain * 1.5 * (vt_op - kVtNominal);
  t.b.delay_ns = t.a.delay_ns + (base_d + vt_d) * t_drive;

  const double base_t = stage.mechanism_gain_transition *
                        stage.mechanism_base_scale *
                        (0.30 + 0.07 * std::tanh(lrho));
  const double vt_t = stage.mechanism_gain_transition * 1.2 *
                      (vt_op - kVtNominal);
  t.b.transition_ns = t.a.transition_ns + (base_t + vt_t) * t_swing;
  return t;
}

}  // namespace

StageTimes nominal_stage_times(const StageElectrical& stage,
                               const ArcCondition& condition,
                               const ProcessCorner& corner) {
  const VariationSample nominal{};
  const MechanismTimes t =
      mechanism_times(stage, condition, corner, nominal);
  // Nominal reporting blends the mechanisms with the analytic weight.
  const double lambda = mechanism_b_probability(stage, condition, corner);
  StageTimes out;
  out.delay_ns = (1.0 - lambda) * t.a.delay_ns + lambda * t.b.delay_ns;
  out.transition_ns =
      (1.0 - lambda) * t.a.transition_ns + lambda * t.b.transition_ns;
  return out;
}

StageTimes simulate_stage(const StageElectrical& stage,
                          const ArcCondition& condition,
                          const ProcessCorner& corner,
                          const VariationSample& variation) {
  const MechanismTimes t =
      mechanism_times(stage, condition, corner, variation);
  const double u = confrontation_statistic(stage, corner, variation);
  const double theta = regime_threshold(stage, condition, corner);
  // Transition uses a slightly shifted threshold so delay and
  // transition mixtures differ (as observed in the paper's Fig. 4
  // delay-vs-transition patterns).
  const bool b_delay = u < theta;
  const bool b_transition = u < theta + 0.35;
  StageTimes out;
  out.delay_ns = b_delay ? t.b.delay_ns : t.a.delay_ns;
  out.transition_ns = b_transition ? t.b.transition_ns : t.a.transition_ns;
  // Floor: physical times cannot be negative (very fast corners with
  // large negative slope terms).
  out.delay_ns = std::max(out.delay_ns, 1e-6);
  out.transition_ns = std::max(out.transition_ns, 1e-6);
  return out;
}

void simulate_stage_batch(const StageElectrical& stage,
                          const ArcCondition& condition,
                          const ProcessCorner& corner,
                          std::span<const VariationSample> draws,
                          std::span<double> delay_out,
                          std::span<double> transition_out) {
  // Hoisted per-(stage, condition, corner) invariants: none of these
  // depend on the variation draw, and log/tanh dominate the scalar
  // per-sample cost.
  const double lrho = log_rho(stage, condition, corner);
  const double theta =
      lrho / stage.mechanism_width + stage.mechanism_offset;
  const double c_total = condition.load_pf + stage.internal_cap_pf;
  const double base_d = stage.mechanism_gain * stage.mechanism_base_scale *
                        (0.34 + 0.08 * std::tanh(lrho));
  const double base_t = stage.mechanism_gain_transition *
                        stage.mechanism_base_scale *
                        (0.30 + 0.07 * std::tanh(lrho));
  for (std::size_t j = 0; j < draws.size(); ++j) {
    const VariationSample& variation = draws[j];
    const double r_eff =
        effective_resistance_kohm(stage.pull, corner, variation);
    const double t_drive = kLn2 * r_eff * c_total;
    const double t_swing = kSwingFactor * r_eff * c_total;
    const double vt =
        effective_vth(stage.pull, corner, variation) / corner.vdd;
    const double slope_term =
        condition.slew_ns * (0.5 - (1.0 - vt) / (1.0 + corner.alpha));
    const double a_delay = t_drive + slope_term;
    const double a_transition = t_swing + 0.18 * condition.slew_ns;
    const double vt_op = opposing_vt_fraction(stage, corner, variation);
    const double vt_d =
        stage.mechanism_gain * 1.5 * (vt_op - kVtNominal);
    const double b_delay = a_delay + (base_d + vt_d) * t_drive;
    const double vt_t = stage.mechanism_gain_transition * 1.2 *
                        (vt_op - kVtNominal);
    const double b_transition = a_transition + (base_t + vt_t) * t_swing;
    const double u = confrontation_statistic(stage, corner, variation);
    const double d = (u < theta) ? b_delay : a_delay;
    const double t = (u < theta + 0.35) ? b_transition : a_transition;
    delay_out[j] = std::max(d, 1e-6);
    transition_out[j] = std::max(t, 1e-6);
  }
}

double mechanism_b_probability(const StageElectrical& stage,
                               const ArcCondition& condition,
                               const ProcessCorner& corner) {
  return stats::normal_cdf(regime_threshold(stage, condition, corner));
}

}  // namespace lvf2::spice
