#pragma once
// Alpha-power-law MOSFET model (Sakurai-Newton). Drive current of a
// device in saturation:
//
//   I_on = k * drive * (W/L factors) * mobility * (Vdd - Vth)^alpha
//
// with Vth, L, W, mobility and tox perturbed by the per-sample local
// variation. Delay equations consume the equivalent switching
// resistance R_eff = Vdd / (2 I_on).
//
// Units: volts, milliamps, kilo-ohms, picofarads, nanoseconds
// (kOhm * pF = ns), which keeps all quantities near unity.

#include "spice/process.h"

namespace lvf2::spice {

/// Electrical description of one (equivalent) transistor.
struct Mosfet {
  bool is_nmos = true;
  /// Relative drive strength (width multiple of the unit device).
  double drive = 1.0;
  /// Number of identical devices in series (stacked); the stack is
  /// collapsed into one equivalent device with resistance scaled by
  /// `stack` and threshold sigma scaled by 1/sqrt(stack) (mismatch
  /// averaging along the stack).
  int stack = 1;
  /// Parallel branches (multi-input gates with parallel networks).
  int parallel = 1;
};

/// Effective threshold voltage of the device under variation
/// (includes the 1/sqrt(stack) mismatch-averaging of the stack).
double effective_vth(const Mosfet& device, const ProcessCorner& corner,
                     const VariationSample& variation);

/// Saturation drive current [mA] of the equivalent device; clamped
/// below by a small subthreshold floor so deep-Vth samples stay
/// finite.
double on_current_ma(const Mosfet& device, const ProcessCorner& corner,
                     const VariationSample& variation);

/// Equivalent switching resistance [kOhm]: Vdd / (2 I_on), times the
/// series stack count, divided by parallel branches.
double effective_resistance_kohm(const Mosfet& device,
                                 const ProcessCorner& corner,
                                 const VariationSample& variation);

}  // namespace lvf2::spice
