#include "cells/library.h"

#include <algorithm>

namespace lvf2::cells {

StandardCellLibrary::StandardCellLibrary(std::vector<Cell> cells)
    : cells_(std::move(cells)) {}

const Cell* StandardCellLibrary::find(const std::string& name) const {
  const auto it = std::find_if(cells_.begin(), cells_.end(),
                               [&](const Cell& c) { return c.name == name; });
  return (it == cells_.end()) ? nullptr : &*it;
}

std::vector<std::string> StandardCellLibrary::type_names() const {
  std::vector<std::string> names;
  for (const Cell& c : cells_) {
    const std::string t = c.type_name();
    if (std::find(names.begin(), names.end(), t) == names.end()) {
      names.push_back(t);
    }
  }
  return names;
}

std::vector<const Cell*> StandardCellLibrary::cells_of_type(
    const std::string& type_name) const {
  std::vector<const Cell*> out;
  for (const Cell& c : cells_) {
    if (c.type_name() == type_name) out.push_back(&c);
  }
  return out;
}

std::size_t StandardCellLibrary::total_arcs() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) n += c.arcs.size();
  return n;
}

StandardCellLibrary build_paper_library(const LibraryOptions& options) {
  struct TypeSpec {
    CellFamily family;
    int inputs;
  };
  // Paper Table 2 order.
  const TypeSpec kTypes[] = {
      {CellFamily::kInv, 1},       {CellFamily::kBuf, 1},
      {CellFamily::kNand, 2},      {CellFamily::kNand, 3},
      {CellFamily::kNand, 4},      {CellFamily::kAnd, 2},
      {CellFamily::kAnd, 3},       {CellFamily::kAnd, 4},
      {CellFamily::kNor, 2},       {CellFamily::kNor, 3},
      {CellFamily::kNor, 4},       {CellFamily::kOr, 2},
      {CellFamily::kOr, 3},        {CellFamily::kOr, 4},
      {CellFamily::kXor, 2},       {CellFamily::kXor, 3},
      {CellFamily::kXor, 4},       {CellFamily::kXnor, 2},
      {CellFamily::kXnor, 3},      {CellFamily::kXnor, 4},
      {CellFamily::kMux, 2},       {CellFamily::kMux, 3},
      {CellFamily::kMux, 4},       {CellFamily::kFullAdder, 3},
      {CellFamily::kHalfAdder, 2},
  };
  std::vector<Cell> cells;
  for (const TypeSpec& spec : kTypes) {
    for (double drive : options.drives) {
      cells.push_back(build_cell(spec.family, spec.inputs, drive));
    }
  }
  return StandardCellLibrary(std::move(cells));
}

}  // namespace lvf2::cells
