#pragma once
// Accuracy-pattern-guided characterization — the speedup the paper's
// conclusion anticipates: "assuming such an accuracy pattern can
// provide significant insight to speed up the statistical
// characterization that includes MC simulations across multiple
// slew-load pairs."
//
// The multi-Gaussian phenomenon concentrates on the confrontation
// diagonal of the slew/load table (paper Fig. 4). This engine runs a
// cheap pilot Monte-Carlo per table entry, estimates the mixture
// strength from a fast two-Gaussian fit, and spends the full sample
// budget + LVF^2 EM only on entries above a strength threshold; the
// rest are characterized as plain LVF (lambda = 0) from the pilot-
// extended samples.

#include <vector>

#include "cells/characterize.h"

namespace lvf2::cells {

/// Options of a pattern-guided run.
struct PatternGuidedOptions {
  SlewLoadGrid grid = SlewLoadGrid::paper_grid();
  std::size_t pilot_samples = 800;    ///< cheap screening budget
  std::size_t full_samples = 10000;   ///< budget for flagged entries
  /// Mixture-strength cut: the pilot's per-sample log-likelihood
  /// advantage of a two-Gaussian mixture over a single skew-normal
  /// (nats/sample). Entries below it keep plain LVF. 1.5e-3
  /// separates the confrontation band from the unimodal corners at
  /// the default 800-sample pilot.
  double strength_threshold = 1.5e-3;
  core::FitOptions fit;
  std::uint64_t seed_base = 0xC0FFEE;
};

/// Outcome of one table entry.
struct PatternGuidedEntry {
  spice::ArcCondition condition;
  double pilot_strength = 0.0;
  bool full_fit = false;             ///< got the full-budget LVF^2 EM
  std::size_t samples_used = 0;
  core::Lvf2Parameters delay_params; ///< lambda = 0 when screened out
};

/// Result of one arc.
struct PatternGuidedResult {
  SlewLoadGrid grid;
  std::vector<PatternGuidedEntry> entries;  ///< row-major load x slew
  std::size_t full_fits = 0;
  std::size_t screened_out = 0;
  std::size_t samples_spent = 0;
  std::size_t samples_full_run = 0;  ///< what a full run would cost

  const PatternGuidedEntry& at(std::size_t load_idx,
                               std::size_t slew_idx) const {
    return entries[load_idx * grid.cols() + slew_idx];
  }
  /// Fraction of the full-run sample budget actually spent.
  double budget_fraction() const {
    return (samples_full_run > 0)
               ? static_cast<double>(samples_spent) /
                     static_cast<double>(samples_full_run)
               : 0.0;
  }
};

/// Mixture-strength estimate of a sample set: the per-sample
/// log-likelihood advantage (nats) of a two-Gaussian mixture over a
/// single skew-normal — ~0 for unimodal data (even skewed), clearly
/// positive for genuine mixtures.
double estimate_mixture_strength(std::span<const double> samples,
                                 const core::FitOptions& fit = {});

/// Runs pattern-guided characterization of one arc's delay tables.
PatternGuidedResult pattern_guided_characterize_arc(
    const Cell& cell, const TimingArc& arc,
    const spice::ProcessCorner& corner, const PatternGuidedOptions& options);

}  // namespace lvf2::cells
