#pragma once
// Statistical library characterization: runs the (substitute-)SPICE
// Monte Carlo for every cell arc over the 8x8 slew/load grid and fits
// the LVF moments plus the LVF^2 mixture parameters per entry — the
// data that populates the Liberty LUTs and feeds every Table/Figure
// bench. Seeds are derived from cell/arc/condition names, so the
// characterization is reproducible bit-for-bit.

#include <cstdint>
#include <string>
#include <vector>

#include "cells/cell_types.h"
#include "cells/library.h"
#include "core/lvf2_model.h"
#include "core/status.h"
#include "core/timing_model.h"
#include "spice/montecarlo.h"
#include "spice/process.h"
#include "stats/skew_normal.h"

namespace lvf2::cells {

/// The slew/load index grid of a characterization table.
struct SlewLoadGrid {
  std::vector<double> slews_ns;
  std::vector<double> loads_pf;

  /// The paper's 8x8 grid (Fig. 4 axis labels): slews
  /// 0.0023..0.8715 ns, loads 0.00015..0.8983 pF.
  static SlewLoadGrid paper_grid();

  /// Every `stride`-th entry of the paper grid (fast benches).
  static SlewLoadGrid reduced(std::size_t stride);

  std::size_t rows() const { return loads_pf.size(); }
  std::size_t cols() const { return slews_ns.size(); }
};

/// Characterized data of one (slew, load) entry of one arc.
struct ConditionCharacterization {
  spice::ArcCondition condition;
  // Nominal (variation-free) values — the base Liberty LUTs.
  double nominal_delay_ns = 0.0;
  double nominal_transition_ns = 0.0;
  // LVF moment triples (single skew-normal).
  stats::SnMoments lvf_delay;
  stats::SnMoments lvf_transition;
  // LVF^2 mixture parameters.
  core::Lvf2Parameters lvf2_delay;
  core::Lvf2Parameters lvf2_transition;
  // EM convergence reports of the two LVF^2 fits (iterations, final
  // log-likelihood, converged/collapsed flags) — surfaced instead of
  // discarded so callers can audit fit quality per table entry.
  core::EmReport lvf2_delay_report;
  core::EmReport lvf2_transition_report;
  // Outcome of the entry as a whole. A failed entry keeps its nominal
  // values and degrades the statistical fields (the table stays
  // complete); the Status says what went wrong.
  core::Status status;
};

/// Characterized table of one timing arc (row-major: load x slew).
struct ArcCharacterization {
  std::string cell_name;
  std::string arc_label;
  SlewLoadGrid grid;
  std::vector<ConditionCharacterization> entries;

  const ConditionCharacterization& at(std::size_t load_idx,
                                      std::size_t slew_idx) const {
    return entries[load_idx * grid.cols() + slew_idx];
  }
};

/// Characterization of a whole cell / library.
struct CellCharacterization {
  std::string cell_name;
  std::vector<ArcCharacterization> arcs;
};

struct LibraryCharacterization {
  std::vector<CellCharacterization> cells;
};

/// Options of a characterization run.
struct CharacterizeOptions {
  SlewLoadGrid grid = SlewLoadGrid::paper_grid();
  std::size_t mc_samples = 10000;
  bool use_lhs = true;
  core::FitOptions fit;
  std::uint64_t seed_base = 0xC0FFEE;
};

/// Runs Monte-Carlo characterization against a process corner.
class Characterizer {
 public:
  Characterizer(const spice::ProcessCorner& corner,
                const CharacterizeOptions& options)
      : corner_(corner), options_(options) {}

  /// Deterministic seed of one arc condition.
  std::uint64_t condition_seed(const std::string& cell_name,
                               const std::string& arc_label,
                               std::size_t load_idx,
                               std::size_t slew_idx) const;

  /// Raw Monte-Carlo samples of one arc condition (golden data).
  spice::McResult golden_samples(const Cell& cell, const TimingArc& arc,
                                 std::size_t load_idx,
                                 std::size_t slew_idx) const;

  /// Characterizes one (load, slew) table entry. Deterministic: the
  /// entry's Monte-Carlo and fit seeds derive from (cell, arc,
  /// load_idx, slew_idx) alone, so the result is independent of
  /// execution order and thread count.
  ConditionCharacterization characterize_entry(const Cell& cell,
                                               const TimingArc& arc,
                                               const std::string& arc_label,
                                               std::size_t load_idx,
                                               std::size_t slew_idx) const;

  ArcCharacterization characterize_arc(const Cell& cell,
                                       const TimingArc& arc) const;
  CellCharacterization characterize_cell(const Cell& cell) const;
  LibraryCharacterization characterize_library(
      const StandardCellLibrary& library) const;

  const CharacterizeOptions& options() const { return options_; }
  const spice::ProcessCorner& corner() const { return corner_; }

 private:
  spice::ProcessCorner corner_;
  CharacterizeOptions options_;
};

}  // namespace lvf2::cells
