#include "cells/pattern_guided.h"

#include <cmath>

#include "core/norm2_model.h"
#include "obs/obs.h"
#include "stats/rng.h"

namespace lvf2::cells {

double estimate_mixture_strength(std::span<const double> samples,
                                 const core::FitOptions& fit) {
  // Per-sample log-likelihood advantage of a two-Gaussian mixture
  // over a single skew-normal. Any unimodal (even skewed) data is
  // matched by the skew-normal, so the advantage sits near 0; genuine
  // mixtures gain O(0.01..1) nats per sample.
  const auto norm2 = core::Norm2Model::fit(samples, fit);
  const auto sn = stats::SkewNormal::fit_moments(samples);
  if (!norm2 || !sn) return 0.0;
  double ll2 = 0.0, ll1 = 0.0;
  for (double x : samples) {
    ll2 += std::log(std::max(norm2->pdf(x), 1e-300));
    ll1 += sn->log_pdf(x);
  }
  const double n = static_cast<double>(samples.size());
  return std::max(0.0, (ll2 - ll1) / std::max(n, 1.0));
}

PatternGuidedResult pattern_guided_characterize_arc(
    const Cell& cell, const TimingArc& arc,
    const spice::ProcessCorner& corner,
    const PatternGuidedOptions& options) {
  obs::TraceSpan arc_span("pattern_guided.arc", [&] {
    return obs::ArgsBuilder()
        .add("cell", cell.name)
        .add("arc", arc.label())
        .str();
  });
  static obs::Counter& entries_counter =
      obs::counter("pattern_guided.entries");
  static obs::Counter& full_counter =
      obs::counter("pattern_guided.full_fits");
  static obs::Counter& screened_counter =
      obs::counter("pattern_guided.screened_out");

  PatternGuidedResult result;
  result.grid = options.grid;
  result.entries.reserve(options.grid.rows() * options.grid.cols());

  core::FitOptions pilot_fit = options.fit;
  pilot_fit.likelihood_bins = 128;
  pilot_fit.em_max_iterations = 30;

  for (std::size_t li = 0; li < options.grid.rows(); ++li) {
    for (std::size_t si = 0; si < options.grid.cols(); ++si) {
      obs::TraceSpan entry_span("pattern_guided.entry", [&] {
        return obs::ArgsBuilder()
            .add("load_idx", li)
            .add("slew_idx", si)
            .str();
      });
      entries_counter.add(1);

      PatternGuidedEntry entry;
      entry.condition = spice::ArcCondition{options.grid.slews_ns[si],
                                            options.grid.loads_pf[li]};
      const std::uint64_t seed = stats::combine_seed(
          options.seed_base,
          stats::hash_name(cell.name + "/" + arc.label()) + li * 131 + si);

      // Pilot screening.
      spice::McConfig pilot_cfg;
      pilot_cfg.samples = options.pilot_samples;
      pilot_cfg.seed = seed;
      const spice::McResult pilot = spice::run_monte_carlo(
          arc.stage, entry.condition, corner, pilot_cfg);
      entry.pilot_strength =
          estimate_mixture_strength(pilot.delay_ns, pilot_fit);

      core::FitOptions fit = options.fit;
      fit.seed = stats::combine_seed(fit.seed, li * 17 + si);
      if (entry.pilot_strength >= options.strength_threshold) {
        // Full-budget golden run + LVF^2 EM.
        spice::McConfig full_cfg;
        full_cfg.samples = options.full_samples;
        full_cfg.seed = seed + 1;
        const spice::McResult full = spice::run_monte_carlo(
            arc.stage, entry.condition, corner, full_cfg);
        if (auto model = core::Lvf2Model::fit(full.delay_ns, fit)) {
          entry.delay_params = model->parameters();
        }
        entry.full_fit = true;
        entry.samples_used = options.pilot_samples + options.full_samples;
        ++result.full_fits;
        full_counter.add(1);
      } else {
        // Screened out: plain LVF from the pilot samples (lambda = 0).
        if (auto sn = stats::SkewNormal::fit_moments(pilot.delay_ns)) {
          entry.delay_params.lambda = 0.0;
          entry.delay_params.theta1 = sn->to_moments();
          entry.delay_params.theta2 = entry.delay_params.theta1;
        }
        entry.samples_used = options.pilot_samples;
        ++result.screened_out;
        screened_counter.add(1);
      }
      result.samples_spent += entry.samples_used;
      result.samples_full_run +=
          options.pilot_samples + options.full_samples;
      result.entries.push_back(std::move(entry));
    }
  }
  return result;
}

}  // namespace lvf2::cells
