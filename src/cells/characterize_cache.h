#pragma once
// Cache glue for library characterization: the content-addressed key
// of one (cell, arc, load, slew) table entry, the JSON codec of its
// characterized result, and the recompute path the `lvf2_cache
// verify` tool uses to re-derive stored entries from their recorded
// inputs.
//
// The key hashes *every* input the entry's output depends on — cell
// identity and arc electrics, grid condition, Monte-Carlo config
// (samples / LHS / shards / seed policy), EM fit options, the full
// process corner, and kCharacterizeCacheSalt. Decision 16 made each
// entry a pure function of exactly these inputs, which is what makes
// a content-addressed cache sound (DESIGN.md decision 17).

#include <cstdint>
#include <optional>
#include <string>

#include "cells/characterize.h"
#include "obs/json.h"
#include "obs/manifest.h"

namespace lvf2::cells {

/// Code-version salt folded into every cache key. Bump whenever the
/// Monte-Carlo engine, the fitting code, or this codec changes
/// behaviour: old entries then miss (and `lvf2_cache gc` collects
/// them) instead of serving stale results.
inline constexpr std::uint64_t kCharacterizeCacheSalt = 1;

/// Content-addressed key of one characterization table entry.
std::uint64_t entry_cache_key(const spice::ProcessCorner& corner,
                              const CharacterizeOptions& options,
                              const Cell& cell, const TimingArc& arc,
                              const std::string& arc_label,
                              std::size_t load_idx, std::size_t slew_idx);

/// Everything `verify` needs to re-run an entry without the original
/// library object: how to rebuild the cell, which arc, the grid
/// condition and indices (seed derivation uses the indices), and the
/// full Monte-Carlo / fit / corner configuration.
struct CachedEntryInputs {
  std::uint64_t salt = 0;
  std::string cell_name;
  int family = 0;
  int inputs = 1;
  double drive = 1.0;
  std::size_t arc_index = 0;
  std::string arc_label;
  std::size_t load_idx = 0;
  std::size_t slew_idx = 0;
  double slew_ns = 0.0;
  double load_pf = 0.0;
  std::size_t mc_samples = 0;
  bool use_lhs = true;
  std::uint64_t seed_base = 0;
  core::FitOptions fit;
  spice::ProcessCorner corner;
};

/// Serializes one characterized entry for the cache: {"salt", "inputs",
/// "result"} plus an optional "qor" manifest row captured when a
/// manifest was armed during the populating run. Serialize the
/// returned document at full precision (obs::JsonWriteOptions{17}).
obs::JsonValue encode_cached_entry(const spice::ProcessCorner& corner,
                                   const CharacterizeOptions& options,
                                   const Cell& cell,
                                   const std::string& arc_label,
                                   std::size_t load_idx, std::size_t slew_idx,
                                   const ConditionCharacterization& entry,
                                   const obs::ArcQor* qor);

/// A decoded cache entry: the characterized result and, when the
/// populating run recorded one, its manifest QoR row.
struct DecodedCacheEntry {
  ConditionCharacterization entry;
  std::optional<obs::ArcQor> qor;
};

/// Inverse of encode_cached_entry. Returns nullopt for missing or
/// mistyped members (corrupted entries degrade to recompute).
std::optional<DecodedCacheEntry> decode_cached_entry(
    const obs::JsonValue& doc);

/// The recorded inputs of a cached entry (for gc / verify tooling).
std::optional<CachedEntryInputs> decode_cached_inputs(
    const obs::JsonValue& doc);

/// Re-runs one entry from its recorded inputs: rebuilds the cell,
/// reconstructs an options grid that puts the recorded condition at
/// the recorded indices (seed derivation depends on them), and calls
/// Characterizer::characterize_entry. Returns nullopt when the
/// recorded cell/arc no longer exists in the current code. The caller
/// must make sure the process cache is disarmed first, or the
/// recompute would be served from the very entries it is verifying.
std::optional<ConditionCharacterization> recompute_cached_entry(
    const CachedEntryInputs& inputs);

/// Outcome of re-deriving one cache entry from its recorded inputs.
enum class CacheVerifyOutcome {
  kOk,             ///< recompute matched the stored result bitwise
  kMismatch,       ///< recompute diverged (stale salt or code drift)
  kUndecodable,    ///< entry document did not decode
  kUnrebuildable,  ///< recorded cell/arc no longer exists
};
const char* to_string(CacheVerifyOutcome outcome);

/// Recomputes `doc`'s entry from its recorded inputs and compares the
/// recomputed "result" section against the stored one bitwise (both
/// serialized at 17 digits). Backs `lvf2_cache verify`. The process
/// cache must be disarmed first — otherwise the recompute would be
/// served from the very entries under verification.
CacheVerifyOutcome verify_cached_entry(const obs::JsonValue& doc);

}  // namespace lvf2::cells
